(* Tests for message ids, gap detection, and the reception log. *)

module Msg_id = Protocol.Msg_id
module Gap_detect = Protocol.Gap_detect
module Recv_log = Protocol.Recv_log

let src n = Node_id.of_int n

let id ?(source = 0) seq = Msg_id.make ~source:(src source) ~seq

let msg_id = Alcotest.testable Msg_id.pp Msg_id.equal

(* ------------------------------------------------------------------ *)
(* Msg_id                                                              *)
(* ------------------------------------------------------------------ *)

let test_msg_id_basics () =
  let a = id 3 in
  Alcotest.(check int) "seq" 3 (Msg_id.seq a);
  Alcotest.(check int) "source" 0 (Node_id.to_int (Msg_id.source a));
  Alcotest.(check string) "pp" "n0#3" (Msg_id.to_string a);
  Alcotest.check_raises "negative seq" (Invalid_argument "Msg_id.make: negative sequence number")
    (fun () -> ignore (id (-1)))

let test_msg_id_order () =
  Alcotest.(check bool) "same source orders by seq" true (Msg_id.compare (id 1) (id 2) < 0);
  Alcotest.(check bool) "source dominates" true
    (Msg_id.compare (id ~source:0 9) (id ~source:1 0) < 0);
  Alcotest.(check bool) "equal" true (Msg_id.equal (id 5) (id 5));
  let set = Msg_id.Set.of_list [ id 1; id 1; id 2 ] in
  Alcotest.(check int) "set dedup" 2 (Msg_id.Set.cardinal set)

(* ------------------------------------------------------------------ *)
(* Gap_detect                                                          *)
(* ------------------------------------------------------------------ *)

let test_gap_in_order_no_losses () =
  let d = Gap_detect.create () in
  for seq = 0 to 5 do
    match Gap_detect.note_data d seq with
    | `Fresh [] -> ()
    | `Fresh _ -> Alcotest.fail "no gaps expected in order"
    | `Duplicate -> Alcotest.fail "not a duplicate"
  done;
  Alcotest.(check int) "nothing missing" 0 (Gap_detect.missing_count d);
  Alcotest.(check int) "received all" 6 (Gap_detect.received_count d)

let test_gap_detects_hole () =
  let d = Gap_detect.create () in
  ignore (Gap_detect.note_data d 0);
  (match Gap_detect.note_data d 3 with
   | `Fresh gaps -> Alcotest.(check (list int)) "1 and 2 missing" [ 1; 2 ] gaps
   | `Duplicate -> Alcotest.fail "not a duplicate");
  Alcotest.(check (list int)) "missing" [ 1; 2 ] (Gap_detect.missing d)

let test_gap_reports_each_loss_once () =
  let d = Gap_detect.create () in
  ignore (Gap_detect.note_data d 2);
  (match Gap_detect.note_data d 4 with
   | `Fresh gaps -> Alcotest.(check (list int)) "only the new hole" [ 3 ] gaps
   | `Duplicate -> Alcotest.fail "fresh");
  (* first packet already revealed 0 and 1 *)
  Alcotest.(check (list int)) "all missing" [ 0; 1; 3 ] (Gap_detect.missing d)

let test_gap_duplicate () =
  let d = Gap_detect.create () in
  ignore (Gap_detect.note_data d 1);
  Alcotest.(check bool) "dup flagged" true (Gap_detect.note_data d 1 = `Duplicate)

let test_gap_session_message () =
  let d = Gap_detect.create () in
  ignore (Gap_detect.note_data d 0);
  (* session advertises up to 2: both 1 and 2 (the tail) are missing *)
  Alcotest.(check (list int)) "tail loss detected" [ 1; 2 ]
    (Gap_detect.note_session d ~max_seq:2);
  Alcotest.(check (list int)) "session again adds nothing" []
    (Gap_detect.note_session d ~max_seq:2);
  Alcotest.(check (option int)) "horizon" (Some 2) (Gap_detect.highest_seen d)

let test_gap_repair_clears_missing () =
  let d = Gap_detect.create () in
  ignore (Gap_detect.note_data d 2);
  Gap_detect.note_repaired d 1;
  Alcotest.(check (list int)) "only 0 left" [ 0 ] (Gap_detect.missing d);
  Alcotest.(check bool) "1 received" true (Gap_detect.received d 1);
  (* repairing something never missing is harmless *)
  Gap_detect.note_repaired d 9;
  Alcotest.(check bool) "9 received" true (Gap_detect.received d 9)

let test_gap_data_after_session () =
  let d = Gap_detect.create () in
  Alcotest.(check (list int)) "session first" [ 0; 1 ] (Gap_detect.note_session d ~max_seq:1);
  (match Gap_detect.note_data d 0 with
   | `Fresh gaps -> Alcotest.(check (list int)) "no new gaps" [] gaps
   | `Duplicate -> Alcotest.fail "fresh");
  Alcotest.(check (list int)) "1 still missing" [ 1 ] (Gap_detect.missing d)

let qcheck_gap_invariant =
  QCheck.Test.make ~name:"received+missing partition the horizon" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (int_bound 40))
    (fun seqs ->
      let d = Gap_detect.create () in
      List.iter (fun seq -> ignore (Gap_detect.note_data d seq)) seqs;
      match Gap_detect.highest_seen d with
      | None -> false
      | Some h ->
        let missing = Gap_detect.missing d in
        List.for_all (fun s -> s <= h && not (Gap_detect.received d s)) missing
        && List.length missing + Gap_detect.received_count d >= h + 1)

(* ------------------------------------------------------------------ *)
(* Model tests: windowed detector vs the set-based oracle              *)
(* ------------------------------------------------------------------ *)

module Gap_oracle = Protocol.Gap_oracle

(* an event is (tag, seq): tags 0-3 deliver data, 4 is a session
   advertisement, 5-6 a repair — data-heavy like real traffic *)
let apply_event d o (tag, seq) =
  match tag mod 7 with
  | 4 -> Gap_detect.note_session d ~max_seq:seq = Gap_oracle.note_session o ~max_seq:seq
  | 5 | 6 ->
    Gap_detect.note_repaired d seq;
    Gap_oracle.note_repaired o seq;
    true
  | _ -> Gap_detect.note_data d seq = Gap_oracle.note_data o seq

let observables_agree d o =
  Gap_detect.missing d = Gap_oracle.missing o
  && Gap_detect.missing_count d = Gap_oracle.missing_count o
  && Gap_detect.received_count d = Gap_oracle.received_count o
  && Gap_detect.highest_seen d = Gap_oracle.highest_seen o
  && Gap_detect.digest d = Gap_oracle.digest o

let qcheck_gap_model =
  QCheck.Test.make ~name:"windowed gap-detect = set oracle (every observable)"
    ~count:1_000
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 6) (int_bound 900)))
    (fun events ->
      let d = Gap_detect.create () in
      let o = Gap_oracle.create () in
      List.for_all
        (fun ev ->
          apply_event d o ev
          && observables_agree d o
          && List.for_all
               (fun s -> Gap_detect.received d s = Gap_oracle.received o s)
               [ 0; 1; 7; 63; 511; 512; 901 ])
        events)

(* seqs drawn far apart force the bitset window to slide and regrow *)
let qcheck_gap_model_wide =
  QCheck.Test.make ~name:"windowed gap-detect = set oracle (sparse seqs)" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 25) (pair (int_bound 6) (int_bound 20_000)))
    (fun events ->
      let d = Gap_detect.create () in
      let o = Gap_oracle.create () in
      List.for_all (fun ev -> apply_event d o ev && observables_agree d o) events)

let qcheck_digest_index =
  QCheck.Test.make ~name:"indexed digest = list digest" ~count:1_000
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 6)
           (pair (int_bound 8)
              (pair (int_bound 30) (list_of_size Gen.(int_range 0 10) (int_bound 30)))))
        (list_of_size Gen.(int_range 1 20) (pair (int_bound 9) (int_bound 31))))
    (fun (raw, queries) ->
      let digest =
        List.map
          (fun (s, (h, miss)) -> (src s, (h, List.sort_uniq Int.compare miss)))
          raw
        |> List.sort_uniq (fun (a, _) (b, _) -> Node_id.compare a b)
      in
      let idx = Recv_log.index digest in
      List.for_all
        (fun (s, seq) ->
          let q = id ~source:s seq in
          Recv_log.digest_has digest q = Recv_log.indexed_has idx q)
        queries)

(* the indexed form built from a live log agrees with the list form *)
let qcheck_digest_index_from_log =
  QCheck.Test.make ~name:"indexed digest = list digest (live log)" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_bound 2) (int_bound 50)))
    (fun events ->
      let log = Recv_log.create () in
      List.iter (fun (s, seq) -> ignore (Recv_log.note_data log (id ~source:s seq))) events;
      let digest = Recv_log.digest log in
      let idx = Recv_log.index digest in
      List.for_all
        (fun s ->
          List.for_all
            (fun seq ->
              let q = id ~source:s seq in
              Recv_log.digest_has digest q = Recv_log.indexed_has idx q)
            (List.init 52 Fun.id))
        [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Recv_log                                                            *)
(* ------------------------------------------------------------------ *)

let test_recv_log_multi_source () =
  let log = Recv_log.create () in
  ignore (Recv_log.note_data log (id ~source:0 1));
  ignore (Recv_log.note_data log (id ~source:1 2));
  Alcotest.(check (list msg_id)) "gaps per source"
    [ id ~source:0 0; id ~source:1 0; id ~source:1 1 ]
    (Recv_log.missing log);
  Alcotest.(check (list int)) "sources" [ 0; 1 ]
    (List.map Node_id.to_int (Recv_log.sources log))

let test_recv_log_fresh_losses () =
  let log = Recv_log.create () in
  match Recv_log.note_data log (id 2) with
  | Recv_log.Fresh losses ->
    Alcotest.(check (list msg_id)) "losses 0,1" [ id 0; id 1 ] losses
  | Recv_log.Duplicate -> Alcotest.fail "fresh"

let test_recv_log_duplicates_counted () =
  let log = Recv_log.create () in
  ignore (Recv_log.note_data log (id 0));
  Alcotest.(check bool) "dup" true (Recv_log.note_data log (id 0) = Recv_log.Duplicate);
  Alcotest.(check bool) "useful repair" true (Recv_log.note_repaired log (id 1));
  Alcotest.(check bool) "dup repair" false (Recv_log.note_repaired log (id 1));
  Alcotest.(check int) "two duplicates" 2 (Recv_log.duplicates log)

let test_recv_log_session () =
  let log = Recv_log.create () in
  let losses = Recv_log.note_session log ~source:(src 0) ~max_seq:1 in
  Alcotest.(check (list msg_id)) "all missing" [ id 0; id 1 ] losses;
  Alcotest.(check int) "missing count" 2 (Recv_log.missing_count log);
  Alcotest.(check int) "received none" 0 (Recv_log.received_count log)

let suites =
  [
    ( "protocol.msg_id",
      [
        Alcotest.test_case "basics" `Quick test_msg_id_basics;
        Alcotest.test_case "ordering" `Quick test_msg_id_order;
      ] );
    ( "protocol.gap_detect",
      [
        Alcotest.test_case "in order" `Quick test_gap_in_order_no_losses;
        Alcotest.test_case "detects hole" `Quick test_gap_detects_hole;
        Alcotest.test_case "reports once" `Quick test_gap_reports_each_loss_once;
        Alcotest.test_case "duplicate" `Quick test_gap_duplicate;
        Alcotest.test_case "session message" `Quick test_gap_session_message;
        Alcotest.test_case "repair clears" `Quick test_gap_repair_clears_missing;
        Alcotest.test_case "data after session" `Quick test_gap_data_after_session;
        QCheck_alcotest.to_alcotest qcheck_gap_invariant;
      ] );
    ( "protocol.gap_model",
      [
        QCheck_alcotest.to_alcotest qcheck_gap_model;
        QCheck_alcotest.to_alcotest qcheck_gap_model_wide;
      ] );
    ( "protocol.digest_index",
      [
        QCheck_alcotest.to_alcotest qcheck_digest_index;
        QCheck_alcotest.to_alcotest qcheck_digest_index_from_log;
      ] );
    ( "protocol.recv_log",
      [
        Alcotest.test_case "multi source" `Quick test_recv_log_multi_source;
        Alcotest.test_case "fresh losses" `Quick test_recv_log_fresh_losses;
        Alcotest.test_case "duplicates" `Quick test_recv_log_duplicates_counted;
        Alcotest.test_case "session" `Quick test_recv_log_session;
      ] );
  ]
