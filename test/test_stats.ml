(* Tests for the statistics substrate: distributions against known
   values, summaries against direct computation, histograms, series. *)

open Stats

let check_close ?(eps = 1e-9) what expected actual =
  Alcotest.(check (float eps)) what expected actual

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let test_log_gamma_known () =
  (* Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi) *)
  check_close ~eps:1e-10 "lnΓ(1)" 0.0 (Dist.log_gamma 1.0);
  check_close ~eps:1e-10 "lnΓ(2)" 0.0 (Dist.log_gamma 2.0);
  check_close ~eps:1e-9 "lnΓ(5)" (log 24.0) (Dist.log_gamma 5.0);
  check_close ~eps:1e-9 "lnΓ(0.5)" (0.5 *. log Float.pi) (Dist.log_gamma 0.5)

let test_log_factorial () =
  check_close "0!" 0.0 (Dist.log_factorial 0);
  check_close "1!" 0.0 (Dist.log_factorial 1);
  check_close ~eps:1e-9 "10!" (log 3628800.0) (Dist.log_factorial 10);
  (* large n goes through log_gamma; compare with Stirling-summed exact value *)
  let exact_300 = ref 0.0 in
  for i = 2 to 300 do
    exact_300 := !exact_300 +. log (float_of_int i)
  done;
  check_close ~eps:1e-6 "300!" !exact_300 (Dist.log_factorial 300)

let test_binomial_pmf_known () =
  (* Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16 *)
  List.iteri
    (fun k expected ->
      check_close ~eps:1e-12 (Printf.sprintf "B(4,.5) k=%d" k) expected
        (Dist.binomial_pmf ~n:4 ~p:0.5 k))
    [ 0.0625; 0.25; 0.375; 0.25; 0.0625 ]

let test_binomial_pmf_sums_to_one () =
  let total = ref 0.0 in
  for k = 0 to 30 do
    total := !total +. Dist.binomial_pmf ~n:30 ~p:0.37 k
  done;
  check_close ~eps:1e-10 "sums to 1" 1.0 !total

let test_binomial_edge_cases () =
  check_close "p=0, k=0" 1.0 (Dist.binomial_pmf ~n:10 ~p:0.0 0);
  check_close "p=0, k=1" 0.0 (Dist.binomial_pmf ~n:10 ~p:0.0 1);
  check_close "p=1, k=n" 1.0 (Dist.binomial_pmf ~n:10 ~p:1.0 10);
  check_close "k out of range" 0.0 (Dist.binomial_pmf ~n:10 ~p:0.5 11);
  check_close "negative k" 0.0 (Dist.binomial_pmf ~n:10 ~p:0.5 (-1))

let test_binomial_cdf_monotone () =
  let prev = ref (-1.0) in
  for k = -1 to 20 do
    let c = Dist.binomial_cdf ~n:20 ~p:0.3 k in
    Alcotest.(check bool) "monotone" true (c >= !prev -. 1e-12);
    prev := c
  done;
  check_close ~eps:1e-12 "cdf at n" 1.0 (Dist.binomial_cdf ~n:20 ~p:0.3 20)

let test_poisson_pmf_known () =
  (* Poisson(6): P(0) = e^-6 ≈ 0.002478752 *)
  check_close ~eps:1e-9 "P(0;6)" (exp (-6.0)) (Dist.poisson_pmf ~lambda:6.0 0);
  (* mode of Poisson(6) at k=5 and 6 with equal mass 0.16062... *)
  check_close ~eps:1e-9 "P(5;6)=P(6;6)"
    (Dist.poisson_pmf ~lambda:6.0 5)
    (Dist.poisson_pmf ~lambda:6.0 6)

let test_poisson_pmf_sums_to_one () =
  let total = ref 0.0 in
  for k = 0 to 100 do
    total := !total +. Dist.poisson_pmf ~lambda:8.0 k
  done;
  check_close ~eps:1e-9 "sums to ~1" 1.0 !total

let test_poisson_approximates_binomial () =
  (* paper Section 3.2: Binomial(n, C/n) → Poisson(C) for large n *)
  let c = 6.0 and n = 10_000 in
  for k = 0 to 15 do
    let b = Dist.binomial_pmf ~n ~p:(c /. float_of_int n) k in
    let p = Dist.poisson_pmf ~lambda:c k in
    Alcotest.(check bool)
      (Printf.sprintf "close at k=%d" k)
      true
      (abs_float (b -. p) < 1e-3)
  done

let test_prob_no_bufferer_figure4 () =
  (* paper: "When C = 6 ... the probability is only 0.25%" *)
  let p6 = Dist.prob_no_bufferer ~c:6.0 in
  Alcotest.(check bool) "0.25% at C=6" true (abs_float (p6 -. 0.0025) < 2e-4);
  (* decreases exponentially: ratio of consecutive values is e^-1 *)
  for c = 1 to 5 do
    let r =
      Dist.prob_no_bufferer ~c:(float_of_int (c + 1))
      /. Dist.prob_no_bufferer ~c:(float_of_int c)
    in
    check_close ~eps:1e-12 "ratio e^-1" (exp (-1.0)) r
  done

let test_prob_no_request () =
  (* as n → ∞ this approaches e^-p (paper Section 3.1) *)
  let v = Dist.prob_no_request ~n:100_000 ~p:0.5 in
  Alcotest.(check bool) "approaches e^-p" true (abs_float (v -. exp (-0.5)) < 1e-3);
  (* more missing members => lower probability of silence *)
  Alcotest.(check bool) "decreasing in p" true
    (Dist.prob_no_request ~n:100 ~p:0.9 < Dist.prob_no_request ~n:100 ~p:0.1)

let qcheck_binomial_pmf_in_unit =
  QCheck.Test.make ~name:"binomial pmf in [0,1]" ~count:300
    QCheck.(triple (int_bound 50) (float_bound_inclusive 1.0) (int_bound 60))
    (fun (n, p, k) ->
      let v = Dist.binomial_pmf ~n ~p k in
      v >= 0.0 && v <= 1.0 +. 1e-12)

let qcheck_poisson_pmf_in_unit =
  QCheck.Test.make ~name:"poisson pmf in [0,1]" ~count:300
    QCheck.(pair (float_bound_inclusive 50.0) (int_bound 100))
    (fun (lambda, k) ->
      let v = Dist.poisson_pmf ~lambda k in
      v >= 0.0 && v <= 1.0 +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Summary.create () in
  Summary.add_many s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Summary.count s);
  check_close "mean" 5.0 (Summary.mean s);
  (* sample variance of this classic dataset is 32/7 *)
  check_close ~eps:1e-9 "variance" (32.0 /. 7.0) (Summary.variance s);
  check_close "min" 2.0 (Summary.min s);
  check_close "max" 9.0 (Summary.max s);
  check_close "total" 40.0 (Summary.total s)

let test_summary_empty () =
  let s = Summary.create () in
  check_close "mean of empty" 0.0 (Summary.mean s);
  check_close "variance of empty" 0.0 (Summary.variance s);
  Alcotest.check_raises "min raises" (Invalid_argument "Summary.min: empty summary")
    (fun () -> ignore (Summary.min s))

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 3.5;
  check_close "mean" 3.5 (Summary.mean s);
  check_close "variance" 0.0 (Summary.variance s);
  check_close "median" 3.5 (Summary.median s)

let test_summary_percentiles () =
  let s = Summary.create () in
  Summary.add_many s (List.init 101 float_of_int) (* 0..100 *);
  check_close "p0" 0.0 (Summary.percentile s 0.0);
  check_close "p50" 50.0 (Summary.percentile s 50.0);
  check_close "p95" 95.0 (Summary.percentile s 95.0);
  check_close "p100" 100.0 (Summary.percentile s 100.0)

let test_summary_percentile_interpolation () =
  let s = Summary.create () in
  Summary.add_many s [ 10.0; 20.0 ];
  check_close "p25 interpolates" 12.5 (Summary.percentile s 25.0)

let check_summary_equals_direct what direct m =
  Alcotest.(check int) (what ^ " count") (Summary.count direct) (Summary.count m);
  check_close ~eps:1e-9 (what ^ " mean") (Summary.mean direct) (Summary.mean m);
  check_close ~eps:1e-9 (what ^ " variance") (Summary.variance direct) (Summary.variance m);
  check_close ~eps:1e-9 (what ^ " total") (Summary.total direct) (Summary.total m);
  if Summary.count direct > 0 then begin
    check_close (what ^ " min") (Summary.min direct) (Summary.min m);
    check_close (what ^ " max") (Summary.max direct) (Summary.max m);
    check_close ~eps:1e-9 (what ^ " median") (Summary.median direct) (Summary.median m)
  end

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () in
  Summary.add_many a [ 1.0; 2.0; 3.0 ];
  Summary.add_many b [ 10.0; 20.0 ];
  Summary.merge a b;
  let direct = Summary.create () in
  Summary.add_many direct [ 1.0; 2.0; 3.0; 10.0; 20.0 ];
  check_summary_equals_direct "merge" direct a;
  (* the source is left intact *)
  Alcotest.(check int) "source count" 2 (Summary.count b);
  check_close "source mean" 15.0 (Summary.mean b)

let test_summary_merge_empty () =
  (* empty into empty *)
  let a = Summary.create () and b = Summary.create () in
  Summary.merge a b;
  check_summary_equals_direct "empty+empty" (Summary.create ()) a;
  (* empty into non-empty: no-op *)
  let a = Summary.create () in
  Summary.add_many a [ 4.0; 6.0 ];
  Summary.merge a (Summary.create ());
  let direct = Summary.create () in
  Summary.add_many direct [ 4.0; 6.0 ];
  check_summary_equals_direct "nonempty+empty" direct a;
  (* non-empty into empty: adopts the source's stats *)
  let a = Summary.create () and b = Summary.create () in
  Summary.add_many b [ 4.0; 6.0 ];
  Summary.merge a b;
  check_summary_equals_direct "empty+nonempty" direct a

let test_summary_merge_single () =
  let a = Summary.create () and b = Summary.create () in
  Summary.add a 2.0;
  Summary.add b 7.0;
  Summary.merge a b;
  let direct = Summary.create () in
  Summary.add_many direct [ 2.0; 7.0 ];
  check_summary_equals_direct "single+single" direct a

let qcheck_summary_merge_matches_sequential =
  QCheck.Test.make ~name:"merge equals sequential add stream" ~count:300
    QCheck.(pair (list (float_bound_inclusive 1000.0)) (list (float_bound_inclusive 1000.0)))
    (fun (xs, ys) ->
      let a = Summary.create () and b = Summary.create () in
      Summary.add_many a xs;
      Summary.add_many b ys;
      Summary.merge a b;
      let direct = Summary.create () in
      Summary.add_many direct (xs @ ys);
      Summary.count a = Summary.count direct
      && abs_float (Summary.mean a -. Summary.mean direct) < 1e-6
      && abs_float (Summary.variance a -. Summary.variance direct) < 1e-4
      && abs_float (Summary.total a -. Summary.total direct) < 1e-6
      && (Summary.count direct = 0
          || (Summary.min a = Summary.min direct
              && Summary.max a = Summary.max direct
              && abs_float (Summary.median a -. Summary.median direct) < 1e-9)))

let test_summary_ci () =
  let s = Summary.create () in
  Summary.add_many s (List.init 100 (fun i -> float_of_int (i mod 10)));
  let hw = Summary.ci95_halfwidth s in
  check_close ~eps:1e-9 "ci formula" (1.96 *. Summary.stddev s /. 10.0) hw

let qcheck_summary_matches_direct =
  QCheck.Test.make ~name:"welford mean/var match direct computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Summary.create () in
      Summary.add_many s xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      abs_float (Summary.mean s -. mean) < 1e-6
      && abs_float (Summary.variance s -. var) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Hist                                                                *)
(* ------------------------------------------------------------------ *)

let test_hist_binning () =
  let h = Hist.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Hist.add h) [ 0.0; 0.5; 1.0; 9.99; -1.0; 10.0; 100.0 ];
  check_close "bin 0 holds [0,1)" 2.0 (Hist.bin_weight h 0);
  check_close "bin 1 holds [1,2)" 1.0 (Hist.bin_weight h 1);
  check_close "bin 9 holds [9,10)" 1.0 (Hist.bin_weight h 9);
  check_close "underflow" 1.0 (Hist.underflow h);
  check_close "overflow (hi inclusive-exclusive)" 2.0 (Hist.overflow h);
  Alcotest.(check int) "count" 7 (Hist.count h)

let test_hist_weights () =
  let h = Hist.create ~lo:0.0 ~hi:2.0 ~bins:2 in
  Hist.add ~weight:3.0 h 0.5;
  Hist.add ~weight:1.0 h 1.5;
  check_close "weighted bin" 3.0 (Hist.bin_weight h 0);
  check_close "total weight" 4.0 (Hist.total_weight h);
  let norm = Hist.normalized h in
  check_close "normalized" 0.75 norm.(0)

let test_hist_mode () =
  let h = Hist.create ~lo:0.0 ~hi:3.0 ~bins:3 in
  Alcotest.(check (option int)) "no mode when empty" None (Hist.mode_bin h);
  List.iter (Hist.add h) [ 0.1; 1.1; 1.2; 2.5 ];
  Alcotest.(check (option int)) "mode" (Some 1) (Hist.mode_bin h)

let test_hist_bin_range () =
  let h = Hist.create ~lo:10.0 ~hi:20.0 ~bins:5 in
  let lo, hi = Hist.bin_range h 2 in
  check_close "range lo" 14.0 lo;
  check_close "range hi" 16.0 hi

(* ------------------------------------------------------------------ *)
(* Series                                                              *)
(* ------------------------------------------------------------------ *)

let test_series_sorting () =
  let s = Series.create () in
  Series.record s ~time:5.0 2.0;
  Series.record s ~time:1.0 1.0;
  Series.record s ~time:3.0 4.0;
  let pts = Series.points s in
  Alcotest.(check (list (float 1e-9))) "sorted times" [ 1.0; 3.0; 5.0 ]
    (Array.to_list (Array.map fst pts))

let test_series_value_at () =
  let s = Series.create () in
  Series.record s ~time:10.0 1.0;
  Series.record s ~time:20.0 2.0;
  Alcotest.(check (option (float 1e-9))) "before first" None (Series.value_at s 5.0);
  Alcotest.(check (option (float 1e-9))) "at point" (Some 1.0) (Series.value_at s 10.0);
  Alcotest.(check (option (float 1e-9))) "between (step)" (Some 1.0) (Series.value_at s 15.0);
  Alcotest.(check (option (float 1e-9))) "after last" (Some 2.0) (Series.value_at s 99.0)

let test_series_equal_times_last_wins () =
  let s = Series.create () in
  Series.record s ~time:10.0 1.0;
  Series.record s ~time:10.0 7.0;
  Alcotest.(check (option (float 1e-9))) "latest insertion wins" (Some 7.0)
    (Series.value_at s 10.0)

let test_series_sample () =
  let s = Series.create () in
  Series.record s ~time:10.0 1.0;
  Series.record s ~time:20.0 2.0;
  let sampled = Series.sample s ~times:[| 0.0; 10.0; 15.0; 25.0 |] in
  Alcotest.(check (list (float 1e-9))) "step resample" [ 1.0; 1.0; 1.0; 2.0 ]
    (Array.to_list (Array.map snd sampled))

let test_series_map_and_csv () =
  let s = Series.create ~name:"buffered" () in
  Series.record s ~time:1.0 2.0;
  let doubled = Series.map_values (fun v -> v *. 2.0) s in
  Alcotest.(check (option (float 1e-9))) "mapped" (Some 4.0) (Series.value_at doubled 1.0);
  Alcotest.(check (list string)) "csv" [ "1.000000,2.000000" ] (Series.to_csv_rows s);
  Alcotest.(check string) "name preserved" "buffered" (Series.name doubled)

let qcheck_series_value_at_is_last_leq =
  QCheck.Test.make ~name:"value_at = last point with time <= query" ~count:200
    QCheck.(pair (list (pair (float_bound_inclusive 100.0) (float_bound_inclusive 10.0)))
              (float_bound_inclusive 100.0))
    (fun (pts, q) ->
      let s = Series.create () in
      List.iter (fun (time, v) -> Series.record s ~time v) pts;
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) pts
        |> List.filter (fun (time, _) -> time <= q)
        |> List.rev
        |> function [] -> None | (_, v) :: _ -> Some v
      in
      Series.value_at s q = expected)

let suites =
  [
    ( "stats.dist",
      [
        Alcotest.test_case "log_gamma known values" `Quick test_log_gamma_known;
        Alcotest.test_case "log_factorial" `Quick test_log_factorial;
        Alcotest.test_case "binomial known values" `Quick test_binomial_pmf_known;
        Alcotest.test_case "binomial sums to 1" `Quick test_binomial_pmf_sums_to_one;
        Alcotest.test_case "binomial edges" `Quick test_binomial_edge_cases;
        Alcotest.test_case "binomial cdf monotone" `Quick test_binomial_cdf_monotone;
        Alcotest.test_case "poisson known values" `Quick test_poisson_pmf_known;
        Alcotest.test_case "poisson sums to 1" `Quick test_poisson_pmf_sums_to_one;
        Alcotest.test_case "poisson limit of binomial" `Quick test_poisson_approximates_binomial;
        Alcotest.test_case "figure 4 value" `Quick test_prob_no_bufferer_figure4;
        Alcotest.test_case "prob_no_request" `Quick test_prob_no_request;
        QCheck_alcotest.to_alcotest qcheck_binomial_pmf_in_unit;
        QCheck_alcotest.to_alcotest qcheck_poisson_pmf_in_unit;
      ] );
    ( "stats.summary",
      [
        Alcotest.test_case "basic moments" `Quick test_summary_basic;
        Alcotest.test_case "empty" `Quick test_summary_empty;
        Alcotest.test_case "single sample" `Quick test_summary_single;
        Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
        Alcotest.test_case "percentile interpolation" `Quick test_summary_percentile_interpolation;
        Alcotest.test_case "merge" `Quick test_summary_merge;
        Alcotest.test_case "merge with empty" `Quick test_summary_merge_empty;
        Alcotest.test_case "merge single elements" `Quick test_summary_merge_single;
        Alcotest.test_case "confidence interval" `Quick test_summary_ci;
        QCheck_alcotest.to_alcotest qcheck_summary_matches_direct;
        QCheck_alcotest.to_alcotest qcheck_summary_merge_matches_sequential;
      ] );
    ( "stats.hist",
      [
        Alcotest.test_case "binning" `Quick test_hist_binning;
        Alcotest.test_case "weights" `Quick test_hist_weights;
        Alcotest.test_case "mode" `Quick test_hist_mode;
        Alcotest.test_case "bin range" `Quick test_hist_bin_range;
      ] );
    ( "stats.series",
      [
        Alcotest.test_case "sorting" `Quick test_series_sorting;
        Alcotest.test_case "value_at" `Quick test_series_value_at;
        Alcotest.test_case "equal times last wins" `Quick test_series_equal_times_last_wins;
        Alcotest.test_case "sample" `Quick test_series_sample;
        Alcotest.test_case "map and csv" `Quick test_series_map_and_csv;
        QCheck_alcotest.to_alcotest qcheck_series_value_at_is_last_leq;
      ] );
  ]
