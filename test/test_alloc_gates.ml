(* Per-path allocation gates, asserted under dune runtest.

   The budgets live in Experiments.Alloc_paths — the same table bench
   --alloc-gates reports into BENCH_alloc.json — so a regression that
   puts an allocation back on a gated hot path (a closure capture, a
   [Some] box, a float boxed at a call boundary) fails the build here
   instead of quietly shifting a trajectory number. The drivers run in
   quick mode; the budgets are identical to the full bench. *)

module Ap = Experiments.Alloc_paths

(* one measurement pass shared by every case (the drivers are not
   free: each stages a group or an SoA arena) *)
let results = lazy (Ap.run ~quick:true ())

let find name =
  match List.find_opt (fun r -> String.equal r.Ap.name name) (Lazy.force results) with
  | Some r -> r
  | None -> Alcotest.failf "no gate named %s" name

let check_gate name () =
  let r = find name in
  if r.Ap.exact then
    Alcotest.(check (float 0.0))
      (name ^ " allocates exactly nothing") 0.0 r.Ap.minor_words_per_op
  else if r.Ap.minor_words_per_op > r.Ap.budget then
    Alcotest.failf "%s: %.3f minor words/op exceeds the %.1f budget" name
      r.Ap.minor_words_per_op r.Ap.budget

let test_all_hold () =
  match Ap.failures (Lazy.force results) with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "\n" fs)

let gate name = Alcotest.test_case name `Quick (check_gate name)

let suites =
  [
    ( "rrmp.allocation_gates",
      [
        gate "alloc/deliver";
        gate "alloc/gap-note";
        gate "alloc/local-repair";
        gate "alloc/remote-repair";
        gate "alloc/regional-fanout";
        gate "alloc/deadline-touch";
        gate "alloc/codec-encode";
        gate "alloc/codec-decode";
        Alcotest.test_case "every budget holds" `Quick test_all_hold;
      ] );
  ]
