(* Tests for rrmp_lint (tools/lint): each rule proven to fire on a
   fixture file with the right rule id and line, suppression and
   sorted-context clearing proven to work, and the real lib/ tree
   proven clean against the committed lint.toml. *)

module Lint = Lint_core
module Config = Lint_core.Config

(* `dune runtest` runs this from _build/default/test (the fixtures
   directory is a dep of the test stanza); `dune exec` runs it from the
   workspace root — resolve both *)
let fixture_root = if Sys.file_exists "lint_fixtures" then "." else "test"

let repo_root = if Sys.file_exists "lint.toml" then "." else ".."

let fcfg =
  {
    Config.roots = [ "lint_fixtures" ];
    exclude = [];
    d1_dirs = [ "lint_fixtures" ];
    d1_allow = [];
    d2_dirs = [ "lint_fixtures" ];
    d3_dirs = [ "lint_fixtures" ];
    d3_id_idents = [ "id" ];
    d4_dirs = [ "lint_fixtures" ];
    d4_allow = [];
    h1_files = [ "lint_fixtures/h1_alloc.ml" ];
    h2_files = [ "lint_fixtures/h2_box.ml" ];
    m1_dirs = [ "lint_fixtures/m1" ];
    m1_exempt = [];
  }

let hits file =
  let findings, _, _ = Lint.scan_file ~root:fixture_root fcfg file in
  List.map (fun (f : Lint.finding) -> (f.rule, f.line)) findings

let check_hits name file expected =
  Alcotest.(check (list (pair string int))) name expected (hits file)

let test_d1 () =
  check_hits "ambient PRNG, clock, poly hash" "lint_fixtures/d1_clock.ml"
    [ ("D1", 2); ("D1", 4); ("D1", 6) ]

let test_d2 () =
  (* only the escaping fold fires: both sorted forms are auto-cleared *)
  check_hits "escaping fold only" "lint_fixtures/d2_escape.ml" [ ("D2", 3) ]

let test_d3 () =
  check_hits "poly = / compare / Hashtbl / id ident" "lint_fixtures/d3_poly.ml"
    [ ("D3", 2); ("D3", 4); ("D3", 6); ("D3", 8) ]

let test_d4 () = check_hits "env read" "lint_fixtures/d4_env.ml" [ ("D4", 2) ]

let test_h1 () =
  check_hits "append and sprintf in hot module" "lint_fixtures/h1_alloc.ml"
    [ ("H1", 2); ("H1", 4) ]

let test_h1_only_when_hot () =
  (* the same file scanned without the hot marker is clean *)
  let cold = { fcfg with Config.h1_files = [] } in
  let findings, _, _ = Lint.scan_file ~root:fixture_root cold "lint_fixtures/h1_alloc.ml" in
  Alcotest.(check int) "not hot, not flagged" 0 (List.length findings)

let test_h2 () =
  check_hits "find_opt, closure argument, Some, tuple" "lint_fixtures/h2_box.ml"
    [ ("H2", 2); ("H2", 4); ("H2", 6); ("H2", 8) ]

let test_h2_ctor_args_exempt () =
  (* Pair (x, y) on line 14 is the constructor's own block, not a
     tuple allocation: no finding past line 8 *)
  Alcotest.(check bool) "no finding on the constructor application" true
    (List.for_all (fun (_, line) -> line <= 8) (hits "lint_fixtures/h2_box.ml"))

let test_h2_only_when_listed () =
  let cold = { fcfg with Config.h2_files = [] } in
  let findings, _, _ = Lint.scan_file ~root:fixture_root cold "lint_fixtures/h2_box.ml" in
  Alcotest.(check int) "not listed, not flagged" 0 (List.length findings)

let test_s1 () =
  check_hits "unknown rule id and missing justification" "lint_fixtures/s1_bad.ml"
    [ ("S1", 3); ("S1", 5) ]

let test_suppression () =
  let findings, suppressed, spans =
    Lint.scan_file ~root:fixture_root fcfg "lint_fixtures/suppress_ok.ml"
  in
  Alcotest.(check int) "no unsuppressed findings" 0 (List.length findings);
  Alcotest.(check (list (pair string int)))
    "the D1 draw was cleared, not missed"
    [ ("D1", 3) ]
    (List.map (fun (f : Lint.finding) -> (f.rule, f.line)) suppressed);
  match spans with
  | [ s ] ->
    Alcotest.(check string) "audited rule" "D1" s.Lint.s_rule;
    Alcotest.(check string) "audited justification" "fixture: deliberately audited draw"
      s.Lint.s_just
  | l -> Alcotest.failf "expected one audited suppression, got %d" (List.length l)

let test_clean_fixture () =
  check_hits "violation-free module" "lint_fixtures/clean.ml" []

let test_m1 () =
  let report = Lint.scan_tree ~root:fixture_root fcfg in
  let m1 =
    List.filter_map
      (fun (f : Lint.finding) -> if f.rule = "M1" then Some f.file else None)
      report.Lint.findings
  in
  Alcotest.(check (list string)) "only the orphan is flagged"
    [ "lint_fixtures/m1/orphan.ml" ] m1

let test_config_load () =
  let cfg = Config.load (Filename.concat repo_root "lint.toml") in
  Alcotest.(check (list string)) "roots" [ "lib"; "bin"; "bench"; "test" ] cfg.Config.roots;
  Alcotest.(check bool) "fixtures excluded" true
    (List.mem "test/lint_fixtures" cfg.Config.exclude);
  Alcotest.(check bool) "member.ml declared hot" true
    (List.mem "lib/rrmp/member.ml" cfg.Config.h1_files);
  Alcotest.(check bool) "wire.ml declared hot" true
    (List.mem "lib/rrmp/wire.ml" cfg.Config.h1_files);
  Alcotest.(check bool) "member_soa.ml behind the exact-zero gate" true
    (List.mem "lib/rrmp/member_soa.ml" cfg.Config.h2_files)

let test_clean_tree () =
  (* the committed config over the real lib/ tree: zero unsuppressed
     findings, and every audited suppression carries a justification *)
  let cfg =
    { (Config.load (Filename.concat repo_root "lint.toml")) with Config.roots = [ "lib" ] }
  in
  let report = Lint.scan_tree ~root:repo_root cfg in
  List.iter (fun (f : Lint.finding) -> Format.eprintf "unexpected: %s:%d [%s] %s@." f.file f.line f.rule f.message)
    report.Lint.findings;
  Alcotest.(check int) "lib/ is lint-clean" 0 (List.length report.Lint.findings);
  Alcotest.(check bool) "suppressions are audited" true
    (report.Lint.suppressions <> []
     && List.for_all (fun s -> String.length s.Lint.s_just > 0) report.Lint.suppressions)

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "D1 nondeterminism sources" `Quick test_d1;
        Alcotest.test_case "D2 unordered escape" `Quick test_d2;
        Alcotest.test_case "D3 polymorphic structure" `Quick test_d3;
        Alcotest.test_case "D4 environment reads" `Quick test_d4;
        Alcotest.test_case "H1 hot-path allocation" `Quick test_h1;
        Alcotest.test_case "H1 scoped to hot modules" `Quick test_h1_only_when_hot;
        Alcotest.test_case "H2 boxing hazards" `Quick test_h2;
        Alcotest.test_case "H2 constructor arguments exempt" `Quick test_h2_ctor_args_exempt;
        Alcotest.test_case "H2 scoped to exact-zero modules" `Quick test_h2_only_when_listed;
        Alcotest.test_case "S1 suppression hygiene" `Quick test_s1;
        Alcotest.test_case "M1 missing interface" `Quick test_m1;
      ] );
    ( "lint.tree",
      [
        Alcotest.test_case "suppression audit trail" `Quick test_suppression;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "lint.toml loads" `Quick test_config_load;
        Alcotest.test_case "lib tree is clean" `Quick test_clean_tree;
      ] );
  ]
