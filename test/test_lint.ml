(* Tests for rrmp_lint (tools/lint): each rule proven to fire on a
   fixture file with the right rule id and line, suppression and
   sorted-context clearing proven to work, and the real lib/ tree
   proven clean against the committed lint.toml. *)

module Lint = Lint_core
module Config = Lint_core.Config

(* `dune runtest` runs this from _build/default/test (the fixtures
   directory is a dep of the test stanza); `dune exec` runs it from the
   workspace root — resolve both *)
let fixture_root = if Sys.file_exists "lint_fixtures" then "." else "test"

let repo_root = if Sys.file_exists "lint.toml" then "." else ".."

let fcfg =
  {
    Config.roots = [ "lint_fixtures" ];
    exclude = [];
    d1_dirs = [ "lint_fixtures" ];
    d1_allow = [];
    d2_dirs = [ "lint_fixtures" ];
    d3_dirs = [ "lint_fixtures" ];
    d3_id_idents = [ "id" ];
    d4_dirs = [ "lint_fixtures" ];
    d4_allow = [];
    h1_files = [ "lint_fixtures/h1_alloc.ml" ];
    h2_files = [ "lint_fixtures/h2_box.ml" ];
    m1_dirs = [ "lint_fixtures/m1" ];
    m1_exempt = [];
    typed_dirs = [];
    p_roots = [];
    p_dirs = [];
    a_files = [];
  }

(* typed-pass configuration: the cmt fixtures under lint_fixtures/typed
   are compiled by ocamlc rules (see the dune file there), with a local
   [Pool.parallel_for] standing in for the engine's task spawner *)
let tcfg =
  {
    fcfg with
    Config.typed_dirs = [ "lint_fixtures/typed" ];
    p_roots = [ "Pool.parallel_for" ];
    p_dirs = [ "" ];
    a_files = [ "fx_alloc.ml" ];
  }

let typed_result =
  lazy
    (let cmts = Lint_typed.discover_cmts ~root:fixture_root tcfg in
     Lint_typed.analyze tcfg ~cmts)

let typed_hits rule =
  let r = Lazy.force typed_result in
  List.filter_map
    (fun (f : Lint.finding) -> if f.rule = rule then Some (f.file, f.line, f.col) else None)
    r.Lint_typed.findings

let hits file =
  let findings, _, _ = Lint.scan_file ~root:fixture_root fcfg file in
  List.map (fun (f : Lint.finding) -> (f.rule, f.line)) findings

let check_hits name file expected =
  Alcotest.(check (list (pair string int))) name expected (hits file)

let test_d1 () =
  check_hits "ambient PRNG, clock, poly hash" "lint_fixtures/d1_clock.ml"
    [ ("D1", 2); ("D1", 4); ("D1", 6) ]

let test_d2 () =
  (* only the escaping fold fires: both sorted forms are auto-cleared *)
  check_hits "escaping fold only" "lint_fixtures/d2_escape.ml" [ ("D2", 3) ]

let test_d3 () =
  check_hits "poly = / compare / Hashtbl / id ident" "lint_fixtures/d3_poly.ml"
    [ ("D3", 2); ("D3", 4); ("D3", 6); ("D3", 8) ]

let test_d4 () = check_hits "env read" "lint_fixtures/d4_env.ml" [ ("D4", 2) ]

let test_h1 () =
  check_hits "append and sprintf in hot module" "lint_fixtures/h1_alloc.ml"
    [ ("H1", 2); ("H1", 4) ]

let test_h1_only_when_hot () =
  (* the same file scanned without the hot marker is clean *)
  let cold = { fcfg with Config.h1_files = [] } in
  let findings, _, _ = Lint.scan_file ~root:fixture_root cold "lint_fixtures/h1_alloc.ml" in
  Alcotest.(check int) "not hot, not flagged" 0 (List.length findings)

let test_h2 () =
  check_hits "find_opt, closure argument, Some, tuple" "lint_fixtures/h2_box.ml"
    [ ("H2", 2); ("H2", 4); ("H2", 6); ("H2", 8) ]

let test_h2_ctor_args_exempt () =
  (* Pair (x, y) on line 14 is the constructor's own block, not a
     tuple allocation: no finding past line 8 *)
  Alcotest.(check bool) "no finding on the constructor application" true
    (List.for_all (fun (_, line) -> line <= 8) (hits "lint_fixtures/h2_box.ml"))

let test_h2_only_when_listed () =
  let cold = { fcfg with Config.h2_files = [] } in
  let findings, _, _ = Lint.scan_file ~root:fixture_root cold "lint_fixtures/h2_box.ml" in
  Alcotest.(check int) "not listed, not flagged" 0 (List.length findings)

let test_s1 () =
  check_hits "unknown rule id and missing justification" "lint_fixtures/s1_bad.ml"
    [ ("S1", 3); ("S1", 5) ]

let test_h1_scope () =
  (* suppression scoping is uniform: the allow clears the finding from
     the enclosing let (both the binding and the pattern attachment the
     parser produces) and from the expression; only the unaudited
     binding leaks *)
  let cfg = { fcfg with Config.h1_files = [ "lint_fixtures/h1_scope.ml" ] } in
  let findings, suppressed, _ =
    Lint.scan_file ~root:fixture_root cfg "lint_fixtures/h1_scope.ml"
  in
  Alcotest.(check (list (pair string int)))
    "only the unaudited append fires"
    [ ("H1", 18) ]
    (List.map (fun (f : Lint.finding) -> (f.rule, f.line)) findings);
  Alcotest.(check int) "all three placements audited" 3 (List.length suppressed)

let test_suppression () =
  let findings, suppressed, spans =
    Lint.scan_file ~root:fixture_root fcfg "lint_fixtures/suppress_ok.ml"
  in
  Alcotest.(check int) "no unsuppressed findings" 0 (List.length findings);
  Alcotest.(check (list (pair string int)))
    "the D1 draw was cleared, not missed"
    [ ("D1", 3) ]
    (List.map (fun (f : Lint.finding) -> (f.rule, f.line)) suppressed);
  match spans with
  | [ s ] ->
    Alcotest.(check string) "audited rule" "D1" s.Lint.s_rule;
    Alcotest.(check string) "audited justification" "fixture: deliberately audited draw"
      s.Lint.s_just
  | l -> Alcotest.failf "expected one audited suppression, got %d" (List.length l)

let test_clean_fixture () =
  check_hits "violation-free module" "lint_fixtures/clean.ml" []

let test_m1 () =
  let report = Lint.scan_tree ~root:fixture_root fcfg in
  let m1 =
    List.filter_map
      (fun (f : Lint.finding) -> if f.rule = "M1" then Some f.file else None)
      report.Lint.findings
  in
  Alcotest.(check (list string)) "only the orphan is flagged"
    [ "lint_fixtures/m1/orphan.ml" ] m1

let test_config_load () =
  let cfg = Config.load (Filename.concat repo_root "lint.toml") in
  Alcotest.(check (list string)) "roots" [ "lib"; "bin"; "bench"; "test" ] cfg.Config.roots;
  Alcotest.(check bool) "fixtures excluded" true
    (List.mem "test/lint_fixtures" cfg.Config.exclude);
  Alcotest.(check bool) "member.ml declared hot" true
    (List.mem "lib/rrmp/member.ml" cfg.Config.h1_files);
  Alcotest.(check bool) "wire.ml declared hot" true
    (List.mem "lib/rrmp/wire.ml" cfg.Config.h1_files);
  Alcotest.(check (list string)) "textual H2 superseded by typed A" [] cfg.Config.h2_files;
  Alcotest.(check (list string)) "typed pass reads the lib cmts" [ "lib" ] cfg.Config.typed_dirs;
  Alcotest.(check bool) "pool spawns are task roots" true
    (List.mem "Pool.parallel_for" cfg.Config.p_roots);
  Alcotest.(check bool) "member_soa.ml behind the exact-zero gate" true
    (List.mem "lib/rrmp/member_soa.ml" cfg.Config.a_files)

let test_clean_tree () =
  (* the committed config over the real lib/ tree: zero unsuppressed
     findings, and every audited suppression carries a justification *)
  let cfg =
    { (Config.load (Filename.concat repo_root "lint.toml")) with Config.roots = [ "lib" ] }
  in
  let report = Lint.scan_tree ~root:repo_root cfg in
  List.iter (fun (f : Lint.finding) -> Format.eprintf "unexpected: %s:%d [%s] %s@." f.file f.line f.rule f.message)
    report.Lint.findings;
  Alcotest.(check int) "lib/ is lint-clean" 0 (List.length report.Lint.findings);
  Alcotest.(check bool) "suppressions are audited" true
    (report.Lint.suppressions <> []
     && List.for_all (fun s -> String.length s.Lint.s_just > 0) report.Lint.suppressions)

(* --------------------------------------------------------------- *)
(* Typed (cmt) pass                                                  *)
(* --------------------------------------------------------------- *)

let triple = Alcotest.(list (triple string int int))

let test_p_cases () =
  Alcotest.check triple "module state on task paths"
    [
      (* reachable via the rooted call chain (run -> bump) *)
      ("fx_glob.ml", 18, 14);
      (* directly inside the parallel task closure *)
      ("fx_glob.ml", 23, 6);
      ("fx_glob.ml", 23, 14);
      (* module-scope hashtable mutation in the closure *)
      ("fx_glob.ml", 24, 6);
    ]
    (typed_hits "P")

let test_e_cases () =
  Alcotest.check triple "never_raise violations"
    [
      (* cross-unit: bad -> Fx_cg_leaf.risky -> failwith *)
      ("fx_cg_main.ml", 5, 0);
      (* transitive Hashtbl.find through lookup *)
      ("fx_raise.ml", 13, 0);
      (* refutable function cases (Match_failure) *)
      ("fx_raise.ml", 17, 0);
    ]
    (typed_hits "E")

let test_e_witness () =
  let r = Lazy.force typed_result in
  let bad =
    List.find
      (fun (f : Lint.finding) -> f.rule = "E" && f.file = "fx_raise.ml" && f.line = 13)
      r.Lint_typed.findings
  in
  Alcotest.(check bool) "witness chain names the raising callee" true
    (let msg = bad.Lint.message in
     let contains s =
       let n = String.length s and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = s || go (i + 1)) in
       go 0
     in
     contains "Fx_raise.lookup" && contains "Hashtbl.find")

let test_a_cases () =
  Alcotest.check triple "typed allocation on the gated module"
    [
      ("fx_alloc.ml", 16, 10);  (* boxed float return crossing use_mean *)
      ("fx_alloc.ml", 22, 12);  (* capturing closure inside the loop *)
      ("fx_alloc.ml", 27, 0);   (* kind/layout-generic bigarray param *)
      ("fx_alloc.ml", 34, 14);  (* Some construction *)
      ("fx_alloc.ml", 36, 15);  (* tuple construction *)
      ("fx_alloc.ml", 38, 17);  (* option-boxing lookup *)
    ]
    (typed_hits "A")

let test_typed_suppressed () =
  let r = Lazy.force typed_result in
  Alcotest.(check (list (triple string string int)))
    "each family carries an audited fixture case"
    [ ("A", "fx_alloc.ml", 40); ("P", "fx_glob.ml", 29); ("E", "fx_raise.ml", 20) ]
    (List.map
       (fun (f : Lint.finding) -> (f.rule, f.file, f.line))
       r.Lint_typed.suppressed);
  Alcotest.(check bool) "every suppression is justified" true
    (r.Lint_typed.suppressions <> []
     && List.for_all
          (fun (s : Lint.suppression) -> String.length s.Lint.s_just > 0)
          r.Lint_typed.suppressions)

let test_call_graph () =
  let r = Lazy.force typed_result in
  let edges = r.Lint_typed.graph_edges in
  Alcotest.(check bool) "cross-unit edge resolved" true
    (List.mem ("Fx_cg_main.use", "Fx_cg_leaf.helper") edges);
  Alcotest.(check bool) "raising edge resolved" true
    (List.mem ("Fx_cg_main.bad", "Fx_cg_leaf.risky") edges);
  Alcotest.(check bool) "same-unit edge resolved" true
    (List.mem ("Fx_glob.run", "Fx_glob.bump") edges
     || List.mem ("Fx_raise.bad", "Fx_raise.lookup") edges);
  let s = r.Lint_typed.stats in
  Alcotest.(check int) "all five fixture units load" 5 s.Lint_typed.units;
  Alcotest.(check bool) "task roots found and walked" true
    (s.Lint_typed.task_roots >= 1 && s.Lint_typed.task_reachable >= s.Lint_typed.task_roots);
  Alcotest.(check bool) "never_raise annotations registered" true
    (s.Lint_typed.never_raise_defs >= 5)

let test_sarif_smoke () =
  let r = Lazy.force typed_result in
  let s =
    Lint_sarif.to_string ~findings:r.Lint_typed.findings ~suppressed:r.Lint_typed.suppressed
  in
  let count sub =
    let n = String.length sub and m = String.length s in
    let rec go i acc =
      if i + n > m then acc
      else if String.sub s i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "declares SARIF 2.1.0" 1 (count "\"version\":\"2.1.0\"");
  Alcotest.(check int) "one result per finding" 16 (count "\"ruleId\"");
  Alcotest.(check int) "suppressed results carry the audit marker" 3
    (count "\"suppressions\":[{\"kind\":\"inSource\"");
  Alcotest.(check int) "every fired family has a rule object" 3 (count "\"shortDescription\"");
  (* structural smoke: braces and brackets balance, no raw newline
     inside the emitted JSON body *)
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      (match c with
       | '{' | '[' -> incr depth
       | '}' | ']' -> decr depth
       | _ -> ());
      if !depth < 0 then ok := false)
    s;
  Alcotest.(check bool) "braces balance" true (!ok && !depth = 0)

let test_typed_clean_tree () =
  (* the committed config over the real lib/ cmts: zero unaudited
     P/E/A findings, a call graph of real size, justified audits *)
  let cfg = Config.load (Filename.concat repo_root "lint.toml") in
  let cmts = Lint_typed.discover_cmts ~root:repo_root cfg in
  Alcotest.(check bool) "lib cmts discovered" true (List.length cmts > 30);
  let r = Lint_typed.analyze ~root:repo_root cfg ~cmts in
  List.iter
    (fun (f : Lint.finding) ->
      Format.eprintf "unexpected: %s:%d [%s] %s@." f.file f.line f.rule f.message)
    r.Lint_typed.findings;
  Alcotest.(check int) "lib/ typed-clean" 0 (List.length r.Lint_typed.findings);
  let s = r.Lint_typed.stats in
  Alcotest.(check bool) "whole-program graph built" true
    (s.Lint_typed.defs > 300 && s.Lint_typed.edges > 500);
  Alcotest.(check bool) "decoder read path and transport receive verified" true
    (s.Lint_typed.never_raise_defs >= 7);
  Alcotest.(check bool) "typed suppressions are audited" true
    (List.for_all
       (fun (s : Lint.suppression) -> String.length s.Lint.s_just > 0)
       r.Lint_typed.suppressions)

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "D1 nondeterminism sources" `Quick test_d1;
        Alcotest.test_case "D2 unordered escape" `Quick test_d2;
        Alcotest.test_case "D3 polymorphic structure" `Quick test_d3;
        Alcotest.test_case "D4 environment reads" `Quick test_d4;
        Alcotest.test_case "H1 hot-path allocation" `Quick test_h1;
        Alcotest.test_case "H1 scoped to hot modules" `Quick test_h1_only_when_hot;
        Alcotest.test_case "H2 boxing hazards" `Quick test_h2;
        Alcotest.test_case "H2 constructor arguments exempt" `Quick test_h2_ctor_args_exempt;
        Alcotest.test_case "H2 scoped to exact-zero modules" `Quick test_h2_only_when_listed;
        Alcotest.test_case "S1 suppression hygiene" `Quick test_s1;
        Alcotest.test_case "H1 allow placement is uniform" `Quick test_h1_scope;
        Alcotest.test_case "M1 missing interface" `Quick test_m1;
      ] );
    ( "lint.typed",
      [
        Alcotest.test_case "P domain-safety cases" `Quick test_p_cases;
        Alcotest.test_case "E never-raise cases" `Quick test_e_cases;
        Alcotest.test_case "E witness chain" `Quick test_e_witness;
        Alcotest.test_case "A allocation cases" `Quick test_a_cases;
        Alcotest.test_case "audited typed suppressions" `Quick test_typed_suppressed;
        Alcotest.test_case "call graph over two units" `Quick test_call_graph;
        Alcotest.test_case "SARIF emitter smoke" `Quick test_sarif_smoke;
        Alcotest.test_case "lib cmts are typed-clean" `Quick test_typed_clean_tree;
      ] );
    ( "lint.tree",
      [
        Alcotest.test_case "suppression audit trail" `Quick test_suppression;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "lint.toml loads" `Quick test_config_load;
        Alcotest.test_case "lib tree is clean" `Quick test_clean_tree;
      ] );
  ]
