(* Coverage for the smaller APIs: wire formatting and sizing, config
   printing, digests, and scheduling corner cases. *)

module Msg_id = Protocol.Msg_id
module Wire = Rrmp.Wire
module Config = Rrmp.Config
module Payload = Rrmp.Payload

let mid ?(source = 0) seq = Msg_id.make ~source:(Node_id.of_int source) ~seq

(* --- wire ------------------------------------------------------------ *)

let test_wire_classes_distinct () =
  let payload = Payload.make (mid 0) in
  let messages =
    [
      Wire.Data payload;
      Wire.Session { max_seq = 1 };
      Wire.Local_request (mid 0);
      Wire.Remote_request { id = mid 0; origin = Node_id.of_int 1 };
      Wire.Repair payload;
      Wire.Regional_repair payload;
      Wire.Search { id = mid 0; origin = Node_id.of_int 1 };
      Wire.Have (mid 0);
      Wire.Handoff [ payload ];
      Wire.History [];
      Wire.Gossip [];
    ]
  in
  let classes = List.map Wire.cls messages in
  Alcotest.(check int) "all classes distinct" (List.length classes)
    (List.length (List.sort_uniq String.compare classes))

let test_wire_bytes () =
  let payload = Payload.make ~size:1000 (mid 0) in
  Alcotest.(check int) "data = header + payload" 1032 (Wire.bytes (Wire.Data payload));
  Alcotest.(check int) "repair same" 1032 (Wire.bytes (Wire.Repair payload));
  Alcotest.(check int) "control small" 64 (Wire.bytes (Wire.Have (mid 0)));
  (* handoff: one 32-byte batch header charged once, plus 24 bytes of
     per-entry framing (entry id + body length — what Codec.encode
     actually emits) and the exact sum of the payload sizes *)
  Alcotest.(check int) "handoff sums payloads" (32 + (2 * 24) + 2000)
    (Wire.bytes (Wire.Handoff [ payload; payload ]));
  Alcotest.(check int) "empty handoff is bare header" 32 (Wire.bytes (Wire.Handoff []));
  Alcotest.(check int) "single-entry handoff" (32 + 24 + 1000)
    (Wire.bytes (Wire.Handoff [ payload ]));
  Alcotest.(check int) "handoff with mixed sizes" (32 + (2 * 24) + 1000 + 16)
    (Wire.bytes (Wire.Handoff [ payload; Payload.make ~size:16 (mid 1) ]));
  Alcotest.(check int) "empty gossip is bare control" 64 (Wire.bytes (Wire.Gossip []));
  Alcotest.(check int) "single-entry gossip" (64 + 16)
    (Wire.bytes (Wire.Gossip [ (Node_id.of_int 3, 7) ]));
  Alcotest.(check bool) "history scales with entries" true
    (Wire.bytes (Wire.History [ (Node_id.of_int 0, (5, [])) ]) > Wire.bytes (Wire.History []));
  (* the per-source missing lists are wire payload too: 64-byte control
     header + 16 per source + 8 per missing seq *)
  Alcotest.(check int) "history charges missing seqs"
    (64 + 16 + (8 * 3))
    (Wire.bytes (Wire.History [ (Node_id.of_int 0, (5, [ 1; 2; 4 ])) ]));
  Alcotest.(check int) "history multi-source"
    (64 + (16 + 8) + 16)
    (Wire.bytes
       (Wire.History [ (Node_id.of_int 0, (5, [ 3 ])); (Node_id.of_int 1, (2, [])) ]))

let test_wire_pp_smoke () =
  let render msg = Format.asprintf "%a" Wire.pp msg in
  Alcotest.(check bool) "data mentions id" true
    (String.length (render (Wire.Data (Payload.make (mid 3)))) > 0);
  Alcotest.(check string) "have" "Have(n0#2)" (render (Wire.Have (mid 2)))

(* --- config printing -------------------------------------------------- *)

let test_config_pp_mentions_policy () =
  let render config = Format.asprintf "%a" Config.pp config in
  Alcotest.(check bool) "two-phase named" true
    (String.length (render Config.default) > 0);
  let fixed = { Config.default with Config.buffering = Config.Fixed_time 100.0 } in
  Alcotest.(check bool) "fixed named" true
    (Astring_like.contains (render fixed) "fixed");
  let hashed = { Config.default with Config.selection = Config.Hashed } in
  Alcotest.(check bool) "hashed named" true (Astring_like.contains (render hashed) "hashed")

let test_config_buffering_name () =
  Alcotest.(check string) "two-phase" "two-phase" (Config.buffering_name Config.Two_phase);
  Alcotest.(check string) "buffer-all" "buffer-all" (Config.buffering_name Config.Buffer_all)

(* --- recv_log digests -------------------------------------------------- *)

let test_digest_has () =
  let log = Protocol.Recv_log.create () in
  ignore (Protocol.Recv_log.note_data log (mid 0));
  ignore (Protocol.Recv_log.note_data log (mid 2));
  let digest = Protocol.Recv_log.digest log in
  Alcotest.(check bool) "has 0" true (Protocol.Recv_log.digest_has digest (mid 0));
  Alcotest.(check bool) "missing 1" false (Protocol.Recv_log.digest_has digest (mid 1));
  Alcotest.(check bool) "has 2" true (Protocol.Recv_log.digest_has digest (mid 2));
  Alcotest.(check bool) "beyond horizon" false (Protocol.Recv_log.digest_has digest (mid 5));
  Alcotest.(check bool) "unknown source" false
    (Protocol.Recv_log.digest_has digest (mid ~source:9 0))

(* --- sim corner cases -------------------------------------------------- *)

let test_schedule_at_past_clamps () =
  let sim = Engine.Sim.create () in
  let at = ref (-1.0) in
  ignore
    (Engine.Sim.schedule sim ~delay:10.0 (fun () ->
         ignore (Engine.Sim.schedule_at sim ~at:3.0 (fun () -> at := Engine.Sim.now sim))));
  Engine.Sim.run sim;
  Alcotest.(check (float 1e-9)) "clamped to now" 10.0 !at

let test_fire_time_reported () =
  let sim = Engine.Sim.create () in
  let handle = Engine.Sim.schedule sim ~delay:7.5 ignore in
  Alcotest.(check (float 1e-9)) "fire time" 7.5 (Engine.Sim.fire_time handle)

(* --- payload ----------------------------------------------------------- *)

let test_payload_basics () =
  let p = Payload.make ~size:10 (mid 1) in
  Alcotest.(check int) "size" 10 (Payload.size p);
  Alcotest.(check bool) "id" true (Msg_id.equal (mid 1) (Payload.id p));
  Alcotest.(check int) "default size" 1024 (Payload.size (Payload.make (mid 2)));
  Alcotest.check_raises "negative size" (Invalid_argument "Payload.make: negative size")
    (fun () -> ignore (Payload.make ~size:(-1) (mid 0)))

let suites =
  [
    ( "misc.wire",
      [
        Alcotest.test_case "classes distinct" `Quick test_wire_classes_distinct;
        Alcotest.test_case "bytes" `Quick test_wire_bytes;
        Alcotest.test_case "pp" `Quick test_wire_pp_smoke;
      ] );
    ( "misc.config",
      [
        Alcotest.test_case "pp mentions policy" `Quick test_config_pp_mentions_policy;
        Alcotest.test_case "buffering name" `Quick test_config_buffering_name;
      ] );
    ( "misc.digest", [ Alcotest.test_case "digest_has" `Quick test_digest_has ] );
    ( "misc.sim",
      [
        Alcotest.test_case "schedule_at past clamps" `Quick test_schedule_at_past_clamps;
        Alcotest.test_case "fire time" `Quick test_fire_time_reported;
      ] );
    ( "misc.payload", [ Alcotest.test_case "payload basics" `Quick test_payload_basics ] );
  ]
