(* lint fixture: H1 fires on allocation hazards in a hot-listed module *)
let join a b = a @ b

let label n = Printf.sprintf "entry-%d" n
