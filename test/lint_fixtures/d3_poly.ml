(* lint fixture: D3 fires on polymorphic structure over protocol data *)
let phase_is_short b = b = Some 0

let order a b = compare a b

let table () = Hashtbl.create 16

let same_id id other = id = other
