(* lint fixture: violation-free module — the scan must stay silent *)
let classes tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let sum = List.fold_left ( + ) 0
