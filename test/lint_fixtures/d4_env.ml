(* lint fixture: D4 fires on ambient environment reads *)
let jobs () = Sys.getenv_opt "REPRO_JOBS"
