(* lint fixture: a well-formed [@lint.allow] clears the finding and
   lands in the audit trail *)
let jitter () = (Random.int 10 [@lint.allow "D1 fixture: deliberately audited draw"])
