(* lint fixture: H2 fires on boxing hazards in an exact-zero module *)
let lookup tbl k = Tbl.find_opt tbl k

let each f xs = List.iter (fun x -> f (x + 1)) xs

let wrap x = Some (x + 1)

let pair x y = (x, y)

type t = Pair of int * int

(* a constructor's argument tuple is the constructor's own block,
   not a tuple allocation: must NOT be flagged *)
let ctor x y = Pair (x, y)
