(* lint fixture: S1 fires on suppressions without a valid rule id or
   justification *)
let bogus_rule = (1 + 1) [@lint.allow "Z9 no such rule"]

let no_reason = (2 + 2) [@lint.allow "D1"]
