(* lint fixture: M1 stays quiet — paired.mli exists *)
let visible = 1
