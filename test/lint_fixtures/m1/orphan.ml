(* lint fixture: M1 fires — no sibling .mli *)
let lonely = ()
