val visible : int
