(* E fixture: [@lint.never_raise] enforcement — direct raises,
   transitive raises through the call graph, refutable patterns, and
   the two clearing constructs (try, match-with-exception arm) plus an
   audited suppression. *)

let[@lint.never_raise] safe_find tbl k =
  match Hashtbl.find tbl k with
  | v -> Some v
  | exception Not_found -> None

let lookup tbl k = Hashtbl.find tbl k

let[@lint.never_raise] bad tbl k = lookup tbl k

let[@lint.never_raise] guarded tbl k = try lookup tbl k with Not_found -> 0

let[@lint.never_raise] partial_get = function Some x -> x

let[@lint.never_raise] audited_raise x =
  if x < 0 then (failwith "negative") [@lint.allow "E fixture: caller checks the sign"]
  else x

let plain_raise () = invalid_arg "fx"
