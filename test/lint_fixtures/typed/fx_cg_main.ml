(* call-graph fixture, root unit: cross-unit edges into fx_cg_leaf *)

let use x = Fx_cg_leaf.helper x

let[@lint.never_raise] bad () = Fx_cg_leaf.risky ()
