(* A fixture: typed allocation rules on a gated module — boxed float
   returns (A-float), capturing closures in loops (A-closure), generic
   bigarray parameters (A-bigarray), Some/tuple construction and
   option-boxing lookups (A-box), plus an audited suppression. *)

(* big enough that the analyzer's inline-size heuristic treats the
   boxed float return as real (tiny accessors are exempt) *)
let mean a b =
  let lo = if a < b then a else b in
  let hi = if a < b then b else a in
  let span = hi -. lo in
  let mid = lo +. (span /. 2.0) in
  if span < 0.0 then lo else mid

let use_mean x =
  let m = mean x 1.0 in
  m +. 1.0

let hot_loop arr =
  let acc = ref 0.0 in
  for i = 0 to Array.length arr - 1 do
    let f = fun () -> arr.(i) +. !acc in
    acc := f ()
  done;
  !acc

let generic_sum (b : ('a, 'b, 'c) Bigarray.Array1.t) n =
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. Bigarray.Array1.get b i
  done;
  !s

let boxed v = Some v

let pair a b = (a, b)

let lookup l k = List.assoc_opt k l

let audited v = (Some v) [@lint.allow "A fixture: cold path by contract"]
