(* call-graph fixture, leaf unit: one safe def, one raising def *)

let helper x = x + 1

let risky () = failwith "leaf"
