(* P fixture: module-level mutable state touched from parallel-task
   closures. The local [Pool] module suffix-matches the configured
   [Pool.parallel_for] root, so the fixture needs no engine deps. *)

module Pool = struct
  let parallel_for n f =
    for i = 0 to n - 1 do
      f i
    done
end

let hits = ref 0

let table : (int, int) Hashtbl.t = Hashtbl.create 8

let safe = Atomic.make 0

let bump () = incr hits

let run () =
  Pool.parallel_for 4 (fun i ->
      bump ();
      hits := !hits + 1;
      Hashtbl.replace table i i;
      Atomic.incr safe)

let audited () =
  Pool.parallel_for 2 (fun _ ->
      (incr hits) [@lint.allow "P fixture: single-writer by construction"])

let untouched () = incr hits
