(* H1/H2 suppression scoping: the audit may sit on the enclosing let
   (either attachment the parser produces — binding or pattern) or on
   the allocating expression itself; every placement must clear it *)
let[@lint.allow "H1 fixture: enclosing-let placement"] joined a b = a @ b

let inline_placed n =
  (Printf.sprintf "entry-%d" n) [@lint.allow "H1 fixture: expression placement"]

let hot_entry x =
  if x < 0 then begin
    let msg [@lint.allow "H1 fixture: attribute parsed onto the binding pattern"] =
      Printf.sprintf "bad input %d" x
    in
    failwith msg
  end;
  x + 1

let leaks a b = a @ b
