(* lint fixture: D2 fires on an escaping Hashtbl.fold, stays quiet on
   one that is piped straight into a sort *)
let escaping tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let sorted tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let sorted_direct tbl = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
