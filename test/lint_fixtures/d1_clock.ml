(* lint fixture: D1 must fire on ambient PRNG and clock reads *)
let jitter () = Random.int 10

let stamp () = Sys.time ()

let layout x = Hashtbl.hash x
