(* Wire-arena equivalence: the interned hot-path cells must be
   indistinguishable from fresh constructions.

   The qcheck suites hold the two representations in lockstep over
   structural equality, Wire.bytes, Wire.cls and constructor dispatch,
   and pin the interning contract itself: a re-fetch is physically the
   same cell, and a payload-carrying cell is revalidated by pointer so
   a re-obtained message body can never resurrect a stale cell. The
   acceptance gate runs every registry experiment with the arena
   process-default on and off and requires byte-identical reports. *)

module Wire = Rrmp.Wire
module Arena = Rrmp.Wire_arena
module Payload = Rrmp.Payload
module Msg_id = Protocol.Msg_id

let mid ?(source = 0) seq = Msg_id.make ~source:(Node_id.of_int source) ~seq

let origin = Node_id.of_int 9

let arena () = Arena.create ~origin ()

(* every hot-path constructor, as (fresh construction, arena fetch)
   thunks over the same inputs *)
let hot_pairs t p ~max_seq =
  let id = Payload.id p in
  [
    ("data", Wire.Data p, Arena.data t p);
    ("repair", Wire.Repair p, Arena.repair t p);
    ("regional", Wire.Regional_repair p, Arena.regional_repair t p);
    ("local-req", Wire.Local_request id, Arena.local_request t id);
    ("remote-req", Wire.Remote_request { id; origin }, Arena.remote_request t id);
    ("session", Wire.Session { max_seq }, Arena.session t ~max_seq);
  ]

(* structural equality is safe here: payload bodies live in Bigarrays,
   but Wire.t compares the payload handles' scalar fields and the
   Bigarray custom blocks compare by their (equal) contents *)
let lockstep_prop (seq, size, max_seq) =
  let t = arena () in
  let p = Payload.make ~size (mid seq) in
  List.for_all
    (fun (name, fresh, cell) ->
      if cell <> fresh then QCheck.Test.fail_reportf "%s: arena cell <> fresh" name;
      if Wire.bytes cell <> Wire.bytes fresh then
        QCheck.Test.fail_reportf "%s: bytes differ" name;
      if not (String.equal (Wire.cls cell) (Wire.cls fresh)) then
        QCheck.Test.fail_reportf "%s: cls differs" name;
      true)
    (hot_pairs t p ~max_seq)

(* dispatch: the arena cell must select the same match arm *)
let dispatch_prop (seq, size, max_seq) =
  let t = arena () in
  let p = Payload.make ~size (mid seq) in
  let arm = function
    | Wire.Data _ -> 0
    | Wire.Session _ -> 1
    | Wire.Local_request _ -> 2
    | Wire.Remote_request _ -> 3
    | Wire.Repair _ -> 4
    | Wire.Regional_repair _ -> 5
    | Wire.Search _ | Wire.Have _ | Wire.Handoff _ | Wire.History _ | Wire.Gossip _ -> 6
  in
  List.for_all (fun (_, fresh, cell) -> arm cell = arm fresh) (hot_pairs t p ~max_seq)

(* a steady-state resend is the SAME cell: the allocation claim *)
let reuse_prop (seq, size) =
  let t = arena () in
  let p = Payload.make ~size (mid seq) in
  let id = Payload.id p in
  Arena.data t p == Arena.data t p
  && Arena.repair t p == Arena.repair t p
  && Arena.regional_repair t p == Arena.regional_repair t p
  && Arena.local_request t id == Arena.local_request t id
  && Arena.remote_request t id == Arena.remote_request t id
  && Arena.session t ~max_seq:seq == Arena.session t ~max_seq:seq

(* pointer revalidation: re-obtaining a body (discard, then repair)
   rebuilds the cell around the new payload record *)
let revalidation_prop (seq, size) =
  let t = arena () in
  let p = Payload.make ~size (mid seq) in
  let stale = Arena.repair t p in
  let p' = Payload.make ~size (mid seq) in
  let cell = Arena.repair t p' in
  (match cell with
   | Wire.Repair q when q == p' -> ()
   | Wire.Repair _ -> QCheck.Test.fail_report "cell wraps the stale payload"
   | _ -> QCheck.Test.fail_report "not a Repair cell");
  (* and the rebuilt cell is now the interned one *)
  cell != stale && cell == Arena.repair t p'

(* disabled arena (the reference path): fresh, structurally equal
   values on every call, never the same cell twice *)
let disabled_prop (seq, size) =
  let t = Arena.create ~enabled:false ~origin () in
  let p = Payload.make ~size (mid seq) in
  Arena.data t p = Wire.Data p
  && Arena.data t p != Arena.data t p
  && Arena.session t ~max_seq:seq != Arena.session t ~max_seq:seq

let triple = QCheck.(triple (0 -- 200) (1 -- 64) (0 -- 200))

let pair = QCheck.(pair (0 -- 200) (1 -- 64))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:200 ~name:"arena cells lockstep with fresh wire values" triple
        lockstep_prop;
      QCheck.Test.make ~count:200 ~name:"arena cells dispatch identically" triple dispatch_prop;
      QCheck.Test.make ~count:200 ~name:"resends return the interned cell" pair reuse_prop;
      QCheck.Test.make ~count:200 ~name:"stale payload cells are rebuilt" pair revalidation_prop;
      QCheck.Test.make ~count:200 ~name:"disabled arena builds fresh equal values" pair
        disabled_prop;
    ]

(* session monotone cache: only the latest advertisement is retained *)
let test_session_cache () =
  let t = arena () in
  let a = Arena.session t ~max_seq:3 in
  Alcotest.(check bool) "same max_seq is the same cell" true (a == Arena.session t ~max_seq:3);
  let b = Arena.session t ~max_seq:4 in
  Alcotest.(check bool) "advancing rebuilds" true (a != b);
  Alcotest.(check bool) "new cell is cached" true (b == Arena.session t ~max_seq:4)

(* ------------------------------------------------------------------ *)
(* Registry-wide report identity with the arena on and off             *)
(* ------------------------------------------------------------------ *)

let with_arena enabled f =
  let saved = Arena.default_enabled () in
  Arena.set_default_enabled enabled;
  Fun.protect ~finally:(fun () -> Arena.set_default_enabled saved) f

(* regression for the typed-lint P finding: the kill switch used to be
   a plain bool ref sampled by [create], which runs on pool worker
   domains when sharded runs build their member state in parallel — it
   is Atomic.t now, and a flip on the main domain must be visible to
   arenas created inside worker tasks. Interning is observable as
   physical equality of a re-fetch, so each task reports whether its
   arena came up disabled. *)
let test_kill_switch_reaches_workers () =
  with_arena false (fun () ->
    let pool = Engine.Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Engine.Pool.shutdown pool)
      (fun () ->
        let n = 16 in
        let disabled = Array.make n false in
        Engine.Pool.parallel_for pool ~n (fun i ->
            let t = Arena.create ~origin () in
            let p = Payload.make ~size:8 (mid i) in
            disabled.(i) <- not (Arena.data t p == Arena.data t p));
        Alcotest.(check bool) "every worker-created arena saw the flip" true
          (Array.for_all Fun.id disabled)))

let render report = Format.asprintf "%a" Experiments.Report.pp report

(* Acceptance gate (the arena analogue of the -j and --shards gates):
   for EVERY registry experiment, the quick-mode report with the wire
   arena disabled is byte-identical to the default interned path. *)
let test_registry_reports_arena_invariant () =
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let on = with_arena true (fun () -> render (e.Experiments.Registry.run ~quick:true)) in
      let off = with_arena false (fun () -> render (e.Experiments.Registry.run ~quick:true)) in
      Alcotest.(check string)
        (e.Experiments.Registry.id ^ " report identical with arena on and off")
        on off)
    Experiments.Registry.all

let suites =
  [
    ( "rrmp.wire_arena",
      qsuite
      @ [
          Alcotest.test_case "session cell caches the latest advertisement" `Quick
            test_session_cache;
          Alcotest.test_case "kill switch is atomic across worker domains" `Quick
            test_kill_switch_reaches_workers;
          Alcotest.test_case "registry reports identical with arena on/off" `Slow
            test_registry_reports_arena_invariant;
        ] );
  ]
