(* Tests for the domain pool and the parallel experiment runner: pool
   mechanics (chunking, exceptions, reuse), bit-identical parallel vs
   sequential statistics, and registry-wide report determinism. *)

module Pool = Engine.Pool
module Runner = Experiments.Runner
module Summary = Stats.Summary

(* every test that touches the process-wide -j setting restores it so
   test order cannot leak a worker count into other suites *)
let with_jobs jobs f =
  let saved = Pool.default_workers () in
  Pool.set_default_workers jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_workers saved) f

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_covers_all_indices () =
  List.iter
    (fun (workers, n, chunk) ->
      let pool = Pool.create ~workers () in
      Alcotest.(check int) "size" workers (Pool.size pool);
      let hits = Array.make (max n 1) 0 in
      Pool.parallel_for pool ~chunk ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h ->
          if i < n then
            Alcotest.(check int) (Printf.sprintf "index %d visited once" i) 1 h)
        hits;
      Pool.shutdown pool)
    [ (1, 17, 1); (2, 17, 1); (4, 17, 3); (4, 3, 1); (3, 0, 1); (2, 100, 7) ]

let test_pool_reusable_across_submissions () =
  let pool = Pool.create ~workers:3 () in
  for round = 1 to 5 do
    let n = round * 10 in
    let acc = Array.make n 0 in
    Pool.parallel_for pool ~n (fun i -> acc.(i) <- i * round);
    let total = Array.fold_left ( + ) 0 acc in
    Alcotest.(check int)
      (Printf.sprintf "round %d sum" round)
      (round * (n * (n - 1) / 2))
      total
  done;
  Pool.shutdown pool

exception Trial_failed of int

let test_pool_exception_propagates_and_pool_survives () =
  let pool = Pool.create ~workers:4 () in
  (* a raising body propagates the exception to the submitter *)
  (try
     Pool.parallel_for pool ~n:50 (fun i -> if i = 13 then raise (Trial_failed i));
     Alcotest.fail "expected Trial_failed"
   with Trial_failed 13 -> ());
  (* ... and the pool keeps working afterwards *)
  let acc = Array.make 20 0 in
  Pool.parallel_for pool ~n:20 (fun i -> acc.(i) <- i + 1);
  Alcotest.(check int) "pool still works" 210 (Array.fold_left ( + ) 0 acc);
  (* a second failure round-trips too *)
  (try
     Pool.parallel_for pool ~n:8 (fun i -> if i >= 0 then raise (Trial_failed i));
     Alcotest.fail "expected Trial_failed"
   with Trial_failed _ -> ());
  Pool.shutdown pool

let test_pool_invalid_args () =
  Alcotest.check_raises "workers < 1" (Invalid_argument "Pool.create: workers must be >= 1")
    (fun () -> ignore (Pool.create ~workers:0 ()));
  let pool = Pool.create ~workers:2 () in
  Alcotest.check_raises "chunk < 1"
    (Invalid_argument "Pool.parallel_for: chunk must be >= 1") (fun () ->
      Pool.parallel_for pool ~chunk:0 ~n:4 ignore);
  Pool.shutdown pool

(* a raising trial through the runner API: exception propagates and the
   shared global pool stays usable for the next parallel run *)
let test_runner_exception_leaves_global_pool_reusable () =
  with_jobs 4 (fun () ->
      (try
         ignore
           (Runner.par_map_trials ~trials:12 ~base_seed:0 (fun ~seed ->
                if seed = 7 then raise (Trial_failed seed) else seed));
         Alcotest.fail "expected Trial_failed"
       with Trial_failed 7 -> ());
      let again =
        Runner.par_map_trials ~trials:12 ~base_seed:0 (fun ~seed -> seed * 2)
      in
      Alcotest.(check (array int)) "global pool reusable"
        (Array.init 12 (fun i -> i * 2))
        again)

(* ------------------------------------------------------------------ *)
(* Runner: parallel / sequential equivalence                           *)
(* ------------------------------------------------------------------ *)

(* a measurement that is cheap but seed-sensitive in all moments *)
let measurement ~seed =
  let rng = Engine.Rng.create ~seed in
  let acc = ref 0.0 in
  for _ = 1 to 1 + (seed land 7) do
    acc := !acc +. Engine.Rng.float rng 100.0
  done;
  !acc

let measurement_list ~seed =
  let rng = Engine.Rng.create ~seed in
  List.init (seed land 3) (fun _ -> Engine.Rng.float rng 10.0)

let summaries_bit_identical a b =
  Summary.count a = Summary.count b
  && Summary.mean a = Summary.mean b
  && Summary.stddev a = Summary.stddev b
  && Summary.total a = Summary.total b
  && (Summary.count a = 0
      || (Summary.min a = Summary.min b
          && Summary.max a = Summary.max b
          && Summary.median a = Summary.median b))

let qcheck_par_mean_bit_identical =
  QCheck.Test.make ~name:"par_mean_over_seeds ≡ mean_over_seeds (bit-identical)"
    ~count:60
    QCheck.(triple (int_bound 25) (int_bound 1000) (int_range 1 8))
    (fun (trials, base_seed, workers) ->
      with_jobs workers (fun () ->
          let par = Runner.par_mean_over_seeds ~trials ~base_seed measurement in
          let seq = Runner.mean_over_seeds ~trials ~base_seed measurement in
          summaries_bit_identical par seq))

let qcheck_par_collect_bit_identical =
  QCheck.Test.make ~name:"par_collect_over_seeds ≡ collect_over_seeds (bit-identical)"
    ~count:60
    QCheck.(triple (int_bound 25) (int_bound 1000) (int_range 1 8))
    (fun (trials, base_seed, workers) ->
      with_jobs workers (fun () ->
          let par = Runner.par_collect_over_seeds ~trials ~base_seed measurement_list in
          let seq = Runner.collect_over_seeds ~trials ~base_seed measurement_list in
          summaries_bit_identical par seq))

let test_par_edge_shapes () =
  (* trials = 0 and workers > trials *)
  with_jobs 8 (fun () ->
      Alcotest.(check int) "zero trials" 0
        (Summary.count (Runner.par_mean_over_seeds ~trials:0 ~base_seed:3 measurement));
      Alcotest.(check (array int)) "zero trials map" [||]
        (Runner.par_map_trials ~trials:0 ~base_seed:3 (fun ~seed -> seed));
      let s = Runner.par_mean_over_seeds ~trials:2 ~base_seed:3 measurement in
      let r = Runner.mean_over_seeds ~trials:2 ~base_seed:3 measurement in
      Alcotest.(check bool) "workers (8) > trials (2)" true (summaries_bit_identical s r));
  with_jobs 3 (fun () ->
      Alcotest.(check (list int)) "par_map_list preserves order"
        [ 2; 4; 6; 8; 10 ]
        (Runner.par_map_list [ 1; 2; 3; 4; 5 ] (fun x -> x * 2));
      Alcotest.(check (list int)) "par_map_list empty" []
        (Runner.par_map_list [] (fun x -> x * 2)))

(* ------------------------------------------------------------------ *)
(* Registry-wide report determinism                                    *)
(* ------------------------------------------------------------------ *)

let render report = Format.asprintf "%a" Experiments.Report.pp report

(* Acceptance gate: for EVERY registry experiment, the quick-mode
   report at -j 4 is byte-identical to -j 1. *)
let test_registry_reports_deterministic () =
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let sequential = with_jobs 1 (fun () -> render (e.Experiments.Registry.run ~quick:true)) in
      let parallel = with_jobs 4 (fun () -> render (e.Experiments.Registry.run ~quick:true)) in
      Alcotest.(check string)
        (e.Experiments.Registry.id ^ " report identical at -j 1 and -j 4")
        sequential parallel)
    Experiments.Registry.all

let suites =
  [
    ( "engine.pool",
      [
        Alcotest.test_case "covers all indices" `Quick test_pool_covers_all_indices;
        Alcotest.test_case "reusable across submissions" `Quick
          test_pool_reusable_across_submissions;
        Alcotest.test_case "exception propagates, pool survives" `Quick
          test_pool_exception_propagates_and_pool_survives;
        Alcotest.test_case "invalid arguments" `Quick test_pool_invalid_args;
      ] );
    ( "experiments.parallel",
      [
        Alcotest.test_case "raising trial leaves global pool reusable" `Quick
          test_runner_exception_leaves_global_pool_reusable;
        QCheck_alcotest.to_alcotest qcheck_par_mean_bit_identical;
        QCheck_alcotest.to_alcotest qcheck_par_collect_bit_identical;
        Alcotest.test_case "edge shapes" `Quick test_par_edge_shapes;
        Alcotest.test_case "registry reports identical -j1 vs -j4" `Slow
          test_registry_reports_deterministic;
      ] );
  ]
