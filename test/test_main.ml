let () =
  Alcotest.run "repro"
    (List.concat
       [
         Test_engine.suites;
         Test_dring.suites;
         Test_stats.suites;
         Test_topology.suites;
         Test_netsim.suites;
         Test_membership.suites;
         Test_protocol.suites;
         Test_tracing.suites;
         Test_rrmp.suites;
         Test_policies.suites;
         Test_baselines.suites;
         Test_experiments.suites;
         Test_parallel.suites;
         Test_shard.suites;
         Test_properties.suites;
         Test_wire_arena.suites;
         Test_codec.suites;
         Test_net.suites;
         Test_alloc_gates.suites;
         Test_edge_cases.suites;
         Test_misc.suites;
         Test_lint.suites;
       ])
