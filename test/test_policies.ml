(* Tests for the buffering-policy ablations (fixed-time, stability
   detection, buffer-all) and the hashed bufferer selection. *)

module Config = Rrmp.Config
module Member = Rrmp.Member
module Group = Rrmp.Group
module Buffer = Rrmp.Buffer
module Long_term = Rrmp.Long_term
module Network = Netsim.Network
module Msg_id = Protocol.Msg_id

let mid seq = Msg_id.make ~source:(Node_id.of_int 0) ~seq

(* --- fixed time ---------------------------------------------------- *)

let test_fixed_time_discards_after_period () =
  let topology = Topology.single_region ~size:10 in
  let config = { Config.default with Config.buffering = Config.Fixed_time 100.0 } in
  let group = Group.create ~seed:1 ~config ~topology () in
  let id = Group.multicast group () in
  Group.run ~until:90.0 group;
  Alcotest.(check int) "still buffered everywhere at 90ms" 10 (Group.count_buffered group id);
  Group.run group;
  Alcotest.(check int) "all discarded after the period" 0 (Group.count_buffered group id)

let test_fixed_time_requests_do_not_extend () =
  (* unlike two-phase, requests must NOT extend the fixed period *)
  let topology = Topology.single_region ~size:20 in
  let config = { Config.default with Config.buffering = Config.Fixed_time 60.0 } in
  let group = Group.create ~seed:2 ~config ~topology () in
  let victim = Node_id.of_int 9 in
  let id = Group.multicast_reaching group ~reach:(fun n -> not (Node_id.equal n victim)) () in
  Member.inject_loss (Group.member group victim) id;
  Group.run group;
  Alcotest.(check bool) "victim recovered within the window" true
    (Member.has_received (Group.member group victim) id);
  Alcotest.(check int) "nothing buffered at the end" 0 (Group.count_buffered group id)

(* --- buffer all ----------------------------------------------------- *)

let test_buffer_all_never_discards () =
  let topology = Topology.single_region ~size:10 in
  let config = { Config.default with Config.buffering = Config.Buffer_all } in
  let group = Group.create ~seed:3 ~config ~topology () in
  let ids = List.init 5 (fun _ -> Group.multicast group ()) in
  Group.run ~until:10_000.0 group;
  List.iter
    (fun id ->
      Alcotest.(check int) "buffered at every member forever" 10
        (Group.count_buffered group id))
    ids

(* --- stability detection -------------------------------------------- *)

let stability_config =
  { Config.default with
    Config.buffering = Config.Stability { exchange_interval = 30.0; hold_after_stable = 10.0 };
  }

let test_stability_discards_once_stable () =
  let topology = Topology.single_region ~size:8 in
  let group = Group.create ~seed:4 ~config:stability_config ~topology () in
  let id = Group.multicast group () in
  (* everyone has it; after a couple of exchange rounds all digests
     agree and the message is discarded *)
  Group.run ~until:500.0 group;
  Alcotest.(check int) "discarded once stable" 0 (Group.count_buffered group id);
  Alcotest.(check bool) "history traffic flowed" true
    ((Network.stats (Group.net group) ~cls:"history").Network.sent > 0)

let test_stability_holds_while_member_missing () =
  let topology = Topology.single_region ~size:8 in
  let group = Group.create ~seed:5 ~config:stability_config ~topology () in
  let victim = Node_id.of_int 5 in
  let id = Group.multicast_reaching group ~reach:(fun n -> not (Node_id.equal n victim)) () in
  (* freeze the victim's recovery: it never even learns about the
     message, so its digests keep reporting a hole... note the victim
     has horizon -1, so other members see "victim lacks it" *)
  Group.run ~until:100.0 group;
  Alcotest.(check bool) "still buffered while unstable" true
    (Group.count_buffered group id > 0);
  (* now let the victim hear about the loss and recover; stability
     follows and buffers drain *)
  Member.inject_loss (Group.member group victim) id;
  Group.run ~until:1_000.0 group;
  Alcotest.(check bool) "victim recovered" true
    (Member.has_received (Group.member group victim) id);
  Alcotest.(check int) "drained after stability" 0 (Group.count_buffered group id)

(* History handling revisits buffered entries through Buffer.iter,
   whose order is unspecified (hashtable order, steered here by the
   insertion sequence). The stability outcome must not depend on it. *)
let stability_final_buffer ~insert_order =
  let topology = Topology.single_region ~size:2 in
  let config =
    { Config.default with
      Config.buffering =
        Config.Stability { exchange_interval = 10.0; hold_after_stable = 5.0 };
    }
  in
  let group = Group.create ~seed:11 ~config ~topology () in
  let holder = Group.member group (Node_id.of_int 0) in
  let peer = Group.member group (Node_id.of_int 1) in
  List.iter
    (fun seq ->
      Member.force_buffer holder ~phase:Rrmp.Buffer.Short_term (Rrmp.Payload.make (mid seq)))
    insert_order;
  (* the peer has everything, so its history makes each entry stable *)
  List.iter (fun seq -> Member.force_received peer (mid seq)) insert_order;
  Group.run ~until:200.0 group;
  Member.buffer_size holder

let test_stability_independent_of_buffer_order () =
  let ascending = List.init 12 Fun.id in
  let a = stability_final_buffer ~insert_order:ascending in
  let b = stability_final_buffer ~insert_order:(List.rev ascending) in
  let c =
    (* interleaved: 0,6,1,7,... gives yet another hashtable layout *)
    stability_final_buffer
      ~insert_order:(List.concat_map (fun i -> [ i; i + 6 ]) (List.init 6 Fun.id))
  in
  Alcotest.(check int) "ascending drains" 0 a;
  Alcotest.(check int) "descending = ascending" a b;
  Alcotest.(check int) "interleaved = ascending" a c

(* --- hashed selection ------------------------------------------------ *)

let test_hashed_decide_deterministic () =
  let id = mid 3 in
  let a = Long_term.hashed_decide ~node:(Node_id.of_int 7) ~id ~c:6.0 ~n:100 in
  let b = Long_term.hashed_decide ~node:(Node_id.of_int 7) ~id ~c:6.0 ~n:100 in
  Alcotest.(check bool) "same inputs, same answer" a b

let test_hashed_rate_near_c_over_n () =
  let n = 100 and c = 6.0 in
  let hits = ref 0 in
  let trials = 3000 in
  for seq = 0 to (trials / n) - 1 do
    let id = mid seq in
    for node = 0 to n - 1 do
      if Long_term.hashed_decide ~node:(Node_id.of_int node) ~id ~c ~n then incr hits
    done
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "selection rate %.3f near C/n" rate)
    true
    (abs_float (rate -. 0.06) < 0.02)

let test_hashed_candidates_consistent () =
  let id = mid 11 in
  let members = Array.init 50 Node_id.of_int in
  let candidates = Long_term.hashed_candidates ~members ~id ~c:6.0 ~n:50 in
  Array.iter
    (fun node ->
      Alcotest.(check bool) "candidate passes decide" true
        (Long_term.hashed_decide ~node ~id ~c:6.0 ~n:50))
    candidates

let test_hashed_group_bufferers_match_prediction () =
  let n = 60 in
  let topology = Topology.single_region ~size:n in
  let config = { Config.default with Config.selection = Config.Hashed } in
  let group = Group.create ~seed:6 ~config ~topology () in
  let id = Group.multicast group () in
  Group.run group;
  let predicted =
    Long_term.hashed_candidates
      ~members:(Topology.members topology (Region_id.of_int 0))
      ~id ~c:6.0 ~n
    |> Array.to_list |> List.sort Node_id.compare
  in
  Alcotest.(check (list int)) "actual bufferers = hash prediction"
    (List.map Node_id.to_int predicted)
    (List.map Node_id.to_int (Group.bufferers group id))

let test_hashed_search_probes_directly () =
  (* with hashed selection, a search goes straight to a computed
     candidate — the probe count stays tiny *)
  let n = 100 in
  let topology = Topology.chain ~sizes:[ n; 1 ] in
  let config = { Config.default with Config.selection = Config.Hashed } in
  let group = Group.create ~seed:7 ~config ~topology () in
  let id = mid 0 in
  let payload = Rrmp.Payload.make id in
  let region0 = Topology.members topology (Region_id.of_int 0) in
  let bufferers = Long_term.hashed_candidates ~members:region0 ~id ~c:6.0 ~n in
  Alcotest.(check bool) "hash picked at least one bufferer" true (Array.length bufferers > 0);
  Array.iter
    (fun node ->
      let m = Group.member group node in
      if Array.exists (Node_id.equal node) bufferers then
        Member.force_buffer m ~phase:Buffer.Long_term payload
      else Member.force_received m id)
    region0;
  let origin = Node_id.of_int n in
  (* aim the remote request at a non-bufferer so a search is needed *)
  let target =
    Array.to_seq region0
    |> Seq.filter (fun node -> not (Array.exists (Node_id.equal node) bufferers))
    |> Seq.uncons |> Option.get |> fst
  in
  Network.unicast (Group.net group) ~cls:"remote-req" ~src:origin ~dst:target
    (Rrmp.Wire.Remote_request { id; origin });
  Group.run group;
  Alcotest.(check bool) "origin served" true
    (Member.has_received (Group.member group origin) id);
  let probes = (Network.stats (Group.net group) ~cls:"search").Network.sent in
  Alcotest.(check bool) (Printf.sprintf "probes %d <= 3" probes) true (probes <= 3)

let suites =
  [
    ( "rrmp.policy.fixed_time",
      [
        Alcotest.test_case "discards after period" `Quick test_fixed_time_discards_after_period;
        Alcotest.test_case "requests do not extend" `Quick test_fixed_time_requests_do_not_extend;
      ] );
    ( "rrmp.policy.buffer_all",
      [ Alcotest.test_case "never discards" `Quick test_buffer_all_never_discards ] );
    ( "rrmp.policy.stability",
      [
        Alcotest.test_case "discards once stable" `Quick test_stability_discards_once_stable;
        Alcotest.test_case "holds while member missing" `Quick test_stability_holds_while_member_missing;
        Alcotest.test_case "independent of buffer order" `Quick
          test_stability_independent_of_buffer_order;
      ] );
    ( "rrmp.policy.hashed",
      [
        Alcotest.test_case "deterministic" `Quick test_hashed_decide_deterministic;
        Alcotest.test_case "rate near C/n" `Quick test_hashed_rate_near_c_over_n;
        Alcotest.test_case "candidates consistent" `Quick test_hashed_candidates_consistent;
        Alcotest.test_case "group bufferers match prediction" `Quick test_hashed_group_bufferers_match_prediction;
        Alcotest.test_case "search probes directly" `Quick test_hashed_search_probes_directly;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Adaptive idle threshold / RTT estimation                            *)
(* ------------------------------------------------------------------ *)

let test_rtt_estimate_initial () =
  let topology = Topology.single_region ~size:5 in
  let group = Group.create ~seed:20 ~topology () in
  Alcotest.(check (float 1e-9)) "starts at the model's intra RTT" 10.0
    (Member.rtt_estimate (Group.sender group))

let test_rtt_estimate_learns () =
  (* region with a 4x slower link than the default model estimate: a
     member that recovers a loss should move its estimate upward *)
  let topology = Topology.single_region ~size:10 in
  let latency = Latency.create ~intra:(Latency.Constant 20.0) ~inter:(Latency.Constant 50.0) in
  let group = Group.create ~seed:21 ~latency ~topology () in
  let victim = Node_id.of_int 4 in
  let id = Group.multicast_reaching group ~reach:(fun n -> not (Node_id.equal n victim)) () in
  Member.inject_loss (Group.member group victim) id;
  Group.run group;
  Alcotest.(check bool) "recovered" true (Member.has_received (Group.member group victim) id);
  Alcotest.(check bool) "estimate moved towards the real 40ms RTT" true
    (Member.rtt_estimate (Group.member group victim) > 10.0)

let test_adaptive_t_scales_with_rtt () =
  (* same slow region, adaptive T: holders must survive long enough to
     serve probes that take 40ms per round trip *)
  let topology = Topology.single_region ~size:50 in
  let latency = Latency.create ~intra:(Latency.Constant 20.0) ~inter:(Latency.Constant 50.0) in
  let config =
    { Config.default with
      Config.idle_rounds = Some 4.0;
      Config.max_recovery_tries = Some 200;
    }
  in
  let group = Group.create ~seed:22 ~config ~latency ~topology () in
  let id = Msg_id.make ~source:(Node_id.of_int 0) ~seq:0 in
  let payload = Rrmp.Payload.make id in
  List.iter
    (fun m ->
      if Node_id.equal (Member.node m) (Node_id.of_int 0) then
        Member.force_buffer m ~phase:Buffer.Short_term payload
      else Member.inject_loss m id)
    (Group.members group);
  Group.run ~until:60_000.0 group;
  Alcotest.(check int) "everyone recovered despite the slow region" 50
    (Group.count_received group id)

let test_idle_rounds_validation () =
  let bad = { Config.default with Config.idle_rounds = Some 0.0 } in
  Alcotest.(check bool) "zero rounds rejected" true (Result.is_error (Config.validate bad))

let adaptive_suite =
  ( "rrmp.policy.adaptive_t",
    [
      Alcotest.test_case "initial estimate" `Quick test_rtt_estimate_initial;
      Alcotest.test_case "estimate learns" `Quick test_rtt_estimate_learns;
      Alcotest.test_case "adaptive T scales" `Quick test_adaptive_t_scales_with_rtt;
      Alcotest.test_case "validation" `Quick test_idle_rounds_validation;
    ] )

let suites = suites @ [ adaptive_suite ]
