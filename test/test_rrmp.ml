(* Behavioural tests for the RRMP protocol: error recovery, two-phase
   buffering, search, handoff, and the Group facade. *)

module Msg_id = Protocol.Msg_id
module Config = Rrmp.Config
module Payload = Rrmp.Payload
module Buffer = Rrmp.Buffer
module Long_term = Rrmp.Long_term
module Events = Rrmp.Events
module Member = Rrmp.Member
module Group = Rrmp.Group
module Network = Netsim.Network

let mid ?(source = 0) seq = Msg_id.make ~source:(Node_id.of_int source) ~seq

(* collect events from every member into one list *)
let event_collector () =
  let log = ref [] in
  let observer ~time ~self event = log := (time, self, event) :: !log in
  (log, observer)

let events_of log = List.rev_map (fun (_, _, e) -> e) !log

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_default_valid () =
  Alcotest.(check bool) "default validates" true (Config.validate Config.default = Ok ())

let test_config_rejects_bad_values () =
  let bad_t = { Config.default with Config.idle_threshold = 0.0 } in
  Alcotest.(check bool) "zero T rejected" true (Result.is_error (Config.validate bad_t));
  let bad_c = { Config.default with Config.expected_bufferers = -1.0 } in
  Alcotest.(check bool) "negative C rejected" true (Result.is_error (Config.validate bad_c));
  let bad_l = { Config.default with Config.lambda = -0.1 } in
  Alcotest.(check bool) "negative lambda rejected" true (Result.is_error (Config.validate bad_l));
  let bad_b = { Config.default with Config.regional_send = Config.Backoff { max_delay = 0.0 } } in
  Alcotest.(check bool) "zero backoff rejected" true (Result.is_error (Config.validate bad_b))

(* ------------------------------------------------------------------ *)
(* Long_term                                                           *)
(* ------------------------------------------------------------------ *)

let test_long_term_probability () =
  Alcotest.(check (float 1e-12)) "C/n" 0.06 (Long_term.probability ~c:6.0 ~n:100);
  Alcotest.(check (float 1e-12)) "clamped" 1.0 (Long_term.probability ~c:6.0 ~n:3);
  Alcotest.(check (float 1e-12)) "expected count" 6.0 (Long_term.expected_bufferers ~c:6.0 ~n:100)

let qcheck_long_term_mean =
  QCheck.Test.make ~name:"long-term bufferer count has mean ~C" ~count:5
    QCheck.(int_range 1 6)
    (fun c ->
      let rng = Engine.Rng.create ~seed:(100 + c) in
      let n = 200 and trials = 2000 in
      let total = ref 0 in
      for _ = 1 to trials do
        for _ = 1 to n do
          if Long_term.decide rng ~c:(float_of_int c) ~n then incr total
        done
      done;
      let mean = float_of_int !total /. float_of_int trials in
      abs_float (mean -. float_of_int c) < 0.25)

(* ------------------------------------------------------------------ *)
(* Buffer                                                              *)
(* ------------------------------------------------------------------ *)

let test_buffer_insert_find_remove () =
  let sim = Engine.Sim.create () in
  let b = Buffer.create ~sim in
  let p = Payload.make ~size:100 (mid 0) in
  Alcotest.(check bool) "insert" true (Buffer.insert b ~phase:Buffer.Short_term p);
  Alcotest.(check bool) "reinsert refused" false (Buffer.insert b ~phase:Buffer.Long_term p);
  Alcotest.(check bool) "mem" true (Buffer.mem b (mid 0));
  Alcotest.(check int) "bytes" 100 (Buffer.bytes b);
  Alcotest.(check bool) "phase" true (Buffer.phase_of b (mid 0) = Some Buffer.Short_term);
  Alcotest.(check bool) "promote" true (Buffer.promote b (mid 0));
  Alcotest.(check bool) "promoted" true (Buffer.phase_of b (mid 0) = Some Buffer.Long_term);
  (match Buffer.remove b (mid 0) with
   | Some removed -> Alcotest.(check bool) "same payload" true (Payload.equal removed p)
   | None -> Alcotest.fail "expected payload");
  Alcotest.(check int) "empty" 0 (Buffer.size b);
  Alcotest.(check bool) "remove missing" true (Buffer.remove b (mid 0) = None)

let test_buffer_occupancy_integral () =
  let sim = Engine.Sim.create () in
  let b = Buffer.create ~sim in
  ignore (Sim_helpers.at sim 0.0 (fun () ->
      ignore (Buffer.insert b ~phase:Buffer.Short_term (Payload.make ~size:10 (mid 0)))));
  ignore (Sim_helpers.at sim 10.0 (fun () ->
      ignore (Buffer.insert b ~phase:Buffer.Short_term (Payload.make ~size:10 (mid 1)))));
  ignore (Sim_helpers.at sim 30.0 (fun () -> ignore (Buffer.remove b (mid 0))));
  ignore (Sim_helpers.at sim 50.0 (fun () -> ignore (Buffer.remove b (mid 1))));
  Engine.Sim.run sim;
  (* msg-ms: 1 msg for [0,10) + 2 for [10,30) + 1 for [30,50) = 10+40+20 = 70 *)
  Alcotest.(check (float 1e-6)) "msg-ms" 70.0 (Buffer.occupancy_msg_ms b);
  Alcotest.(check (float 1e-6)) "byte-ms" 700.0 (Buffer.occupancy_byte_ms b);
  Alcotest.(check int) "peak size" 2 (Buffer.peak_size b);
  Alcotest.(check int) "peak bytes" 20 (Buffer.peak_bytes b)

let test_buffer_long_term_payloads () =
  let sim = Engine.Sim.create () in
  let b = Buffer.create ~sim in
  ignore (Buffer.insert b ~phase:Buffer.Short_term (Payload.make (mid 0)));
  ignore (Buffer.insert b ~phase:Buffer.Long_term (Payload.make (mid 1)));
  ignore (Buffer.insert b ~phase:Buffer.Long_term (Payload.make (mid 2)));
  Alcotest.(check int) "short count" 1 (Buffer.count_phase b Buffer.Short_term);
  Alcotest.(check (list int)) "long-term ids" [ 1; 2 ]
    (List.map (fun p -> Msg_id.seq (Payload.id p)) (Buffer.long_term_payloads b))

let test_buffer_promote_absent_is_noop () =
  let sim = Engine.Sim.create () in
  let b = Buffer.create ~sim in
  (* promoting an id that was never (or no longer) buffered must not
     raise: a handoff can race a discard *)
  Alcotest.(check bool) "absent promote refused" false (Buffer.promote b (mid 0));
  ignore (Buffer.insert b ~phase:Buffer.Short_term (Payload.make (mid 0)));
  ignore (Buffer.remove b (mid 0));
  Alcotest.(check bool) "discarded promote refused" false (Buffer.promote b (mid 0));
  Alcotest.(check int) "no phantom long-term entry" 0 (Buffer.count_phase b Buffer.Long_term)

let test_buffer_phase_counters () =
  let sim = Engine.Sim.create () in
  let b = Buffer.create ~sim in
  for seq = 0 to 4 do
    ignore (Buffer.insert b ~phase:Buffer.Short_term (Payload.make (mid seq)))
  done;
  ignore (Buffer.insert b ~phase:Buffer.Long_term (Payload.make (mid 5)));
  Alcotest.(check int) "short" 5 (Buffer.count_phase b Buffer.Short_term);
  Alcotest.(check int) "long" 1 (Buffer.count_phase b Buffer.Long_term);
  Alcotest.(check bool) "promote" true (Buffer.promote b (mid 0));
  Alcotest.(check bool) "re-promote is idempotent" true (Buffer.promote b (mid 0));
  Alcotest.(check int) "short after promote" 4 (Buffer.count_phase b Buffer.Short_term);
  Alcotest.(check int) "long after promote" 2 (Buffer.count_phase b Buffer.Long_term);
  ignore (Buffer.remove b (mid 0));
  ignore (Buffer.remove b (mid 1));
  Alcotest.(check int) "short after removes" 3 (Buffer.count_phase b Buffer.Short_term);
  Alcotest.(check int) "long after removes" 1 (Buffer.count_phase b Buffer.Long_term);
  (* counters must always agree with a full scan *)
  let scan phase = Buffer.fold b ~init:0 (fun acc _ p -> if p = phase then acc + 1 else acc) in
  Alcotest.(check int) "short matches scan" (scan Buffer.Short_term)
    (Buffer.count_phase b Buffer.Short_term);
  Alcotest.(check int) "long matches scan" (scan Buffer.Long_term)
    (Buffer.count_phase b Buffer.Long_term)

let test_buffer_iter_fold_match_contents () =
  let sim = Engine.Sim.create () in
  let b = Buffer.create ~sim in
  List.iter
    (fun (seq, phase) -> ignore (Buffer.insert b ~phase (Payload.make (mid seq))))
    [ (3, Buffer.Long_term); (0, Buffer.Short_term); (7, Buffer.Long_term); (1, Buffer.Short_term) ];
  let sort l = List.sort compare l in
  let via_contents =
    List.map (fun (p, phase) -> (Msg_id.seq (Payload.id p), phase)) (Buffer.contents b)
  in
  let via_fold =
    Buffer.fold b ~init:[] (fun acc p phase -> (Msg_id.seq (Payload.id p), phase) :: acc)
  in
  let via_iter = ref [] in
  Buffer.iter b (fun p phase -> via_iter := (Msg_id.seq (Payload.id p), phase) :: !via_iter);
  Alcotest.(check bool) "fold = contents" true (sort via_fold = sort via_contents);
  Alcotest.(check bool) "iter = contents" true (sort !via_iter = sort via_contents)

(* ------------------------------------------------------------------ *)
(* End-to-end delivery and recovery                                    *)
(* ------------------------------------------------------------------ *)

(* everything delivered when the initial multicast reaches everyone *)
let test_lossless_delivery () =
  let topology = Topology.single_region ~size:20 in
  let group = Group.create ~seed:2 ~topology () in
  let id = Group.multicast group () in
  Group.run group;
  Alcotest.(check bool) "all received" true (Group.received_by_all group id);
  Alcotest.(check int) "count" 20 (Group.count_received group id)

(* a single member missing the message recovers through local recovery *)
let test_local_recovery_single_loss () =
  let topology = Topology.single_region ~size:10 in
  let log, observer = event_collector () in
  let group = Group.create ~seed:3 ~observer ~topology () in
  let victim = Node_id.of_int 7 in
  let id =
    Group.multicast_reaching group ~reach:(fun n -> not (Node_id.equal n victim)) ()
  in
  (* the victim has no gap to observe with a single message: a session
     message reveals the loss *)
  Member.send_session (Group.sender group);
  Group.run group;
  Alcotest.(check bool) "victim recovered" true
    (Member.has_received (Group.member group victim) id);
  let recovered =
    List.exists (function Events.Recovered _ -> true | _ -> false) (events_of log)
  in
  Alcotest.(check bool) "recovery event emitted" true recovered

(* sequence gaps alone (no session message) reveal earlier losses *)
let test_gap_triggers_recovery () =
  let topology = Topology.single_region ~size:10 in
  let group = Group.create ~seed:4 ~topology () in
  let victim = Node_id.of_int 3 in
  let id0 =
    Group.multicast_reaching group ~reach:(fun n -> not (Node_id.equal n victim)) ()
  in
  let _id1 = Group.multicast group () in
  Group.run group;
  Alcotest.(check bool) "victim got the first message via recovery" true
    (Member.has_received (Group.member group victim) id0)

(* a whole region missing a message needs remote recovery, and the
   repair then spreads via regional multicast *)
let test_remote_recovery_regional_loss () =
  let topology = Topology.chain ~sizes:[ 10; 10 ] in
  let log, observer = event_collector () in
  let group = Group.create ~seed:5 ~observer ~topology () in
  let region1 = Region_id.of_int 1 in
  let in_region1 n = Node_id.to_int n >= 10 in
  let id = Group.multicast_reaching group ~reach:(fun n -> not (in_region1 n)) () in
  (* everyone in region 1 detects the loss simultaneously (the paper's
     experiment setup does this through session knowledge) *)
  List.iter (fun m -> Member.inject_loss m id) (Group.members_of_region group region1);
  Group.run group;
  Alcotest.(check bool) "entire region recovered" true (Group.received_by_all group id);
  (* at least one repair crossed regions, and regional multicast spread it *)
  let net = Group.net group in
  Alcotest.(check bool) "remote requests were sent" true
    ((Network.stats net ~cls:"remote-req").Network.sent > 0);
  Alcotest.(check bool) "regional repair used" true
    ((Network.stats net ~cls:"regional-repair").Network.sent > 0);
  ignore log

(* a remote request reaching a member that also misses the message is
   recorded and relayed when the member recovers (Section 2.2) *)
let test_record_and_relay () =
  let topology = Topology.chain ~sizes:[ 3; 3; 3 ] in
  let group = Group.create ~seed:6 ~topology () in
  (* only region 0 gets the message: region 2's remote requests go to
     region 1, which is also missing it *)
  let id = Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < 3) () in
  List.iter
    (fun r ->
      List.iter
        (fun m -> Member.inject_loss m id)
        (Group.members_of_region group (Region_id.of_int r)))
    [ 1; 2 ];
  Group.run group;
  Alcotest.(check bool) "all three regions end up with the message" true
    (Group.received_by_all group id)

(* ------------------------------------------------------------------ *)
(* Two-phase buffering                                                 *)
(* ------------------------------------------------------------------ *)

(* with nothing missing, every member discards after about T unless it
   becomes a long-term bufferer; expected bufferers ~= C *)
let test_idle_discard_keeps_about_c () =
  let totals = ref 0.0 in
  let runs = 20 in
  for seed = 1 to runs do
    let topology = Topology.single_region ~size:100 in
    let config = { Config.default with Config.expected_bufferers = 6.0 } in
    let group = Group.create ~seed ~config ~topology () in
    let id = Group.multicast group () in
    Group.run group;
    totals := !totals +. float_of_int (Group.count_buffered group id)
  done;
  let mean = !totals /. float_of_int runs in
  Alcotest.(check bool)
    (Printf.sprintf "mean long-term bufferers %.2f in [4,8]" mean)
    true
    (mean > 4.0 && mean < 8.0)

(* C = 0 means everyone discards after the idle threshold *)
let test_idle_discard_all_when_c_zero () =
  let topology = Topology.single_region ~size:50 in
  let config = { Config.default with Config.expected_bufferers = 0.0 } in
  let group = Group.create ~seed:7 ~config ~topology () in
  let id = Group.multicast group () in
  Group.run group;
  Alcotest.(check int) "no bufferers left" 0 (Group.count_buffered group id);
  Alcotest.(check bool) "still received everywhere" true (Group.received_by_all group id)

(* requests reset the idle timer, so holders keep a contested message
   longer than an uncontested one (the feedback mechanism) *)
let test_feedback_extends_buffering () =
  let buffering_time ~missing ~seed =
    let topology = Topology.single_region ~size:100 in
    let log, observer = event_collector () in
    let group = Group.create ~seed ~observer ~topology () in
    let holder = Node_id.of_int 0 in
    let id =
      Group.multicast_reaching group
        ~reach:(fun n -> Node_id.to_int n >= missing + 1)
        ()
    in
    (* nodes 1..missing miss it; all detect simultaneously *)
    for i = 1 to missing do
      Member.inject_loss (Group.member group (Node_id.of_int i)) id
    done;
    Group.run group;
    List.find_map
      (fun (_, self, e) ->
        match e with
        | Events.Became_idle { buffered_for; _ } when Node_id.equal self holder ->
          Some buffered_for
        | _ -> None)
      (List.rev !log)
  in
  match (buffering_time ~missing:0 ~seed:8, buffering_time ~missing:60 ~seed:8) with
  | Some quiet, Some contested ->
    Alcotest.(check (float 1e-6)) "uncontested = T" 40.0 quiet;
    Alcotest.(check bool)
      (Printf.sprintf "contested (%.1f) > uncontested (%.1f)" contested quiet)
      true (contested > quiet)
  | _ -> Alcotest.fail "expected idle events"

(* the sender's own copy also obeys the idle threshold *)
let test_sender_buffers_own_message () =
  let topology = Topology.single_region ~size:5 in
  let group = Group.create ~seed:9 ~topology () in
  let id = Group.multicast group () in
  Alcotest.(check bool) "buffered immediately" true (Member.buffers (Group.sender group) id);
  Group.run group;
  Alcotest.(check bool) "received by all" true (Group.received_by_all group id)

(* long_term_lifetime eventually clears even long-term bufferers *)
let test_long_term_lifetime_discard () =
  let topology = Topology.single_region ~size:10 in
  let config =
    { Config.default with
      Config.expected_bufferers = 1000.0 (* force everyone long-term *);
      Config.long_term_lifetime = Some 100.0;
    }
  in
  let group = Group.create ~seed:10 ~config ~topology () in
  let id = Group.multicast group () in
  Group.run group;
  Alcotest.(check int) "all eventually discard" 0 (Group.count_buffered group id);
  Alcotest.(check bool) "still received" true (Group.received_by_all group id)

(* ------------------------------------------------------------------ *)
(* Search for bufferers (Section 3.3)                                  *)
(* ------------------------------------------------------------------ *)

(* build the paper's Figure 8 situation: a region where everyone has
   received and discarded the message except [bufferers] long-term
   bufferers; a remote request arrives at a random member *)
let search_setup ~seed ~region_size ~bufferers =
  let topology = Topology.chain ~sizes:[ region_size; 1 ] in
  let log, observer = event_collector () in
  let group = Group.create ~seed ~observer ~topology () in
  let rng = Engine.Rng.create ~seed:(seed * 7919) in
  let id = mid ~source:0 0 in
  let payload = Payload.make id in
  let region0 = Array.to_list (Topology.members topology (Region_id.of_int 0)) in
  let chosen = Engine.Rng.sample_without_replacement rng bufferers (Array.of_list region0) in
  List.iter
    (fun node ->
      let m = Group.member group node in
      if Array.exists (Node_id.equal node) chosen then
        Member.force_buffer m ~phase:Buffer.Long_term payload
      else Member.force_received m id)
    region0;
  (* the downstream origin (node region_size) misses the message *)
  let origin = Node_id.of_int region_size in
  let target = Engine.Rng.pick rng (Array.of_list region0) in
  Network.unicast (Group.net group) ~cls:"remote-req" ~src:origin ~dst:target
    (Rrmp.Wire.Remote_request { id; origin });
  (group, log, id, origin)

let test_search_finds_bufferer () =
  let group, _log, id, origin = search_setup ~seed:11 ~region_size:50 ~bufferers:3 in
  Group.run group;
  Alcotest.(check bool) "origin got the repair" true
    (Member.has_received (Group.member group origin) id)

let test_search_zero_when_hitting_bufferer () =
  (* all members buffer => the request always lands on a bufferer and
     no Search messages are needed *)
  let group, _log, id, origin = search_setup ~seed:12 ~region_size:20 ~bufferers:20 in
  Group.run group;
  Alcotest.(check bool) "served" true (Member.has_received (Group.member group origin) id);
  Alcotest.(check int) "no search traffic" 0
    (Network.stats (Group.net group) ~cls:"search").Network.sent

let test_search_have_announced_once () =
  let group, _log, id, origin = search_setup ~seed:13 ~region_size:30 ~bufferers:1 in
  Group.run group;
  Alcotest.(check bool) "served" true (Member.has_received (Group.member group origin) id);
  (* the bufferer's regional announcement happens at most once (29
     packets); every additional Have is a direct ack to a searcher
     whose probe reached the bufferer, so it is bounded by the search
     traffic *)
  let have = (Network.stats (Group.net group) ~cls:"have").Network.sent in
  let searches = (Network.stats (Group.net group) ~cls:"search").Network.sent in
  Alcotest.(check bool)
    (Printf.sprintf "have sent %d <= 29 + %d searches" have searches)
    true
    (have <= 29 + searches)

let test_search_single_bufferer_terminates () =
  let group, log, id, origin = search_setup ~seed:14 ~region_size:100 ~bufferers:1 in
  Group.run group;
  Alcotest.(check bool) "eventually served" true
    (Member.has_received (Group.member group origin) id);
  let satisfied =
    List.exists (function Events.Search_satisfied _ -> true | _ -> false) (events_of log)
  in
  Alcotest.(check bool) "satisfied event" true satisfied;
  Alcotest.(check bool) "simulation quiesced" true (Group.quiescent group)

(* ------------------------------------------------------------------ *)
(* Handoff on leave (Section 3.2)                                      *)
(* ------------------------------------------------------------------ *)

let test_leave_hands_off_long_term_buffer () =
  let topology = Topology.single_region ~size:10 in
  let log, observer = event_collector () in
  let group = Group.create ~seed:15 ~observer ~topology () in
  let id = mid 0 in
  let payload = Payload.make id in
  (* node 3 is the sole long-term bufferer; everyone else discarded *)
  List.iter
    (fun m ->
      if Node_id.equal (Member.node m) (Node_id.of_int 3) then
        Member.force_buffer m ~phase:Buffer.Long_term payload
      else Member.force_received m id)
    (Group.members group);
  Group.leave group (Node_id.of_int 3);
  Group.run group;
  Alcotest.(check int) "exactly one member took over" 1 (Group.count_buffered group id);
  let new_bufferer =
    match Group.bufferers group id with [ n ] -> n | _ -> Alcotest.fail "one bufferer"
  in
  Alcotest.(check bool) "took over long-term" true
    (Member.buffer_phase (Group.member group new_bufferer) id = Some Buffer.Long_term);
  let sent =
    List.exists (function Events.Handoff_sent _ -> true | _ -> false) (events_of log)
  and received =
    List.exists (function Events.Handoff_received _ -> true | _ -> false) (events_of log)
  in
  Alcotest.(check bool) "handoff events" true (sent && received)

let test_crash_does_not_hand_off () =
  let topology = Topology.single_region ~size:10 in
  let group = Group.create ~seed:16 ~topology () in
  let id = mid 0 in
  let payload = Payload.make id in
  List.iter
    (fun m ->
      if Node_id.equal (Member.node m) (Node_id.of_int 3) then
        Member.force_buffer m ~phase:Buffer.Long_term payload
      else Member.force_received m id)
    (Group.members group);
  Group.crash group (Node_id.of_int 3);
  Group.run group;
  Alcotest.(check int) "buffer lost with the crash" 0 (Group.count_buffered group id)

let test_join_participates () =
  let topology = Topology.single_region ~size:5 in
  let group = Group.create ~seed:17 ~topology () in
  let joiner = Group.join group (Region_id.of_int 0) in
  let id = Group.multicast group () in
  Group.run group;
  Alcotest.(check bool) "joiner received" true (Member.has_received joiner id);
  Alcotest.(check int) "six members saw it" 6 (Group.count_received group id)

(* ------------------------------------------------------------------ *)
(* Regional repair duplicate suppression (backoff)                     *)
(* ------------------------------------------------------------------ *)

let regional_repair_count ~regional_send ~seed =
  let topology = Topology.chain ~sizes:[ 10; 10 ] in
  let config = { Config.default with Config.regional_send; Config.lambda = 5.0 } in
  let group = Group.create ~seed ~config ~topology () in
  let id = Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < 10) () in
  List.iter
    (fun m -> Member.inject_loss m id)
    (Group.members_of_region group (Region_id.of_int 1));
  Group.run group;
  Alcotest.(check bool) "recovered" true (Group.received_by_all group id);
  (Network.stats (Group.net group) ~cls:"regional-repair").Network.sent

let test_backoff_suppresses_duplicates () =
  (* with lambda = 5, several members fetch remote repairs in parallel;
     the back-off scheme should multicast fewer regional repairs *)
  let total_immediate = ref 0 and total_backoff = ref 0 in
  for seed = 20 to 29 do
    total_immediate :=
      !total_immediate + regional_repair_count ~regional_send:Config.Immediate ~seed;
    total_backoff :=
      !total_backoff
      + regional_repair_count ~regional_send:(Config.Backoff { max_delay = 30.0 }) ~seed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "backoff (%d) < immediate (%d)" !total_backoff !total_immediate)
    true
    (!total_backoff < !total_immediate)

(* ------------------------------------------------------------------ *)
(* Bounded retries and determinism                                     *)
(* ------------------------------------------------------------------ *)

let test_max_recovery_tries_bounds_requests () =
  let topology = Topology.single_region ~size:5 in
  let config = { Config.default with Config.max_recovery_tries = Some 3 } in
  let group = Group.create ~seed:30 ~config ~topology () in
  (* nobody has the message: recovery can never succeed and must stop *)
  let id = mid ~source:0 0 in
  List.iter (fun m -> Member.inject_loss m id) (Group.members group);
  Group.run group;
  Alcotest.(check bool) "simulation terminates" true (Group.quiescent group);
  let sent = (Network.stats (Group.net group) ~cls:"local-req").Network.sent in
  Alcotest.(check bool) (Printf.sprintf "requests bounded: %d <= 15" sent) true (sent <= 15)

let test_unrecoverable_without_bufferers_terminates () =
  (* message discarded everywhere and no long-term bufferer: the search
     can never succeed, but bounded tries keep the run finite *)
  let topology = Topology.single_region ~size:10 in
  let config = { Config.default with Config.max_recovery_tries = Some 5 } in
  let group = Group.create ~seed:31 ~config ~topology () in
  let id = mid 0 in
  List.iter (fun m -> Member.force_received m id) (Group.members group);
  (* a late joiner misses it and must fail gracefully *)
  let joiner = Group.join group (Region_id.of_int 0) in
  Member.inject_loss joiner id;
  Group.run ~max_events:200_000 group;
  Alcotest.(check bool) "joiner still missing" false (Member.has_received joiner id)

let test_determinism_same_seed () =
  let run seed =
    let topology = Topology.chain ~sizes:[ 20; 20 ] in
    let group = Group.create ~seed ~loss:(Loss.Bernoulli 0.2) ~topology () in
    let ids = List.init 5 (fun _ -> Group.multicast group ()) in
    Member.send_session (Group.sender group);
    Group.run group;
    ( List.map (fun id -> Group.count_received group id) ids,
      Network.total_sent (Group.net group),
      Group.now group )
  in
  let a = run 42 and b = run 42 and c = run 43 in
  Alcotest.(check bool) "same seed, same outcome" true (a = b);
  Alcotest.(check bool) "different seed diverges" true (a <> c)

(* under random loss with session messages, everything is eventually
   delivered everywhere (the reliability property) *)
let test_reliability_under_loss () =
  let topology = Topology.chain ~sizes:[ 15; 15; 15 ] in
  let config = { Config.default with Config.session_interval = Some 20.0 } in
  let group = Group.create ~seed:33 ~config ~loss:(Loss.Bernoulli 0.3) ~topology () in
  let ids = List.init 10 (fun _ -> Group.multicast group ()) in
  Group.run ~until:10_000.0 group;
  List.iteri
    (fun i id ->
      Alcotest.(check int)
        (Printf.sprintf "message %d received by all 45" i)
        45 (Group.count_received group id))
    ids

let suites =
  [
    ( "rrmp.config",
      [
        Alcotest.test_case "default valid" `Quick test_config_default_valid;
        Alcotest.test_case "rejects bad values" `Quick test_config_rejects_bad_values;
      ] );
    ( "rrmp.long_term",
      [
        Alcotest.test_case "probability" `Quick test_long_term_probability;
        QCheck_alcotest.to_alcotest qcheck_long_term_mean;
      ] );
    ( "rrmp.buffer",
      [
        Alcotest.test_case "insert/find/remove" `Quick test_buffer_insert_find_remove;
        Alcotest.test_case "occupancy integral" `Quick test_buffer_occupancy_integral;
        Alcotest.test_case "long-term payloads" `Quick test_buffer_long_term_payloads;
        Alcotest.test_case "promote absent no-op" `Quick test_buffer_promote_absent_is_noop;
        Alcotest.test_case "phase counters" `Quick test_buffer_phase_counters;
        Alcotest.test_case "iter/fold match contents" `Quick test_buffer_iter_fold_match_contents;
      ] );
    ( "rrmp.recovery",
      [
        Alcotest.test_case "lossless delivery" `Quick test_lossless_delivery;
        Alcotest.test_case "local recovery" `Quick test_local_recovery_single_loss;
        Alcotest.test_case "gap triggers recovery" `Quick test_gap_triggers_recovery;
        Alcotest.test_case "remote recovery" `Quick test_remote_recovery_regional_loss;
        Alcotest.test_case "record and relay" `Quick test_record_and_relay;
        Alcotest.test_case "max tries bound" `Quick test_max_recovery_tries_bounds_requests;
        Alcotest.test_case "unrecoverable terminates" `Quick test_unrecoverable_without_bufferers_terminates;
        Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
        Alcotest.test_case "reliability under loss" `Quick test_reliability_under_loss;
      ] );
    ( "rrmp.buffering",
      [
        Alcotest.test_case "~C bufferers remain" `Quick test_idle_discard_keeps_about_c;
        Alcotest.test_case "C=0 discards all" `Quick test_idle_discard_all_when_c_zero;
        Alcotest.test_case "feedback extends buffering" `Quick test_feedback_extends_buffering;
        Alcotest.test_case "sender buffers own" `Quick test_sender_buffers_own_message;
        Alcotest.test_case "long-term lifetime" `Quick test_long_term_lifetime_discard;
      ] );
    ( "rrmp.search",
      [
        Alcotest.test_case "finds bufferer" `Quick test_search_finds_bufferer;
        Alcotest.test_case "zero search at bufferer" `Quick test_search_zero_when_hitting_bufferer;
        Alcotest.test_case "have announced once" `Quick test_search_have_announced_once;
        Alcotest.test_case "single bufferer terminates" `Quick test_search_single_bufferer_terminates;
      ] );
    ( "rrmp.membership",
      [
        Alcotest.test_case "leave hands off" `Quick test_leave_hands_off_long_term_buffer;
        Alcotest.test_case "crash loses buffer" `Quick test_crash_does_not_hand_off;
        Alcotest.test_case "join participates" `Quick test_join_participates;
      ] );
    ( "rrmp.suppression",
      [ Alcotest.test_case "backoff suppresses" `Slow test_backoff_suppresses_duplicates ] );
  ]

(* ------------------------------------------------------------------ *)
(* Failure detection over the RRMP network                             *)
(* ------------------------------------------------------------------ *)

let test_fd_suspects_crashed_member () =
  let topology = Topology.single_region ~size:8 in
  let group = Group.create ~seed:40 ~topology () in
  Group.enable_failure_detection group ~gossip_interval:10.0 ~fail_timeout:100.0;
  (* fail node 5 without telling anyone: handler unregistered, but the
     node stays in everyone's view *)
  let failed = Node_id.of_int 5 in
  ignore
    (Engine.Sim.schedule (Group.sim group) ~delay:200.0 (fun () ->
         Member.crash (Group.member group failed)));
  Group.run ~until:1_000.0 group;
  List.iter
    (fun m ->
      if not (Node_id.equal (Member.node m) failed) then
        Alcotest.(check bool)
          (Printf.sprintf "%s suspects the crashed node"
             (Node_id.to_string (Member.node m)))
          true
          (Member.is_suspected m failed))
    (Group.members group)

let test_fd_no_false_suspicion_over_rrmp () =
  let topology = Topology.chain ~sizes:[ 5; 5 ] in
  let group = Group.create ~seed:41 ~topology () in
  Group.enable_failure_detection group ~gossip_interval:10.0 ~fail_timeout:200.0;
  Group.run ~until:2_000.0 group;
  List.iter
    (fun m ->
      Alcotest.(check (list int)) "healthy group: no suspects" []
        (List.map Node_id.to_int (Member.suspects m)))
    (Group.members group)

let test_fd_disabled_by_default () =
  let topology = Topology.single_region ~size:3 in
  let group = Group.create ~seed:42 ~topology () in
  Group.run ~until:100.0 group;
  Alcotest.(check (list int)) "no detector, no suspects" []
    (List.map Node_id.to_int (Member.suspects (Group.sender group)));
  Alcotest.(check int) "no gossip traffic" 0
    (Network.stats (Group.net group) ~cls:"gossip").Network.sent

let fd_suite =
  ( "rrmp.failure_detection",
    [
      Alcotest.test_case "suspects crashed member" `Quick test_fd_suspects_crashed_member;
      Alcotest.test_case "no false suspicion" `Quick test_fd_no_false_suspicion_over_rrmp;
      Alcotest.test_case "disabled by default" `Quick test_fd_disabled_by_default;
    ] )

let suites = suites @ [ fd_suite ]

(* ------------------------------------------------------------------ *)
(* Analytical search model                                             *)
(* ------------------------------------------------------------------ *)

module Model = Rrmp.Model

let test_model_hit_probability () =
  (* one searcher, k of n-1 candidates *)
  Alcotest.(check (float 1e-12)) "single probe" (10.0 /. 99.0)
    (Model.search_hit_probability ~n:100 ~k:10 ~searchers:1);
  (* many searchers approach certainty *)
  Alcotest.(check bool) "many probes ~1" true
    (Model.search_hit_probability ~n:100 ~k:10 ~searchers:100 > 0.99)

let test_model_monotone_in_k () =
  let prev = ref infinity in
  for k = 1 to 10 do
    let t = Model.expected_search_time ~n:100 ~k ~rtt:10.0 in
    Alcotest.(check bool) (Printf.sprintf "decreasing at k=%d" k) true (t < !prev);
    prev := t
  done

let test_model_sublinear_in_n () =
  let t100 = Model.expected_search_time ~n:100 ~k:10 ~rtt:10.0 in
  let t1000 = Model.expected_search_time ~n:1000 ~k:10 ~rtt:10.0 in
  let factor = t1000 /. t100 in
  Alcotest.(check bool)
    (Printf.sprintf "10x size -> %.2fx time" factor)
    true
    (factor > 1.5 && factor < 4.0)

let test_model_matches_simulation () =
  (* the model should predict the fig8 measurement within ~25% *)
  List.iter
    (fun k ->
      let model = Model.expected_search_time ~n:100 ~k ~rtt:10.0 in
      let measured =
        let s = Stats.Summary.create () in
        for seed = 1 to 40 do
          Stats.Summary.add s (Experiments.Fig8.search_time ~region:100 ~bufferers:k ~seed)
        done;
        Stats.Summary.mean s
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d model %.1f vs sim %.1f" k model measured)
        true
        (abs_float (model -. measured) /. Float.max measured 1.0 < 0.3))
    [ 2; 6; 10 ]

let test_model_idle_premature_probability () =
  (* more missing members -> requests more likely -> premature idle
     less likely *)
  let few = Model.prob_idle_fires_while_missing ~n:100 ~missing:2 ~rounds:4.0 in
  let many = Model.prob_idle_fires_while_missing ~n:100 ~missing:50 ~rounds:4.0 in
  Alcotest.(check bool) "monotone" true (many < few);
  Alcotest.(check bool) "bounded" true (few <= 1.0 && many >= 0.0)

let model_suite =
  ( "rrmp.model",
    [
      Alcotest.test_case "hit probability" `Quick test_model_hit_probability;
      Alcotest.test_case "monotone in k" `Quick test_model_monotone_in_k;
      Alcotest.test_case "sublinear in n" `Quick test_model_sublinear_in_n;
      Alcotest.test_case "matches simulation" `Slow test_model_matches_simulation;
      Alcotest.test_case "premature idle probability" `Quick test_model_idle_premature_probability;
    ] )

let suites = suites @ [ model_suite ]

let test_tracing_observer () =
  let tracer = Tracing.Tracer.create () in
  let topology = Topology.single_region ~size:5 in
  let group =
    Group.create ~seed:50 ~observer:(Events.tracing_observer tracer) ~topology ()
  in
  let _id = Group.multicast group () in
  Group.run group;
  Alcotest.(check bool) "events recorded" true (Tracing.Tracer.length tracer > 0);
  let kinds =
    List.map (fun e -> e.Tracing.Tracer.event) (Tracing.Tracer.entries tracer)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check bool) "delivered traced" true (List.mem "delivered" kinds);
  Alcotest.(check bool) "idle traced" true (List.mem "became-idle" kinds)

let tracing_suite =
  ("rrmp.tracing", [ Alcotest.test_case "tracing observer" `Quick test_tracing_observer ])

let suites = suites @ [ tracing_suite ]

(* ------------------------------------------------------------------ *)
(* Allocation discipline on the gated hot path                         *)
(* ------------------------------------------------------------------ *)

(* With deadline rings armed and neither observer nor metrics attached,
   processing a duplicate regional repair — the feedback op that
   dominates large-group recovery traffic: length-guarded regional
   suppression, windowed duplicate check, two ring touches — must
   allocate NOTHING on the minor heap. This is the tentpole's
   "allocation-free event emission" claim made mechanically checkable:
   any ungated [emit], [Some]-allocating table probe, or boxed-float
   write on the path shows up as a nonzero word delta. *)

let test_zero_alloc_duplicate_feedback () =
  let config =
    {
      Config.default with
      Config.deadline_quantum = 10.0;
      long_term_lifetime = Some 1.0e6;
    }
  in
  let topology = Topology.single_region ~size:4 in
  let group = Group.create ~seed:3 ~config ~topology () in
  let id = Group.multicast group () in
  Group.run ~until:6.0 group;
  (* everyone holds the body now; a re-delivered regional repair is a
     pure feedback touch *)
  let m = Group.member group (Node_id.of_int 1) in
  Alcotest.(check bool) "body delivered" true (Member.has_received m id);
  let delivery =
    {
      Network.src = Node_id.of_int 2;
      Network.dst = Node_id.of_int 1;
      Network.msg = Rrmp.Wire.Regional_repair (Payload.make id);
      Network.sent_at = 0.0;
      Network.cls = "repair";
    }
  in
  for _ = 1 to 10 do
    Member.inject_delivery m delivery
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 1_000 do
    Member.inject_delivery m delivery
  done;
  let words = Gc.minor_words () -. w0 in
  Alcotest.(check (float 0.0)) "zero minor words per duplicate" 0.0 words

(* the same deterministic run allocates strictly more once an observer
   is attached: every emit site constructs its event record only when
   someone is listening *)
let test_emission_gating_saves_allocation () =
  let run ~observer () =
    let topology = Topology.single_region ~size:20 in
    let w0 = Gc.minor_words () in
    let group = Group.create ~seed:9 ?observer ~topology () in
    for _ = 1 to 5 do
      ignore (Group.multicast group ())
    done;
    Group.run group;
    Gc.minor_words () -. w0
  in
  let silent = run ~observer:None () in
  let observed = run ~observer:(Some (fun ~time:_ ~self:_ _ -> ())) () in
  Alcotest.(check bool)
    (Printf.sprintf "observer costs allocation (%.0f < %.0f)" silent observed)
    true
    (silent < observed)

(* member-level ring/legacy parity: identical delivery outcome and a
   fully drained buffer either way, the rings merely firing later
   within their quantum *)
let test_ring_and_legacy_members_agree () =
  let run quantum =
    let config =
      {
        Config.default with
        Config.deadline_quantum = quantum;
        long_term_lifetime = Some 200.0;
      }
    in
    let topology = Topology.chain ~sizes:[ 10; 10 ] in
    let group = Group.create ~seed:11 ~config ~topology () in
    let id =
      Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < 10) ()
    in
    Group.run group;
    (Group.count_received group id, Group.total_buffered_messages group)
  in
  let legacy_received, legacy_buffered = run 0.0 in
  let ring_received, ring_buffered = run 10.0 in
  Alcotest.(check int) "all members recover either way" legacy_received ring_received;
  Alcotest.(check int) "legacy buffers drain" 0 legacy_buffered;
  Alcotest.(check int) "ring buffers drain" 0 ring_buffered

let alloc_suite =
  ( "rrmp.allocation",
    [
      Alcotest.test_case "zero-alloc duplicate feedback" `Quick
        test_zero_alloc_duplicate_feedback;
      Alcotest.test_case "emission gating saves allocation" `Quick
        test_emission_gating_saves_allocation;
      Alcotest.test_case "ring/legacy member parity" `Quick
        test_ring_and_legacy_members_agree;
    ] )

let suites = suites @ [ alloc_suite ]
