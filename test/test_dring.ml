(* Coalesced deadline ring: unit semantics plus a qcheck lockstep suite
   against the exact per-entry Timer.Idle implementation it replaces.

   The oracle relation: an entry whose exact (Timer.Idle) deadline is
   [te] must fire from the ring at [ceil (te / quantum) * quantum] —
   within one quantum after [te], never before. Fires are compared as
   per-quantum key multisets in tick order, which pins both the fire
   set and the cross-quantum order while allowing the within-quantum
   order to be the ring's own (insertion order). *)

open Engine

module Ring = Dring.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Fun.id
end)

(* ------------------------------------------------------------------ *)
(* Unit semantics                                                      *)
(* ------------------------------------------------------------------ *)

let make ?(quantum = 10.0) () =
  let sim = Sim.create () in
  let fires = ref [] in
  let ring =
    Ring.create sim ~quantum ~on_expire:(fun k -> fires := (Sim.now sim, k) :: !fires)
  in
  (sim, ring, fun () -> List.rev !fires)

let check_fires = Alcotest.(check (list (pair (float 1e-9) int)))

let test_fires_quantized () =
  let sim, ring, fires = make () in
  Ring.add ring 1 ~timeout:25.0;  (* exact 25 -> bucket 30 *)
  Ring.add ring 2 ~timeout:20.0;  (* tick-aligned: fires exactly at 20 *)
  Alcotest.(check int) "armed" 2 (Ring.length ring);
  Sim.run sim;
  check_fires "ceil-quantum fire times" [ (20.0, 2); (30.0, 1) ] (fires ());
  Alcotest.(check int) "drained" 0 (Ring.length ring)

let test_touch_defers () =
  let sim, ring, fires = make () in
  Ring.add ring 7 ~timeout:25.0;
  ignore (Sim.schedule_at sim ~at:14.0 (fun () -> Ring.touch ring 7));
  (* new exact deadline 39 -> bucket 40; the stale bucket-30 sweep must
     re-bucket, not fire *)
  Sim.run sim;
  check_fires "deferred once" [ (40.0, 7) ] (fires ())

let test_touch_at_sweep_instant () =
  let sim, ring, fires = make () in
  Ring.add ring 3 ~timeout:20.0;
  (* the sweep was scheduled by [add], so at the shared instant t=20 it
     runs before the later-scheduled touch and the entry fires — the
     same tie-break as a Timer.Idle armed at create time: activity
     scheduled after arming loses an exact-deadline tie *)
  ignore (Sim.schedule_at sim ~at:20.0 (fun () -> Ring.touch ring 3));
  Sim.run sim;
  check_fires "sweep wins its own instant" [ (20.0, 3) ] (fires ());
  (* whereas activity scheduled before the deadline's bucket existed
     runs first and defers: the touch event here predates the add *)
  let sim2, ring2, fires2 = make () in
  ignore (Sim.schedule_at sim2 ~at:20.0 (fun () -> Ring.touch ring2 3));
  ignore (Sim.schedule_at sim2 ~at:0.0 (fun () -> Ring.add ring2 3 ~timeout:20.0));
  Sim.run sim2;
  check_fires "earlier-scheduled touch defers" [ (40.0, 3) ] (fires2 ())

let test_stop_prevents () =
  let sim, ring, fires = make () in
  Ring.add ring 1 ~timeout:15.0;
  Ring.add ring 2 ~timeout:15.0;
  ignore (Sim.schedule_at sim ~at:5.0 (fun () -> Ring.stop ring 1));
  Sim.run sim;
  check_fires "only the live entry fires" [ (20.0, 2) ] (fires ());
  Alcotest.(check bool) "stopped key unknown" false (Ring.mem ring 1);
  (* stopping or touching unknown keys is a no-op *)
  Ring.stop ring 99;
  Ring.touch ring 99

let test_re_add_replaces () =
  let sim, ring, fires = make () in
  Ring.add ring 1 ~timeout:15.0;
  Ring.add ring 1 ~timeout:42.0;  (* replaces: exact 42 -> bucket 50 *)
  Alcotest.(check int) "one armed entry" 1 (Ring.length ring);
  Sim.run sim;
  check_fires "fires once, at the replacement deadline" [ (50.0, 1) ] (fires ())

let test_re_add_from_on_expire () =
  let sim = Sim.create () in
  let fires = ref [] in
  let ring = ref None in
  let r =
    Ring.create sim ~quantum:10.0 ~on_expire:(fun k ->
        fires := (Sim.now sim, k) :: !fires;
        if List.length !fires = 1 then Ring.add (Option.get !ring) k ~timeout:15.0)
  in
  ring := Some r;
  Ring.add r 1 ~timeout:5.0;
  Sim.run sim;
  check_fires "re-armed from the expiry callback" [ (10.0, 1); (30.0, 1) ]
    (List.rev !fires)

let test_clear_cancels () =
  let sim, ring, fires = make () in
  for k = 0 to 9 do
    Ring.add ring k ~timeout:(float_of_int ((k + 1) * 7))
  done;
  Ring.clear ring;
  Sim.run sim;
  check_fires "nothing fires after clear" [] (fires ());
  Alcotest.(check int) "no sweeps left" 0 (Ring.pending_sweeps ring);
  Alcotest.(check int) "no entries left" 0 (Ring.length ring)

let test_sweep_coalescing () =
  let sim, ring, _ = make () in
  (* 100 entries, deadlines spread over 10 quanta -> at most 10 sweeps *)
  for k = 0 to 99 do
    Ring.add ring k ~timeout:(float_of_int (1 + k))
  done;
  Alcotest.(check int) "all armed" 100 (Ring.length ring);
  Alcotest.(check bool) "sweeps coalesced"
    true
    (Ring.pending_sweeps ring <= 10);
  Sim.run sim

let test_invalid_args () =
  let sim = Sim.create () in
  Alcotest.check_raises "quantum must be positive"
    (Invalid_argument "Dring.create: quantum must be positive") (fun () ->
      ignore (Ring.create sim ~quantum:0.0 ~on_expire:ignore));
  let ring = Ring.create sim ~quantum:10.0 ~on_expire:ignore in
  Alcotest.check_raises "timeout must be positive"
    (Invalid_argument "Dring.add: timeout must be positive") (fun () ->
      Ring.add ring 1 ~timeout:0.0)

(* ------------------------------------------------------------------ *)
(* qcheck lockstep vs the Timer.Idle oracle                            *)
(* ------------------------------------------------------------------ *)

(* An op is (dt, kind, key, timeout): advance the op clock by [dt] ms,
   then Add / Touch / Stop [key]. All times are integers, so quantized
   ticks are computed exactly on both sides.

   The oracle is one Timer.Idle per armed key, driven eagerly: touch =
   cancel + re-arm — the per-message-timer implementation the ring
   replaces. It runs in two modes:

   - [quantize = Some q]: each arm rounds its deadline up to the next
     quantum boundary (deadline = ceil ((now + timeout) / q) * q).
     This is the ring's documented contract, so ring and oracle must
     produce identical fire times with identical per-quantum key
     multisets, for arbitrary op interleavings.

   - [quantize = None]: exact deadlines. Equivalence then holds only
     when no op lands inside an entry's lag window (after its exact
     deadline, before its bucket boundary) — there the exact oracle
     has already fired while the ring still holds the entry, and a
     re-add legitimately diverges (it replaces the pending entry
     instead of arming a second timer). Tick-aligned workloads have
     empty lag windows, so the drivers are fed tick-aligned times when
     comparing against the exact oracle: the ring must then be
     indistinguishable from per-message Timer.Idle, fire times
     included. *)

(* qcheck's int shrinker can step outside int_range's lower bound, so
   the drivers clamp rather than let [add] reject mid-shrink *)
let clamp_timeout timeout = max 1 timeout

let run_ring ~quantum ops =
  let sim = Sim.create () in
  let fires = ref [] in
  let ring =
    Ring.create sim ~quantum ~on_expire:(fun k -> fires := (Sim.now sim, k) :: !fires)
  in
  let time = ref 0.0 in
  List.iter
    (fun (dt, kind, key, timeout) ->
      let timeout = clamp_timeout timeout in
      time := !time +. float_of_int (max 0 dt);
      ignore
        (Sim.schedule_at sim ~at:!time (fun () ->
             match kind with
             | 0 -> Ring.add ring key ~timeout:(float_of_int timeout)
             | 1 -> Ring.touch ring key
             | _ -> Ring.stop ring key)))
    ops;
  Sim.run sim;
  (List.rev !fires, Ring.length ring)

let run_oracle ?quantize ops =
  let sim = Sim.create () in
  let fires = ref [] in
  (* armed key -> (its timer, its base quiet period) *)
  let timers : (int, Timer.Idle.t * float) Hashtbl.t = Hashtbl.create 8 in
  let drop key =
    match Hashtbl.find_opt timers key with
    | Some (t, _) ->
      Timer.Idle.stop t;
      Hashtbl.remove timers key
    | None -> ()
  in
  (* delay until the (possibly quantized) deadline of a quiet period
     starting now *)
  let delay_of timeout =
    match quantize with
    | None -> timeout
    | Some q ->
      let deadline = Float.ceil ((Sim.now sim +. timeout) /. q) *. q in
      deadline -. Sim.now sim
  in
  let arm key timeout =
    drop key;
    let t =
      Timer.Idle.create sim ~timeout:(delay_of timeout) ~on_idle:(fun () ->
          Hashtbl.remove timers key;
          fires := (Sim.now sim, key) :: !fires)
    in
    Hashtbl.replace timers key (t, timeout)
  in
  let time = ref 0.0 in
  List.iter
    (fun (dt, kind, key, timeout) ->
      let timeout = clamp_timeout timeout in
      time := !time +. float_of_int (max 0 dt);
      ignore
        (Sim.schedule_at sim ~at:!time (fun () ->
             match kind with
             | 0 -> arm key (float_of_int timeout)
             | 1 ->
               (match Hashtbl.find_opt timers key with
                | Some (t, base) ->
                  (match quantize with
                   | None -> Timer.Idle.touch t
                   | Some _ ->
                     (* the quantized delay depends on absolute time, so
                        an eager touch is a full re-arm *)
                     arm key base)
                | None -> ())
             | _ -> drop key)))
    ops;
  Sim.run sim;
  (List.rev !fires, Hashtbl.length timers)

let tick_of ~quantum at = int_of_float (Float.ceil (at /. quantum))

let show_fires fires =
  String.concat "; "
    (List.map (fun (at, key) -> Printf.sprintf "(%g,%d)" at key) fires)

(* Both sides fire on quantum boundaries (quantized oracle) or on the
   identical exact instants (tick-aligned ops), so sorted (time, key)
   multiset equality is the full lockstep relation; sorting deliberately
   forgets the within-instant order, which is insertion order for the
   ring and arm order for the eager oracle. *)
let compare_runs ~quantum (ring_fires, ring_left) (oracle_fires, oracle_left) =
  if ring_left <> 0 || oracle_left <> 0 then
    QCheck.Test.fail_reportf "entries left armed: ring %d, oracle %d" ring_left
      oracle_left;
  (* every ring fire lands exactly on its bucket boundary *)
  List.iter
    (fun (at, key) ->
      let boundary = float_of_int (tick_of ~quantum at) *. quantum in
      if at <> boundary then
        QCheck.Test.fail_reportf "key %d fired off-quantum at %g" key at)
    ring_fires;
  let ring_s = List.sort compare ring_fires in
  let oracle_s = List.sort compare oracle_fires in
  if ring_s <> oracle_s then
    QCheck.Test.fail_reportf "fire sets diverge:@ ring [%s]@ oracle [%s]"
      (show_fires ring_s) (show_fires oracle_s);
  true

let lockstep_quantized_prop ~quantum ops =
  compare_runs ~quantum (run_ring ~quantum ops) (run_oracle ~quantize:quantum ops)

(* tick-aligned times: every dt and timeout a multiple of the quantum,
   where the ring must match the EXACT Timer.Idle oracle, fire instants
   included *)
let lockstep_exact_prop ~quantum_i ops =
  let ops =
    List.map
      (fun (dt, kind, key, timeout) ->
        (max 0 dt * quantum_i, kind, key, clamp_timeout timeout * quantum_i))
      ops
  in
  let quantum = float_of_int quantum_i in
  compare_runs ~quantum (run_ring ~quantum ops) (run_oracle ops)

let ops_arb =
  QCheck.(
    list_of_size Gen.(int_range 1 80)
      (quad (int_bound 25) (int_bound 2) (int_bound 7) (int_range 1 80)))

let qcheck_lockstep =
  QCheck.Test.make ~name:"ring = quantized Timer.Idle oracle (q=10)" ~count:1_000
    ops_arb
    (lockstep_quantized_prop ~quantum:10.0)

let qcheck_lockstep_coarse =
  QCheck.Test.make ~name:"ring = quantized Timer.Idle oracle (q=7)" ~count:300 ops_arb
    (lockstep_quantized_prop ~quantum:7.0)

let qcheck_lockstep_aligned =
  QCheck.Test.make ~name:"ring = exact Timer.Idle oracle, tick-aligned (q=10)"
    ~count:500 ops_arb
    (lockstep_exact_prop ~quantum_i:10)

let qcheck_lockstep_fine =
  QCheck.Test.make ~name:"ring = exact Timer.Idle oracle, tick-aligned (q=1)"
    ~count:300 ops_arb
    (lockstep_exact_prop ~quantum_i:1)

let suites =
  [
    ( "engine.deadline_ring",
      [
        Alcotest.test_case "fires at ceil-quantum" `Quick test_fires_quantized;
        Alcotest.test_case "touch defers" `Quick test_touch_defers;
        Alcotest.test_case "touch at sweep instant" `Quick test_touch_at_sweep_instant;
        Alcotest.test_case "stop prevents" `Quick test_stop_prevents;
        Alcotest.test_case "re-add replaces" `Quick test_re_add_replaces;
        Alcotest.test_case "re-add from on_expire" `Quick test_re_add_from_on_expire;
        Alcotest.test_case "clear cancels" `Quick test_clear_cancels;
        Alcotest.test_case "sweep coalescing" `Quick test_sweep_coalescing;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
        QCheck_alcotest.to_alcotest qcheck_lockstep;
        QCheck_alcotest.to_alcotest qcheck_lockstep_coarse;
        QCheck_alcotest.to_alcotest qcheck_lockstep_aligned;
        QCheck_alcotest.to_alcotest qcheck_lockstep_fine;
      ] );
  ]
