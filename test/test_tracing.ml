(* Tests for metrics, CSV output, and the event tracer. *)

module Metrics = Tracing.Metrics
module Csv = Tracing.Csv
module Tracer = Tracing.Tracer

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "requests";
  Metrics.incr ~by:4 m "requests";
  Metrics.incr m "repairs";
  Alcotest.(check int) "accumulated" 5 (Metrics.counter m "requests");
  Alcotest.(check int) "unknown is zero" 0 (Metrics.counter m "nope");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("repairs", 1); ("requests", 5) ]
    (Metrics.counters m)

let test_metrics_gauges () =
  let m = Metrics.create () in
  Metrics.set_gauge m "x" 1.5;
  Metrics.set_gauge m "x" 0.5;
  Alcotest.(check (option (float 1e-9))) "set overrides" (Some 0.5) (Metrics.gauge m "x");
  Metrics.max_gauge m "peak" 3.0;
  Metrics.max_gauge m "peak" 1.0;
  Alcotest.(check (option (float 1e-9))) "max keeps peak" (Some 3.0) (Metrics.gauge m "peak");
  Metrics.add_gauge m "sum" 1.0;
  Metrics.add_gauge m "sum" 2.5;
  Alcotest.(check (option (float 1e-9))) "add accumulates" (Some 3.5) (Metrics.gauge m "sum")

let test_metrics_reset () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.set_gauge m "b" 1.0;
  Metrics.reset m;
  Alcotest.(check int) "counter cleared" 0 (Metrics.counter m "a");
  Alcotest.(check bool) "gauge cleared" true (Metrics.gauge m "b" = None)

let test_csv_escaping () =
  Alcotest.(check string) "plain untouched" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape_field "a\"b");
  Alcotest.(check string) "newline quoted" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_csv_rows () =
  let out = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ] in
  Alcotest.(check string) "rendered" "x,y\n1,2\n3,\"4,5\"\n" out

let test_csv_save_roundtrip () =
  let path = Filename.temp_file "repro_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save ~path ~header:[ "a" ] [ [ "1" ]; [ "2" ] ];
      let ic = open_in path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "file content" "a\n1\n2\n" content)

let test_tracer_records () =
  let t = Tracer.create () in
  Tracer.record t ~time:1.0 ~subject:"n1" ~event:"delivered" "m0";
  Tracer.record t ~time:2.0 ~subject:"n2" ~event:"idle" "m0";
  Alcotest.(check int) "length" 2 (Tracer.length t);
  match Tracer.entries t with
  | [ first; second ] ->
    Alcotest.(check string) "fifo order" "n1" first.Tracer.subject;
    Alcotest.(check string) "second" "idle" second.Tracer.event
  | _ -> Alcotest.fail "expected two entries"

let test_tracer_capacity () =
  let t = Tracer.create ~capacity:2 () in
  for i = 1 to 5 do
    Tracer.record t ~time:(float_of_int i) ~subject:"s" ~event:"e" (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 2 (Tracer.length t);
  Alcotest.(check int) "dropped counted" 3 (Tracer.dropped t);
  match Tracer.entries t with
  | [ a; b ] ->
    Alcotest.(check string) "keeps newest" "4" a.Tracer.detail;
    Alcotest.(check string) "keeps newest" "5" b.Tracer.detail
  | _ -> Alcotest.fail "expected two entries"

let test_tracer_filter () =
  let t =
    Tracer.create ~filter:(fun ~subject:_ ~event -> event = "keep") ()
  in
  Tracer.record t ~time:0.0 ~subject:"s" ~event:"keep" "";
  Tracer.record t ~time:0.0 ~subject:"s" ~event:"drop" "";
  Alcotest.(check int) "filtered" 1 (Tracer.length t);
  Alcotest.(check int) "filtered not counted as dropped" 0 (Tracer.dropped t);
  Alcotest.(check bool) "wants mirrors the filter" true
    (Tracer.wants t ~subject:"s" ~event:"keep"
    && not (Tracer.wants t ~subject:"s" ~event:"drop"))

let test_tracer_lazy_detail () =
  let forced = ref 0 in
  let t = Tracer.create ~filter:(fun ~subject:_ ~event -> event = "keep") () in
  Tracer.record_lazy t ~time:0.0 ~subject:"s" ~event:"keep" (fun () ->
      incr forced;
      "expensive");
  Tracer.record_lazy t ~time:1.0 ~subject:"s" ~event:"drop" (fun () ->
      Alcotest.fail "filtered-out detail must never be formatted");
  Alcotest.(check int) "not formatted until read" 0 !forced;
  (match Tracer.entries t with
   | [ e ] -> Alcotest.(check string) "formatted on read" "expensive" e.Tracer.detail
   | _ -> Alcotest.fail "expected one entry");
  ignore (Tracer.entries t);
  Alcotest.(check int) "memoized: formatted exactly once" 1 !forced

let test_tracer_lazy_capacity_drop () =
  (* an entry evicted by the capacity bound before any read is never
     formatted *)
  let forced = ref 0 in
  let t = Tracer.create ~capacity:1 () in
  Tracer.record_lazy t ~time:0.0 ~subject:"s" ~event:"e" (fun () ->
      incr forced;
      "old");
  Tracer.record_lazy t ~time:1.0 ~subject:"s" ~event:"e" (fun () ->
      incr forced;
      "new");
  (match Tracer.entries t with
   | [ e ] -> Alcotest.(check string) "survivor formatted" "new" e.Tracer.detail
   | _ -> Alcotest.fail "expected one entry");
  Alcotest.(check int) "evicted entry never formatted" 1 !forced

let test_metrics_handles () =
  let m = Metrics.create () in
  let h = Metrics.handle m "hits" in
  Metrics.incr_handle h;
  Metrics.incr_handle ~by:3 h;
  Metrics.incr m "hits";
  Alcotest.(check int) "handle and name share the counter" 5 (Metrics.counter m "hits");
  Alcotest.(check bool) "handle is stable" true (Metrics.handle m "hits" == h);
  let g = Metrics.gauge_handle m "level" in
  Metrics.set_gauge_handle g 2.0;
  Metrics.add_gauge_handle g 0.5;
  Alcotest.(check (option (float 1e-9))) "gauge via handle" (Some 2.5)
    (Metrics.gauge m "level");
  let sink = Metrics.null_handle () in
  Metrics.incr_handle sink;
  Alcotest.(check (list (pair string int))) "null handle registers nowhere"
    [ ("hits", 5) ] (Metrics.counters m)

let suites =
  [
    ( "tracing.metrics",
      [
        Alcotest.test_case "counters" `Quick test_metrics_counters;
        Alcotest.test_case "gauges" `Quick test_metrics_gauges;
        Alcotest.test_case "reset" `Quick test_metrics_reset;
        Alcotest.test_case "handles" `Quick test_metrics_handles;
      ] );
    ( "tracing.csv",
      [
        Alcotest.test_case "escaping" `Quick test_csv_escaping;
        Alcotest.test_case "rows" `Quick test_csv_rows;
        Alcotest.test_case "save roundtrip" `Quick test_csv_save_roundtrip;
      ] );
    ( "tracing.tracer",
      [
        Alcotest.test_case "records" `Quick test_tracer_records;
        Alcotest.test_case "capacity" `Quick test_tracer_capacity;
        Alcotest.test_case "filter" `Quick test_tracer_filter;
        Alcotest.test_case "lazy detail" `Quick test_tracer_lazy_detail;
        Alcotest.test_case "lazy capacity drop" `Quick test_tracer_lazy_capacity_drop;
      ] );
  ]
