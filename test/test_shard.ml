(* Tests for the region-sharded scale path: the conservative-time
   coordinator (Engine.Shard), the cross-region fabric's deterministic
   barrier exchange, qcheck lockstep of the struct-of-arrays member
   state against the retained record-based reference models
   (Protocol.Gap_detect, Rrmp.Buffer), the SoA deadline-ring
   semantics, and the shard-count / worker-count identity guarantee up
   to registry-wide byte-identical reports. *)

module Sim = Engine.Sim
module Shard = Engine.Shard
module Pool = Engine.Pool
module Fabric = Netsim.Fabric
module Soa = Rrmp.Member_soa
module Gap = Protocol.Gap_detect
module Ext_scale = Experiments.Ext_scale

(* every test that touches the process-wide --shards (or -j) setting
   restores it so test order cannot leak into other suites *)
let with_shards shards f =
  let saved = Shard.default_shards () in
  Shard.set_default_shards shards;
  Fun.protect ~finally:(fun () -> Shard.set_default_shards saved) f

let with_jobs jobs f =
  let saved = Pool.default_workers () in
  Pool.set_default_workers jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_workers saved) f

(* ------------------------------------------------------------------ *)
(* Engine.Shard: windows, quiescence, injection                        *)
(* ------------------------------------------------------------------ *)

let test_shard_setting_clamped () =
  with_shards 0 (fun () -> Alcotest.(check int) "clamped up" 1 (Shard.default_shards ()));
  with_shards 999 (fun () ->
      Alcotest.(check int) "clamped down" 128 (Shard.default_shards ()));
  with_shards 7 (fun () -> Alcotest.(check int) "plain" 7 (Shard.default_shards ()))

let test_shard_run_validation () =
  let sims = [| Sim.create () |] in
  Alcotest.check_raises "quantum <= 0"
    (Invalid_argument "Shard.run: quantum must be positive") (fun () ->
      Shard.run ~sims ~quantum:0.0 ~until:10.0 ~exchange:(fun ~barrier:_ -> 0) ());
  Alcotest.check_raises "until < 0"
    (Invalid_argument "Shard.run: until must be non-negative") (fun () ->
      Shard.run ~sims ~quantum:1.0 ~until:(-1.0) ~exchange:(fun ~barrier:_ -> 0) ())

(* barriers fire once per quantum until every shard is quiescent, then
   the empty windows are skipped and all clocks land exactly at until *)
let test_shard_windows_and_quiescence () =
  let sims = [| Sim.create (); Sim.create () |] in
  let hits = ref [] in
  ignore (Sim.schedule_at sims.(0) ~at:5.0 (fun () -> hits := 5 :: !hits));
  ignore (Sim.schedule_at sims.(0) ~at:15.0 (fun () -> hits := 15 :: !hits));
  let barriers = ref [] in
  Shard.run ~sims ~quantum:10.0 ~until:100.0
    ~exchange:(fun ~barrier ->
      barriers := barrier :: !barriers;
      0)
    ();
  Alcotest.(check (list (float 0.0)))
    "one barrier per non-quiescent window" [ 10.0; 20.0 ] (List.rev !barriers);
  Alcotest.(check (list int)) "events ran in their windows" [ 5; 15 ] (List.rev !hits);
  Alcotest.(check (float 0.0)) "shard 0 clock at until" 100.0 (Sim.now sims.(0));
  Alcotest.(check (float 0.0)) "shard 1 clock at until" 100.0 (Sim.now sims.(1))

(* an exchange that injects keeps the window loop alive, and the
   injected event runs inside the destination shard's next window *)
let test_shard_exchange_injection () =
  let sims = [| Sim.create (); Sim.create () |] in
  ignore (Sim.schedule_at sims.(0) ~at:2.0 (fun () -> ()));
  let delivered = ref (-1.0) in
  let injected_once = ref false in
  Shard.run ~sims ~quantum:10.0 ~until:50.0
    ~exchange:(fun ~barrier ->
      if !injected_once then 0
      else begin
        injected_once := true;
        ignore
          (Sim.schedule_at sims.(1) ~at:(barrier +. 2.0) (fun () ->
               delivered := Sim.now sims.(1)));
        1
      end)
    ();
  Alcotest.(check (float 0.0)) "cross-shard event ran at its arrival" 12.0 !delivered

(* the spine hooks: [on_window] runs once per shard per window with the
   clock at the barrier (barrier-driven ring sweeps), and a [busy]
   shard keeps the window loop alive with zero Sim events in flight —
   the loop must not declare quiescence while ring deadlines are armed *)
let test_shard_on_window_busy () =
  with_jobs 1 (fun () ->
      let sims = [| Sim.create (); Sim.create () |] in
      let seen = ref [] in
      let remaining = ref 3 in
      Shard.run ~sims ~quantum:10.0 ~until:100.0
        ~on_window:(fun ~shard ~barrier ->
          Alcotest.(check (float 0.0))
            "clock sits at the barrier during the hook" barrier
            (Sim.now sims.(shard));
          seen := (shard, barrier) :: !seen)
        ~busy:(fun s -> s = 0 && !remaining > 0)
        ~exchange:(fun ~barrier:_ ->
          decr remaining;
          0)
        ();
      Alcotest.(check (list (pair int (float 0.0))))
        "three windows ran, shard order within each, despite empty Sims"
        [ (0, 10.0); (1, 10.0); (0, 20.0); (1, 20.0); (0, 30.0); (1, 30.0) ]
        (List.rev !seen);
      Alcotest.(check (float 0.0)) "clock lands at until" 100.0 (Sim.now sims.(0)))

(* ------------------------------------------------------------------ *)
(* Netsim.Fabric: deterministic barrier exchange                       *)
(* ------------------------------------------------------------------ *)

(* injection order is ascending source region, emission order within a
   region, fanout destinations in array order — independent of posting
   interleaving, which is what makes the result shard-count invariant *)
let test_fabric_exchange_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let fab =
    Fabric.create ~regions:3 ~shards:2
      ~shard_of:(fun r -> if r = 0 then 0 else 1)
      ~quantum:10.0
      ~sim_of:(fun _ -> sim)
      ~deliver:(fun ~region ~member msg -> log := (region, member, msg) :: !log)
  in
  (* posted out of source order on purpose *)
  Fabric.unicast fab ~src_region:2 ~dst_region:0 ~dst_member:6 ~arrival:12.0 "s2";
  Fabric.unicast fab ~src_region:1 ~dst_region:0 ~dst_member:3 ~arrival:12.0 "s1-a";
  Fabric.unicast fab ~src_region:1 ~dst_region:0 ~dst_member:5 ~arrival:12.0 "s1-b";
  Fabric.fanout fab ~src_region:0 ~dst_region:1 ~arrival:15.0 ~dsts:[| 0; 2 |] "fan";
  Alcotest.(check int) "posted counts parcels" 4 (Fabric.posted fab);
  Alcotest.(check int) "exchange injects every parcel" 4 (Fabric.exchange fab ~barrier:10.0);
  Alcotest.(check int) "outboxes drained" 0 (Fabric.exchange fab ~barrier:10.0);
  Sim.run ~until:20.0 sim;
  Alcotest.(check (list (triple int int string)))
    "src-region order at equal arrival; fanout in array order"
    [ (0, 3, "s1-a"); (0, 5, "s1-b"); (0, 6, "s2"); (1, 0, "fan"); (1, 2, "fan") ]
    (List.rev !log)

(* the conservative-time premise is enforced: a parcel due before the
   barrier means the latency configuration broke the quantum bound *)
let test_fabric_conservative_guard () =
  let sim = Sim.create () in
  let fab =
    Fabric.create ~regions:2 ~shards:1
      ~shard_of:(fun _ -> 0)
      ~quantum:10.0
      ~sim_of:(fun _ -> sim)
      ~deliver:(fun ~region:_ ~member:_ () -> ())
  in
  Fabric.unicast fab ~src_region:0 ~dst_region:1 ~dst_member:0 ~arrival:5.0 ();
  (match Fabric.exchange fab ~barrier:10.0 with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  Alcotest.check_raises "quantum <= 0"
    (Invalid_argument "Fabric.create: quantum must be positive") (fun () ->
      ignore
        (Fabric.create ~regions:1 ~shards:1
           ~shard_of:(fun _ -> 0)
           ~quantum:0.0
           ~sim_of:(fun _ -> sim)
           ~deliver:(fun ~region:_ ~member:_ () -> ())))

(* ------------------------------------------------------------------ *)
(* Member_soa ≡ Gap_detect (qcheck lockstep)                           *)
(* ------------------------------------------------------------------ *)

let gap_cap = 48

type gap_op = GData of int | GSess of int | GRep of int

let gap_op_to_string = function
  | GData s -> Printf.sprintf "data%d" s
  | GSess s -> Printf.sprintf "sess%d" s
  | GRep s -> Printf.sprintf "rep%d" s

(* random (member, op) interleavings across three members sharing one
   arena — member state must not bleed across the packed key space *)
let gap_ops_arb =
  let open QCheck in
  let op_gen =
    Gen.(
      map2
        (fun tag s -> match tag with 0 -> GData s | 1 -> GSess s | _ -> GRep s)
        (int_bound 2) (int_bound (gap_cap - 1)))
  in
  make
    ~print:
      (Print.list (fun (m, op) -> Printf.sprintf "m%d:%s" m (gap_op_to_string op)))
    Gen.(list_size (int_bound 120) (pair (int_bound 2) op_gen))

let unobserved_soa ?(on_gap = fun ~member:_ ~seq:_ -> ()) ~sim ~n ~cap () =
  Soa.create ~sim ~n ~cap ~quantum:10.0 ~idle_timeout:1e6 ~lifetime:None
    ~on_idle:(fun ~member:_ ~seq:_ -> ())
    ~on_lifetime:(fun ~member:_ ~seq:_ -> ())
    ~on_gap ()

let qcheck_gap_lockstep =
  QCheck.Test.make ~name:"member_soa gap ops ≡ Gap_detect (lockstep)" ~count:300
    gap_ops_arb (fun ops ->
      let sim = Sim.create () in
      (* the gap sink is installed once at create; the lockstep loop
         drains it per op and checks the reported member as well *)
      let gaps = ref [] in
      let cur_m = ref (-1) in
      let ok = ref true in
      let check b = if not b then ok := false in
      let soa =
        unobserved_soa ~sim ~n:3 ~cap:gap_cap
          ~on_gap:(fun ~member ~seq ->
            check (member = !cur_m);
            gaps := seq :: !gaps)
          ()
      in
      let refs = Array.init 3 (fun _ -> Gap.create ()) in
      List.iter
        (fun (m, op) ->
          let g = refs.(m) in
          cur_m := m;
          (match op with
           | GData s ->
             gaps := [];
             let fresh = Soa.note_data soa m s in
             (match Gap.note_data g s with
              | `Fresh ref_gaps ->
                check fresh;
                check (List.rev !gaps = ref_gaps)
              | `Duplicate ->
                check (not fresh);
                check (!gaps = []))
           | GSess s ->
             gaps := [];
             Soa.note_session soa m ~max_seq:s;
             check (List.rev !gaps = Gap.note_session g ~max_seq:s)
           | GRep s ->
             let expect_fresh = not (Gap.received g s) in
             let fresh = Soa.note_repaired soa m s in
             Gap.note_repaired g s;
             check (fresh = expect_fresh));
          check (Soa.missing_count soa m = Gap.missing_count g);
          check (Soa.received_count soa m = Gap.received_count g);
          check
            (Soa.highest_seen soa m
            = (match Gap.highest_seen g with None -> -1 | Some h -> h)))
        ops;
      for m = 0 to 2 do
        for s = 0 to gap_cap - 1 do
          check (Soa.received soa m s = Gap.received refs.(m) s)
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Member_soa ≡ Buffer (qcheck lockstep)                               *)
(* ------------------------------------------------------------------ *)

let buf_cap = 16

type buf_op = BIns of int | BTouch of int | BProm of int | BDrop of int

let buf_op_to_string = function
  | BIns s -> Printf.sprintf "ins%d" s
  | BTouch s -> Printf.sprintf "touch%d" s
  | BProm s -> Printf.sprintf "prom%d" s
  | BDrop s -> Printf.sprintf "drop%d" s

(* whole-millisecond op times keep both occupancy integrals exact, so
   the float comparison below is an equality, not a tolerance *)
let buf_ops_arb =
  let open QCheck in
  let op_gen =
    Gen.(
      map2
        (fun tag s ->
          match tag with 0 -> BIns s | 1 -> BTouch s | 2 -> BProm s | _ -> BDrop s)
        (int_bound 3) (int_bound (buf_cap - 1)))
  in
  make
    ~print:
      (Print.list (fun (dt, op) -> Printf.sprintf "+%d:%s" dt (buf_op_to_string op)))
    Gen.(list_size (int_bound 80) (pair (int_bound 5) op_gen))

let qcheck_buffer_lockstep =
  QCheck.Test.make ~name:"member_soa buffer ≡ Buffer (lockstep)" ~count:300 buf_ops_arb
    (fun ops ->
      let sim = Sim.create () in
      let soa = unobserved_soa ~sim ~n:1 ~cap:buf_cap () in
      let buf = Rrmp.Buffer.create ~sim in
      let id s = Protocol.Msg_id.make ~source:(Node_id.of_int 0) ~seq:s in
      let payload s = Rrmp.Payload.make (id s) in
      let ok = ref true in
      let check b = if not b then ok := false in
      let time = ref 0.0 in
      List.iter
        (fun (dt, op) ->
          time := !time +. float_of_int dt;
          ignore
            (Sim.schedule_at sim ~at:!time (fun () ->
                 let now = Sim.now sim in
                 (match op with
                  | BIns s ->
                    check
                      (Soa.insert_short soa 0 s ~now
                      = Rrmp.Buffer.insert buf ~phase:Rrmp.Buffer.Short_term (payload s))
                  | BTouch s ->
                    (* feedback touch only moves deadlines; the
                       Buffer-visible state must not change *)
                    Soa.touch soa 0 s ~now
                  | BProm s ->
                    ignore (Soa.promote_long soa 0 s ~now);
                    ignore (Rrmp.Buffer.promote buf (id s))
                  | BDrop s ->
                    check (Soa.drop soa 0 s ~now = (Rrmp.Buffer.remove buf (id s) <> None)));
                 check (Soa.buffer_size soa 0 = Rrmp.Buffer.size buf);
                 check
                   (Soa.long_count soa 0
                   = Rrmp.Buffer.count_phase buf Rrmp.Buffer.Long_term);
                 check (Soa.peak_size soa 0 = Rrmp.Buffer.peak_size buf))))
        ops;
      let horizon = !time in
      Sim.run ~until:horizon sim;
      Soa.settle soa 0 ~now:(Sim.now sim);
      check (Soa.occupancy_msg_ms soa 0 = Rrmp.Buffer.occupancy_msg_ms buf);
      for s = 0 to buf_cap - 1 do
        check (Soa.buffered soa 0 s = Rrmp.Buffer.mem buf (id s));
        check
          (Soa.long_term soa 0 s
          = (Rrmp.Buffer.phase_of buf (id s) = Some Rrmp.Buffer.Long_term))
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Member_soa deadline ring semantics                                  *)
(* ------------------------------------------------------------------ *)

(* the embedded ring mirrors Engine.Dring: deadlines coalesce onto
   ceil(deadline / quantum) ticks — up to one quantum late, never
   early — touches re-bucket lazily, promote/drop disarm *)
let test_soa_ring_semantics () =
  let sim = Sim.create () in
  let fired = ref [] in
  let record cls ~member ~seq = fired := (Sim.now sim, cls, member, seq) :: !fired in
  let soa =
    Soa.create ~sim ~n:2 ~cap:8 ~quantum:10.0 ~idle_timeout:40.0 ~lifetime:(Some 100.0)
      ~on_idle:(record `Idle) ~on_lifetime:(record `Life)
      ~on_gap:(fun ~member:_ ~seq:_ -> ())
      ()
  in
  (* exact-boundary deadline fires exactly on its tick *)
  Alcotest.(check bool) "insert m1/s4" true (Soa.insert_short soa 1 4 ~now:0.0);
  (* off-boundary deadline rounds up to the next tick *)
  Alcotest.(check bool) "insert m1/s1" true (Soa.insert_short soa 1 1 ~now:5.0);
  (* touched entry re-buckets to its pushed-out deadline *)
  Alcotest.(check bool) "insert m0/s0" true (Soa.insert_short soa 0 0 ~now:0.0);
  Soa.touch soa 0 0 ~now:30.0;
  (* promotion disarms idle and arms the lifetime deadline *)
  Alcotest.(check bool) "insert m0/s2" true (Soa.insert_short soa 0 2 ~now:0.0);
  Alcotest.(check bool) "promote m0/s2" true (Soa.promote_long soa 0 2 ~now:0.0);
  (* dropped entry never fires *)
  Alcotest.(check bool) "insert m1/s3" true (Soa.insert_short soa 1 3 ~now:0.0);
  Alcotest.(check bool) "drop m1/s3" true (Soa.drop soa 1 3 ~now:20.0);
  Sim.run ~until:500.0 sim;
  let pp_cls = function `Idle -> "idle" | `Life -> "life" in
  Alcotest.(check (list string))
    "fire times, classes and order"
    [ "40 idle m1/s4"; "50 idle m1/s1"; "70 idle m0/s0"; "100 life m0/s2" ]
    (List.rev_map
       (fun (at, cls, m, s) -> Printf.sprintf "%.0f %s m%d/s%d" at (pp_cls cls) m s)
       !fired)

(* barrier-driven mode: the ring schedules no Sim events at all —
   sweeps run from [sweep_until] at the coordinator's barriers, fire in
   tick order, never early, and [deadlines_pending] is the quiescence
   signal the shard driver's [busy] hook consults *)
let test_soa_barrier_ring () =
  let sim = Sim.create () in
  let fired = ref [] in
  let record cls ~member ~seq = fired := (cls, member, seq) :: !fired in
  let soa =
    Soa.create ~sim ~n:2 ~cap:8 ~quantum:10.0 ~idle_timeout:40.0 ~lifetime:(Some 100.0)
      ~barrier_driven:true ~on_idle:(record `Idle) ~on_lifetime:(record `Life)
      ~on_gap:(fun ~member:_ ~seq:_ -> ())
      ()
  in
  ignore (Soa.insert_short soa 1 4 ~now:0.0 : bool);
  (* idle due 40 -> tick 4 *)
  ignore (Soa.insert_short soa 0 0 ~now:5.0 : bool);
  (* idle due 45 -> tick 5 *)
  ignore (Soa.insert_short soa 0 2 ~now:0.0 : bool);
  ignore (Soa.promote_long soa 0 2 ~now:0.0 : bool);
  (* lifetime due 100 -> tick 10 *)
  Alcotest.(check int) "no Sim events for the ring" 0 (Sim.pending sim);
  Alcotest.(check bool) "deadlines pending" true (Soa.deadlines_pending soa);
  Soa.sweep_until soa ~tick:3;
  Alcotest.(check int) "nothing fires before its tick" 0 (List.length !fired);
  Soa.sweep_until soa ~tick:5;
  Alcotest.(check bool) "still pending (lifetime armed)" true (Soa.deadlines_pending soa);
  Soa.sweep_until soa ~tick:12;
  let pp (cls, m, s) =
    Printf.sprintf "%s m%d/s%d" (match cls with `Idle -> "idle" | `Life -> "life") m s
  in
  Alcotest.(check (list string))
    "ticks fire in order" [ "idle m1/s4"; "idle m0/s0"; "life m0/s2" ]
    (List.rev_map pp !fired);
  Alcotest.(check bool) "drained" false (Soa.deadlines_pending soa);
  (* a Sim-driven arena refuses external sweeps *)
  let sim_driven = unobserved_soa ~sim ~n:1 ~cap:4 () in
  Alcotest.check_raises "sweep_until on a Sim-driven arena"
    (Invalid_argument "Member_soa.sweep_until: arena sweeps are Sim-driven") (fun () ->
      Soa.sweep_until sim_driven ~tick:1)

let test_soa_create_validation () =
  let sim = Sim.create () in
  let mk ?(n = 1) ?(cap = 1) ?(quantum = 1.0) ?(idle = 1.0) ?lifetime () =
    ignore
      (Soa.create ~sim ~n ~cap ~quantum ~idle_timeout:idle ~lifetime
         ~on_idle:(fun ~member:_ ~seq:_ -> ())
         ~on_lifetime:(fun ~member:_ ~seq:_ -> ())
         ~on_gap:(fun ~member:_ ~seq:_ -> ())
         ())
  in
  Alcotest.check_raises "n" (Invalid_argument "Member_soa.create: n must be non-negative")
    (fun () -> mk ~n:(-1) ());
  Alcotest.check_raises "cap" (Invalid_argument "Member_soa.create: cap must be positive")
    (fun () -> mk ~cap:0 ());
  (* the bucket entries pack (m * cap + seq) lsl 1, so n * cap must fit
     in 62 bits — the guard fires before any array is sized *)
  Alcotest.check_raises "packed key overflow"
    (Invalid_argument "Member_soa.create: n * cap exceeds the packed (member, seq) key range")
    (fun () -> mk ~n:(max_int / 8) ~cap:32 ());
  Alcotest.check_raises "quantum"
    (Invalid_argument "Member_soa.create: quantum must be positive") (fun () ->
      mk ~quantum:0.0 ());
  Alcotest.check_raises "lifetime"
    (Invalid_argument "Member_soa.create: lifetime must be positive") (fun () ->
      mk ~lifetime:0.0 ());
  (* empty arenas are legal: a surplus shard owns zero members *)
  mk ~n:0 ();
  mk ()

(* ------------------------------------------------------------------ *)
(* Sharded protocol: shard-count and worker-count invariance           *)
(* ------------------------------------------------------------------ *)

let sharded_cell ?(loss_frac = 0.05) ?(observe = false) ~shards () =
  Ext_scale.run_once_sharded ~regions:5 ~per_region:16 ~msgs:6 ~burst:3 ~loss_frac
    ~quantum:10.0 ~seed:11 ~shards ~observe ()

let check_cell_equal label (a, a_parcels, a_lt) (b, b_parcels, b_lt) =
  let ck name = Alcotest.(check int) (label ^ ": " ^ name) in
  let ckf name = Alcotest.(check (float 0.0)) (label ^ ": " ^ name) in
  ck "members" a.Ext_scale.members b.Ext_scale.members;
  ck "delivered" a.Ext_scale.delivered b.Ext_scale.delivered;
  ck "touches" a.Ext_scale.touches b.Ext_scale.touches;
  ck "recovered" a.Ext_scale.recovered b.Ext_scale.recovered;
  ckf "recovery_mean" a.Ext_scale.recovery_mean b.Ext_scale.recovery_mean;
  ckf "occupancy" a.Ext_scale.occupancy_msg_ms b.Ext_scale.occupancy_msg_ms;
  ck "peak" a.Ext_scale.peak_buffered b.Ext_scale.peak_buffered;
  ck "sim_events" a.Ext_scale.sim_events b.Ext_scale.sim_events;
  ck "parcels" a_parcels b_parcels;
  ck "long-term bufferers" a_lt b_lt

(* the tentpole guarantee in one place: every statistic of a sharded
   run — including float ones — is bit-identical for every shard count *)
let test_sharded_shard_count_invariant () =
  let base = sharded_cell ~shards:1 () in
  let (stats, parcels, _) = base in
  Alcotest.(check bool) "delivered something" true (stats.Ext_scale.delivered > 0);
  Alcotest.(check bool) "recovered something" true (stats.Ext_scale.recovered > 0);
  Alcotest.(check bool) "crossed regions" true (parcels > 0);
  List.iter
    (fun s ->
      check_cell_equal (Printf.sprintf "shards=%d vs 1" s) (sharded_cell ~shards:s ()) base)
    [ 2; 3; 5; 7 ]

(* shard count may exceed the region count: the partition then contains
   empty shards (zero regions — an empty spine that must stay quiescent
   without wedging the barrier loop), alongside one-region shards and,
   in the base run, one shard owning every region. All byte-identical. *)
let test_sharded_empty_shards () =
  let base = sharded_cell ~shards:1 () in
  check_cell_equal "shards=7 over 5 regions vs 1" (sharded_cell ~shards:7 ()) base;
  check_cell_equal "shards=128 (123 empty spines) vs 1"
    (sharded_cell ~shards:128 ())
    base

(* ... and for every worker count driving those shards *)
let test_sharded_jobs_invariant () =
  let seq = with_jobs 1 (fun () -> sharded_cell ~shards:4 ()) in
  let par = with_jobs 4 (fun () -> sharded_cell ~shards:4 ()) in
  check_cell_equal "-j4 vs -j1" par seq

(* attaching per-shard observers must not perturb the simulation *)
let test_sharded_observer_transparent () =
  let quiet = sharded_cell ~shards:3 () in
  let observed = sharded_cell ~shards:3 ~observe:true () in
  check_cell_equal "observed vs unobserved" observed quiet

(* zero loss: the initial multicast reaches everyone, so delivery is
   exactly members * msgs with no recovery machinery engaged *)
let test_sharded_zero_loss () =
  let stats, _, _ = sharded_cell ~shards:2 ~loss_frac:0.0 () in
  Alcotest.(check int) "full delivery" (stats.Ext_scale.members * 6)
    stats.Ext_scale.delivered;
  Alcotest.(check int) "no recoveries" 0 stats.Ext_scale.recovered;
  Alcotest.(check (float 0.0)) "no latency" 0.0 stats.Ext_scale.recovery_mean

let test_sharded_create_validation () =
  let config = { Rrmp.Config.default with Rrmp.Config.deadline_quantum = 10.0 } in
  let mk ?(sizes = [| 2; 2 |]) ?(parents = [| -1; 0 |]) ?(shards = 1) ?(cap = 4)
      ?(intra_ms = 5.0) ?(inter_ms = 50.0) () =
    ignore
      (Rrmp.Sharded.create ~seed:1 ~config ~sizes ~parents ~shards ~cap ~intra_ms
         ~inter_ms ())
  in
  Alcotest.check_raises "shards = 0"
    (Invalid_argument "Sharded.create: shards must be in [1, 128]") (fun () ->
      mk ~shards:0 ());
  Alcotest.check_raises "shards = 129"
    (Invalid_argument "Sharded.create: shards must be in [1, 128]") (fun () ->
      mk ~shards:129 ());
  Alcotest.check_raises "cap beyond the wire seq field"
    (Invalid_argument "Sharded.create: cap exceeds the packed wire seq field") (fun () ->
      mk ~cap:((1 lsl 20) + 1) ());
  Alcotest.check_raises "root parent"
    (Invalid_argument "Sharded.create: region 0 must be the root (parent -1)") (fun () ->
      mk ~parents:[| 0; 0 |] ());
  Alcotest.check_raises "parent order"
    (Invalid_argument "Sharded.create: parents must be topologically ordered toward region 0")
    (fun () -> mk ~parents:[| -1; 1 |] ());
  Alcotest.check_raises "latency below quantum"
    (Invalid_argument "Sharded.create: intra_ms + inter_ms must cover one deadline quantum")
    (fun () -> mk ~intra_ms:2.0 ~inter_ms:3.0 ());
  (* shards > regions is legal now: surplus shards own empty spines *)
  mk ~shards:3 ();
  mk ()

let test_sharded_capacity_guard () =
  let config = { Rrmp.Config.default with Rrmp.Config.deadline_quantum = 10.0 } in
  let t =
    Rrmp.Sharded.create ~seed:1 ~config ~sizes:[| 2; 2 |] ~parents:[| -1; 0 |] ~shards:1
      ~cap:1 ()
  in
  let reach ~region:_ ~member:_ = true in
  Rrmp.Sharded.multicast t ~reach;
  Alcotest.check_raises "cap exhausted"
    (Invalid_argument "Sharded.multicast: sequence capacity exhausted") (fun () ->
      Rrmp.Sharded.multicast t ~reach)

(* the spine acceptance budget: marginal per-region fixed cost. The
   per-region-scaffolding path paid 243.7 heap words and 3.0 Sim
   schedules per region; the per-shard spine must hold a >= 4x words
   reduction and ~1 schedule (the region's injected data parcel). The
   bench enforces the same budget on every full run. *)
let test_region_overhead_budget () =
  let words, scheds = Ext_scale.region_overhead () in
  Alcotest.(check bool)
    (Printf.sprintf "marginal words/region %.1f within the 61.0 budget" words)
    true (words <= 61.0);
  Alcotest.(check bool)
    (Printf.sprintf "marginal Sim schedules/region %.2f within the 1.5 budget" scheds)
    true
    (scheds <= 1.5)

(* ------------------------------------------------------------------ *)
(* Registry-wide report identity across shard counts                   *)
(* ------------------------------------------------------------------ *)

let render report = Format.asprintf "%a" Experiments.Report.pp report

(* Acceptance gate (the --shards analogue of the -j gate in
   test_parallel): for EVERY registry experiment, the quick-mode
   report at --shards 4 is byte-identical to --shards 1. *)
let test_registry_reports_shard_invariant () =
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let one =
        with_shards 1 (fun () -> render (e.Experiments.Registry.run ~quick:true))
      in
      let four =
        with_shards 4 (fun () -> render (e.Experiments.Registry.run ~quick:true))
      in
      Alcotest.(check string)
        (e.Experiments.Registry.id ^ " report identical at --shards 1 and 4")
        one four)
    Experiments.Registry.all

let suites =
  [
    ( "engine.shard",
      [
        Alcotest.test_case "setting clamped" `Quick test_shard_setting_clamped;
        Alcotest.test_case "run validation" `Quick test_shard_run_validation;
        Alcotest.test_case "windows and quiescence" `Quick
          test_shard_windows_and_quiescence;
        Alcotest.test_case "exchange injection" `Quick test_shard_exchange_injection;
        Alcotest.test_case "on_window and busy hooks" `Quick test_shard_on_window_busy;
      ] );
    ( "netsim.fabric",
      [
        Alcotest.test_case "exchange order deterministic" `Quick test_fabric_exchange_order;
        Alcotest.test_case "conservative guard" `Quick test_fabric_conservative_guard;
      ] );
    ( "rrmp.member_soa",
      [
        QCheck_alcotest.to_alcotest qcheck_gap_lockstep;
        QCheck_alcotest.to_alcotest qcheck_buffer_lockstep;
        Alcotest.test_case "deadline ring semantics" `Quick test_soa_ring_semantics;
        Alcotest.test_case "barrier-driven ring" `Quick test_soa_barrier_ring;
        Alcotest.test_case "create validation" `Quick test_soa_create_validation;
      ] );
    ( "rrmp.sharded",
      [
        Alcotest.test_case "stats shard-count invariant" `Quick
          test_sharded_shard_count_invariant;
        Alcotest.test_case "stats worker-count invariant" `Quick
          test_sharded_jobs_invariant;
        Alcotest.test_case "empty shards quiescent and identical" `Quick
          test_sharded_empty_shards;
        Alcotest.test_case "observer transparent" `Quick test_sharded_observer_transparent;
        Alcotest.test_case "zero loss, full delivery" `Quick test_sharded_zero_loss;
        Alcotest.test_case "create validation" `Quick test_sharded_create_validation;
        Alcotest.test_case "capacity guard" `Quick test_sharded_capacity_guard;
        Alcotest.test_case "region overhead within spine budget" `Quick
          test_region_overhead_budget;
        Alcotest.test_case "registry reports identical --shards 1 vs 4" `Slow
          test_registry_reports_shard_invariant;
      ] );
  ]
