(* The binary wire codec: size reconciliation against Wire.bytes,
   round-trip identity, and the never-raise robustness contract on the
   network-facing decode path. *)

module Msg_id = Protocol.Msg_id
module Wire = Rrmp.Wire
module Payload = Rrmp.Payload
module Codec = Rrmp.Codec

let mid ?(source = 0) seq = Msg_id.make ~source:(Node_id.of_int source) ~seq

let node = Node_id.of_int

let fresh_buf n : Codec.buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

(* structural equality strong enough for round trips: payloads compare
   id + size + content checksum *)
let payload_equal a b =
  Msg_id.equal (Payload.id a) (Payload.id b)
  && Int.equal (Payload.size a) (Payload.size b)
  && Int.equal (Payload.checksum a) (Payload.checksum b)

let wire_equal a b =
  match (a, b) with
  | Wire.Data p, Wire.Data q
  | Wire.Repair p, Wire.Repair q
  | Wire.Regional_repair p, Wire.Regional_repair q ->
    payload_equal p q
  | Wire.Session { max_seq = x }, Wire.Session { max_seq = y } -> Int.equal x y
  | Wire.Local_request i, Wire.Local_request j | Wire.Have i, Wire.Have j -> Msg_id.equal i j
  | Wire.Remote_request { id = i; origin = o }, Wire.Remote_request { id = j; origin = p }
  | Wire.Search { id = i; origin = o }, Wire.Search { id = j; origin = p } ->
    Msg_id.equal i j && Node_id.equal o p
  | Wire.Handoff ps, Wire.Handoff qs -> List.equal payload_equal ps qs
  | Wire.History d1, Wire.History d2 ->
    List.equal
      (fun (n1, (h1, m1)) (n2, (h2, m2)) ->
        Node_id.equal n1 n2 && Int.equal h1 h2 && List.equal Int.equal m1 m2)
      d1 d2
  | Wire.Gossip t1, Wire.Gossip t2 ->
    List.equal (fun (n1, h1) (n2, h2) -> Node_id.equal n1 n2 && Int.equal h1 h2) t1 t2
  | _ -> false

(* one concrete message per constructor, plus empty-list edge cases *)
let examples () =
  let p s seq = Payload.make ~size:s (mid seq) in
  [
    Wire.Data (p 1024 0);
    Wire.Data (p 0 1);
    Wire.Session { max_seq = 41 };
    Wire.Local_request (mid 7);
    Wire.Remote_request { id = mid ~source:3 9; origin = node 5 };
    Wire.Repair (p 17 2);
    Wire.Regional_repair (p 256 3);
    Wire.Search { id = mid 11; origin = node 2 };
    Wire.Have (mid ~source:1 13);
    Wire.Handoff [ p 100 4; p 0 5; p 33 6 ];
    Wire.Handoff [];
    Wire.History [ (node 0, (5, [ 1; 2; 4 ])); (node 3, (-1, [])); (node 7, (0, [ 9 ])) ];
    Wire.History [];
    Wire.Gossip [ (node 0, 12); (node 9, 0) ];
    Wire.Gossip [];
  ]

let test_sizes_match_wire_bytes () =
  List.iter
    (fun msg ->
      Alcotest.(check int)
        (Format.asprintf "encoded_size = Wire.bytes for %a" Wire.pp msg)
        (Wire.bytes msg) (Codec.encoded_size msg))
    (examples ())

let test_round_trip_units () =
  List.iter
    (fun msg ->
      let size = Codec.encoded_size msg in
      let b = fresh_buf (size + 200) in
      List.iter
        (fun off ->
          let written = Codec.encode b ~off msg in
          Alcotest.(check int) "encode returns encoded_size" size written;
          match Codec.decode b ~off ~len:size with
          | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)
          | Ok msg' ->
            Alcotest.(check bool)
              (Format.asprintf "round trip %a" Wire.pp msg)
              true (wire_equal msg msg'))
        [ 0; 128 ])
    (examples ())

let test_zero_copy_aliases () =
  let payload = Payload.make ~size:64 (mid 0) in
  let msg = Wire.Data payload in
  let b = fresh_buf 256 in
  let size = Codec.encode b ~off:0 msg in
  (match Codec.decode ~copy:false b ~off:0 ~len:size with
   | Ok (Wire.Data p) ->
     let before = Payload.get p 5 in
     Bigarray.Array1.set b (32 + 5) (Char.chr ((Char.code before + 1) land 0xff));
     Alcotest.(check bool) "shared body sees buffer mutation" true (Payload.get p 5 <> before)
   | _ -> Alcotest.fail "expected Data");
  (* copy:true bodies are independent storage *)
  let size = Codec.encode b ~off:0 msg in
  match Codec.decode ~copy:true b ~off:0 ~len:size with
  | Ok (Wire.Data p) ->
    let before = Payload.get p 7 in
    Bigarray.Array1.set b (32 + 7) (Char.chr ((Char.code before + 1) land 0xff));
    Alcotest.(check bool) "copied body unaffected" true (Char.equal (Payload.get p 7) before);
    Alcotest.(check bool) "copied body intact" true (Payload.intact p)
  | _ -> Alcotest.fail "expected Data"

let test_view_without_read_raises () =
  let d = Codec.create_decoder () in
  Alcotest.check_raises "view on empty decoder"
    (Invalid_argument "Codec.view: the decoder holds no successfully read frame") (fun () ->
      ignore (Codec.view d ~copy:true));
  (* a failed read invalidates the previous frame *)
  let b = fresh_buf 128 in
  let size = Codec.encode b ~off:0 (Wire.Have (mid 3)) in
  (match Codec.read d b ~off:0 ~len:size with
   | Codec.Ok_frame -> ()
   | Codec.Err _ -> Alcotest.fail "read should succeed");
  ignore (Codec.view d ~copy:true);
  (match Codec.read d b ~off:0 ~len:(size - 1) with
   | Codec.Ok_frame -> Alcotest.fail "truncated read should fail"
   | Codec.Err _ -> ());
  Alcotest.check_raises "view after failed read"
    (Invalid_argument "Codec.view: the decoder holds no successfully read frame") (fun () ->
      ignore (Codec.view d ~copy:true))

let test_encode_rejects_bad_values () =
  let b = fresh_buf 256 in
  let raises what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  raises "negative max_seq" (fun () -> Codec.encode b ~off:0 (Wire.Session { max_seq = -1 }));
  raises "negative heartbeat" (fun () ->
      Codec.encode b ~off:0 (Wire.Gossip [ (node 0, -2) ]));
  raises "horizon below -1" (fun () ->
      Codec.encode b ~off:0 (Wire.History [ (node 0, (-2, [])) ]));
  raises "negative missing seq" (fun () ->
      Codec.encode b ~off:0 (Wire.History [ (node 0, (3, [ -1 ])) ]));
  raises "buffer too small" (fun () -> Codec.encode b ~off:200 (Wire.Have (mid 0)));
  raises "negative offset" (fun () -> Codec.encode b ~off:(-1) (Wire.Have (mid 0)))

(* every single-bit header corruption must be caught by the header
   checksum (the framing fields steer the parser, so they are the
   bytes that must never be trusted when flipped) *)
let test_header_corruption_detected () =
  let msg = Wire.Data (Payload.make ~size:48 (mid 5)) in
  let b = fresh_buf 128 in
  let size = Codec.encode b ~off:0 msg in
  for bit = 0 to (32 * 8) - 1 do
    let byte = bit / 8 in
    let orig = Bigarray.Array1.get b byte in
    Bigarray.Array1.set b byte (Char.chr (Char.code orig lxor (1 lsl (bit mod 8))));
    (match Codec.decode b ~off:0 ~len:size with
     | Ok _ -> Alcotest.failf "header bit flip %d went undetected" bit
     | Error _ -> ());
    Bigarray.Array1.set b byte orig
  done;
  match Codec.decode b ~off:0 ~len:size with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restored frame must decode: %s" (Codec.error_to_string e)

(* ------------------------------------------------------------------ *)
(* qcheck generators over all 11 constructors                          *)
(* ------------------------------------------------------------------ *)

let gen_mid =
  QCheck.Gen.(
    map2
      (fun s q -> Msg_id.make ~source:(Node_id.of_int s) ~seq:q)
      (int_bound 1000) (int_bound 1_000_000))

let gen_payload = QCheck.Gen.(map2 (fun m s -> Payload.make ~size:s m) gen_mid (int_bound 300))

let gen_digest_entry =
  QCheck.Gen.(
    map3
      (fun n h missing -> (Node_id.of_int n, (h - 1, missing)))
      (int_bound 500) (int_bound 50)
      (list_size (int_bound 8) (int_bound 10_000)))

let gen_wire =
  QCheck.Gen.(
    oneof
      [
        map (fun p -> Wire.Data p) gen_payload;
        map (fun s -> Wire.Session { max_seq = s }) (int_bound 1_000_000);
        map (fun m -> Wire.Local_request m) gen_mid;
        map2 (fun m o -> Wire.Remote_request { id = m; origin = Node_id.of_int o }) gen_mid
          (int_bound 500);
        map (fun p -> Wire.Repair p) gen_payload;
        map (fun p -> Wire.Regional_repair p) gen_payload;
        map2 (fun m o -> Wire.Search { id = m; origin = Node_id.of_int o }) gen_mid
          (int_bound 500);
        map (fun m -> Wire.Have m) gen_mid;
        map (fun ps -> Wire.Handoff ps) (list_size (int_bound 5) gen_payload);
        map (fun d -> Wire.History d) (list_size (int_bound 5) gen_digest_entry);
        map
          (fun entries ->
            Wire.Gossip (List.map (fun (n, h) -> (Node_id.of_int n, h)) entries))
          (list_size (int_bound 10) (pair (int_bound 500) (int_bound 100_000)));
      ])

let arb_wire = QCheck.make ~print:(Format.asprintf "%a" Wire.pp) gen_wire

let encode_to_fresh msg =
  let size = Codec.encoded_size msg in
  let b = fresh_buf (max 1 size) in
  ignore (Codec.encode b ~off:0 msg);
  (b, size)

let qcheck_round_trip =
  QCheck.Test.make ~count:300 ~name:"decode (encode msg) = msg for all constructors" arb_wire
    (fun msg ->
      let b, size = encode_to_fresh msg in
      match Codec.decode b ~off:0 ~len:size with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" (Codec.error_to_string e)
      | Ok msg' -> wire_equal msg msg')

let qcheck_reencode_identical =
  QCheck.Test.make ~count:200 ~name:"re-encoding a decoded frame is byte-identical" arb_wire
    (fun msg ->
      let b, size = encode_to_fresh msg in
      match Codec.decode b ~off:0 ~len:size with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" (Codec.error_to_string e)
      | Ok msg' ->
        let b', size' = encode_to_fresh msg' in
        if size' <> size then QCheck.Test.fail_reportf "size changed: %d -> %d" size size';
        let same = ref true in
        for i = 0 to size - 1 do
          if not (Char.equal (Bigarray.Array1.get b i) (Bigarray.Array1.get b' i)) then
            same := false
        done;
        !same)

let qcheck_never_raises_on_noise =
  QCheck.Test.make ~count:500 ~name:"decode never raises on arbitrary bytes"
    QCheck.(list_of_size (Gen.int_bound 300) (0 -- 255))
    (fun bytes ->
      let len = List.length bytes in
      let b = fresh_buf (max 1 len) in
      List.iteri (fun i v -> Bigarray.Array1.set b i (Char.chr v)) bytes;
      match Codec.decode b ~off:0 ~len with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e))

let qcheck_rejects_prefixes =
  QCheck.Test.make ~count:200 ~name:"every strict prefix of a frame is rejected, not raised"
    arb_wire (fun msg ->
      let b, size = encode_to_fresh msg in
      let ok = ref true in
      for len = 0 to size - 1 do
        match Codec.decode b ~off:0 ~len with
        | Ok _ -> ok := false
        | Error _ -> ()
        | exception e -> QCheck.Test.fail_reportf "len %d raised %s" len (Printexc.to_string e)
      done;
      !ok)

let qcheck_bit_flips =
  QCheck.Test.make ~count:300 ~name:"single bit flips never raise; header flips are rejected"
    QCheck.(pair arb_wire (0 -- 100_000))
    (fun (msg, r) ->
      let b, size = encode_to_fresh msg in
      if size = 0 then true
      else begin
        let bit = r mod (size * 8) in
        let byte = bit / 8 in
        let orig = Bigarray.Array1.get b byte in
        Bigarray.Array1.set b byte (Char.chr (Char.code orig lxor (1 lsl (bit mod 8))));
        match Codec.decode b ~off:0 ~len:size with
        | Ok _ -> byte >= 32  (* body corruption may decode; framing corruption must not *)
        | Error _ -> true
        | exception e -> QCheck.Test.fail_reportf "raised %s" (Printexc.to_string e)
      end)

let suites =
  [
    ( "rrmp.codec",
      [
        Alcotest.test_case "encoded_size matches Wire.bytes" `Quick test_sizes_match_wire_bytes;
        Alcotest.test_case "round trips" `Quick test_round_trip_units;
        Alcotest.test_case "zero-copy vs copied bodies" `Quick test_zero_copy_aliases;
        Alcotest.test_case "view without frame raises" `Quick test_view_without_read_raises;
        Alcotest.test_case "encode rejects bad values" `Quick test_encode_rejects_bad_values;
        Alcotest.test_case "header corruption detected" `Quick test_header_corruption_detected;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            qcheck_round_trip;
            qcheck_reencode_identical;
            qcheck_never_raises_on_noise;
            qcheck_rejects_prefixes;
            qcheck_bit_flips;
          ] );
  ]
