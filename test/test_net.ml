(* The UDP loopback transport: real datagrams through real sockets,
   driven deterministically (sim clock for every timer, seeded loss on
   the send side). The final test runs full RRMP loss recovery over
   the wire codec and actual kernel queues. *)

module Msg_id = Protocol.Msg_id
module Wire = Rrmp.Wire
module Payload = Rrmp.Payload
module Member = Rrmp.Member
module Config = Rrmp.Config
module Network = Netsim.Network
module Transport = Net.Transport
module Udp = Net.Udp_loopback

let mid ?(source = 0) seq = Msg_id.make ~source:(Node_id.of_int source) ~seq

let node = Node_id.of_int

let nodes_upto n = Array.init n node

let payload_equal a b =
  Msg_id.equal (Payload.id a) (Payload.id b)
  && Int.equal (Payload.size a) (Payload.size b)
  && Int.equal (Payload.checksum a) (Payload.checksum b)

let wire_equal a b =
  match (a, b) with
  | Wire.Data p, Wire.Data q
  | Wire.Repair p, Wire.Repair q
  | Wire.Regional_repair p, Wire.Regional_repair q ->
    payload_equal p q
  | Wire.Session { max_seq = x }, Wire.Session { max_seq = y } -> Int.equal x y
  | Wire.Local_request i, Wire.Local_request j | Wire.Have i, Wire.Have j -> Msg_id.equal i j
  | Wire.Remote_request { id = i; origin = o }, Wire.Remote_request { id = j; origin = p }
  | Wire.Search { id = i; origin = o }, Wire.Search { id = j; origin = p } ->
    Msg_id.equal i j && Node_id.equal o p
  | Wire.Handoff ps, Wire.Handoff qs -> List.equal payload_equal ps qs
  | Wire.History d1, Wire.History d2 ->
    List.equal
      (fun (n1, (h1, m1)) (n2, (h2, m2)) ->
        Node_id.equal n1 n2 && Int.equal h1 h2 && List.equal Int.equal m1 m2)
      d1 d2
  | Wire.Gossip t1, Wire.Gossip t2 ->
    List.equal (fun (n1, h1) (n2, h2) -> Node_id.equal n1 n2 && Int.equal h1 h2) t1 t2
  | _ -> false

let with_transport ?loss ?seed ~n f =
  let t = Udp.create ?loss ?seed ~nodes:(nodes_upto n) () in
  Fun.protect ~finally:(fun () -> Udp.close t) (fun () -> f t)

let test_datagram_round_trip () =
  with_transport ~n:2 (fun t ->
      let msg = Wire.Data (Payload.make ~size:512 (mid 0)) in
      Udp.send t ~src:(node 0) ~dst:(node 1) msg;
      let got = ref [] in
      let n = Udp.drain t ~handle:(fun ~src ~dst m -> got := (src, dst, m) :: !got) in
      Alcotest.(check int) "one message handed up" 1 n;
      (match !got with
       | [ (src, dst, m) ] ->
         Alcotest.(check int) "src" 0 (Node_id.to_int src);
         Alcotest.(check int) "dst" 1 (Node_id.to_int dst);
         Alcotest.(check bool) "message survives the socket" true (wire_equal msg m);
         (match m with
          | Wire.Data p -> Alcotest.(check bool) "body intact" true (Payload.intact p)
          | _ -> Alcotest.fail "expected Data")
       | _ -> Alcotest.fail "expected exactly one delivery");
      let st = Udp.stats t in
      Alcotest.(check int) "sent" 1 st.Transport.datagrams_sent;
      Alcotest.(check int) "received" 1 st.Transport.datagrams_received;
      Alcotest.(check bool) "bytes accounted" true
        (st.Transport.bytes_sent = st.Transport.bytes_received && st.Transport.bytes_sent > 0);
      Alcotest.(check int) "no decode errors" 0 st.Transport.decode_errors)

let test_all_constructors_cross_the_socket () =
  let p s seq = Payload.make ~size:s (mid seq) in
  let examples =
    [
      Wire.Data (p 1024 0);
      Wire.Session { max_seq = 41 };
      Wire.Local_request (mid 7);
      Wire.Remote_request { id = mid ~source:3 9; origin = node 1 };
      Wire.Repair (p 17 2);
      Wire.Regional_repair (p 256 3);
      Wire.Search { id = mid 11; origin = node 0 };
      Wire.Have (mid ~source:1 13);
      Wire.Handoff [ p 100 4; p 0 5 ];
      Wire.History [ (node 0, (5, [ 1; 2; 4 ])); (node 1, (-1, [])) ];
      Wire.Gossip [ (node 0, 12); (node 1, 0) ];
    ]
  in
  with_transport ~n:2 (fun t ->
      List.iter (fun m -> Udp.send t ~src:(node 0) ~dst:(node 1) m) examples;
      let got = ref [] in
      let n = Udp.drain t ~handle:(fun ~src:_ ~dst:_ m -> got := m :: !got) in
      Alcotest.(check int) "all messages handed up" (List.length examples) n;
      (* UDP does not reorder on loopback in practice, but do not bet a
         test on it: match as multisets by pairing each sent message
         with some received one *)
      let remaining = ref (List.rev !got) in
      List.iter
        (fun sent ->
          let found = List.exists (fun r -> wire_equal sent r) !remaining in
          Alcotest.(check bool)
            (Format.asprintf "received %a" Wire.pp sent)
            true found;
          let dropped = ref false in
          remaining :=
            List.filter
              (fun r ->
                if (not !dropped) && wire_equal sent r then begin
                  dropped := true;
                  false
                end
                else true)
              !remaining)
        examples)

let test_full_loss_drops_everything () =
  with_transport ~loss:1.0 ~n:2 (fun t ->
      for seq = 0 to 9 do
        Udp.send t ~src:(node 0) ~dst:(node 1) (Wire.Have (mid seq))
      done;
      let n = Udp.drain t ~handle:(fun ~src:_ ~dst:_ _ -> Alcotest.fail "nothing should arrive") in
      Alcotest.(check int) "nothing handed up" 0 n;
      let st = Udp.stats t in
      Alcotest.(check int) "all counted as injected loss" 10 st.Transport.dropped_loss;
      Alcotest.(check int) "nothing hit the kernel" 0 st.Transport.datagrams_sent)

let test_seeded_loss_is_deterministic () =
  let survivors ~seed =
    with_transport ~loss:0.5 ~seed ~n:2 (fun t ->
        for seq = 0 to 99 do
          Udp.send t ~src:(node 0) ~dst:(node 1) (Wire.Have (mid seq))
        done;
        let got = ref [] in
        ignore
          (Udp.drain t ~handle:(fun ~src:_ ~dst:_ m ->
               match m with
               | Wire.Have id -> got := Msg_id.seq id :: !got
               | _ -> Alcotest.fail "expected Have"));
        List.sort compare !got)
  in
  let a = survivors ~seed:11 in
  let b = survivors ~seed:11 in
  let c = survivors ~seed:12 in
  Alcotest.(check (list int)) "same seed, same drop schedule" a b;
  Alcotest.(check bool) "some loss and some delivery" true
    (List.length a > 0 && List.length a < 100);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_unknown_node_raises () =
  with_transport ~n:2 (fun t ->
      Alcotest.(check bool) "unknown dst" true
        (match Udp.send t ~src:(node 0) ~dst:(node 7) (Wire.Have (mid 0)) with
         | exception Invalid_argument _ -> true
         | () -> false);
      Alcotest.(check bool) "unknown src" true
        (match Udp.send t ~src:(node 7) ~dst:(node 0) (Wire.Have (mid 0)) with
         | exception Invalid_argument _ -> true
         | () -> false);
      Alcotest.(check bool) "port of unknown node" true
        (match Udp.port t (node 7) with
         | exception Invalid_argument _ -> true
         | _ -> false))

(* ------------------------------------------------------------------ *)
(* Full protocol recovery over real sockets                            *)
(* ------------------------------------------------------------------ *)

(* Build a member group whose sends go through the UDP transport and
   whose clock is the sim clock, then alternate socket drains with
   1 ms sim steps: datagrams travel for real, timers stay
   deterministic. The harness below is the miniature of bench --net. *)
let test_member_recovery_over_udp () =
  let size = 8 in
  let topology = Topology.single_region ~size in
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:42 in
  let loss = Loss.create Loss.Lossless ~rng:(Engine.Rng.split rng) in
  let net =
    Network.create ~sim ~topology ~latency:Latency.paper_default ~loss
      ~rng:(Engine.Rng.split rng) ()
  in
  with_transport ~n:size (fun transport ->
      let caps = Net.Caps.udp ~transport ~clock:(Net.Clock.of_sim sim) ~topology in
      let members =
        Array.map
          (fun n ->
            Member.create ~net ~config:Config.default ~rng:(Engine.Rng.split rng) ~node:n
              ~caps ())
          (Topology.all_nodes topology)
      in
      let delivery =
        {
          Network.src = node 0;
          Network.dst = node 0;
          Network.msg = Wire.Session { max_seq = 0 };
          Network.sent_at = 0.0;
          Network.cls = "net";
        }
      in
      let dispatch ~src ~dst msg =
        delivery.Network.src <- src;
        delivery.Network.dst <- dst;
        delivery.Network.msg <- msg;
        delivery.Network.sent_at <- Engine.Sim.now sim;
        Member.inject_delivery members.(Node_id.to_int dst) delivery
      in
      let victim = node 5 in
      let sender = members.(0) in
      let id =
        Member.multicast_reaching sender ~size:900
          ~reach:(fun n -> not (Node_id.equal n victim))
          ()
      in
      (* only a session message can reveal the loss (single message, no
         later gap) *)
      Member.send_session sender;
      let victim_m = members.(Node_id.to_int victim) in
      let steps = ref 0 in
      while (not (Member.has_received victim_m id)) && !steps < 5_000 do
        incr steps;
        ignore (Udp.drain transport ~handle:dispatch);
        Engine.Sim.run ~until:(Engine.Sim.now sim +. 1.0) sim
      done;
      (* flush anything still in flight, then check the whole group *)
      ignore (Udp.drain transport ~handle:dispatch);
      Alcotest.(check bool) "victim recovered over real UDP" true
        (Member.has_received victim_m id);
      Array.iter
        (fun m ->
          Alcotest.(check bool)
            (Format.asprintf "member %d has the message" (Node_id.to_int (Member.node m)))
            true (Member.has_received m id))
        members;
      let st = Udp.stats transport in
      (* the initial multicast alone is size-1 datagrams; recovery adds
         at least a probe and a repair *)
      Alcotest.(check bool) "real datagrams flowed" true
        (st.Transport.datagrams_sent > size - 1);
      Alcotest.(check int) "every frame decoded" 0 st.Transport.decode_errors)

let suites =
  [
    ( "net.loopback",
      [
        Alcotest.test_case "datagram round trip" `Quick test_datagram_round_trip;
        Alcotest.test_case "all constructors cross the socket" `Quick
          test_all_constructors_cross_the_socket;
        Alcotest.test_case "loss=1.0 drops everything" `Quick test_full_loss_drops_everything;
        Alcotest.test_case "seeded loss is deterministic" `Quick
          test_seeded_loss_is_deterministic;
        Alcotest.test_case "unknown node raises" `Quick test_unknown_node_raises;
        Alcotest.test_case "member loss recovery over UDP" `Quick
          test_member_recovery_over_udp;
      ] );
  ]
