(* Command-line driver for the reproduction: list experiments, run one
   or all, emit CSV, or run an ad-hoc RRMP session. *)

let print_report ?csv_dir report =
  Format.printf "%a@." Experiments.Report.pp report;
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Experiments.Report.save_csv ~dir report in
    Format.printf "(csv written to %s)@." path

(* --- list --------------------------------------------------------- *)

let list_cmd =
  let doc = "List every reproducible figure and extension experiment." in
  let run () =
    List.iter
      (fun (e : Experiments.Registry.entry) ->
        Format.printf "%-22s %-34s %s@." e.Experiments.Registry.id
          e.Experiments.Registry.paper_ref e.Experiments.Registry.description)
      Experiments.Registry.all;
    0
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "list" ~doc) Cmdliner.Term.(const run $ const ())

(* --- run ---------------------------------------------------------- *)

let quick_flag =
  let doc = "Reduced trial counts (fast, CI-friendly)." in
  Cmdliner.Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let csv_dir_opt =
  let doc = "Also write each result table as CSV into $(docv)." in
  Cmdliner.Arg.(value & opt (some string) None & info [ "csv" ] ~doc ~docv:"DIR")

let jobs_opt =
  let doc =
    "Worker domains for Monte-Carlo trials (default: $(b,REPRO_JOBS) or the machine's \
     core count). Results are byte-identical for every value; $(docv)=1 forces the \
     sequential path."
  in
  Cmdliner.Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~doc ~docv:"N")

(* set_default_workers clamps to a sane range, so any integer is safe *)
let apply_jobs = function None -> () | Some n -> Engine.Pool.set_default_workers n

let shards_opt =
  let doc =
    "Shard count for the region-sharded experiments (default: $(b,REPRO_SHARDS) or 1). \
     Results are byte-identical for every value; $(docv)=1 forces the sequential path."
  in
  Cmdliner.Arg.(value & opt (some int) None & info [ "shards"; "s" ] ~doc ~docv:"N")

(* set_default_shards clamps too *)
let apply_shards = function None -> () | Some n -> Engine.Shard.set_default_shards n

let run_cmd =
  let doc = "Run one experiment (or 'all') and print its table." in
  let id_arg =
    let doc = "Experiment id (see $(b,list)), or 'all'." in
    Cmdliner.Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"ID")
  in
  let run id quick csv_dir jobs shards =
    apply_jobs jobs;
    apply_shards shards;
    let entries =
      if id = "all" then Ok Experiments.Registry.all
      else
        match Experiments.Registry.find id with
        | Some e -> Ok [ e ]
        | None ->
          Error
            (Printf.sprintf "unknown experiment %S; known: %s" id
               (String.concat ", " ("all" :: Experiments.Registry.ids)))
    in
    match entries with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok entries ->
      List.iter
        (fun (e : Experiments.Registry.entry) ->
          print_report ?csv_dir (e.Experiments.Registry.run ~quick))
        entries;
      0
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "run" ~doc)
    Cmdliner.Term.(const run $ id_arg $ quick_flag $ csv_dir_opt $ jobs_opt $ shards_opt)

(* --- session ------------------------------------------------------ *)

let session_cmd =
  let doc =
    "Run an ad-hoc RRMP session (regions joined in a chain) and print traffic and \
     buffering statistics."
  in
  let regions_arg =
    let doc = "Comma-separated region sizes, sender's region first." in
    Cmdliner.Arg.(
      value & opt (list ~sep:',' int) [ 50; 50 ] & info [ "regions" ] ~doc ~docv:"SIZES")
  in
  let messages_arg =
    let doc = "Number of messages to multicast." in
    Cmdliner.Arg.(value & opt int 20 & info [ "messages"; "m" ] ~doc ~docv:"N")
  in
  let loss_arg =
    let doc = "Independent per-packet loss probability." in
    Cmdliner.Arg.(value & opt float 0.1 & info [ "loss" ] ~doc ~docv:"P")
  in
  let seed_arg =
    let doc = "Random seed." in
    Cmdliner.Arg.(value & opt int 1 & info [ "seed" ] ~doc ~docv:"SEED")
  in
  let c_arg =
    let doc = "Expected long-term bufferers per region (C)." in
    Cmdliner.Arg.(value & opt float 6.0 & info [ "bufferers"; "c" ] ~doc ~docv:"C")
  in
  let run regions messages loss seed c =
    if List.exists (fun s -> s <= 0) regions || regions = [] then begin
      prerr_endline "regions must be positive";
      1
    end
    else begin
      let topology = Topology.chain ~sizes:regions in
      let config =
        { Rrmp.Config.default with
          Rrmp.Config.expected_bufferers = c;
          Rrmp.Config.session_interval = Some 50.0;
        }
      in
      let group =
        Rrmp.Group.create ~seed ~config ~loss:(Loss.Bernoulli loss) ~topology ()
      in
      let ids = List.init messages (fun _ -> Rrmp.Group.multicast group ()) in
      Rrmp.Group.run ~until:60_000.0 group;
      let n = Topology.node_count topology in
      let complete =
        List.fold_left (fun acc id -> acc + Rrmp.Group.count_received group id) 0 ids
      in
      Format.printf "session: %d members in %d regions, %d messages, loss %.0f%%@." n
        (List.length regions) messages (100.0 *. loss);
      Format.printf "delivered: %d/%d (%.2f%%)@." complete (messages * n)
        (100.0 *. float_of_int complete /. float_of_int (messages * n));
      Format.printf "still buffered at end: %d entries across the group@."
        (Rrmp.Group.total_buffered_messages group);
      let net = Rrmp.Group.net group in
      Format.printf "traffic by class:@.";
      List.iter
        (fun cls ->
          let s = Netsim.Network.stats net ~cls in
          Format.printf "  %-16s sent %7d  delivered %7d  lost %6d  dead %4d@." cls
            s.Netsim.Network.sent s.Netsim.Network.delivered s.Netsim.Network.dropped_loss
            s.Netsim.Network.dropped_dead)
        (Netsim.Network.classes net);
      0
    end
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "session" ~doc)
    Cmdliner.Term.(const run $ regions_arg $ messages_arg $ loss_arg $ seed_arg $ c_arg)

(* --- model --------------------------------------------------------- *)

let model_cmd =
  let doc =
    "Print the analytical search-time model (expected time for a remote request to      locate a long-term bufferer) for a range of bufferer counts."
  in
  let region_arg =
    let doc = "Region size." in
    Cmdliner.Arg.(value & opt int 100 & info [ "region"; "n" ] ~doc ~docv:"N")
  in
  let rtt_arg =
    let doc = "Intra-region round-trip time, ms." in
    Cmdliner.Arg.(value & opt float 10.0 & info [ "rtt" ] ~doc ~docv:"MS")
  in
  let run region rtt =
    if region < 2 then begin
      prerr_endline "region must have at least 2 members";
      1
    end
    else begin
      Format.printf "expected search time, region of %d members, RTT %.1f ms:@." region rtt;
      Format.printf "%12s  %18s  %14s@." "#bufferers" "E[search] (ms)" "P(direct hit)";
      List.iter
        (fun k ->
          if k < region then
            Format.printf "%12d  %18.2f  %13.1f%%@." k
              (Rrmp.Model.expected_search_time ~n:region ~k ~rtt)
              (100.0 *. float_of_int k /. float_of_int region))
        [ 1; 2; 3; 4; 5; 6; 8; 10; 15; 20 ];
      0
    end
  in
  Cmdliner.Cmd.v (Cmdliner.Cmd.info "model" ~doc)
    Cmdliner.Term.(const run $ region_arg $ rtt_arg)

let () =
  let doc = "Reproduction of 'Optimizing Buffer Management for Reliable Multicast' (DSN 2002)" in
  let info = Cmdliner.Cmd.info "rrmp_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmdliner.Cmd.eval'
       (Cmdliner.Cmd.group info [ list_cmd; run_cmd; session_cmd; model_cmd ]))
