(** Simulated best-effort network over a {!Topology.t}.

    Supports the three communication primitives the protocols need:
    point-to-point {!unicast}, {!regional_multicast} (scoped IP
    multicast within one region), and the session-wide best-effort
    {!ip_multicast} of new data. Delivery delays come from a
    {!Latency.t}; losses from a {!Loss.t} (applied per receiver).
    Packets to nodes that have left the session, or that leave while
    the packet is in flight, are dropped.

    Every send is tagged with a traffic class so experiments can
    account for protocol overhead (e.g. separate data packets from
    retransmission requests from gossip). *)

type 'msg t

(** Optional per-node egress capacity: packets queue FIFO at the
    sender and each occupies the link for [packet_bytes msg /
    bytes_per_ms]. Models the NACK/repair implosion that motivates
    distributed error recovery. *)
type 'msg bandwidth = { bytes_per_ms : float; packet_bytes : 'msg -> int }

(** The record handed to handlers and the delivery hook is {b pooled}:
    the network mutates it in place between deliveries, so read the
    fields during the call and do not retain the record. (Records built
    by callers, e.g. for {!Rrmp.Member.inject_delivery}-style replay,
    are ordinary values — only network-owned ones are reused.) *)
type 'msg delivery = {
  mutable src : Node_id.t;
  mutable dst : Node_id.t;
  mutable msg : 'msg;
  mutable sent_at : float;  (** virtual send time, ms *)
  mutable cls : string;  (** traffic class of the packet *)
}

val create :
  sim:Engine.Sim.t ->
  topology:Topology.t ->
  latency:Latency.t ->
  loss:Loss.t ->
  rng:Engine.Rng.t ->
  ?bandwidth:'msg bandwidth ->
  ?batched:bool ->
  unit ->
  'msg t
(** Without [bandwidth], links have infinite capacity (the paper's
    setting).

    [batched] (default [true]) schedules one simulator event per
    distinct sampled delay for each multicast instead of one per
    receiver; loss and latency are still sampled per receiver, in
    membership order, at send time, so seeded runs produce identical
    deliveries, counters and event ordering either way. Pass [false]
    to force the per-receiver reference path (used by equivalence
    tests). *)

val attach_metrics : 'msg t -> Tracing.Metrics.t -> unit
(** Route aggregate per-packet counters ([net.sent], [net.delivered],
    [net.dropped] — the last counts channel losses) into [metrics]
    through pre-resolved handles: attachment hashes each name once, the
    per-packet bumps are bare ref increments. Without an attachment the
    increments go to unregistered sinks, so the hot path is identical
    either way. *)

val sim : 'msg t -> Engine.Sim.t

val topology : 'msg t -> Topology.t

val latency : 'msg t -> Latency.t

val register : 'msg t -> Node_id.t -> ('msg delivery -> unit) -> unit
(** Install the receive handler for a node (replacing any previous
    one). A node with no handler silently drops inbound packets. *)

val unregister : 'msg t -> Node_id.t -> unit

val unicast : 'msg t -> cls:string -> src:Node_id.t -> dst:Node_id.t -> 'msg -> unit
(** Send one packet. It is subject to loss, then delivered after a
    latency sampled from the intra- or inter-region model according to
    the positions of [src] and [dst]. Self-sends are delivered after an
    intra-region delay. *)

val regional_multicast :
  'msg t -> cls:string -> src:Node_id.t -> region:Region_id.t -> ?include_src:bool -> 'msg -> unit
(** One multicast scoped to [region]: each member (minus [src] unless
    [include_src]) independently experiences loss and latency. *)

val ip_multicast :
  'msg t -> cls:string -> src:Node_id.t -> reach:(Node_id.t -> bool) -> 'msg -> unit
(** Session-wide best-effort multicast of new data. [reach] decides
    which receivers get the packet (so experiments can force a specific
    initial-delivery outcome, as the paper does); receivers with
    [reach] true still do NOT suffer additional random loss. The source
    itself is excluded. *)

val ip_multicast_lossy : 'msg t -> cls:string -> src:Node_id.t -> 'msg -> unit
(** Session-wide multicast where each receiver's outcome is drawn from
    the network's loss model. *)

(** {1 Traffic accounting} *)

type counter = {
  sent : int;  (** packets put on the wire (per receiver for multicast) *)
  delivered : int;
  dropped_loss : int;  (** lost by the channel *)
  dropped_dead : int;  (** destination had left or never registered *)
}

val stats : 'msg t -> cls:string -> counter
(** Zero counter for an unknown class. *)

val classes : 'msg t -> string list
(** All classes seen so far, sorted. *)

val total_sent : 'msg t -> int

val total_delivered : 'msg t -> int

val reset_stats : 'msg t -> unit

val set_delivery_hook : 'msg t -> ('msg delivery -> unit) option -> unit
(** Observation hook invoked on every successful delivery, before the
    destination's handler (used by tracing). *)

val egress_backlog : 'msg t -> Node_id.t -> float
(** With a bandwidth model: how many ms of queued transmissions the
    node's egress currently holds (0 without a model). *)
