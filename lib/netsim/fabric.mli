(** Cross-region parcel routing for the sharded simulation.

    When the simulation is sharded ({!Engine.Shard}), every region owns
    an outbox chain through its shard's slot block; a message whose
    destination lies in another region is {e posted} to the source
    region's chain during the window and only {e injected} into the
    destination region's shard at the next barrier, via {!exchange}. The quantization is applied to {b every}
    cross-region packet — even when both regions happen to share a
    shard — which is what makes the observable result independent of
    the shard count.

    Determinism: region chains are drained in ascending source-region
    order and each chain preserves emission order (plain arrays and int
    links end to end — no unordered-container iteration), so for any
    destination region the injection order of its incoming parcels is a
    pure function of the workload, never of the region-to-shard
    assignment.

    Allocation and layout: parcels are pooled mutable slots with
    pre-allocated fire thunks and reusable destination buffers. A shard
    owns one growable slot block shared by all of its regions; a
    region's outbox is a (head, tail) pair of ints chaining its slots
    through the block — two words of fixed cost per region, so region
    count can grow into the thousands without per-region vectors. Free
    lists are per shard and only ever touched by the owning shard's
    domain (a slot is recycled by the destination shard when it fires
    and reused by that same shard's next post). Steady-state posting
    and injection allocate nothing beyond the {!Engine.Sim} event that
    fires each parcel. *)

type 'msg t

val create :
  regions:int ->
  shards:int ->
  shard_of:(int -> int) ->
  quantum:float ->
  sim_of:(int -> Engine.Sim.t) ->
  deliver:(region:int -> member:int -> 'msg -> unit) ->
  'msg t
(** [create ~regions ~shards ~shard_of ~quantum ~sim_of ~deliver]
    routes parcels between [regions] regions spread over [shards]
    shards; [shard_of r] is the shard owning region [r] (must be stable
    and in [0, shards)), [sim_of r] is that shard's event loop, and
    [deliver] is invoked inside it when a parcel fires. [quantum] is
    used only for the conservative-barrier check in {!exchange}.
    @raise Invalid_argument if [regions < 0], [shards < 1] or
    [quantum <= 0]. *)

val unicast :
  'msg t -> src_region:int -> dst_region:int -> dst_member:int -> arrival:float -> 'msg -> unit
(** Post a single-destination parcel (remote-recovery requests and
    repairs). [arrival] is the absolute delivery time, sampled by the
    caller at send time; it must be at least one quantum away so it
    lands beyond the next barrier. *)

val fanout :
  'msg t ->
  src_region:int ->
  dst_region:int ->
  arrival:float ->
  dsts:int array ->
  ?n:int ->
  'msg ->
  unit
(** Post a batched multi-destination parcel (one per destination region
    of a multicast): at [arrival] the destination shard delivers to
    every member index in [dsts.(0 .. n-1)] ([n] defaults to the full
    array), in array order, from a single event. The destinations are
    copied into the parcel's pooled buffer, so the caller may reuse
    [dsts] as scratch immediately.
    @raise Invalid_argument if [n] is negative or exceeds
    [Array.length dsts]. *)

val exchange : 'msg t -> barrier:float -> int
(** Drain every outbox (ascending region order, emission order within a
    region) into the destination shards and return the number of
    parcels injected. Called by {!Engine.Shard.run} at each barrier
    while the shards are parked.
    @raise Invalid_argument if a parcel's arrival precedes [barrier] —
    the conservative-time premise (cross-region delay >= one quantum)
    was violated by the caller's latency configuration. *)

val posted : 'msg t -> int
(** Total parcels posted so far (cross-region traffic volume). *)
