(* Per-shard outbox blocks with per-region parcel chains, drained at
   barriers.

   Zero-allocation steady state: a parcel is a pooled mutable slot
   carrying its own pre-allocated fire thunk and a reusable destination
   buffer the fanout targets are copied into (so callers can hand in a
   scratch array they immediately reuse). A shard owns ONE growable
   slot block — every parcel its regions post during a window is
   appended there — and a region is just a (head, tail) pair of ints
   chaining its parcels through the block via [s_next]: per-region
   fixed cost is two ints, not a vector, which is what lets 10^6
   members spread over 10^3+ regions without per-region scaffolding.
   [exchange] walks the regions in ascending order and each region's
   chain in emission order, so injection order is exactly the old
   per-region-outbox order.

   Concurrency: a shard's block, free list and its regions' chain heads
   are written only by the domain running that shard's window;
   [exchange] runs on the coordinating domain while every shard is
   parked — the Pool.parallel_for completion barrier orders the writes
   before the reads. Slots are recycled from inside the destination
   shard's event loop into the destination shard's OWN free list (and
   popped by that same shard when posting), so no two domains ever
   touch a free list concurrently. *)

type 'msg slot = {
  mutable s_region : int;  (* destination region *)
  mutable s_member : int;  (* unicast destination; -1 for fanouts *)
  mutable s_arrival : float;
  mutable s_msg : 'msg;
  mutable s_dsts : int array;  (* capacity >= s_len, reused across lives *)
  mutable s_len : int;
  mutable s_next : int;  (* next slot of the same source region; -1 ends *)
  mutable s_fire : unit -> unit;  (* tied to the slot once, at creation *)
}

(* growable vector of slots; [Array.make] is seeded with the pushed
   slot itself, so no dummy element is ever needed *)
type 'msg vec = {
  mutable arr : 'msg slot array;
  mutable len : int;
}

let vec_push v s =
  let cap = Array.length v.arr in
  if v.len = cap then begin
    let narr = Array.make (if cap = 0 then 8 else 2 * cap) s in
    Array.blit v.arr 0 narr 0 v.len;
    v.arr <- narr
  end;
  Array.unsafe_set v.arr v.len s;
  v.len <- v.len + 1

type 'msg t = {
  sim_of : int -> Engine.Sim.t;
  shard_of : int -> int;
  deliver : region:int -> member:int -> 'msg -> unit;
  blocks : 'msg vec array;  (* per shard: slots posted this window *)
  free : 'msg vec array;  (* per shard: recycled slots *)
  head : int array;  (* per region: first chained slot index, -1 = none *)
  tail : int array;  (* per region: last chained slot index *)
  posted_by : int array;  (* per shard: parcels posted so far *)
}

let create ~regions ~shards ~shard_of ~quantum ~sim_of ~deliver =
  if regions < 0 then invalid_arg "Fabric.create: regions must be non-negative";
  if shards < 1 then invalid_arg "Fabric.create: shards must be positive";
  if quantum <= 0.0 then invalid_arg "Fabric.create: quantum must be positive";
  {
    sim_of;
    shard_of;
    deliver;
    blocks =
      ((Array.init shards (fun _ -> { arr = [||]; len = 0 }))
      [@lint.allow "H2 creation-time initialization, runs once per fabric"]);
    free =
      ((Array.init shards (fun _ -> { arr = [||]; len = 0 }))
      [@lint.allow "H2 creation-time initialization, runs once per fabric"]);
    head = Array.make regions (-1);
    tail = Array.make regions (-1);
    posted_by = Array.make shards 0;
  }

(* deliver a fired slot's payload and recycle the slot into the firing
   (= destination) shard's free list; installed as [s_fire] when the
   slot is first created *)
let fire t s =
  if s.s_member >= 0 then t.deliver ~region:s.s_region ~member:s.s_member s.s_msg
  else
    for i = 0 to s.s_len - 1 do
      t.deliver ~region:s.s_region ~member:(Array.unsafe_get s.s_dsts i) s.s_msg
    done;
  vec_push t.free.(t.shard_of s.s_region) s

(* pop the posting shard's free list, or make a fresh slot whose fire
   thunk is tied to it for life *)
let alloc_slot t shard msg =
  let free = t.free.(shard) in
  if free.len > 0 then begin
    free.len <- free.len - 1;
    let s = Array.unsafe_get free.arr free.len in
    s.s_msg <- msg;
    s
  end
  else begin
    let s =
      {
        s_region = 0;
        s_member = -1;
        s_arrival = 0.0;
        s_msg = msg;
        s_dsts = [||];
        s_len = 0;
        s_next = -1;
        s_fire = ignore;
      }
    in
    s.s_fire <- (fun () -> fire t s);
    s
  end

(* append to the source shard's block and chain onto the source
   region's (head, tail) list — both owned by the posting domain *)
let post t ~shard ~src_region s =
  let block = t.blocks.(shard) in
  let idx = block.len in
  s.s_next <- -1;
  vec_push block s;
  (if t.tail.(src_region) >= 0 then
     (Array.unsafe_get block.arr t.tail.(src_region)).s_next <- idx
   else t.head.(src_region) <- idx);
  t.tail.(src_region) <- idx;
  t.posted_by.(shard) <- t.posted_by.(shard) + 1

let unicast t ~src_region ~dst_region ~dst_member ~arrival msg =
  let shard = t.shard_of src_region in
  let s = alloc_slot t shard msg in
  s.s_region <- dst_region;
  s.s_member <- dst_member;
  s.s_arrival <- arrival;
  s.s_len <- 0;
  post t ~shard ~src_region s

let fanout t ~src_region ~dst_region ~arrival ~dsts ?n msg =
  let n = match n with None -> Array.length dsts | Some n -> n in
  if n < 0 || n > Array.length dsts then invalid_arg "Fabric.fanout: bad destination count";
  let shard = t.shard_of src_region in
  let s = alloc_slot t shard msg in
  s.s_region <- dst_region;
  s.s_member <- -1;
  s.s_arrival <- arrival;
  if Array.length s.s_dsts < n then s.s_dsts <- Array.make n 0;
  Array.blit dsts 0 s.s_dsts 0 n;
  s.s_len <- n;
  post t ~shard ~src_region s

let exchange t ~barrier =
  let injected = ref 0 in
  for src = 0 to Array.length t.head - 1 do
    let idx = ref t.head.(src) in
    if !idx >= 0 then begin
      let block = t.blocks.(t.shard_of src) in
      while !idx >= 0 do
        let s = Array.unsafe_get block.arr !idx in
        if s.s_arrival +. 1e-9 < barrier then
          invalid_arg
            "Fabric.exchange: parcel arrives before the barrier (cross-region delay < quantum)";
        incr injected;
        ignore (Engine.Sim.schedule_at (t.sim_of s.s_region) ~at:s.s_arrival s.s_fire);
        idx := s.s_next
      done;
      t.head.(src) <- -1;
      t.tail.(src) <- -1
    end
  done;
  (* stale slot pointers stay behind in the blocks; the slots are
     pooled and reused, so pinning them is free *)
  for shard = 0 to Array.length t.blocks - 1 do
    t.blocks.(shard).len <- 0
  done;
  !injected

let posted t = Array.fold_left ( + ) 0 t.posted_by
