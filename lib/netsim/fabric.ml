(* Per-region outboxes, drained at barriers. Parcels are prepended
   during the window (each outbox is written only by the shard that
   owns its region) and reversed once at exchange time, which runs on
   the coordinating domain while every shard is parked — the
   Pool.parallel_for completion barrier orders the writes before the
   reads, so no further synchronization is needed. *)

type 'msg parcel = {
  dst_region : int;
  arrival : float;
  msg : 'msg;
  (* dst_member for unicasts; [dsts] non-empty for fanouts *)
  dst_member : int;
  dsts : int array;
}

type 'msg t = {
  sim_of : int -> Engine.Sim.t;
  deliver : region:int -> member:int -> 'msg -> unit;
  outboxes : 'msg parcel list array; (* per source region, newest first *)
  mutable total_posted : int;
}

let create ~regions ~quantum ~sim_of ~deliver =
  if regions < 0 then invalid_arg "Fabric.create: regions must be non-negative";
  if quantum <= 0.0 then invalid_arg "Fabric.create: quantum must be positive";
  { sim_of; deliver; outboxes = Array.make regions []; total_posted = 0 }

let post t ~src_region parcel =
  t.outboxes.(src_region) <- parcel :: t.outboxes.(src_region);
  t.total_posted <- t.total_posted + 1

let unicast t ~src_region ~dst_region ~dst_member ~arrival msg =
  post t ~src_region { dst_region; arrival; msg; dst_member; dsts = [||] }

let fanout t ~src_region ~dst_region ~arrival ~dsts msg =
  post t ~src_region { dst_region; arrival; msg; dst_member = -1; dsts }

let inject t p =
  let sim = t.sim_of p.dst_region in
  ignore
    (Engine.Sim.schedule_at sim ~at:p.arrival (fun () ->
         if Array.length p.dsts = 0 then
           t.deliver ~region:p.dst_region ~member:p.dst_member p.msg
         else
           Array.iter (fun m -> t.deliver ~region:p.dst_region ~member:m p.msg) p.dsts))

let exchange t ~barrier =
  let injected = ref 0 in
  for src = 0 to Array.length t.outboxes - 1 do
    match t.outboxes.(src) with
    | [] -> ()
    | newest_first ->
      t.outboxes.(src) <- [];
      List.iter
        (fun p ->
          if p.arrival +. 1e-9 < barrier then
            invalid_arg
              "Fabric.exchange: parcel arrives before the barrier (cross-region delay < quantum)";
          incr injected;
          inject t p)
        (List.rev newest_first)
  done;
  !injected

let posted t = t.total_posted
