(* Per-region outboxes, drained at barriers.

   Zero-allocation steady state: a parcel is a pooled mutable slot
   carrying its own pre-allocated fire thunk and a reusable destination
   buffer the fanout targets are copied into (so callers can hand in a
   scratch array they immediately reuse). Outboxes and the free list
   are growable slot vectors — appended during the window, drained in
   index order at exchange time — so once the pools have warmed up,
   posting and injecting a parcel allocates nothing beyond the Sim
   event that fires it.

   Concurrency: each outbox is written only by the shard that owns its
   source region; [exchange] runs on the coordinating domain while
   every shard is parked — the Pool.parallel_for completion barrier
   orders the writes before the reads. Slots are recycled from inside
   the destination shard's event loop into the shared free list, which
   is safe for the same reason: recycling happens during windows, and
   posting (which pops the free list) also happens during windows, but
   a slot only reaches the free list after its fire event ran in a
   window preceding the post that would reuse it. *)

type 'msg slot = {
  mutable s_region : int;  (* destination region *)
  mutable s_member : int;  (* unicast destination; -1 for fanouts *)
  mutable s_arrival : float;
  mutable s_msg : 'msg;
  mutable s_dsts : int array;  (* capacity >= s_len, reused across lives *)
  mutable s_len : int;
  mutable s_fire : unit -> unit;  (* tied to the slot once, at creation *)
}

(* growable vector of slots; [Array.make] is seeded with the pushed
   slot itself, so no dummy element is ever needed *)
type 'msg vec = {
  mutable arr : 'msg slot array;
  mutable len : int;
}

let vec_push v s =
  let cap = Array.length v.arr in
  if v.len = cap then begin
    let narr = Array.make (if cap = 0 then 8 else 2 * cap) s in
    Array.blit v.arr 0 narr 0 v.len;
    v.arr <- narr
  end;
  Array.unsafe_set v.arr v.len s;
  v.len <- v.len + 1

type 'msg t = {
  sim_of : int -> Engine.Sim.t;
  deliver : region:int -> member:int -> 'msg -> unit;
  outboxes : 'msg vec array;  (* per source region, in emission order *)
  free : 'msg vec;  (* recycled slots *)
  mutable total_posted : int;
}

let create ~regions ~quantum ~sim_of ~deliver =
  if regions < 0 then invalid_arg "Fabric.create: regions must be non-negative";
  if quantum <= 0.0 then invalid_arg "Fabric.create: quantum must be positive";
  {
    sim_of;
    deliver;
    outboxes =
      ((Array.init regions (fun _ -> { arr = [||]; len = 0 }))
      [@lint.allow "H2 creation-time initialization, runs once per fabric"]);
    free = { arr = [||]; len = 0 };
    total_posted = 0;
  }

(* deliver a fired slot's payload and recycle the slot; installed as
   [s_fire] when the slot is first created *)
let fire t s =
  if s.s_member >= 0 then t.deliver ~region:s.s_region ~member:s.s_member s.s_msg
  else
    for i = 0 to s.s_len - 1 do
      t.deliver ~region:s.s_region ~member:(Array.unsafe_get s.s_dsts i) s.s_msg
    done;
  vec_push t.free s

let alloc_slot t msg =
  if t.free.len > 0 then begin
    t.free.len <- t.free.len - 1;
    let s = Array.unsafe_get t.free.arr t.free.len in
    s.s_msg <- msg;
    s
  end
  else begin
    let s =
      {
        s_region = 0;
        s_member = -1;
        s_arrival = 0.0;
        s_msg = msg;
        s_dsts = [||];
        s_len = 0;
        s_fire = ignore;
      }
    in
    s.s_fire <- (fun () -> fire t s);
    s
  end

let post t ~src_region s =
  vec_push t.outboxes.(src_region) s;
  t.total_posted <- t.total_posted + 1

let unicast t ~src_region ~dst_region ~dst_member ~arrival msg =
  let s = alloc_slot t msg in
  s.s_region <- dst_region;
  s.s_member <- dst_member;
  s.s_arrival <- arrival;
  s.s_len <- 0;
  post t ~src_region s

let fanout t ~src_region ~dst_region ~arrival ~dsts ?n msg =
  let n = match n with None -> Array.length dsts | Some n -> n in
  if n < 0 || n > Array.length dsts then invalid_arg "Fabric.fanout: bad destination count";
  let s = alloc_slot t msg in
  s.s_region <- dst_region;
  s.s_member <- -1;
  s.s_arrival <- arrival;
  if Array.length s.s_dsts < n then s.s_dsts <- Array.make n 0;
  Array.blit dsts 0 s.s_dsts 0 n;
  s.s_len <- n;
  post t ~src_region s

let exchange t ~barrier =
  let injected = ref 0 in
  for src = 0 to Array.length t.outboxes - 1 do
    let ob = t.outboxes.(src) in
    for i = 0 to ob.len - 1 do
      let s = Array.unsafe_get ob.arr i in
      if s.s_arrival +. 1e-9 < barrier then
        invalid_arg
          "Fabric.exchange: parcel arrives before the barrier (cross-region delay < quantum)";
      incr injected;
      ignore (Engine.Sim.schedule_at (t.sim_of s.s_region) ~at:s.s_arrival s.s_fire)
    done;
    (* stale slot pointers stay behind in [arr]; the slots are pooled
       and reused, so pinning them is free *)
    ob.len <- 0
  done;
  !injected

let posted t = t.total_posted
