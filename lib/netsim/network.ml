(* Zero-allocation emission: every in-flight packet is a pooled
   [parcel] carrying its own pre-allocated fire thunk and a [delivery]
   view that is mutated in place and handed to the receiver, so the
   steady state schedules events without building a closure per send.
   Multicast fan-out groups destinations by sampled delay into parcels
   with reusable destination buffers (no list building); the group
   scratch vector lives on [t] and is only touched inside the atomic
   collection loop, which runs no user code. *)

type 'msg delivery = {
  mutable src : Node_id.t;
  mutable dst : Node_id.t;
  mutable msg : 'msg;
  mutable sent_at : float;
  mutable cls : string;
}

type 'msg bandwidth = { bytes_per_ms : float; packet_bytes : 'msg -> int }

type counter = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_dead : int;
}

type mutable_counter = {
  mutable m_sent : int;
  mutable m_delivered : int;
  mutable m_dropped_loss : int;
  mutable m_dropped_dead : int;
}

(* a pooled in-flight packet: [d] is the view handed to handlers
   (valid only for the duration of the call — the pool reuses it),
   [p_dsts.(0 .. p_len-1)] the reusable fan-out buffer with [p_len =
   -1] marking a unicast, [p_delay] the group key while a fan-out is
   being collected, and [p_fire] the thunk scheduled on the simulator,
   tied to the parcel once at creation. *)
type 'msg parcel = {
  d : 'msg delivery;
  mutable p_dsts : Node_id.t array;
  mutable p_len : int;
  mutable p_delay : float;
  mutable p_fire : unit -> unit;
}

(* growable parcel vector; [Array.make] is seeded with the pushed
   parcel itself, so no dummy element is ever needed *)
type 'msg pvec = {
  mutable arr : 'msg parcel array;
  mutable len : int;
}

let pvec_push v p =
  let cap = Array.length v.arr in
  if v.len = cap then begin
    let narr = Array.make (if cap = 0 then 8 else 2 * cap) p in
    Array.blit v.arr 0 narr 0 v.len;
    v.arr <- narr
  end;
  Array.unsafe_set v.arr v.len p;
  v.len <- v.len + 1

type 'msg t = {
  sim : Engine.Sim.t;
  topology : Topology.t;
  latency : Latency.t;
  loss : Loss.t;
  rng : Engine.Rng.t;
  handlers : ('msg delivery -> unit) Node_id.Table.t;
  counters : (string, mutable_counter) Hashtbl.t;
  (* hot-path memo over [counters]: traffic classes are a handful of
     (physically shared) literals, so a pointer-compared association
     list beats hashing the string on every packet *)
  mutable counter_cache : (string * mutable_counter) list;
  mutable counter_cache_len : int; (* avoids O(len) List.length per miss *)
  mutable hook : ('msg delivery -> unit) option;
  bandwidth : 'msg bandwidth option;
  egress_free_at : float Node_id.Table.t;  (* per-src link-free time *)
  batched : bool;
  free : 'msg pvec;  (* recycled parcels *)
  groups : 'msg pvec;  (* fan-out scratch, emptied before returning *)
  (* pre-resolved metric handles; null sinks until [attach_metrics], so
     the per-packet bumps below never branch or hash a name *)
  mutable mh_sent : Tracing.Metrics.handle;
  mutable mh_delivered : Tracing.Metrics.handle;
  mutable mh_dropped : Tracing.Metrics.handle;
}

let create ~sim ~topology ~latency ~loss ~rng ?bandwidth ?(batched = true) () =
  (match bandwidth with
   | Some b when b.bytes_per_ms <= 0.0 ->
     invalid_arg "Network.create: bandwidth must be positive"
   | Some _ | None -> ());
  {
    sim;
    topology;
    latency;
    loss;
    rng;
    handlers = Node_id.Table.create 256;
    counters = Hashtbl.create 16;
    counter_cache = [];
    counter_cache_len = 0;
    hook = None;
    bandwidth;
    egress_free_at = Node_id.Table.create 64;
    batched;
    free = { arr = [||]; len = 0 };
    groups = { arr = [||]; len = 0 };
    mh_sent = Tracing.Metrics.null_handle ();
    mh_delivered = Tracing.Metrics.null_handle ();
    mh_dropped = Tracing.Metrics.null_handle ();
  }

let attach_metrics t metrics =
  t.mh_sent <- Tracing.Metrics.handle metrics "net.sent";
  t.mh_delivered <- Tracing.Metrics.handle metrics "net.delivered";
  t.mh_dropped <- Tracing.Metrics.handle metrics "net.dropped"

let sim t = t.sim

let topology t = t.topology

let latency t = t.latency

let register t node handler = Node_id.Table.replace t.handlers node handler

let unregister t node = Node_id.Table.remove t.handlers node

let rec cached_counter cls = function
  | [] -> raise_notrace Not_found
  | (k, c) :: rest -> if k == cls then c else cached_counter cls rest

let counter_for t cls =
  match cached_counter cls t.counter_cache with
  | c -> c
  | exception Not_found ->
    let c =
      match Hashtbl.find t.counters cls with
      | c -> c
      | exception Not_found ->
        let c = { m_sent = 0; m_delivered = 0; m_dropped_loss = 0; m_dropped_dead = 0 } in
        Hashtbl.add t.counters cls c;
        c
    in
    (* bound the memo so adversarial dynamic class names cannot grow it *)
    (if t.counter_cache_len < 32 then begin
       t.counter_cache <- (cls, c) :: t.counter_cache;
       t.counter_cache_len <- t.counter_cache_len + 1
     end)
    [@lint.allow
      "A memo install runs once per distinct class name, bounded at 32; steady-state sends \
       return through the pointer scan above"];
    c

(* nested matches, not a [match (a, b)]: the paired scrutinee would
   allocate a tuple per packet *)
let[@lint.allow
     "A latency sampling boxes one float per transmission decision; the exactly-0.0 gates \
      cover the deliver/recycle path, and the per-send budgets already charge the parcel"]
    delay_between t ~src ~dst =
  match Topology.region_of t.topology src with
  | Some ra -> (
    match Topology.region_of t.topology dst with
    | Some rb ->
      let hops = Topology.hops t.topology ra rb in
      if hops = 0 then Latency.intra t.latency t.rng
      else Latency.inter t.latency ~hops t.rng
    | None -> Latency.intra t.latency t.rng)
  | None ->
    (* endpoint left mid-flight bookkeeping happens at delivery; just
       charge an intra-region delay *)
    Latency.intra t.latency t.rng

(* [d.dst] is already set; the counter is resolved at fire time (not
   captured at send time) so packets in flight across [reset_stats]
   land in the fresh counters, as they always have *)
let deliver t ~c (d : 'msg delivery) =
  if not (Topology.is_member t.topology d.dst) then
    c.m_dropped_dead <- c.m_dropped_dead + 1
  else
    match Node_id.Table.find t.handlers d.dst with
    | exception Not_found -> c.m_dropped_dead <- c.m_dropped_dead + 1
    | handler ->
      c.m_delivered <- c.m_delivered + 1;
      t.mh_delivered := !(t.mh_delivered) + 1;
      (match t.hook with None -> () | Some observe -> observe d);
      handler d

(* deliver a fired parcel (unicast or group) and recycle it; installed
   as [p_fire] when the parcel is first created. The parcel is not on
   the free list while it fires, so handlers may send (and pop the
   pool) reentrantly. *)
let fire t p =
  let c = counter_for t p.d.cls in
  if p.p_len < 0 then deliver t ~c p.d
  else
    for i = 0 to p.p_len - 1 do
      p.d.dst <- Array.unsafe_get p.p_dsts i;
      deliver t ~c p.d
    done;
  pvec_push t.free p

let alloc_parcel t ~src ~dst ~cls ~sent_at msg =
  if t.free.len > 0 then begin
    t.free.len <- t.free.len - 1;
    let p = Array.unsafe_get t.free.arr t.free.len in
    p.d.src <- src;
    p.d.dst <- dst;
    p.d.msg <- msg;
    p.d.sent_at <- sent_at;
    p.d.cls <- cls;
    p.p_len <- -1;
    p
  end
  else begin
    let p =
      {
        d = { src; dst; msg; sent_at; cls };
        p_dsts = [||];
        p_len = -1;
        p_delay = 0.0;
        p_fire = ignore;
      }
    in
    p.p_fire <- (fun () -> fire t p);
    p
  end

(* serialization delay at the sender's egress: the packet departs when
   the link frees up, occupying it for size/rate ms *)
let egress_delay t ~src msg =
  match t.bandwidth with
  | None -> 0.0
  | Some b ->
    let now = Engine.Sim.now t.sim in
    let free_at =
      match Node_id.Table.find t.egress_free_at src with
      | at -> Float.max at now
      | exception Not_found -> now
    in
    let transmission = float_of_int (b.packet_bytes msg) /. b.bytes_per_ms in
    let departs = free_at +. transmission in
    Node_id.Table.replace t.egress_free_at src departs;
    departs -. now

let[@lint.allow
     "A one boxed delay float per unicast send; outside the exactly-0.0 deliver/recycle \
      gates, inside the per-send parcel budget"]
    send_one ?(extra_delay = 0.0) t ~cls ~src ~dst ~lossy msg =
  let c = counter_for t cls in
  c.m_sent <- c.m_sent + 1;
  t.mh_sent := !(t.mh_sent) + 1;
  if lossy && Loss.drop t.loss ~src ~dst then begin
    c.m_dropped_loss <- c.m_dropped_loss + 1;
    t.mh_dropped := !(t.mh_dropped) + 1
  end
  else begin
    let delay = extra_delay +. delay_between t ~src ~dst in
    let p = alloc_parcel t ~src ~dst ~cls ~sent_at:(Engine.Sim.now t.sim) msg in
    ignore (Engine.Sim.schedule t.sim ~delay p.p_fire)
  end

let[@lint.allow
     "A egress charge and the optional-argument Some box once per unicast; outside the \
      exactly-0.0 deliver/recycle gates, inside the per-send parcel budget"]
    unicast t ~cls ~src ~dst msg =
  let extra_delay = egress_delay t ~src msg in
  send_one ~extra_delay t ~cls ~src ~dst ~lossy:true msg

(* ------------------------------------------------------------------ *)
(* Batched multicast fan-out                                           *)
(* ------------------------------------------------------------------ *)

(* One multicast used to schedule one simulator event per receiver; at
   region sizes in the hundreds that made the event queue the
   bottleneck. The batched fan-out samples loss and latency per
   destination at send time, in exactly the same order as the unbatched
   path (so seeded runs are bit-identical), but groups destinations by
   sampled delay and schedules a single event per distinct delay that
   expands to the group's deliveries when it fires. Under the paper's
   constant-latency models a whole regional multicast collapses to one
   queue entry.

   Ordering note: group events are scheduled in first-destination order
   within the (atomic) fan-out loop, so their sequence numbers preserve
   the relative order the per-receiver events would have had; receivers
   inside a group are delivered in membership order. Execution order is
   therefore identical to the unbatched path.

   The groups of one fan-out are parcels accumulated in [t.groups]
   (scratch: the collection loop runs no user code, so it cannot be
   re-entered) with destinations appended into each parcel's reusable
   buffer — no lists, no per-group closures. *)

let parcel_push_dst p dst =
  let cap = Array.length p.p_dsts in
  if p.p_len = cap then begin
    let narr = Array.make (if cap = 0 then 8 else 2 * cap) dst in
    Array.blit p.p_dsts 0 narr 0 p.p_len;
    p.p_dsts <- narr
  end;
  Array.unsafe_set p.p_dsts p.p_len dst;
  p.p_len <- p.p_len + 1

(* distinct sampled delays per fan-out are few (one, for the constant
   models), so a linear scan beats any keyed structure *)
let rec group_index gs delay i =
  if i = gs.len then -1
  else if Float.equal (Array.unsafe_get gs.arr i).p_delay delay then i
  else group_index gs delay (i + 1)

let add_to_group t ~cls ~src ~sent_at ~delay dst msg =
  match group_index t.groups delay 0 with
  | -1 ->
    let p = alloc_parcel t ~src ~dst ~cls ~sent_at msg in
    p.p_len <- 0;
    p.p_delay <- delay;
    parcel_push_dst p dst;
    pvec_push t.groups p
  | i -> parcel_push_dst (Array.unsafe_get t.groups.arr i) dst

let flush_groups t =
  let gs = t.groups in
  for i = 0 to gs.len - 1 do
    let p = Array.unsafe_get gs.arr i in
    ignore (Engine.Sim.schedule t.sim ~delay:p.p_delay p.p_fire)
  done;
  (* stale parcel pointers stay behind in [arr]; the parcels are now
     owned by their events and recycle themselves when they fire *)
  gs.len <- 0

(* a multicast is one transmission at the source: the egress is charged
   once, not per receiver *)
let[@lint.allow
     "A egress charge and per-receiver delay sampling box floats once per transmission \
      decision; the coalesced fan-out's exactly-0.0 gate covers delivery, not send-time \
      latency draws"]
    regional_multicast t ~cls ~src ~region ?(include_src = false) msg =
  let extra_delay = egress_delay t ~src msg in
  let members = Topology.members t.topology region in
  if not t.batched then
    (Array.iter
       (fun dst ->
         if include_src || not (Node_id.equal dst src) then
           send_one ~extra_delay t ~cls ~src ~dst ~lossy:true msg)
       members)
    [@lint.allow
      "A unbatched reference path kept for differential testing; the measured path is the \
       coalesced loop below"]
  else begin
    let c = counter_for t cls in
    let sent_at = Engine.Sim.now t.sim in
    for i = 0 to Array.length members - 1 do
      let dst = Array.unsafe_get members i in
      if include_src || not (Node_id.equal dst src) then begin
        c.m_sent <- c.m_sent + 1;
        t.mh_sent := !(t.mh_sent) + 1;
        if Loss.drop t.loss ~src ~dst then begin
          c.m_dropped_loss <- c.m_dropped_loss + 1;
          t.mh_dropped := !(t.mh_dropped) + 1
        end
        else
          add_to_group t ~cls ~src ~sent_at
            ~delay:(extra_delay +. delay_between t ~src ~dst)
            dst msg
      end
    done;
    flush_groups t
  end

let[@lint.allow
     "A egress charge and per-receiver delay sampling box floats once per transmission \
      decision; same send-path contract as regional_multicast"]
    ip_multicast t ~cls ~src ~reach msg =
  let extra_delay = egress_delay t ~src msg in
  let all = Topology.all_nodes t.topology in
  if not t.batched then
    (Array.iter
       (fun dst ->
         if not (Node_id.equal dst src) then begin
           let c = counter_for t cls in
           c.m_sent <- c.m_sent + 1;
           t.mh_sent := !(t.mh_sent) + 1;
           if reach dst then begin
             let delay = extra_delay +. delay_between t ~src ~dst in
             let p =
               alloc_parcel t ~src ~dst ~cls ~sent_at:(Engine.Sim.now t.sim) msg
             in
             ignore (Engine.Sim.schedule t.sim ~delay p.p_fire)
           end
           else begin
             c.m_dropped_loss <- c.m_dropped_loss + 1;
             t.mh_dropped := !(t.mh_dropped) + 1
           end
         end)
       all)
    [@lint.allow
      "A unbatched reference path kept for differential testing; the measured path is the \
       coalesced loop below"]
  else begin
    let c = counter_for t cls in
    let sent_at = Engine.Sim.now t.sim in
    for i = 0 to Array.length all - 1 do
      let dst = Array.unsafe_get all i in
      if not (Node_id.equal dst src) then begin
        c.m_sent <- c.m_sent + 1;
        t.mh_sent := !(t.mh_sent) + 1;
        if reach dst then
          add_to_group t ~cls ~src ~sent_at
            ~delay:(extra_delay +. delay_between t ~src ~dst)
            dst msg
        else begin
          c.m_dropped_loss <- c.m_dropped_loss + 1;
          t.mh_dropped := !(t.mh_dropped) + 1
        end
      end
    done;
    flush_groups t
  end

let[@lint.allow
     "A egress charge and per-receiver delay sampling box floats once per transmission \
      decision; same send-path contract as regional_multicast"]
    ip_multicast_lossy t ~cls ~src msg =
  let extra_delay = egress_delay t ~src msg in
  let all = Topology.all_nodes t.topology in
  if not t.batched then
    (Array.iter
       (fun dst ->
         if not (Node_id.equal dst src) then
           send_one ~extra_delay t ~cls ~src ~dst ~lossy:true msg)
       all)
    [@lint.allow
      "A unbatched reference path kept for differential testing; the measured path is the \
       coalesced loop below"]
  else begin
    let c = counter_for t cls in
    let sent_at = Engine.Sim.now t.sim in
    for i = 0 to Array.length all - 1 do
      let dst = Array.unsafe_get all i in
      if not (Node_id.equal dst src) then begin
        c.m_sent <- c.m_sent + 1;
        t.mh_sent := !(t.mh_sent) + 1;
        if Loss.drop t.loss ~src ~dst then begin
          c.m_dropped_loss <- c.m_dropped_loss + 1;
          t.mh_dropped := !(t.mh_dropped) + 1
        end
        else
          add_to_group t ~cls ~src ~sent_at
            ~delay:(extra_delay +. delay_between t ~src ~dst)
            dst msg
      end
    done;
    flush_groups t
  end

let stats t ~cls =
  match Hashtbl.find t.counters cls with
  | exception Not_found -> { sent = 0; delivered = 0; dropped_loss = 0; dropped_dead = 0 }
  | c ->
    {
      sent = c.m_sent;
      delivered = c.m_delivered;
      dropped_loss = c.m_dropped_loss;
      dropped_dead = c.m_dropped_dead;
    }

let[@lint.allow "H2 observability accessor, never on a gated path"] classes t =
  Hashtbl.fold (fun cls _ acc -> cls :: acc) t.counters [] |> List.sort String.compare

let[@lint.allow "D2 integer sum over all classes is commutative; order cannot escape"]
    [@lint.allow "H2 observability accessor, never on a gated path"]
    total_sent t =
  Hashtbl.fold (fun _ c acc -> acc + c.m_sent) t.counters 0

let[@lint.allow "D2 integer sum over all classes is commutative; order cannot escape"]
    [@lint.allow "H2 observability accessor, never on a gated path"]
    total_delivered t =
  Hashtbl.fold (fun _ c acc -> acc + c.m_delivered) t.counters 0

let reset_stats t =
  Hashtbl.reset t.counters;
  t.counter_cache <- [];
  t.counter_cache_len <- 0

let set_delivery_hook t hook = t.hook <- hook

let egress_backlog t node =
  match t.bandwidth with
  | None -> 0.0
  | Some _ ->
    (match Node_id.Table.find t.egress_free_at node with
     | exception Not_found -> 0.0
     | at -> Float.max 0.0 (at -. Engine.Sim.now t.sim))
