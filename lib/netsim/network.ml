type 'msg delivery = {
  src : Node_id.t;
  dst : Node_id.t;
  msg : 'msg;
  sent_at : float;
  cls : string;
}

type 'msg bandwidth = { bytes_per_ms : float; packet_bytes : 'msg -> int }

type counter = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_dead : int;
}

type mutable_counter = {
  mutable m_sent : int;
  mutable m_delivered : int;
  mutable m_dropped_loss : int;
  mutable m_dropped_dead : int;
}

type 'msg t = {
  sim : Engine.Sim.t;
  topology : Topology.t;
  latency : Latency.t;
  loss : Loss.t;
  rng : Engine.Rng.t;
  handlers : ('msg delivery -> unit) Node_id.Table.t;
  counters : (string, mutable_counter) Hashtbl.t;
  (* hot-path memo over [counters]: traffic classes are a handful of
     (physically shared) literals, so a pointer-compared association
     list beats hashing the string on every packet *)
  mutable counter_cache : (string * mutable_counter) list;
  mutable counter_cache_len : int; (* avoids O(len) List.length per miss *)
  mutable hook : ('msg delivery -> unit) option;
  bandwidth : 'msg bandwidth option;
  egress_free_at : float Node_id.Table.t;  (* per-src link-free time *)
  batched : bool;
  (* pre-resolved metric handles; null sinks until [attach_metrics], so
     the per-packet bumps below never branch or hash a name *)
  mutable mh_sent : Tracing.Metrics.handle;
  mutable mh_delivered : Tracing.Metrics.handle;
  mutable mh_dropped : Tracing.Metrics.handle;
}

let create ~sim ~topology ~latency ~loss ~rng ?bandwidth ?(batched = true) () =
  (match bandwidth with
   | Some b when b.bytes_per_ms <= 0.0 ->
     invalid_arg "Network.create: bandwidth must be positive"
   | Some _ | None -> ());
  {
    sim;
    topology;
    latency;
    loss;
    rng;
    handlers = Node_id.Table.create 256;
    counters = Hashtbl.create 16;
    counter_cache = [];
    counter_cache_len = 0;
    hook = None;
    bandwidth;
    egress_free_at = Node_id.Table.create 64;
    batched;
    mh_sent = Tracing.Metrics.null_handle ();
    mh_delivered = Tracing.Metrics.null_handle ();
    mh_dropped = Tracing.Metrics.null_handle ();
  }

let attach_metrics t metrics =
  t.mh_sent <- Tracing.Metrics.handle metrics "net.sent";
  t.mh_delivered <- Tracing.Metrics.handle metrics "net.delivered";
  t.mh_dropped <- Tracing.Metrics.handle metrics "net.dropped"

let sim t = t.sim

let topology t = t.topology

let latency t = t.latency

let register t node handler = Node_id.Table.replace t.handlers node handler

let unregister t node = Node_id.Table.remove t.handlers node

let rec cached_counter cls = function
  | [] -> raise_notrace Not_found
  | (k, c) :: rest -> if k == cls then c else cached_counter cls rest

let counter_for t cls =
  match cached_counter cls t.counter_cache with
  | c -> c
  | exception Not_found ->
    let c =
      match Hashtbl.find_opt t.counters cls with
      | Some c -> c
      | None ->
        let c = { m_sent = 0; m_delivered = 0; m_dropped_loss = 0; m_dropped_dead = 0 } in
        Hashtbl.add t.counters cls c;
        c
    in
    (* bound the memo so adversarial dynamic class names cannot grow it *)
    if t.counter_cache_len < 32 then begin
      t.counter_cache <- (cls, c) :: t.counter_cache;
      t.counter_cache_len <- t.counter_cache_len + 1
    end;
    c

let delay_between t ~src ~dst =
  match (Topology.region_of t.topology src, Topology.region_of t.topology dst) with
  | Some ra, Some rb ->
    let hops = Topology.hops t.topology ra rb in
    if hops = 0 then Latency.intra t.latency t.rng
    else Latency.inter t.latency ~hops t.rng
  | _ ->
    (* endpoint left mid-flight bookkeeping happens at delivery; just
       charge an intra-region delay *)
    Latency.intra t.latency t.rng

let deliver t ~c ~cls ~src ~dst ~sent_at msg =
  if not (Topology.is_member t.topology dst) then
    c.m_dropped_dead <- c.m_dropped_dead + 1
  else
    match Node_id.Table.find_opt t.handlers dst with
    | None -> c.m_dropped_dead <- c.m_dropped_dead + 1
    | Some handler ->
      c.m_delivered <- c.m_delivered + 1;
      t.mh_delivered := !(t.mh_delivered) + 1;
      let delivery = { src; dst; msg; sent_at; cls } in
      (match t.hook with None -> () | Some observe -> observe delivery);
      handler delivery

(* serialization delay at the sender's egress: the packet departs when
   the link frees up, occupying it for size/rate ms *)
let egress_delay t ~src msg =
  match t.bandwidth with
  | None -> 0.0
  | Some b ->
    let now = Engine.Sim.now t.sim in
    let free_at =
      match Node_id.Table.find_opt t.egress_free_at src with
      | Some at -> Float.max at now
      | None -> now
    in
    let transmission = float_of_int (b.packet_bytes msg) /. b.bytes_per_ms in
    let departs = free_at +. transmission in
    Node_id.Table.replace t.egress_free_at src departs;
    departs -. now

let send_one ?(extra_delay = 0.0) t ~cls ~src ~dst ~lossy msg =
  let c = counter_for t cls in
  c.m_sent <- c.m_sent + 1;
  t.mh_sent := !(t.mh_sent) + 1;
  if lossy && Loss.drop t.loss ~src ~dst then begin
    c.m_dropped_loss <- c.m_dropped_loss + 1;
    t.mh_dropped := !(t.mh_dropped) + 1
  end
  else begin
    let sent_at = Engine.Sim.now t.sim in
    let delay = extra_delay +. delay_between t ~src ~dst in
    ignore
      (Engine.Sim.schedule t.sim ~delay (fun () ->
           deliver t ~c:(counter_for t cls) ~cls ~src ~dst ~sent_at msg))
  end

let unicast t ~cls ~src ~dst msg =
  let extra_delay = egress_delay t ~src msg in
  send_one ~extra_delay t ~cls ~src ~dst ~lossy:true msg

(* ------------------------------------------------------------------ *)
(* Batched multicast fan-out                                           *)
(* ------------------------------------------------------------------ *)

(* One multicast used to schedule one simulator event per receiver; at
   region sizes in the hundreds that made the event queue the
   bottleneck. The batched fan-out samples loss and latency per
   destination at send time, in exactly the same order as the unbatched
   path (so seeded runs are bit-identical), but groups destinations by
   sampled delay and schedules a single event per distinct delay that
   expands to the group's deliveries when it fires. Under the paper's
   constant-latency models a whole regional multicast collapses to one
   queue entry.

   Ordering note: group events are scheduled in first-destination order
   within the (atomic) fan-out loop, so their sequence numbers preserve
   the relative order the per-receiver events would have had; receivers
   inside a group are delivered in membership order. Execution order is
   therefore identical to the unbatched path. *)

type group = { g_delay : float; mutable g_dsts : Node_id.t list (* reversed *) }

let rec group_find delay = function
  | [] -> raise_notrace Not_found
  | g :: rest -> if Float.equal g.g_delay delay then g else group_find delay rest

let fire_group t ~cls ~src ~sent_at dsts msg () =
  let c = counter_for t cls in
  List.iter (fun dst -> deliver t ~c ~cls ~src ~dst ~sent_at msg) dsts

let batched_fanout t ~cls ~src ~sent_at groups msg =
  List.iter
    (fun g ->
      ignore
        (Engine.Sim.schedule t.sim ~delay:g.g_delay
           (fire_group t ~cls ~src ~sent_at (List.rev g.g_dsts) msg)))
    (List.rev groups)

let add_to_group groups delay dst =
  match group_find delay !groups with
  | g -> g.g_dsts <- dst :: g.g_dsts
  | exception Not_found -> groups := { g_delay = delay; g_dsts = [ dst ] } :: !groups

(* a multicast is one transmission at the source: the egress is charged
   once, not per receiver *)
let regional_multicast t ~cls ~src ~region ?(include_src = false) msg =
  let extra_delay = egress_delay t ~src msg in
  let members = Topology.members t.topology region in
  if not t.batched then
    Array.iter
      (fun dst ->
        if include_src || not (Node_id.equal dst src) then
          send_one ~extra_delay t ~cls ~src ~dst ~lossy:true msg)
      members
  else begin
    let c = counter_for t cls in
    let sent_at = Engine.Sim.now t.sim in
    let groups = ref [] in
    Array.iter
      (fun dst ->
        if include_src || not (Node_id.equal dst src) then begin
          c.m_sent <- c.m_sent + 1;
          t.mh_sent := !(t.mh_sent) + 1;
          if Loss.drop t.loss ~src ~dst then begin
            c.m_dropped_loss <- c.m_dropped_loss + 1;
            t.mh_dropped := !(t.mh_dropped) + 1
          end
          else add_to_group groups (extra_delay +. delay_between t ~src ~dst) dst
        end)
      members;
    batched_fanout t ~cls ~src ~sent_at !groups msg
  end

let ip_multicast t ~cls ~src ~reach msg =
  let extra_delay = egress_delay t ~src msg in
  let all = Topology.all_nodes t.topology in
  if not t.batched then
    Array.iter
      (fun dst ->
        if not (Node_id.equal dst src) then begin
          let c = counter_for t cls in
          c.m_sent <- c.m_sent + 1;
          t.mh_sent := !(t.mh_sent) + 1;
          if reach dst then begin
            let sent_at = Engine.Sim.now t.sim in
            let delay = extra_delay +. delay_between t ~src ~dst in
            ignore
              (Engine.Sim.schedule t.sim ~delay (fun () ->
                   deliver t ~c:(counter_for t cls) ~cls ~src ~dst ~sent_at msg))
          end
          else begin
            c.m_dropped_loss <- c.m_dropped_loss + 1;
            t.mh_dropped := !(t.mh_dropped) + 1
          end
        end)
      all
  else begin
    let c = counter_for t cls in
    let sent_at = Engine.Sim.now t.sim in
    let groups = ref [] in
    Array.iter
      (fun dst ->
        if not (Node_id.equal dst src) then begin
          c.m_sent <- c.m_sent + 1;
          t.mh_sent := !(t.mh_sent) + 1;
          if reach dst then add_to_group groups (extra_delay +. delay_between t ~src ~dst) dst
          else begin
            c.m_dropped_loss <- c.m_dropped_loss + 1;
            t.mh_dropped := !(t.mh_dropped) + 1
          end
        end)
      all;
    batched_fanout t ~cls ~src ~sent_at !groups msg
  end

let ip_multicast_lossy t ~cls ~src msg =
  let extra_delay = egress_delay t ~src msg in
  let all = Topology.all_nodes t.topology in
  if not t.batched then
    Array.iter
      (fun dst ->
        if not (Node_id.equal dst src) then
          send_one ~extra_delay t ~cls ~src ~dst ~lossy:true msg)
      all
  else begin
    let c = counter_for t cls in
    let sent_at = Engine.Sim.now t.sim in
    let groups = ref [] in
    Array.iter
      (fun dst ->
        if not (Node_id.equal dst src) then begin
          c.m_sent <- c.m_sent + 1;
          t.mh_sent := !(t.mh_sent) + 1;
          if Loss.drop t.loss ~src ~dst then begin
            c.m_dropped_loss <- c.m_dropped_loss + 1;
            t.mh_dropped := !(t.mh_dropped) + 1
          end
          else add_to_group groups (extra_delay +. delay_between t ~src ~dst) dst
        end)
      all;
    batched_fanout t ~cls ~src ~sent_at !groups msg
  end

let stats t ~cls =
  match Hashtbl.find_opt t.counters cls with
  | None -> { sent = 0; delivered = 0; dropped_loss = 0; dropped_dead = 0 }
  | Some c ->
    {
      sent = c.m_sent;
      delivered = c.m_delivered;
      dropped_loss = c.m_dropped_loss;
      dropped_dead = c.m_dropped_dead;
    }

let classes t =
  Hashtbl.fold (fun cls _ acc -> cls :: acc) t.counters [] |> List.sort String.compare

let[@lint.allow "D2 integer sum over all classes is commutative; order cannot escape"]
    total_sent t =
  Hashtbl.fold (fun _ c acc -> acc + c.m_sent) t.counters 0

let[@lint.allow "D2 integer sum over all classes is commutative; order cannot escape"]
    total_delivered t =
  Hashtbl.fold (fun _ c acc -> acc + c.m_delivered) t.counters 0

let reset_stats t =
  Hashtbl.reset t.counters;
  t.counter_cache <- [];
  t.counter_cache_len <- 0

let set_delivery_hook t hook = t.hook <- hook

let egress_backlog t node =
  match t.bandwidth with
  | None -> 0.0
  | Some _ ->
    (match Node_id.Table.find_opt t.egress_free_at node with
     | None -> 0.0
     | Some at -> Float.max 0.0 (at -. Engine.Sim.now t.sim))
