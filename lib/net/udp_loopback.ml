(* Real UDP datagrams over 127.0.0.1, one nonblocking socket per
   member. Every member binds an ephemeral port (no port conflicts,
   parallel test runs included) and the port learned from getsockname
   identifies the sender on receipt.

   Hot-path discipline: sends encode into a preallocated Codec.Ring
   slot and cross into the kernel through one reused Bytes scratch
   (the Unix sendto/recvfrom API takes Bytes, not Bigarray — the blit
   is a plain char loop); receives land in one scratch, are validated
   by a pooled Codec decoder, and only materialize a Wire.t (fresh
   payload bodies, safe for the member to retain) once the frame has
   passed validation. Loss injection for controlled experiments sits
   on the send side — a dropped datagram never costs a syscall — and
   is driven by an explicit seeded Rng, so a loss schedule is
   reproducible for a fixed send sequence. *)

type t = {
  nodes : Node_id.t array;
  socks : Unix.file_descr array;
  addrs : Unix.sockaddr array;  (* indexed like [nodes] *)
  index_of : (int, int) Hashtbl.t;  (* node id -> index *)
  port_of : (int, int) Hashtbl.t;  (* udp port -> index *)
  ring : Rrmp.Codec.Ring.t;
  send_scratch : Bytes.t;
  recv_scratch : Bytes.t;
  recv_frame : Rrmp.Codec.buf;
  dec : Rrmp.Codec.decoder;
  loss : float;
  rng : Engine.Rng.t;
  st : Transport.stats;
  mutable closed : bool;
}

let stats t = t.st

let nodes t = t.nodes

let port t node =
  match Hashtbl.find_opt t.index_of (Node_id.to_int node) with
  | None -> invalid_arg "Udp_loopback.port: unknown node"
  | Some i -> (
    match t.addrs.(i) with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> invalid_arg "Udp_loopback.port: not an inet endpoint")

let create ?(loss = 0.0) ?(seed = 0x6e6574) ?(slot_bytes = 65536) ~nodes () =
  if loss < 0.0 || loss > 1.0 then invalid_arg "Udp_loopback.create: loss outside [0, 1]";
  let n = Array.length nodes in
  let index_of = Hashtbl.create (2 * n) in
  let port_of = Hashtbl.create (2 * n) in
  let socks =
    Array.map
      (fun _ ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
        Unix.set_nonblock sock;
        (* ask for roomy queues; the kernel clamps to its limits, and
           overflow beyond that shows up as real drops the protocol's
           recovery has to repair — which is the point of the bench *)
        (try Unix.setsockopt_int sock Unix.SO_RCVBUF (4 * 1024 * 1024) with Unix.Unix_error _ -> ());
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        sock)
      nodes
  in
  let addrs = Array.map Unix.getsockname socks in
  Array.iteri
    (fun i node ->
      Hashtbl.replace index_of (Node_id.to_int node) i;
      match addrs.(i) with
      | Unix.ADDR_INET (_, p) -> Hashtbl.replace port_of p i
      | Unix.ADDR_UNIX _ -> ())
    nodes;
  {
    nodes;
    socks;
    addrs;
    index_of;
    port_of;
    ring = Rrmp.Codec.Ring.create ~slot_bytes ~slots:4 ();
    send_scratch = Bytes.create slot_bytes;
    recv_scratch = Bytes.create slot_bytes;
    recv_frame = Bigarray.Array1.create Bigarray.char Bigarray.c_layout slot_bytes;
    dec = Rrmp.Codec.create_decoder ();
    loss;
    rng = Engine.Rng.create ~seed;
    st = Transport.make_stats ();
    closed = false;
  }

let index_exn t node =
  match Hashtbl.find_opt t.index_of (Node_id.to_int node) with
  | Some i -> i
  | None -> invalid_arg "Udp_loopback: node not part of this transport"

(* annotating [frame] keeps the bigarray access monomorphic (direct
   load/store instead of the generic kind-dispatch primitive) *)
let rec blit_out (frame : Rrmp.Codec.buf) off (scratch : Bytes.t) i n =
  if i < n then begin
    Bytes.unsafe_set scratch i (Bigarray.Array1.unsafe_get frame (off + i));
    blit_out frame off scratch (i + 1) n
  end

let rec blit_in (scratch : Bytes.t) (frame : Rrmp.Codec.buf) i n =
  if i < n then begin
    Bigarray.Array1.unsafe_set frame i (Bytes.unsafe_get scratch i);
    blit_in scratch frame (i + 1) n
  end

let send t ~src ~dst msg =
  if not t.closed then begin
    let src_i = index_exn t src in
    let dst_i = index_exn t dst in
    if t.loss > 0.0 && Engine.Rng.bernoulli t.rng ~p:t.loss then
      t.st.Transport.dropped_loss <- t.st.Transport.dropped_loss + 1
    else begin
      let size = Rrmp.Codec.encoded_size msg in
      if size > Rrmp.Codec.Ring.slot_bytes t.ring then
        t.st.Transport.dropped_oversize <- t.st.Transport.dropped_oversize + 1
      else begin
        let frame = Rrmp.Codec.Ring.buf t.ring in
        let off = Rrmp.Codec.Ring.acquire t.ring in
        let size = Rrmp.Codec.encode frame ~off msg in
        blit_out frame off t.send_scratch 0 size;
        match Unix.sendto t.socks.(src_i) t.send_scratch 0 size [] t.addrs.(dst_i) with
        | _written ->
          t.st.Transport.datagrams_sent <- t.st.Transport.datagrams_sent + 1;
          t.st.Transport.bytes_sent <- t.st.Transport.bytes_sent + size
        | exception
            Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.ENOBUFS | Unix.ECONNREFUSED), _, _)
          ->
          t.st.Transport.dropped_backpressure <- t.st.Transport.dropped_backpressure + 1
      end
    end
  end

(* drain one socket until the kernel reports it empty; -1 from the
   receive means dry *)
let[@lint.never_raise] recv_one t i =
  match Unix.recvfrom t.socks.(i) t.recv_scratch 0 (Bytes.length t.recv_scratch) [] with
  | n, Unix.ADDR_INET (_, sender_port) -> (n, sender_port)
  | _n, Unix.ADDR_UNIX _ -> (0, -1)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (-1, -1)
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> (0, -1)

let[@lint.never_raise] drain t ~handle =
  if t.closed then 0
  else begin
    let handed = ref 0 in
    for i = 0 to Array.length t.socks - 1 do
      let dry = ref false in
      while not !dry do
        let n, sender_port = recv_one t i in
        if n < 0 then dry := true
        else if n = 0 then ()
        else begin
          t.st.Transport.datagrams_received <- t.st.Transport.datagrams_received + 1;
          t.st.Transport.bytes_received <- t.st.Transport.bytes_received + n;
          blit_in t.recv_scratch t.recv_frame 0 n;
          match Rrmp.Codec.read t.dec t.recv_frame ~off:0 ~len:n with
          | Rrmp.Codec.Err _ ->
            t.st.Transport.decode_errors <- t.st.Transport.decode_errors + 1
          | Rrmp.Codec.Ok_frame -> (
            match Hashtbl.find_opt t.port_of sender_port with
            | None -> t.st.Transport.decode_errors <- t.st.Transport.decode_errors + 1
            | Some src_i ->
              let msg =
                (Rrmp.Codec.view t.dec ~copy:true)
                [@lint.allow
                  "E view raises only when the decoder holds no frame, and this arm runs \
                   just after read returned Ok_frame"]
              in
              incr handed;
              handle ~src:t.nodes.(src_i) ~dst:t.nodes.(i) msg)
        end
      done
    done;
    !handed
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun sock -> try Unix.close sock with Unix.Unix_error _ -> ()) t.socks
  end
