(* Member capabilities over a real transport: IP multicast does not
   exist on loopback, so the three multicast primitives expand to
   per-destination datagrams at the transport boundary (the fan-out a
   multicast-capable NIC would do for us). Sends ignore the traffic
   class — the transport accounts bytes, not classes. *)

let rec fanout transport nodes src msg i n =
  if i < n then begin
    let dst = Array.unsafe_get nodes i in
    if not (Node_id.equal dst src) then Udp_loopback.send transport ~src ~dst msg;
    fanout transport nodes src msg (i + 1) n
  end

let rec fanout_reaching transport nodes src reach msg i n =
  if i < n then begin
    let dst = Array.unsafe_get nodes i in
    if (not (Node_id.equal dst src)) && reach dst then Udp_loopback.send transport ~src ~dst msg;
    fanout_reaching transport nodes src reach msg (i + 1) n
  end

let udp ~transport ~clock ~topology : Rrmp.Member.caps =
  let all = Udp_loopback.nodes transport in
  {
    Rrmp.Member.cap_now = clock;
    cap_unicast = (fun ~cls:_ ~src ~dst msg -> Udp_loopback.send transport ~src ~dst msg);
    cap_regional =
      (fun ~cls:_ ~src ~region msg ->
        let members = Topology.members topology region in
        fanout transport members src msg 0 (Array.length members));
    cap_multicast =
      (fun ~cls:_ ~src ~reach msg -> fanout_reaching transport all src reach msg 0 (Array.length all));
    cap_multicast_lossy = (fun ~cls:_ ~src msg -> fanout transport all src msg 0 (Array.length all));
  }
