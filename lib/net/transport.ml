(* The transport boundary: a datagram carrier for encoded Wire frames.
   Implementations sit under the member capability closures — send
   maps to one datagram per destination, drain pumps every pending
   datagram through the codec and hands decoded messages up. *)

type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable dropped_loss : int;
  mutable dropped_backpressure : int;
  mutable dropped_oversize : int;
  mutable decode_errors : int;
}

let make_stats () =
  {
    datagrams_sent = 0;
    datagrams_received = 0;
    bytes_sent = 0;
    bytes_received = 0;
    dropped_loss = 0;
    dropped_backpressure = 0;
    dropped_oversize = 0;
    decode_errors = 0;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "sent %d (%d B) received %d (%d B) dropped: loss %d backpressure %d oversize %d, decode \
     errors %d"
    s.datagrams_sent s.bytes_sent s.datagrams_received s.bytes_received s.dropped_loss
    s.dropped_backpressure s.dropped_oversize s.decode_errors

module type S = sig
  type t

  val send : t -> src:Node_id.t -> dst:Node_id.t -> Rrmp.Wire.t -> unit

  val drain : t -> handle:(src:Node_id.t -> dst:Node_id.t -> Rrmp.Wire.t -> unit) -> int

  val stats : t -> stats

  val close : t -> unit
end
