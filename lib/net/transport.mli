(** The transport boundary of the real-traffic backend: a datagram
    carrier for {!Rrmp.Codec}-encoded {!Rrmp.Wire.t} frames.

    A transport never raises on traffic: anything the wire does —
    drops, truncation, corruption, queue pressure — lands in {!stats}
    counters, and decoded messages come back through {!S.drain}'s
    handler. *)

(** Counters every implementation maintains. *)
type stats = {
  mutable datagrams_sent : int;
  mutable datagrams_received : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
  mutable dropped_loss : int;  (** injected transport-level loss *)
  mutable dropped_backpressure : int;
      (** the kernel refused the datagram (full socket buffer) *)
  mutable dropped_oversize : int;  (** frame larger than a send slot *)
  mutable decode_errors : int;
      (** received bytes the codec rejected, or an unknown sender *)
}

val make_stats : unit -> stats
(** All-zero counters. *)

val pp_stats : Format.formatter -> stats -> unit

module type S = sig
  type t

  val send : t -> src:Node_id.t -> dst:Node_id.t -> Rrmp.Wire.t -> unit
  (** Encode and emit one datagram from [src]'s endpoint to [dst]'s.
      Never raises on traffic conditions; counts drops instead. *)

  val drain : t -> handle:(src:Node_id.t -> dst:Node_id.t -> Rrmp.Wire.t -> unit) -> int
  (** Pump every currently-pending datagram: decode and pass each to
      [handle] (payload bodies are fresh copies, safe to retain).
      Returns how many messages were handed up. *)

  val stats : t -> stats

  val close : t -> unit
end
