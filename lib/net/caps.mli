(** Build {!Rrmp.Member.caps} over a UDP transport: the capability
    instantiation that swaps the simulated network out from under a
    member without touching its protocol logic. *)

val udp :
  transport:Udp_loopback.t -> clock:Clock.t -> topology:Topology.t -> Rrmp.Member.caps
(** Sends become real datagrams ([Udp_loopback.send]); the multicast
    primitives expand to one datagram per destination (excluding the
    sender, matching {!Netsim.Network}'s semantics); time reads come
    from [clock]. Regional fan-out resolves membership through
    [topology] at send time, so churn is honoured after
    {!Rrmp.Member.refresh_view}. *)
