(* Time sources for the capability boundary: member logic asks "what
   time is it" through a closure, so the same protocol code runs on
   the deterministic sim clock or on wall time. *)

type t = unit -> float

let of_sim sim () = Engine.Sim.now sim

let[@lint.allow
     "D1 the wall clock is the real-traffic backend's time source by design; it never runs \
      inside a seeded simulation — sim paths use of_sim, and rrmp_lint keeps gettimeofday out \
      of every other lib module"] wall () =
  let start = Unix.gettimeofday () in
  (* gettimeofday can step backwards (NTP); clamping makes the returned
     clock monotonic, which the timer wheel requires *)
  let last = ref 0.0 in
  fun () ->
    let t = (Unix.gettimeofday () -. start) *. 1000.0 in
    if t > !last then last := t;
    !last
