(** {!Transport.S} over real nonblocking UDP sockets on 127.0.0.1.

    One socket per member, bound to an ephemeral port (learned back
    through getsockname, so parallel runs never collide); the sender
    of a received datagram is identified by its source port. Frames
    travel through {!Rrmp.Codec}: sends encode into a preallocated
    ring, receives validate through a pooled decoder and only
    materialize messages that parse — corrupt or foreign datagrams
    are counted, never raised.

    Transport-level loss injection ([loss], decided by a seeded
    {!Engine.Rng} on the send side) gives controlled-loss experiments
    on a link that otherwise only drops under real queue pressure. *)

type t

val create :
  ?loss:float -> ?seed:int -> ?slot_bytes:int -> nodes:Node_id.t array -> unit -> t
(** Open one socket per node. [loss] (default 0) is the independent
    per-datagram drop probability; [seed] fixes the drop schedule;
    [slot_bytes] (default 64 KiB) bounds the largest sendable frame.
    @raise Invalid_argument on a loss outside [0, 1] (and
    @raise Unix.Unix_error if sockets cannot be opened at all). *)

val send : t -> src:Node_id.t -> dst:Node_id.t -> Rrmp.Wire.t -> unit
(** Encode and emit one datagram from [src]'s socket to [dst]'s port.
    Injected loss, kernel backpressure and oversize frames are counted
    in {!stats}, not raised.
    @raise Invalid_argument if either node is not part of this
    transport. *)

val drain : t -> handle:(src:Node_id.t -> dst:Node_id.t -> Rrmp.Wire.t -> unit) -> int
(** Pump every socket until the kernel reports it empty, decoding and
    handing each message up (payload bodies are fresh copies, safe to
    retain). Returns the number of messages handed up. *)

val stats : t -> Transport.stats

val nodes : t -> Node_id.t array

val port : t -> Node_id.t -> int
(** The UDP port a node's socket is bound to (diagnostics). *)

val close : t -> unit
(** Close every socket; further sends and drains are no-ops. *)
