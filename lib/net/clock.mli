(** Time sources (milliseconds) for {!Rrmp.Member.caps.cap_now}. *)

type t = unit -> float
(** A clock is just a closure returning the current time in ms. *)

val of_sim : Engine.Sim.t -> t
(** The deterministic simulation clock (the default member behaviour
    reads this through {!Rrmp.Member.netsim_caps}). *)

val wall : unit -> t
(** A monotonic wall clock: ms since [wall] was called, clamped so it
    never steps backwards even if the system clock does. Each call to
    [wall] creates an independent epoch. *)
