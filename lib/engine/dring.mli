(** Coalesced deadline ring: one shared structure in place of many
    per-entry {!Timer.Idle} instances.

    Entries are keyed, carry a fixed quiet period ([timeout]), and are
    bucketed by quantized deadline: bucket tick of an entry is
    [ceil ((last_activity + timeout) / quantum)]. A single {!Sim} event
    per non-empty bucket sweeps every entry due in that quantum, so a
    member holding [m] armed deadlines costs [O(distinct buckets)]
    scheduler entries instead of [m].

    {!touch} — the hot operation: "activity seen, push the deadline
    back" — is a table lookup plus one integer field write. It never
    touches the scheduler; a swept entry whose deadline moved to a
    later tick is lazily re-bucketed (the same lazy-invalidation strategy
    as {!Sim.cancel}'s deferred reaping). With a key module whose [hash]
    does not allocate, {!touch} performs zero minor-heap allocation.

    Quantization bound: an entry expires at [tick * quantum], which is
    at most [quantum] later than its exact deadline [last_activity +
    timeout] — and never earlier. With tick-aligned deadlines the
    firing time is exact. Fire order is deterministic: buckets fire in
    {!Sim} (time, seq) order and entries within a bucket in insertion
    order. *)

module Make (Key : Hashtbl.HashedType) : sig
  type t

  val create : Sim.t -> quantum:float -> on_expire:(Key.t -> unit) -> t
  (** @raise Invalid_argument if [quantum <= 0]. [on_expire] runs when
      an entry's (possibly touched-forward) deadline quantum is swept;
      the entry is already removed when it runs, so re-adding the key
      from the callback is safe. *)

  val add : t -> Key.t -> timeout:float -> unit
  (** Arm (or re-arm, replacing any previous state) a deadline
      [timeout] ms of quiet from now. O(1).
      @raise Invalid_argument if [timeout <= 0]. *)

  val touch : t -> Key.t -> unit
  (** Reset the quiet period: the entry now expires [timeout] ms from
      the current {!Sim.now}. No-op for unknown (expired/stopped) keys.
      O(1), allocation-free, never touches the scheduler. *)

  val stop : t -> Key.t -> unit
  (** Disarm without firing. No-op for unknown keys. O(1); the bucket
      entry is reaped lazily at sweep time. *)

  val mem : t -> Key.t -> bool
  (** Is the key currently armed? *)

  val length : t -> int
  (** Armed entries. *)

  val clear : t -> unit
  (** Disarm everything and cancel every scheduled sweep. *)

  val quantum : t -> float

  val pending_sweeps : t -> int
  (** Distinct buckets with a scheduled sweep — the coalescing factor
      under test: [length t] entries share [pending_sweeps t] scheduler
      events. *)
end
