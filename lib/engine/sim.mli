(** Discrete-event simulation driver.

    A [t] owns a virtual clock (in milliseconds) and an event queue.
    Events scheduled for the same instant run in the order they were
    scheduled, which together with {!Rng} makes runs fully
    deterministic. Callbacks may schedule further events.

    Internally, short-horizon events (the common case: protocol timers,
    packet deliveries) live in a hierarchical {!Wheel} with O(1)
    schedule/cancel, while far-future events fall back to a binary
    {!Heap}; every event carries a global sequence number and both
    structures order by (fire-time, seq), so the split never changes
    execution order. *)

type t

type handle
(** A scheduled event that can be cancelled before it fires. *)

val never : handle
(** A shared, already-fired handle: {!cancel} and {!cancelled} treat it
    as inert. Use it as the "no timer armed" value of a handle-valued
    field, avoiding an [option] box per re-arm on hot paths. *)

val create : ?now:float -> ?wheel:bool -> unit -> t
(** Fresh simulation with the clock at [now] (default 0.0 ms). [wheel]
    (default [true]) routes short-horizon events through the timer
    wheel; pass [false] to force the pure-heap scheduler (reference
    semantics for equivalence tests). *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val pending : t -> int
(** Number of events still queued, including cancelled ones that have
    been neither reaped nor compacted away. *)

val cancelled_pending : t -> int
(** Cancelled events still sitting in the queue. Once these exceed half
    of {!pending} (beyond a small floor), the next schedule triggers a
    compaction pass that drops them in bulk. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. A negative
    delay is clamped to 0 (runs "now", after already-queued events for
    this instant). *)

val schedule_at : t -> at:float -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] at absolute time [at] (clamped to
    [now t]). *)

val cancel : handle -> unit
(** O(1); cancelling an already-fired or already-cancelled event is a
    no-op. *)

val cancelled : handle -> bool

val fire_time : handle -> float
(** The virtual time at which the handle is (or was) due. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue. Stops when the queue is empty, when the next
    event is strictly later than [until], or after [max_events]
    callbacks have run. The clock ends at the time of the last executed
    event (or [until] if provided and larger). *)

val step : t -> bool
(** Execute the single next event. [false] if the queue was empty. *)

val events_executed : t -> int
(** Total callbacks run since creation. *)

val events_scheduled : t -> int
(** Total events ever scheduled (fired, pending or cancelled): the
    difference against {!events_executed} is the cancellation traffic,
    and each unit of it is one handle allocation on the hot path. *)
