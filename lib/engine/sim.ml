(* Discrete-event simulation driver.

   Events are split across three places by access pattern: a one-slot
   min-cache ([head]) that absorbs the schedule-one/fire-one pattern
   entirely, a hierarchical timer wheel (O(1) schedule/cancel; covers
   the short horizon where virtually all protocol timers live) and a
   binary heap for far-future events. Every handle carries a globally
   increasing sequence number and everything orders by (fire-time,
   seq), so execution order is identical to a single heap — FIFO among
   events scheduled for the same instant — regardless of where an
   event was stored.

   Cancellation is lazy (a state flip); cancelled entries are reaped
   when popped, or in bulk by a compaction pass once they exceed half of
   the pending queue. *)

(* state values: 0 = pending, 1 = cancelled, 2 = fired *)
type handle = {
  at : float;
  seq : int;
  action : unit -> unit;
  mutable state : int;
  cancels : int ref; (* owning sim's count of cancelled-but-queued events *)
}

type t = {
  mutable clock : float;
  mutable head : handle; (* min-cache: earliest pending event, or [nil] *)
  mutable queued : int; (* entries in wheel + heap (excludes [head]) *)
  heap : handle Heap.t;
  wheel : handle Wheel.t option;
  nil : handle; (* sentinel: compares after every real handle *)
  cancels : int ref;
  mutable next_seq : int;
  mutable executed : int;
}

let compare_handle a b =
  let c = Float.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(now = 0.0) ?(wheel = true) () =
  let nil = { at = infinity; seq = max_int; action = ignore; state = 2; cancels = ref 0 } in
  {
    clock = now;
    head = nil;
    queued = 0;
    heap = Heap.create ~dummy:nil ~compare_priority:compare_handle ();
    wheel =
      (if wheel then
         Some (Wheel.create ~start:(Float.max now 0.0) ~time_of:(fun h -> h.at)
                 ~compare:compare_handle ())
       else None);
    nil;
    cancels = ref 0;
    next_seq = 0;
    executed = 0;
  }

(* a pre-fired handle shared by everyone: lets "no timer armed" be a
   plain handle-valued field instead of an option, so hot state
   machines re-arm timers without boxing [Some handle] every round *)
let never = { at = infinity; seq = max_int; action = ignore; state = 2; cancels = ref 0 }

let now t = t.clock

let pending t = (if t.head == t.nil then 0 else 1) + t.queued

let cancelled_pending t = !(t.cancels)

let alive h = h.state <> 1

(* purge cancelled entries from both structures in one O(n) pass *)
let compact t =
  Heap.filter_in_place t.heap alive;
  (match t.wheel with None -> () | Some w -> Wheel.filter_in_place w alive);
  if t.head != t.nil && not (alive t.head) then t.head <- t.nil;
  t.queued <-
    Heap.length t.heap + (match t.wheel with None -> 0 | Some w -> Wheel.length w);
  t.cancels := 0

let maybe_compact t =
  let cancelled = !(t.cancels) in
  if cancelled >= 32 && 2 * cancelled > pending t then compact t

let push_queued t handle =
  (match t.wheel with
   | Some w when Wheel.add w handle -> ()
   | Some _ | None -> Heap.push t.heap handle);
  t.queued <- t.queued + 1;
  maybe_compact t

let schedule_at t ~at action =
  let at = if at > t.clock then at else t.clock in
  let handle = { at; seq = t.next_seq; action; state = 0; cancels = t.cancels } in
  t.next_seq <- t.next_seq + 1;
  (* [head] caches the minimum so the schedule-one/fire-one pattern
     (timer cascades, lone in-flight packets) never touches the wheel
     or heap. Invariant: head <> nil implies head <= everything queued. *)
  if t.head == t.nil then begin
    if t.queued = 0 then t.head <- handle else push_queued t handle
  end
  else if compare_handle handle t.head < 0 then begin
    let demoted = t.head in
    t.head <- handle;
    push_queued t demoted
  end
  else push_queued t handle;
  handle

let schedule t ~delay action =
  schedule_at t ~at:(t.clock +. (if delay > 0.0 then delay else 0.0)) action

let cancel handle =
  if handle.state = 0 then begin
    handle.state <- 1;
    incr handle.cancels
  end

let cancelled handle = handle.state = 1

let fire_time handle = handle.at

(* pop the earliest queued handle from wheel/heap (cancelled ones
   included, as before: reaping a cancelled event advances the clock to
   its fire time); [t.nil] when both are empty. Allocation-free. *)
let pop_queued t =
  match t.wheel with
  | None ->
    let h = Heap.top t.heap in
    if h != t.nil then begin
      Heap.remove_top t.heap;
      t.queued <- t.queued - 1
    end;
    h
  | Some w ->
    let a = Wheel.top w ~default:t.nil in
    let b = Heap.top t.heap in
    if a == t.nil && b == t.nil then t.nil
    else if b == t.nil || (a != t.nil && compare_handle a b <= 0) then begin
      Wheel.drop_head w;
      t.queued <- t.queued - 1;
      a
    end
    else begin
      Heap.remove_top t.heap;
      t.queued <- t.queued - 1;
      b
    end

let pop_next t =
  let h = t.head in
  if h != t.nil then begin
    t.head <- t.nil;
    h
  end
  else pop_queued t

let execute t h =
  if h.at > t.clock then t.clock <- h.at;
  if h.state = 0 then begin
    h.state <- 2;
    t.executed <- t.executed + 1;
    h.action ()
  end
  else if h.state = 1 then decr t.cancels

let step t =
  let h = pop_next t in
  if h == t.nil then false
  else begin
    execute t h;
    true
  end

let run ?until ?max_events t =
  let unt = match until with None -> infinity | Some u -> u in
  let cap = match max_events with None -> max_int | Some m -> m in
  let in_range = ref true in
  while !in_range && t.executed < cap do
    let h = pop_next t in
    if h == t.nil then in_range := false
    else if h.at > unt then begin
      (* un-pop: [h] was the global minimum, so parking it in [head]
         preserves the invariant *)
      t.head <- h;
      in_range := false
    end
    else begin
      if h.at > t.clock then t.clock <- h.at;
      if h.state = 0 then begin
        h.state <- 2;
        t.executed <- t.executed + 1;
        h.action ()
      end
      else if h.state = 1 then decr t.cancels
    end
  done;
  (* when we stopped because the queue drained or the next event lies
     beyond [until], the clock advances to [until] *)
  if not !in_range then
    match until with
    | Some u when u > t.clock -> t.clock <- u
    | Some _ | None -> ()

let events_executed t = t.executed

let events_scheduled t = t.next_seq
