(** Deterministic pseudo-random number generation for simulations.

    Every source of randomness in the simulator flows from a single [t]
    created from a user-supplied seed, so a run is exactly reproducible
    from [(seed, parameters)]. Independent components should each receive
    their own generator obtained with {!split}, which derives a child
    stream that is statistically independent of its parent's future
    output. The implementation is splitmix64 (Steele, Lea & Flood 2014),
    which is fast, has a full 2^64 period, and splits cheaply. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Two generators created with
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent child generator and advances [t].
    Use one child per simulated component. *)

val substream : seed:int -> index:int -> t
(** [substream ~seed ~index] is the [index]-th independent child stream
    of [seed], as a pure function of [(seed, index)] — unlike {!split}
    it does not thread through a parent generator, so a component (e.g.
    a region of the sharded simulation) can derive its stream without
    any sequential dependence on its siblings.
    @raise Invalid_argument if [index < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean.
    @raise Invalid_argument if [mean <= 0]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal sample via Box–Muller. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal sample: [exp (gaussian ~mu ~sigma)]. *)

val geometric : t -> p:float -> int
(** Number of Bernoulli(p) failures before the first success (>= 0).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on
    an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list (O(n)). *)

val pick_other : t -> 'a array -> not_equal:'a -> 'a option
(** Uniform element different from [not_equal] (by structural
    equality); [None] if no such element exists. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] is [k] distinct elements chosen
    uniformly. @raise Invalid_argument if [k < 0] or [k > length arr]. *)
