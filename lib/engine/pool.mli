(** Reusable fixed-size domain pool for embarrassingly parallel loops.

    A pool owns [workers - 1] long-lived worker domains (the submitting
    domain is the remaining worker); {!parallel_for} hands them a
    chunked index range through an atomic cursor and blocks until every
    index has been processed. The pool is reusable across submissions —
    domains are spawned once at {!create} and parked on a condition
    variable between jobs, so a submission costs two lock round-trips,
    not [workers] domain spawns.

    The pool makes no ordering promise between indices of one job;
    callers that need determinism must make each index's work
    self-contained (own RNG, own simulator) and combine results in
    index order afterwards, as {!Experiments.Runner} does. *)

type t

val create : ?workers:int -> unit -> t
(** Pool with [workers] total workers (the caller plus [workers - 1]
    spawned domains). Default {!default_workers}. A 1-worker pool spawns
    no domains and runs jobs inline on the caller.
    @raise Invalid_argument if [workers < 1]. *)

val size : t -> int
(** Total workers, including the submitting domain. *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~n body] runs [body i] for every [0 <= i < n],
    distributing indices over the pool in [chunk]-sized blocks
    (default 1 — right for coarse trial-sized work items). Blocks until
    all indices are done. If one or more [body] calls raise, the
    remaining chunks are abandoned, every worker returns to its parked
    state, and the first-recorded exception is re-raised here — the
    pool stays usable. Submissions must not be nested or concurrent
    (the caller's domain is one of the workers);
    @raise Invalid_argument on a nested submission or [chunk < 1]. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent. The pool must be idle. *)

(** {2 Process-wide job-count setting}

    The experiment runner sizes its shared pool from one process-wide
    setting: [REPRO_JOBS] in the environment, overridden by
    {!set_default_workers} (the [-j] flag), falling back to
    [Domain.recommended_domain_count ()]. [REPRO_JOBS=1] / [-j 1]
    disables parallel execution entirely. *)

val default_workers : unit -> int
(** Current setting, clamped to [1, 128]. *)

val set_default_workers : int -> unit
(** Override the setting (clamped to [1, 128]); the next {!global} call
    re-sizes the shared pool if needed. *)

val global : unit -> t
(** Shared pool sized to {!default_workers}, created on first use and
    transparently replaced (old one shut down) when the setting
    changes. Must only be used from the main domain. *)
