(* Conservative-time barrier driver: windows of one quantum, a barrier
   exchange between windows. Each shard's Sim is touched by exactly one
   domain at a time (Pool.parallel_for hands shard s to a single
   worker, and the submission barrier orders those writes before the
   main-domain exchange), so shards need no locks of their own. *)

let clamp_shards s = if s < 1 then 1 else if s > 128 then 128 else s

(* the process-wide --shards / REPRO_SHARDS setting (main domain only) *)
let shards_setting = ref None

let default_shards () =
  match !shards_setting with
  | Some s -> s
  | None ->
    let s =
      match Option.bind (Sys.getenv_opt "REPRO_SHARDS") int_of_string_opt with
      | Some v -> clamp_shards v
      | None -> 1
    in
    shards_setting := Some s;
    s

let set_default_shards s = shards_setting := Some (clamp_shards s)

let run ~sims ?on_window ?busy ~quantum ~until ~exchange () =
  if quantum <= 0.0 then invalid_arg "Shard.run: quantum must be positive";
  if until < 0.0 then invalid_arg "Shard.run: until must be non-negative";
  let shards = Array.length sims in
  if shards > 0 then begin
    let pool = if shards > 1 then Some (Pool.global ()) else None in
    let windows = int_of_float (Float.ceil (until /. quantum)) in
    let w = ref 1 in
    let quiescent = ref false in
    while (not !quiescent) && !w <= windows do
      let barrier = Float.min (float_of_int !w *. quantum) until in
      (* one shard's window: run to the barrier, then let the owner do
         its barrier-clocked work (ring sweeps) on the same domain —
         the shard's clock sits exactly at [barrier] during the hook *)
      let step s =
        Sim.run ~until:barrier sims.(s);
        match on_window with None -> () | Some f -> f ~shard:s ~barrier
      in
      (* independent shards: any worker interleaving yields the same
         per-shard state, and a 1-worker pool degrades to shard order *)
      (match pool with
       | Some p when Pool.size p > 1 -> Pool.parallel_for p ~n:shards step
       | Some _ | None ->
         for s = 0 to shards - 1 do
           step s
         done);
      let injected = exchange ~barrier in
      (* nothing in flight and nothing queued: every remaining window
         is empty, so skip straight to the final clock advance *)
      if injected = 0 then begin
        let busy_any = ref false in
        for s = 0 to shards - 1 do
          if
            Sim.pending sims.(s) > 0
            || (match busy with None -> false | Some f -> f s)
          then busy_any := true
        done;
        if not !busy_any then quiescent := true
      end;
      incr w
    done;
    (* land every clock exactly at [until] (events scheduled beyond the
       horizon stay queued, matching Sim.run's own contract) *)
    for s = 0 to shards - 1 do
      Sim.run ~until sims.(s)
    done
  end
