(* Allocation-lean binary min-heap.

   Values and insertion sequence numbers live in two parallel arrays so
   a push allocates nothing beyond (amortized) array growth: there is no
   boxed per-entry record. Vacated slots are overwritten with [dummy] so
   the heap never pins popped payloads against the GC. *)

type 'a t = {
  compare_priority : 'a -> 'a -> int;
  initial_capacity : int;
  dummy : 'a;
  mutable data : 'a array;
  mutable seqs : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 64) ~dummy ~compare_priority () =
  if capacity <= 0 then invalid_arg "Heap.create: capacity must be positive";
  {
    compare_priority;
    initial_capacity = capacity;
    dummy;
    data = [||];
    seqs = [||];
    size = 0;
    next_seq = 0;
  }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = Array.length t.data

(* seq breaks ties so equal priorities pop in insertion order *)
let less t i j =
  let c = t.compare_priority t.data.(i) t.data.(j) in
  if c <> 0 then c < 0 else t.seqs.(i) < t.seqs.(j)

let swap t i j =
  let v = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- v;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s

let ensure_room t extra =
  let needed = t.size + extra in
  if needed > Array.length t.data then begin
    let capacity = max t.initial_capacity (max needed (2 * Array.length t.data)) in
    let data = Array.make capacity t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data;
    let seqs = Array.make capacity 0 in
    Array.blit t.seqs 0 seqs 0 t.size;
    t.seqs <- seqs
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && less t left !smallest then smallest := left;
  if right < t.size && less t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t value =
  ensure_room t 1;
  t.data.(t.size) <- value;
  t.seqs.(t.size) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Floyd's bottom-up heap construction: O(n) for a bulk load. *)
let heapify t =
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let push_list t values =
  let n = List.length values in
  if n > 0 then begin
    ensure_room t n;
    List.iter
      (fun v ->
        t.data.(t.size) <- v;
        t.seqs.(t.size) <- t.next_seq;
        t.next_seq <- t.next_seq + 1;
        t.size <- t.size + 1)
      values;
    (* a bulk load into an empty heap can use linear heapify; otherwise
       restore the invariant per appended element *)
    if t.size = n then heapify t
    else
      for i = t.size - n to t.size - 1 do
        sift_up t i
      done
  end

let peek t = if t.size = 0 then None else Some t.data.(0)

let top t = if t.size = 0 then t.dummy else t.data.(0)

let remove_top t =
  if t.size > 0 then begin
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.seqs.(0) <- t.seqs.(t.size)
    end;
    (* release the vacated slot so the GC can reclaim the value *)
    t.data.(t.size) <- t.dummy;
    if t.size > 0 then sift_down t 0
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    remove_top t;
    Some top
  end

let filter_in_place t keep =
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    if keep t.data.(i) then begin
      if !kept <> i then begin
        t.data.(!kept) <- t.data.(i);
        t.seqs.(!kept) <- t.seqs.(i)
      end;
      incr kept
    end
  done;
  for i = !kept to t.size - 1 do
    t.data.(i) <- t.dummy
  done;
  t.size <- !kept;
  heapify t

let clear t =
  (* shrink: drop the backing arrays entirely so a long-lived heap does
     not pin a high-water-mark's worth of dead values *)
  t.data <- [||];
  t.seqs <- [||];
  t.size <- 0;
  t.next_seq <- 0

let to_list_unordered t =
  let rec collect i acc = if i < 0 then acc else collect (i - 1) (t.data.(i) :: acc) in
  collect (t.size - 1) []
