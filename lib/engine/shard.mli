(** Conservative-time coordinator for region-sharded simulations.

    A sharded simulation partitions its regions over [S] independent
    {!Sim} instances ("shards"). Within a window of one deadline-ring
    quantum every shard runs alone — no shared mutable state — and at
    each window boundary (the barrier) the caller-supplied [exchange]
    callback injects the cross-shard traffic that was posted during the
    window (see {!Netsim.Fabric}). The scheme is conservative in the
    PDES sense: as long as every cross-region delay is at least one
    quantum, a message posted inside window [w] can only fire strictly
    after barrier [w], so no shard ever receives an event in its past.

    Determinism: shards share nothing between barriers and [exchange]
    injects parcels in a fixed region order, so the observable result
    is byte-identical for every shard count and worker count — the
    shard-structure analogue of the [-j] identity guarantee (worker
    parallelism comes from {!Pool.global}, which is already
    order-free). *)

val run :
  sims:Sim.t array ->
  ?on_window:(shard:int -> barrier:float -> unit) ->
  ?busy:(int -> bool) ->
  quantum:float ->
  until:float ->
  exchange:(barrier:float -> int) ->
  unit ->
  unit
(** [run ~sims ~quantum ~until ~exchange ()] drives every shard to
    virtual time [until] in lock-step windows of [quantum]
    milliseconds. After each window the shards' clocks all sit exactly
    at the barrier and [exchange ~barrier] must schedule all pending
    cross-shard parcels (returning how many it injected); when every
    shard is quiescent and an exchange injects nothing, the remaining
    empty windows are skipped. Windows run on {!Pool.global} when more
    than one shard and more than one worker are configured, otherwise
    inline in shard order — the result is identical either way.

    [on_window ~shard ~barrier] runs at the end of every shard's
    window, on the domain that ran the window and with the shard's
    clock sitting exactly at [barrier] — the hook barrier-driven
    deadline rings ({!Rrmp.Member_soa.sweep_until}) sweep from, so a
    shard-wide ring needs no Sim events of its own. [busy shard] is
    consulted by the quiescence check (on the coordinating domain,
    between windows): a shard reporting [true] — e.g. armed ring
    deadlines ({!Rrmp.Member_soa.deadlines_pending}) — keeps the window
    loop alive even when every Sim queue is empty.
    @raise Invalid_argument if [quantum <= 0] or [until < 0]. *)

(** {2 Process-wide shard-count setting}

    Mirrors {!Pool.default_workers} / [REPRO_JOBS]: the sharded
    experiments split their regions over [REPRO_SHARDS] shards,
    overridden by {!set_default_shards} (the [--shards] flag). The
    default is 1 — sharding is opt-in, and because of the identity
    guarantee the setting never changes seeded output, only wall-clock
    behaviour. *)

val default_shards : unit -> int
(** Current setting, clamped to [1, 128]. *)

val set_default_shards : int -> unit
(** Override the setting (clamped to [1, 128]). *)
