module Idle = struct
  (* Touch-heavy idle timers (RRMP resets one on *every* recovery
     request) rely on [Sim.cancel] being a lazy O(1) state flip and on
     the scheduler's bulk compaction to reap the churn; the reschedule
     itself is an O(1) wheel insert. The eager cancel+re-arm (rather
     than a lazily re-armed deadline) keeps the replacement event's
     sequence number assigned at touch time, so FIFO ordering among
     same-instant events — and therefore seeded runs — is unchanged. *)
  type t = {
    sim : Sim.t;
    timeout : float;
    on_idle : unit -> unit;
    mutable handle : Sim.handle option;
  }

  let arm t =
    let handle =
      Sim.schedule t.sim ~delay:t.timeout (fun () ->
          t.handle <- None;
          t.on_idle ())
    in
    t.handle <- Some handle

  let create sim ~timeout ~on_idle =
    let t = { sim; timeout; on_idle; handle = None } in
    arm t;
    t

  let stop t =
    match t.handle with
    | None -> ()
    | Some handle ->
      Sim.cancel handle;
      t.handle <- None

  let touch t =
    match t.handle with
    | None -> ()
    | Some handle ->
      Sim.cancel handle;
      arm t

  let restart t =
    stop t;
    arm t

  let active t = t.handle <> None
end

module Periodic = struct
  type t = {
    sim : Sim.t;
    interval : float;
    jitter : (unit -> float) option;
    tick : unit -> unit;
    mutable handle : Sim.handle option;
    mutable stopped : bool;
  }

  let next_delay t =
    let extra = match t.jitter with None -> 0.0 | Some j -> j () in
    Float.max (t.interval +. extra) Float.epsilon

  let rec arm t =
    let handle =
      Sim.schedule t.sim ~delay:(next_delay t) (fun () ->
          if not t.stopped then begin
            t.tick ();
            if not t.stopped then arm t
          end)
    in
    t.handle <- Some handle

  let create ?jitter sim ~interval tick =
    let t = { sim; interval; jitter; tick; handle = None; stopped = false } in
    arm t;
    t

  let stop t =
    t.stopped <- true;
    match t.handle with
    | None -> ()
    | Some handle ->
      Sim.cancel handle;
      t.handle <- None

  let active t = not t.stopped
end
