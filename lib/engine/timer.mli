(** Timer utilities built on {!Sim}. *)

(** A timer that fires once after a period with no activity; every
    {!Idle.touch} pushes the deadline back. This is exactly the shape of
    RRMP's idle-threshold detection: "no request received for T ms".

    Each [Idle] owns a scheduler entry, and [touch] cancels and
    re-arms it — exact, but costly when thousands of deadlines are
    touched per simulated second. For large populations of coalescable
    deadlines use {!Dring}, which trades at most one quantum of firing
    lateness for O(1) allocation-free touches and one scheduler entry
    per deadline bucket. [Idle] remains the exact-semantics reference
    that {!Dring} is lockstep-tested against. *)
module Idle : sig
  type t

  val create : Sim.t -> timeout:float -> on_idle:(unit -> unit) -> t
  (** Starts armed: with no touches, [on_idle] fires [timeout] ms from
      now. [on_idle] runs at most once unless {!restart} is called. *)

  val touch : t -> unit
  (** Reset the quiet period. No-op after the timer fired or was
      stopped. *)

  val stop : t -> unit
  (** Disarm without firing. *)

  val restart : t -> unit
  (** Re-arm a fired or stopped timer for a fresh quiet period. *)

  val active : t -> bool
end

(** A fixed-interval repeating timer. *)
module Periodic : sig
  type t

  val create : ?jitter:(unit -> float) -> Sim.t -> interval:float -> (unit -> unit) -> t
  (** First tick after one interval (plus jitter, if any). [jitter]
      is sampled per tick and added to the interval; the result is
      clamped to be positive. *)

  val stop : t -> unit

  val active : t -> bool
end
