(* splitmix64 (Steele, Lea & Flood 2014) with the murmur-style variant-13
   finalizer.

   The 64-bit state lives in an 8-byte [Bytes.t] accessed through the
   native-endian [get_int64_ne]/[set_int64_ne] primitives rather than a
   mutable [int64] record field: a boxed-int64 field costs a fresh
   3-word box on every store, which would charge every random draw on
   the simulation hot paths. With the Bytes backing, the integer and
   boolean draws below keep the whole scramble in unboxed locals and
   allocate nothing; only the [float]-returning draws pay the 2-word
   result box the calling convention requires. The output stream is
   bit-for-bit the same as the boxed implementation. *)

type t = { state : Bytes.t }

let golden_gamma = 0x9E3779B97F4A7C15L

let of_raw v =
  let state = Bytes.create 8 in
  Bytes.set_int64_ne state 0 v;
  { state }

let create ~seed = of_raw (Int64.of_int seed)

let copy t = of_raw (Bytes.get_int64_ne t.state 0)

(* advance by the golden gamma and scramble. Open-coded (rather than
   shared through a [bits64]-style helper) in each non-float draw so
   the int64 chain stays in registers end to end: a cross-function
   int64 return is a boxed value even when the callee allocates
   nothing internally. *)
let bits64 t =
  let s = Int64.add (Bytes.get_int64_ne t.state 0) golden_gamma in
  Bytes.set_int64_ne t.state 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = of_raw (bits64 t)

(* the [index]-th child stream of [seed], without materializing the
   parent: offset the state by index gammas and scramble once, so
   [substream ~seed ~index] is a pure function of its arguments — the
   sharded simulation derives one stream per region this way, making
   every region's randomness independent of the region-to-shard
   assignment *)
let substream ~seed ~index =
  if index < 0 then invalid_arg "Rng.substream: index must be non-negative";
  let t =
    of_raw (Int64.add (Int64.of_int seed) (Int64.mul golden_gamma (Int64.of_int index)))
  in
  of_raw (bits64 t)

(* 62 random bits: always representable as a non-negative OCaml int *)
let nonneg t =
  let s = Int64.add (Bytes.get_int64_ne t.state 0) golden_gamma in
  Bytes.set_int64_ne t.state 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let max_int63 = max_int in
  let limit = max_int63 - (max_int63 mod bound) in
  let rec draw () =
    let v = nonneg t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let uniform t =
  (* 53 random bits mapped to [0,1) *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let bool t =
  let s = Int64.add (Bytes.get_int64_ne t.state 0) golden_gamma in
  Bytes.set_int64_ne t.state 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.logand z 1L = 1L

let bernoulli t ~p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else begin
    (* uniform, open-coded so the comparison happens before the float
       would need to be boxed as a return value *)
    let s = Int64.add (Bytes.get_int64_ne t.state 0) golden_gamma in
    Bytes.set_int64_ne t.state 0 s;
    let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let bits = Int64.shift_right_logical z 11 in
    Int64.to_float bits *. (1.0 /. 9007199254740992.0) < p
  end

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. uniform t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. uniform t and u2 = uniform t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. uniform t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let pick t arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t n)

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let pick_other t arr ~not_equal =
  let candidates = Array.of_seq (Seq.filter (fun x -> x <> not_equal) (Array.to_seq arr)) in
  if Array.length candidates = 0 then None else Some (pick t candidates)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let scratch = Array.copy arr in
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = scratch.(i) in
    scratch.(i) <- scratch.(j);
    scratch.(j) <- tmp
  done;
  Array.sub scratch 0 k
