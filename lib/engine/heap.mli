(** Growable binary min-heap used as the simulator's event queue.

    Elements are ordered by a caller-supplied priority; ties are broken
    by insertion order (FIFO among equal priorities), which makes event
    execution deterministic.

    The implementation is allocation-lean: values and sequence numbers
    are stored in parallel arrays (no per-entry box), and every vacated
    slot is overwritten with the caller-supplied [dummy] value so popped
    payloads are never pinned against the GC. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> compare_priority:('a -> 'a -> int) -> unit -> 'a t
(** [create ~dummy ~compare_priority ()] is an empty heap.
    [compare_priority] must be a total order on priorities. [dummy] is a
    throwaway value used to fill unused and vacated slots; it is never
    returned by {!pop}/{!peek}. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Physical size of the backing arrays (for introspection/tests). *)

val push : 'a t -> 'a -> unit

val push_list : 'a t -> 'a list -> unit
(** Bulk insert, FIFO-ordered within the list among equal priorities.
    A bulk load into an empty heap uses O(n) bottom-up heapify. *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val top : 'a t -> 'a
(** Like {!peek} but allocation-free: returns [dummy] when empty (check
    {!is_empty} to disambiguate). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element; FIFO among ties. *)

val remove_top : 'a t -> unit
(** Remove the smallest element without returning it (allocation-free;
    no-op when empty). Pair with {!top}. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Drop every element for which the predicate is false, then restore
    the heap invariant (O(n)). Relative FIFO order among surviving
    equal-priority elements is preserved. *)

val clear : 'a t -> unit
(** Empty the heap and release the backing arrays (so a long-running
    simulation does not pin dead payloads). *)

val to_list_unordered : 'a t -> 'a list
(** All elements, in unspecified order (for inspection/tests). *)
