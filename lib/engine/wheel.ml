(* Hierarchical timer wheel.

   Three levels of power-of-two slot arrays bucket entries by integer
   tick (= time / granularity):

     level 0: 256 slots x 1 tick        (the fine window)
     level 1:  64 slots x 256 ticks
     level 2:  64 slots x 16384 ticks

   for a total horizon of 2^20 ticks past the cursor. [add] and lazy
   cancellation are O(1); entries in coarse slots cascade down exactly
   once per level as the cursor crosses window boundaries.

   Exact ordering: buckets are unsorted; when the cursor reaches a
   non-empty slot its entries are sorted once (by the caller-supplied
   total order, normally (time, seq)) into the [ready] list, which is
   drained front-first. Entries added behind the cursor — including
   "now"-ish events scheduled while draining — are merge-inserted into
   [ready], so pop order equals the global total order regardless of
   bucketing. *)

let lv0_bits = 8
let lv0_slots = 1 lsl lv0_bits (* 256 *)
let lv1_bits = 6
let lv1_slots = 1 lsl lv1_bits (* 64 *)
let lv2_bits = 6
let lv2_slots = 1 lsl lv2_bits (* 64 *)
let lv1_span = lv0_slots (* ticks per level-1 slot *)
let lv2_span = lv0_slots * lv1_slots (* ticks per level-2 slot *)
let horizon_ticks = lv0_slots * lv1_slots * lv2_slots (* 2^20 *)

type 'a t = {
  granularity : float;
  time_of : 'a -> float;
  compare : 'a -> 'a -> int;
  lv0 : 'a list array;
  lv1 : 'a list array;
  lv2 : 'a list array;
  mutable lv0_lo : int; (* window starts, aligned to the level span *)
  mutable lv1_lo : int;
  mutable lv2_lo : int;
  mutable cursor : int; (* next tick not yet drained; within the lv0 window *)
  mutable c0 : int; (* entries per level *)
  mutable c1 : int;
  mutable c2 : int;
  mutable ready : 'a list; (* drained entries, sorted by [compare] *)
  mutable ready_len : int;
}

let create ?(granularity = 1.0) ?(start = 0.0) ~time_of ~compare () =
  if granularity <= 0.0 then invalid_arg "Wheel.create: granularity must be positive";
  if start < 0.0 then invalid_arg "Wheel.create: start must be non-negative";
  let tick = int_of_float (start /. granularity) in
  {
    granularity;
    time_of;
    compare;
    lv0 = Array.make lv0_slots [];
    lv1 = Array.make lv1_slots [];
    lv2 = Array.make lv2_slots [];
    lv0_lo = tick land lnot (lv1_span - 1);
    lv1_lo = tick land lnot (lv2_span - 1);
    lv2_lo = tick land lnot (horizon_ticks - 1);
    cursor = tick;
    c0 = 0;
    c1 = 0;
    c2 = 0;
    ready = [];
    ready_len = 0;
  }

let granularity t = t.granularity

let length t = t.c0 + t.c1 + t.c2 + t.ready_len

let is_empty t = length t = 0

let tick_of t at = int_of_float (at /. t.granularity)

let horizon t = float_of_int (t.lv2_lo + horizon_ticks) *. t.granularity

(* re-align every window so [tick] sits at the cursor; only valid when
   the wheel is empty *)
let rebase t tick =
  t.cursor <- tick;
  t.lv0_lo <- tick land lnot (lv1_span - 1);
  t.lv1_lo <- tick land lnot (lv2_span - 1);
  t.lv2_lo <- tick land lnot (horizon_ticks - 1)

let rec insert_sorted cmp v = function
  | [] -> [ v ]
  | x :: rest as l -> if cmp v x <= 0 then v :: l else x :: insert_sorted cmp v rest

(* place an entry whose tick is >= cursor into the right level bucket *)
let place t tick v =
  if tick < t.lv0_lo + lv1_span then begin
    let i = tick land (lv0_slots - 1) in
    t.lv0.(i) <- v :: t.lv0.(i);
    t.c0 <- t.c0 + 1
  end
  else if tick < t.lv1_lo + lv2_span then begin
    let i = (tick lsr lv0_bits) land (lv1_slots - 1) in
    t.lv1.(i) <- v :: t.lv1.(i);
    t.c1 <- t.c1 + 1
  end
  else begin
    let i = (tick lsr (lv0_bits + lv1_bits)) land (lv2_slots - 1) in
    t.lv2.(i) <- v :: t.lv2.(i);
    t.c2 <- t.c2 + 1
  end

let add t v =
  let tick = tick_of t (t.time_of v) in
  if t.c0 = 0 && t.c1 = 0 && t.c2 = 0 && t.ready_len = 0 && tick > t.cursor then
    (* empty wheel: jump the windows straight to the new entry instead
       of cascading across the gap later *)
    rebase t tick;
  if tick < t.cursor then begin
    (* behind the cursor (the slot was already drained): merge straight
       into the ready list, preserving the total order *)
    t.ready <- insert_sorted t.compare v t.ready;
    t.ready_len <- t.ready_len + 1;
    true
  end
  else if tick >= t.lv2_lo + horizon_ticks then false
  else begin
    place t tick v;
    true
  end

(* move one coarse slot's entries down a level; their ticks all lie in
   the window the cursor just entered *)
let cascade t entries count_field =
  (match count_field with
   | `C1 n -> t.c1 <- t.c1 - n
   | `C2 n -> t.c2 <- t.c2 - n);
  List.iter (fun v -> place t (tick_of t (t.time_of v)) v) entries

(* the cursor reached the end of the level-0 window: shift windows and
   cascade the next coarse slot(s) down *)
let shift_windows t =
  t.lv0_lo <- t.lv0_lo + lv1_span;
  if t.lv0_lo = t.lv1_lo + lv2_span then begin
    t.lv1_lo <- t.lv1_lo + lv2_span;
    if t.lv1_lo = t.lv2_lo + horizon_ticks then t.lv2_lo <- t.lv2_lo + horizon_ticks;
    let i2 = (t.lv1_lo lsr (lv0_bits + lv1_bits)) land (lv2_slots - 1) in
    let entries = t.lv2.(i2) in
    if entries <> [] then begin
      t.lv2.(i2) <- [];
      cascade t entries (`C2 (List.length entries))
    end
  end;
  let i1 = (t.lv0_lo lsr lv0_bits) land (lv1_slots - 1) in
  let entries = t.lv1.(i1) in
  if entries <> [] then begin
    t.lv1.(i1) <- [];
    cascade t entries (`C1 (List.length entries))
  end

(* advance the cursor until [ready] is non-empty or the wheel drains *)
let refill t =
  while t.ready_len = 0 && t.c0 + t.c1 + t.c2 > 0 do
    if t.c0 = 0 then begin
      (* nothing in the fine window: jump to its end and cascade *)
      t.cursor <- t.lv0_lo + lv1_span;
      shift_windows t
    end
    else begin
      let i = t.cursor land (lv0_slots - 1) in
      let bucket = t.lv0.(i) in
      if bucket <> [] then begin
        t.lv0.(i) <- [];
        let n = List.length bucket in
        t.c0 <- t.c0 - n;
        t.ready <- (match bucket with [ _ ] -> bucket | _ -> List.sort t.compare bucket);
        t.ready_len <- n
      end;
      t.cursor <- t.cursor + 1;
      if t.cursor = t.lv0_lo + lv1_span then shift_windows t
    end
  done

let top t ~default =
  if t.ready_len = 0 then refill t;
  match t.ready with [] -> default | x :: _ -> x

let peek t =
  if t.ready_len = 0 then refill t;
  match t.ready with [] -> None | x :: _ -> Some x

let drop_head t =
  match t.ready with
  | [] -> ()
  | _ :: rest ->
    t.ready <- rest;
    t.ready_len <- t.ready_len - 1

let pop t =
  if t.ready_len = 0 then refill t;
  match t.ready with
  | [] -> None
  | x :: rest ->
    t.ready <- rest;
    t.ready_len <- t.ready_len - 1;
    Some x

let filter_level slots keep =
  let removed = ref 0 in
  Array.iteri
    (fun i bucket ->
      match bucket with
      | [] -> ()
      | bucket ->
        let kept = List.filter keep bucket in
        removed := !removed + (List.length bucket - List.length kept);
        slots.(i) <- kept)
    slots;
  !removed

let filter_in_place t keep =
  t.c0 <- t.c0 - filter_level t.lv0 keep;
  t.c1 <- t.c1 - filter_level t.lv1 keep;
  t.c2 <- t.c2 - filter_level t.lv2 keep;
  let ready = List.filter keep t.ready in
  t.ready <- ready;
  t.ready_len <- List.length ready

let clear t =
  Array.fill t.lv0 0 lv0_slots [];
  Array.fill t.lv1 0 lv1_slots [];
  Array.fill t.lv2 0 lv2_slots [];
  t.c0 <- 0;
  t.c1 <- 0;
  t.c2 <- 0;
  t.ready <- [];
  t.ready_len <- 0

let to_list_unordered t =
  let acc = ref t.ready in
  let grab slots = Array.iter (fun b -> List.iter (fun v -> acc := v :: !acc) b) slots in
  grab t.lv0;
  grab t.lv1;
  grab t.lv2;
  !acc
