(* One job = one chunked index range. Workers pull chunks through the
   atomic cursor until it passes [n]; a failing chunk records the first
   exception and slams the cursor to [n] so the other workers stop at
   their next pull instead of burning through doomed work. *)
type job = {
  n : int;
  chunk : int;
  cursor : int Atomic.t;
  body : int -> unit;
  failed : exn option Atomic.t;
}

type t = {
  mutable domains : unit Domain.t array;
  total : int; (* workers including the submitting domain *)
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable epoch : int; (* bumped per submission; wakes parked workers *)
  mutable remaining : int; (* spawned workers still on the current job *)
  mutable stop : bool;
}

let size t = t.total

let drain job =
  let rec loop () =
    let lo = Atomic.fetch_and_add job.cursor job.chunk in
    if lo < job.n then begin
      let hi = Int.min (lo + job.chunk) job.n in
      (try
         for i = lo to hi - 1 do
           job.body i
         done
       with e ->
         ignore (Atomic.compare_and_set job.failed None (Some e));
         Atomic.set job.cursor job.n);
      loop ()
    end
  in
  loop ()

let worker t () =
  let epoch = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stop) && t.epoch = !epoch do
      Condition.wait t.work_ready t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      epoch := t.epoch;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.m;
      drain job;
      Mutex.lock t.m;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let clamp_workers w = if w < 1 then 1 else if w > 128 then 128 else w

(* the process-wide -j / REPRO_JOBS setting (main domain only) *)
let jobs_setting = ref None

let[@lint.allow
     "P jobs_setting is a main-domain-only process setting (see the \
      .mli contract); workers never call default_workers"] default_workers
    () =
  match !jobs_setting with
  | Some j -> j
  | None ->
    let j =
      match Option.bind (Sys.getenv_opt "REPRO_JOBS") int_of_string_opt with
      | Some v -> clamp_workers v
      | None -> clamp_workers (Domain.recommended_domain_count ())
    in
    jobs_setting := Some j;
    j

let set_default_workers w = jobs_setting := Some (clamp_workers w)

let create ?workers () =
  let total =
    match workers with
    | None -> default_workers ()
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Pool.create: workers must be >= 1"
  in
  let t =
    {
      domains = [||];
      total;
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      remaining = 0;
      stop = false;
    }
  in
  t.domains <- Array.init (total - 1) (fun _ -> Domain.spawn (worker t));
  t

let parallel_for t ?(chunk = 1) ~n body =
  if chunk < 1 then invalid_arg "Pool.parallel_for: chunk must be >= 1";
  if n > 0 then begin
    let job = { n; chunk; cursor = Atomic.make 0; body; failed = Atomic.make None } in
    if Array.length t.domains = 0 then drain job
    else begin
      Mutex.lock t.m;
      (match t.job with
       | Some _ ->
         Mutex.unlock t.m;
         invalid_arg "Pool.parallel_for: nested or concurrent submission"
       | None -> ());
      t.job <- Some job;
      t.epoch <- t.epoch + 1;
      t.remaining <- Array.length t.domains;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.m;
      (* the submitting domain is a worker too *)
      drain job;
      Mutex.lock t.m;
      while t.remaining > 0 do
        Condition.wait t.work_done t.m
      done;
      t.job <- None;
      Mutex.unlock t.m
    end;
    match Atomic.get job.failed with Some e -> raise e | None -> ()
  end

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let global_pool = ref None

let[@lint.allow
     "P global_pool is created and swapped from the main domain only \
      (process-wide setting per the .mli); tasks never reach global"] global
    () =
  let want = default_workers () in
  match !global_pool with
  | Some p when p.total = want -> p
  | prev ->
    (match prev with Some p -> shutdown p | None -> ());
    let p = create ~workers:want () in
    global_pool := Some p;
    p
