(* Coalesced deadline ring.

   One ring replaces a population of per-entry idle timers: entries are
   bucketed by quantized deadline tick (ceil (deadline / quantum)), and
   a single {!Sim} event per non-empty bucket sweeps all entries whose
   deadline falls in that quantum. [touch] is a pure O(1) field write —
   no [Sim.cancel], no re-schedule — using the same lazy-invalidate
   trick as {!Sim}'s cancels: a swept entry whose deadline has moved to
   a later tick is silently re-bucketed instead of fired.

   Firing is late by construction, never early: a bucket's sweep runs at
   [tick * quantum >= deadline], so an entry expires within
   [quantum) ms after its exact deadline (exactly on it when the
   deadline is tick-aligned). Fire order within one sweep is insertion
   order, which together with {!Sim}'s (time, seq) total order keeps
   runs deterministic. *)

module Make (Key : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (Key)

  type entry = {
    key : Key.t;
    timeout : float;  (* immutable: quiet period granted by the last add *)
    mutable due_tick : int;  (* ceil ((last_activity + timeout) / quantum) *)
    mutable live : bool;
  }

  type bucket = { mutable pending : entry list (* reverse insertion order *); handle : Sim.handle }

  type t = {
    sim : Sim.t;
    quantum : float;
    on_expire : Key.t -> unit;
    entries : entry Tbl.t;  (* live entries only *)
    buckets : (int, bucket) Hashtbl.t;  (* tick -> its scheduled sweep *)
  }

  let create sim ~quantum ~on_expire =
    if not (quantum > 0.0) then invalid_arg "Dring.create: quantum must be positive";
    { sim; quantum; on_expire; entries = Tbl.create 64; buckets = Hashtbl.create 16 }

  let quantum t = t.quantum

  let length t = Tbl.length t.entries

  let mem t key = Tbl.mem t.entries key

  (* allocation-free: all float temporaries stay unboxed *)
  let[@inline] tick_of t at = int_of_float (Float.ceil (at /. t.quantum))

  let rec place t e =
    let tick = e.due_tick in
    match Hashtbl.find_opt t.buckets tick with
    | Some b -> b.pending <- e :: b.pending
    | None ->
      let at = float_of_int tick *. t.quantum in
      let b = { pending = [ e ]; handle = Sim.schedule_at t.sim ~at (fun () -> sweep t tick) } in
      Hashtbl.add t.buckets tick b

  and sweep t tick =
    match Hashtbl.find_opt t.buckets tick with
    | None -> ()
    | Some b ->
      Hashtbl.remove t.buckets tick;
      List.iter
        (fun e ->
          if e.live then begin
            if e.due_tick > tick then place t e  (* touched since bucketing: defer *)
            else begin
              e.live <- false;
              Tbl.remove t.entries e.key;
              t.on_expire e.key
            end
          end)
        (List.rev b.pending)

  let stop t key =
    match Tbl.find_opt t.entries key with
    | None -> ()
    | Some e ->
      e.live <- false;  (* the bucket sweep drops it lazily *)
      Tbl.remove t.entries key

  let add t key ~timeout =
    if not (timeout > 0.0) then invalid_arg "Dring.add: timeout must be positive";
    stop t key;
    let e = { key; timeout; due_tick = tick_of t (Sim.now t.sim +. timeout); live = true } in
    Tbl.add t.entries key e;
    place t e

  let touch t key =
    match Tbl.find t.entries key with
    | e ->
      (* the quantization is written out so every float temporary stays
         unboxed even without cross-function inlining: touch must not
         allocate *)
      e.due_tick <- int_of_float (Float.ceil ((Sim.now t.sim +. e.timeout) /. t.quantum))
    | exception Not_found -> ()

  let clear t =
    (* teardown is deterministic by construction: sweeps are cancelled
       in tick order, never in hash-layout order *)
    let sweeps =
      Hashtbl.fold (fun tick b acc -> (tick, b) :: acc) t.buckets []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    List.iter (fun (_, b) -> Sim.cancel b.handle) sweeps;
    Hashtbl.reset t.buckets;
    Tbl.reset t.entries

  let pending_sweeps t = Hashtbl.length t.buckets
end
