(* Watermark + bitset-window loss detector.

   The state is a contiguous-delivery watermark [base] (every seq in
   [0, base) has been received) plus a byte-packed bitset recording
   receipt of the out-of-order seqs at and above the watermark. The
   bitset covers the absolute range [origin, origin + 8*|bits|);
   [origin] trails [base] and the window slides forward (in-place blit
   when possible) as the watermark advances, so the footprint is
   O(reorder window), not O(session length). All counters (missing,
   received) are maintained incrementally, making [note_data],
   [received], [received_count] and [missing_count] allocation-free
   and O(1) amortized. *)

type t = {
  mutable base : int;  (* every seq in [0, base) has been received *)
  mutable origin : int;  (* absolute seq of bit 0; origin <= base, 8-aligned *)
  mutable bits : Bytes.t;  (* receipt flags for seqs >= base *)
  mutable horizon : int;  (* all seqs <= horizon are known to exist; -1 initially *)
  mutable received_above : int;  (* set bits at positions >= base *)
  mutable missing_cnt : int;  (* detected losses not yet repaired *)
}

let initial_bytes = 64 (* a 512-seq window before the first resize *)

let create () =
  {
    base = 0;
    origin = 0;
    bits = Bytes.make initial_bytes '\000';
    horizon = -1;
    received_above = 0;
    missing_cnt = 0;
  }

let capacity t = 8 * Bytes.length t.bits

let received t seq =
  if seq < t.base then seq >= 0
  else
    let i = seq - t.origin in
    i < capacity t
    && Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

(* make the window cover [seq]: slide its start up to the watermark's
   byte, reusing the buffer in place when the span still fits and
   doubling it otherwise *)
let ensure t seq =
  if seq - t.origin >= capacity t then begin
    let new_origin = t.base land lnot 7 in
    let len = Bytes.length t.bits in
    let keep_from = (new_origin - t.origin) lsr 3 in
    let keep_len = len - keep_from in
    let needed =
      let n = ref len in
      while (8 * !n) - (seq - new_origin) <= 0 do
        n := 2 * !n
      done;
      !n
    in
    if needed = len then begin
      Bytes.blit t.bits keep_from t.bits 0 keep_len;
      Bytes.fill t.bits keep_len (len - keep_len) '\000'
    end
    else begin
      let fresh = Bytes.make needed '\000' in
      if keep_len > 0 then Bytes.blit t.bits keep_from fresh 0 keep_len;
      t.bits <- fresh
    end;
    t.origin <- new_origin
  end

(* slide the watermark over the received prefix; every bit it passes
   was counted in [received_above] when set *)
let advance_base t =
  let continue = ref true in
  while !continue do
    let i = t.base - t.origin in
    if
      i < capacity t
      && Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then begin
      t.base <- t.base + 1;
      t.received_above <- t.received_above - 1
    end
    else continue := false
  done

(* record receipt of a seq >= base that is not yet received *)
let mark t seq =
  ensure t seq;
  let i = seq - t.origin in
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))));
  t.received_above <- t.received_above + 1;
  if seq = t.base then advance_base t

(* unreceived seqs in (horizon, upto], ascending; they become detected
   losses *)
let fresh_gaps t ~upto =
  let fresh = ref [] in
  for s = upto downto t.horizon + 1 do
    if not (received t s) then begin
      fresh := s :: !fresh;
      t.missing_cnt <- t.missing_cnt + 1
    end
  done;
  !fresh

let note_data t seq =
  if seq < 0 then invalid_arg "Gap_detect.note_data: negative seq";
  if received t seq then `Duplicate
  else begin
    if seq <= t.horizon then t.missing_cnt <- t.missing_cnt - 1;
    (* a data packet proves every lower seq exists, but not itself lost *)
    let gaps = fresh_gaps t ~upto:(seq - 1) in
    if seq > t.horizon then t.horizon <- seq;
    mark t seq;
    `Fresh gaps
  end

let note_session t ~max_seq =
  if max_seq < 0 then invalid_arg "Gap_detect.note_session: negative seq";
  if max_seq <= t.horizon then []
  else begin
    let gaps = fresh_gaps t ~upto:max_seq in
    t.horizon <- max_seq;
    gaps
  end

let note_repaired t seq =
  if seq >= 0 && not (received t seq) then begin
    if seq <= t.horizon then t.missing_cnt <- t.missing_cnt - 1;
    mark t seq
  end

let missing t =
  let acc = ref [] in
  for s = t.horizon downto t.base do
    if not (received t s) then acc := s :: !acc
  done;
  !acc

let missing_count t = t.missing_cnt

let highest_seen t = if t.horizon < 0 then None else Some t.horizon

let received_count t = t.base + t.received_above

let digest t = (t.horizon, missing t)
