type t = {
  per_source : Gap_detect.t Node_id.Table.t;
  mutable duplicates : int;
}

type verdict = Fresh of Msg_id.t list | Duplicate

let create () = { per_source = Node_id.Table.create 4; duplicates = 0 }

(* find (not find_opt): the steady-state hit costs no [Some] box, so
   duplicate-delivery probes stay allocation-free *)
let detector t source =
  match Node_id.Table.find t.per_source source with
  | d -> d
  | exception Not_found ->
    let d = Gap_detect.create () in
    Node_id.Table.add t.per_source source d;
    d

let ids_of source seqs = List.map (fun seq -> Msg_id.make ~source ~seq) seqs

let note_data t id =
  let source = Msg_id.source id in
  match Gap_detect.note_data (detector t source) (Msg_id.seq id) with
  | `Duplicate ->
    t.duplicates <- t.duplicates + 1;
    Duplicate
  | `Fresh gaps -> Fresh (ids_of source gaps)

let note_session t ~source ~max_seq =
  ids_of source (Gap_detect.note_session (detector t source) ~max_seq)

let note_repaired t id =
  let d = detector t (Msg_id.source id) in
  if Gap_detect.received d (Msg_id.seq id) then begin
    t.duplicates <- t.duplicates + 1;
    false
  end
  else begin
    Gap_detect.note_repaired d (Msg_id.seq id);
    true
  end

let received t id = Gap_detect.received (detector t (Msg_id.source id)) (Msg_id.seq id)

let[@lint.allow
     "D2 generic per-source fold: every exported consumer either sorts the result \
      (missing, sources, digest) or accumulates commutatively (counts)"] fold f t init =
  Node_id.Table.fold (fun source d acc -> f source d acc) t.per_source init

let missing t =
  fold (fun source d acc -> List.rev_append (ids_of source (Gap_detect.missing d)) acc) t []
  |> List.sort Msg_id.compare

let missing_count t = fold (fun _ d acc -> acc + Gap_detect.missing_count d) t 0

let received_count t = fold (fun _ d acc -> acc + Gap_detect.received_count d) t 0

let duplicates t = t.duplicates

let sources t = fold (fun source _ acc -> source :: acc) t [] |> List.sort Node_id.compare

type digest = (Node_id.t * (int * int list)) list

let digest t =
  fold (fun source d acc -> (source, Gap_detect.digest d) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)

let digest_has digest id =
  match List.assoc_opt (Msg_id.source id) digest with
  | None -> false
  | Some (horizon, missing) ->
    let seq = Msg_id.seq id in
    seq <= horizon && not (List.mem seq missing)

(* indexed digest: per-source (horizon, sorted missing array), sorted
   by source, so membership probes are two binary searches *)
type indexed = (Node_id.t * int * int array) array

let index digest =
  let arr =
    Array.of_list
      (List.map
         (fun (source, (horizon, missing)) -> (source, horizon, Array.of_list missing))
         digest)
  in
  (* wire digests are already source-sorted with ascending missing
     lists; sort defensively so the index never depends on that *)
  Array.sort (fun (a, _, _) (b, _, _) -> Node_id.compare a b) arr;
  Array.iter (fun (_, _, m) -> Array.sort Int.compare m) arr;
  arr

let mem_sorted (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get a mid < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && Array.unsafe_get a !lo = x

let indexed_has (idx : indexed) id =
  let source = Msg_id.source id in
  let lo = ref 0 and hi = ref (Array.length idx) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let src, _, _ = Array.unsafe_get idx mid in
    if Node_id.compare src source < 0 then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length idx
  &&
  let src, horizon, missing = Array.unsafe_get idx !lo in
  Node_id.equal src source
  &&
  let seq = Msg_id.seq id in
  seq <= horizon && not (mem_sorted missing seq)
