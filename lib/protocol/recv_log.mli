(** Per-receiver reception state across (possibly) multiple sources:
    a {!Gap_detect.t} per source plus duplicate accounting. *)

type t

val create : unit -> t

type verdict = Fresh of Msg_id.t list | Duplicate
(** [Fresh losses] carries the message ids newly detected as lost. *)

val note_data : t -> Msg_id.t -> verdict

val note_session : t -> source:Node_id.t -> max_seq:int -> Msg_id.t list
(** Newly detected losses triggered by a session message. *)

val note_repaired : t -> Msg_id.t -> bool
(** [true] if this repaired a message we did not have (i.e. it was
    useful, not a duplicate repair). *)

val received : t -> Msg_id.t -> bool

val missing : t -> Msg_id.t list
(** All detected, unrepaired losses across sources. *)

val missing_count : t -> int

val received_count : t -> int

val duplicates : t -> int
(** Data packets and repairs that carried nothing new. *)

val sources : t -> Node_id.t list

type digest = (Node_id.t * (int * int list)) list
(** Per source: (horizon, missing seqs) — see {!Gap_detect.digest}. *)

val digest : t -> digest
(** Sorted by source. *)

val digest_has : digest -> Msg_id.t -> bool
(** Whether the digest's owner has received the given message.
    O(sources + missing) per probe — the reference implementation;
    probe-heavy paths should build an {!indexed} form instead. *)

type indexed
(** A digest compiled for repeated membership probes: sorted arrays
    per source, answering each probe with two binary searches. *)

val index : digest -> indexed
(** Build once per received digest (e.g. per History message); each
    subsequent {!indexed_has} probe is O(log sources + log missing)
    and allocation-free. *)

val indexed_has : indexed -> Msg_id.t -> bool
(** Same answer as {!digest_has} on the digest the index was built
    from. *)
