(** Reference model for {!Gap_detect}: the original [Set.Make(Int)]
    implementation kept as an executable specification. State grows
    with session length — O(received) memory, O(log n) per operation —
    which is exactly why the production detector replaced it; the
    qcheck model suites check the two agree on every observable, and
    the protocol-state bench reports this model as the "before"
    column. The signature mirrors {!Gap_detect}. *)

type t

val create : unit -> t

val note_data : t -> int -> [ `Fresh of int list | `Duplicate ]

val note_session : t -> max_seq:int -> int list

val note_repaired : t -> int -> unit

val received : t -> int -> bool

val missing : t -> int list

val missing_count : t -> int

val highest_seen : t -> int option

val received_count : t -> int

val digest : t -> int * int list
