(** Loss detection for a single multicast source.

    "A receiver detects a message loss by observing a gap in the
    sequence number space. In addition, session messages are used to
    help a receiver detect the loss of the last message in a burst."
    (Section 2.1.)

    The detector tracks which sequence numbers have been received and
    reports each missing sequence number exactly once, at the moment it
    becomes detectable (a higher sequence number arrives, or a session
    message advertises a higher maximum).

    Internally the state is a contiguous-delivery watermark plus a
    sliding bitset window over the out-of-order span, with maintained
    counters: [note_data], [received], [received_count] and
    [missing_count] are O(1) amortized and allocation-free, and the
    per-source footprint is O(reorder window) rather than O(session
    length). {!Gap_oracle} is the original set-based implementation,
    kept as the reference model for the qcheck equivalence suites. *)

type t

val create : unit -> t

val note_data : t -> int -> [ `Fresh of int list | `Duplicate ]
(** Record receipt of sequence number [seq]. [`Fresh gaps] lists the
    sequence numbers newly detected as missing (strictly below [seq],
    never reported before). @raise Invalid_argument on negative seq. *)

val note_session : t -> max_seq:int -> int list
(** A session message advertising the source's highest sequence number;
    returns newly detected losses (including [max_seq] itself if not
    received). *)

val note_repaired : t -> int -> unit
(** Mark a previously missing sequence number as received (repair
    arrived). Harmless if it was never missing. *)

val received : t -> int -> bool

val missing : t -> int list
(** Detected-but-not-yet-repaired sequence numbers, ascending. *)

val missing_count : t -> int

val highest_seen : t -> int option
(** Highest sequence number known to exist (via data or session). *)

val received_count : t -> int

val digest : t -> int * int list
(** [(horizon, missing)]: the highest sequence number known to exist
    and the detected losses — a compact summary of what this receiver
    has (it has every seq <= horizon except those listed). Horizon is
    -1 when nothing was seen. *)
