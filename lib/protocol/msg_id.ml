type t = { source : Node_id.t; seq : int }

let make ~source ~seq =
  if seq < 0 then invalid_arg "Msg_id.make: negative sequence number";
  { source; seq }

let source t = t.source

let seq t = t.seq

let equal a b = Node_id.equal a.source b.source && Int.equal a.seq b.seq

let compare a b =
  let c = Node_id.compare a.source b.source in
  if c <> 0 then c else Int.compare a.seq b.seq

(* explicit FNV-style mix: independent of value layout and stable
   across runs and compiler versions (the polymorphic [Hashtbl.hash]
   is banned by lint rule D1) *)
let hash t = ((Node_id.to_int t.source * 0x01000193) lxor t.seq) land max_int

let pp fmt t = Format.fprintf fmt "%a#%d" Node_id.pp t.source t.seq

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
