(* Reference model for Gap_detect: the original balanced-set
   implementation, kept verbatim as an executable specification. The
   qcheck model suites drive it in lockstep with the windowed detector
   over random event interleavings, and the protocol-state bench uses
   it as the "before" side of the gap-detect soak. Not used on any
   protocol path. *)

module Int_set = Set.Make (Int)

type t = {
  mutable have : Int_set.t;  (* received sequence numbers *)
  mutable missing : Int_set.t;  (* detected losses not yet repaired *)
  mutable horizon : int;  (* all seqs <= horizon are known to exist; -1 initially *)
}

let create () = { have = Int_set.empty; missing = Int_set.empty; horizon = -1 }

(* every seq in (old horizon, new_horizon] that we don't have becomes a
   newly detected loss *)
let extend_horizon t new_horizon =
  if new_horizon <= t.horizon then []
  else begin
    let fresh = ref [] in
    for seq = t.horizon + 1 to new_horizon do
      if not (Int_set.mem seq t.have) then fresh := seq :: !fresh
    done;
    t.horizon <- new_horizon;
    let fresh = List.rev !fresh in
    t.missing <- List.fold_left (fun acc s -> Int_set.add s acc) t.missing fresh;
    fresh
  end

let note_data t seq =
  if seq < 0 then invalid_arg "Gap_oracle.note_data: negative seq";
  if Int_set.mem seq t.have then `Duplicate
  else begin
    t.have <- Int_set.add seq t.have;
    t.missing <- Int_set.remove seq t.missing;
    (* a data packet proves every lower seq exists, but not itself lost *)
    let gaps = extend_horizon t seq |> List.filter (fun s -> s <> seq) in
    `Fresh gaps
  end

let note_session t ~max_seq =
  if max_seq < 0 then invalid_arg "Gap_oracle.note_session: negative seq";
  extend_horizon t max_seq

let note_repaired t seq =
  if seq >= 0 && not (Int_set.mem seq t.have) then begin
    t.have <- Int_set.add seq t.have;
    t.missing <- Int_set.remove seq t.missing
  end

let received t seq = Int_set.mem seq t.have

let missing t = Int_set.elements t.missing

let missing_count t = Int_set.cardinal t.missing

let highest_seen t = if t.horizon < 0 then None else Some t.horizon

let received_count t = Int_set.cardinal t.have

let digest t = (t.horizon, Int_set.elements t.missing)
