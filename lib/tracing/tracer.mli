(** In-memory event trace for debugging protocol runs.

    Records (time, subject, event, detail) tuples with an optional
    capacity bound (oldest entries dropped) and an optional filter.

    The recording path is built for hot loops: the filter sees only
    [(subject, event)] and runs {e before} anything is allocated, and
    {!record_lazy} defers detail formatting until the trace is actually
    read (forced at most once, then memoized). *)

type entry = { time : float; subject : string; event : string; detail : string }

type t

val create :
  ?capacity:int -> ?filter:(subject:string -> event:string -> bool) -> unit -> t
(** [capacity] bounds retained entries (unbounded by default). The
    filter decides from [(subject, event)] alone so rejected records
    cost no allocation. *)

val record : t -> time:float -> subject:string -> event:string -> string -> unit

val record_lazy :
  t -> time:float -> subject:string -> event:string -> (unit -> string) -> unit
(** Like {!record}, but the detail thunk is only forced when the trace
    is read ({!entries}, {!dump}); the result is memoized. Use when
    formatting the detail is the expensive part. *)

val wants : t -> subject:string -> event:string -> bool
(** Would a record with this [(subject, event)] pass the filter?
    Callers for whom even building the arguments is expensive can
    pre-check. *)

val entries : t -> entry list
(** Oldest first. Forces any pending lazy details. *)

val length : t -> int

val dropped : t -> int
(** Entries discarded due to the capacity bound (filtered-out entries
    are not counted). *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
