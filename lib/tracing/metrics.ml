type t = {
  counter_table : (string, int ref) Hashtbl.t;
  gauge_table : (string, float ref) Hashtbl.t;
}

let create () = { counter_table = Hashtbl.create 32; gauge_table = Hashtbl.create 32 }

type handle = int ref

type gauge_handle = float ref

let counter_ref t name =
  match Hashtbl.find_opt t.counter_table name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counter_table name r;
    r

let incr ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

(* Pre-resolved handles: the name is hashed once here; per-event incr
   through the handle is a bare ref bump with no table lookup. *)
let handle t name = counter_ref t name

let[@inline] incr_handle ?(by = 1) r = r := !r + by

(* a sink that is not registered anywhere: lets callers keep a single
   unconditional incr on the hot path even when no registry is
   attached *)
let null_handle () = ref 0

let counter t name = match Hashtbl.find_opt t.counter_table name with Some r -> !r | None -> 0

let gauge_ref t name ~init =
  match Hashtbl.find_opt t.gauge_table name with
  | Some r -> r
  | None ->
    let r = ref init in
    Hashtbl.add t.gauge_table name r;
    r

let set_gauge t name v =
  let r = gauge_ref t name ~init:v in
  r := v

let gauge_handle ?(init = 0.0) t name = gauge_ref t name ~init

let set_gauge_handle (r : gauge_handle) v = r := v

let add_gauge_handle (r : gauge_handle) v = r := !r +. v

let null_gauge_handle () = ref 0.0

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauge_table name)

let max_gauge t name v =
  let r = gauge_ref t name ~init:v in
  if v > !r then r := v

let add_gauge t name v =
  let r = gauge_ref t name ~init:0.0 in
  r := !r +. v

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counter_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauge_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counter_table;
  Hashtbl.reset t.gauge_table

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %d@," name v) (counters t);
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %.3f@," name v) (gauges t);
  Format.fprintf fmt "@]"
