(** Lightweight named counters and gauges for experiment bookkeeping.

    A registry is cheap to create per simulation run; experiment
    harnesses read it out at the end of the run. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter, creating it at zero first if needed. *)

type handle = int ref
(** A pre-resolved counter: the name is hashed once at {!handle} time,
    so per-event increments on packet-rate paths do no string hashing
    and no table lookup. *)

val handle : t -> string -> handle
(** Resolve (creating at zero if needed) a counter for repeated
    increments. The handle stays live across {!reset} only until the
    registry is reset — re-resolve after a reset. *)

val incr_handle : ?by:int -> handle -> unit

val null_handle : unit -> handle
(** A fresh sink registered nowhere: hot paths can keep one
    unconditional [incr_handle] instead of branching on whether a
    registry is attached. *)

type gauge_handle = float ref

val gauge_handle : ?init:float -> t -> string -> gauge_handle

val set_gauge_handle : gauge_handle -> float -> unit

val add_gauge_handle : gauge_handle -> float -> unit

val null_gauge_handle : unit -> gauge_handle

val counter : t -> string -> int
(** 0 for unknown names. *)

val set_gauge : t -> string -> float -> unit

val gauge : t -> string -> float option

val max_gauge : t -> string -> float -> unit
(** Keep the running maximum of the observed values. *)

val add_gauge : t -> string -> float -> unit
(** Accumulate into a gauge starting from 0. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list

val reset : t -> unit

val pp : Format.formatter -> t -> unit
