type entry = { time : float; subject : string; event : string; detail : string }

(* Detail strings are kept unformatted until first read: hot-path
   recorders hand over a thunk, and forcing memoizes the result so
   repeated dumps don't re-format. *)
type detail = Formatted of string | Thunk of (unit -> string)

type stored = {
  s_time : float;
  s_subject : string;
  s_event : string;
  mutable s_detail : detail;
}

type t = {
  capacity : int option;
  filter : subject:string -> event:string -> bool;
  buffer : stored Queue.t;
  mutable dropped : int;
}

let create ?capacity ?(filter = fun ~subject:_ ~event:_ -> true) () =
  (match capacity with
   | Some c when c <= 0 -> invalid_arg "Tracer.create: capacity must be positive"
   | Some _ | None -> ());
  { capacity; filter; buffer = Queue.create (); dropped = 0 }

let wants t ~subject ~event = t.filter ~subject ~event

let push t stored =
  Queue.push stored t.buffer;
  match t.capacity with
  | Some c when Queue.length t.buffer > c ->
    ignore (Queue.pop t.buffer);
    t.dropped <- t.dropped + 1
  | Some _ | None -> ()

(* the filter runs on (subject, event) alone, before any entry is
   constructed: a rejected record allocates nothing here *)
let record t ~time ~subject ~event detail =
  if t.filter ~subject ~event then
    push t { s_time = time; s_subject = subject; s_event = event; s_detail = Formatted detail }

let record_lazy t ~time ~subject ~event detail =
  if t.filter ~subject ~event then
    push t { s_time = time; s_subject = subject; s_event = event; s_detail = Thunk detail }

let force s =
  match s.s_detail with
  | Formatted d -> d
  | Thunk f ->
    let d = f () in
    s.s_detail <- Formatted d;
    d

let to_entry s = { time = s.s_time; subject = s.s_subject; event = s.s_event; detail = force s }

let entries t = List.of_seq (Seq.map to_entry (Queue.to_seq t.buffer))

let length t = Queue.length t.buffer

let dropped t = t.dropped

let clear t =
  Queue.clear t.buffer;
  t.dropped <- 0

let pp_entry fmt e =
  Format.fprintf fmt "%10.3f  %-8s %-24s %s" e.time e.subject e.event e.detail

let dump fmt t =
  Format.fprintf fmt "@[<v>";
  Queue.iter (fun s -> Format.fprintf fmt "%a@," pp_entry (to_entry s)) t.buffer;
  Format.fprintf fmt "@]"
