type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative id";
  i

let to_int t = t

let equal = Int.equal

let compare = Int.compare

(* ids are non-negative by construction, so the identity is a valid
   hash — and keeps table layout independent of the polymorphic
   [Hashtbl.hash] banned by lint rule D1 *)
let hash t = t

let pp fmt t = Format.fprintf fmt "n%d" t

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
