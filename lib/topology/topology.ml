type region_info = {
  parent : Region_id.t option;
  mutable member_set : Node_id.Set.t;
  mutable members_cache : Node_id.t array option;
}

type t = {
  region_infos : region_info array;
  mutable node_region : Region_id.t option array; (* indexed by node id *)
  mutable next_node : int;
  mutable live : int;
  hops_cache : int array; (* flattened R x R memo; -1 = not yet computed *)
  mutable all_nodes_cache : Node_id.t array option;
}

let region_count t = Array.length t.region_infos

let check_acyclic parents =
  let n = Array.length parents in
  Array.iteri
    (fun i p ->
      match p with
      | None -> ()
      | Some p ->
        let p = Region_id.to_int p in
        if p < 0 || p >= n then invalid_arg "Topology.create: parent out of range";
        if p = i then invalid_arg "Topology.create: region cannot be its own parent")
    parents;
  (* walk each parent chain; more than n steps means a cycle *)
  Array.iteri
    (fun i _ ->
      let steps = ref 0 in
      let cursor = ref (Some (Region_id.of_int i)) in
      while !cursor <> None do
        incr steps;
        if !steps > n then invalid_arg "Topology.create: parent relation has a cycle";
        cursor :=
          (match !cursor with
           | None -> None
           | Some r -> parents.(Region_id.to_int r))
      done)
    parents

let create ~parents =
  check_acyclic parents;
  let region_infos =
    Array.map
      (fun parent -> { parent; member_set = Node_id.Set.empty; members_cache = None })
      parents
  in
  {
    region_infos;
    node_region = Array.make 64 None;
    next_node = 0;
    live = 0;
    hops_cache = Array.make (Array.length region_infos * Array.length region_infos) (-1);
    all_nodes_cache = None;
  }

let info t r = t.region_infos.(Region_id.to_int r)

let invalidate info = info.members_cache <- None

let grow_node_table t =
  if t.next_node >= Array.length t.node_region then begin
    let bigger = Array.make (2 * Array.length t.node_region) None in
    Array.blit t.node_region 0 bigger 0 (Array.length t.node_region);
    t.node_region <- bigger
  end

let add_node t r =
  grow_node_table t;
  let node = Node_id.of_int t.next_node in
  t.next_node <- t.next_node + 1;
  t.node_region.(Node_id.to_int node) <- Some r;
  let region_info = info t r in
  region_info.member_set <- Node_id.Set.add node region_info.member_set;
  invalidate region_info;
  t.all_nodes_cache <- None;
  t.live <- t.live + 1;
  node

let region_of t node =
  let i = Node_id.to_int node in
  if i >= t.next_node then None else t.node_region.(i)

let remove_node t node =
  match region_of t node with
  | None -> invalid_arg "Topology.remove_node: not a member"
  | Some r ->
    t.node_region.(Node_id.to_int node) <- None;
    let region_info = info t r in
    region_info.member_set <- Node_id.Set.remove node region_info.member_set;
    invalidate region_info;
    t.all_nodes_cache <- None;
    t.live <- t.live - 1

let node_count t = t.live

let created_count t = t.next_node

let is_member t node = region_of t node <> None

let members t r =
  let region_info = info t r in
  match region_info.members_cache with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list (Node_id.Set.elements region_info.member_set) in
    region_info.members_cache <- Some arr;
    arr

(* fresh array each call (callers cache it); built with a counting pass
   instead of a Seq pipeline — this runs once per member on every view
   refresh, so the closure-per-element cost was visible in profiles *)
let members_except t r node =
  let all = members t r in
  let n = Array.length all in
  let excluded = ref 0 in
  for i = 0 to n - 1 do
    if Node_id.equal all.(i) node then incr excluded
  done;
  if !excluded = 0 then Array.copy all
  else begin
    let out = Array.make (n - !excluded) all.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if not (Node_id.equal all.(i) node) then begin
        out.(!j) <- all.(i);
        incr j
      end
    done;
    out
  end

let region_size t r = Node_id.Set.cardinal (info t r).member_set

let parent t r = (info t r).parent

let children t r =
  let out = ref [] in
  for i = region_count t - 1 downto 0 do
    let candidate = Region_id.of_int i in
    match parent t candidate with
    | Some p when Region_id.equal p r -> out := candidate :: !out
    | Some _ | None -> ()
  done;
  !out

let depth t r =
  let rec walk r acc =
    match parent t r with None -> acc | Some p -> walk p (acc + 1)
  in
  walk r 0

let rec ancestors t r = r :: (match parent t r with None -> [] | Some p -> ancestors t p)

let compute_hops t ra rb =
  let up_a = ancestors t ra and up_b = ancestors t rb in
  let in_b r = List.exists (Region_id.equal r) up_b in
  match List.find_opt in_b up_a with
  | None -> invalid_arg "Topology.hops: regions in different trees"
  | Some lca ->
    let dist path =
      let rec count acc = function
        | [] -> assert false
        | r :: rest -> if Region_id.equal r lca then acc else count (acc + 1) rest
      in
      count 0 path
    in
    dist up_a + dist up_b

(* the region graph is immutable after [create], so hop distances are
   memoized per pair — this sits on the per-packet latency path *)
let hops t ra rb =
  if Region_id.equal ra rb then 0
  else begin
    let key = (Region_id.to_int ra * region_count t) + Region_id.to_int rb in
    let cached = t.hops_cache.(key) in
    if cached >= 0 then cached
    else begin
      let h = compute_hops t ra rb in
      t.hops_cache.(key) <- h;
      h
    end
  end

(* cached: session-wide multicast fans out over this array on every
   send, and rebuilding the set union per packet dominated the cost *)
let all_nodes t =
  match t.all_nodes_cache with
  | Some arr -> arr
  | None ->
    let sets =
      Array.fold_left
        (fun acc region_info -> Node_id.Set.union acc region_info.member_set)
        Node_id.Set.empty t.region_infos
    in
    let arr = Array.of_list (Node_id.Set.elements sets) in
    t.all_nodes_cache <- Some arr;
    arr

let regions t = List.init (region_count t) Region_id.of_int

let same_region t a b =
  match (region_of t a, region_of t b) with
  | Some ra, Some rb -> Region_id.equal ra rb
  | _ -> false

let populate t sizes =
  List.iteri
    (fun i size ->
      let r = Region_id.of_int i in
      for _ = 1 to size do
        ignore (add_node t r)
      done)
    sizes;
  t

let single_region ~size =
  if size <= 0 then invalid_arg "Topology.single_region: size must be positive";
  populate (create ~parents:[| None |]) [ size ]

let chain ~sizes =
  if sizes = [] then invalid_arg "Topology.chain: need at least one region";
  let n = List.length sizes in
  let parents =
    Array.init n (fun i -> if i = 0 then None else Some (Region_id.of_int (i - 1)))
  in
  populate (create ~parents) sizes

let star ~hub ~leaves =
  let n = 1 + List.length leaves in
  let parents = Array.init n (fun i -> if i = 0 then None else Some (Region_id.of_int 0)) in
  populate (create ~parents) (hub :: leaves)

let balanced_tree ~fanout ~levels ~region_size =
  if fanout < 1 || levels < 1 || region_size < 1 then
    invalid_arg "Topology.balanced_tree: all parameters must be positive";
  let total =
    let rec count level acc width =
      if level = levels then acc else count (level + 1) (acc + width) (width * fanout)
    in
    count 0 0 1
  in
  let parents =
    Array.init total (fun i -> if i = 0 then None else Some (Region_id.of_int ((i - 1) / fanout)))
  in
  populate (create ~parents) (List.init total (fun _ -> region_size))

let pp fmt t =
  Format.fprintf fmt "@[<v>topology: %d regions, %d live nodes" (region_count t)
    (node_count t);
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  %a: %d members, parent %s" Region_id.pp r (region_size t r)
        (match parent t r with
         | None -> "-"
         | Some p -> Region_id.to_string p))
    (regions t);
  Format.fprintf fmt "@]"
