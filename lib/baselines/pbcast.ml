module Msg_id = Protocol.Msg_id
module Recv_log = Protocol.Recv_log
module Network = Netsim.Network
module Sim = Engine.Sim
module Buffer = Rrmp.Buffer
module Payload = Rrmp.Payload

type wire =
  | Data of Payload.t
  | Digest of Recv_log.digest
  | Solicit of Msg_id.t list
  | Retransmit of Payload.t

let cls = function
  | Data _ -> "data"
  | Digest _ -> "digest"
  | Solicit _ -> "solicit"
  | Retransmit _ -> "retransmit"

type member = {
  node : Node_id.t;
  recv : Recv_log.t;
  buffer : Buffer.t;
  rng : Engine.Rng.t;
  mutable ticker : Engine.Timer.Periodic.t option;
}

type t = {
  sim : Sim.t;
  net : wire Network.t;
  topology : Topology.t;
  buffer_for : float;
  fanout : int;
  members : member Node_id.Table.t;
  sender : Node_id.t;
  mutable next_seq : int;
}

let sim t = t.sim

let member_of t node = Node_id.Table.find t.members node

let send t ~src ~dst msg = Network.unicast t.net ~cls:(cls msg) ~src ~dst msg

let store t m payload =
  if Buffer.insert m.buffer ~phase:Buffer.Short_term payload then begin
    let id = Payload.id payload in
    ignore
      (Sim.schedule t.sim ~delay:t.buffer_for (fun () -> ignore (Buffer.remove m.buffer id)))
  end

let handle_data t m payload =
  match Recv_log.note_data m.recv (Payload.id payload) with
  | Recv_log.Duplicate -> ()
  | Recv_log.Fresh _ ->
    (* losses are repaired by anti-entropy; no explicit NACKs *)
    store t m payload

(* a digest arrived: pull whatever the gossiper has that we lack *)
let handle_digest t m digest ~src =
  let wanted =
    List.concat_map
      (fun (source, (horizon, missing)) ->
        List.filter_map
          (fun seq ->
            let id = Msg_id.make ~source ~seq in
            if (not (List.mem seq missing)) && not (Recv_log.received m.recv id) then
              Some id
            else None)
          (List.init (horizon + 1) Fun.id))
      digest
  in
  if wanted <> [] then send t ~src:m.node ~dst:src (Solicit wanted)

let handle_solicit t m ids ~src =
  List.iter
    (fun id ->
      match Buffer.find m.buffer id with
      | Some payload -> send t ~src:m.node ~dst:src (Retransmit payload)
      | None -> ()  (* already discarded: the solicitor will pull elsewhere *))
    ids

let handle_retransmit t m payload =
  if Recv_log.note_repaired m.recv (Payload.id payload) then store t m payload

let handle_delivery t m (delivery : wire Network.delivery) =
  let src = delivery.Network.src in
  match delivery.Network.msg with
  | Data payload -> handle_data t m payload
  | Digest digest -> handle_digest t m digest ~src
  | Solicit ids -> handle_solicit t m ids ~src
  | Retransmit payload -> handle_retransmit t m payload

let gossip_round t m =
  let peers =
    match Topology.region_of t.topology m.node with
    | None -> [||]
    | Some _ ->
      Topology.all_nodes t.topology |> Array.to_seq
      |> Seq.filter (fun n -> not (Node_id.equal n m.node))
      |> Array.of_seq
  in
  if Array.length peers > 0 then begin
    let digest = Recv_log.digest m.recv in
    if digest <> [] then
      for _ = 1 to t.fanout do
        send t ~src:m.node ~dst:(Engine.Rng.pick m.rng peers) (Digest digest)
      done
  end

let create ?(seed = 1) ?(latency = Latency.paper_default) ?(loss = Loss.Lossless)
    ?(gossip_interval = 10.0) ?(fanout = 1) ?(buffer_for = 200.0) ~topology () =
  let sim = Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let loss = Loss.create loss ~rng:(Engine.Rng.split rng) in
  let net = Network.create ~sim ~topology ~latency ~loss ~rng:(Engine.Rng.split rng) () in
  let nodes = Topology.all_nodes topology in
  if Array.length nodes = 0 then invalid_arg "Pbcast.create: empty topology";
  let t =
    {
      sim;
      net;
      topology;
      buffer_for;
      fanout;
      members = Node_id.Table.create (Array.length nodes);
      sender = nodes.(0);
      next_seq = 0;
    }
  in
  Array.iter
    (fun node ->
      let m =
        {
          node;
          recv = Recv_log.create ();
          buffer = Buffer.create ~sim;
          rng = Engine.Rng.split rng;
          ticker = None;
        }
      in
      Node_id.Table.add t.members node m;
      Network.register net node (handle_delivery t m);
      m.ticker <-
        Some (Engine.Timer.Periodic.create sim ~interval:gossip_interval (fun () ->
                  gossip_round t m)))
    nodes;
  t

let fresh_payload t ~size =
  let id = Msg_id.make ~source:t.sender ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  Payload.make ?size id

let own_bookkeeping t payload =
  let m = member_of t t.sender in
  ignore (Recv_log.note_data m.recv (Payload.id payload));
  store t m payload

let multicast t ?size () =
  let payload = fresh_payload t ~size in
  own_bookkeeping t payload;
  Network.ip_multicast_lossy t.net ~cls:"data" ~src:t.sender (Data payload);
  Payload.id payload

let multicast_reaching t ?size ~reach () =
  let payload = fresh_payload t ~size in
  own_bookkeeping t payload;
  Network.ip_multicast t.net ~cls:"data" ~src:t.sender ~reach (Data payload);
  Payload.id payload

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let stop_gossip t =
  (* stop tickers in node order so teardown is deterministic *)
  let members =
    Node_id.Table.fold (fun node m acc -> (node, m) :: acc) t.members []
    |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)
  in
  List.iter
    (fun (_, m) ->
      match m.ticker with
      | Some ticker ->
        Engine.Timer.Periodic.stop ticker;
        m.ticker <- None
      | None -> ())
    members

let members t = Array.to_list (Topology.all_nodes t.topology)

let count_received t id =
  List.fold_left
    (fun acc node -> if Recv_log.received (member_of t node).recv id then acc + 1 else acc)
    0 (members t)

let received_by_all t id = count_received t id = Topology.node_count t.topology

let buffer_of t node = (member_of t node).buffer

let control_packets t =
  List.fold_left
    (fun acc cls ->
      if cls = "data" then acc else acc + (Network.stats t.net ~cls).Network.sent)
    0
    (Network.classes t.net)
