(* Binary wire format for {!Wire.t}.

   Layout (little-endian, lengths in bytes):

     0  'R' 'M'          magic
     2  version           currently 1
     3  tag               constructor, 0..10
     4  var_len   u32     bytes following the 32-byte header
     8  source    u64     message-id source (0 when the tag has none)
     16 seq       u64     message-id seq / session max_seq (else 0)
     24 count     u32     list length for Handoff/History/Gossip (else 0)
     28 hsum      u32     checksum of header bytes 0..27

   Payload-class frames (Data, Repair, Regional_repair) put the body
   directly after the header: total = 32 + size, matching Wire.bytes.
   Handoff frames put [count] entries after the header, each framed as
   source u64 + seq u64 + size u64 + body: total = 32 + sum (24 + size).
   Control-class frames (everything else) carry a 32-byte control
   block after the header (origin u64 for Remote_request/Search, zeros
   otherwise), then their entries, so every control message occupies
   at least 64 bytes — again matching Wire.bytes exactly:
   History entries are addr u64 + (horizon+1) u32 + nmissing u32 then
   nmissing x seq u64 (16 + 8*missing per source); Gossip entries are
   node u64 + heartbeat u64 (16 per entry).

   Integrity: the header checksum catches corruption of the framing
   fields (a flipped length or count cannot send the parser out of
   bounds); body bytes are deliberately not checksummed here — the
   steady-state decode must not touch every payload byte, and
   end-to-end body integrity is the application's concern
   (Payload.intact / Payload.checksum).

   The encode and [read] paths carry rrmp_lint's H1+H2 contract: no
   list/closure/Some/tuple allocation, manual recursion instead of
   higher-order walks, and every multi-byte field is assembled from
   plain ints (no Int64 boxing). Encoded values must fit 62 bits; the
   decoder rejects anything larger, so a frame never materializes an
   int that would wrap. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type error =
  | Truncated
  | Bad_magic
  | Bad_version
  | Bad_tag
  | Bad_length
  | Bad_checksum
  | Bad_field

type status = Ok_frame | Err of error

let error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad magic"
  | Bad_version -> "unsupported version"
  | Bad_tag -> "unknown tag"
  | Bad_length -> "length field disagrees with frame"
  | Bad_checksum -> "header checksum mismatch"
  | Bad_field -> "field out of range"

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let version = 1

let header_bytes = 32

let control_bytes = 64

let tag_data = 0

let tag_session = 1

let tag_local_request = 2

let tag_remote_request = 3

let tag_repair = 4

let tag_regional_repair = 5

let tag_search = 6

let tag_have = 7

let tag_handoff = 8

let tag_history = 9

let tag_gossip = 10

(* ------------------------------------------------------------------ *)
(* Raw field access (no bounds checks: every caller verifies the frame
   extent once, then stays inside it)                                  *)
(* ------------------------------------------------------------------ *)

let set8 (b : buf) off v = Bigarray.Array1.unsafe_set b off (Char.unsafe_chr (v land 0xff))

let get8 (b : buf) off = Char.code (Bigarray.Array1.unsafe_get b off)

let set_u32 b off v =
  set8 b off v;
  set8 b (off + 1) (v lsr 8);
  set8 b (off + 2) (v lsr 16);
  set8 b (off + 3) (v lsr 24)

let get_u32 b off =
  get8 b off
  lor (get8 b (off + 1) lsl 8)
  lor (get8 b (off + 2) lsl 16)
  lor (get8 b (off + 3) lsl 24)

let set_u64 b off v =
  set_u32 b off v;
  set_u32 b (off + 4) (v lsr 32)

(* returns -1 when the stored value does not fit OCaml's 62 usable
   bits (the encoder never writes such a value, so it marks a corrupt
   or foreign frame) *)
let get_u64 b off =
  let lo = get_u32 b off in
  let hi = get_u32 b (off + 4) in
  if hi land 0xC0000000 <> 0 then -1 else lo lor (hi lsl 32)

let rec header_sum_from b off i acc =
  if i = 28 then acc else header_sum_from b off (i + 1) (((acc * 31) + get8 b (off + i)) land 0xFFFFFFFF)

let header_sum b off = header_sum_from b off 0 0x9e37

let rec zero_fill b off n = if n > 0 then begin set8 b off 0; zero_fill b (off + 1) (n - 1) end

(* the [buf] annotations matter: an unconstrained bigarray parameter
   stays polymorphic in kind and layout, and every unsafe_get/set then
   compiles to the generic runtime-dispatch primitive — measured ~8x
   slower than the monomorphic direct load/store *)
let rec blit_body (src : buf) (b : buf) off i n =
  if i < n then begin
    Bigarray.Array1.unsafe_set b (off + i) (Bigarray.Array1.unsafe_get src i);
    blit_body src b off (i + 1) n
  end

(* ------------------------------------------------------------------ *)
(* Sizes                                                               *)
(* ------------------------------------------------------------------ *)

let rec handoff_size acc = function
  | [] -> acc
  | p :: rest -> handoff_size (acc + 24 + Payload.size p) rest

let rec history_size acc = function
  | [] -> acc
  | (_, (_, missing)) :: rest -> history_size (acc + 16 + (8 * List.length missing)) rest

let encoded_size = function
  | Wire.Data p | Wire.Repair p | Wire.Regional_repair p -> header_bytes + Payload.size p
  | Wire.Handoff payloads -> handoff_size header_bytes payloads
  | Wire.History digest -> history_size control_bytes digest
  | Wire.Gossip table -> control_bytes + (16 * List.length table)
  | Wire.Session _ | Wire.Local_request _ | Wire.Remote_request _ | Wire.Search _
  | Wire.Have _ ->
    control_bytes

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let write_header b off ~tag ~var_len ~source_i ~seq_i ~count =
  Bigarray.Array1.unsafe_set b off 'R';
  Bigarray.Array1.unsafe_set b (off + 1) 'M';
  set8 b (off + 2) version;
  set8 b (off + 3) tag;
  set_u32 b (off + 4) var_len;
  set_u64 b (off + 8) source_i;
  set_u64 b (off + 16) seq_i;
  set_u32 b (off + 24) count;
  set_u32 b (off + 28) (header_sum b off)

let encode_payload b ~off ~tag p =
  let n = Payload.size p in
  let pid = Payload.id p in
  write_header b off ~tag ~var_len:n
    ~source_i:(Node_id.to_int (Protocol.Msg_id.source pid))
    ~seq_i:(Protocol.Msg_id.seq pid) ~count:0;
  blit_body (Payload.body p) b (off + header_bytes) 0 n

(* control frame whose only content is the message id *)
let encode_id_control b ~off ~tag mid =
  write_header b off ~tag ~var_len:32
    ~source_i:(Node_id.to_int (Protocol.Msg_id.source mid))
    ~seq_i:(Protocol.Msg_id.seq mid) ~count:0;
  zero_fill b (off + header_bytes) 32

(* control frame carrying the id plus an origin in the control block *)
let encode_origin_control b ~off ~tag mid node =
  write_header b off ~tag ~var_len:32
    ~source_i:(Node_id.to_int (Protocol.Msg_id.source mid))
    ~seq_i:(Protocol.Msg_id.seq mid) ~count:0;
  set_u64 b (off + header_bytes) (Node_id.to_int node);
  zero_fill b (off + header_bytes + 8) 24

let rec count_list acc = function [] -> acc | _ :: rest -> count_list (acc + 1) rest

let rec encode_handoff_entries b cursor = function
  | [] -> ()
  | p :: rest ->
    let n = Payload.size p in
    let pid = Payload.id p in
    set_u64 b cursor (Node_id.to_int (Protocol.Msg_id.source pid));
    set_u64 b (cursor + 8) (Protocol.Msg_id.seq pid);
    set_u64 b (cursor + 16) n;
    blit_body (Payload.body p) b (cursor + 24) 0 n;
    encode_handoff_entries b (cursor + 24 + n) rest

let encode_handoff b ~off payloads ~size =
  write_header b off ~tag:tag_handoff ~var_len:(size - header_bytes) ~source_i:0 ~seq_i:0
    ~count:(count_list 0 payloads);
  encode_handoff_entries b (off + header_bytes) payloads

let rec encode_missing b cursor = function
  | [] -> cursor
  | s :: rest ->
    if s < 0 then invalid_arg "Codec.encode: negative missing sequence number";
    set_u64 b cursor s;
    encode_missing b (cursor + 8) rest

let rec encode_history_sources b cursor = function
  | [] -> ()
  | (node, (horizon, missing)) :: rest ->
    if horizon < -1 then invalid_arg "Codec.encode: history horizon below -1";
    set_u64 b cursor (Node_id.to_int node);
    set_u32 b (cursor + 8) (horizon + 1);
    set_u32 b (cursor + 12) (count_list 0 missing);
    let cursor = encode_missing b (cursor + 16) missing in
    encode_history_sources b cursor rest

let encode_history b ~off digest ~size =
  write_header b off ~tag:tag_history ~var_len:(size - header_bytes) ~source_i:0 ~seq_i:0
    ~count:(count_list 0 digest);
  zero_fill b (off + header_bytes) 32;
  encode_history_sources b (off + control_bytes) digest

let rec encode_gossip_entries b cursor = function
  | [] -> ()
  | (node, heartbeat) :: rest ->
    if heartbeat < 0 then invalid_arg "Codec.encode: negative gossip heartbeat";
    set_u64 b cursor (Node_id.to_int node);
    set_u64 b (cursor + 8) heartbeat;
    encode_gossip_entries b (cursor + 16) rest

let encode_gossip b ~off table ~size =
  write_header b off ~tag:tag_gossip ~var_len:(size - header_bytes) ~source_i:0 ~seq_i:0
    ~count:(count_list 0 table);
  zero_fill b (off + header_bytes) 32;
  encode_gossip_entries b (off + control_bytes) table

let encode b ~off msg =
  let size = encoded_size msg in
  if off < 0 || off + size > Bigarray.Array1.dim b then
    invalid_arg "Codec.encode: frame does not fit the buffer at this offset";
  if size - header_bytes > 0xFFFFFFFF then invalid_arg "Codec.encode: frame too large for u32 length";
  (match msg with
   | Wire.Data p -> encode_payload b ~off ~tag:tag_data p
   | Wire.Repair p -> encode_payload b ~off ~tag:tag_repair p
   | Wire.Regional_repair p -> encode_payload b ~off ~tag:tag_regional_repair p
   | Wire.Session { max_seq } ->
     if max_seq < 0 then invalid_arg "Codec.encode: negative session max_seq";
     write_header b off ~tag:tag_session ~var_len:32 ~source_i:0 ~seq_i:max_seq ~count:0;
     zero_fill b (off + header_bytes) 32
   | Wire.Local_request mid -> encode_id_control b ~off ~tag:tag_local_request mid
   | Wire.Have mid -> encode_id_control b ~off ~tag:tag_have mid
   | Wire.Remote_request { id = mid; origin } ->
     encode_origin_control b ~off ~tag:tag_remote_request mid origin
   | Wire.Search { id = mid; origin } -> encode_origin_control b ~off ~tag:tag_search mid origin
   | Wire.Handoff payloads -> encode_handoff b ~off payloads ~size
   | Wire.History digest -> encode_history b ~off digest ~size
   | Wire.Gossip table -> encode_gossip b ~off table ~size);
  size

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let empty_buf : buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

type decoder = {
  mutable d_buf : buf;  (* the frame the last successful read points into *)
  mutable d_off : int;
  mutable d_len : int;
  mutable d_tag : int;
  mutable d_source : int;
  mutable d_seq : int;
  mutable d_count : int;
  mutable d_origin : int;
  mutable d_body_off : int;  (* absolute offset of a payload body *)
  mutable d_body_len : int;
  mutable d_ok : bool;
}

let create_decoder () =
  {
    d_buf = empty_buf;
    d_off = 0;
    d_len = 0;
    d_tag = 0;
    d_source = 0;
    d_seq = 0;
    d_count = 0;
    d_origin = 0;
    d_body_off = 0;
    d_body_len = 0;
    d_ok = false;
  }

(* validation walks: pure cursor arithmetic, no allocation. Each
   returns true iff the entries parse and end exactly at [stop]. *)

let rec valid_handoff b cursor stop n =
  if n = 0 then cursor = stop
  else if cursor + 24 > stop then false
  else
    let source_i = get_u64 b cursor in
    let seq_i = get_u64 b (cursor + 8) in
    let size = get_u64 b (cursor + 16) in
    if source_i < 0 || seq_i < 0 || size < 0 then false
    else if cursor + 24 + size > stop then false
    else valid_handoff b (cursor + 24 + size) stop (n - 1)

let rec valid_history b cursor stop n =
  if n = 0 then cursor = stop
  else if cursor + 16 > stop then false
  else
    let addr = get_u64 b cursor in
    let nmissing = get_u32 b (cursor + 12) in
    if addr < 0 then false
    else if cursor + 16 + (8 * nmissing) > stop then false
    else if not (valid_missing b (cursor + 16) nmissing) then false
    else valid_history b (cursor + 16 + (8 * nmissing)) stop (n - 1)

and valid_missing b cursor n =
  if n = 0 then true
  else if get_u64 b cursor < 0 then false
  else valid_missing b (cursor + 8) (n - 1)

let rec valid_gossip b cursor n =
  if n = 0 then true
  else if get_u64 b cursor < 0 || get_u64 b (cursor + 8) < 0 then false
  else valid_gossip b (cursor + 16) (n - 1)

let[@lint.never_raise] read d b ~off ~len =
  d.d_ok <- false;
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim b then Err Truncated
  else if len < header_bytes then Err Truncated
  else if get8 b off <> Char.code 'R' || get8 b (off + 1) <> Char.code 'M' then Err Bad_magic
  else if get8 b (off + 2) <> version then Err Bad_version
  else begin
    let tag = get8 b (off + 3) in
    if tag > tag_gossip then Err Bad_tag
    else if get_u32 b (off + 28) <> header_sum b off then Err Bad_checksum
    else begin
      let var_len = get_u32 b (off + 4) in
      if var_len <> len - header_bytes then Err Bad_length
      else begin
        let source_i = get_u64 b (off + 8) in
        let seq_i = get_u64 b (off + 16) in
        let count = get_u32 b (off + 24) in
        let control = tag <> tag_data && tag <> tag_repair && tag <> tag_regional_repair && tag <> tag_handoff in
        if source_i < 0 || seq_i < 0 then Err Bad_field
        else if control && var_len < 32 then Err Bad_length
        else begin
          let entries = off + control_bytes in
          let stop = off + len in
          let ok =
            if tag = tag_data || tag = tag_repair || tag = tag_regional_repair then begin
              d.d_body_off <- off + header_bytes;
              d.d_body_len <- var_len;
              count = 0
            end
            else if tag = tag_handoff then valid_handoff b (off + header_bytes) stop count
            else if tag = tag_history then valid_history b entries stop count
            else if tag = tag_gossip then
              var_len = 32 + (16 * count) && valid_gossip b entries count
            else if tag = tag_remote_request || tag = tag_search then begin
              d.d_origin <- get_u64 b (off + header_bytes);
              var_len = 32 && d.d_origin >= 0
            end
            else (* session / local_request / have *) var_len = 32 && count = 0
          in
          if not ok then Err Bad_field
          else begin
            d.d_buf <- b;
            d.d_off <- off;
            d.d_len <- len;
            d.d_tag <- tag;
            d.d_source <- source_i;
            d.d_seq <- seq_i;
            d.d_count <- count;
            d.d_ok <- true;
            Ok_frame
          end
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Materializing a read frame                                          *)
(* ------------------------------------------------------------------ *)

let fresh_copy (b : buf) off len : buf =
  let body = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
  let rec go i =
    if i < len then begin
      Bigarray.Array1.unsafe_set body i (Bigarray.Array1.unsafe_get b (off + i));
      go (i + 1)
    end
  in
  go 0;
  body

let slice ~copy b off len =
  if copy then fresh_copy b off len else Bigarray.Array1.sub b off len

let payload_at ~copy b ~source_i ~seq_i ~body_off ~body_len =
  let mid = Protocol.Msg_id.make ~source:(Node_id.of_int source_i) ~seq:seq_i in
  Payload.of_slice mid (slice ~copy b body_off body_len)

let rec handoff_entries ~copy b cursor n acc =
  if n = 0 then List.rev acc
  else
    let source_i = get_u64 b cursor in
    let seq_i = get_u64 b (cursor + 8) in
    let size = get_u64 b (cursor + 16) in
    let p = payload_at ~copy b ~source_i ~seq_i ~body_off:(cursor + 24) ~body_len:size in
    handoff_entries ~copy b (cursor + 24 + size) (n - 1) (p :: acc)

let rec missing_entries b cursor n acc =
  if n = 0 then List.rev acc else missing_entries b (cursor + 8) (n - 1) (get_u64 b cursor :: acc)

let[@lint.allow
     "A materializing a History frame builds the caller-owned digest list; the gated hot paths \
      are encode and read, and a transport drains control frames without calling view in its \
      steady state"] rec history_entries b cursor n acc =
  if n = 0 then List.rev acc
  else
    let addr = get_u64 b cursor in
    let horizon = get_u32 b (cursor + 8) - 1 in
    let nmissing = get_u32 b (cursor + 12) in
    let missing = missing_entries b (cursor + 16) nmissing [] in
    let entry = (Node_id.of_int addr, (horizon, missing)) in
    history_entries b (cursor + 16 + (8 * nmissing)) (n - 1) (entry :: acc)

let[@lint.allow
     "A materializing a Gossip frame builds the caller-owned heartbeat table; off the gated \
      encode/read paths for the same reason as history_entries"] rec gossip_entries b cursor n acc =
  if n = 0 then List.rev acc
  else
    let entry = (Node_id.of_int (get_u64 b cursor), get_u64 b (cursor + 8)) in
    gossip_entries b (cursor + 16) (n - 1) (entry :: acc)

let view d ~copy =
  if not d.d_ok then invalid_arg "Codec.view: the decoder holds no successfully read frame";
  let b = d.d_buf in
  let mid () = Protocol.Msg_id.make ~source:(Node_id.of_int d.d_source) ~seq:d.d_seq in
  let body () =
    payload_at ~copy b ~source_i:d.d_source ~seq_i:d.d_seq ~body_off:d.d_body_off
      ~body_len:d.d_body_len
  in
  if d.d_tag = tag_data then Wire.Data (body ())
  else if d.d_tag = tag_repair then Wire.Repair (body ())
  else if d.d_tag = tag_regional_repair then Wire.Regional_repair (body ())
  else if d.d_tag = tag_session then Wire.Session { max_seq = d.d_seq }
  else if d.d_tag = tag_local_request then Wire.Local_request (mid ())
  else if d.d_tag = tag_have then Wire.Have (mid ())
  else if d.d_tag = tag_remote_request then
    Wire.Remote_request { id = mid (); origin = Node_id.of_int d.d_origin }
  else if d.d_tag = tag_search then Wire.Search { id = mid (); origin = Node_id.of_int d.d_origin }
  else if d.d_tag = tag_handoff then
    Wire.Handoff (handoff_entries ~copy b (d.d_off + header_bytes) d.d_count [])
  else if d.d_tag = tag_history then
    Wire.History (history_entries b (d.d_off + control_bytes) d.d_count [])
  else Wire.Gossip (gossip_entries b (d.d_off + control_bytes) d.d_count [])

let decode ?(copy = true) b ~off ~len =
  let d = create_decoder () in
  match read d b ~off ~len with Ok_frame -> Ok (view d ~copy) | Err e -> Error e

(* ------------------------------------------------------------------ *)
(* Preallocated encode ring                                            *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  type t = { rbuf : buf; slot_bytes : int; slots : int; mutable next : int }

  let create ?(slot_bytes = 65536) ?(slots = 16) () =
    if slot_bytes < control_bytes then invalid_arg "Codec.Ring.create: slot below 64 bytes";
    if slots < 1 then invalid_arg "Codec.Ring.create: need at least one slot";
    {
      rbuf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (slot_bytes * slots);
      slot_bytes;
      slots;
      next = 0;
    }

  let buf t = t.rbuf

  let slot_bytes t = t.slot_bytes

  let slots t = t.slots

  let acquire t =
    let off = t.next * t.slot_bytes in
    t.next <- t.next + 1;
    if t.next = t.slots then t.next <- 0;
    off
end
