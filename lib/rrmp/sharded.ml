(* Region-sharded protocol driver (see the .mli for the architecture).

   Per-shard event spine: a shard owns ONE Sim, ONE struct-of-arrays
   member arena (with its built-in barrier-driven deadline ring), ONE
   metrics registry / observer pair, ONE recovery table and record
   pool, and one fabric outbox block — shared by every region assigned
   to it. A region is not an object: it is an integer index into flat
   session-level arrays (size, base, parent, hops, recovery counters),
   and its members are a contiguous slice of the shard arena. Intra-
   shard dispatch is therefore one array index — the arena handle
   [g = global_member_id - shard_base] — instead of a per-region
   closure environment, which is what takes per-region fixed overhead
   from hundreds of words (own Sim-scheduled ring sweeps, own tables)
   to a handful and puts 10^6 members in reach.

   Concurrency story: every region lives on exactly one shard, and a
   shard's spine is touched only by the domain running that shard's
   window (Engine.Shard hands each shard to one worker at a time).
   The session-level per-region arrays are written at distinct indices
   by the owning shard's domain only, and read by the coordinator
   after the Pool completion barrier. Cross-region messages never call
   into another shard's spine directly — they are posted to the fabric
   from the sending shard's domain and injected by the coordinator
   between windows — so no lock is needed anywhere. Determinism: all
   randomness comes from per-region substreams split per member, all
   cross-region traffic is quantized through the barrier, ring sweeps
   run at the same barrier clocks for every shard count, and float
   statistics accumulate per region and fold in region order. *)

module Sim = Engine.Sim
module Rng = Engine.Rng
module Fabric = Netsim.Fabric
module Metrics = Tracing.Metrics
module Msg_id = Protocol.Msg_id

(* The sharded wire protocol. A single source with bounded in-order
   sequence numbers means a seq *is* the message body: repairs carry
   the seq alone and payload bodies are never materialized, which is
   what lets 10^6 members run without per-packet allocation. Messages
   are bit-packed into an immediate int —

     bits 0-1   tag (0 Data, 1 Session, 2 Remote_request, 3 Remote_repair)
     bits 2-21  seq (Data/Remote_*: the sequence number; Session: max seq)
     bits 22-41 origin region   (Remote_request only)
     bits 42-61 origin member   (Remote_request only)

   — so a parcel is never a heap object and dispatch is two bit ops. *)
type msg = int

let field_bits = 20

let field_mask = (1 lsl field_bits) - 1

let msg_data seq = seq lsl 2

let msg_session max_seq = (max_seq lsl 2) lor 1

let msg_remote_request ~seq ~origin_region ~origin_member =
  (origin_member lsl (2 + (2 * field_bits)))
  lor (origin_region lsl (2 + field_bits))
  lor (seq lsl 2)
  lor 2

let msg_remote_repair seq = (seq lsl 2) lor 3

let[@inline] msg_seq m = (m lsr 2) land field_mask

let[@inline] msg_origin_region m = (m lsr (2 + field_bits)) land field_mask

let[@inline] msg_origin_member m = (m lsr (2 + (2 * field_bits))) land field_mask

(* recovery table keyed by the packed (arena handle, seq) int: identity
   is a perfect hash (functor-made, per the D3 rule) *)
module Key_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  let hash k = k land max_int
end)

(* Recovery records are pooled per shard (a free list threaded through
   [next_free], terminated by the [rec_nil] sentinel) and their retry
   thunks are allocated once per record: re-arming a retry timer costs
   only the Sim schedule, never a fresh closure or [Some] box — timers
   use [Sim.never] as the "not armed" value. [key] packs (handle, seq)
   so the thunks recover their target from the record itself. *)
type recovery = {
  mutable key : int;  (* g * cap + seq while active; negative when free *)
  mutable detected_at : float;
  mutable local_timer : Sim.handle;
  mutable remote_timer : Sim.handle;
  mutable local_tries : int;
  mutable remote_tries : int;
  mutable next_free : recovery;
  mutable local_thunk : unit -> unit;
  mutable remote_thunk : unit -> unit;
}

let rec_nil =
  let rec r =
    {
      key = -2;
      detected_at = 0.0;
      local_timer = Sim.never;
      remote_timer = Sim.never;
      local_tries = 0;
      remote_tries = 0;
      next_free = r;
      local_thunk = ignore;
      remote_thunk = ignore;
    }
  in
  r

(* the per-shard event spine: everything a shard owns, shared by all
   of its regions. [m_base] anchors the arena: arena handle g <->
   global member id [m_base + g], and node ids are global member ids,
   so a handle alone recovers node, region and region-local index. *)
type spine = {
  sim : Sim.t;
  metrics : Metrics.t;
  mh_delivered : Metrics.handle;
  mh_touches : Metrics.handle;
  mh_discarded : Metrics.handle;
  observer : Events.observer option;
  observing : bool;
  m_base : int;  (* global member id of arena handle 0 *)
  m_count : int;  (* members in this shard's arena *)
  soa : Member_soa.t;  (* ONE arena for every region of the shard *)
  rngs : Rng.t array;  (* one generator per member, indexed by handle *)
  recoveries : recovery Key_tbl.t;
      (* keyed g*cap+seq; only ever indexed, never iterated *)
  mutable free_rec : recovery;  (* pool of finished recovery records *)
}

type t = {
  config : Config.t;
  quantum : float;
  intra : float;
  inter : float;
  local_retry : float;
  remote_retry : float;
  cap : int;
  total : int;
  nregions : int;
  (* region state, struct-of-arrays: a region is an index, not an
     object. All fixed per-region cost lives in these flat rows. *)
  r_shard : int array;
  r_size : int array;
  r_base : int array;  (* global id of region member 0 *)
  r_parent : int array;  (* parent region, -1 for the sender's *)
  r_hops : int array;  (* hop distance from the sender's region *)
  r_recovered : int array;
  r_latency_sum : float array;
      (* accumulated in region event order (shard-invariant), folded in
         region order: float determinism across shard counts *)
  member_region : int array;  (* global member id -> region *)
  spines : spine array;
  fabric : msg Fabric.t;
  scratch : int array;  (* multicast reach scan, sized max region *)
  iota : int array;  (* [|0; 1; ...|]: the shared everyone-fanout dsts *)
  sender_node : Node_id.t;
  mutable next_seq : int;
  mutable session_on : bool;
}

let regions t = t.nregions

let shards t = Array.length t.spines

let size t = t.total

let sender_sim t = t.spines.(t.r_shard.(0)).sim

let[@inline] id_of t seq = Msg_id.make ~source:t.sender_node ~seq

(* arena handle of region [r]'s member [m] on the region's spine *)
let[@inline] handle_of t sp r m = t.r_base.(r) + m - sp.m_base

let[@inline] region_of t sp g = t.member_region.(sp.m_base + g)

let emit sp g event =
  match sp.observer with
  | None -> ()
  | Some f -> f ~time:(Sim.now sp.sim) ~self:(Node_id.of_int (sp.m_base + g)) event

let tries_exhausted t tries =
  match t.config.Config.max_recovery_tries with
  | None -> false
  | Some m -> tries >= m

(* [find]-with-exception: every delivery probes the recovery table and
   the overwhelmingly common miss must not pay a [Some] box *)
let finish_recovery t sp g seq =
  let k = (g * t.cap) + seq in
  match Key_tbl.find sp.recoveries k with
  | exception Not_found -> ()
  | r ->
    Sim.cancel r.local_timer;
    Sim.cancel r.remote_timer;
    Key_tbl.remove sp.recoveries k;
    let latency = Sim.now sp.sim -. r.detected_at in
    let region = region_of t sp g in
    t.r_recovered.(region) <- t.r_recovered.(region) + 1;
    t.r_latency_sum.(region) <- t.r_latency_sum.(region) +. latency;
    if sp.observing then
      emit sp g (Events.Recovered { id = id_of t seq; latency; local_tries = r.local_tries });
    (* recycle: the cancelled timers can never fire the thunks again *)
    r.key <- -1;
    r.local_timer <- Sim.never;
    r.remote_timer <- Sim.never;
    r.next_free <- sp.free_rec;
    sp.free_rec <- r

(* ------------------------------------------------------------------ *)
(* Receive / recovery machine                                          *)
(* ------------------------------------------------------------------ *)

(* first delivery of [seq]'s body to arena handle [g] (receipt bit
   already set by the caller via note_data / note_repaired) *)
let rec accept t sp g seq ~via =
  let now = Sim.now sp.sim in
  finish_recovery t sp g seq;
  sp.mh_delivered := !(sp.mh_delivered) + 1;
  Member_soa.note_delivery sp.soa g;
  if sp.observing then emit sp g (Events.Delivered { id = id_of t seq; via });
  if Member_soa.insert_short sp.soa g seq ~now then
    if sp.observing then
      emit sp g (Events.Buffered { id = id_of t seq; phase = Buffer.Short_term })

and start_recovery t sp g seq =
  let k = (g * t.cap) + seq in
  if (not (Key_tbl.mem sp.recoveries k)) && not (Member_soa.received sp.soa g seq) then begin
    if sp.observing then emit sp g (Events.Loss_detected (id_of t seq));
    let r = alloc_recovery t sp in
    r.key <- k;
    r.detected_at <- Sim.now sp.sim;
    r.local_tries <- 0;
    r.remote_tries <- 0;
    Key_tbl.add sp.recoveries k r;
    local_round t sp r;
    remote_round t sp r
  end

(* pop a pooled record, or make a fresh one whose retry thunks are tied
   to it for life — rounds re-arm by rescheduling the same closure *)
and alloc_recovery t sp =
  let r = sp.free_rec in
  if r == rec_nil then begin
    let r =
      {
        key = -1;
        detected_at = 0.0;
        local_timer = Sim.never;
        remote_timer = Sim.never;
        local_tries = 0;
        remote_tries = 0;
        next_free = rec_nil;
        local_thunk = ignore;
        remote_thunk = ignore;
      }
    in
    r.local_thunk <- (fun () -> local_round t sp r);
    r.remote_thunk <- (fun () -> remote_round t sp r);
    r
  end
  else begin
    sp.free_rec <- r.next_free;
    r.next_free <- rec_nil;
    r
  end

(* one local round: probe a uniformly random other region member, arm
   the retry timer (armed even when alone, exactly like Member) *)
and local_round t sp r =
  if not (tries_exhausted t r.local_tries) then begin
    let g = r.key / t.cap in
    let seq = r.key - (g * t.cap) in
    let region = region_of t sp g in
    let rsize = t.r_size.(region) in
    if rsize > 1 then begin
      let m = sp.m_base + g - t.r_base.(region) in
      let j = Rng.int sp.rngs.(g) (rsize - 1) in
      let j = if j >= m then j + 1 else j in
      r.local_tries <- r.local_tries + 1;
      ignore
        (Sim.schedule sp.sim ~delay:t.intra (fun () ->
             handle_local_request t sp (g - m + j) seq ~origin:g))
    end;
    r.local_timer <- Sim.schedule sp.sim ~delay:t.local_retry r.local_thunk
  end

(* one remote round: with probability lambda/n ask a random parent-region
   member through the fabric; the timer is armed regardless *)
and remote_round t sp r =
  let g = r.key / t.cap in
  let region = region_of t sp g in
  let parent = t.r_parent.(region) in
  if parent >= 0 && not (tries_exhausted t r.remote_tries) then begin
    let seq = r.key - (g * t.cap) in
    let p = Float.min 1.0 (t.config.Config.lambda /. float_of_int t.r_size.(region)) in
    r.remote_tries <- r.remote_tries + 1;
    if Rng.bernoulli sp.rngs.(g) ~p then begin
      let pm = Rng.int sp.rngs.(g) t.r_size.(parent) in
      Fabric.unicast t.fabric ~src_region:region ~dst_region:parent ~dst_member:pm
        ~arrival:(Sim.now sp.sim +. t.intra +. t.inter)
        (msg_remote_request ~seq ~origin_region:region
           ~origin_member:(sp.m_base + g - t.r_base.(region)))
    end;
    r.remote_timer <- Sim.schedule sp.sim ~delay:t.remote_retry r.remote_thunk
  end

(* a region neighbour asked [g] for [seq]; a bufferer touches the entry
   (feedback) and replies, anyone else ignores it — the requester's
   timer probes someone else (the paper's local phase) *)
and handle_local_request t sp g seq ~origin =
  if Member_soa.buffered sp.soa g seq then begin
    sp.mh_touches := !(sp.mh_touches) + 1;
    Member_soa.touch sp.soa g seq ~now:(Sim.now sp.sim);
    ignore
      (Sim.schedule sp.sim ~delay:t.intra (fun () ->
           handle_repair t sp origin seq ~remote:false))
  end

and handle_repair t sp g seq ~remote =
  if Member_soa.note_repaired sp.soa g seq then begin
    accept t sp g seq ~via:`Repair;
    (* a repair from a remote region is re-multicast locally so
       neighbours sharing the loss receive it (Section 2.2) *)
    if remote then
      ignore (Sim.schedule sp.sim ~delay:t.intra (fun () -> regional_sweep t sp g seq))
  end
  else begin
    (* duplicate repair: feedback only *)
    sp.mh_touches := !(sp.mh_touches) + 1;
    Member_soa.touch sp.soa g seq ~now:(Sim.now sp.sim)
  end

(* one coalesced event delivering the regional re-multicast of [seq] to
   every member of [g0]'s region but [g0] itself, in member order *)
and regional_sweep t sp g0 seq =
  let region = region_of t sp g0 in
  let gfirst = t.r_base.(region) - sp.m_base in
  (* one boxed read of the clock for the whole sweep, not one per touch *)
  let now = Sim.now sp.sim in
  for g = gfirst to gfirst + t.r_size.(region) - 1 do
    if g <> g0 then
      if Member_soa.note_repaired sp.soa g seq then accept t sp g seq ~via:`Regional
      else begin
        sp.mh_touches := !(sp.mh_touches) + 1;
        Member_soa.touch sp.soa g seq ~now
      end
  done

and handle_data t sp g seq =
  (* gap detection reports into the spine's create-time [on_gap]
     callback (-> start_recovery): no closure on the deliver path *)
  if Member_soa.note_data sp.soa g seq then accept t sp g seq ~via:`Multicast

(* a session advertisement (or learning a seq exists from a request
   about it) can reveal losses we hadn't detected yet *)
let deliver_session sp g max_seq = Member_soa.note_session sp.soa g ~max_seq

(* Section 3.3's cases, bounded for the scale path: a bufferer touches
   and replies; a member that never received the seq records the loss
   for itself (the origin's own timer retries); a member that received
   and discarded stays silent — no region-wide search at 10^6 scale *)
let handle_remote_request t sp g ~seq ~origin_region ~origin_member =
  if Member_soa.buffered sp.soa g seq then begin
    let now = Sim.now sp.sim in
    sp.mh_touches := !(sp.mh_touches) + 1;
    Member_soa.touch sp.soa g seq ~now;
    Fabric.unicast t.fabric
      ~src_region:(region_of t sp g)
      ~dst_region:origin_region ~dst_member:origin_member
      ~arrival:(now +. t.intra +. t.inter)
      (msg_remote_repair seq)
  end
  else if not (Member_soa.received sp.soa g seq) then deliver_session sp g seq

let handle_parcel t region member msg =
  let sp = t.spines.(t.r_shard.(region)) in
  let g = t.r_base.(region) + member - sp.m_base in
  match msg land 3 with
  | 0 -> handle_data t sp g (msg_seq msg)
  | 1 -> deliver_session sp g (msg_seq msg)
  | 2 ->
    handle_remote_request t sp g ~seq:(msg_seq msg)
      ~origin_region:(msg_origin_region msg) ~origin_member:(msg_origin_member msg)
  | _ -> handle_repair t sp g (msg_seq msg) ~remote:true

(* ------------------------------------------------------------------ *)
(* Idle / lifetime deadlines (the two-phase policy over the SoA ring)   *)
(* ------------------------------------------------------------------ *)

let idle_decision t sp ~g ~seq =
  let now = Sim.now sp.sim in
  let region = region_of t sp g in
  let rsize = t.r_size.(region) in
  let c = t.config.Config.expected_bufferers in
  let keeps =
    match t.config.Config.selection with
    | Config.Randomized -> Long_term.decide sp.rngs.(g) ~c ~n:rsize
    | Config.Hashed ->
      Long_term.hashed_decide
        ~node:(Node_id.of_int (sp.m_base + g))
        ~id:(id_of t seq) ~c ~n:rsize
  in
  if keeps then begin
    if Member_soa.promote_long sp.soa g seq ~now then
      if sp.observing then emit sp g (Events.Promoted_long_term (id_of t seq))
  end
  else if Member_soa.drop sp.soa g seq ~now then
    sp.mh_discarded := !(sp.mh_discarded) + 1

let lifetime_expired sp ~g ~seq =
  if Member_soa.drop sp.soa g seq ~now:(Sim.now sp.sim) then
    sp.mh_discarded := !(sp.mh_discarded) + 1

(* ------------------------------------------------------------------ *)
(* Sender: multicast and session fan-out                               *)
(* ------------------------------------------------------------------ *)

(* session ticker, started on first multicast when configured; remote
   regions get one fabric fanout each, the sender's own region one
   coalesced local event *)
let rec session_tick t interval =
  let sp = t.spines.(t.r_shard.(0)) in
  if t.next_seq > 0 then begin
    let max_seq = t.next_seq - 1 in
    let now = Sim.now sp.sim in
    let size0 = t.r_size.(0) in
    if size0 > 1 then
      ignore
        (Sim.schedule sp.sim ~delay:t.intra (fun () ->
             let gfirst = handle_of t sp 0 0 in
             for g = gfirst + 1 to gfirst + size0 - 1 do
               deliver_session sp g max_seq
             done));
    for r = 1 to t.nregions - 1 do
      (* the shared iota array: the fabric only reads dsts, so all
         session parcels can alias the one everyone-array *)
      Fabric.fanout t.fabric ~src_region:0 ~dst_region:r
        ~arrival:(now +. t.intra +. (float_of_int t.r_hops.(r) *. t.inter))
        ~dsts:t.iota ~n:t.r_size.(r) (msg_session max_seq)
    done
  end;
  ignore (Sim.schedule sp.sim ~delay:interval (fun () -> session_tick t interval))

let ensure_sessions t =
  if not t.session_on then
    match t.config.Config.session_interval with
    | None -> ()
    | Some interval ->
      t.session_on <- true;
      ignore
        (Sim.schedule t.spines.(t.r_shard.(0)).sim ~delay:interval (fun () ->
             session_tick t interval))

let multicast t ~reach =
  if t.next_seq >= t.cap then invalid_arg "Sharded.multicast: sequence capacity exhausted";
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  ensure_sessions t;
  let sp = t.spines.(t.r_shard.(0)) in
  let now = Sim.now sp.sim in
  let g0 = handle_of t sp 0 0 in
  (* the sender's own copy: bookkeeping without a Delivered event,
     mirroring Member.own_send_bookkeeping (the sender sends in seq
     order, so its note_data can never detect a gap) *)
  ignore (Member_soa.note_data sp.soa g0 seq);
  sp.mh_delivered := !(sp.mh_delivered) + 1;
  Member_soa.note_delivery sp.soa g0;
  if Member_soa.insert_short sp.soa g0 seq ~now then
    if sp.observing then
      emit sp g0 (Events.Buffered { id = id_of t seq; phase = Buffer.Short_term });
  (* fan out, consulting [reach] in (region, member) order; the local
     region is one coalesced event, every other region one parcel *)
  for r = 0 to t.nregions - 1 do
    let cnt = ref 0 in
    let first = if r = 0 then 1 else 0 in
    for m = first to t.r_size.(r) - 1 do
      if reach ~region:r ~member:m then begin
        t.scratch.(!cnt) <- m;
        incr cnt
      end
    done;
    if !cnt > 0 then begin
      if r = 0 then begin
        (* the local coalesced event needs the reach set to survive
           until it fires, so it gets its own copy; remote regions reuse
           [scratch] directly — the fabric copies into pooled storage *)
        let dsts = Array.sub t.scratch 0 !cnt in
        ignore
          (Sim.schedule sp.sim ~delay:t.intra (fun () ->
               Array.iter (fun m -> handle_data t sp (g0 + m) seq) dsts))
      end
      else
        Fabric.fanout t.fabric ~src_region:0 ~dst_region:r
          ~arrival:(now +. t.intra +. (float_of_int t.r_hops.(r) *. t.inter))
          ~dsts:t.scratch ~n:!cnt (msg_data seq)
    end
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let max_shards = 128

(* placeholder generator for pre-sizing the per-spine rng arrays; every
   slot is overwritten during construction before use *)
let rng_dummy = Engine.Rng.create ~seed:0

let create ~seed ~config ~sizes ~parents ~shards ~cap ?(intra_ms = 5.0) ?(inter_ms = 50.0)
    ?observer () =
  (match Config.validate config with
   | Ok () -> ()
   | Error _ -> invalid_arg "Sharded.create: invalid config");
  let nregions = Array.length sizes in
  if nregions = 0 then invalid_arg "Sharded.create: at least one region required";
  if Array.length parents <> nregions then
    invalid_arg "Sharded.create: sizes and parents must have the same length";
  if parents.(0) <> -1 then invalid_arg "Sharded.create: region 0 must be the root (parent -1)";
  for r = 1 to nregions - 1 do
    if parents.(r) < 0 || parents.(r) >= r then
      invalid_arg "Sharded.create: parents must be topologically ordered toward region 0"
  done;
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Sharded.create: region sizes must be positive")
    sizes;
  if cap <= 0 then invalid_arg "Sharded.create: cap must be positive";
  (* the wire protocol bit-packs seq, origin region and origin member
     into 20-bit fields: oversized configurations must fail loudly
     here, not alias on the wire *)
  if cap > 1 lsl field_bits then
    invalid_arg "Sharded.create: cap exceeds the packed wire seq field";
  if nregions > 1 lsl field_bits then
    invalid_arg "Sharded.create: region count exceeds the packed wire field";
  Array.iter
    (fun s ->
      if s > 1 lsl field_bits then
        invalid_arg "Sharded.create: region size exceeds the packed wire field")
    sizes;
  if shards < 1 || shards > max_shards then
    invalid_arg "Sharded.create: shards must be in [1, 128]";
  let quantum = config.Config.deadline_quantum in
  if quantum <= 0.0 then
    invalid_arg "Sharded.create: config.deadline_quantum must be positive";
  if intra_ms <= 0.0 || inter_ms <= 0.0 then
    invalid_arg "Sharded.create: latencies must be positive";
  if intra_ms +. inter_ms < quantum then
    invalid_arg "Sharded.create: intra_ms + inter_ms must cover one deadline quantum";
  (* contiguous block partition: shard s owns regions [s*R/S, (s+1)*R/S)
     — a shard may own zero regions when shards > regions, and its
     spine is then an empty arena that stays quiescent *)
  let r_shard = Array.make nregions 0 in
  for s = 0 to shards - 1 do
    let lo = s * nregions / shards and hi = (s + 1) * nregions / shards in
    for r = lo to hi - 1 do
      r_shard.(r) <- s
    done
  done;
  let r_hops = Array.make nregions 0 in
  for r = 1 to nregions - 1 do
    r_hops.(r) <- r_hops.(parents.(r)) + 1
  done;
  let r_base = Array.make nregions 0 in
  let total = ref 0 in
  for r = 0 to nregions - 1 do
    r_base.(r) <- !total;
    total := !total + sizes.(r)
  done;
  let total = !total in
  let member_region = Array.make total 0 in
  for r = 0 to nregions - 1 do
    Array.fill member_region r_base.(r) sizes.(r) r
  done;
  let idle_timeout =
    match config.Config.idle_rounds with
    | Some rounds -> rounds *. (2.0 *. intra_ms)
    | None -> config.Config.idle_threshold
  in
  (* the fabric's deliver callback and the per-spine deadline callbacks
     close over [t] through this cell; they only ever fire from inside
     event loops, long after [create] returns *)
  let t_cell = ref None in
  let get_t () = match !t_cell with Some t -> t | None -> assert false in
  let make_spine s =
    let lo = s * nregions / shards and hi = (s + 1) * nregions / shards in
    let m_base = if lo < hi then r_base.(lo) else 0 in
    let m_count = ref 0 in
    for r = lo to hi - 1 do
      m_count := !m_count + sizes.(r)
    done;
    let m_count = !m_count in
    let metrics = Metrics.create () in
    let obs = match observer with None -> None | Some f -> f s in
    (* pure-heap scheduler: the spine keeps its mass deadlines in the
       arena's barrier-driven ring, so the Sim queue holds only
       recovery timers and parcel arrivals — small and cancel-heavy,
       where the array-backed heap is allocation-free while the timer
       wheel pays list conses, bucket sorts and compaction filters on
       every recovery round *)
    let sim = Sim.create ~wheel:false () in
    let soa =
      Member_soa.create ~sim ~n:m_count ~cap ~quantum ~idle_timeout
        ~lifetime:config.Config.long_term_lifetime ~barrier_driven:true
        ~on_idle:(fun ~member ~seq ->
          let t = get_t () in
          idle_decision t t.spines.(s) ~g:member ~seq)
        ~on_lifetime:(fun ~member ~seq ->
          let t = get_t () in
          lifetime_expired t.spines.(s) ~g:member ~seq)
        ~on_gap:(fun ~member ~seq ->
          let t = get_t () in
          start_recovery t t.spines.(s) member seq)
        ()
    in
    (* region streams are substreams of the seed indexed by region id —
       independent of the region-to-shard assignment — and member
       generators are split from them in member order; the flat
       per-spine array keeps handle indexing one load *)
    let rngs = if m_count = 0 then [||] else Array.make m_count rng_dummy in
    let g = ref 0 in
    for r = lo to hi - 1 do
      let rng0 = Rng.substream ~seed ~index:r in
      for _m = 0 to sizes.(r) - 1 do
        rngs.(!g) <- Rng.split rng0;
        incr g
      done
    done;
    {
      sim;
      metrics;
      mh_delivered = Metrics.handle metrics "rrmp.delivered";
      mh_touches = Metrics.handle metrics "rrmp.feedback_touches";
      mh_discarded = Metrics.handle metrics "rrmp.discarded";
      observer = obs;
      observing = obs <> None;
      m_base;
      m_count;
      soa;
      rngs;
      recoveries = Key_tbl.create 16;
      free_rec = rec_nil;
    }
  in
  let spines = Array.make shards (make_spine 0) in
  for s = 1 to shards - 1 do
    spines.(s) <- make_spine s
  done;
  let max_size = Array.fold_left (fun acc s -> if s > acc then s else acc) 0 sizes in
  let fabric =
    Fabric.create ~regions:nregions ~shards
      ~shard_of:(fun r -> r_shard.(r))
      ~quantum
      ~sim_of:(fun r -> spines.(r_shard.(r)).sim)
      ~deliver:(fun ~region ~member msg -> handle_parcel (get_t ()) region member msg)
  in
  let rtt = 2.0 *. intra_ms in
  let t =
    {
      config;
      quantum;
      intra = intra_ms;
      inter = inter_ms;
      local_retry = Float.max config.Config.min_timer (config.Config.rtt_multiplier *. rtt);
      remote_retry =
        Float.max config.Config.min_timer
          (config.Config.rtt_multiplier *. (2.0 *. (intra_ms +. inter_ms)));
      cap;
      total;
      nregions;
      r_shard;
      r_size = Array.copy sizes;
      r_base;
      r_parent = Array.copy parents;
      r_hops;
      r_recovered = Array.make nregions 0;
      r_latency_sum = Array.make nregions 0.0;
      member_region;
      spines;
      fabric;
      scratch = Array.make max_size 0;
      iota = Array.init max_size (fun i -> i);
      sender_node = Node_id.of_int 0;
      next_seq = 0;
      session_on = false;
    }
  in
  t_cell := Some t;
  t

(* ------------------------------------------------------------------ *)
(* Driving and reading out                                             *)
(* ------------------------------------------------------------------ *)

let run t ~until =
  let nsh = Array.length t.spines in
  let sims = Array.make nsh t.spines.(0).sim in
  for s = 1 to nsh - 1 do
    sims.(s) <- t.spines.(s).sim
  done;
  Engine.Shard.run ~sims
    ~on_window:(fun ~shard ~barrier ->
      (* the shard's clock sits exactly at [barrier], so deadlines due
         at tick = floor(barrier / quantum) fire at the same virtual
         time the Sim-scheduled sweeps would have run them; the barrier
         sequence is the same for every shard count, so sweep timing is
         shard-invariant *)
      Member_soa.sweep_until t.spines.(shard).soa
        ~tick:(int_of_float (Float.floor ((barrier /. t.quantum) +. 1e-9))))
    ~busy:(fun s -> Member_soa.deadlines_pending t.spines.(s).soa)
    ~quantum:t.quantum ~until
    ~exchange:(fun ~barrier -> Fabric.exchange t.fabric ~barrier)
    ();
  Array.iter (fun sp -> Member_soa.settle_all sp.soa ~now:until) t.spines

(* spine folds visit members in ascending global id — which is
   ascending (region, member) order, the same fold order as a
   per-region walk, so float sums are bit-identical across shard
   counts *)
let delivered_total t =
  let sum = ref 0 in
  Array.iter
    (fun sp ->
      for g = 0 to sp.m_count - 1 do
        sum := !sum + Member_soa.deliveries sp.soa g
      done)
    t.spines;
  !sum

let touches_total t =
  Array.fold_left
    (fun acc sp -> acc + Metrics.counter sp.metrics "rrmp.feedback_touches")
    0 t.spines

let recovered_total t = Array.fold_left ( + ) 0 t.r_recovered

let recovery_latency_sum t = Array.fold_left ( +. ) 0.0 t.r_latency_sum

let occupancy_msg_ms_total t =
  let sum = ref 0.0 in
  Array.iter
    (fun sp ->
      for g = 0 to sp.m_count - 1 do
        sum := !sum +. Member_soa.occupancy_msg_ms sp.soa g
      done)
    t.spines;
  !sum

let peak_buffered t =
  let peak = ref 0 in
  Array.iter
    (fun sp ->
      for g = 0 to sp.m_count - 1 do
        let p = Member_soa.peak_size sp.soa g in
        if p > !peak then peak := p
      done)
    t.spines;
  !peak

let sim_events t =
  Array.fold_left (fun acc sp -> acc + Sim.events_executed sp.sim) 0 t.spines

let sim_schedules t =
  Array.fold_left (fun acc sp -> acc + Sim.events_scheduled sp.sim) 0 t.spines

let cross_region_parcels t = Fabric.posted t.fabric

let long_term_bufferers t ~seq =
  Array.fold_left (fun acc sp -> acc + Member_soa.promotions_of_seq sp.soa seq) 0 t.spines

let shard_metrics t s = t.spines.(s).metrics
