(* Region-sharded protocol driver (see the .mli for the architecture).

   Concurrency story: every region lives on exactly one shard, and a
   shard's regions are touched only by the domain running that shard's
   Sim window (Engine.Shard hands each shard to one worker at a time).
   Cross-region messages never call into another region's state
   directly — they are posted to the fabric from the sending shard's
   domain and injected by the coordinator between windows — so no lock
   is needed anywhere. Determinism: all randomness comes from
   per-region substreams, all cross-region traffic is quantized through
   the barrier, and float statistics accumulate per region. *)

module Sim = Engine.Sim
module Rng = Engine.Rng
module Fabric = Netsim.Fabric
module Metrics = Tracing.Metrics
module Msg_id = Protocol.Msg_id

(* The sharded wire protocol. A single source with bounded in-order
   sequence numbers means a seq *is* the message body: repairs carry
   the seq alone and payload bodies are never materialized, which is
   what lets 10^6 members run without per-packet allocation. Messages
   are bit-packed into an immediate int —

     bits 0-1   tag (0 Data, 1 Session, 2 Remote_request, 3 Remote_repair)
     bits 2-21  seq (Data/Remote_*: the sequence number; Session: max seq)
     bits 22-41 origin region   (Remote_request only)
     bits 42-61 origin member   (Remote_request only)

   — so a parcel is never a heap object and dispatch is two bit ops. *)
type msg = int

let field_bits = 20

let field_mask = (1 lsl field_bits) - 1

let msg_data seq = seq lsl 2

let msg_session max_seq = (max_seq lsl 2) lor 1

let msg_remote_request ~seq ~origin_region ~origin_member =
  (origin_member lsl (2 + (2 * field_bits)))
  lor (origin_region lsl (2 + field_bits))
  lor (seq lsl 2)
  lor 2

let msg_remote_repair seq = (seq lsl 2) lor 3

let[@inline] msg_seq m = (m lsr 2) land field_mask

let[@inline] msg_origin_region m = (m lsr (2 + field_bits)) land field_mask

let[@inline] msg_origin_member m = (m lsr (2 + (2 * field_bits))) land field_mask

(* recovery table keyed by the packed (member, seq) int: identity is a
   perfect hash (functor-made, per the D3 rule) *)
module Key_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  let hash k = k land max_int
end)

(* Recovery records are pooled per region (a free list threaded through
   [next_free], terminated by the [rec_nil] sentinel) and their retry
   thunks are allocated once per record: re-arming a retry timer costs
   only the Sim schedule, never a fresh closure or [Some] box — timers
   use [Sim.never] as the "not armed" value. [key] packs (member, seq)
   so the thunks recover their target from the record itself. *)
type recovery = {
  mutable key : int;  (* m * cap + seq while active; negative when free *)
  mutable detected_at : float;
  mutable local_timer : Sim.handle;
  mutable remote_timer : Sim.handle;
  mutable local_tries : int;
  mutable remote_tries : int;
  mutable next_free : recovery;
  mutable local_thunk : unit -> unit;
  mutable remote_thunk : unit -> unit;
}

let rec_nil =
  let rec r =
    {
      key = -2;
      detected_at = 0.0;
      local_timer = Sim.never;
      remote_timer = Sim.never;
      local_tries = 0;
      remote_tries = 0;
      next_free = r;
      local_thunk = ignore;
      remote_thunk = ignore;
    }
  in
  r

(* per-shard execution context: its own Sim, metrics registry and
   observer, so hot-path gating and counter bumps never cross domains *)
type shard_ctx = {
  sim : Sim.t;
  metrics : Metrics.t;
  mh_delivered : Metrics.handle;
  mh_touches : Metrics.handle;
  mh_discarded : Metrics.handle;
  observer : Events.observer option;
  observing : bool;
}

type region = {
  r_id : int;
  shard : int;
  size : int;
  base : int;  (* global id of member 0: node ids for events *)
  parent : int;  (* parent region, -1 for the sender's *)
  hops : int;  (* hop distance from the sender's region *)
  soa : Member_soa.t;
  dsts_all : int array;  (* [|0 .. size-1|], shared session-fanout dsts *)
  rngs : Rng.t array;  (* one generator per member, split in order *)
  recoveries : recovery Key_tbl.t;
      (* keyed m*cap+seq; only ever indexed, never iterated *)
  mutable free_rec : recovery;  (* pool of finished recovery records *)
  mutable recovered : int;
  mutable latency_sum : float;
      (* accumulated in region event order (shard-invariant), folded in
         region order: float determinism across shard counts *)
}

type t = {
  config : Config.t;
  quantum : float;
  intra : float;
  inter : float;
  local_retry : float;
  remote_retry : float;
  cap : int;
  total : int;
  regs : region array;
  ctxs : shard_ctx array;
  fabric : msg Fabric.t;
  scratch : int array;  (* multicast reach scan, sized max region *)
  sender_node : Node_id.t;
  mutable next_seq : int;
  mutable session_on : bool;
}

let regions t = Array.length t.regs

let shards t = Array.length t.ctxs

let size t = t.total

let sender_sim t = t.ctxs.(t.regs.(0).shard).sim

let[@inline] rkey t m seq = (m * t.cap) + seq

let[@inline] id_of t seq = Msg_id.make ~source:t.sender_node ~seq

let[@inline] node_of reg m = Node_id.of_int (reg.base + m)

let emit t reg m event =
  let ctx = t.ctxs.(reg.shard) in
  match ctx.observer with
  | None -> ()
  | Some f -> f ~time:(Sim.now ctx.sim) ~self:(node_of reg m) event

let tries_exhausted t tries =
  match t.config.Config.max_recovery_tries with
  | None -> false
  | Some m -> tries >= m

let finish_recovery t reg m seq =
  let k = rkey t m seq in
  match Key_tbl.find_opt reg.recoveries k with
  | None -> ()
  | Some r ->
    Sim.cancel r.local_timer;
    Sim.cancel r.remote_timer;
    Key_tbl.remove reg.recoveries k;
    let ctx = t.ctxs.(reg.shard) in
    let latency = Sim.now ctx.sim -. r.detected_at in
    reg.recovered <- reg.recovered + 1;
    reg.latency_sum <- reg.latency_sum +. latency;
    if ctx.observing then
      emit t reg m (Events.Recovered { id = id_of t seq; latency; local_tries = r.local_tries });
    (* recycle: the cancelled timers can never fire the thunks again *)
    r.key <- -1;
    r.local_timer <- Sim.never;
    r.remote_timer <- Sim.never;
    r.next_free <- reg.free_rec;
    reg.free_rec <- r

(* ------------------------------------------------------------------ *)
(* Receive / recovery machine                                          *)
(* ------------------------------------------------------------------ *)

(* first delivery of [seq]'s body to member [m] (receipt bit already
   set by the caller via note_data / note_repaired) *)
let rec accept t reg m seq ~via =
  let ctx = t.ctxs.(reg.shard) in
  let now = Sim.now ctx.sim in
  finish_recovery t reg m seq;
  ctx.mh_delivered := !(ctx.mh_delivered) + 1;
  Member_soa.note_delivery reg.soa m;
  if ctx.observing then emit t reg m (Events.Delivered { id = id_of t seq; via });
  if Member_soa.insert_short reg.soa m seq ~now then
    if ctx.observing then
      emit t reg m (Events.Buffered { id = id_of t seq; phase = Buffer.Short_term })

and start_recovery t reg m seq =
  let k = rkey t m seq in
  if (not (Key_tbl.mem reg.recoveries k)) && not (Member_soa.received reg.soa m seq) then begin
    let ctx = t.ctxs.(reg.shard) in
    if ctx.observing then emit t reg m (Events.Loss_detected (id_of t seq));
    let r = alloc_recovery t reg in
    r.key <- k;
    r.detected_at <- Sim.now ctx.sim;
    r.local_tries <- 0;
    r.remote_tries <- 0;
    Key_tbl.add reg.recoveries k r;
    local_round t reg r;
    remote_round t reg r
  end

(* pop a pooled record, or make a fresh one whose retry thunks are tied
   to it for life — rounds re-arm by rescheduling the same closure *)
and alloc_recovery t reg =
  let r = reg.free_rec in
  if r == rec_nil then begin
    let r =
      {
        key = -1;
        detected_at = 0.0;
        local_timer = Sim.never;
        remote_timer = Sim.never;
        local_tries = 0;
        remote_tries = 0;
        next_free = rec_nil;
        local_thunk = ignore;
        remote_thunk = ignore;
      }
    in
    r.local_thunk <- (fun () -> local_round t reg r);
    r.remote_thunk <- (fun () -> remote_round t reg r);
    r
  end
  else begin
    reg.free_rec <- r.next_free;
    r.next_free <- rec_nil;
    r
  end

(* one local round: probe a uniformly random other region member, arm
   the retry timer (armed even when alone, exactly like Member) *)
and local_round t reg r =
  if not (tries_exhausted t r.local_tries) then begin
    let m = r.key / t.cap in
    let seq = r.key - (m * t.cap) in
    let ctx = t.ctxs.(reg.shard) in
    if reg.size > 1 then begin
      let j = Rng.int reg.rngs.(m) (reg.size - 1) in
      let j = if j >= m then j + 1 else j in
      r.local_tries <- r.local_tries + 1;
      ignore
        (Sim.schedule ctx.sim ~delay:t.intra (fun () ->
             handle_local_request t reg j seq ~origin:m))
    end;
    r.local_timer <- Sim.schedule ctx.sim ~delay:t.local_retry r.local_thunk
  end

(* one remote round: with probability lambda/n ask a random parent-region
   member through the fabric; the timer is armed regardless *)
and remote_round t reg r =
  if reg.parent >= 0 && not (tries_exhausted t r.remote_tries) then begin
    let m = r.key / t.cap in
    let seq = r.key - (m * t.cap) in
    let ctx = t.ctxs.(reg.shard) in
    let p = Float.min 1.0 (t.config.Config.lambda /. float_of_int reg.size) in
    r.remote_tries <- r.remote_tries + 1;
    if Rng.bernoulli reg.rngs.(m) ~p then begin
      let parent = t.regs.(reg.parent) in
      let pm = Rng.int reg.rngs.(m) parent.size in
      Fabric.unicast t.fabric ~src_region:reg.r_id ~dst_region:parent.r_id ~dst_member:pm
        ~arrival:(Sim.now ctx.sim +. t.intra +. t.inter)
        (msg_remote_request ~seq ~origin_region:reg.r_id ~origin_member:m)
    end;
    r.remote_timer <- Sim.schedule ctx.sim ~delay:t.remote_retry r.remote_thunk
  end

(* a region neighbour asked [m] for [seq]; a bufferer touches the entry
   (feedback) and replies, anyone else ignores it — the requester's
   timer probes someone else (the paper's local phase) *)
and handle_local_request t reg m seq ~origin =
  if Member_soa.buffered reg.soa m seq then begin
    let ctx = t.ctxs.(reg.shard) in
    ctx.mh_touches := !(ctx.mh_touches) + 1;
    Member_soa.touch reg.soa m seq ~now:(Sim.now ctx.sim);
    ignore
      (Sim.schedule ctx.sim ~delay:t.intra (fun () ->
           handle_repair t reg origin seq ~remote:false))
  end

and handle_repair t reg m seq ~remote =
  if Member_soa.note_repaired reg.soa m seq then begin
    accept t reg m seq ~via:`Repair;
    (* a repair from a remote region is re-multicast locally so
       neighbours sharing the loss receive it (Section 2.2) *)
    if remote then begin
      let ctx = t.ctxs.(reg.shard) in
      ignore
        (Sim.schedule ctx.sim ~delay:t.intra (fun () -> regional_sweep t reg seq ~src:m))
    end
  end
  else begin
    (* duplicate repair: feedback only *)
    let ctx = t.ctxs.(reg.shard) in
    ctx.mh_touches := !(ctx.mh_touches) + 1;
    Member_soa.touch reg.soa m seq ~now:(Sim.now ctx.sim)
  end

(* one coalesced event delivering the regional re-multicast of [seq] to
   every member but the re-sender, in member order *)
and regional_sweep t reg seq ~src =
  let ctx = t.ctxs.(reg.shard) in
  (* one boxed read of the clock for the whole sweep, not one per touch *)
  let now = Sim.now ctx.sim in
  for j = 0 to reg.size - 1 do
    if j <> src then
      if Member_soa.note_repaired reg.soa j seq then accept t reg j seq ~via:`Regional
      else begin
        ctx.mh_touches := !(ctx.mh_touches) + 1;
        Member_soa.touch reg.soa j seq ~now
      end
  done

and handle_data t reg m seq =
  (* gap detection reports into the region's create-time [on_gap]
     callback (-> start_recovery): no closure on the deliver path *)
  if Member_soa.note_data reg.soa m seq then accept t reg m seq ~via:`Multicast

(* a session advertisement (or learning a seq exists from a request
   about it) can reveal losses we hadn't detected yet *)
let deliver_session _t reg m max_seq = Member_soa.note_session reg.soa m ~max_seq

(* Section 3.3's cases, bounded for the scale path: a bufferer touches
   and replies; a member that never received the seq records the loss
   for itself (the origin's own timer retries); a member that received
   and discarded stays silent — no region-wide search at 10^6 scale *)
let handle_remote_request t reg m ~seq ~origin_region ~origin_member =
  let ctx = t.ctxs.(reg.shard) in
  if Member_soa.buffered reg.soa m seq then begin
    let now = Sim.now ctx.sim in
    ctx.mh_touches := !(ctx.mh_touches) + 1;
    Member_soa.touch reg.soa m seq ~now;
    Fabric.unicast t.fabric ~src_region:reg.r_id ~dst_region:origin_region
      ~dst_member:origin_member
      ~arrival:(now +. t.intra +. t.inter)
      (msg_remote_repair seq)
  end
  else if not (Member_soa.received reg.soa m seq) then deliver_session t reg m seq

let handle_parcel t region member msg =
  let reg = t.regs.(region) in
  match msg land 3 with
  | 0 -> handle_data t reg member (msg_seq msg)
  | 1 -> deliver_session t reg member (msg_seq msg)
  | 2 ->
    handle_remote_request t reg member ~seq:(msg_seq msg)
      ~origin_region:(msg_origin_region msg) ~origin_member:(msg_origin_member msg)
  | _ -> handle_repair t reg member (msg_seq msg) ~remote:true

(* ------------------------------------------------------------------ *)
(* Idle / lifetime deadlines (the two-phase policy over the SoA ring)   *)
(* ------------------------------------------------------------------ *)

let idle_decision t reg ~member ~seq =
  let ctx = t.ctxs.(reg.shard) in
  let now = Sim.now ctx.sim in
  let c = t.config.Config.expected_bufferers in
  let keeps =
    match t.config.Config.selection with
    | Config.Randomized -> Long_term.decide reg.rngs.(member) ~c ~n:reg.size
    | Config.Hashed ->
      Long_term.hashed_decide ~node:(node_of reg member) ~id:(id_of t seq) ~c ~n:reg.size
  in
  if keeps then begin
    if Member_soa.promote_long reg.soa member seq ~now then
      if ctx.observing then emit t reg member (Events.Promoted_long_term (id_of t seq))
  end
  else if Member_soa.drop reg.soa member seq ~now then
    ctx.mh_discarded := !(ctx.mh_discarded) + 1

let lifetime_expired t reg ~member ~seq =
  let ctx = t.ctxs.(reg.shard) in
  if Member_soa.drop reg.soa member seq ~now:(Sim.now ctx.sim) then
    ctx.mh_discarded := !(ctx.mh_discarded) + 1

(* ------------------------------------------------------------------ *)
(* Sender: multicast and session fan-out                               *)
(* ------------------------------------------------------------------ *)

(* session ticker, started on first multicast when configured; remote
   regions get one fabric fanout each, the sender's own region one
   coalesced local event *)
let rec session_tick t interval =
  let sreg = t.regs.(0) in
  let ctx = t.ctxs.(sreg.shard) in
  if t.next_seq > 0 then begin
    let max_seq = t.next_seq - 1 in
    let now = Sim.now ctx.sim in
    if sreg.size > 1 then
      ignore
        (Sim.schedule ctx.sim ~delay:t.intra (fun () ->
             for m = 1 to sreg.size - 1 do
               deliver_session t sreg m max_seq
             done));
    for r = 1 to Array.length t.regs - 1 do
      let reg = t.regs.(r) in
      (* the shared everyone-array: the fabric only reads dsts, so all
         session parcels of a region can alias one array *)
      Fabric.fanout t.fabric ~src_region:0 ~dst_region:r
        ~arrival:(now +. t.intra +. (float_of_int reg.hops *. t.inter))
        ~dsts:reg.dsts_all (msg_session max_seq)
    done
  end;
  ignore (Sim.schedule ctx.sim ~delay:interval (fun () -> session_tick t interval))

let ensure_sessions t =
  if not t.session_on then
    match t.config.Config.session_interval with
    | None -> ()
    | Some interval ->
      t.session_on <- true;
      let sreg = t.regs.(0) in
      ignore
        (Sim.schedule t.ctxs.(sreg.shard).sim ~delay:interval (fun () ->
             session_tick t interval))

let multicast t ~reach =
  if t.next_seq >= t.cap then invalid_arg "Sharded.multicast: sequence capacity exhausted";
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  ensure_sessions t;
  let sreg = t.regs.(0) in
  let ctx = t.ctxs.(sreg.shard) in
  let now = Sim.now ctx.sim in
  (* the sender's own copy: bookkeeping without a Delivered event,
     mirroring Member.own_send_bookkeeping (the sender sends in seq
     order, so its note_data can never detect a gap) *)
  ignore (Member_soa.note_data sreg.soa 0 seq);
  ctx.mh_delivered := !(ctx.mh_delivered) + 1;
  Member_soa.note_delivery sreg.soa 0;
  if Member_soa.insert_short sreg.soa 0 seq ~now then
    if ctx.observing then
      emit t sreg 0 (Events.Buffered { id = id_of t seq; phase = Buffer.Short_term });
  (* fan out, consulting [reach] in (region, member) order; the local
     region is one coalesced event, every other region one parcel *)
  for r = 0 to Array.length t.regs - 1 do
    let reg = t.regs.(r) in
    let cnt = ref 0 in
    let first = if r = 0 then 1 else 0 in
    for m = first to reg.size - 1 do
      if reach ~region:r ~member:m then begin
        t.scratch.(!cnt) <- m;
        incr cnt
      end
    done;
    if !cnt > 0 then begin
      if r = 0 then begin
        (* the local coalesced event needs the reach set to survive
           until it fires, so it gets its own copy; remote regions reuse
           [scratch] directly — the fabric copies into pooled storage *)
        let dsts = Array.sub t.scratch 0 !cnt in
        ignore
          (Sim.schedule ctx.sim ~delay:t.intra (fun () ->
               Array.iter (fun m -> handle_data t reg m seq) dsts))
      end
      else
        Fabric.fanout t.fabric ~src_region:0 ~dst_region:r
          ~arrival:(now +. t.intra +. (float_of_int reg.hops *. t.inter))
          ~dsts:t.scratch ~n:!cnt (msg_data seq)
    end
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~seed ~config ~sizes ~parents ~shards ~cap ?(intra_ms = 5.0) ?(inter_ms = 50.0)
    ?observer () =
  (match Config.validate config with
   | Ok () -> ()
   | Error _ -> invalid_arg "Sharded.create: invalid config");
  let nregions = Array.length sizes in
  if nregions = 0 then invalid_arg "Sharded.create: at least one region required";
  if Array.length parents <> nregions then
    invalid_arg "Sharded.create: sizes and parents must have the same length";
  if parents.(0) <> -1 then invalid_arg "Sharded.create: region 0 must be the root (parent -1)";
  for r = 1 to nregions - 1 do
    if parents.(r) < 0 || parents.(r) >= r then
      invalid_arg "Sharded.create: parents must be topologically ordered toward region 0"
  done;
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Sharded.create: region sizes must be positive")
    sizes;
  if cap <= 0 then invalid_arg "Sharded.create: cap must be positive";
  if shards < 1 || shards > nregions then
    invalid_arg "Sharded.create: shards must be in [1, regions]";
  let quantum = config.Config.deadline_quantum in
  if quantum <= 0.0 then
    invalid_arg "Sharded.create: config.deadline_quantum must be positive";
  if intra_ms <= 0.0 || inter_ms <= 0.0 then
    invalid_arg "Sharded.create: latencies must be positive";
  if intra_ms +. inter_ms < quantum then
    invalid_arg "Sharded.create: intra_ms + inter_ms must cover one deadline quantum";
  let make_ctx s =
    let metrics = Metrics.create () in
    let obs = match observer with None -> None | Some f -> f s in
    {
      (* pure-heap scheduler: the sharded path keeps its mass deadlines
         in Member_soa's coalesced rings, so the Sim queue holds only
         recovery timers and coalesced sweeps — small and cancel-heavy,
         where the array-backed heap is allocation-free while the timer
         wheel pays list conses, bucket sorts and compaction filters on
         every recovery round *)
      sim = Sim.create ~wheel:false ();
      metrics;
      mh_delivered = Metrics.handle metrics "rrmp.delivered";
      mh_touches = Metrics.handle metrics "rrmp.feedback_touches";
      mh_discarded = Metrics.handle metrics "rrmp.discarded";
      observer = obs;
      observing = obs <> None;
    }
  in
  let ctxs = Array.make shards (make_ctx 0) in
  for s = 1 to shards - 1 do
    ctxs.(s) <- make_ctx s
  done;
  (* contiguous block partition: shard s owns [s*R/S, (s+1)*R/S) *)
  let shard_of = Array.make nregions 0 in
  for s = 0 to shards - 1 do
    let lo = s * nregions / shards and hi = (s + 1) * nregions / shards in
    for r = lo to hi - 1 do
      shard_of.(r) <- s
    done
  done;
  let hops_of = Array.make nregions 0 in
  for r = 1 to nregions - 1 do
    hops_of.(r) <- hops_of.(parents.(r)) + 1
  done;
  let idle_timeout =
    match config.Config.idle_rounds with
    | Some rounds -> rounds *. (2.0 *. intra_ms)
    | None -> config.Config.idle_threshold
  in
  (* the fabric's deliver callback and the per-region deadline
     callbacks close over [t] through this cell; they only ever fire
     from inside event loops, long after [create] returns *)
  let t_cell = ref None in
  let get_t () = match !t_cell with Some t -> t | None -> assert false in
  let make_region r base =
    let shard = shard_of.(r) in
    let sim = ctxs.(shard).sim in
    let soa =
      Member_soa.create ~sim ~n:sizes.(r) ~cap ~quantum ~idle_timeout
        ~lifetime:config.Config.long_term_lifetime
        ~on_idle:(fun ~member ~seq ->
          let t = get_t () in
          idle_decision t t.regs.(r) ~member ~seq)
        ~on_lifetime:(fun ~member ~seq ->
          let t = get_t () in
          lifetime_expired t t.regs.(r) ~member ~seq)
        ~on_gap:(fun ~member ~seq ->
          let t = get_t () in
          start_recovery t t.regs.(r) member seq)
        ()
    in
    (* region streams are substreams of the seed indexed by region id —
       independent of the region-to-shard assignment — and member
       generators are split from them in member order *)
    let rng0 = Rng.substream ~seed ~index:r in
    let rngs = Array.make sizes.(r) rng0 in
    for m = 0 to sizes.(r) - 1 do
      rngs.(m) <- Rng.split rng0
    done;
    {
      r_id = r;
      shard;
      size = sizes.(r);
      base;
      parent = parents.(r);
      hops = hops_of.(r);
      soa;
      dsts_all = Array.init sizes.(r) (fun i -> i);
      rngs;
      recoveries = Key_tbl.create 16;
      free_rec = rec_nil;
      recovered = 0;
      latency_sum = 0.0;
    }
  in
  let regs = Array.make nregions (make_region 0 0) in
  let base = ref sizes.(0) in
  for r = 1 to nregions - 1 do
    regs.(r) <- make_region r !base;
    base := !base + sizes.(r)
  done;
  let max_size = Array.fold_left (fun acc s -> if s > acc then s else acc) 0 sizes in
  let fabric =
    Fabric.create ~regions:nregions ~quantum
      ~sim_of:(fun r -> ctxs.(shard_of.(r)).sim)
      ~deliver:(fun ~region ~member msg -> handle_parcel (get_t ()) region member msg)
  in
  let rtt = 2.0 *. intra_ms in
  let t =
    {
      config;
      quantum;
      intra = intra_ms;
      inter = inter_ms;
      local_retry = Float.max config.Config.min_timer (config.Config.rtt_multiplier *. rtt);
      remote_retry =
        Float.max config.Config.min_timer
          (config.Config.rtt_multiplier *. (2.0 *. (intra_ms +. inter_ms)));
      cap;
      total = !base;
      regs;
      ctxs;
      fabric;
      scratch = Array.make max_size 0;
      sender_node = Node_id.of_int 0;
      next_seq = 0;
      session_on = false;
    }
  in
  t_cell := Some t;
  t

(* ------------------------------------------------------------------ *)
(* Driving and reading out                                             *)
(* ------------------------------------------------------------------ *)

let run t ~until =
  let sims = Array.make (Array.length t.ctxs) t.ctxs.(0).sim in
  for s = 1 to Array.length t.ctxs - 1 do
    sims.(s) <- t.ctxs.(s).sim
  done;
  Engine.Shard.run ~sims ~quantum:t.quantum ~until
    ~exchange:(fun ~barrier -> Fabric.exchange t.fabric ~barrier)
    ();
  Array.iter (fun reg -> Member_soa.settle_all reg.soa ~now:until) t.regs

let delivered_total t =
  let sum = ref 0 in
  Array.iter
    (fun reg ->
      for m = 0 to reg.size - 1 do
        sum := !sum + Member_soa.deliveries reg.soa m
      done)
    t.regs;
  !sum

let touches_total t =
  Array.fold_left
    (fun acc ctx -> acc + Metrics.counter ctx.metrics "rrmp.feedback_touches")
    0 t.ctxs

let recovered_total t = Array.fold_left (fun acc reg -> acc + reg.recovered) 0 t.regs

let recovery_latency_sum t =
  Array.fold_left (fun acc reg -> acc +. reg.latency_sum) 0.0 t.regs

let occupancy_msg_ms_total t =
  let sum = ref 0.0 in
  Array.iter
    (fun reg ->
      for m = 0 to reg.size - 1 do
        sum := !sum +. Member_soa.occupancy_msg_ms reg.soa m
      done)
    t.regs;
  !sum

let peak_buffered t =
  let peak = ref 0 in
  Array.iter
    (fun reg ->
      for m = 0 to reg.size - 1 do
        let p = Member_soa.peak_size reg.soa m in
        if p > !peak then peak := p
      done)
    t.regs;
  !peak

let sim_events t =
  Array.fold_left (fun acc ctx -> acc + Sim.events_executed ctx.sim) 0 t.ctxs

let sim_schedules t =
  Array.fold_left (fun acc ctx -> acc + Sim.events_scheduled ctx.sim) 0 t.ctxs

let cross_region_parcels t = Fabric.posted t.fabric

let long_term_bufferers t ~seq =
  Array.fold_left (fun acc reg -> acc + Member_soa.promotions_of_seq reg.soa seq) 0 t.regs

let shard_metrics t s = t.ctxs.(s).metrics
