(** Binary wire format for {!Wire.t}: the real-traffic serialization
    behind `lib/net`'s UDP transport.

    Frames are length-prefixed and little-endian: a 32-byte header
    (magic, version, tag, var-length, message-id source and sequence,
    entry count, header checksum) followed by the tag's variable
    section. Payload-class frames ([Data]/[Repair]/[Regional_repair])
    append the body directly; [Handoff] appends per-entry framing
    (id + length, 24 bytes) plus each body; control-class frames pad
    to 64 bytes and append their entries ([History]: 16 bytes per
    source + 8 per missing seq; [Gossip]: 16 per entry). Sizes agree
    with {!Wire.bytes} on every constructor — the symbolic byte
    accounting used by the bandwidth model is the real format's size.

    The header checksum covers only the 32 framing bytes: a corrupt
    length or count is rejected before it can steer the parser, while
    body bytes stay untouched on the steady-state path (end-to-end
    body integrity belongs to {!Payload.intact}/{!Payload.checksum}).

    Allocation contract (asserted by the [alloc/codec-encode] and
    [alloc/codec-decode] gates): {!encode} into a caller-provided
    buffer and {!read} through a preallocated {!decoder} allocate
    nothing on success — materializing a {!Wire.t} with {!view} is
    the explicitly-allocating step. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap frame storage, same element type as {!Payload.body}. *)

type error =
  | Truncated  (** shorter than a header, or extends past the buffer *)
  | Bad_magic
  | Bad_version
  | Bad_tag
  | Bad_length  (** header var-length disagrees with the frame length *)
  | Bad_checksum  (** header corruption (covers flipped framing fields) *)
  | Bad_field  (** a value out of range, or entries not ending on the frame edge *)

type status = Ok_frame | Err of error
(** Outcome of {!read}. All-constant error reporting on the never-raise
    decode path ([Err] carries a constant constructor, so a failing
    frame costs at most one small block; a good frame costs none). *)

val error_to_string : error -> string

val pp_error : Format.formatter -> error -> unit

val header_bytes : int
(** 32: every frame starts with this header. *)

val control_bytes : int
(** 64: minimum size of a control-class frame. *)

val encoded_size : Wire.t -> int
(** Exact frame size for a message, derived from the layout constants;
    equal to {!Wire.bytes} for every constructor (unit-tested per
    constructor). *)

val encode : buf -> off:int -> Wire.t -> int
(** [encode buf ~off msg] writes the frame at [off] and returns its
    size. Allocation-free. @raise Invalid_argument if the frame does
    not fit at [off], or the message holds a value the format cannot
    carry (negative session max_seq / heartbeat / missing seq, history
    horizon below -1). *)

type decoder
(** Preallocated decode state: one {!read} result lives in mutable
    fields, so the validation pass allocates nothing. A decoder is
    single-frame — the next {!read} overwrites the previous view. *)

val create_decoder : unit -> decoder

val read : decoder -> buf -> off:int -> len:int -> status
(** Validate the frame at [buf.(off..off+len)] and park it in the
    decoder. Never raises, whatever the bytes: every framing error
    comes back as [Err]. On [Ok_frame] the frame's fields (including
    list-entry consistency — counts, lengths and ranges all checked
    against the frame extent) are available to {!view}. *)

val view : decoder -> copy:bool -> Wire.t
(** Materialize the last successfully read frame. With [copy:false],
    payload bodies are zero-copy sub-slices of the read buffer — valid
    only until the caller reuses that storage (a transport's receive
    scratch, a {!Ring} slot); with [copy:true] bodies are fresh
    off-heap allocations safe to retain (what a member's buffer
    needs). Control frames never reference the buffer after [view].
    @raise Invalid_argument if the last {!read} did not return
    [Ok_frame]. *)

val decode : ?copy:bool -> buf -> off:int -> len:int -> (Wire.t, error) result
(** One-shot [read] + [view] through a fresh decoder; [copy] defaults
    to [true]. Never raises on arbitrary bytes (the fuzz suite's
    entry point). *)

(** A preallocated ring of encode slots: acquire an offset, encode into
    it, hand the bytes to the transport before the ring wraps around.
    Acquisition is an int bump — no allocation, no ownership handles;
    the slot count bounds how many in-flight frames may coexist. *)
module Ring : sig
  type t

  val create : ?slot_bytes:int -> ?slots:int -> unit -> t
  (** Defaults: 16 slots of 64 KiB (a slot must hold the largest frame
      you encode; 64 KiB covers any UDP datagram).
      @raise Invalid_argument on a slot below 64 bytes or zero slots. *)

  val buf : t -> buf
  (** The shared backing storage all slots live in. *)

  val slot_bytes : t -> int

  val slots : t -> int

  val acquire : t -> int
  (** Next slot's offset into {!buf}; wraps around. *)
end
