(** RRMP protocol parameters.

    Defaults correspond to the paper's Section 4 evaluation: 10 ms
    intra-region round trip, idle threshold [T = 40] ms (4× the maximum
    intra-region RTT), expected long-term bufferers [C = 6] (Figure 4
    puts the no-bufferer probability at 0.25% there), and expected
    remote-request fan-out [λ = 1]. *)

(** Which buffer-management strategy members run. [Two_phase] is the
    paper's contribution; the others are the baselines it positions
    itself against, implemented over the same recovery protocol so
    comparisons isolate the buffering policy. *)
type buffering_policy =
  | Two_phase
      (** feedback-based short-term + randomized long-term (Section 3) *)
  | Fixed_time of float
      (** Bimodal-Multicast-style: buffer every message for a fixed
          number of ms, then discard *)
  | Stability of { exchange_interval : float; hold_after_stable : float }
      (** stability detection: members periodically multicast history
          digests in their region; a message is discarded
          [hold_after_stable] ms after every region member is known to
          have it *)
  | Buffer_all  (** never discard (repair-server-style upper bound) *)

(** How the long-term bufferers of an idle message are chosen
    (Section 3.4): the paper's randomized coin, or the deterministic
    hash of (member address, message id) of Ozkasap et al. — with the
    hash, a searcher can compute who the bufferers are and probe them
    directly. Only meaningful under [Two_phase]. *)
type bufferer_selection = Randomized | Hashed

type regional_send_policy =
  | Immediate
      (** every member receiving a remote repair multicasts it in its
          region at once (the paper's base behaviour) *)
  | Backoff of { max_delay : float }
      (** randomized back-off: wait uniform [\[0, max_delay)] and
          suppress the regional multicast if another copy of the same
          repair is heard first (Section 2.2's suggestion) *)

type t = {
  idle_threshold : float;
      (** [T], ms: discard a short-term-buffered message once no
          request for it has been seen for this long *)
  idle_rounds : float option;
      (** adaptive [T]: when set, each member computes its idle
          threshold as [idle_rounds x] its running RTT estimate
          (learned from its own request/repair exchanges) instead of
          the fixed [idle_threshold]. The paper: "the choice of T
          depends on the maximum round trip time within a region and
          the confidence interval" — this automates that choice when
          the region's RTT is not known in advance. *)
  expected_bufferers : float;
      (** [C]: expected number of long-term bufferers per region; each
          member keeps an idle message with probability [C/n] *)
  lambda : float;
      (** expected number of remote requests sent per region-wide
          loss *)
  rtt_multiplier : float;
      (** request timers are set to this multiple of the estimated
          round-trip time to the target *)
  min_timer : float;  (** lower bound on any request timer, ms *)
  long_term_lifetime : float option;
      (** if set, even a long-term bufferer discards an idle message
          once it has not been used for this long *)
  session_interval : float option;
      (** period of the sender's session messages; [None] disables
          them *)
  regional_send : regional_send_policy;
  max_recovery_tries : int option;
      (** safety bound on local/remote request rounds per message;
          [None] retries until recovery *)
  buffering : buffering_policy;
  selection : bufferer_selection;
  deadline_quantum : float;
      (** buffer-deadline coalescing quantum, ms. [0.0] (the default)
          keeps the exact per-message {!Engine.Timer.Idle} path:
          idle/lifetime deadlines fire at their precise instants, which
          is the mode all paper-scale experiments run in. A positive
          value routes both deadline populations through one coalesced
          {!Engine.Dring} per member: discards may then fire up to one
          quantum late (never early), in exchange for O(1)
          allocation-free deadline touches and O(distinct buckets)
          scheduler entries — the large-[n] scale-out mode. *)
  wire_arena : bool;
      (** route hot-path sends ([Data]/[Repair]/[Regional_repair]/
          [Local_request]/[Remote_request]/[Session]) through the
          member's {!Wire_arena}, which interns the wire cells so a
          steady-state resend allocates nothing. [true] (the default)
          changes no observable behaviour — arena cells are
          structurally equal to fresh constructions, which the
          lockstep test suite enforces; [false] builds every message
          fresh (the reference path). *)
}

val default : t
(** The paper's evaluation setting: [T = 40], [C = 6.0], [λ = 1.0],
    timers equal to the RTT estimate (Figure 5 shows a 10 ms retry
    timeout), immediate regional send, no long-term lifetime, no
    session messages, unbounded retries. *)

val validate : t -> (unit, string) result
(** Check parameter sanity (positive [T], non-negative [C] and [λ],
    ...). *)

val buffering_name : buffering_policy -> string

val pp : Format.formatter -> t -> unit
