(** Struct-of-arrays member state for the sharded scale path.

    One [t] holds the hot protocol state of {e every} member of a
    region, packed into flat arrays and byte-packed bitsets indexed by
    a dense member handle [0 <= m < n] and a bounded sequence number
    [0 <= seq < cap] of a single multicast source: receive
    watermarks/bitsets (the arrayified {!Protocol.Gap_detect}),
    two-phase buffer phase counters with incremental occupancy
    integrals, and int-packed deadline ticks swept by a built-in
    coalesced deadline ring (the arrayified {!Engine.Dring}). At 10^6
    members this is a handful of flat arrays instead of ~10^6 heap
    records and per-member hashtables; every hot operation below is
    O(1) amortized and allocation-free.

    The record-based classic path ({!Member} over {!Protocol.Gap_detect},
    {!Buffer} and {!Engine.Dring}) is retained as the reference model;
    [test/test_shard.ml] holds the qcheck lockstep suites proving the
    gap-detection and buffer/occupancy semantics equivalent. *)

type t

val create :
  sim:Engine.Sim.t ->
  n:int ->
  cap:int ->
  quantum:float ->
  idle_timeout:float ->
  lifetime:float option ->
  ?barrier_driven:bool ->
  on_idle:(member:int -> seq:int -> unit) ->
  on_lifetime:(member:int -> seq:int -> unit) ->
  on_gap:(member:int -> seq:int -> unit) ->
  unit ->
  t
(** Arena for [n] members and sequence numbers [0, cap) of one source
    ([n = 0] builds a valid empty arena — a shard that was assigned no
    regions). Idle deadlines fire [idle_timeout] ms after the last
    {!touch} (into [on_idle]); long-term entries expire [lifetime] ms
    after their last touch (into [on_lifetime]). Deadlines are
    coalesced on a [quantum]-ms ring exactly like {!Engine.Dring}: they
    fire up to one quantum late, never early, in arming order within a
    tick.

    By default each newly non-empty tick schedules its own sweep event
    on [sim]. With [~barrier_driven:true] the arena {e never} schedules
    Sim events: the owner must call {!sweep_until} after each window
    (the {!Engine.Shard.run} [on_window] hook) and report
    {!deadlines_pending} from the [busy] hook — this is what lets one
    arena serve a whole shard without per-region sweep traffic.

    [on_gap] receives every sequence number newly detected as missing
    (by {!note_data} or {!note_session}), in ascending order per call.
    It is installed once here rather than passed per call so the
    deliver path never allocates a closure for the rare gap event.

    The per-key deadline ticks and per-member occupancy integrals are
    Bigarray-backed (off the OCaml heap): the arena's memory is
    invisible to the GC, and scales with [n * cap] bytes, not heap
    words.
    @raise Invalid_argument on negative [n], non-positive [cap],
    [quantum], [idle_timeout] or [lifetime], or when [n * cap] would
    overflow the packed [(member, seq)] key range (the key carries a
    ring-class bit, so [2 * n * cap] must fit in an OCaml int — checked
    here so 10^6-member configurations fail loudly instead of silently
    aliasing keys). *)

val members : t -> int

val capacity : t -> int

(** {2 Gap detection} (lockstep with {!Protocol.Gap_detect}) *)

val received : t -> int -> int -> bool
(** [received t m seq]. *)

val note_data : t -> int -> int -> bool
(** [note_data t m seq] records receipt of [seq] at member [m]. [false]
    if it was a duplicate; otherwise every sequence number newly
    detected as missing (strictly below [seq], never reported before)
    is passed to the create-time [on_gap] in ascending order.
    @raise Invalid_argument if [seq] is outside [0, cap). *)

val note_session : t -> int -> max_seq:int -> unit
(** Session message advertising the source's highest sequence number:
    newly detected losses (including [max_seq] itself if unreceived)
    go to the create-time [on_gap] in ascending order. *)

val note_repaired : t -> int -> int -> bool
(** Mark a missing sequence number as received; [false] if it already
    was (duplicate repair). *)

val missing_count : t -> int -> int

val received_count : t -> int -> int

val highest_seen : t -> int -> int
(** Highest sequence number member [m] knows to exist; -1 initially. *)

(** {2 Two-phase buffer} (lockstep with {!Buffer} + idle/lifetime rings) *)

val buffered : t -> int -> int -> bool

val long_term : t -> int -> int -> bool

val insert_short : t -> int -> int -> now:float -> bool
(** Buffer [seq] at member [m] in the short-term phase and arm its idle
    deadline. [false] (no change) if already buffered. *)

val touch : t -> int -> int -> now:float -> unit
(** Feedback touch: push the idle (and, for long-term entries,
    lifetime) deadline out to [now + timeout]. O(1) field writes — the
    ring re-buckets lazily at sweep time. No-op if not buffered. *)

val promote_long : t -> int -> int -> now:float -> bool
(** Short-term -> long-term; disarms the idle deadline and arms the
    lifetime deadline (when a lifetime is configured). [false] if the
    entry is absent or already long-term. *)

val drop : t -> int -> int -> now:float -> bool
(** Discard a buffered entry, disarming its deadlines. [false] if it
    was not buffered. *)

val buffer_size : t -> int -> int

val long_count : t -> int -> int

val peak_size : t -> int -> int

val occupancy_msg_ms : t -> int -> float
(** Integral of buffered-message count over virtual time for member
    [m], up to the last state change; call {!settle} first to account
    up to "now". *)

val settle : t -> int -> now:float -> unit

val settle_all : t -> now:float -> unit

(** {2 Barrier-driven sweeping} (arenas created with [barrier_driven]) *)

val sweep_until : t -> tick:int -> unit
(** Sweep every unswept ring tick up to and including [tick] (=
    [floor (barrier / quantum)]), firing due deadlines in arming order
    and lazily re-bucketing touched ones — the barrier-driven
    equivalent of the Sim-scheduled sweeps, called from
    {!Engine.Shard.run}'s [on_window] hook while the shard's clock sits
    exactly at the barrier. Idempotent per tick.
    @raise Invalid_argument on an arena not created [barrier_driven]. *)

val deadlines_pending : t -> bool
(** Whether any ring tick still holds armed keys — barrier-driven
    arenas report this through {!Engine.Shard.run}'s [busy] hook so
    quiescence detection keeps windows alive until the rings drain. *)

(** {2 Delivery and promotion accounting} *)

val deliveries : t -> int -> int

val note_delivery : t -> int -> unit

val promotions_of_seq : t -> int -> int
(** How many members of this region promoted [seq] to long-term — the
    per-message long-term-bufferer count the asymptotics comparison
    reads. *)
