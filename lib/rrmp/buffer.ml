type phase = Short_term | Long_term

type entry = { payload : Payload.t; mutable phase : phase; stored_at : float }

type t = {
  sim : Engine.Sim.t;
  entries : entry Protocol.Msg_id.Table.t;
  mutable bytes : int;
  mutable long_count : int;  (* entries currently in Long_term phase *)
  mutable last_change : float;
  mutable msg_ms : float;
  mutable byte_ms : float;
  mutable peak_size : int;
  mutable peak_bytes : int;
}

let create ~sim =
  {
    sim;
    entries = Protocol.Msg_id.Table.create 64;
    bytes = 0;
    long_count = 0;
    last_change = Engine.Sim.now sim;
    msg_ms = 0.0;
    byte_ms = 0.0;
    peak_size = 0;
    peak_bytes = 0;
  }

let size t = Protocol.Msg_id.Table.length t.entries

(* accumulate occupancy integrals up to the current instant *)
let settle t =
  let now = Engine.Sim.now t.sim in
  let dt = now -. t.last_change in
  if dt > 0.0 then begin
    t.msg_ms <- t.msg_ms +. (float_of_int (size t) *. dt);
    t.byte_ms <- t.byte_ms +. (float_of_int t.bytes *. dt)
  end;
  t.last_change <- now

let insert t ~phase payload =
  let id = Payload.id payload in
  if Protocol.Msg_id.Table.mem t.entries id then false
  else begin
    settle t;
    Protocol.Msg_id.Table.add t.entries id
      { payload; phase; stored_at = Engine.Sim.now t.sim };
    if phase = Long_term then t.long_count <- t.long_count + 1;
    t.bytes <- t.bytes + Payload.size payload;
    if size t > t.peak_size then t.peak_size <- size t;
    if t.bytes > t.peak_bytes then t.peak_bytes <- t.bytes;
    true
  end

let find t id =
  Option.map (fun e -> e.payload) (Protocol.Msg_id.Table.find_opt t.entries id)

let mem t id = Protocol.Msg_id.Table.mem t.entries id

let phase_of t id =
  Option.map (fun e -> e.phase) (Protocol.Msg_id.Table.find_opt t.entries id)

let promote t id =
  match Protocol.Msg_id.Table.find_opt t.entries id with
  | None -> false  (* promotion raced a discard: no-op *)
  | Some e ->
    if e.phase = Short_term then begin
      e.phase <- Long_term;
      t.long_count <- t.long_count + 1
    end;
    true

let remove t id =
  match Protocol.Msg_id.Table.find_opt t.entries id with
  | None -> None
  | Some e ->
    settle t;
    Protocol.Msg_id.Table.remove t.entries id;
    if e.phase = Long_term then t.long_count <- t.long_count - 1;
    t.bytes <- t.bytes - Payload.size e.payload;
    Some e.payload

let stored_at t id =
  Option.map (fun e -> e.stored_at) (Protocol.Msg_id.Table.find_opt t.entries id)

let bytes t = t.bytes

let count_phase t phase =
  match phase with
  | Long_term -> t.long_count
  | Short_term -> size t - t.long_count

(* iteration order is documented as unspecified; the one protocol
   consumer (handle_history's stability revisit) is order-independent
   and regression-tested as such, and the sorted views below are what
   everything else uses *)
let[@lint.allow
     "D2 exported primitive with documented unspecified order; protocol use is \
      order-independent (handle_history regression test) and reporting goes through the \
      sorted contents/long_term_payloads views"] iter t f =
  Protocol.Msg_id.Table.iter (fun _ e -> f e.payload e.phase) t.entries

let[@lint.allow
     "D2 exported primitive with documented unspecified order; see iter — sorted views \
      cover all order-sensitive consumers"] fold t ~init f =
  Protocol.Msg_id.Table.fold (fun _ e acc -> f acc e.payload e.phase) t.entries init

let contents t =
  fold t ~init:[] (fun acc p phase -> (p, phase) :: acc)
  |> List.sort (fun (a, _) (b, _) -> Protocol.Msg_id.compare (Payload.id a) (Payload.id b))

let long_term_payloads t =
  fold t ~init:[] (fun acc p phase -> if phase = Long_term then p :: acc else acc)
  |> List.sort (fun a b -> Protocol.Msg_id.compare (Payload.id a) (Payload.id b))

let occupancy_msg_ms t =
  settle t;
  t.msg_ms

let occupancy_byte_ms t =
  settle t;
  t.byte_ms

let peak_size t = t.peak_size

let peak_bytes t = t.peak_bytes
