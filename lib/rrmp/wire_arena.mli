(** Interning arena for hot-path wire messages.

    Each member owns one arena; asking it for a hot-path message
    ([Data]/[Repair]/[Regional_repair]/[Local_request]/
    [Remote_request]/[Session]) returns a cached {!Wire.t} cell that is
    {b structurally equal} to the fresh construction, so dispatch,
    {!Wire.bytes}, {!Wire.cls} and every seeded experiment report are
    unchanged — but the steady-state resends (recovery retries, repairs
    served repeatedly, duplicate regional re-multicasts, session ticks)
    allocate nothing. {!Wire.t} itself remains the cold-path and
    pretty-print view; the cold constructors ([Search]/[Have]/
    [Handoff]/[History]/[Gossip]) are built directly.

    Payload-carrying cells are revalidated by pointer against the
    payload being sent, so a cached cell can never resurrect a stale
    body. With [enabled = false] every call constructs a fresh value —
    the reference path the equivalence suite compares against. *)

type t

val create : ?enabled:bool -> origin:Node_id.t -> unit -> t
(** [origin] is the owning member's address: it names the requester in
    every {!remote_request} this arena produces. [enabled] defaults to
    [true] and is further ANDed with {!default_enabled}, sampled here
    at creation time. *)

val set_default_enabled : bool -> unit
(** Process-wide kill switch (the [Pool.set_default_workers]
    convention), ANDed with every subsequent {!create}'s [enabled]
    flag: harnesses flip it to compare whole experiment registries
    with the arena on and off. Defaults to [true]; existing arenas are
    unaffected. *)

val default_enabled : unit -> bool

val data : t -> Payload.t -> Wire.t

val repair : t -> Payload.t -> Wire.t

val regional_repair : t -> Payload.t -> Wire.t

val local_request : t -> Protocol.Msg_id.t -> Wire.t

val remote_request : t -> Protocol.Msg_id.t -> Wire.t
(** The request's [origin] field is the arena's [origin]. *)

val session : t -> max_seq:int -> Wire.t
