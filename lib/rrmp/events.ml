type t =
  | Delivered of { id : Protocol.Msg_id.t; via : [ `Multicast | `Repair | `Regional ] }
  | Loss_detected of Protocol.Msg_id.t
  | Recovered of { id : Protocol.Msg_id.t; latency : float; local_tries : int }
  | Buffered of { id : Protocol.Msg_id.t; phase : Buffer.phase }
  | Became_idle of { id : Protocol.Msg_id.t; buffered_for : float }
  | Promoted_long_term of Protocol.Msg_id.t
  | Promotion_skipped of Protocol.Msg_id.t
  | Discarded of { id : Protocol.Msg_id.t; phase : Buffer.phase; buffered_for : float }
  | Search_started of Protocol.Msg_id.t
  | Search_satisfied of { id : Protocol.Msg_id.t; origin : Node_id.t }
  | Handoff_sent of { to_ : Node_id.t; count : int }
  | Handoff_received of { from : Node_id.t; count : int }
  | Request_unanswerable of Protocol.Msg_id.t

type observer = time:float -> self:Node_id.t -> t -> unit

let constructor = function
  | Delivered _ -> "delivered"
  | Loss_detected _ -> "loss-detected"
  | Recovered _ -> "recovered"
  | Buffered _ -> "buffered"
  | Became_idle _ -> "became-idle"
  | Promoted_long_term _ -> "promoted-long-term"
  | Promotion_skipped _ -> "promotion-skipped"
  | Discarded _ -> "discarded"
  | Search_started _ -> "search-started"
  | Search_satisfied _ -> "search-satisfied"
  | Handoff_sent _ -> "handoff-sent"
  | Handoff_received _ -> "handoff-received"
  | Request_unanswerable _ -> "request-unanswerable"

let phase_name = function Buffer.Short_term -> "short" | Buffer.Long_term -> "long"

let describe = function
  | Delivered { id; via } ->
    Printf.sprintf "delivered %s via %s"
      (Protocol.Msg_id.to_string id)
      (match via with `Multicast -> "multicast" | `Repair -> "repair" | `Regional -> "regional")
  | Loss_detected id -> Printf.sprintf "loss detected %s" (Protocol.Msg_id.to_string id)
  | Recovered { id; latency; local_tries } ->
    Printf.sprintf "recovered %s after %.1fms (%d tries)"
      (Protocol.Msg_id.to_string id) latency local_tries
  | Buffered { id; phase } ->
    Printf.sprintf "buffered %s (%s)" (Protocol.Msg_id.to_string id) (phase_name phase)
  | Became_idle { id; buffered_for } ->
    Printf.sprintf "idle %s after %.1fms" (Protocol.Msg_id.to_string id) buffered_for
  | Promoted_long_term id ->
    Printf.sprintf "long-term bufferer for %s" (Protocol.Msg_id.to_string id)
  | Promotion_skipped id ->
    Printf.sprintf "promotion of %s skipped (already discarded)"
      (Protocol.Msg_id.to_string id)
  | Discarded { id; phase; buffered_for } ->
    Printf.sprintf "discarded %s (%s) after %.1fms" (Protocol.Msg_id.to_string id)
      (phase_name phase) buffered_for
  | Search_started id -> Printf.sprintf "search started %s" (Protocol.Msg_id.to_string id)
  | Search_satisfied { id; origin } ->
    Printf.sprintf "search satisfied %s for %s" (Protocol.Msg_id.to_string id)
      (Node_id.to_string origin)
  | Handoff_sent { to_; count } ->
    Printf.sprintf "handed off %d msgs to %s" count (Node_id.to_string to_)
  | Handoff_received { from; count } ->
    Printf.sprintf "received %d handed-off msgs from %s" count (Node_id.to_string from)
  | Request_unanswerable id ->
    Printf.sprintf "could not answer request for %s" (Protocol.Msg_id.to_string id)


(* detail formatting is deferred: a capacity- or filter-dropped entry
   never pays for Printf, and retained entries format on first read *)
let tracing_observer tracer ~time ~self event =
  Tracing.Tracer.record_lazy tracer ~time ~subject:(Node_id.to_string self)
    ~event:(constructor event)
    (fun () -> describe event)
