(** RRMP — the Randomized Reliable Multicast Protocol with the
    two-phase buffer management of "Optimizing Buffer Management for
    Reliable Multicast" (Xiao, Birman & van Renesse, DSN 2002).

    Start with {!Group} (whole sessions) or {!Member} (single nodes);
    tune parameters through {!Config}; observe behaviour through
    {!Events}. *)

module Config = Config
module Payload = Payload
module Wire = Wire
module Buffer = Buffer
module Long_term = Long_term
module Model = Model
module Events = Events
module Member = Member
module Group = Group
