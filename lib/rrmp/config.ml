type buffering_policy =
  | Two_phase
  | Fixed_time of float
  | Stability of { exchange_interval : float; hold_after_stable : float }
  | Buffer_all

type bufferer_selection = Randomized | Hashed

type regional_send_policy = Immediate | Backoff of { max_delay : float }

type t = {
  idle_threshold : float;
  idle_rounds : float option;
  expected_bufferers : float;
  lambda : float;
  rtt_multiplier : float;
  min_timer : float;
  long_term_lifetime : float option;
  session_interval : float option;
  regional_send : regional_send_policy;
  max_recovery_tries : int option;
  buffering : buffering_policy;
  selection : bufferer_selection;
  deadline_quantum : float;
  wire_arena : bool;
}

let default =
  {
    idle_threshold = 40.0;
    idle_rounds = None;
    expected_bufferers = 6.0;
    lambda = 1.0;
    rtt_multiplier = 1.0;
    min_timer = 1.0;
    long_term_lifetime = None;
    session_interval = None;
    regional_send = Immediate;
    max_recovery_tries = None;
    buffering = Two_phase;
    selection = Randomized;
    deadline_quantum = 0.0;
    wire_arena = true;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.idle_threshold <= 0.0 then err "idle_threshold must be positive"
  else if (match t.idle_rounds with Some r -> r <= 0.0 | None -> false) then
    err "idle_rounds must be positive"
  else if t.expected_bufferers < 0.0 then err "expected_bufferers must be non-negative"
  else if t.lambda < 0.0 then err "lambda must be non-negative"
  else if t.rtt_multiplier <= 0.0 then err "rtt_multiplier must be positive"
  else if t.min_timer <= 0.0 then err "min_timer must be positive"
  else if (match t.long_term_lifetime with Some l -> l <= 0.0 | None -> false) then
    err "long_term_lifetime must be positive"
  else if (match t.session_interval with Some i -> i <= 0.0 | None -> false) then
    err "session_interval must be positive"
  else if (match t.regional_send with Backoff { max_delay } -> max_delay <= 0.0 | Immediate -> false)
  then err "backoff max_delay must be positive"
  else if (match t.max_recovery_tries with Some m -> m <= 0 | None -> false) then
    err "max_recovery_tries must be positive"
  else if t.deadline_quantum < 0.0 then err "deadline_quantum must be non-negative"
  else
    match t.buffering with
    | Fixed_time f when f <= 0.0 -> err "fixed-time buffering period must be positive"
    | Stability { exchange_interval; hold_after_stable } when
        exchange_interval <= 0.0 || hold_after_stable < 0.0 ->
      err "stability parameters must be positive"
    | Two_phase | Fixed_time _ | Stability _ | Buffer_all -> Ok ()

let buffering_name = function
  | Two_phase -> "two-phase"
  | Fixed_time f -> Printf.sprintf "fixed<%.0fms" f
  | Stability { exchange_interval; hold_after_stable } ->
    Printf.sprintf "stability<%.0f/%.0fms" exchange_interval hold_after_stable
  | Buffer_all -> "buffer-all"

let pp fmt t =
  Format.fprintf fmt
    "%s/%s T=%.1fms C=%.1f lambda=%.2f rtt_mult=%.1f regional=%s lifetime=%s session=%s"
    (buffering_name t.buffering)
    (match t.selection with Randomized -> "randomized" | Hashed -> "hashed")
    t.idle_threshold t.expected_bufferers t.lambda t.rtt_multiplier
    (match t.regional_send with
     | Immediate -> "immediate"
     | Backoff { max_delay } -> Printf.sprintf "backoff<%.1fms" max_delay)
    (match t.long_term_lifetime with None -> "inf" | Some l -> Printf.sprintf "%.0fms" l)
    (match t.session_interval with None -> "off" | Some i -> Printf.sprintf "%.0fms" i);
  (* printed only when enabled so exact-mode (paper-scale) report text
     is unchanged by the field's existence *)
  if t.deadline_quantum > 0.0 then Format.fprintf fmt " quantum=%.1fms" t.deadline_quantum;
  (* same rationale: only the non-default (reference) mode is shown *)
  if not t.wire_arena then Format.fprintf fmt " wire_arena=off"
