(** Observable protocol events, reported by each {!Member} to an
    optional observer. Experiment harnesses subscribe to these to
    measure buffering times, recovery latency, search time, and
    traffic — without reaching into member internals. *)

type t =
  | Delivered of { id : Protocol.Msg_id.t; via : [ `Multicast | `Repair | `Regional ] }
      (** the member obtained the message body for the first time *)
  | Loss_detected of Protocol.Msg_id.t
  | Recovered of { id : Protocol.Msg_id.t; latency : float; local_tries : int }
      (** a detected loss was repaired [latency] ms after detection *)
  | Buffered of { id : Protocol.Msg_id.t; phase : Buffer.phase }
  | Became_idle of { id : Protocol.Msg_id.t; buffered_for : float }
      (** the idle threshold elapsed; [buffered_for] is the short-term
          buffering time Figure 6 reports *)
  | Promoted_long_term of Protocol.Msg_id.t
  | Promotion_skipped of Protocol.Msg_id.t
      (** a long-term promotion (idle decision or handoff) found the
          entry already discarded and was skipped *)
  | Discarded of { id : Protocol.Msg_id.t; phase : Buffer.phase; buffered_for : float }
  | Search_started of Protocol.Msg_id.t
      (** this member initiated a search (request arrived for a
          discarded message) *)
  | Search_satisfied of { id : Protocol.Msg_id.t; origin : Node_id.t }
      (** this member was found to buffer the message and sent the
          repair towards [origin] *)
  | Handoff_sent of { to_ : Node_id.t; count : int }
  | Handoff_received of { from : Node_id.t; count : int }
  | Request_unanswerable of Protocol.Msg_id.t
      (** a local request arrived for a message this member doesn't
          buffer (the requester will time out and retry) *)

type observer = time:float -> self:Node_id.t -> t -> unit

val describe : t -> string

val tracing_observer : Tracing.Tracer.t -> observer
(** An observer that records every event into the given tracer
    (subject = the member, event = the constructor, detail =
    {!describe}). Compose with another observer by calling both. *)
