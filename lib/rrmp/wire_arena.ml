(* Interning arena for the hot-path wire messages.

   A steady-state resend — a recovery retry, a repair served again, a
   duplicate regional re-multicast — used to allocate a fresh [Wire.t]
   cell every time. The arena hands back the one cell already built
   for that (constructor, id) instead: structurally identical to a
   fresh construction (the lockstep suite holds the two in lockstep
   over [bytes]/[cls]/dispatch), so seeded runs are byte-identical
   with the arena on or off, but the resend allocates nothing.

   Payload-carrying cells are validated by pointer against the payload
   being sent: if a member ever re-obtains a message body (discard,
   then repair), the cached cell wrapping the stale record is rebuilt
   rather than resurrected. Lookups use [find]-with-exception, not
   [find_opt], so a hit allocates no [Some] box. *)

module Msg_id = Protocol.Msg_id

type t = {
  enabled : bool;
  origin : Node_id.t;  (* the owning member: every Remote_request it sends names it *)
  data : Wire.t Msg_id.Table.t;
  repairs : Wire.t Msg_id.Table.t;
  regionals : Wire.t Msg_id.Table.t;
  locals : Wire.t Msg_id.Table.t;
  remotes : Wire.t Msg_id.Table.t;
  (* the session advertisement only moves forward; caching the last
     cell makes every tick between multicasts allocation-free *)
  mutable session_max : int;
  mutable session_cell : Wire.t;
}

(* process-wide kill switch, the Pool.default_workers / REPRO_SHARDS
   convention: harnesses flip it to compare whole experiment registries
   with the arena on and off without threading a config everywhere.
   Atomic because [create] runs on pool workers (sharded runs build
   their member state inside Pool.parallel_for) while a harness on the
   main domain may flip the switch between registries. *)
let default_enabled_atomic = Atomic.make true

let set_default_enabled b = Atomic.set default_enabled_atomic b

let default_enabled () = Atomic.get default_enabled_atomic

let create ?(enabled = true) ~origin () =
  let enabled = enabled && Atomic.get default_enabled_atomic in
  {
    enabled;
    origin;
    data = Msg_id.Table.create 16;
    repairs = Msg_id.Table.create 16;
    regionals = Msg_id.Table.create 16;
    locals = Msg_id.Table.create 16;
    remotes = Msg_id.Table.create 16;
    session_max = -1;
    session_cell = Wire.Session { max_seq = 0 };
  }

let data t p =
  if not t.enabled then Wire.Data p
  else
    let id = Payload.id p in
    match Msg_id.Table.find t.data id with
    | exception Not_found ->
      let cell = Wire.Data p in
      Msg_id.Table.add t.data id cell;
      cell
    | Wire.Data q as cell when q == p -> cell
    | _ ->
      let cell = Wire.Data p in
      Msg_id.Table.replace t.data id cell;
      cell

let repair t p =
  if not t.enabled then Wire.Repair p
  else
    let id = Payload.id p in
    match Msg_id.Table.find t.repairs id with
    | exception Not_found ->
      let cell = Wire.Repair p in
      Msg_id.Table.add t.repairs id cell;
      cell
    | Wire.Repair q as cell when q == p -> cell
    | _ ->
      let cell = Wire.Repair p in
      Msg_id.Table.replace t.repairs id cell;
      cell

let regional_repair t p =
  if not t.enabled then Wire.Regional_repair p
  else
    let id = Payload.id p in
    match Msg_id.Table.find t.regionals id with
    | exception Not_found ->
      let cell = Wire.Regional_repair p in
      Msg_id.Table.add t.regionals id cell;
      cell
    | Wire.Regional_repair q as cell when q == p -> cell
    | _ ->
      let cell = Wire.Regional_repair p in
      Msg_id.Table.replace t.regionals id cell;
      cell

let local_request t id =
  if not t.enabled then Wire.Local_request id
  else
    match Msg_id.Table.find t.locals id with
    | cell -> cell
    | exception Not_found ->
      let cell = Wire.Local_request id in
      Msg_id.Table.add t.locals id cell;
      cell

let remote_request t id =
  if not t.enabled then Wire.Remote_request { id; origin = t.origin }
  else
    match Msg_id.Table.find t.remotes id with
    | cell -> cell
    | exception Not_found ->
      let cell = Wire.Remote_request { id; origin = t.origin } in
      Msg_id.Table.add t.remotes id cell;
      cell

let session t ~max_seq =
  if not t.enabled then Wire.Session { max_seq }
  else if t.session_max = max_seq then t.session_cell
  else begin
    let cell = Wire.Session { max_seq } in
    t.session_max <- max_seq;
    t.session_cell <- cell;
    cell
  end
