(** Region-sharded RRMP simulation for 10^5-10^6 members.

    The classic path ({!Group} of {!Member}s over one {!Netsim.Network}
    and one {!Engine.Sim}) keeps every member as a heap record and runs
    on a single domain; it tops out around 10^4 members. This module is
    the scale path: regions are partitioned over [shards] independent
    {e event spines} driven in conservative-time lock-step by
    {!Engine.Shard.run}, and all cross-region traffic — the bounded
    remote-recovery flow plus the sender's multicast/session fan-out —
    crosses shards in batches at deadline-quantum barriers through
    {!Netsim.Fabric}.

    {2 Per-shard event spine}

    A shard owns exactly ONE of everything heavy: one {!Engine.Sim},
    one {!Member_soa} arena holding every member of every region
    assigned to it (with one barrier-driven deadline ring swept from
    {!Engine.Shard.run}'s window hook — ring sweeps are not Sim events,
    so {!sim_events} is shard-count invariant), one metrics registry
    and observer, one recovery table and record pool, and one fabric
    outbox block. A region is an integer index into flat per-session
    arrays (size, base, parent, hops, recovery counters) and its
    members are a contiguous slice of the shard arena, so the fixed
    cost of a region is a handful of words — which is what takes
    10^3-10^4 regions (10^6 members) from infeasible to routine.

    {2 Determinism}

    The observable result is byte-identical for every shard count and
    worker count:
    - every region draws from its own {!Engine.Rng.substream} of the
      seed (indexed by region id, not shard id), and its members'
      generators are split from it in member order;
    - {e every} cross-region packet is quantized through the barrier
      exchange, even between regions sharing a shard, and injected in
      ascending source-region / emission order;
    - regions share no mutable state otherwise, so within-region event
      order is independent of which regions co-reside on a shard;
    - floating-point statistics (recovery latency, occupancy) are
      accumulated per region in its own event order and folded in
      region order, never in shard or domain order.

    {2 Workload model}

    One multicast source (region 0, member 0) with bounded sequence
    numbers [0, cap); constant intra-region latency and per-hop
    inter-region latency with [intra + inter >= deadline_quantum] (the
    conservative-barrier premise, checked at {!create}); losses are
    injected by the caller's [reach] predicate. Recovery, buffering,
    idle/lifetime deadlines and session messages follow {!Member}'s
    two-phase semantics (local probes, lambda/n remote requests to the
    parent region, regional re-multicast of remote repairs).

    {2 Per-shard observability}

    Each shard owns its {!Tracing.Metrics} registry and optional
    {!Events} observer, so hot-path emission gating is checked against
    the owning shard's observer — never a cross-domain shared one — and
    the unobserved path allocates nothing regardless of worker count.
    Merged counters are summed in shard order (integers, so the merge
    is exact and order-free). *)

type t

val create :
  seed:int ->
  config:Config.t ->
  sizes:int array ->
  parents:int array ->
  shards:int ->
  cap:int ->
  ?intra_ms:float ->
  ?inter_ms:float ->
  ?observer:(int -> Events.observer option) ->
  unit ->
  t
(** [create ~seed ~config ~sizes ~parents ~shards ~cap ()] builds a
    sharded session: region [r] has [sizes.(r)] members and parent
    region [parents.(r)] ([-1] for the root; [parents.(r) < r] so the
    forest is topologically ordered, and every region must reach region
    0, the sender's). [cap] bounds the sequence-number space.
    [observer] is a per-shard factory, called once per shard with the
    shard id ({!Events} observers must not be shared across shards:
    they run on that shard's domain). Default latencies are the paper's
    5 ms intra / 50 ms inter. [shards] may exceed the region count:
    regions are block-partitioned, surplus shards simply own empty
    spines that stay quiescent, and the result is still byte-identical
    to [shards = 1].
    @raise Invalid_argument on an invalid config
    ([config.deadline_quantum] must be positive), malformed region
    forest, [shards] outside [1, 128], non-positive sizes or [cap],
    [cap] or a region count/size exceeding the packed 20-bit wire
    fields, or [intra_ms +. inter_ms < config.deadline_quantum]. *)

val regions : t -> int

val shards : t -> int

val size : t -> int
(** Total members. *)

val sender_sim : t -> Engine.Sim.t
(** The sender shard's event loop — schedule multicast bursts here. *)

val multicast : t -> reach:(region:int -> member:int -> bool) -> unit
(** Multicast the next sequence number from the sender; must be called
    from within the sender shard's event loop (e.g. a callback
    scheduled on {!sender_sim}). [reach] is consulted once per
    destination in (region, member) order; the sender always receives
    its own message. Starts the session ticker on first use when
    [config.session_interval] is set.
    @raise Invalid_argument once [cap] messages have been sent. *)

val run : t -> until:float -> unit
(** Drive every shard to virtual time [until] through the conservative
    barrier loop, then settle occupancy integrals at [until]. *)

(** {2 Merged statistics} (deterministic: folded in region order) *)

val delivered_total : t -> int

val touches_total : t -> int
(** Sum of the per-shard ["rrmp.feedback_touches"] counters. *)

val recovered_total : t -> int

val recovery_latency_sum : t -> float

val occupancy_msg_ms_total : t -> float

val peak_buffered : t -> int

val sim_events : t -> int
(** Sum over shards of {!Engine.Sim.events_executed}. *)

val sim_schedules : t -> int
(** Sum over shards of {!Engine.Sim.events_scheduled}: with
    {!sim_events} this bounds the event-queue allocation traffic. *)

val cross_region_parcels : t -> int
(** Parcels that crossed a barrier ({!Netsim.Fabric.posted}). *)

val long_term_bufferers : t -> seq:int -> int
(** How many members promoted [seq] to long-term, summed over shards —
    compare with the paper's Poisson(C) prediction. *)

val shard_metrics : t -> int -> Tracing.Metrics.t
(** The given shard's private metrics registry. *)
