module Msg_id = Protocol.Msg_id
module Recv_log = Protocol.Recv_log
module Network = Netsim.Network
module View = Membership.View
module Sim = Engine.Sim
module Rng = Engine.Rng
module Timer = Engine.Timer
module Metrics = Tracing.Metrics

(* Coalesced deadline ring over message ids (the scale-out timer path,
   enabled by [Config.deadline_quantum > 0]). The ring keeps its own
   hash: unlike [Msg_id.hash] it allocates nothing, and since nothing
   iterates the ring's table its ordering can't leak into seeded runs. *)
module Ring = Engine.Dring.Make (struct
  type t = Msg_id.t

  let equal = Msg_id.equal

  let hash id = (Node_id.to_int (Msg_id.source id) * 0x2545f49) lxor Msg_id.seq id
end)

(* An insertion-ordered node set: the waiting/search origin lists are
   appended to on every probe and consulted on every repair, so dedup
   must not rescan the list. Iteration order (newest first) matches
   the plain-list behavior it replaces. *)
module Origins = struct
  type t = { mutable items : Node_id.t list; seen : unit Node_id.Table.t }

  let create () = { items = []; seen = Node_id.Table.create 4 }

  let is_empty t = t.items = []

  (* [true] if the node was new *)
  let add t node =
    if Node_id.Table.mem t.seen node then false
    else begin
      Node_id.Table.add t.seen node ();
      t.items <- node :: t.items;
      true
    end

  let iter t f = List.iter f t.items

  let clear t =
    t.items <- [];
    Node_id.Table.reset t.seen
end

type recovery = {
  detected_at : float;
  mutable local_timer : Sim.handle option;
  mutable remote_timer : Sim.handle option;
  mutable local_tries : int;
  mutable remote_tries : int;
  mutable last_probe_at : float;  (* when the latest local probe left *)
}

type search = {
  mutable search_timer : Sim.handle option;
  origins : Origins.t;  (* downstream receivers awaiting the repair *)
  mutable search_tries : int;
}

(* The member's I/O capabilities: everything it needs from the outside
   world is a clock read plus four send primitives. The default
   instantiation (netsim_caps) delegates straight to the simulated
   network; lib/net's UDP harness substitutes real-socket closures, so
   the identical protocol logic runs on sim time or wall time — the
   first slice of the sans-io refactor. The closures are built once at
   creation and fully applied at each call site, so the indirection
   allocates nothing. *)
type caps = {
  cap_now : unit -> float;
  cap_unicast : cls:string -> src:Node_id.t -> dst:Node_id.t -> Wire.t -> unit;
  cap_regional : cls:string -> src:Node_id.t -> region:Region_id.t -> Wire.t -> unit;
  cap_multicast : cls:string -> src:Node_id.t -> reach:(Node_id.t -> bool) -> Wire.t -> unit;
  cap_multicast_lossy : cls:string -> src:Node_id.t -> Wire.t -> unit;
}

type t = {
  net : Wire.t Network.t;
  sim : Sim.t;
  caps : caps;
  config : Config.t;
  rng : Rng.t;
  node : Node_id.t;
  view : View.t;
  recv : Recv_log.t;
  buffer : Buffer.t;
  arena : Wire_arena.t;  (* interned hot-path wire cells *)
  observer : Events.observer option;
  observing : bool;  (* [observer <> None]: gates event construction *)
  recoveries : recovery Msg_id.Table.t;
  idle_timers : Timer.Idle.t Msg_id.Table.t;  (* short-term feedback timers *)
  lifetime_timers : Timer.Idle.t Msg_id.Table.t;  (* long-term eventual discard *)
  mutable rings : (Ring.t * Ring.t) option;
      (* (idle, lifetime) coalesced deadline rings; [Some] iff
         [deadline_quantum > 0], in which case the two timer tables
         above stay empty *)
  pending_remote : Origins.t Msg_id.Table.t;
      (* origins recorded while we miss the message ourselves *)
  searches : search Msg_id.Table.t;
  have_announced : unit Msg_id.Table.t;
  known_bufferer : Node_id.t Msg_id.Table.t;
      (* who announced "I have the message" last, per id *)
  pending_regional : Sim.handle Msg_id.Table.t;  (* backoff-delayed regional sends *)
  fixed_timers : Sim.handle Msg_id.Table.t;  (* Fixed_time policy discards *)
  stable_timers : Sim.handle Msg_id.Table.t;  (* Stability policy discards *)
  peer_digests : Recv_log.indexed Node_id.Table.t;
      (* Stability: last history per peer, indexed for O(log) probes *)
  mutable history_ticker : Timer.Periodic.t option;
  mutable next_seq : int;
  mutable delivered : int;
  mutable alive : bool;
  mutable session_ticker : Timer.Periodic.t option;
  mutable failure_detector : Membership.Gossip_fd.t option;
  mutable rtt_estimate : float;  (* EWMA from request/repair exchanges *)
  (* pre-resolved metric handles (null sinks when no registry is
     attached): hot-path bumps never hash a counter name *)
  mh_delivered : Metrics.handle;
  mh_touches : Metrics.handle;
  mh_discarded : Metrics.handle;
}

let node t = t.node

let view t = t.view

let config t = t.config

let refresh_view t =
  View.refresh t.view;
  match t.failure_detector with
  | None -> ()
  | Some fd -> Membership.Gossip_fd.set_peers fd (View.local_members t.view)

let netsim_caps net =
  {
    cap_now = (fun () -> Sim.now (Network.sim net));
    cap_unicast = (fun ~cls ~src ~dst msg -> Network.unicast net ~cls ~src ~dst msg);
    cap_regional =
      (fun ~cls ~src ~region msg -> Network.regional_multicast net ~cls ~src ~region msg);
    cap_multicast = (fun ~cls ~src ~reach msg -> Network.ip_multicast net ~cls ~src ~reach msg);
    cap_multicast_lossy = (fun ~cls ~src msg -> Network.ip_multicast_lossy net ~cls ~src msg);
  }

let now t = t.caps.cap_now ()

let emit t event =
  match t.observer with
  | None -> ()
  | Some f -> f ~time:(now t) ~self:t.node event

let send t ~dst msg = t.caps.cap_unicast ~cls:(Wire.cls msg) ~src:t.node ~dst msg

let regional t msg =
  t.caps.cap_regional ~cls:(Wire.cls msg) ~src:t.node ~region:(View.region t.view) msg

(* ------------------------------------------------------------------ *)
(* Timer estimates                                                     *)
(* ------------------------------------------------------------------ *)

let local_timeout t =
  Float.max t.config.Config.min_timer (t.config.Config.rtt_multiplier *. t.rtt_estimate)

(* the idle threshold actually in force: fixed, or idle_rounds x the
   member's learned RTT *)
let idle_threshold t =
  match t.config.Config.idle_rounds with
  | None -> t.config.Config.idle_threshold
  | Some rounds -> rounds *. t.rtt_estimate

(* fold a request->repair RTT sample into the estimate; samples far
   above the current estimate come from remote or regional repairs and
   are discarded *)
let note_rtt_sample t sample =
  if sample > 0.0 && sample < 10.0 *. t.rtt_estimate then
    t.rtt_estimate <- (0.75 *. t.rtt_estimate) +. (0.25 *. sample)

let remote_timeout t =
  Float.max t.config.Config.min_timer
    (t.config.Config.rtt_multiplier *. Latency.inter_rtt (Network.latency t.net) ~hops:1)

(* ------------------------------------------------------------------ *)
(* Feedback: requests keep a buffered message alive                    *)
(* ------------------------------------------------------------------ *)

let touch_feedback t id =
  t.mh_touches := !(t.mh_touches) + 1;
  match t.rings with
  | Some (idle, lifetime) ->
    (* O(1) field writes; no scheduler traffic, no allocation *)
    Ring.touch idle id;
    Ring.touch lifetime id
  | None ->
    (match Msg_id.Table.find_opt t.idle_timers id with
     | Some timer -> Timer.Idle.touch timer
     | None -> ());
    (match Msg_id.Table.find_opt t.lifetime_timers id with
     | Some timer -> Timer.Idle.touch timer
     | None -> ())

let cancel_idle t id =
  (match t.rings with
   | Some (idle, lifetime) ->
     Ring.stop idle id;
     Ring.stop lifetime id
   | None ->
     (match Msg_id.Table.find_opt t.idle_timers id with
      | Some timer ->
        Timer.Idle.stop timer;
        Msg_id.Table.remove t.idle_timers id
      | None -> ());
     (match Msg_id.Table.find_opt t.lifetime_timers id with
      | Some timer ->
        Timer.Idle.stop timer;
        Msg_id.Table.remove t.lifetime_timers id
      | None -> ()));
  (* the policy-specific tables are populated only under Fixed_time /
     Stability: the length guard spares Two_phase runs the hash *)
  if Msg_id.Table.length t.fixed_timers <> 0 then
    (match Msg_id.Table.find_opt t.fixed_timers id with
     | Some handle ->
       Sim.cancel handle;
       Msg_id.Table.remove t.fixed_timers id
     | None -> ());
  if Msg_id.Table.length t.stable_timers <> 0 then
    match Msg_id.Table.find_opt t.stable_timers id with
    | Some handle ->
      Sim.cancel handle;
      Msg_id.Table.remove t.stable_timers id
    | None -> ()

let buffered_for t id =
  match Buffer.stored_at t.buffer id with
  | None -> 0.0
  | Some at -> now t -. at

let discard t id ~phase =
  let duration = if t.observing then buffered_for t id else 0.0 in
  cancel_idle t id;
  (match Buffer.remove t.buffer id with
   | Some _ ->
     t.mh_discarded := !(t.mh_discarded) + 1;
     if t.observing then emit t (Events.Discarded { id; phase; buffered_for = duration })
   | None -> ())

(* the idle threshold elapsed: randomized long-term buffering decision
   (Section 3.2) *)
let become_idle t id =
  (match t.rings with
   | Some _ -> ()  (* the ring already dropped the entry before firing *)
   | None -> Msg_id.Table.remove t.idle_timers id);
  if t.observing then emit t (Events.Became_idle { id; buffered_for = buffered_for t id });
  let n = View.local_size t.view in
  let c = t.config.Config.expected_bufferers in
  let keeps =
    match t.config.Config.selection with
    | Config.Randomized -> Long_term.decide t.rng ~c ~n
    | Config.Hashed -> Long_term.hashed_decide ~node:t.node ~id ~c ~n
  in
  if keeps then begin
    if Buffer.promote t.buffer id then begin
      if t.observing then emit t (Events.Promoted_long_term id);
      match t.config.Config.long_term_lifetime with
      | None -> ()
      | Some lifetime ->
        (match t.rings with
         | Some (_, ring) -> Ring.add ring id ~timeout:lifetime
         | None ->
           let timer =
             Timer.Idle.create t.sim ~timeout:lifetime ~on_idle:(fun () ->
                 Msg_id.Table.remove t.lifetime_timers id;
                 discard t id ~phase:Buffer.Long_term)
           in
           Msg_id.Table.replace t.lifetime_timers id timer)
    end
    else if t.observing then emit t (Events.Promotion_skipped id)
  end
  else discard t id ~phase:Buffer.Short_term

let lifetime_expired t id = discard t id ~phase:Buffer.Long_term

let start_idle_timer t id =
  match t.rings with
  | Some (ring, _) -> Ring.add ring id ~timeout:(idle_threshold t)
  | None ->
    let timer =
      Timer.Idle.create t.sim ~timeout:(idle_threshold t) ~on_idle:(fun () ->
          become_idle t id)
    in
    Msg_id.Table.replace t.idle_timers id timer

(* Stability policy: a buffered message may be discarded
   [hold_after_stable] after every region member is known (through
   history exchange) to have received it *)
let check_stability t id =
  match t.config.Config.buffering with
  | Config.Stability { hold_after_stable; _ } ->
    if Buffer.mem t.buffer id && not (Msg_id.Table.mem t.stable_timers id) then begin
      let peer_has node =
        match Node_id.Table.find_opt t.peer_digests node with
        | None -> false
        | Some digest -> Recv_log.indexed_has digest id
      in
      if Array.for_all peer_has (View.local_members t.view) then begin
        let handle =
          Sim.schedule t.sim ~delay:hold_after_stable (fun () ->
              Msg_id.Table.remove t.stable_timers id;
              discard t id ~phase:Buffer.Short_term)
        in
        Msg_id.Table.replace t.stable_timers id handle
      end
    end
  | Config.Two_phase | Config.Fixed_time _ | Config.Buffer_all -> ()

(* start the retention clock appropriate to the configured policy when
   a message enters the buffer *)
let start_retention t id =
  match t.config.Config.buffering with
  | Config.Two_phase -> start_idle_timer t id
  | Config.Fixed_time period ->
    let handle =
      Sim.schedule t.sim ~delay:period (fun () ->
          Msg_id.Table.remove t.fixed_timers id;
          discard t id ~phase:Buffer.Short_term)
    in
    Msg_id.Table.replace t.fixed_timers id handle
  | Config.Stability _ -> check_stability t id
  | Config.Buffer_all -> ()

(* ------------------------------------------------------------------ *)
(* Error recovery (Section 2.2)                                        *)
(* ------------------------------------------------------------------ *)

let cancel_recovery t id =
  match Msg_id.Table.find_opt t.recoveries id with
  | None -> ()
  | Some r ->
    Option.iter Sim.cancel r.local_timer;
    Option.iter Sim.cancel r.remote_timer;
    if r.local_tries > 0 then note_rtt_sample t (now t -. r.last_probe_at);
    Msg_id.Table.remove t.recoveries id;
    if t.observing then
      emit t
        (Events.Recovered
           { id; latency = now t -. r.detected_at; local_tries = r.local_tries })

let tries_exhausted t tries =
  match t.config.Config.max_recovery_tries with
  | None -> false
  | Some m -> tries >= m

(* one round of the local recovery phase: probe a random neighbour and
   arm the retry timer *)
let rec local_round t id r =
  if not (tries_exhausted t r.local_tries) then begin
    (match View.random_local t.view t.rng with
     | None -> ()  (* alone in the region: only remote recovery can help *)
     | Some q ->
       r.local_tries <- r.local_tries + 1;
       r.last_probe_at <- now t;
       send t ~dst:q (Wire_arena.local_request t.arena id));
    r.local_timer <-
      Some (Sim.schedule t.sim ~delay:(local_timeout t) (fun () -> local_round t id r))
  end

(* one round of the remote recovery phase: with probability lambda/n ask
   a random parent-region member; the timer is armed regardless of
   whether a request was actually sent (Section 2.2) *)
let rec remote_round t id r =
  if Array.length (View.parent_members t.view) > 0 && not (tries_exhausted t r.remote_tries)
  then begin
    let n = View.local_size t.view in
    let p = Float.min 1.0 (t.config.Config.lambda /. float_of_int n) in
    r.remote_tries <- r.remote_tries + 1;
    if Rng.bernoulli t.rng ~p then begin
      match View.random_parent t.view t.rng with
      | None -> ()
      | Some remote -> send t ~dst:remote (Wire_arena.remote_request t.arena id)
    end;
    r.remote_timer <-
      Some (Sim.schedule t.sim ~delay:(remote_timeout t) (fun () -> remote_round t id r))
  end

let start_recovery t id =
  if not (Msg_id.Table.mem t.recoveries id) && not (Recv_log.received t.recv id) then begin
    if t.observing then emit t (Events.Loss_detected id);
    let r =
      {
        detected_at = now t;
        local_timer = None;
        remote_timer = None;
        local_tries = 0;
        remote_tries = 0;
        last_probe_at = now t;
      }
    in
    Msg_id.Table.add t.recoveries id r;
    local_round t id r;
    remote_round t id r
  end

(* learning that [id] exists (from a request about it) can reveal a loss
   we hadn't detected yet *)
let note_existence t id =
  let losses = Recv_log.note_session t.recv ~source:(Msg_id.source id) ~max_seq:(Msg_id.seq id) in
  List.iter (start_recovery t) losses

(* ------------------------------------------------------------------ *)
(* Search for bufferers (Section 3.3)                                  *)
(* ------------------------------------------------------------------ *)

let cancel_search t id =
  match Msg_id.Table.find_opt t.searches id with
  | None -> ()
  | Some s ->
    Option.iter Sim.cancel s.search_timer;
    Msg_id.Table.remove t.searches id

(* forward one probe per waiting origin, then arm the retry timer.
   The first probe goes to a member known to have announced the
   message; retries probe uniformly at random (and forget a known
   bufferer that failed to answer). *)
let rec search_round t id s =
  if not (Origins.is_empty s.origins) then
    if Array.length (View.local_members t.view) = 0 then begin
      (* nobody to search: the origins' own retries must find another
         way in *)
      Origins.clear s.origins;
      s.search_timer <- None;
      Msg_id.Table.remove t.searches id
    end
    else if tries_exhausted t s.search_tries then begin
      Origins.clear s.origins;
      s.search_timer <- None;
      Msg_id.Table.remove t.searches id
    end
    else begin
      let random_or_hashed () =
        match t.config.Config.selection with
        | Config.Randomized -> View.random_local t.view t.rng
        | Config.Hashed ->
          (* Section 3.4: with deterministic selection the bufferers are
             computable — probe them directly, round-robin over tries *)
          let candidates =
            Long_term.hashed_candidates ~members:(View.local_members t.view) ~id
              ~c:t.config.Config.expected_bufferers ~n:(View.local_size t.view)
          in
          if Array.length candidates = 0 then View.random_local t.view t.rng
          else Some candidates.(s.search_tries mod Array.length candidates)
      in
      let target =
        match Msg_id.Table.find_opt t.known_bufferer id with
        | Some b when s.search_tries = 0 && not (Node_id.equal b t.node) -> Some b
        | Some _ ->
          Msg_id.Table.remove t.known_bufferer id;
          random_or_hashed ()
        | None -> random_or_hashed ()
      in
      (match target with
       | None -> ()
       | Some q ->
         s.search_tries <- s.search_tries + 1;
         Origins.iter s.origins (fun origin -> send t ~dst:q (Wire.Search { id; origin })));
      s.search_timer <-
        Some (Sim.schedule t.sim ~delay:(local_timeout t) (fun () -> search_round t id s))
    end

let start_search t id ~origin =
  match Msg_id.Table.find_opt t.searches id with
  | Some s ->
    if Origins.add s.origins origin then begin
      (* probe immediately for the newcomer; the shared timer keeps
         retrying for everyone *)
      match View.random_local t.view t.rng with
      | None -> ()
      | Some q -> send t ~dst:q (Wire.Search { id; origin })
    end
  | None ->
    if t.observing then emit t (Events.Search_started id);
    let s = { search_timer = None; origins = Origins.create (); search_tries = 0 } in
    ignore (Origins.add s.origins origin);
    Msg_id.Table.add t.searches id s;
    search_round t id s

(* this member buffers [id] and was asked for it on behalf of [origin];
   [ack] is the searcher that forwarded the probe (if any): it gets a
   direct "I have the message" so its search terminates even when the
   region-wide announcement happened before it joined *)
let serve_from_buffer t id ~origin ?ack ~announce () =
  touch_feedback t id;
  match Buffer.find t.buffer id with
  | None -> ()
  | Some payload ->
    send t ~dst:origin (Wire_arena.repair t.arena payload);
    if t.observing then emit t (Events.Search_satisfied { id; origin });
    if announce then begin
      if not (Msg_id.Table.mem t.have_announced id) then begin
        Msg_id.Table.add t.have_announced id ();
        regional t (Wire.Have id)
      end;
      match ack with
      | Some searcher -> send t ~dst:searcher (Wire.Have id)
      | None -> ()
    end

(* ------------------------------------------------------------------ *)
(* Receiving the message body                                          *)
(* ------------------------------------------------------------------ *)

let relay_to_waiters t payload =
  let id = Payload.id payload in
  (* downstream origins recorded while we missed the message *)
  (match Msg_id.Table.find_opt t.pending_remote id with
   | None -> ()
   | Some waiting ->
     Origins.iter waiting (fun origin -> send t ~dst:origin (Wire_arena.repair t.arena payload));
     Msg_id.Table.remove t.pending_remote id);
  (* origins of a search we were running: we can serve them directly *)
  match Msg_id.Table.find_opt t.searches id with
  | None -> ()
  | Some s ->
    Origins.iter s.origins (fun origin -> send t ~dst:origin (Wire_arena.repair t.arena payload));
    Origins.clear s.origins;
    cancel_search t id

let schedule_regional_repair t payload =
  let id = Payload.id payload in
  match t.config.Config.regional_send with
  | Config.Immediate -> regional t (Wire_arena.regional_repair t.arena payload)
  | Config.Backoff { max_delay } ->
    if not (Msg_id.Table.mem t.pending_regional id) then begin
      let delay = Rng.float t.rng max_delay in
      let handle =
        Sim.schedule t.sim ~delay (fun () ->
            Msg_id.Table.remove t.pending_regional id;
            regional t (Wire_arena.regional_repair t.arena payload))
      in
      Msg_id.Table.add t.pending_regional id handle
    end

(* populated only under the Backoff policy: the length guard keeps the
   Immediate-mode repair path free of the Msg_id hash *)
let suppress_regional t id =
  if Msg_id.Table.length t.pending_regional <> 0 then
    match Msg_id.Table.find_opt t.pending_regional id with
    | None -> ()
    | Some handle ->
      Sim.cancel handle;
      Msg_id.Table.remove t.pending_regional id

(* first delivery of the message body to this member *)
let accept t payload ~via =
  let id = Payload.id payload in
  cancel_recovery t id;
  t.delivered <- t.delivered + 1;
  t.mh_delivered := !(t.mh_delivered) + 1;
  if t.observing then begin
    let delivered_via =
      match via with
      | `Multicast -> `Multicast
      | `Regional -> `Regional
      | `Repair_remote | `Repair_local -> `Repair
    in
    emit t (Events.Delivered { id; via = delivered_via })
  end;
  if Buffer.insert t.buffer ~phase:Buffer.Short_term payload then begin
    start_retention t id;
    if t.observing then emit t (Events.Buffered { id; phase = Buffer.Short_term })
  end;
  relay_to_waiters t payload;
  (* a repair obtained from a remote region is multicast locally so
     neighbours sharing the loss receive it (Section 2.2) *)
  if via = `Repair_remote then schedule_regional_repair t payload

(* ------------------------------------------------------------------ *)
(* Handlers per wire message                                           *)
(* ------------------------------------------------------------------ *)

let handle_data t payload =
  match Recv_log.note_data t.recv (Payload.id payload) with
  | Recv_log.Duplicate -> ()
  | Recv_log.Fresh losses ->
    accept t payload ~via:`Multicast;
    List.iter (start_recovery t) losses

let handle_session t ~source ~max_seq =
  let losses = Recv_log.note_session t.recv ~source ~max_seq in
  List.iter (start_recovery t) losses

let handle_local_request t id ~src =
  if Buffer.mem t.buffer id then begin
    touch_feedback t id;
    match Buffer.find t.buffer id with
    | Some payload -> send t ~dst:src (Wire_arena.repair t.arena payload)
    | None -> ()
  end
  else if t.observing then
    (* the paper: a member without the message ignores the request; the
       requester will time out and probe someone else *)
    emit t (Events.Request_unanswerable id)

let record_pending_remote t id origin =
  let waiting =
    match Msg_id.Table.find_opt t.pending_remote id with
    | Some w -> w
    | None ->
      let w = Origins.create () in
      Msg_id.Table.add t.pending_remote id w;
      w
  in
  ignore (Origins.add waiting origin)

(* Section 3.3: the three cases for a remote (or forwarded-search)
   request *)
let handle_request_for_discardable t id ~origin ?ack ~announce_on_hit () =
  if Buffer.mem t.buffer id then serve_from_buffer t id ~origin ?ack ~announce:announce_on_hit ()
  else if not (Recv_log.received t.recv id) then begin
    (* never received: remember the requester, relay when it arrives *)
    record_pending_remote t id origin;
    note_existence t id
  end
  else
    (* received but discarded: search the region for a bufferer *)
    start_search t id ~origin

let handle_remote_request t id ~origin =
  handle_request_for_discardable t id ~origin ~announce_on_hit:false ()

let handle_search t id ~origin ~src =
  handle_request_for_discardable t id ~origin ~ack:src ~announce_on_hit:true ()

let handle_repair t payload ~src =
  let id = Payload.id payload in
  if Recv_log.note_repaired t.recv id then begin
    let remote =
      not (Topology.same_region (Network.topology t.net) src t.node)
    in
    accept t payload ~via:(if remote then `Repair_remote else `Repair_local)
  end
  else begin
    (* duplicate repair: we already have the body; still serve anyone
       recorded as waiting *)
    touch_feedback t id;
    relay_to_waiters t payload
  end

let handle_regional_repair t payload =
  let id = Payload.id payload in
  suppress_regional t id;
  if Recv_log.note_repaired t.recv id then accept t payload ~via:`Regional
  else touch_feedback t id

let handle_have t id ~src =
  Msg_id.Table.replace t.known_bufferer id src;
  match Msg_id.Table.find_opt t.searches id with
  | None -> ()
  | Some s ->
    (* the announcer buffers the message: point the remaining origins'
       probes straight at it *)
    Origins.iter s.origins (fun origin -> send t ~dst:src (Wire.Search { id; origin }));
    Origins.clear s.origins;
    cancel_search t id

(* index the digest once (every buffered id probes it), then revisit
   each buffered entry; stability of one entry is independent of the
   others, so the unspecified iteration order is fine *)
let handle_history t digest ~src =
  Node_id.Table.replace t.peer_digests src (Recv_log.index digest);
  Buffer.iter t.buffer (fun payload _phase -> check_stability t (Payload.id payload))

let handle_handoff t payloads ~src =
  if t.observing then
    emit t (Events.Handoff_received { from = src; count = List.length payloads });
  List.iter
    (fun payload ->
      let id = Payload.id payload in
      if Buffer.mem t.buffer id then begin
        (* we already buffer it: take over the long-term role *)
        match Buffer.phase_of t.buffer id with
        | Some Buffer.Short_term ->
          cancel_idle t id;
          (* cancel_idle can fire a pending discard, so the entry may
             be gone by now: promotion of an absent id is a no-op *)
          if Buffer.promote t.buffer id then begin
            if t.observing then emit t (Events.Promoted_long_term id)
          end
          else if t.observing then emit t (Events.Promotion_skipped id)
        | Some Buffer.Long_term | None -> ()
      end
      else begin
        if Recv_log.note_repaired t.recv id then begin
          cancel_recovery t id;
          t.delivered <- t.delivered + 1;
          t.mh_delivered := !(t.mh_delivered) + 1;
          if t.observing then emit t (Events.Delivered { id; via = `Repair });
          relay_to_waiters t payload
        end;
        ignore (Buffer.insert t.buffer ~phase:Buffer.Long_term payload);
        if t.observing then emit t (Events.Buffered { id; phase = Buffer.Long_term })
      end)
    payloads

let handle_delivery t (delivery : Wire.t Network.delivery) =
  if t.alive then begin
    let src = delivery.Network.src in
    match delivery.Network.msg with
    | Wire.Data payload -> handle_data t payload
    | Wire.Session { max_seq } -> handle_session t ~source:src ~max_seq
    | Wire.Local_request id -> handle_local_request t id ~src
    | Wire.Remote_request { id; origin } -> handle_remote_request t id ~origin
    | Wire.Repair payload -> handle_repair t payload ~src
    | Wire.Regional_repair payload -> handle_regional_repair t payload
    | Wire.Search { id; origin } -> handle_search t id ~origin ~src
    | Wire.Have id -> handle_have t id ~src
    | Wire.Handoff payloads -> handle_handoff t payloads ~src
    | Wire.History digest -> handle_history t digest ~src
    | Wire.Gossip table ->
      (match t.failure_detector with
       | Some fd -> Membership.Gossip_fd.on_gossip fd table
       | None -> ())
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~net ~config ~rng ~node ?caps ?observer ?metrics () =
  (match Config.validate config with
   | Ok () -> ()
   | Error msg ->
     invalid_arg ("Member.create: " ^ msg)
       [@lint.allow "H1 construction-time error path: raises before any hot op runs"]);
  let view = View.create (Network.topology net) ~owner:node in
  let mh name =
    match metrics with
    | None -> Metrics.null_handle ()
    | Some m -> Metrics.handle m name
  in
  let t =
    {
      net;
      sim = Network.sim net;
      caps = (match caps with Some c -> c | None -> netsim_caps net);
      config;
      rng;
      node;
      view;
      recv = Recv_log.create ();
      buffer = Buffer.create ~sim:(Network.sim net);
      arena = Wire_arena.create ~enabled:config.Config.wire_arena ~origin:node ();
      observer;
      observing = observer <> None;
      recoveries = Msg_id.Table.create 16;
      idle_timers = Msg_id.Table.create 16;
      lifetime_timers = Msg_id.Table.create 16;
      rings = None;
      pending_remote = Msg_id.Table.create 8;
      searches = Msg_id.Table.create 8;
      have_announced = Msg_id.Table.create 8;
      known_bufferer = Msg_id.Table.create 8;
      pending_regional = Msg_id.Table.create 8;
      fixed_timers = Msg_id.Table.create 8;
      stable_timers = Msg_id.Table.create 8;
      peer_digests = Node_id.Table.create 8;
      history_ticker = None;
      next_seq = 0;
      delivered = 0;
      alive = true;
      session_ticker = None;
      failure_detector = None;
      rtt_estimate = Latency.intra_rtt (Network.latency net);
      mh_delivered = mh "rrmp.delivered";
      mh_touches = mh "rrmp.feedback_touches";
      mh_discarded = mh "rrmp.discarded";
    }
  in
  if config.Config.deadline_quantum > 0.0 then begin
    let q = config.Config.deadline_quantum in
    let idle = Ring.create t.sim ~quantum:q ~on_expire:(fun id -> become_idle t id) in
    let lifetime = Ring.create t.sim ~quantum:q ~on_expire:(fun id -> lifetime_expired t id) in
    t.rings <- Some (idle, lifetime)
  end;
  Network.register net node (handle_delivery t);
  (match config.Config.buffering with
   | Config.Stability { exchange_interval; _ } ->
     t.history_ticker <-
       Some
         (Timer.Periodic.create t.sim ~interval:exchange_interval (fun () ->
              regional t (Wire.History (Recv_log.digest t.recv))))
   | Config.Two_phase | Config.Fixed_time _ | Config.Buffer_all -> ());
  t

(* ------------------------------------------------------------------ *)
(* Sending                                                             *)
(* ------------------------------------------------------------------ *)

let send_session t =
  if t.next_seq > 0 then
    t.caps.cap_multicast_lossy ~cls:"session" ~src:t.node
      (Wire_arena.session t.arena ~max_seq:(t.next_seq - 1))

(* a sender starts advertising its highest sequence number once it has
   multicast something (Section 2.1's session messages) *)
let ensure_session_ticker t =
  match (t.session_ticker, t.config.Config.session_interval) with
  | Some _, _ | None, None -> ()
  | None, Some interval ->
    t.session_ticker <-
      Some (Timer.Periodic.create t.sim ~interval (fun () -> send_session t))

let fresh_payload t ~size =
  let id = Msg_id.make ~source:t.node ~seq:t.next_seq in
  t.next_seq <- t.next_seq + 1;
  ensure_session_ticker t;
  Payload.make ?size id

let own_send_bookkeeping t payload =
  let id = Payload.id payload in
  ignore (Recv_log.note_data t.recv id);
  t.delivered <- t.delivered + 1;
  t.mh_delivered := !(t.mh_delivered) + 1;
  if Buffer.insert t.buffer ~phase:Buffer.Short_term payload then begin
    start_retention t id;
    if t.observing then emit t (Events.Buffered { id; phase = Buffer.Short_term })
  end

let multicast t ?size () =
  let payload = fresh_payload t ~size in
  own_send_bookkeeping t payload;
  t.caps.cap_multicast_lossy ~cls:"data" ~src:t.node (Wire_arena.data t.arena payload);
  Payload.id payload

let multicast_reaching t ?size ~reach () =
  let payload = fresh_payload t ~size in
  own_send_bookkeeping t payload;
  t.caps.cap_multicast ~cls:"data" ~src:t.node ~reach (Wire_arena.data t.arena payload);
  Payload.id payload

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let has_received t id = Recv_log.received t.recv id

let buffers t id = Buffer.mem t.buffer id

let buffer_phase t id = Buffer.phase_of t.buffer id

let buffer_size t = Buffer.size t.buffer

let buffer t = t.buffer

let missing_count t = Recv_log.missing_count t.recv

let delivered_count t = t.delivered

let recovering t id = Msg_id.Table.mem t.recoveries id

let rtt_estimate t = t.rtt_estimate

let searching t id = Msg_id.Table.mem t.searches id

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let[@lint.allow
     "D2 teardown cancels are order-insensitive: Sim.cancel and Timer stops only \
      lazy-invalidate handles and emit no observable event"] stop_all_timers t =
  (match t.rings with
   | Some (idle, lifetime) ->
     Ring.clear idle;
     Ring.clear lifetime
   | None -> ());
  Msg_id.Table.iter (fun _ timer -> Timer.Idle.stop timer) t.idle_timers;
  Msg_id.Table.reset t.idle_timers;
  Msg_id.Table.iter (fun _ timer -> Timer.Idle.stop timer) t.lifetime_timers;
  Msg_id.Table.reset t.lifetime_timers;
  Msg_id.Table.iter
    (fun _ r ->
      Option.iter Sim.cancel r.local_timer;
      Option.iter Sim.cancel r.remote_timer)
    t.recoveries;
  Msg_id.Table.reset t.recoveries;
  Msg_id.Table.iter (fun _ s -> Option.iter Sim.cancel s.search_timer) t.searches;
  Msg_id.Table.reset t.searches;
  Msg_id.Table.iter (fun _ handle -> Sim.cancel handle) t.pending_regional;
  Msg_id.Table.reset t.pending_regional;
  Msg_id.Table.iter (fun _ handle -> Sim.cancel handle) t.fixed_timers;
  Msg_id.Table.reset t.fixed_timers;
  Msg_id.Table.iter (fun _ handle -> Sim.cancel handle) t.stable_timers;
  Msg_id.Table.reset t.stable_timers;
  (match t.history_ticker with
   | Some ticker -> Timer.Periodic.stop ticker
   | None -> ());
  t.history_ticker <- None;
  (match t.session_ticker with
   | Some ticker -> Timer.Periodic.stop ticker
   | None -> ());
  t.session_ticker <- None;
  (match t.failure_detector with
   | Some fd -> Membership.Gossip_fd.stop fd
   | None -> ());
  t.failure_detector <- None

let leave t =
  if t.alive then begin
    (* Section 3.2: transfer each long-term-buffered message to a
       randomly selected receiver in the region *)
    let by_target = Node_id.Table.create 8 in
    List.iter
      (fun payload ->
        match View.random_local t.view t.rng with
        | None -> ()
        | Some target ->
          let batch =
            match Node_id.Table.find_opt by_target target with
            | Some b -> b
            | None ->
              let b = ref [] in
              Node_id.Table.add by_target target b;
              b
          in
          batch := payload :: !batch)
      (Buffer.long_term_payloads t.buffer);
    (* handoffs hit the network: send in target order, not in the
       hashtable's layout order, so seeded runs cannot depend on the
       id hash function *)
    let targets =
      Node_id.Table.fold (fun target batch acc -> (target, batch) :: acc) by_target []
      |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)
    in
    List.iter
      (fun (target, batch) ->
        if t.observing then
          emit t (Events.Handoff_sent { to_ = target; count = List.length !batch });
        send t ~dst:target (Wire.Handoff (List.rev !batch)))
      targets;
    stop_all_timers t;
    Network.unregister t.net t.node;
    t.alive <- false
  end

let crash t =
  if t.alive then begin
    stop_all_timers t;
    Network.unregister t.net t.node;
    t.alive <- false
  end

(* ------------------------------------------------------------------ *)
(* Experiment state injection                                          *)
(* ------------------------------------------------------------------ *)

(* process a delivery as if the network had just handed it over,
   bypassing latency/loss/traffic counters: allocation tests and custom
   harnesses drive the receive path directly with a preallocated record *)
let inject_delivery t delivery = handle_delivery t delivery

(* ------------------------------------------------------------------ *)
(* Failure detection (the gossip-style detector RRMP builds on)        *)
(* ------------------------------------------------------------------ *)

let enable_failure_detection t ~gossip_interval ~fail_timeout =
  match t.failure_detector with
  | Some _ -> ()
  | None ->
    (* the detector maintains the local region's membership: gossip
       stays intra-region so heartbeats circulate densely *)
    let peers = View.local_members t.view in
    let fd =
      Membership.Gossip_fd.create ~sim:t.sim ~rng:(Rng.split t.rng) ~self:t.node ~peers
        ~gossip_interval ~fail_timeout
        ~send:(fun ~dst digest -> send t ~dst (Wire.Gossip digest))
        ()
    in
    t.failure_detector <- Some fd

let suspects t =
  match t.failure_detector with
  | None -> []
  | Some fd -> Membership.Gossip_fd.suspects fd

let is_suspected t node =
  match t.failure_detector with
  | None -> false
  | Some fd -> Membership.Gossip_fd.is_suspected fd node

let inject_loss t id = note_existence t id

let force_received t id =
  ignore (Recv_log.note_data t.recv id);
  cancel_recovery t id

let force_buffer t ~phase payload =
  let id = Payload.id payload in
  ignore (Recv_log.note_data t.recv id);
  cancel_recovery t id;
  if Buffer.insert t.buffer ~phase payload then
    match phase with
    | Buffer.Short_term -> start_retention t id
    | Buffer.Long_term -> ()
