(** One RRMP group member: the randomized error-recovery engine of
    Section 2 combined with the two-phase buffer management of
    Section 3.

    A member reacts to network deliveries (installed on its
    {!Netsim.Network.t} at creation) and to its own timers:

    - {b loss detection} via sequence gaps and session messages;
    - {b local recovery}: probe a uniformly random neighbour, timer set
      to the estimated RTT, repeat on expiry;
    - {b remote recovery}: with probability λ/n per round, ask a random
      parent-region member; if that member also misses the message it
      records the requester and relays on receipt;
    - {b short-term buffering}: every received message is buffered
      until no request for it has been seen for the idle threshold [T];
    - {b long-term buffering}: an idle message survives at each member
      with probability [C/n]; everyone else discards it;
    - {b search}: a request for a message this member has discarded is
      forwarded along a random walk until it hits a bufferer, which
      serves the requester and multicasts "I have the message";
    - {b handoff}: on voluntary {!leave}, the long-term buffer is
      transferred to random neighbours. *)

type t

(** The member's I/O capabilities: a clock read plus the four send
    primitives the protocol uses. Everything a member does to the
    outside world flows through this record, so the identical state
    machine runs against the deterministic sim (the default,
    {!netsim_caps}) or a real transport (lib/net builds socket-backed
    closures around the codec). The closures are fully applied at each
    call site and built once at creation: the indirection allocates
    nothing on the hot paths. *)
type caps = {
  cap_now : unit -> float;  (** current time, ms *)
  cap_unicast : cls:string -> src:Node_id.t -> dst:Node_id.t -> Wire.t -> unit;
  cap_regional : cls:string -> src:Node_id.t -> region:Region_id.t -> Wire.t -> unit;
  cap_multicast : cls:string -> src:Node_id.t -> reach:(Node_id.t -> bool) -> Wire.t -> unit;
  cap_multicast_lossy : cls:string -> src:Node_id.t -> Wire.t -> unit;
}

val netsim_caps : Wire.t Netsim.Network.t -> caps
(** The default capabilities: sim clock and the network's delivery
    primitives, exactly the pre-capability behaviour (seeded runs are
    byte-identical either way). *)

val create :
  net:Wire.t Netsim.Network.t ->
  config:Config.t ->
  rng:Engine.Rng.t ->
  node:Node_id.t ->
  ?caps:caps ->
  ?observer:Events.observer ->
  ?metrics:Tracing.Metrics.t ->
  unit ->
  t
(** Registers the member's handler on [net]. [rng] should be a
    {!Engine.Rng.split} of the experiment generator, one per member.

    [caps] (default {!netsim_caps}[ net]) overrides where sends and
    clock reads go; [net] still provides the topology view, the timer
    {!Engine.Sim.t} and registration, so a transport harness passes a
    quiet network whose sim it advances itself.

    Without [observer], no {!Events.t} value is ever constructed: every
    emission site is gated on the subscription, so the delivery and
    feedback hot paths stay allocation-free. [metrics], when given,
    receives [rrmp.delivered] / [rrmp.feedback_touches] /
    [rrmp.discarded] counters through pre-resolved handles.

    With {!Config.t.deadline_quantum} positive, the member's idle and
    lifetime deadlines live in two coalesced {!Engine.Dring}s instead
    of per-message {!Engine.Timer.Idle} instances; see the config field
    for the trade-off.
    @raise Invalid_argument if [node] is not in the network's topology
    or the config fails {!Config.validate}. *)

val node : t -> Node_id.t

val view : t -> Membership.View.t

val config : t -> Config.t

val refresh_view : t -> unit
(** Re-read region membership (call after churn). *)

(** {1 Sending (any member can be the session's sender)} *)

val multicast : t -> ?size:int -> unit -> Protocol.Msg_id.t
(** Multicast the next message in this member's sequence to the whole
    session through the lossy IP-multicast primitive. *)

val multicast_reaching : t -> ?size:int -> reach:(Node_id.t -> bool) -> unit -> Protocol.Msg_id.t
(** Controlled-outcome multicast: exactly the receivers with [reach]
    true get the packet — how the paper seeds its experiments. *)

val send_session : t -> unit
(** Advertise the highest sequence number multicast so far (no-op if
    nothing was sent). *)

(** {1 Queries} *)

val has_received : t -> Protocol.Msg_id.t -> bool

val buffers : t -> Protocol.Msg_id.t -> bool

val buffer_phase : t -> Protocol.Msg_id.t -> Buffer.phase option

val buffer_size : t -> int

val buffer : t -> Buffer.t
(** Read-only access for occupancy accounting. *)

val missing_count : t -> int

val delivered_count : t -> int
(** Messages whose body this member has obtained (including its own
    sends). *)

val recovering : t -> Protocol.Msg_id.t -> bool

val rtt_estimate : t -> float
(** The member's running intra-region RTT estimate (ms), learned from
    its own request/repair exchanges; used for retry timers and, with
    {!Config.t.idle_rounds}, for the adaptive idle threshold. *)

val searching : t -> Protocol.Msg_id.t -> bool

(** {1 Lifecycle} *)

val leave : t -> unit
(** Voluntary departure: hand off each long-term-buffered message to a
    randomly selected region member (batched per target), stop all
    timers, deregister from the network. The caller is responsible for
    removing the node from the topology afterwards. *)

val crash : t -> unit
(** Fail-stop: deregister and stop timers without any handoff. *)

(** {1 Failure detection}

    RRMP was built on the gossip-style failure detection service of
    van Renesse, Minsky & Hayden; enabling it makes the member
    participate in heartbeat gossip over the protocol's network. *)

val enable_failure_detection : t -> gossip_interval:float -> fail_timeout:float -> unit
(** Idempotent. Heartbeats gossip to random members of the local
    region (the detector maintains regional membership, as in the
    gossip FD service RRMP builds on). *)

val suspects : t -> Node_id.t list
(** Members whose heartbeat is stale; empty when detection is off. *)

val is_suspected : t -> Node_id.t -> bool

(** {1 Experiment state injection}

    These bypass the wire so harnesses can construct the exact initial
    conditions the paper's figures start from. *)

val inject_loss : t -> Protocol.Msg_id.t -> unit
(** Make the member aware that the message exists and is missing, and
    start both recovery phases — the paper's "all other members
    simultaneously detect the loss". *)

val force_received : t -> Protocol.Msg_id.t -> unit
(** Mark as received-and-already-discarded (present in the reception
    log, absent from the buffer). *)

val force_buffer : t -> phase:Buffer.phase -> Payload.t -> unit
(** Mark as received and place it in the buffer in the given phase
    (short-term entries get a fresh idle timer). *)

val inject_delivery : t -> Wire.t Netsim.Network.delivery -> unit
(** Process a delivery exactly as if it had just arrived from the
    network, bypassing latency, loss and traffic counters. Allocation
    tests drive the receive path in a tight loop with a preallocated
    record; not for use where network accounting matters. *)
