(** A whole RRMP session: simulation, network, and one {!Member} per
    topology node, wired together. This is the main entry point of the
    library — see [examples/quickstart.ml].

    All randomness derives from [seed]; runs are reproducible. *)

type t

val create :
  ?seed:int ->
  ?config:Config.t ->
  ?latency:Latency.t ->
  ?loss:Loss.model ->
  ?bandwidth:float ->
  ?observer:Events.observer ->
  ?metrics:Tracing.Metrics.t ->
  topology:Topology.t ->
  unit ->
  t
(** Builds a session over [topology] (defaults: seed 1, paper-default
    config, {!Latency.paper_default}, lossless channels for recovery
    traffic — the paper's Section 4 assumption). [bandwidth], in bytes
    per ms, bounds each node's egress (infinite by default); packet
    sizes come from {!Wire.bytes}. The sender is the lowest-numbered
    node; by convention build topologies with the sender's region
    first. [metrics], when given, is attached to the network and every
    member (aggregate [net.*] and [rrmp.*] counters via pre-resolved
    handles). *)

val sim : t -> Engine.Sim.t

val net : t -> Wire.t Netsim.Network.t

val topology : t -> Topology.t

val config : t -> Config.t

val sender : t -> Member.t

val member : t -> Node_id.t -> Member.t
(** @raise Not_found for nodes that never joined this group. *)

val members : t -> Member.t list
(** Live members, sorted by node id. *)

val members_of_region : t -> Region_id.t -> Member.t list

(** {1 Traffic} *)

val multicast : t -> ?size:int -> unit -> Protocol.Msg_id.t
(** Sender multicasts the next message (lossy IP multicast). *)

val multicast_reaching :
  t -> ?size:int -> reach:(Node_id.t -> bool) -> unit -> Protocol.Msg_id.t
(** Controlled initial delivery (see {!Member.multicast_reaching}). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Advance the simulation. *)

val now : t -> float

(** {1 Membership dynamics} *)

val join : t -> Region_id.t -> Member.t
(** Add a fresh receiver to a region; all views are refreshed. *)

val leave : t -> Node_id.t -> unit
(** Voluntary leave with long-term-buffer handoff. *)

val crash : t -> Node_id.t -> unit
(** Fail-stop without handoff. *)

val enable_failure_detection : t -> gossip_interval:float -> fail_timeout:float -> unit
(** Turn on gossip failure detection at every current member (members
    joining later must enable it individually). *)

(** {1 Group-wide queries (used by the experiment harness)} *)

val count_received : t -> Protocol.Msg_id.t -> int
(** How many live members have the message body. *)

val count_buffered : t -> Protocol.Msg_id.t -> int
(** How many live members hold the message in their buffer (either
    phase) — the quantity Figure 7 tracks. *)

val bufferers : t -> Protocol.Msg_id.t -> Node_id.t list

val received_by_all : t -> Protocol.Msg_id.t -> bool

val total_buffered_messages : t -> int
(** Sum of buffer sizes over live members. *)

val quiescent : t -> bool
(** No pending simulation events. *)
