(* The message body lives off-heap: each payload owns a Bigarray slice
   whose storage is malloc'd outside the OCaml heap, so a buffered
   message costs the minor heap a fixed handful of words — never words
   proportional to its byte size. Bodies are written once here (a
   deterministic id-derived pattern, so round trips through buffers,
   repairs and handoffs are verifiable) and shared by reference
   afterwards; the GC frees the storage when the last holder drops the
   payload. *)

type body = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { id : Protocol.Msg_id.t; body : body }

let pattern_byte id i =
  Char.chr ((Protocol.Msg_id.hash id + (i * 131)) land 0xff)

let make ?(size = 1024) id =
  if size < 0 then invalid_arg "Payload.make: negative size";
  let body = Bigarray.Array1.create Bigarray.char Bigarray.c_layout size in
  for i = 0 to size - 1 do
    Bigarray.Array1.unsafe_set body i (pattern_byte id i)
  done;
  { id; body }

(* a decoded body arriving off the wire: shares the caller's slice *)
let of_slice id body = { id; body }

let id t = t.id

let body t = t.body

let size t = Bigarray.Array1.dim t.body

let get t i = Bigarray.Array1.get t.body i

(* bodies are immutable after [make], so id + size determine contents *)
let equal a b = Protocol.Msg_id.equal a.id b.id && Int.equal (size a) (size b)

(* order-dependent fold so corruption anywhere shifts the sum *)
let checksum t =
  let n = size t in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := ((!acc * 31) + Char.code (Bigarray.Array1.unsafe_get t.body i)) land max_int
  done;
  !acc

let intact t =
  let n = size t in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Bigarray.Array1.unsafe_get t.body i <> pattern_byte t.id i then ok := false
  done;
  !ok

let pp fmt t = Format.fprintf fmt "%a(%dB)" Protocol.Msg_id.pp t.id (size t)
