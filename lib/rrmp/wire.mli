(** RRMP's wire messages. The sending node is implicit (the network
    reports it on delivery); [origin] fields name the node on whose
    behalf a request travels. *)

type t =
  | Data of Payload.t  (** initial best-effort IP multicast *)
  | Session of { max_seq : int }
      (** sender's session message: highest sequence number so far *)
  | Local_request of Protocol.Msg_id.t
      (** local recovery probe to a random neighbour (Section 2.2) *)
  | Remote_request of { id : Protocol.Msg_id.t; origin : Node_id.t }
      (** remote recovery request to a random parent-region member;
          [origin] is the downstream receiver wanting the repair *)
  | Repair of Payload.t  (** unicast retransmission *)
  | Regional_repair of Payload.t
      (** repair multicast within a region after a remote recovery *)
  | Search of { id : Protocol.Msg_id.t; origin : Node_id.t }
      (** random search for a long-term bufferer (Section 3.3) *)
  | Have of Protocol.Msg_id.t
      (** regional multicast "I have the message": ends a search *)
  | Handoff of Payload.t list
      (** long-term buffer transfer from a leaving member *)
  | History of Protocol.Recv_log.digest
      (** periodic history exchange used by the stability-detection
          baseline policy *)
  | Gossip of (Node_id.t * int) list
      (** heartbeat table of the gossip-style failure detector *)

val bytes : t -> int
(** Exact wire size: payload-carrying messages cost a 32-byte header
    plus the payload; [Handoff] batches add 24 bytes of per-entry
    framing (entry id + body length) per transferred message; control
    messages cost 64 bytes, plus 16 per digest/gossip entry and, for
    [History], 8 per missing sequence number listed under a source.
    Used by the bandwidth model, and kept reconciled with the binary
    format: [Codec.encoded_size msg = bytes msg] for every
    constructor (asserted per-constructor by the codec tests). *)

val cls : t -> string
(** Traffic class for network accounting: "data", "session",
    "local-req", "remote-req", "repair", "regional-repair", "search",
    "have", "handoff", "history", "gossip". *)

val pp : Format.formatter -> t -> unit
