(* Flat-array member state (see the .mli for the layout story).

   Packing: a (member, seq) pair is the int key [k = m * cap + seq];
   bitsets are byte-packed Bytes.t over k, phases are one byte per k,
   deadline ticks are one int per k. The built-in deadline ring mirrors
   Engine.Dring's lazy-touch design with the per-key entry record and
   hashtable replaced by the tick arrays: [touch] is a plain array
   store, and the sweep re-buckets keys whose tick moved. Bucket
   vectors are grow-only int arrays; the bucket table is only ever
   indexed by tick (never iterated), so no unordered-iteration order
   can escape.

   Off-heap backing: the per-key deadline ticks and the per-member
   occupancy integrals — the arrays whose size is proportional to
   n * cap — live in Bigarrays, so a 10^6-member arena costs the OCaml
   heap a handful of words regardless of how much state it tracks; the
   GC neither scans nor copies any of it. The gap callback is installed
   once at [create] (not passed per call): note_data runs on every
   delivery, and a per-call closure would charge the entire deliver
   path for the rare gap event. *)

type ticks = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_ticks len : ticks =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill a 0;
  a

let make_floats len : floats =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  Bigarray.Array1.fill a 0.0;
  a

let[@inline] ba_get (a : ticks) i = Bigarray.Array1.unsafe_get a i

let[@inline] ba_set (a : ticks) i v = Bigarray.Array1.unsafe_set a i v

let[@inline] fa_get (a : floats) i = Bigarray.Array1.unsafe_get a i

let[@inline] fa_set (a : floats) i v = Bigarray.Array1.unsafe_set a i v

(* tick-keyed buckets: the keys are small positive ints, so identity is
   a perfect hash (functor-made, per the D3 rule) *)
module Tick_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal

  let hash t = t land max_int
end)

type bucket = { mutable keys : int array; mutable len : int }

type t = {
  n : int;
  cap : int;
  quantum : float;
  idle_timeout : float;
  lifetime : float;  (* 0.0 = no lifetime configured *)
  barrier_driven : bool;  (* sweeps come from sweep_until, not Sim events *)
  mutable armed_buckets : int;  (* non-empty ticks; quiescence probe *)
  mutable swept : int;  (* highest tick swept (barrier-driven mode) *)
  sim : Engine.Sim.t;
  on_idle : member:int -> seq:int -> unit;
  on_lifetime : member:int -> seq:int -> unit;
  on_gap : member:int -> seq:int -> unit;
  (* gap detection, arrayified Gap_detect *)
  recv : Bytes.t;  (* n*cap receipt bits *)
  horizon : int array;  (* per member; -1 = nothing known *)
  missing_cnt : int array;
  recv_cnt : int array;
  (* two-phase buffer *)
  phase : Bytes.t;  (* per key: 0 absent, 1 short-term, 2 long-term *)
  buf_count : int array;
  buf_long : int array;
  peak : int array;
  occ_msg_ms : floats;
  occ_last : floats;
  delivered : int array;
  promotions : int array;  (* per seq: long-term bufferers in this region *)
  (* coalesced deadline ring: current tick per key, 0 = unarmed *)
  idle_tick : ticks;
  life_tick : ticks;
  buckets : bucket Tick_tbl.t;  (* tick -> armed keys (packed with class) *)
}

let create ~sim ~n ~cap ~quantum ~idle_timeout ~lifetime ?(barrier_driven = false) ~on_idle
    ~on_lifetime ~on_gap () =
  if n < 0 then invalid_arg "Member_soa.create: n must be non-negative";
  if cap <= 0 then invalid_arg "Member_soa.create: cap must be positive";
  (* the packed key [m * cap + seq] must survive the ring's extra
     class bit ([k lsl 1]): at 10^6 members x cap this is the guard
     that makes an oversized configuration fail loudly instead of
     silently aliasing two (member, seq) pairs onto one key *)
  if n > 0 && cap > max_int / 2 / n then
    invalid_arg "Member_soa.create: n * cap exceeds the packed (member, seq) key range";
  if quantum <= 0.0 then invalid_arg "Member_soa.create: quantum must be positive";
  if idle_timeout <= 0.0 then invalid_arg "Member_soa.create: idle_timeout must be positive";
  let lifetime =
    match lifetime with
    | None -> 0.0
    | Some l ->
      if l <= 0.0 then invalid_arg "Member_soa.create: lifetime must be positive";
      l
  in
  let keys = n * cap in
  {
    n;
    cap;
    quantum;
    idle_timeout;
    lifetime;
    barrier_driven;
    armed_buckets = 0;
    (* ticks at or before "now" are treated as already swept, so the
       first sweep_until never fires a deadline armed after create in
       a bucket that predates it *)
    swept = int_of_float (Float.floor ((Engine.Sim.now sim /. quantum) +. 1e-9));
    sim;
    on_idle;
    on_lifetime;
    on_gap;
    recv = Bytes.make ((keys + 7) / 8) '\000';
    horizon = Array.make n (-1);
    missing_cnt = Array.make n 0;
    recv_cnt = Array.make n 0;
    phase = Bytes.make keys '\000';
    buf_count = Array.make n 0;
    buf_long = Array.make n 0;
    peak = Array.make n 0;
    occ_msg_ms = make_floats n;
    occ_last = make_floats n;
    delivered = Array.make n 0;
    promotions = Array.make cap 0;
    idle_tick = make_ticks keys;
    life_tick = make_ticks keys;
    buckets = Tick_tbl.create 64;
  }

let members t = t.n

let capacity t = t.cap

let[@inline] key t m seq = (m * t.cap) + seq

let check t m seq =
  if m < 0 || m >= t.n then invalid_arg "Member_soa: member handle out of range";
  if seq < 0 || seq >= t.cap then invalid_arg "Member_soa: seq out of range"

(* ------------------------------------------------------------------ *)
(* Receipt bitset                                                      *)
(* ------------------------------------------------------------------ *)

let[@inline] bit_get bytes k =
  Char.code (Bytes.unsafe_get bytes (k lsr 3)) land (1 lsl (k land 7)) <> 0

let[@inline] bit_set bytes k =
  let b = k lsr 3 in
  Bytes.unsafe_set bytes b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bytes b) lor (1 lsl (k land 7))))

let[@lint.never_raise] received t m seq =
  (check t m seq)
  [@lint.allow
    "E argument-validation guard: raises only on a caller bug (handle or seq out of \
     range), never on wire input"];
  bit_get t.recv (key t m seq)

(* unreceived seqs in (horizon, upto], ascending, become detected
   losses; [received] above the horizon is possible when a repair for a
   not-yet-detected seq raced the data path, exactly as in Gap_detect *)
let fresh_gaps t m ~upto =
  let base = m * t.cap in
  for s = t.horizon.(m) + 1 to upto do
    if not (bit_get t.recv (base + s)) then begin
      t.missing_cnt.(m) <- t.missing_cnt.(m) + 1;
      t.on_gap ~member:m ~seq:s
    end
  done

let[@lint.never_raise] note_data t m seq =
  (check t m seq)
  [@lint.allow
    "E argument-validation guard: raises only on a caller bug (handle or seq out of \
     range), never on wire input"];
  let k = key t m seq in
  if bit_get t.recv k then false
  else begin
    if seq <= t.horizon.(m) then t.missing_cnt.(m) <- t.missing_cnt.(m) - 1;
    (* a data packet proves every lower seq exists, but not itself lost *)
    fresh_gaps t m ~upto:(seq - 1);
    if seq > t.horizon.(m) then t.horizon.(m) <- seq;
    bit_set t.recv k;
    t.recv_cnt.(m) <- t.recv_cnt.(m) + 1;
    true
  end

let[@lint.never_raise] note_session t m ~max_seq =
  (check t m max_seq)
  [@lint.allow
    "E argument-validation guard: raises only on a caller bug (handle or seq out of \
     range), never on wire input"];
  if max_seq > t.horizon.(m) then begin
    fresh_gaps t m ~upto:max_seq;
    t.horizon.(m) <- max_seq
  end

let[@lint.never_raise] note_repaired t m seq =
  (check t m seq)
  [@lint.allow
    "E argument-validation guard: raises only on a caller bug (handle or seq out of \
     range), never on wire input"];
  let k = key t m seq in
  if bit_get t.recv k then false
  else begin
    if seq <= t.horizon.(m) then t.missing_cnt.(m) <- t.missing_cnt.(m) - 1;
    bit_set t.recv k;
    t.recv_cnt.(m) <- t.recv_cnt.(m) + 1;
    true
  end

let missing_count t m = t.missing_cnt.(m)

let received_count t m = t.recv_cnt.(m)

let highest_seen t m = t.horizon.(m)

(* ------------------------------------------------------------------ *)
(* Deadline ring (arrayified Dring)                                    *)
(* ------------------------------------------------------------------ *)

(* bucket entries pack the deadline class into the low bit *)
let cls_idle = 0

let cls_life = 1

let[@inline] tick_arr t cls = if cls = cls_idle then t.idle_tick else t.life_tick

let bucket_push b packed =
  if b.len = Array.length b.keys then begin
    let fresh = Array.make (2 * b.len) 0 in
    Array.blit b.keys 0 fresh 0 b.len;
    b.keys <- fresh
  end;
  b.keys.(b.len) <- packed;
  b.len <- b.len + 1

(* [find]-with-exception, not [find_opt]: arming into an existing
   bucket is the steady state and must not pay a [Some] box. In
   barrier-driven mode a new bucket costs nothing beyond the table
   entry — the owning shard sweeps it from the window loop — so an
   arena shared by many regions schedules no Sim events at all. *)
let[@lint.allow
     "H2 the sweep thunk is built once per NEW tick bucket and amortized over every key \
      armed into it; the steady state takes the find arm above"] rec enqueue t tick packed =
  match Tick_tbl.find t.buckets tick with
  | b -> bucket_push b packed
  | exception Not_found ->
    let b = { keys = Array.make 8 0; len = 0 } in
    bucket_push b packed;
    Tick_tbl.add t.buckets tick b;
    t.armed_buckets <- t.armed_buckets + 1;
    if not t.barrier_driven then
      ignore
        (Engine.Sim.schedule_at t.sim
           ~at:(float_of_int tick *. t.quantum)
           (fun () -> sweep t tick))

(* fire everything still due at [tick], in arming order; keys whose
   deadline was pushed out by a touch re-bucket here (lazily), exactly
   like Dring's sweep *)
and sweep t tick =
  match Tick_tbl.find t.buckets tick with
  | exception Not_found -> ()
  | b ->
    Tick_tbl.remove t.buckets tick;
    t.armed_buckets <- t.armed_buckets - 1;
    for i = 0 to b.len - 1 do
      let packed = b.keys.(i) in
      let k = packed lsr 1 in
      let cls = packed land 1 in
      let ticks = tick_arr t cls in
      let cur = ba_get ticks k in
      if cur <> 0 then
        if cur <= tick then begin
          ba_set ticks k 0;
          let m = k / t.cap in
          let seq = k mod t.cap in
          if cls = cls_idle then t.on_idle ~member:m ~seq else t.on_lifetime ~member:m ~seq
        end
        else enqueue t cur packed
    done

(* barrier-driven sweeping: the shard coordinator calls this after each
   window with tick = floor(barrier / quantum). Ticks are swept in
   ascending order exactly as the Sim-scheduled sweeps would run, and a
   deadline armed mid-sweep always lands at a strictly later tick
   (timeouts are positive), so the loop never chases its own tail. *)
let sweep_until t ~tick =
  if not t.barrier_driven then
    invalid_arg "Member_soa.sweep_until: arena sweeps are Sim-driven";
  while t.swept < tick do
    t.swept <- t.swept + 1;
    sweep t t.swept
  done

let deadlines_pending t = t.armed_buckets > 0

let arm t cls k ~timeout ~now =
  (* open-coded tick_of, same reason as [touch]: without flambda the
     deadline float would be boxed at the call boundary, and the
     deliver path (insert -> arm) is gated at exactly 0 words/op *)
  let tick = int_of_float (Float.ceil ((now +. timeout) /. t.quantum)) in
  let ticks = tick_arr t cls in
  let was = ba_get ticks k in
  ba_set ticks k tick;
  (* an armed key is already in some bucket <= tick and will re-bucket
     at its sweep; only a cold key needs a bucket entry *)
  if was = 0 then enqueue t tick ((k lsl 1) lor cls)

(* ------------------------------------------------------------------ *)
(* Two-phase buffer                                                    *)
(* ------------------------------------------------------------------ *)

let settle t m ~now =
  (* the first read is bounds-checked so a bad public [m] raises *)
  let dt = now -. Bigarray.Array1.get t.occ_last m in
  if dt > 0.0 then begin
    fa_set t.occ_msg_ms m (fa_get t.occ_msg_ms m +. (float_of_int t.buf_count.(m) *. dt));
    fa_set t.occ_last m now
  end

let settle_all t ~now =
  for m = 0 to t.n - 1 do
    settle t m ~now
  done

let buffered t m seq =
  check t m seq;
  Bytes.unsafe_get t.phase (key t m seq) <> '\000'

let long_term t m seq =
  check t m seq;
  Bytes.unsafe_get t.phase (key t m seq) = '\002'

let insert_short t m seq ~now =
  check t m seq;
  let k = key t m seq in
  if Bytes.unsafe_get t.phase k <> '\000' then false
  else begin
    settle t m ~now;
    Bytes.unsafe_set t.phase k '\001';
    t.buf_count.(m) <- t.buf_count.(m) + 1;
    if t.buf_count.(m) > t.peak.(m) then t.peak.(m) <- t.buf_count.(m);
    arm t cls_idle k ~timeout:t.idle_timeout ~now;
    true
  end

let touch t m seq ~now =
  check t m seq;
  let k = key t m seq in
  (* O(1): bare array stores; the sweep re-buckets lazily. tick_of is
     open-coded here so the float argument can never be boxed at a
     call boundary: without flambda the [@inline] hint on tick_of is
     advisory, and this path is specified allocation-free (asserted by
     the soa-touch row in the scale bench). *)
  if ba_get t.idle_tick k <> 0 then
    ba_set t.idle_tick k (int_of_float (Float.ceil ((now +. t.idle_timeout) /. t.quantum)));
  if ba_get t.life_tick k <> 0 then
    ba_set t.life_tick k (int_of_float (Float.ceil ((now +. t.lifetime) /. t.quantum)))

let promote_long t m seq ~now =
  check t m seq;
  let k = key t m seq in
  if Bytes.unsafe_get t.phase k <> '\001' then false
  else begin
    Bytes.unsafe_set t.phase k '\002';
    t.buf_long.(m) <- t.buf_long.(m) + 1;
    t.promotions.(seq) <- t.promotions.(seq) + 1;
    ba_set t.idle_tick k 0;
    if t.lifetime > 0.0 then arm t cls_life k ~timeout:t.lifetime ~now;
    true
  end

let drop t m seq ~now =
  check t m seq;
  let k = key t m seq in
  let p = Bytes.unsafe_get t.phase k in
  if p = '\000' then false
  else begin
    settle t m ~now;
    Bytes.unsafe_set t.phase k '\000';
    t.buf_count.(m) <- t.buf_count.(m) - 1;
    if p = '\002' then t.buf_long.(m) <- t.buf_long.(m) - 1;
    ba_set t.idle_tick k 0;
    ba_set t.life_tick k 0;
    true
  end

let buffer_size t m = t.buf_count.(m)

let long_count t m = t.buf_long.(m)

let peak_size t m = t.peak.(m)

let occupancy_msg_ms t m = Bigarray.Array1.get t.occ_msg_ms m

let deliveries t m = t.delivered.(m)

let note_delivery t m = t.delivered.(m) <- t.delivered.(m) + 1

let promotions_of_seq t seq = t.promotions.(seq)
