(** RRMP — the Randomized Reliable Multicast Protocol with the
    two-phase buffer management of "Optimizing Buffer Management for
    Reliable Multicast" (Xiao, Birman & van Renesse, DSN 2002).

    Start with {!Group} (whole sessions), {!Member} (single nodes), or
    {!Sharded} (the region-sharded 10^5-10^6-member scale path over
    {!Member_soa} struct-of-arrays state);
    tune parameters through {!Config}; observe behaviour through
    {!Events}. *)

module Config = Config
module Payload = Payload
module Wire = Wire
module Codec = Codec
module Wire_arena = Wire_arena
module Buffer = Buffer
module Long_term = Long_term
module Model = Model
module Events = Events
module Member = Member
module Group = Group
module Member_soa = Member_soa
module Sharded = Sharded
