(** A member's retransmission buffer.

    Entries are in one of the two phases of Section 3: [Short_term]
    (feedback-based: discarded once idle unless promoted) or
    [Long_term] (kept by the randomly chosen bufferers of an idle
    message). The buffer also accounts for occupancy over time — the
    integral of buffered bytes (and message count) over virtual time —
    which the overhead experiments report. *)

type phase = Short_term | Long_term

type t

val create : sim:Engine.Sim.t -> t

val insert : t -> phase:phase -> Payload.t -> bool
(** [false] (and no change) if the message was already present. *)

val find : t -> Protocol.Msg_id.t -> Payload.t option

val mem : t -> Protocol.Msg_id.t -> bool

val phase_of : t -> Protocol.Msg_id.t -> phase option

val promote : t -> Protocol.Msg_id.t -> bool
(** Move an entry to [Long_term]; already-long-term entries are left
    alone. [false] (and no change) if the entry is absent — a
    promotion can race a discard (e.g. a handoff arriving after the
    idle timer fired), which must not be fatal. *)

val remove : t -> Protocol.Msg_id.t -> Payload.t option
(** Discard an entry; [None] if it was not buffered. *)

val stored_at : t -> Protocol.Msg_id.t -> float option
(** Virtual time the entry was inserted. *)

val size : t -> int
(** Number of buffered messages. *)

val bytes : t -> int

val count_phase : t -> phase -> int
(** O(1): phase counts are maintained on insert/promote/remove. *)

val iter : t -> (Payload.t -> phase -> unit) -> unit
(** Visit every entry, in unspecified order, without materializing a
    list. Callers must not depend on the order. *)

val fold : t -> init:'a -> ('a -> Payload.t -> phase -> 'a) -> 'a
(** Fold over every entry, in unspecified order. *)

val contents : t -> (Payload.t * phase) list
(** Sorted by message id. Materializes and sorts the whole buffer —
    use {!iter}/{!fold} on hot paths. *)

val long_term_payloads : t -> Payload.t list
(** What a leaving member must hand off, sorted by id. *)

val occupancy_msg_ms : t -> float
(** Integral of (buffered message count) d(time), up to now. *)

val occupancy_byte_ms : t -> float

val peak_size : t -> int

val peak_bytes : t -> int
