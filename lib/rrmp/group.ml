module Network = Netsim.Network

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  topology : Topology.t;
  net : Wire.t Network.t;
  config : Config.t;
  observer : Events.observer option;
  metrics : Tracing.Metrics.t option;
  members : Member.t Node_id.Table.t;
  sender : Node_id.t;
}

let spawn_member t node =
  let member =
    Member.create ~net:t.net ~config:t.config ~rng:(Engine.Rng.split t.rng) ~node
      ?observer:t.observer ?metrics:t.metrics ()
  in
  Node_id.Table.replace t.members node member;
  member

let create ?(seed = 1) ?(config = Config.default) ?(latency = Latency.paper_default)
    ?(loss = Loss.Lossless) ?bandwidth ?observer ?metrics ~topology () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let loss = Loss.create loss ~rng:(Engine.Rng.split rng) in
  let bandwidth =
    Option.map
      (fun bytes_per_ms -> { Network.bytes_per_ms; Network.packet_bytes = Wire.bytes })
      bandwidth
  in
  let net =
    Network.create ~sim ~topology ~latency ~loss ~rng:(Engine.Rng.split rng) ?bandwidth ()
  in
  Option.iter (Network.attach_metrics net) metrics;
  let nodes = Topology.all_nodes topology in
  if Array.length nodes = 0 then invalid_arg "Group.create: empty topology";
  let t =
    {
      sim;
      rng;
      topology;
      net;
      config;
      observer;
      metrics;
      members = Node_id.Table.create (Array.length nodes);
      sender = nodes.(0);
    }
  in
  Array.iter (fun node -> ignore (spawn_member t node)) nodes;
  t

let sim t = t.sim

let net t = t.net

let topology t = t.topology

let config t = t.config

let member t node =
  match Node_id.Table.find_opt t.members node with
  | Some m when Topology.is_member t.topology node -> m
  | Some _ | None -> raise Not_found

let sender t = member t t.sender

let live_nodes t = Topology.all_nodes t.topology

let members t =
  Array.to_list (live_nodes t)
  |> List.filter_map (fun node -> Node_id.Table.find_opt t.members node)

let members_of_region t region =
  Array.to_list (Topology.members t.topology region)
  |> List.filter_map (fun node -> Node_id.Table.find_opt t.members node)

let multicast t ?size () = Member.multicast (sender t) ?size ()

let multicast_reaching t ?size ~reach () =
  Member.multicast_reaching (sender t) ?size ~reach ()

let run ?until ?max_events t = Engine.Sim.run ?until ?max_events t.sim

let now t = Engine.Sim.now t.sim

let refresh_views t = List.iter Member.refresh_view (members t)

let join t region =
  let node = Topology.add_node t.topology region in
  let member = spawn_member t node in
  refresh_views t;
  member

let leave t node =
  let m = member t node in
  Member.leave m;
  Topology.remove_node t.topology node;
  Node_id.Table.remove t.members node;
  refresh_views t

let crash t node =
  let m = member t node in
  Member.crash m;
  Topology.remove_node t.topology node;
  Node_id.Table.remove t.members node;
  refresh_views t

let enable_failure_detection t ~gossip_interval ~fail_timeout =
  List.iter
    (fun m -> Member.enable_failure_detection m ~gossip_interval ~fail_timeout)
    (members t)

let count_if t predicate =
  List.fold_left (fun acc m -> if predicate m then acc + 1 else acc) 0 (members t)

let count_received t id = count_if t (fun m -> Member.has_received m id)

let count_buffered t id = count_if t (fun m -> Member.buffers m id)

let bufferers t id =
  members t
  |> List.filter_map (fun m -> if Member.buffers m id then Some (Member.node m) else None)

let received_by_all t id = List.for_all (fun m -> Member.has_received m id) (members t)

let total_buffered_messages t =
  List.fold_left (fun acc m -> acc + Member.buffer_size m) 0 (members t)

let quiescent t = Engine.Sim.pending t.sim = 0
