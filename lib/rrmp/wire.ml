type t =
  | Data of Payload.t
  | Session of { max_seq : int }
  | Local_request of Protocol.Msg_id.t
  | Remote_request of { id : Protocol.Msg_id.t; origin : Node_id.t }
  | Repair of Payload.t
  | Regional_repair of Payload.t
  | Search of { id : Protocol.Msg_id.t; origin : Node_id.t }
  | Have of Protocol.Msg_id.t
  | Handoff of Payload.t list
  | History of Protocol.Recv_log.digest
  | Gossip of (Node_id.t * int) list

let header = 32

let control = 64

let bytes = function
  | Data p | Repair p | Regional_repair p -> header + Payload.size p
  | Handoff payloads ->
    (* 24 bytes of per-entry framing (id + body length) plus the body:
       the batch shares one packet header but each transferred message
       still has to carry its identity on the wire. Codec.encode
       produces exactly this layout. *)
    List.fold_left (fun acc p -> acc + 24 + Payload.size p) header payloads
  | History digest ->
    (* 16 bytes per source entry (address + horizon) plus 8 per listed
       missing seq: the per-source missing lists are real wire payload,
       and dropping them undercounts stability traffic *)
    List.fold_left
      (fun acc (_, (_, missing)) -> acc + 16 + (8 * List.length missing))
      control digest
  | Gossip table -> control + (16 * List.length table)
  | Session _ | Local_request _ | Remote_request _ | Search _ | Have _ -> control

let cls = function
  | Data _ -> "data"
  | Session _ -> "session"
  | Local_request _ -> "local-req"
  | Remote_request _ -> "remote-req"
  | Repair _ -> "repair"
  | Regional_repair _ -> "regional-repair"
  | Search _ -> "search"
  | Have _ -> "have"
  | Handoff _ -> "handoff"
  | History _ -> "history"
  | Gossip _ -> "gossip"

let pp fmt = function
  | Data p -> Format.fprintf fmt "Data(%a)" Payload.pp p
  | Session { max_seq } -> Format.fprintf fmt "Session(max=%d)" max_seq
  | Local_request id -> Format.fprintf fmt "LocalReq(%a)" Protocol.Msg_id.pp id
  | Remote_request { id; origin } ->
    Format.fprintf fmt "RemoteReq(%a for %a)" Protocol.Msg_id.pp id Node_id.pp origin
  | Repair p -> Format.fprintf fmt "Repair(%a)" Payload.pp p
  | Regional_repair p -> Format.fprintf fmt "RegionalRepair(%a)" Payload.pp p
  | Search { id; origin } ->
    Format.fprintf fmt "Search(%a for %a)" Protocol.Msg_id.pp id Node_id.pp origin
  | Have id -> Format.fprintf fmt "Have(%a)" Protocol.Msg_id.pp id
  | Handoff payloads -> Format.fprintf fmt "Handoff(%d msgs)" (List.length payloads)
  | History digest -> Format.fprintf fmt "History(%d sources)" (List.length digest)
  | Gossip table -> Format.fprintf fmt "Gossip(%d entries)" (List.length table)
