(** A multicast data message as buffered and retransmitted: its
    identifier plus an off-heap body.

    The body is a {!Bigarray} slice malloc'd outside the OCaml heap, so
    buffering a message never costs minor-heap words proportional to
    its byte size — only the fixed payload handle. Ownership rules:
    the body is written exactly once, by {!make} (a deterministic
    pattern derived from the id, so end-to-end integrity is checkable
    with {!intact}); every later holder — buffers, in-flight repairs,
    handoff batches — shares the same slice by reference, and the GC
    releases the storage when the last holder lets go. *)

type t

val make : ?size:int -> Protocol.Msg_id.t -> t
(** Default size 1024 bytes. @raise Invalid_argument on negative
    size. *)

val id : t -> Protocol.Msg_id.t

val size : t -> int
(** Body length in bytes. *)

val get : t -> int -> char
(** Read one body byte. @raise Invalid_argument out of bounds. *)

val checksum : t -> int
(** Order-dependent checksum of the body bytes. *)

val intact : t -> bool
(** Whether the body still holds exactly the pattern {!make} wrote —
    the end-to-end integrity probe used by the handoff/repair tests. *)

val equal : t -> t -> bool
(** Same id and size (bodies are write-once, so this implies equal
    contents). *)

val pp : Format.formatter -> t -> unit
