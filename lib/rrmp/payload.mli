(** A multicast data message as buffered and retransmitted: its
    identifier plus an off-heap body.

    The body is a {!Bigarray} slice malloc'd outside the OCaml heap, so
    buffering a message never costs minor-heap words proportional to
    its byte size — only the fixed payload handle. Ownership rules:
    the body is written exactly once, by {!make} (a deterministic
    pattern derived from the id, so end-to-end integrity is checkable
    with {!intact}); every later holder — buffers, in-flight repairs,
    handoff batches — shares the same slice by reference, and the GC
    releases the storage when the last holder lets go. *)

type t

type body = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The off-heap storage a payload's bytes live in. *)

val make : ?size:int -> Protocol.Msg_id.t -> t
(** Default size 1024 bytes. @raise Invalid_argument on negative
    size. *)

val of_slice : Protocol.Msg_id.t -> body -> t
(** Wrap an existing slice as a payload body without copying — how
    {!Codec} materializes decoded frames. The payload shares the
    caller's storage: hand over a fresh copy (or a slice nothing else
    will overwrite) if the payload may be retained, and note that
    {!intact} only holds if the bytes carry {!make}'s id-derived
    pattern end to end. *)

val id : t -> Protocol.Msg_id.t

val body : t -> body
(** The payload's own slice (shared, not a copy): the encoder blits
    bodies straight from here onto the wire. Treat as read-only —
    bodies are write-once by contract. *)

val size : t -> int
(** Body length in bytes. *)

val get : t -> int -> char
(** Read one body byte. @raise Invalid_argument out of bounds. *)

val checksum : t -> int
(** Order-dependent checksum of the body bytes. *)

val intact : t -> bool
(** Whether the body still holds exactly the pattern {!make} wrote —
    the end-to-end integrity probe used by the handoff/repair tests. *)

val equal : t -> t -> bool
(** Same id and size (bodies are write-once, so this implies equal
    contents). *)

val pp : Format.formatter -> t -> unit
