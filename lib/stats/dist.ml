(* Lanczos coefficients (g = 7, n = 9), standard double-precision set. *)
let lanczos = [|
  0.99999999999980993;
  676.5203681218851;
  -1259.1392167224028;
  771.32342877765313;
  -176.61502916214059;
  12.507343278686905;
  -0.13857109526572012;
  9.9843695780195716e-6;
  1.5056327351493116e-7;
|]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Dist.log_gamma: x must be positive";
  if x < 0.5 then
    (* reflection formula keeps the Lanczos sum in its accurate range *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. (((x +. 0.5) *. log t) -. t) +. log !acc
  end

(* built eagerly at module init: a [lazy] here could raise RacyLazy
   when first forced from two domains of the trial pool at once *)
let log_factorial_cache =
  let table = Array.make 256 0.0 in
  for n = 2 to 255 do
    table.(n) <- table.(n - 1) +. log (float_of_int n)
  done;
  table

let log_factorial n =
  if n < 0 then invalid_arg "Dist.log_factorial: negative argument";
  if n < 256 then log_factorial_cache.(n)
  else log_gamma (float_of_int n +. 1.0)

let log_choose n k = log_factorial n -. log_factorial k -. log_factorial (n - k)

let binomial_pmf ~n ~p k =
  if n < 0 then invalid_arg "Dist.binomial_pmf: n must be non-negative";
  if p < 0.0 || p > 1.0 then invalid_arg "Dist.binomial_pmf: p must be in [0,1]";
  if k < 0 || k > n then 0.0
  else if p = 0.0 then (if k = 0 then 1.0 else 0.0)
  else if p = 1.0 then (if k = n then 1.0 else 0.0)
  else
    let log_pmf =
      log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p))
    in
    exp log_pmf

let binomial_cdf ~n ~p k =
  if k < 0 then 0.0
  else if k >= n then 1.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. binomial_pmf ~n ~p i
    done;
    Float.min !acc 1.0
  end

let poisson_pmf ~lambda k =
  if lambda < 0.0 then invalid_arg "Dist.poisson_pmf: lambda must be non-negative";
  if k < 0 then 0.0
  else if lambda = 0.0 then (if k = 0 then 1.0 else 0.0)
  else exp ((float_of_int k *. log lambda) -. lambda -. log_factorial k)

let poisson_cdf ~lambda k =
  if k < 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. poisson_pmf ~lambda i
    done;
    Float.min !acc 1.0
  end

let prob_no_bufferer ~c = exp (-.c)

let prob_no_request ~n ~p =
  if n < 2 then invalid_arg "Dist.prob_no_request: region must have >= 2 members";
  (1.0 -. (1.0 /. float_of_int (n - 1))) ** (float_of_int n *. p)

let expected_requests_per_member ~n ~missing =
  if n < 2 then 0.0 else float_of_int missing /. float_of_int (n - 1)
