(** Streaming univariate statistics (Welford's online algorithm) plus
    exact percentiles over retained samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_many : t -> float list -> unit

val merge : t -> t -> unit
(** [merge t other] folds [other] into [t] in place (count / mean / M2
    / min / max / total via the Chan et al. parallel Welford formula;
    retained samples spliced), equivalent to replaying [other]'s adds
    onto [t]. [other] is left unchanged; merging an empty summary is a
    no-op. Lets per-worker partial summaries combine pairwise. *)

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0.0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val total : t -> float

val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0, 100\]]; linear interpolation
    between closest ranks. @raise Invalid_argument when empty or [q]
    is out of range. *)

val median : t -> float

val ci95_halfwidth : t -> float
(** Half-width of the normal-approximation 95% confidence interval for
    the mean: [1.96 * stddev / sqrt count]. 0.0 with fewer than two
    samples. *)

val pp : Format.formatter -> t -> unit
