type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minimum : float;
  mutable maximum : float;
  mutable total : float;
  mutable samples : float list;   (* retained for exact percentiles *)
  mutable sorted : float array option; (* cache invalidated by add *)
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    minimum = Float.infinity;
    maximum = Float.neg_infinity;
    total = 0.0;
    samples = [];
    sorted = None;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minimum then t.minimum <- x;
  if x > t.maximum then t.maximum <- x;
  t.total <- t.total +. x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let add_many t xs = List.iter (add t) xs

(* Chan et al. parallel Welford update: fold [other] into [t] in one
   step, so per-worker partial summaries combine in O(1) per pair
   (plus the retained-sample splice for percentiles). *)
let merge t other =
  if other.n > 0 then begin
    if t.n = 0 then begin
      t.n <- other.n;
      t.mean <- other.mean;
      t.m2 <- other.m2;
      t.minimum <- other.minimum;
      t.maximum <- other.maximum;
      t.total <- other.total;
      t.samples <- other.samples;
      t.sorted <- None
    end
    else begin
      let n = t.n + other.n in
      let delta = other.mean -. t.mean in
      let mean = t.mean +. (delta *. float_of_int other.n /. float_of_int n) in
      let m2 =
        t.m2 +. other.m2
        +. (delta *. delta *. float_of_int t.n *. float_of_int other.n /. float_of_int n)
      in
      t.n <- n;
      t.mean <- mean;
      t.m2 <- m2;
      t.minimum <- Float.min t.minimum other.minimum;
      t.maximum <- Float.max t.maximum other.maximum;
      t.total <- t.total +. other.total;
      (* as if other's samples were [add]ed to [t] in their original
         insertion order ([add] prepends, so newest-first stays
         newest-first) *)
      t.samples <- other.samples @ t.samples;
      t.sorted <- None
    end
  end

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Summary.min: empty summary";
  t.minimum

let max t =
  if t.n = 0 then invalid_arg "Summary.max: empty summary";
  t.maximum

let total t = t.total

let sorted t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.samples in
    Array.sort Float.compare arr;
    t.sorted <- Some arr;
    arr

let percentile t q =
  if t.n = 0 then invalid_arg "Summary.percentile: empty summary";
  if q < 0.0 || q > 100.0 then invalid_arg "Summary.percentile: q out of [0,100]";
  let arr = sorted t in
  let rank = q /. 100.0 *. float_of_int (Array.length arr - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then arr.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. w)) +. (arr.(hi) *. w)
  end

let median t = percentile t 50.0

let ci95_halfwidth t =
  if t.n < 2 then 0.0 else 1.96 *. stddev t /. sqrt (float_of_int t.n)

let pp fmt t =
  if t.n = 0 then Format.fprintf fmt "(empty)"
  else
    Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f max=%.3f"
      t.n (mean t) (stddev t) t.minimum (median t) t.maximum
