(** Extension: large-group scale-out sweep over region size at fixed
    per-member load, run with the coalesced deadline rings
    ({!Rrmp.Config.t.deadline_quantum} > 0).

    Reports recovery latency, buffer occupancy and simulator event
    counts per region size — simulation-domain values only, so seeded
    reports are byte-identical everywhere; the wall-clock side of the
    sweep (deadline ring vs per-message timers) lives in
    [BENCH_scale.json]. *)

type run_stats = {
  members : int;
  delivered : int;
  touches : int;  (** feedback touches — the deadline rings' hot op *)
  recovered : int;
  recovery_mean : float;
  occupancy_msg_ms : float;
  peak_buffered : int;
  sim_events : int;
}

val run_once :
  n:int ->
  msgs:int ->
  burst:int ->
  ?gap:float ->
  ?loss_frac:float ->
  ?lifetime:float ->
  quantum:float ->
  seed:int ->
  ?observe:bool ->
  unit ->
  run_stats
(** One seeded run: [msgs] sender multicasts in bursts of [burst]
    every [gap] ms (default 25), each receiver missing each message
    independently with probability [loss_frac] (default 0.05), long-term
    lifetime [lifetime] ms (default 400), deadline quantum [quantum]
    (0 = exact per-message timers — the benchmark baseline).
    [observe] = false skips the event observer so the benchmark can
    measure the allocation-free path. *)

val run :
  ?sizes:int list ->
  ?msgs:int ->
  ?burst:int ->
  ?trials:int ->
  ?quantum:float ->
  ?seed:int ->
  unit ->
  Report.t

val run_once_sharded :
  regions:int ->
  per_region:int ->
  msgs:int ->
  burst:int ->
  ?gap:float ->
  ?loss_frac:float ->
  ?lifetime:float ->
  quantum:float ->
  seed:int ->
  ?shards:int ->
  ?observe:bool ->
  unit ->
  run_stats * int * int
(** One seeded run over {!Rrmp.Sharded}: [regions] regions of
    [per_region] members in a one-hop star under the sender's region,
    partitioned over [shards] (default {!Engine.Shard.default_shards};
    may exceed [regions] — surplus shards stay empty) conservative-time
    shards. Same workload shape as {!run_once}. Returns [(stats,
    cross_region_parcels, long_term_bufferers_total)]. Every returned
    value is shard-count invariant. [observe] attaches a counting
    per-shard observer (exercises the observed path; default [false]
    keeps the hot path allocation-free). *)

val run_sharded :
  ?cells:(int * int) list ->
  ?msgs:int ->
  ?burst:int ->
  ?trials:int ->
  ?quantum:float ->
  ?seed:int ->
  unit ->
  Report.t
(** Sharded sweep over [(regions, per_region)] cells; the full default
    tops out above 10^5 members. Trials run sequentially (the shard
    driver owns the worker pool). The report carries sim-domain values
    only and is byte-identical across shard and worker counts. *)

val run_1m :
  ?cells:(int * int) list ->
  ?msgs:int ->
  ?burst:int ->
  ?trials:int ->
  ?quantum:float ->
  ?seed:int ->
  unit ->
  Report.t
(** The million-member acceptance workload: same code path and report
    shape as {!run_sharded}, defaulting to one 1024 x 1024 cell (2^20
    members) with a lighter message load. The registry's quick variant
    scales the cell down without changing the code path. *)

val region_overhead : ?probe_regions:int -> ?regions:int -> ?cap:int -> unit -> float * float
(** [(words_per_region, schedules_per_region)]: marginal per-region
    fixed overhead of the sharded session, measured by differencing a
    [probe_regions]-region and a [regions]-region build (size-1
    regions, session ticker off, shards = 1) — heap words allocated by
    {!Rrmp.Sharded.create} and Sim schedules to drain one full-reach
    multicast, per additional region. The bench gates this against the
    spine budget. Runs the simulation twice; single-domain only. *)
