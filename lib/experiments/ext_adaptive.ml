module Msg_id = Protocol.Msg_id
module Network = Netsim.Network

type outcome = { unanswerable : int; unrecovered : int; local_requests : int }

let one_run ~adaptive ~delay_scale ~region ~seed =
  let topology = Topology.single_region ~size:region in
  let latency =
    Latency.create ~intra:(Latency.Constant (5.0 *. delay_scale)) ~inter:(Latency.Constant 50.0)
  in
  let config =
    if adaptive then { Rrmp.Config.default with Rrmp.Config.idle_rounds = Some 4.0 }
    else Rrmp.Config.default (* fixed T = 40 ms, tuned for a 10 ms RTT *)
  in
  let config = { config with Rrmp.Config.max_recovery_tries = Some 300 } in
  let unanswerable = ref 0 in
  let observer ~time:_ ~self:_ event =
    match event with
    | Rrmp.Events.Request_unanswerable _ -> incr unanswerable
    | _ -> ()
  in
  let group = Rrmp.Group.create ~seed ~config ~latency ~observer ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0xADA) in
  let id = Msg_id.make ~source:(Node_id.of_int 0) ~seq:0 in
  let payload = Rrmp.Payload.make id in
  let holder = Engine.Rng.pick rng (Topology.members topology (Region_id.of_int 0)) in
  List.iter
    (fun m ->
      if Node_id.equal (Rrmp.Member.node m) holder then
        Rrmp.Member.force_buffer m ~phase:Rrmp.Buffer.Short_term payload
      else Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members group);
  Rrmp.Group.run ~until:60_000.0 group;
  {
    unanswerable = !unanswerable;
    unrecovered = region - Rrmp.Group.count_received group id;
    local_requests = (Network.stats (Rrmp.Group.net group) ~cls:"local-req").Network.sent;
  }

let summarize ~adaptive ~delay_scale ~region ~trials ~seed =
  let outcomes =
    Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
        one_run ~adaptive ~delay_scale ~region ~seed)
  in
  let unanswerable = Stats.Summary.create () in
  let unrecovered = Stats.Summary.create () in
  let requests = Stats.Summary.create () in
  Array.iter
    (fun o ->
      Stats.Summary.add unanswerable (float_of_int o.unanswerable);
      Stats.Summary.add unrecovered (float_of_int o.unrecovered);
      Stats.Summary.add requests (float_of_int o.local_requests))
    outcomes;
  (unanswerable, unrecovered, requests)

let run ?(delay_scales = [ 1.0; 2.0; 4.0 ]) ?(region = 100) ?(trials = 10) ?(seed = 1) () =
  let rows =
    List.concat_map
      (fun delay_scale ->
        List.map
          (fun adaptive ->
            let unanswerable, unrecovered, requests =
              summarize ~adaptive ~delay_scale ~region ~trials ~seed
            in
            [
              Printf.sprintf "%.0fx RTT" delay_scale;
              (if adaptive then "adaptive 4 rounds" else "fixed 40ms");
              Report.cell_f (Stats.Summary.mean unanswerable);
              Report.cell_f (Stats.Summary.mean unrecovered);
              Report.cell_f (Stats.Summary.mean requests);
            ])
          [ false; true ])
      delay_scales
  in
  Report.make ~id:"ext_adaptive"
    ~title:"Fixed vs adaptive idle threshold when the region RTT is mis-estimated"
    ~columns:
      [ "region delay"; "T policy"; "unanswerable reqs"; "unrecovered members"; "local requests" ]
    ~notes:
      [
        Printf.sprintf
          "Figure 6 workload (1 initial holder, %d members); the fixed policy keeps \
           T = 40 ms (tuned for a 10 ms RTT) while the region's real RTT is scaled; \
           %d trials"
          region trials;
        "expected: at 1x both behave alike; as the real RTT grows past T/4, the fixed \
         policy discards prematurely (more unanswerable requests, more traffic, \
         possible stragglers) while the adaptive policy tracks the true RTT";
      ]
    rows
