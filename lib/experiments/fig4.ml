let mc_no_bufferer ~base_seed ~c ~n ~trials =
  let zeroes =
    Runner.par_map_trials ~trials ~base_seed (fun ~seed ->
        let rng = Engine.Rng.create ~seed in
        let bufferers = ref 0 in
        for _ = 1 to n do
          if Rrmp.Long_term.decide rng ~c ~n then incr bufferers
        done;
        !bufferers = 0)
  in
  let zero = Array.fold_left (fun acc z -> if z then acc + 1 else acc) 0 zeroes in
  float_of_int zero /. float_of_int trials

(* a full protocol run: multicast one message to a lossless region,
   let every member go idle and make its long-term choice, then count
   survivors *)
let protocol_no_bufferer ~c ~n ~trials ~seed =
  let zeroes =
    Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
        let topology = Topology.single_region ~size:n in
        let config = { Rrmp.Config.default with Rrmp.Config.expected_bufferers = c } in
        let group = Rrmp.Group.create ~seed ~config ~topology () in
        let id = Rrmp.Group.multicast group () in
        Rrmp.Group.run group;
        Rrmp.Group.count_buffered group id = 0)
  in
  let zero = Array.fold_left (fun acc z -> if z then acc + 1 else acc) 0 zeroes in
  float_of_int zero /. float_of_int trials

let run ?(cs = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ]) ?(region = 100) ?(mc_trials = 100_000)
    ?(protocol_trials = 300) ?(seed = 1) () =
  let rows =
    List.mapi
      (fun ci c ->
        let analytic = Stats.Dist.prob_no_bufferer ~c in
        let exact = Stats.Dist.binomial_pmf ~n:region ~p:(c /. float_of_int region) 0 in
        let coin =
          mc_no_bufferer ~base_seed:(seed + (ci * mc_trials)) ~c ~n:region ~trials:mc_trials
        in
        let proto = protocol_no_bufferer ~c ~n:region ~trials:protocol_trials ~seed:(seed * 1000) in
        [
          Printf.sprintf "%.0f" c;
          Report.cell_pct analytic;
          Report.cell_pct exact;
          Report.cell_pct coin;
          Report.cell_pct proto;
        ])
      cs
  in
  Report.make ~id:"fig4" ~title:"P(no long-term bufferer) vs C"
    ~columns:[ "C"; "e^-C %"; "binomial %"; "coin-flip MC %"; "protocol MC %" ]
    ~notes:
      [
        "paper: the probability decreases exponentially with C and is 0.25% at C = 6";
        Printf.sprintf
          "protocol MC: %d end-to-end runs per C (group of %d members, one multicast, \
           run to quiescence, count members still buffering)"
          protocol_trials region;
      ]
    rows
