module Network = Netsim.Network

(* time until every member has the message, sampled every 2 ms *)
let completion_probe ~sim ~count ~n ~horizon =
  let done_at = ref Float.nan in
  let rec sample at =
    if at <= horizon then
      ignore
        (Engine.Sim.schedule_at sim ~at (fun () ->
             if Float.is_nan !done_at && count () = n then done_at := at;
             sample (at +. 2.0)))
  in
  sample 0.0;
  fun () -> !done_at

let rrmp_completion ~bandwidth ~region ~seed ~horizon =
  let topology = Topology.single_region ~size:region in
  let group = Rrmp.Group.create ~seed ?bandwidth ~topology () in
  let id = Rrmp.Group.multicast_reaching group ~reach:(fun _ -> false) () in
  List.iter
    (fun m ->
      if not (Rrmp.Member.has_received m id) then Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members group);
  let read =
    completion_probe ~sim:(Rrmp.Group.sim group)
      ~count:(fun () -> Rrmp.Group.count_received group id)
      ~n:region ~horizon
  in
  Rrmp.Group.run ~until:horizon group;
  read ()

let tree_completion ~bandwidth ~region ~seed ~horizon =
  let topology = Topology.single_region ~size:region in
  let tree = Baselines.Tree_rmtp.create ~seed ?bandwidth ~topology () in
  let id0 = Baselines.Tree_rmtp.multicast_reaching tree ~reach:(fun _ -> false) () in
  (* a follow-up packet reveals the gap to every receiver *)
  let _id1 = Baselines.Tree_rmtp.multicast tree () in
  let read =
    completion_probe ~sim:(Baselines.Tree_rmtp.sim tree)
      ~count:(fun () -> Baselines.Tree_rmtp.count_received tree id0)
      ~n:region ~horizon
  in
  Baselines.Tree_rmtp.run ~until:horizon tree;
  read ()

let mean_of f ~trials ~seed =
  let values = Runner.par_map_trials ~trials ~base_seed:seed f in
  let s = Stats.Summary.create () in
  Array.iter (fun v -> if not (Float.is_nan v) then Stats.Summary.add s v) values;
  if Stats.Summary.count s = 0 then Float.nan else Stats.Summary.mean s

let run ?(bandwidths = [ Float.infinity; 1000.0; 300.0; 100.0 ]) ?(region = 100)
    ?(trials = 5) ?(seed = 1) () =
  let horizon = 60_000.0 in
  let rows =
    List.map
      (fun bw ->
        let bandwidth = if Float.is_finite bw then Some bw else None in
        let tree =
          mean_of ~trials ~seed (fun ~seed -> tree_completion ~bandwidth ~region ~seed ~horizon)
        in
        let rrmp =
          mean_of ~trials ~seed (fun ~seed -> rrmp_completion ~bandwidth ~region ~seed ~horizon)
        in
        [
          (if Float.is_finite bw then Printf.sprintf "%.0f B/ms" bw else "unlimited");
          Report.cell_f tree;
          Report.cell_f rrmp;
          Report.cell_f (tree /. Float.max rrmp 1e-9);
        ])
      bandwidths
  in
  Report.make ~id:"ext_implosion"
    ~title:"Message implosion: sender/server-based repair vs distributed recovery"
    ~columns:
      [ "egress bandwidth"; "tree/server completion (ms)"; "rrmp completion (ms)"; "ratio" ]
    ~notes:
      [
        Printf.sprintf
          "region of %d members, 1 KiB message held only by the sender; every other \
           member must be repaired; %d trials"
          region trials;
        "expected: with narrow links, the server serializes ~n repairs on one egress \
         and completion grows ~n x serialization time; RRMP's repaired members answer \
         their neighbours in parallel, so completion grows far more slowly";
      ]
    rows
