(* One trial: mean recovery latency over the downstream region's
   members, and whether recovery succeeded at all (it can fail when C's
   coin leaves no bufferer anywhere). *)
let one_trial ~c ~upstream ~downstream ~seed =
  let topology = Topology.chain ~sizes:[ upstream; downstream ] in
  let latencies = Stats.Summary.create () in
  let observer ~time:_ ~self:_ event =
    match event with
    | Rrmp.Events.Recovered { latency; _ } -> Stats.Summary.add latencies latency
    | _ -> ()
  in
  let config =
    { Rrmp.Config.default with
      Rrmp.Config.expected_bufferers = c;
      (* a high remote fan-out makes the search component (the part C
         influences) dominate the time-to-first-remote-request noise *)
      Rrmp.Config.lambda = 4.0;
      (* bound retries so a no-bufferer run terminates *)
      Rrmp.Config.max_recovery_tries = Some 500;
    }
  in
  let group = Rrmp.Group.create ~seed ~config ~observer ~topology () in
  let id =
    Rrmp.Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < upstream) ()
  in
  (* let the upstream region go idle: only its long-term bufferers keep
     the message *)
  Rrmp.Group.run ~until:300.0 group;
  let bufferers_after_idle = Rrmp.Group.count_buffered group id in
  List.iter
    (fun m -> Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members_of_region group (Region_id.of_int 1));
  Rrmp.Group.run ~until:60_000.0 group;
  let recovered =
    List.for_all
      (fun m -> Rrmp.Member.has_received m id)
      (Rrmp.Group.members_of_region group (Region_id.of_int 1))
  in
  (Stats.Summary.mean latencies, recovered, bufferers_after_idle)

let run ?(cs = [ 1.0; 2.0; 4.0; 6.0; 8.0; 12.0 ]) ?(upstream = 100) ?(downstream = 20)
    ?(trials = 30) ?(seed = 1) () =
  let rows =
    List.map
      (fun c ->
        let outcomes =
          Runner.par_map_trials ~trials
            ~base_seed:(seed + int_of_float (c *. 1000.))
            (fun ~seed -> one_trial ~c ~upstream ~downstream ~seed)
        in
        let latency = Stats.Summary.create () in
        let bufferers = Stats.Summary.create () in
        let failures = ref 0 in
        Array.iter
          (fun (mean_latency, recovered, nbuf) ->
            Stats.Summary.add bufferers (float_of_int nbuf);
            if recovered then Stats.Summary.add latency mean_latency else incr failures)
          outcomes;
        [
          Printf.sprintf "%.0f" c;
          Report.cell_f (Stats.Summary.mean bufferers);
          Report.cell_f (Stats.Summary.mean latency);
          Report.cell_i !failures;
        ])
      cs
  in
  Report.make ~id:"ext_latency_vs_c"
    ~title:"Downstream recovery latency vs C (buffer/latency trade-off)"
    ~columns:[ "C"; "bufferers after idle"; "mean recovery latency (ms)"; "failed runs" ]
    ~notes:
      [
        Printf.sprintf
          "upstream region %d (message idles there first), downstream region %d misses \
           the message entirely; %d trials per C"
          upstream downstream trials;
        "expected: near-flat latency — the inter-region RTT dominates and search time is \
         'a small fraction of the total recovery latency' (Section 4); C's real effect \
         is the failed-run column (no surviving bufferer) and Figure 8's search time";
      ]
    rows
