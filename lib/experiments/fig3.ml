(* each trial owns its RNG ([base_seed + i]) so trials parallelize;
   the count histogram is folded in trial order afterwards *)
let mc_distribution ~base_seed ~c ~n ~trials ~max_k =
  let per_trial =
    Runner.par_map_trials ~trials ~base_seed (fun ~seed ->
        let rng = Engine.Rng.create ~seed in
        let bufferers = ref 0 in
        for _ = 1 to n do
          if Rrmp.Long_term.decide rng ~c ~n then incr bufferers
        done;
        !bufferers)
  in
  let counts = Array.make (max_k + 1) 0 in
  Array.iter
    (fun bufferers ->
      if bufferers <= max_k then counts.(bufferers) <- counts.(bufferers) + 1)
    per_trial;
  Array.map (fun count -> float_of_int count /. float_of_int trials) counts

let run ?(cs = [ 5.0; 6.0; 7.0; 8.0 ]) ?(max_k = 20) ?(region = 100) ?(mc_trials = 20_000)
    ?(seed = 1) () =
  let mc =
    List.mapi
      (fun ci c ->
        mc_distribution ~base_seed:(seed + (ci * mc_trials)) ~c ~n:region
          ~trials:mc_trials ~max_k)
      cs
  in
  let columns =
    "k"
    :: List.concat_map
         (fun c ->
           [ Printf.sprintf "C=%.0f poisson %%" c; Printf.sprintf "C=%.0f simulated %%" c ])
         cs
  in
  let rows =
    List.init (max_k + 1) (fun k ->
        Report.cell_i k
        :: List.concat
             (List.map2
                (fun c dist ->
                  [
                    Report.cell_pct (Stats.Dist.poisson_pmf ~lambda:c k);
                    Report.cell_pct dist.(k);
                  ])
                cs mc))
  in
  Report.make ~id:"fig3" ~title:"P(k long-term bufferers) for different C"
    ~columns
    ~notes:
      [
        Printf.sprintf
          "simulated: %d trials of a %d-member region where each member keeps an idle \
           message with probability C/n (Section 3.2)"
          mc_trials region;
        "expected shape: Poisson(C) — mode near C, heavier right shift as C grows";
      ]
    rows
