let mean_over_seeds ~trials ~base_seed f =
  let summary = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    Stats.Summary.add summary (f ~seed:(base_seed + i))
  done;
  summary

let collect_over_seeds ~trials ~base_seed f =
  let summary = Stats.Summary.create () in
  for i = 0 to trials - 1 do
    Stats.Summary.add_many summary (f ~seed:(base_seed + i))
  done;
  summary

(* ------------------------------------------------------------------ *)
(* Parallel trial execution                                            *)
(*                                                                     *)
(* Each trial is already self-contained — it builds its own Sim /     *)
(* Network / Rng from [base_seed + i] — so trials can run on any       *)
(* domain in any order. Workers write into a trial-indexed array and   *)
(* every aggregate below folds that array sequentially in trial order, *)
(* which makes the output bit-identical to the sequential loops above  *)
(* regardless of scheduling. [-j 1] / [REPRO_JOBS=1] (or a single      *)
(* trial) bypasses the pool entirely and takes the loops above.        *)
(* ------------------------------------------------------------------ *)

let jobs () = Engine.Pool.default_workers ()

let par_map_trials ~trials ~base_seed f =
  if trials <= 0 then [||]
  else if jobs () <= 1 || trials = 1 then begin
    let results = Array.make trials (f ~seed:base_seed) in
    for i = 1 to trials - 1 do
      results.(i) <- f ~seed:(base_seed + i)
    done;
    results
  end
  else begin
    let results = Array.make trials None in
    Engine.Pool.parallel_for (Engine.Pool.global ()) ~n:trials (fun i ->
        results.(i) <- Some (f ~seed:(base_seed + i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let par_mean_over_seeds ~trials ~base_seed f =
  if jobs () <= 1 || trials <= 1 then mean_over_seeds ~trials ~base_seed f
  else begin
    let results = par_map_trials ~trials ~base_seed f in
    let summary = Stats.Summary.create () in
    Array.iter (Stats.Summary.add summary) results;
    summary
  end

let par_collect_over_seeds ~trials ~base_seed f =
  if jobs () <= 1 || trials <= 1 then collect_over_seeds ~trials ~base_seed f
  else begin
    let results = par_map_trials ~trials ~base_seed f in
    let summary = Stats.Summary.create () in
    Array.iter (Stats.Summary.add_many summary) results;
    summary
  end

let par_map_list items f =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | items when jobs () <= 1 -> List.map f items
  | items ->
    let arr = Array.of_list items in
    let results = Array.make (Array.length arr) None in
    Engine.Pool.parallel_for (Engine.Pool.global ()) ~n:(Array.length arr) (fun i ->
        results.(i) <- Some (f arr.(i)));
    Array.to_list (Array.map (function Some v -> v | None -> assert false) results)
