(* Large-group scale-out sweep (extension).

   The paper's motivation is asymptotic: per-member buffering work must
   shrink as the region grows (P = C/n). This experiment holds the
   per-member load fixed and sweeps the region size into the thousands,
   which is only affordable with the coalesced deadline rings
   ([Config.deadline_quantum] > 0) — the per-message-timer path is the
   baseline the BENCH_scale.json trajectory compares against.

   Workload: the sender multicasts [msgs] messages in bursts of
   [burst], [gap] ms apart; every receiver independently misses each
   message with probability [loss_frac] (sampled from a dedicated
   stream, so the protocol RNGs are untouched). Losses are detected by
   the next burst's sequence gaps or the sender's session messages,
   recovered from the surviving (1 - loss_frac) majority — every local
   request touching the holder's deadline ring — and all buffers drain
   through the idle/lifetime deadlines.

   The report contains only simulation-domain quantities (latency,
   occupancy, event counts), never wall-clock, so seeded output is
   byte-identical across machines and -j levels; wall-clock lives in
   BENCH_scale.json. *)

type run_stats = {
  members : int;
  delivered : int;  (* message bodies obtained, summed over members *)
  touches : int;  (* feedback touches = deadline-ring hot ops *)
  recovered : int;
  recovery_mean : float;  (* ms from detection to repair *)
  occupancy_msg_ms : float;  (* buffer integral per member *)
  peak_buffered : int;  (* max simultaneous entries at any member *)
  sim_events : int;
}

let run_once ~n ~msgs ~burst ?(gap = 25.0) ?(loss_frac = 0.05) ?(lifetime = 400.0)
    ~quantum ~seed ?(observe = true) () =
  let topology = Topology.single_region ~size:n in
  let config =
    {
      Rrmp.Config.default with
      Rrmp.Config.long_term_lifetime = Some lifetime;
      session_interval = Some 50.0;
      max_recovery_tries = Some 40;
      deadline_quantum = quantum;
    }
  in
  let recovered = ref 0 in
  let latency_sum = ref 0.0 in
  let observer =
    if not observe then None
    else
      Some
        (fun ~time:_ ~self:_ event ->
          match event with
          | Rrmp.Events.Recovered { latency; _ } ->
            incr recovered;
            latency_sum := !latency_sum +. latency
          | _ -> ())
  in
  let metrics = Tracing.Metrics.create () in
  let group = Rrmp.Group.create ~seed ~config ?observer ~metrics ~topology () in
  let sim = Rrmp.Group.sim group in
  let reach_rng = Engine.Rng.create ~seed:(seed lxor 0x5CA1E) in
  let bursts = (msgs + burst - 1) / burst in
  for b = 0 to bursts - 1 do
    let count = min burst (msgs - (b * burst)) in
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int b *. gap) (fun () ->
           for _ = 1 to count do
             ignore
               (Rrmp.Group.multicast_reaching group
                  ~reach:(fun _node -> not (Engine.Rng.bernoulli reach_rng ~p:loss_frac))
                  ())
           done))
  done;
  let horizon = (float_of_int bursts *. gap) +. lifetime +. 2_000.0 in
  Rrmp.Group.run ~until:horizon group;
  (* members are sorted by node id, so the float folds are ordered *)
  let members = Rrmp.Group.members group in
  let delivered =
    List.fold_left (fun acc m -> acc + Rrmp.Member.delivered_count m) 0 members
  in
  let occupancy =
    List.fold_left
      (fun acc m -> acc +. Rrmp.Buffer.occupancy_msg_ms (Rrmp.Member.buffer m))
      0.0 members
  in
  let peak =
    List.fold_left (fun acc m -> max acc (Rrmp.Buffer.peak_size (Rrmp.Member.buffer m))) 0 members
  in
  {
    members = n;
    delivered;
    touches = Tracing.Metrics.counter metrics "rrmp.feedback_touches";
    recovered = !recovered;
    recovery_mean =
      (if !recovered = 0 then 0.0 else !latency_sum /. float_of_int !recovered);
    occupancy_msg_ms = occupancy /. float_of_int n;
    peak_buffered = peak;
    sim_events = Engine.Sim.events_executed sim;
  }

let run ?(sizes = [ 256; 1024; 2048; 5000 ]) ?(msgs = 48) ?(burst = 8) ?(trials = 2)
    ?(quantum = 10.0) ?(seed = 1) () =
  let rows =
    List.map
      (fun n ->
        let stats =
          Runner.par_map_trials ~trials ~base_seed:(seed + (n * 7919)) (fun ~seed ->
              run_once ~n ~msgs ~burst ~quantum ~seed ())
        in
        let trials_f = float_of_int trials in
        let mean_f f = Array.fold_left (fun acc s -> acc +. f s) 0.0 stats /. trials_f in
        let mean_i f = mean_f (fun s -> float_of_int (f s)) in
        [
          Report.cell_i n;
          Report.cell_f (mean_i (fun s -> s.delivered));
          Report.cell_f (mean_i (fun s -> s.touches));
          Report.cell_f (mean_i (fun s -> s.recovered));
          Report.cell_f (mean_f (fun s -> s.recovery_mean));
          Report.cell_f (mean_f (fun s -> s.occupancy_msg_ms));
          Report.cell_f (mean_i (fun s -> s.peak_buffered));
          Report.cell_f (mean_i (fun s -> s.sim_events));
        ])
      sizes
  in
  Report.make ~id:"ext_scale"
    ~title:"Large-group scale-out: fixed per-member load, region size sweep"
    ~columns:
      [
        "members";
        "delivered";
        "feedback touches";
        "recoveries";
        "recovery ms (mean)";
        "buf msg-ms/member";
        "peak buffered";
        "sim events";
      ]
    ~notes:
      [
        Printf.sprintf
          "%d msgs in bursts of %d, 5%% independent loss, lifetime 400 ms, %d trials; \
           deadline quantum %.0f ms (discards may fire up to one quantum late, never early)"
          msgs burst trials quantum;
        "recovery latency and occupancy should stay flat as n grows (P = C/n keeps \
         per-member work constant); sim events grow linearly with n";
        "sim-domain values only: wall-clock for this sweep (ring vs per-message timers) \
         is tracked in BENCH_scale.json";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Region-sharded sweep (10^5-10^6 members over Rrmp.Sharded)          *)
(* ------------------------------------------------------------------ *)

let run_once_sharded ~regions ~per_region ~msgs ~burst ?(gap = 25.0) ?(loss_frac = 0.05)
    ?(lifetime = 400.0) ~quantum ~seed ?shards ?(observe = false) () =
  let shards =
    (* shards may exceed regions: surplus shards own empty spines and
       the result is still byte-identical (exercised by the tests) *)
    let s = match shards with Some s -> s | None -> Engine.Shard.default_shards () in
    max 1 s
  in
  let config =
    {
      Rrmp.Config.default with
      Rrmp.Config.long_term_lifetime = Some lifetime;
      session_interval = Some 50.0;
      max_recovery_tries = Some 40;
      deadline_quantum = quantum;
    }
  in
  let sizes = Array.make regions per_region in
  (* star of regions under the sender's: every remote region one hop *)
  let parents = Array.make regions 0 in
  parents.(0) <- -1;
  (* per-shard observers (the gating contract is per shard); they only
     count, so observed runs stay deterministic *)
  let observed = ref 0 in
  let observer =
    if not observe then None else Some (fun (_ : int) -> Some (fun ~time:_ ~self:_ _ -> incr observed))
  in
  let sharded =
    Rrmp.Sharded.create ~seed ~config ~sizes ~parents ~shards ~cap:msgs ?observer ()
  in
  let sim = Rrmp.Sharded.sender_sim sharded in
  (* loss stream separate from the protocol streams; consulted in
     (region, member) order inside each multicast, which runs in sender
     event order — shard-count invariant *)
  let reach_rng = Engine.Rng.create ~seed:(seed lxor 0x5CA1E) in
  let bursts = (msgs + burst - 1) / burst in
  for b = 0 to bursts - 1 do
    let count = min burst (msgs - (b * burst)) in
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int b *. gap) (fun () ->
           for _ = 1 to count do
             Rrmp.Sharded.multicast sharded ~reach:(fun ~region:_ ~member:_ ->
                 not (Engine.Rng.bernoulli reach_rng ~p:loss_frac))
           done))
  done;
  let horizon = (float_of_int bursts *. gap) +. lifetime +. 2_000.0 in
  Rrmp.Sharded.run sharded ~until:horizon;
  let n = Rrmp.Sharded.size sharded in
  let recovered = Rrmp.Sharded.recovered_total sharded in
  let lt_total = ref 0 in
  for seq = 0 to msgs - 1 do
    lt_total := !lt_total + Rrmp.Sharded.long_term_bufferers sharded ~seq
  done;
  let stats =
    {
      members = n;
      delivered = Rrmp.Sharded.delivered_total sharded;
      touches = Rrmp.Sharded.touches_total sharded;
      recovered;
      recovery_mean =
        (if recovered = 0 then 0.0
         else Rrmp.Sharded.recovery_latency_sum sharded /. float_of_int recovered);
      occupancy_msg_ms = Rrmp.Sharded.occupancy_msg_ms_total sharded /. float_of_int n;
      peak_buffered = Rrmp.Sharded.peak_buffered sharded;
      sim_events = Rrmp.Sharded.sim_events sharded;
    }
  in
  (stats, Rrmp.Sharded.cross_region_parcels sharded, !lt_total)

(* shared row/report builder for the sharded sweeps: [run_sharded] and
   [run_1m] differ only in id, title, default cells and the closing
   interpretation note *)
let sharded_report ~id ~title ~closing_note ~cells ~msgs ~burst ~trials ~quantum ~seed () =
  let rows =
    List.map
      (fun (regions, per_region) ->
        (* trials run sequentially: the shard driver already owns the
           worker pool, so nesting Runner's par_map under it would
           deadlock-prone double-book the workers *)
        let acc = ref [] in
        for k = trials - 1 downto 0 do
          acc :=
            run_once_sharded ~regions ~per_region ~msgs ~burst ~quantum
              ~seed:(seed + (regions * 7919) + k)
              ()
            :: !acc
        done;
        let results = !acc in
        let trials_f = float_of_int trials in
        let mean_f f = List.fold_left (fun a r -> a +. f r) 0.0 results /. trials_f in
        let mean_i f = mean_f (fun r -> float_of_int (f r)) in
        let stats (s, _, _) = s in
        [
          Report.cell_i regions;
          Report.cell_i (regions * per_region);
          Report.cell_f (mean_i (fun r -> (stats r).delivered));
          Report.cell_f (mean_i (fun r -> (stats r).touches));
          Report.cell_f (mean_i (fun r -> (stats r).recovered));
          Report.cell_f (mean_f (fun r -> (stats r).recovery_mean));
          Report.cell_f (mean_f (fun r -> (stats r).occupancy_msg_ms));
          Report.cell_f (mean_i (fun r -> (stats r).peak_buffered));
          Report.cell_f (mean_i (fun (_, parcels, _) -> parcels));
          (* long-term bufferers per (message, region): the paper's
             Poisson(C) mean, which must stay flat as members grow *)
          Report.cell_f
            (mean_f (fun (_, _, lt) ->
                 float_of_int lt /. float_of_int (msgs * regions)));
          Report.cell_f (mean_i (fun r -> (stats r).sim_events));
        ])
      cells
  in
  Report.make ~id ~title
    ~columns:
      [
        "regions";
        "members";
        "delivered";
        "feedback touches";
        "recoveries";
        "recovery ms (mean)";
        "buf msg-ms/member";
        "peak buffered";
        "x-region parcels";
        "LT bufferers/(msg*region)";
        "sim events";
      ]
    ~notes:
      [
        Printf.sprintf
          "%d msgs in bursts of %d, 5%% independent loss, lifetime 400 ms, %d trial(s); \
           deadline quantum %.0f ms = the conservative barrier window"
          msgs burst trials quantum;
        "values are shard-count invariant by construction (per-region RNG substreams, \
         barrier-quantized cross-region traffic, region-ordered float folds): this report \
         is byte-identical for any --shards / REPRO_SHARDS";
        closing_note;
      ]
    rows

let run_sharded ?(cells = [ (16, 512); (32, 1024); (64, 1600) ]) ?(msgs = 32) ?(burst = 8)
    ?(trials = 1) ?(quantum = 10.0) ?(seed = 1) () =
  sharded_report ~id:"ext_scale_sharded"
    ~title:"Region-sharded scale-out: struct-of-arrays members, conservative-time shards"
    ~closing_note:
      "LT bufferers per (message, region) should hug C = 6.0 as members grow \
       (P = C/n), keeping buffer occupancy per member asymptotically flat"
    ~cells ~msgs ~burst ~trials ~quantum ~seed ()

let run_1m ?(cells = [ (1024, 1024) ]) ?(msgs = 8) ?(burst = 4) ?(trials = 1)
    ?(quantum = 10.0) ?(seed = 1) () =
  sharded_report ~id:"ext_scale_1m"
    ~title:"Million-member scale path: one per-shard event spine, 10^6 members"
    ~closing_note:
      "the 10^6-member cell is the per-shard-spine acceptance workload: per-region \
       fixed cost is a handful of words (flat session arrays + arena slices), so \
       region count scales into the thousands; wall-clock and peak heap live in \
       BENCH_scale.json"
    ~cells ~msgs ~burst ~trials ~quantum ~seed ()

(* ------------------------------------------------------------------ *)
(* Per-region fixed-overhead probe (spine acceptance metric)            *)
(* ------------------------------------------------------------------ *)

(* marginal heap words and Sim schedules per region, measured by
   differencing two session sizes so shard-level fixed costs cancel.
   Regions of size 1 with the session ticker off isolate the per-region
   scaffolding: the only per-member state is one arena slot and one rng,
   and the drain of a single full-reach multicast adds its events. *)
let overhead_probe ~regions ~cap =
  let config =
    {
      Rrmp.Config.default with
      Rrmp.Config.long_term_lifetime = Some 400.0;
      session_interval = None;
      max_recovery_tries = Some 40;
      deadline_quantum = 10.0;
    }
  in
  let sizes = Array.make regions 1 in
  let parents = Array.make regions 0 in
  parents.(0) <- -1;
  let w0 = Gc.minor_words () in
  let sharded = Rrmp.Sharded.create ~seed:1 ~config ~sizes ~parents ~shards:1 ~cap () in
  let w1 = Gc.minor_words () in
  let sim = Rrmp.Sharded.sender_sim sharded in
  ignore
    (Engine.Sim.schedule_at sim ~at:0.0 (fun () ->
         Rrmp.Sharded.multicast sharded ~reach:(fun ~region:_ ~member:_ -> true)));
  Rrmp.Sharded.run sharded ~until:500.0;
  (w1 -. w0, Rrmp.Sharded.sim_schedules sharded)

let region_overhead ?(probe_regions = 16) ?(regions = 272) ?(cap = 8) () =
  let w_small, s_small = overhead_probe ~regions:probe_regions ~cap in
  let w_big, s_big = overhead_probe ~regions ~cap in
  let d = float_of_int (regions - probe_regions) in
  ((w_big -. w_small) /. d, float_of_int (s_big - s_small) /. d)
