let sample_run ~region ~sample_every ~horizon ~seed =
  let group, id, _holders = Fig6.setup ~holders:1 ~region ~seed ~observer:(fun ~time:_ ~self:_ _ -> ()) in
  let received = Stats.Series.create ~name:"received" () in
  let buffered = Stats.Series.create ~name:"buffered" () in
  let sim = Rrmp.Group.sim group in
  let rec sample t =
    if t <= horizon then
      ignore
        (Engine.Sim.schedule_at sim ~at:t (fun () ->
             Stats.Series.record received ~time:t
               (float_of_int (Rrmp.Group.count_received group id));
             Stats.Series.record buffered ~time:t
               (float_of_int (Rrmp.Group.count_buffered group id));
             sample (t +. sample_every)))
  in
  sample 0.0;
  Rrmp.Group.run ~until:(horizon +. 1.0) group;
  (received, buffered)

let run ?(region = 100) ?(sample_every = 5.0) ?(horizon = 140.0) ?(trials = 1) ?(seed = 3) () =
  let times =
    Array.init (1 + int_of_float (horizon /. sample_every)) (fun i ->
        float_of_int i *. sample_every)
  in
  let received_acc = Array.make (Array.length times) 0.0 in
  let buffered_acc = Array.make (Array.length times) 0.0 in
  let per_trial =
    Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
        let received, buffered = sample_run ~region ~sample_every ~horizon ~seed in
        (Stats.Series.sample received ~times, Stats.Series.sample buffered ~times))
  in
  Array.iter
    (fun (received, buffered) ->
      Array.iteri (fun i (_, v) -> received_acc.(i) <- received_acc.(i) +. v) received;
      Array.iteri (fun i (_, v) -> buffered_acc.(i) <- buffered_acc.(i) +. v) buffered)
    per_trial;
  let rows =
    Array.to_list
      (Array.mapi
         (fun i t ->
           [
             Report.cell_f t;
             Report.cell_f (received_acc.(i) /. float_of_int trials);
             Report.cell_f (buffered_acc.(i) /. float_of_int trials);
           ])
         times)
  in
  Report.make ~id:"fig7" ~title:"#received vs #buffered over time (1 initial holder)"
    ~columns:[ "time (ms)"; "#received"; "#buffered" ]
    ~notes:
      [
        Printf.sprintf "region of %d members; %d trial(s); T = 40 ms" region trials;
        "expected shape: buffered tracks received during recovery, then collapses to ~C \
         once ~96% of members have the message and requests quiet down";
      ]
    rows
