let one_trial ~c ~region ~seed =
  let topology = Topology.single_region ~size:region in
  let config =
    { Rrmp.Config.default with
      Rrmp.Config.expected_bufferers = c;
      Rrmp.Config.max_recovery_tries = Some 2000;
    }
  in
  let recovered_latency = ref None in
  let victim = ref None in
  let observer ~time:_ ~self event =
    match event with
    | Rrmp.Events.Recovered { latency; _ } when Some self = !victim ->
      recovered_latency := Some latency
    | _ -> ()
  in
  let group = Rrmp.Group.create ~seed ~config ~observer ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0xACE) in
  let late = Engine.Rng.pick rng (Topology.members topology (Region_id.of_int 0)) in
  victim := Some late;
  let id =
    Rrmp.Group.multicast_reaching group ~reach:(fun n -> not (Node_id.equal n late)) ()
  in
  (* everyone else idles; the victim has not noticed anything yet *)
  Rrmp.Group.run ~until:300.0 group;
  let bufferers = Rrmp.Group.count_buffered group id in
  Rrmp.Member.inject_loss (Rrmp.Group.member group late) id;
  Rrmp.Group.run ~until:60_000.0 group;
  let recovered = Rrmp.Member.has_received (Rrmp.Group.member group late) id in
  (recovered, !recovered_latency, bufferers)

let run ?(cs = [ 1.0; 2.0; 3.0; 4.0; 6.0; 8.0 ]) ?(region = 100) ?(trials = 200) ?(seed = 1)
    () =
  let rows =
    List.map
      (fun c ->
        let outcomes =
          Runner.par_map_trials ~trials
            ~base_seed:(seed + (int_of_float c * 100_000))
            (fun ~seed -> one_trial ~c ~region ~seed)
        in
        let violations = ref 0 in
        let latency = Stats.Summary.create () in
        Array.iter
          (fun (recovered, lat, _) ->
            if recovered then Option.iter (Stats.Summary.add latency) lat
            else incr violations)
          outcomes;
        [
          Printf.sprintf "%.0f" c;
          Report.cell_pct (float_of_int !violations /. float_of_int trials);
          Report.cell_pct (Stats.Dist.prob_no_bufferer ~c);
          Report.cell_f (Stats.Summary.mean latency);
        ])
      cs
  in
  Report.make ~id:"ext_reliability"
    ~title:"Reliability-violation probability for a late detector vs C (Section 5)"
    ~columns:[ "C"; "violation %"; "e^-C %"; "latency if recovered (ms)" ]
    ~notes:
      [
        Printf.sprintf
          "region %d; one receiver detects its loss only after the message idled \
           everywhere; %d trials per C"
          region trials;
        "expected: violation probability tracks e^-C; latency shrinks slightly with C";
      ]
    rows
