(* Per-path allocation gates.

   Every driver below stages its world — group, SoA arena, fabric,
   preallocated request records — outside the measured window, then
   runs the steady-state op in a tight loop between two
   [Gc.minor_words] probes. The probes themselves allocate (each call
   boxes a float), so that constant is sampled with an empty window
   first and subtracted; a path that allocates nothing then reads
   exactly 0.0 words/op, which is what the [exact] gates demand.

   The budgets here are the single source of truth: bench reports them
   (BENCH_alloc.json) and test/test_alloc_gates.ml asserts them, both
   through {!run}/{!failures}. *)

type result = {
  name : string;
  what : string;
  ops : int;
  minor_words_per_op : float;
  ns_per_op : float;
  budget : float;
  exact : bool;
}

(* words charged by the two Gc.minor_words calls bracketing an empty
   window: the float boxes of the probes themselves *)
let probe_overhead () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let[@lint.allow
     "D1 ns/op is informational wall-clock for the bench JSON only; gate verdicts and every \
      report read the words column, which is deterministic"] measure ~name ~what ~budget ~exact
    ~ops f =
  let overhead = probe_overhead () in
  let t0 = Sys.time () in
  let w0 = Gc.minor_words () in
  f ();
  let w1 = Gc.minor_words () in
  let t1 = Sys.time () in
  let total = float_of_int (max 1 ops) in
  let words = Float.max 0.0 (w1 -. w0 -. overhead) in
  {
    name;
    what;
    ops;
    minor_words_per_op = words /. total;
    ns_per_op = (t1 -. t0) *. 1e9 /. total;
    budget;
    exact;
  }

module Soa = Rrmp.Member_soa

let nop_cb ~member:_ ~seq:_ = ()

let make_soa ~n ~cap ?(on_gap = nop_cb) () =
  let sim = Engine.Sim.create ~wheel:false () in
  Soa.create ~sim ~n ~cap ~quantum:10.0 ~idle_timeout:1e9 ~lifetime:None
    ~on_idle:nop_cb ~on_lifetime:nop_cb ~on_gap ()

(* deliver: in-order receipt bookkeeping — gap check, short-term buffer
   insert with deadline arming, delivery accounting. The second half of
   the sequence space is measured after the first half has warmed every
   lazily-grown structure. *)
let run_deliver ~n ~k =
  let soa = make_soa ~n ~cap:(2 * k) () in
  let now = Sys.opaque_identity 0.0 in
  let deliver_range lo hi =
    for m = 0 to n - 1 do
      for s = lo to hi - 1 do
        ignore (Soa.note_data soa m s : bool);
        ignore (Soa.insert_short soa m s ~now : bool);
        Soa.note_delivery soa m
      done
    done
  in
  deliver_range 0 k;
  measure ~name:"alloc/deliver" ~what:"SoA in-order delivery: gap check + buffer insert + accounting"
    ~budget:0.0 ~exact:true ~ops:(n * k) (fun () -> deliver_range k (2 * k))

(* gap-note: a session advertisement reveals k fresh losses per member;
   each flows through the create-time on_gap callback. *)
let run_gap_note ~n ~k =
  let noted = ref 0 in
  let soa = make_soa ~n ~cap:(2 * k) ~on_gap:(fun ~member:_ ~seq:_ -> incr noted) () in
  for m = 0 to n - 1 do
    Soa.note_session soa m ~max_seq:(k - 1)
  done;
  let r =
    measure ~name:"alloc/gap-note" ~what:"session advertisement reveals losses via create-time on_gap"
      ~budget:1.0 ~exact:false ~ops:(n * k) (fun () ->
        for m = 0 to n - 1 do
          Soa.note_session soa m ~max_seq:((2 * k) - 1)
        done)
  in
  assert (!noted = 2 * n * k);
  r

(* deadline-touch: feedback pushes every armed idle deadline out; the
   ring re-buckets lazily, so a touch is O(1) field writes. *)
let run_deadline_touch ~n ~k ~rounds =
  let soa = make_soa ~n ~cap:k () in
  let now = Sys.opaque_identity 0.0 in
  for m = 0 to n - 1 do
    for s = 0 to k - 1 do
      ignore (Soa.insert_short soa m s ~now : bool)
    done
  done;
  measure ~name:"alloc/deadline-touch" ~what:"feedback touch re-arms a coalesced deadline in place"
    ~budget:1.0 ~exact:false
    ~ops:(n * k * rounds)
    (fun () ->
      for _ = 1 to rounds do
        for m = 0 to n - 1 do
          for s = 0 to k - 1 do
            Soa.touch soa m s ~now
          done
        done
      done)

(* regional-repair fan-out: batched cross-region parcels expand to
   per-member deliveries inside the destination shard's event loop.
   Posting and exchange pre-stage the parcels (Sim.schedule hands out a
   handle, so staging is not allocation-free and sits outside the
   window); the measured window is the firing itself — parcel
   expansion, delivery upcalls, slot recycling. *)
let run_regional_fanout ~regions ~per_region ~batches =
  let sims = Array.init regions (fun _ -> Engine.Sim.create ~wheel:false ()) in
  let delivered = ref 0 in
  (* one slot pool: the gate measures a shard's own steady state —
     post pops the same free list fire recycles into. (With one pool
     per region and a send-only source, recycled slots would pile up
     at the receivers while the sender allocates fresh ones; in the
     sharded session that imbalance is amortized across the window
     traffic, but here it would put pool growth inside the measured
     drain.) *)
  let fabric =
    Netsim.Fabric.create ~regions ~shards:1 ~shard_of:(fun _ -> 0) ~quantum:10.0
      ~sim_of:(fun r -> sims.(r))
      ~deliver:(fun ~region:_ ~member:_ () -> incr delivered)
  in
  let dsts = Array.init per_region Fun.id in
  let post ~arrival =
    for r = 1 to regions - 1 do
      Netsim.Fabric.fanout fabric ~src_region:0 ~dst_region:r ~arrival ~dsts ()
    done
  in
  let drain () = Array.iter (fun s -> Engine.Sim.run s) sims in
  (* warm rounds at the full batch count: slot pools, free lists and
     destination buffers must be grown to the measured population
     before the window opens *)
  for b = 0 to batches - 1 do
    post ~arrival:(10.0 +. (10.0 *. float_of_int b))
  done;
  ignore (Netsim.Fabric.exchange fabric ~barrier:10.0 : int);
  drain ();
  let warm = 10.0 +. (10.0 *. float_of_int batches) in
  for b = 0 to batches - 1 do
    post ~arrival:(warm +. (10.0 *. float_of_int b))
  done;
  ignore (Netsim.Fabric.exchange fabric ~barrier:warm : int);
  let ops = batches * (regions - 1) * per_region in
  let r =
    measure ~name:"alloc/regional-fanout"
      ~what:"staged fabric parcels fire: expansion + delivery + slot recycle" ~budget:0.0
      ~exact:true ~ops drain
  in
  assert (!delivered = 2 * ops);
  r

(* The two repair-serving gates run the full record path: a
   preallocated request record is injected straight into the serving
   member (the pooled-delivery contract), the buffered payload is
   served through the wire arena, and the pooled network delivers the
   repair. Latency sampling, wheel scheduling and stats put these paths
   above zero by design; the budget documents the bound. *)

let repair_group ~topology =
  let config = { Rrmp.Config.default with Rrmp.Config.deadline_quantum = 10.0 } in
  let group = Rrmp.Group.create ~seed:7 ~config ~topology () in
  let id = Rrmp.Group.multicast group () in
  Rrmp.Group.run group;
  (group, id)

let run_repair ~name ~what ~budget ~topology ~request ~server_of ~ops =
  let group, id = repair_group ~topology in
  let server = server_of group in
  Rrmp.Member.force_buffer server ~phase:Rrmp.Buffer.Long_term (Rrmp.Payload.make id);
  let sim = Rrmp.Group.sim group in
  let msg = request group id in
  let req =
    {
      Netsim.Network.src = Rrmp.Member.node server;
      dst = Rrmp.Member.node server;
      msg;
      sent_at = Engine.Sim.now sim;
      cls = Rrmp.Wire.cls msg;
    }
  in
  let step () =
    Rrmp.Member.inject_delivery server req;
    Engine.Sim.run ~until:(Engine.Sim.now sim +. 60.0) sim
  in
  step ();
  step ();
  measure ~name ~what ~budget ~exact:false ~ops (fun () ->
      for _ = 1 to ops do
        step ()
      done)

let non_sender group members =
  let sender = Rrmp.Group.sender group in
  List.find (fun m -> m != sender) members

let run_local_repair ~ops =
  run_repair ~name:"alloc/local-repair"
    ~what:"serve a buffered payload to a regional requester (record path)" ~budget:48.0
    ~topology:(Topology.single_region ~size:8)
    ~request:(fun _group id -> Rrmp.Wire.Local_request id)
    ~server_of:(fun group -> non_sender group (Rrmp.Group.members group))
    ~ops

let run_remote_repair ~ops =
  run_repair ~name:"alloc/remote-repair"
    ~what:"serve a buffered payload to a remote region's requester (record path)" ~budget:64.0
    ~topology:(Topology.chain ~sizes:[ 4; 4 ])
    ~request:(fun group id ->
      let regions = Topology.regions (Rrmp.Group.topology group) in
      let far = List.nth regions 1 in
      let requester = List.hd (Rrmp.Group.members_of_region group far) in
      Rrmp.Wire.Remote_request { id; origin = Rrmp.Member.node requester })
    ~server_of:(fun group ->
      let regions = Topology.regions (Rrmp.Group.topology group) in
      non_sender group (Rrmp.Group.members_of_region group (List.hd regions)))
    ~ops

(* Codec gates: the per-datagram cost of the real-traffic backend.
   Encode writes an interned 1 KiB Data frame into a preallocated
   buffer; decode revalidates those bytes through a pooled decoder via
   [Codec.read] — the status is a constant constructor and no [Wire.t]
   is materialized, exactly what [Udp_loopback.drain] does before
   deciding whether to hand a frame up. Both are ≤1.0-words/op gates
   (the codec stages nothing per op, but the bound leaves headroom for
   probe jitter rather than demanding exact zero on a path that
   crosses a Bigarray boundary). *)

let codec_frame () =
  let id = Protocol.Msg_id.make ~source:(Node_id.of_int 3) ~seq:17 in
  let msg = Rrmp.Wire.Data (Rrmp.Payload.make ~size:1024 id) in
  let size = Rrmp.Codec.encoded_size msg in
  let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout size in
  ignore (Rrmp.Codec.encode buf ~off:0 msg : int);
  (msg, buf, size)

let run_codec_encode ~ops =
  let msg, buf, _ = codec_frame () in
  measure ~name:"alloc/codec-encode"
    ~what:"encode a 1 KiB Data frame into a preallocated wire buffer" ~budget:1.0 ~exact:false
    ~ops (fun () ->
      for _ = 1 to ops do
        ignore (Rrmp.Codec.encode buf ~off:0 msg : int)
      done)

let run_codec_decode ~ops =
  let _, buf, size = codec_frame () in
  let dec = Rrmp.Codec.create_decoder () in
  measure ~name:"alloc/codec-decode"
    ~what:"validate a 1 KiB Data frame through a pooled decoder (read, no materialization)"
    ~budget:1.0 ~exact:false ~ops (fun () ->
      for _ = 1 to ops do
        match Rrmp.Codec.read dec buf ~off:0 ~len:size with
        | Rrmp.Codec.Ok_frame -> ()
        | Rrmp.Codec.Err _ -> assert false
      done)

let run ?(quick = false) () =
  let d = if quick then 2 else 1 in
  [
    run_deliver ~n:(64 / d) ~k:128;
    run_gap_note ~n:(64 / d) ~k:128;
    run_local_repair ~ops:(512 / d);
    run_remote_repair ~ops:(256 / d);
    run_regional_fanout ~regions:4 ~per_region:256 ~batches:(8 / d);
    run_deadline_touch ~n:(64 / d) ~k:64 ~rounds:4;
    run_codec_encode ~ops:(100_000 / d);
    run_codec_decode ~ops:(100_000 / d);
  ]

let failures results =
  List.filter_map
    (fun r ->
      if r.exact && r.minor_words_per_op <> 0.0 then
        Some
          (Printf.sprintf "%s: %.3f minor words/op but the gate requires exactly 0.0" r.name
             r.minor_words_per_op)
      else if r.minor_words_per_op > r.budget then
        Some
          (Printf.sprintf "%s: %.3f minor words/op exceeds the %.1f budget" r.name
             r.minor_words_per_op r.budget)
      else None)
    results

let pp_result fmt r =
  Format.fprintf fmt "%-24s %9d ops  %8.3f words/op  (budget %5.1f%s)  %8.1f ns/op" r.name r.ops
    r.minor_words_per_op r.budget
    (if r.exact then ", exact" else "")
    r.ns_per_op
