type entry = {
  id : string;
  description : string;
  paper_ref : string;
  run : quick:bool -> Report.t;
}

let all =
  [
    {
      id = "fig3";
      description = "P(k long-term bufferers): Poisson analytic vs simulated coin flips";
      paper_ref = "Figure 3";
      run =
        (fun ~quick ->
          if quick then Fig3.run ~mc_trials:2_000 () else Fig3.run ());
    };
    {
      id = "fig4";
      description = "P(no long-term bufferer) vs C: e^-C vs coin-flip and protocol MC";
      paper_ref = "Figure 4";
      run =
        (fun ~quick ->
          if quick then Fig4.run ~mc_trials:10_000 ~protocol_trials:50 ()
          else Fig4.run ());
    };
    {
      id = "fig6";
      description = "Average short-term buffering time vs #initial holders";
      paper_ref = "Figure 6";
      run = (fun ~quick -> if quick then Fig6.run ~trials:5 () else Fig6.run ());
    };
    {
      id = "fig7";
      description = "#received vs #buffered over time, 1 initial holder";
      paper_ref = "Figure 7";
      run = (fun ~quick -> ignore quick; Fig7.run ());
    };
    {
      id = "fig8";
      description = "Search time vs #bufferers";
      paper_ref = "Figure 8";
      run = (fun ~quick -> if quick then Fig8.run ~trials:20 () else Fig8.run ());
    };
    {
      id = "fig9";
      description = "Search time vs region size (10 bufferers)";
      paper_ref = "Figure 9";
      run =
        (fun ~quick ->
          if quick then
            Fig9.run ~trials:10 ~region_sizes:[ 100; 200; 400; 700; 1000 ] ()
          else Fig9.run ());
    };
    {
      id = "ext_overhead";
      description = "Buffer-space overhead: two-phase vs fixed-time vs stability vs buffer-all";
      paper_ref = "extension (Section 1 motivation)";
      run = (fun ~quick -> if quick then Ext_overhead.run ~trials:2 () else Ext_overhead.run ());
    };
    {
      id = "ext_traffic";
      description = "Control traffic: feedback-based idle detection vs history exchange";
      paper_ref = "extension (Section 3.1 claim)";
      run =
        (fun ~quick ->
          if quick then Ext_traffic.run ~region_sizes:[ 20; 50; 100 ] ()
          else Ext_traffic.run ());
    };
    {
      id = "ext_latency_vs_c";
      description = "Downstream recovery latency vs C (buffer/latency trade-off)";
      paper_ref = "extension (Section 3.2 trade-off)";
      run =
        (fun ~quick ->
          if quick then Ext_latency_vs_c.run ~trials:4 () else Ext_latency_vs_c.run ());
    };
    {
      id = "ext_load_balance";
      description = "Distribution of the buffering burden: RRMP vs tree repair server";
      paper_ref = "extension (Section 6 claim)";
      run =
        (fun ~quick ->
          if quick then Ext_load_balance.run ~trials:2 () else Ext_load_balance.run ());
    };
    {
      id = "ext_reliability";
      description = "Reliability-violation probability for a late detector vs C";
      paper_ref = "extension (Section 5)";
      run =
        (fun ~quick ->
          if quick then Ext_reliability.run ~trials:40 () else Ext_reliability.run ());
    };
    {
      id = "ext_churn";
      description = "Long-term buffer survival under churn: handoff vs crash";
      paper_ref = "extension (Section 3.2 handoff)";
      run = (fun ~quick -> if quick then Ext_churn.run ~trials:25 () else Ext_churn.run ());
    };
    {
      id = "ext_search_vs_backoff";
      description = "Multicast query + backoff replies vs random search";
      paper_ref = "extension (Section 3.3 motivation)";
      run =
        (fun ~quick ->
          if quick then Ext_search_vs_backoff.run ~trials:10 ()
          else Ext_search_vs_backoff.run ());
    };
    {
      id = "ext_lambda";
      description = "Remote-request fan-out lambda: latency vs duplicate traffic";
      paper_ref = "extension (Section 2.2)";
      run = (fun ~quick -> if quick then Ext_lambda.run ~trials:8 () else Ext_lambda.run ());
    };
    {
      id = "ext_protocols";
      description = "RRMP vs SRM vs pbcast vs tree-RMTP on one lossy workload";
      paper_ref = "extension (Section 1 survey)";
      run =
        (fun ~quick ->
          if quick then Ext_protocols.run ~trials:1 () else Ext_protocols.run ());
    };
    {
      id = "ext_model";
      description = "Analytical search model vs simulated search time";
      paper_ref = "extension (Section 3.3 analysis)";
      run =
        (fun ~quick ->
          if quick then Ext_model.run ~trials:15 () else Ext_model.run ());
    };
    {
      id = "ext_implosion";
      description = "Message implosion under bandwidth limits: server-based vs distributed repair";
      paper_ref = "extension (Section 1 motivation)";
      run =
        (fun ~quick ->
          if quick then Ext_implosion.run ~trials:2 () else Ext_implosion.run ());
    };
    {
      id = "ext_adaptive";
      description = "Fixed vs adaptive idle threshold under mis-estimated RTT";
      paper_ref = "extension (Section 3.1 'choice of T')";
      run =
        (fun ~quick ->
          if quick then Ext_adaptive.run ~trials:3 () else Ext_adaptive.run ());
    };
    {
      id = "ext_selection";
      description = "Randomized vs hashed long-term bufferer selection";
      paper_ref = "extension (Section 3.4)";
      run =
        (fun ~quick ->
          if quick then Ext_selection.run ~trials:20 () else Ext_selection.run ());
    };
    {
      id = "ext_scale";
      description = "Large-group scale-out: region sweep at fixed per-member load (deadline rings)";
      paper_ref = "extension (Section 1 'scalability' motivation)";
      run =
        (fun ~quick ->
          if quick then
            Ext_scale.run ~sizes:[ 256; 512; 1024 ] ~msgs:16 ~burst:4 ~trials:1 ()
          else Ext_scale.run ());
    };
    {
      id = "ext_scale_sharded";
      description =
        "Region-sharded scale-out: SoA member state over conservative-time shards, 10^5 members";
      paper_ref = "extension (Section 6 scalability)";
      run =
        (fun ~quick ->
          if quick then
            Ext_scale.run_sharded ~cells:[ (4, 64); (8, 128) ] ~msgs:12 ~burst:4 ()
          else Ext_scale.run_sharded ());
    };
    {
      id = "ext_scale_1m";
      description =
        "Million-member scale path: one per-shard event spine, 1024 x 1024 members";
      paper_ref = "extension (Section 6 scalability)";
      run =
        (fun ~quick ->
          if quick then Ext_scale.run_1m ~cells:[ (8, 32) ] ~msgs:8 ~burst:4 ()
          else Ext_scale.run_1m ());
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
