module Msg_id = Protocol.Msg_id
module Network = Netsim.Network

(* One trial of the paper's search experiment: a two-region chain
   whose downstream region holds only the requesting receiver. Region
   0 has [region] members, all of which received and discarded the
   message except [bufferers] random long-term bufferers. The remote
   request is injected towards a random region-0 member; we clock the
   search from its arrival to the first Search_satisfied. *)
let search_time ~region ~bufferers ~seed =
  let topology = Topology.chain ~sizes:[ region; 1 ] in
  let satisfied_at = ref None in
  let observer ~time ~self:_ event =
    match event with
    | Rrmp.Events.Search_satisfied _ when !satisfied_at = None -> satisfied_at := Some time
    | _ -> ()
  in
  let group = Rrmp.Group.create ~seed ~observer ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0xF16) in
  let id = Msg_id.make ~source:(Node_id.of_int 0) ~seq:0 in
  let payload = Rrmp.Payload.make id in
  let region0 = Topology.members topology (Region_id.of_int 0) in
  let chosen = Engine.Rng.sample_without_replacement rng bufferers region0 in
  Array.iter
    (fun node ->
      let m = Rrmp.Group.member group node in
      if Array.exists (Node_id.equal node) chosen then
        Rrmp.Member.force_buffer m ~phase:Rrmp.Buffer.Long_term payload
      else Rrmp.Member.force_received m id)
    region0;
  let origin = Node_id.of_int region in
  let target = Engine.Rng.pick rng region0 in
  (* clock starts when the remote request reaches the target *)
  let arrived_at = ref None in
  let net = Rrmp.Group.net group in
  Network.set_delivery_hook net
    (Some
       (fun d ->
         match d.Network.msg with
         | Rrmp.Wire.Remote_request _ when !arrived_at = None ->
           arrived_at := Some (Engine.Sim.now (Rrmp.Group.sim group))
         | _ -> ()));
  Network.unicast net ~cls:"remote-req" ~src:origin ~dst:target
    (Rrmp.Wire.Remote_request { id; origin });
  Rrmp.Group.run ~until:100_000.0 group;
  match (!arrived_at, !satisfied_at) with
  | Some arrival, Some found -> found -. arrival
  | Some _, None -> invalid_arg "fig8: search never found a bufferer"
  | None, _ -> invalid_arg "fig8: remote request never delivered"

let table ~id ~title ~points ~column ~trials ~seed ~measure ~notes =
  let rows =
    List.map
      (fun x ->
        let summary =
          Runner.par_mean_over_seeds ~trials ~base_seed:(seed + (x * 10_000)) (fun ~seed ->
              measure x ~seed)
        in
        [
          Report.cell_i x;
          Report.cell_f (Stats.Summary.mean summary);
          Report.cell_f (Stats.Summary.stddev summary);
          Report.cell_f (Stats.Summary.ci95_halfwidth summary);
        ])
      points
  in
  Report.make ~id ~title
    ~columns:[ column; "search time (ms)"; "stddev"; "ci95" ]
    ~notes rows

let run ?(bufferer_counts = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]) ?(region = 100) ?(trials = 100)
    ?(seed = 1) () =
  table ~id:"fig8" ~title:"Search time vs number of bufferers" ~points:bufferer_counts
    ~column:"#bufferers" ~trials ~seed
    ~measure:(fun bufferers ~seed -> search_time ~region ~bufferers ~seed)
    ~notes:
      [
        Printf.sprintf "region of %d members, RTT 10 ms, %d trials per point" region trials;
        "expected shape: decreasing; ~2 RTT at 10 bufferers; 0 whenever the request \
         lands on a bufferer";
      ]
