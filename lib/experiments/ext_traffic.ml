module Network = Netsim.Network

let control_packets ~policy ~region ~messages ~spacing ~horizon ~seed =
  let topology = Topology.single_region ~size:region in
  let config = { Rrmp.Config.default with Rrmp.Config.buffering = policy } in
  let group = Rrmp.Group.create ~seed ~config ~topology () in
  let sim = Rrmp.Group.sim group in
  for i = 0 to messages - 1 do
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int i *. spacing) (fun () ->
           ignore (Rrmp.Group.multicast group ())))
  done;
  Rrmp.Group.run ~until:horizon group;
  let net = Rrmp.Group.net group in
  List.fold_left
    (fun acc cls -> if cls = "data" then acc else acc + (Network.stats net ~cls).Network.sent)
    0 (Network.classes net)

let run ?(region_sizes = [ 20; 50; 100; 200 ]) ?(messages = 20) ?(spacing = 20.0)
    ?(horizon = 2_000.0) ?(seed = 1) () =
  (* no inner trial loop here — the region-size sweep itself is the
     independent unit of work, so it fans out instead *)
  let rows =
    Runner.par_map_list region_sizes (fun region ->
        let two_phase =
          control_packets ~policy:Rrmp.Config.Two_phase ~region ~messages ~spacing
            ~horizon ~seed
        in
        let stability =
          control_packets
            ~policy:
              (Rrmp.Config.Stability { exchange_interval = 50.0; hold_after_stable = 0.0 })
            ~region ~messages ~spacing ~horizon ~seed
        in
        let per_msg v = float_of_int v /. float_of_int messages in
        [
          Report.cell_i region;
          Report.cell_i two_phase;
          Report.cell_i stability;
          Report.cell_f (per_msg two_phase);
          Report.cell_f (per_msg stability);
        ])
  in
  Report.make ~id:"ext_traffic"
    ~title:"Control traffic: feedback-based vs stability detection (lossless stream)"
    ~columns:
      [
        "region size";
        "two-phase ctrl pkts";
        "stability ctrl pkts";
        "two-phase pkts/msg";
        "stability pkts/msg";
      ]
    ~notes:
      [
        Printf.sprintf "%d lossless messages over %.0f ms; history exchanged every 50 ms"
          messages (float_of_int messages *. spacing);
        "expected: two-phase sends ~0 control packets without loss; stability's history \
         traffic grows with region size and session duration";
      ]
    rows
