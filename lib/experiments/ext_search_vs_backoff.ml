module Network = Netsim.Network

(* random-search cost for one trial: unicast probes sent until a
   bufferer is found (the paper's mechanism), via the Figure 8 rig *)
let search_cost ~region ~bufferers ~seed =
  let topology = Topology.chain ~sizes:[ region; 1 ] in
  let group = Rrmp.Group.create ~seed ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0xF16) in
  let id = Protocol.Msg_id.make ~source:(Node_id.of_int 0) ~seq:0 in
  let payload = Rrmp.Payload.make id in
  let region0 = Topology.members topology (Region_id.of_int 0) in
  let chosen = Engine.Rng.sample_without_replacement rng bufferers region0 in
  Array.iter
    (fun node ->
      let m = Rrmp.Group.member group node in
      if Array.exists (Node_id.equal node) chosen then
        Rrmp.Member.force_buffer m ~phase:Rrmp.Buffer.Long_term payload
      else Rrmp.Member.force_received m id)
    region0;
  let origin = Node_id.of_int region in
  let target = Engine.Rng.pick rng region0 in
  Network.unicast (Rrmp.Group.net group) ~cls:"remote-req" ~src:origin ~dst:target
    (Rrmp.Wire.Remote_request { id; origin });
  Rrmp.Group.run ~until:100_000.0 group;
  let net = Rrmp.Group.net group in
  (Network.stats net ~cls:"search").Network.sent

let run ?(bufferer_counts = [ 6; 12; 25; 50 ]) ?(region = 100) ?(c = 6.0) ?(trials = 50)
    ?(seed = 1) () =
  (* the rejected design sizes its back-off window for C bufferers:
     window = C slots of one one-way delay *)
  let backoff_window = c *. 5.0 in
  let rows =
    List.map
      (fun bufferers ->
        let outcomes =
          Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
              let outcome =
                Baselines.Query_flood.run_once ~region ~bufferers ~backoff_window ~seed ()
              in
              ( outcome.Baselines.Query_flood.replies,
                outcome.Baselines.Query_flood.first_reply_at,
                search_cost ~region ~bufferers ~seed ))
        in
        let replies = Stats.Summary.create () in
        let reply_latency = Stats.Summary.create () in
        let probes = Stats.Summary.create () in
        Array.iter
          (fun (reply_count, first_reply_at, probe_count) ->
            Stats.Summary.add replies (float_of_int reply_count);
            Stats.Summary.add reply_latency first_reply_at;
            Stats.Summary.add probes (float_of_int probe_count))
          outcomes;
        [
          Report.cell_i bufferers;
          Report.cell_f (Stats.Summary.mean replies);
          Report.cell_f (Stats.Summary.max replies);
          Report.cell_f (Stats.Summary.mean reply_latency);
          Report.cell_f (Stats.Summary.mean probes);
        ])
      bufferer_counts
  in
  Report.make ~id:"ext_search_vs_backoff"
    ~title:"Locating a bufferer: multicast query + backoff vs random search"
    ~columns:
      [
        "#bufferers";
        "backoff replies (mean)";
        "backoff replies (max)";
        "backoff latency (ms)";
        "search probes (mean)";
      ]
    ~notes:
      [
        Printf.sprintf
          "region %d; back-off window sized for C=%.0f (%.0f ms); %d trials per point"
          region c backoff_window trials;
        "expected: as the true bufferer count exceeds C the back-off scheme sends storms \
         of duplicate reply multicasts (each a region-wide multicast!), while the random \
         search's unicast probe count stays flat or falls";
      ]
    rows
