module Network = Netsim.Network

type measurement = {
  occupancy_per_member : float;  (* msg·ms *)
  peak_buffer : int;  (* messages, max over members *)
  control_packets : int;
  completeness : float;  (* fraction of (msg, member) delivered *)
}

(* the two-phase row uses a finite long-term lifetime so that its
   occupancy integral is comparable with the discarding baselines (the
   paper: "eventually even a long-term bufferer may decide to discard
   an idle message") *)
let policies =
  [
    ("two-phase (lt 500ms)", Rrmp.Config.Two_phase, Some 500.0);
    ("fixed-time 200ms", Rrmp.Config.Fixed_time 200.0, None);
    ( "stability 50ms",
      Rrmp.Config.Stability { exchange_interval = 50.0; hold_after_stable = 0.0 },
      None );
    ("buffer-all", Rrmp.Config.Buffer_all, None);
  ]

let one_run ~policy ~lifetime ~region ~messages ~spacing ~reach_prob ~horizon ~seed =
  let topology = Topology.single_region ~size:region in
  let config =
    { Rrmp.Config.default with
      Rrmp.Config.buffering = policy;
      Rrmp.Config.long_term_lifetime = lifetime;
    }
  in
  let group = Rrmp.Group.create ~seed ~config ~topology () in
  let workload_rng = Engine.Rng.create ~seed:(seed lxor 0xBEEF) in
  let sim = Rrmp.Group.sim group in
  let ids = ref [] in
  for i = 0 to messages - 1 do
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int i *. spacing) (fun () ->
           let id =
             Rrmp.Group.multicast_reaching group
               ~reach:(fun _ -> Engine.Rng.bernoulli workload_rng ~p:reach_prob)
               ()
           in
           ids := id :: !ids))
  done;
  Rrmp.Group.run ~until:horizon group;
  let members = Rrmp.Group.members group in
  let occupancy =
    List.fold_left
      (fun acc m -> acc +. Rrmp.Buffer.occupancy_msg_ms (Rrmp.Member.buffer m))
      0.0 members
    /. float_of_int (List.length members)
  in
  let peak =
    List.fold_left (fun acc m -> max acc (Rrmp.Buffer.peak_size (Rrmp.Member.buffer m))) 0 members
  in
  let net = Rrmp.Group.net group in
  let control =
    List.fold_left
      (fun acc cls -> if cls = "data" then acc else acc + (Network.stats net ~cls).Network.sent)
      0 (Network.classes net)
  in
  let total_pairs = messages * region in
  let delivered =
    List.fold_left (fun acc id -> acc + Rrmp.Group.count_received group id) 0 !ids
  in
  {
    occupancy_per_member = occupancy;
    peak_buffer = peak;
    control_packets = control;
    completeness = float_of_int delivered /. float_of_int total_pairs;
  }

let run ?(region = 60) ?(messages = 30) ?(spacing = 20.0) ?(reach_prob = 0.9)
    ?(horizon = 5_000.0) ?(trials = 5) ?(seed = 1) () =
  let rows =
    List.map
      (fun (name, policy, lifetime) ->
        let measurements =
          Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
              one_run ~policy ~lifetime ~region ~messages ~spacing ~reach_prob ~horizon
                ~seed)
        in
        let occ = Stats.Summary.create () in
        let peak = Stats.Summary.create () in
        let control = Stats.Summary.create () in
        let compl_ = Stats.Summary.create () in
        Array.iter
          (fun m ->
            Stats.Summary.add occ m.occupancy_per_member;
            Stats.Summary.add peak (float_of_int m.peak_buffer);
            Stats.Summary.add control (float_of_int m.control_packets);
            Stats.Summary.add compl_ m.completeness)
          measurements;
        [
          name;
          Report.cell_f (Stats.Summary.mean occ);
          Report.cell_f (Stats.Summary.mean peak);
          Report.cell_f (Stats.Summary.mean control);
          Report.cell_pct (Stats.Summary.mean compl_);
        ])
      policies
  in
  Report.make ~id:"ext_overhead"
    ~title:"Buffer-space and traffic overhead per buffering policy"
    ~columns:
      [ "policy"; "buffer msg-ms/member"; "peak buffer (msgs)"; "control packets"; "delivered %" ]
    ~notes:
      [
        Printf.sprintf
          "%d messages (one per %.0f ms) into a %d-member region; initial multicast \
           reaches each receiver with p=%.2f; recovery traffic lossless; %d trials"
          messages spacing region reach_prob trials;
        "expected: two-phase ~ fixed-time << buffer-all in buffer cost; stability adds \
         history traffic; all policies deliver everywhere";
      ]
    rows
