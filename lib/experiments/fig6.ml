module Msg_id = Protocol.Msg_id

(* Build the paper's workload: [holders] random members hold the
   message at t = 0 (short-term buffered); every other member detects
   the loss at t = 0 and starts recovery. Returns the group, the
   message id and the holder set. *)
let setup ~holders ~region ~seed ~observer =
  let topology = Topology.single_region ~size:region in
  let group = Rrmp.Group.create ~seed ~observer ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0x5EED) in
  let id = Msg_id.make ~source:(Node_id.of_int 0) ~seq:0 in
  let payload = Rrmp.Payload.make id in
  let all = Topology.members topology (Region_id.of_int 0) in
  let holder_set = Engine.Rng.sample_without_replacement rng holders all in
  let is_holder node = Array.exists (Node_id.equal node) holder_set in
  List.iter
    (fun m ->
      let node = Rrmp.Member.node m in
      if is_holder node then Rrmp.Member.force_buffer m ~phase:Rrmp.Buffer.Short_term payload
      else Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members group);
  (group, id, holder_set)

let average_holder_buffering_time ~holders ~region ~seed =
  let durations = ref [] in
  let holder_set = ref [||] in
  let observer ~time ~self event =
    ignore time;
    match event with
    | Rrmp.Events.Became_idle { buffered_for; _ }
      when Array.exists (Node_id.equal self) !holder_set ->
      durations := buffered_for :: !durations
    | _ -> ()
  in
  let group, _id, chosen = setup ~holders ~region ~seed ~observer in
  holder_set := chosen;
  Rrmp.Group.run ~until:100_000.0 group;
  match !durations with
  | [] -> invalid_arg "fig6: no holder ever became idle"
  | ds -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)

let run ?(holder_counts = [ 1; 2; 4; 8; 16; 32; 64 ]) ?(region = 100) ?(trials = 30)
    ?(seed = 1) () =
  let rows =
    List.map
      (fun holders ->
        let summary =
          Runner.par_mean_over_seeds ~trials ~base_seed:(seed + (holders * 1000))
            (fun ~seed -> average_holder_buffering_time ~holders ~region ~seed)
        in
        [
          Report.cell_i holders;
          Report.cell_f (Stats.Summary.mean summary);
          Report.cell_f (Stats.Summary.stddev summary);
          Report.cell_f (Stats.Summary.ci95_halfwidth summary);
        ])
      holder_counts
  in
  Report.make ~id:"fig6" ~title:"Average short-term buffering time vs initial holders"
    ~columns:[ "#holders"; "avg buffering time (ms)"; "stddev"; "ci95"; ]
    ~notes:
      [
        Printf.sprintf "region of %d members, RTT 10 ms, T = 40 ms, %d trials per point"
          region trials;
        "expected shape (paper, log-scale y): monotone decrease from ~105 ms at 1 holder \
         towards ~T as the initial multicast reaches more members";
      ]
    rows
