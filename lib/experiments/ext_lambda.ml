module Network = Netsim.Network

let one_trial ~lambda ~upstream ~downstream ~seed =
  let topology = Topology.chain ~sizes:[ upstream; downstream ] in
  let latencies = Stats.Summary.create () in
  let observer ~time:_ ~self:_ event =
    match event with
    | Rrmp.Events.Recovered { latency; _ } -> Stats.Summary.add latencies latency
    | _ -> ()
  in
  let config = { Rrmp.Config.default with Rrmp.Config.lambda } in
  let group = Rrmp.Group.create ~seed ~config ~observer ~topology () in
  let id =
    Rrmp.Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < upstream) ()
  in
  List.iter
    (fun m -> Rrmp.Member.inject_loss m id)
    (Rrmp.Group.members_of_region group (Region_id.of_int 1));
  Rrmp.Group.run ~until:60_000.0 group;
  let net = Rrmp.Group.net group in
  let recovered = Rrmp.Group.received_by_all group id in
  ( recovered,
    Stats.Summary.mean latencies,
    (Network.stats net ~cls:"remote-req").Network.sent,
    (Network.stats net ~cls:"regional-repair").Network.sent )

let run ?(lambdas = [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]) ?(upstream = 50) ?(downstream = 50)
    ?(trials = 30) ?(seed = 1) () =
  let rows =
    List.map
      (fun lambda ->
        let outcomes =
          Runner.par_map_trials ~trials
            ~base_seed:(seed + int_of_float (lambda *. 131_071.0))
            (fun ~seed -> one_trial ~lambda ~upstream ~downstream ~seed)
        in
        let latency = Stats.Summary.create () in
        let remote = Stats.Summary.create () in
        let regional = Stats.Summary.create () in
        let unrecoverable = ref 0 in
        Array.iter
          (fun (recovered, mean_latency, remote_sent, regional_sent) ->
            (* a run where the upstream region kept zero long-term
               bufferers (probability ~e^-C) is unrecoverable — the
               Section 5 limitation; report it separately so it does not
               pollute the traffic/latency means *)
            if recovered then begin
              Stats.Summary.add latency mean_latency;
              Stats.Summary.add remote (float_of_int remote_sent);
              Stats.Summary.add regional (float_of_int regional_sent)
            end
            else incr unrecoverable)
          outcomes;
        [
          Printf.sprintf "%.2f" lambda;
          Report.cell_f (Stats.Summary.mean latency);
          Report.cell_f (Stats.Summary.mean remote);
          Report.cell_f (Stats.Summary.mean regional);
          Report.cell_i !unrecoverable;
        ])
      lambdas
  in
  Report.make ~id:"ext_lambda"
    ~title:"Remote-request fan-out: recovery latency vs duplicate traffic"
    ~columns:
      [
        "lambda";
        "mean recovery latency (ms)";
        "remote requests";
        "regional repair pkts";
        "unrecoverable runs";
      ]
    ~notes:
      [
        Printf.sprintf
          "two regions (%d upstream, %d downstream); the downstream region misses the \
           message entirely; %d trials per lambda"
          upstream downstream trials;
        "expected: latency falls as lambda grows while duplicate remote requests and \
         regional repair multicasts rise — the Section 2.2 trade-off; the occasional \
         unrecoverable run is the Section 5 limitation (no long-term bufferer survived \
         upstream, probability ~e^-C per run)";
      ]
    rows
