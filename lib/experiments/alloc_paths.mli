(** Per-path allocation gates: the zero-allocation steady state made
    enforceable.

    Each gate drives one named hot path in isolation — SoA delivery
    bookkeeping, gap detection from a session advertisement, a served
    local repair, a served remote repair, the sharded regional-repair
    fan-out, a deadline touch, and the wire codec's encode and decode
    (the per-datagram cost of the real-traffic backend) — and charges
    the minor-heap words
    the OCaml runtime allocated against a per-path budget. The budgets
    are the single source of truth: [bench --alloc-gates] reports them
    into [BENCH_alloc.json] and the [rrmp.allocation_gates] test suite
    asserts them on every [dune runtest], so an accidental closure or
    [Some] box on a hot path fails the build instead of shifting a
    trajectory number.

    Paths marked {e exact} must allocate {b nothing} — 0.0 words/op
    after subtracting the constant cost of the two [Gc.minor_words]
    probe calls themselves. *)

type result = {
  name : string;  (** gate name, e.g. ["alloc/deliver"] *)
  what : string;  (** one-line description of the driven path *)
  ops : int;  (** operations inside the measured window *)
  minor_words_per_op : float;
      (** minor-heap words per op, probe overhead subtracted, clamped
          at 0 *)
  ns_per_op : float;  (** CPU time per op (coarse; words are the gate) *)
  budget : float;  (** maximum admissible words/op *)
  exact : bool;  (** gate additionally requires exactly 0.0 *)
}

val run : ?quick:bool -> unit -> result list
(** Drive every gate and return one result per path, in a fixed order.
    [quick] (default [false]) shrinks the op counts for smoke runs;
    budgets are identical in both modes. *)

val failures : result list -> string list
(** Human-readable violation messages — empty when every gate holds. *)

val pp_result : Format.formatter -> result -> unit
