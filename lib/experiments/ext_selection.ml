module Network = Netsim.Network
module Msg_id = Protocol.Msg_id

(* One trial on the Figure 8 rig, but the bufferer set and the search
   policy follow the configured selection mode. Returns (search time,
   probes sent, found). *)
let one_trial ~selection ~region ~c ~seed =
  let topology = Topology.chain ~sizes:[ region; 1 ] in
  let satisfied_at = ref None in
  let observer ~time ~self:_ event =
    match event with
    | Rrmp.Events.Search_satisfied _ when !satisfied_at = None -> satisfied_at := Some time
    | _ -> ()
  in
  let config =
    { Rrmp.Config.default with
      Rrmp.Config.selection;
      Rrmp.Config.expected_bufferers = c;
      Rrmp.Config.max_recovery_tries = Some 500;
    }
  in
  let group = Rrmp.Group.create ~seed ~config ~observer ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0x5E1) in
  let id = Msg_id.make ~source:(Node_id.of_int 0) ~seq:0 in
  let payload = Rrmp.Payload.make id in
  let region0 = Topology.members (Rrmp.Group.topology group) (Region_id.of_int 0) in
  (* the bufferer set must match what the selection mode implies *)
  let is_bufferer =
    match selection with
    | Rrmp.Config.Hashed ->
      fun node -> Rrmp.Long_term.hashed_decide ~node ~id ~c ~n:region
    | Rrmp.Config.Randomized ->
      let coin_rng = Engine.Rng.create ~seed:(seed lxor 0xC01) in
      let chosen =
        Array.to_list region0
        |> List.filter (fun _ -> Engine.Rng.bernoulli coin_rng ~p:(c /. float_of_int region))
      in
      fun node -> List.exists (Node_id.equal node) chosen
  in
  let bufferers = Array.to_seq region0 |> Seq.filter is_bufferer |> Array.of_seq in
  Array.iter
    (fun node ->
      let m = Rrmp.Group.member group node in
      if is_bufferer node then Rrmp.Member.force_buffer m ~phase:Rrmp.Buffer.Long_term payload
      else Rrmp.Member.force_received m id)
    region0;
  if Array.length bufferers = 0 then None
  else begin
    let origin = Node_id.of_int region in
    let target = Engine.Rng.pick rng region0 in
    let arrived_at = ref None in
    let net = Rrmp.Group.net group in
    Network.set_delivery_hook net
      (Some
         (fun d ->
           match d.Network.msg with
           | Rrmp.Wire.Remote_request _ when !arrived_at = None ->
             arrived_at := Some (Engine.Sim.now (Rrmp.Group.sim group))
           | _ -> ()));
    Network.unicast net ~cls:"remote-req" ~src:origin ~dst:target
      (Rrmp.Wire.Remote_request { id; origin });
    Rrmp.Group.run ~until:100_000.0 group;
    match (!arrived_at, !satisfied_at) with
    | Some arrival, Some found ->
      Some (found -. arrival, (Network.stats net ~cls:"search").Network.sent)
    | _ -> None
  end

let summarize ~selection ~region ~c ~trials ~seed =
  let outcomes =
    Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
        one_trial ~selection ~region ~c ~seed)
  in
  let time = Stats.Summary.create () in
  let probes = Stats.Summary.create () in
  let skipped = ref 0 in
  Array.iter
    (function
      | Some (t, p) ->
        Stats.Summary.add time t;
        Stats.Summary.add probes (float_of_int p)
      | None -> incr skipped)
    outcomes;
  (time, probes, !skipped)

let run ?(region = 100) ?(c = 6.0) ?(trials = 100) ?(seed = 1) () =
  let rows =
    List.map
      (fun (name, selection) ->
        let time, probes, skipped = summarize ~selection ~region ~c ~trials ~seed in
        [
          name;
          Report.cell_f (Stats.Summary.mean time);
          Report.cell_f (Stats.Summary.mean probes);
          Report.cell_i skipped;
        ])
      [ ("randomized", Rrmp.Config.Randomized); ("hashed", Rrmp.Config.Hashed) ]
  in
  Report.make ~id:"ext_selection"
    ~title:"Locating a bufferer: randomized search vs deterministic hash (Section 3.4)"
    ~columns:[ "selection"; "location time (ms)"; "search probes"; "no-bufferer runs" ]
    ~notes:
      [
        Printf.sprintf "region %d, C=%.0f, %d trials" region c trials;
        "expected: the hash probes the computed bufferers directly (lower latency and \
         traffic); randomization pays the search but supports handoff on leave";
      ]
    rows
