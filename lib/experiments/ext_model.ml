let rtt = 10.0 (* paper setting: 10 ms intra-region round trip *)

let measure ~region ~bufferers ~trials ~seed =
  let summary =
    Runner.par_mean_over_seeds ~trials ~base_seed:seed (fun ~seed ->
        Fig8.search_time ~region ~bufferers ~seed)
  in
  Stats.Summary.mean summary

let run ?(bufferer_counts = [ 1; 2; 4; 6; 8; 10 ])
    ?(region_sizes = [ 100; 300; 600; 1000 ]) ?(trials = 60) ?(seed = 9) () =
  let sweep_bufferers =
    List.map
      (fun k ->
        [
          Printf.sprintf "n=100 k=%d" k;
          Report.cell_f (Rrmp.Model.expected_search_time ~n:100 ~k ~rtt);
          Report.cell_f (measure ~region:100 ~bufferers:k ~trials ~seed:(seed + (k * 131)));
        ])
      bufferer_counts
  in
  let sweep_sizes =
    List.map
      (fun n ->
        [
          Printf.sprintf "n=%d k=10" n;
          Report.cell_f (Rrmp.Model.expected_search_time ~n ~k:10 ~rtt);
          Report.cell_f (measure ~region:n ~bufferers:10 ~trials ~seed:(seed + (n * 7)));
        ])
      region_sizes
  in
  Report.make ~id:"ext_model"
    ~title:"Analytical search model vs simulation (Figures 8 & 9 sweeps)"
    ~columns:[ "point"; "model (ms)"; "simulated (ms)" ]
    ~notes:
      [
        Printf.sprintf "%d trials per simulated point; RTT %.0f ms" trials rtt;
        "model: Fibonacci probe-stream recurrence at one-way-delay steps (recruits \
         probe one hop after the probe that recruited them; probers retry every RTT), \
         capped at n - k; agreement within a few ms validates both sides";
      ]
    (sweep_bufferers @ sweep_sizes)
