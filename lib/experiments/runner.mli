(** Replication helpers shared by the experiment harnesses.

    The [par_*] variants run the independent seeded trials on the
    shared {!Engine.Pool} (sized by [-j] / [REPRO_JOBS], see
    {!Engine.Pool.default_workers}) and are the primitives every
    [fig*] / [ext_*] module routes its trial loop through.
    Determinism: trial [i] always runs with seed [base_seed + i] and
    owns all of its state, workers deposit results into a
    trial-indexed array, and aggregation folds that array sequentially
    in trial order — so the result is bit-identical to the sequential
    path no matter how trials were scheduled. With one worker (or one
    trial) the sequential code path runs unchanged. *)

val mean_over_seeds :
  trials:int -> base_seed:int -> (seed:int -> float) -> Stats.Summary.t
(** Run the measurement once per seed [base_seed + 0 .. trials-1] and
    summarize. *)

val collect_over_seeds :
  trials:int -> base_seed:int -> (seed:int -> float list) -> Stats.Summary.t
(** Like {!mean_over_seeds} for measurements that yield several samples
    per run. *)

val par_map_trials : trials:int -> base_seed:int -> (seed:int -> 'a) -> 'a array
(** [par_map_trials ~trials ~base_seed f] is
    [[| f ~seed:base_seed; ...; f ~seed:(base_seed + trials - 1) |]],
    computed in parallel on the shared pool. Index [i] of the result
    always holds trial [i]'s value. Empty when [trials <= 0]. *)

val par_mean_over_seeds :
  trials:int -> base_seed:int -> (seed:int -> float) -> Stats.Summary.t
(** {!mean_over_seeds}, trials in parallel, summary folded in trial
    order (bit-identical to the sequential version). *)

val par_collect_over_seeds :
  trials:int -> base_seed:int -> (seed:int -> float list) -> Stats.Summary.t
(** {!collect_over_seeds}, trials in parallel, samples folded in trial
    order (bit-identical to the sequential version). *)

val par_map_list : 'a list -> ('a -> 'b) -> 'b list
(** [List.map f items] with the items evaluated in parallel; the
    output preserves input order. For experiments whose outer sweep
    (not an inner trial loop) carries the work — each item must be
    self-contained. *)
