let gini values =
  let arr = Array.of_list values in
  let n = Array.length arr in
  if n = 0 then invalid_arg "gini: empty distribution";
  Array.sort Float.compare arr;
  let total = Array.fold_left ( +. ) 0.0 arr in
  if total <= 0.0 then 0.0
  else begin
    let weighted = ref 0.0 in
    Array.iteri (fun i v -> weighted := !weighted +. (float_of_int (i + 1) *. v)) arr;
    ((2.0 *. !weighted) /. (float_of_int n *. total)) -. (float_of_int (n + 1) /. float_of_int n)
  end

type spread = { max_share : float; gini_coeff : float; total : float }

let spread_of occupancies =
  let total = List.fold_left ( +. ) 0.0 occupancies in
  let max_v = List.fold_left Float.max 0.0 occupancies in
  {
    max_share = (if total > 0.0 then max_v /. total else 0.0);
    gini_coeff = gini occupancies;
    total;
  }

let schedule_stream ~sim ~send ~messages ~spacing =
  for i = 0 to messages - 1 do
    ignore (Engine.Sim.schedule_at sim ~at:(float_of_int i *. spacing) (fun () -> send ()))
  done

let rrmp_run ~region ~messages ~spacing ~reach_prob ~horizon ~seed =
  let topology = Topology.single_region ~size:region in
  let group = Rrmp.Group.create ~seed ~topology () in
  let workload_rng = Engine.Rng.create ~seed:(seed lxor 0xBEEF) in
  schedule_stream ~sim:(Rrmp.Group.sim group) ~messages ~spacing ~send:(fun () ->
      ignore
        (Rrmp.Group.multicast_reaching group
           ~reach:(fun _ -> Engine.Rng.bernoulli workload_rng ~p:reach_prob)
           ()));
  Rrmp.Group.run ~until:horizon group;
  spread_of
    (List.map
       (fun m -> Rrmp.Buffer.occupancy_msg_ms (Rrmp.Member.buffer m))
       (Rrmp.Group.members group))

let tree_run ~region ~messages ~spacing ~reach_prob ~horizon ~seed =
  let topology = Topology.single_region ~size:region in
  let tree = Baselines.Tree_rmtp.create ~seed ~topology () in
  let workload_rng = Engine.Rng.create ~seed:(seed lxor 0xBEEF) in
  schedule_stream ~sim:(Baselines.Tree_rmtp.sim tree) ~messages ~spacing ~send:(fun () ->
      ignore
        (Baselines.Tree_rmtp.multicast_reaching tree
           ~reach:(fun _ -> Engine.Rng.bernoulli workload_rng ~p:reach_prob)
           ()));
  Baselines.Tree_rmtp.run ~until:horizon tree;
  spread_of
    (List.map
       (fun node -> Rrmp.Buffer.occupancy_msg_ms (Baselines.Tree_rmtp.buffer_of tree node))
       (Baselines.Tree_rmtp.members tree))

let run ?(region = 50) ?(messages = 50) ?(spacing = 20.0) ?(reach_prob = 0.9)
    ?(horizon = 5_000.0) ?(trials = 5) ?(seed = 1) () =
  let summarize f =
    let spreads = Runner.par_map_trials ~trials ~base_seed:seed f in
    let max_share = Stats.Summary.create () in
    let g = Stats.Summary.create () in
    Array.iter
      (fun s ->
        Stats.Summary.add max_share s.max_share;
        Stats.Summary.add g s.gini_coeff)
      spreads;
    (Stats.Summary.mean max_share, Stats.Summary.mean g)
  in
  let rrmp_share, rrmp_gini =
    summarize (fun ~seed -> rrmp_run ~region ~messages ~spacing ~reach_prob ~horizon ~seed)
  in
  let tree_share, tree_gini =
    summarize (fun ~seed -> tree_run ~region ~messages ~spacing ~reach_prob ~horizon ~seed)
  in
  let fair = 1.0 /. float_of_int region in
  Report.make ~id:"ext_load_balance"
    ~title:"Distribution of the buffering burden: RRMP vs tree repair server"
    ~columns:[ "protocol"; "max member share"; "gini"; "perfectly-even share" ]
    ~notes:
      [
        Printf.sprintf
          "%d messages into a %d-member region, initial reach p=%.2f, %d trials; share = \
           member's fraction of the total buffer msg-ms integral"
          messages region reach_prob trials;
        "expected: the tree baseline concentrates ~100% of buffering on the repair \
         server; RRMP spreads it near-evenly";
      ]
    [
      [ "rrmp"; Report.cell_f rrmp_share; Report.cell_f rrmp_gini; Report.cell_f fair ];
      [ "tree-rmtp"; Report.cell_f tree_share; Report.cell_f tree_gini; Report.cell_f fair ];
    ]
