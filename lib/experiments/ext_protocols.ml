module Network = Netsim.Network
module Msg_id = Protocol.Msg_id

(* a protocol instance reduced to what the comparison needs *)
type adapter = {
  sim : Engine.Sim.t;
  send : unit -> Msg_id.t;
  count : Msg_id.t -> int;
  control_packets : unit -> int;
  occupancies : unit -> float list;  (* per-member buffer msg·ms *)
  quiesce : unit -> unit;  (* stop periodic machinery before measuring *)
}

let rrmp_adapter ~seed ~loss ~topology =
  let config =
    { Rrmp.Config.default with
      Rrmp.Config.session_interval = Some 50.0;
      (* finite long-term lifetime so the occupancy integral is
         comparable with the discarding baselines *)
      Rrmp.Config.long_term_lifetime = Some 500.0;
    }
  in
  let group = Rrmp.Group.create ~seed ~config ~loss ~topology () in
  {
    sim = Rrmp.Group.sim group;
    send = (fun () -> Rrmp.Group.multicast group ());
    count = (fun id -> Rrmp.Group.count_received group id);
    control_packets =
      (fun () ->
        let net = Rrmp.Group.net group in
        List.fold_left
          (fun acc cls ->
            if cls = "data" then acc else acc + (Network.stats net ~cls).Network.sent)
          0 (Network.classes net));
    occupancies =
      (fun () ->
        List.map
          (fun m -> Rrmp.Buffer.occupancy_msg_ms (Rrmp.Member.buffer m))
          (Rrmp.Group.members group));
    quiesce = (fun () -> ());
  }

let srm_adapter ~seed ~loss ~topology =
  let srm = Baselines.Srm.create ~seed ~loss ~session_interval:50.0 ~topology () in
  {
    sim = Baselines.Srm.sim srm;
    send = (fun () -> Baselines.Srm.multicast srm ());
    count = (fun id -> Baselines.Srm.count_received srm id);
    control_packets =
      (fun () -> Baselines.Srm.request_multicasts srm + Baselines.Srm.repair_multicasts srm);
    occupancies =
      (fun () ->
        List.map
          (fun node -> Rrmp.Buffer.occupancy_msg_ms (Baselines.Srm.buffer_of srm node))
          (Baselines.Srm.members srm));
    quiesce = (fun () -> ());
  }

let pbcast_adapter ~seed ~loss ~topology =
  let pb = Baselines.Pbcast.create ~seed ~loss ~topology () in
  {
    sim = Baselines.Pbcast.sim pb;
    send = (fun () -> Baselines.Pbcast.multicast pb ());
    count = (fun id -> Baselines.Pbcast.count_received pb id);
    control_packets = (fun () -> Baselines.Pbcast.control_packets pb);
    occupancies =
      (fun () ->
        List.map
          (fun node -> Rrmp.Buffer.occupancy_msg_ms (Baselines.Pbcast.buffer_of pb node))
          (Baselines.Pbcast.members pb));
    quiesce = (fun () -> Baselines.Pbcast.stop_gossip pb);
  }

let tree_adapter ~seed ~loss ~topology =
  let tree = Baselines.Tree_rmtp.create ~seed ~loss ~session_interval:50.0 ~topology () in
  {
    sim = Baselines.Tree_rmtp.sim tree;
    send = (fun () -> Baselines.Tree_rmtp.multicast tree ());
    count = (fun id -> Baselines.Tree_rmtp.count_received tree id);
    control_packets =
      (fun () ->
        let net = Baselines.Tree_rmtp.net tree in
        List.fold_left
          (fun acc cls ->
            if cls = "data" then acc else acc + (Network.stats net ~cls).Network.sent)
          0 (Network.classes net));
    occupancies =
      (fun () ->
        List.map
          (fun node -> Rrmp.Buffer.occupancy_msg_ms (Baselines.Tree_rmtp.buffer_of tree node))
          (Baselines.Tree_rmtp.members tree));
    quiesce = (fun () -> ());
  }

type outcome = {
  delivered : float;  (* fraction of (msg, member) pairs *)
  completion : Stats.Summary.t;  (* ms from send to group-wide delivery *)
  control : int;
  mean_occupancy : float;
  max_occupancy : float;
}

(* Drive one protocol instance through the stream and sample each
   message's group-wide completion time every 5 ms. The data loss is
   applied identically across protocols via a shared reach schedule. *)
let run_one adapter ~n ~messages ~spacing ~horizon =
  let completion = Stats.Summary.create () in
  let sent : (Msg_id.t * float) list ref = ref [] in
  let complete = Msg_id.Table.create 16 in
  for i = 0 to messages - 1 do
    ignore
      (Engine.Sim.schedule_at adapter.sim ~at:(float_of_int i *. spacing) (fun () ->
           let id = adapter.send () in
           sent := (id, Engine.Sim.now adapter.sim) :: !sent))
  done;
  let rec sampler at =
    if at <= horizon then
      ignore
        (Engine.Sim.schedule_at adapter.sim ~at (fun () ->
             List.iter
               (fun (id, sent_at) ->
                 if (not (Msg_id.Table.mem complete id)) && adapter.count id = n then begin
                   Msg_id.Table.add complete id ();
                   Stats.Summary.add completion (Engine.Sim.now adapter.sim -. sent_at)
                 end)
               !sent;
             sampler (at +. 5.0)))
  in
  sampler 0.0;
  Engine.Sim.run ~until:horizon adapter.sim;
  adapter.quiesce ();
  Engine.Sim.run ~until:(horizon +. 1.0) adapter.sim;
  let delivered_pairs =
    List.fold_left (fun acc (id, _) -> acc + adapter.count id) 0 !sent
  in
  let occupancies = adapter.occupancies () in
  let total_occ = List.fold_left ( +. ) 0.0 occupancies in
  {
    delivered = float_of_int delivered_pairs /. float_of_int (messages * n);
    completion;
    control = adapter.control_packets ();
    mean_occupancy = total_occ /. float_of_int (List.length occupancies);
    max_occupancy = List.fold_left Float.max 0.0 occupancies;
  }

let protocols =
  [
    ("rrmp", fun ~seed ~loss ~topology -> rrmp_adapter ~seed ~loss ~topology);
    ("srm", fun ~seed ~loss ~topology -> srm_adapter ~seed ~loss ~topology);
    ("pbcast", fun ~seed ~loss ~topology -> pbcast_adapter ~seed ~loss ~topology);
    ("tree-rmtp", fun ~seed ~loss ~topology -> tree_adapter ~seed ~loss ~topology);
  ]

let run ?(sizes = [ 25; 25 ]) ?(messages = 15) ?(spacing = 50.0) ?(loss = 0.2)
    ?(horizon = 5_000.0) ?(trials = 3) ?(seed = 1) () =
  let n = List.fold_left ( + ) 0 sizes in
  let rows =
    List.map
      (fun (name, make) ->
        let outcomes =
          Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
              let topology = Topology.chain ~sizes in
              let adapter = make ~seed ~loss:(Loss.Bernoulli loss) ~topology in
              run_one adapter ~n ~messages ~spacing ~horizon)
        in
        let delivered = Stats.Summary.create () in
        let completion = Stats.Summary.create () in
        let control = Stats.Summary.create () in
        let occ_mean = Stats.Summary.create () in
        let occ_max = Stats.Summary.create () in
        Array.iter
          (fun o ->
            Stats.Summary.add delivered o.delivered;
            if Stats.Summary.count o.completion > 0 then
              Stats.Summary.add completion (Stats.Summary.mean o.completion);
            Stats.Summary.add control (float_of_int o.control);
            Stats.Summary.add occ_mean o.mean_occupancy;
            Stats.Summary.add occ_max o.max_occupancy)
          outcomes;
        [
          name;
          Report.cell_pct (Stats.Summary.mean delivered);
          Report.cell_f (Stats.Summary.mean completion);
          Report.cell_f (Stats.Summary.mean control);
          Report.cell_f (Stats.Summary.mean occ_mean);
          Report.cell_f (Stats.Summary.mean occ_max);
        ])
      protocols
  in
  Report.make ~id:"ext_protocols"
    ~title:"Four reliable-multicast designs on one lossy workload"
    ~columns:
      [
        "protocol";
        "delivered %";
        "mean completion (ms)";
        "control pkts";
        "buffer msg-ms/member";
        "buffer msg-ms max member";
      ]
    ~notes:
      [
        Printf.sprintf
          "%d messages (one per %.0f ms) to %d members in regions %s; %.0f%% loss on \
           every packet; horizon %.0f ms; %d trials"
          messages spacing n
          (String.concat "+" (List.map string_of_int sizes))
          (100.0 *. loss) horizon trials;
        "expected: all deliver ~100%; SRM pays session-wide request/repair multicasts; \
         pbcast pays steady digest traffic; tree-rmtp concentrates buffering on the \
         repair servers; RRMP keeps both traffic and buffering low and spread";
      ]
    rows
