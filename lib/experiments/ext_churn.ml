(* One trial: idle a message in a region, then remove [departures]
   random members (never draining the region); returns whether at least
   one buffered copy survives. *)
let one_trial ~handoff ~region ~departures ~c ~seed =
  let topology = Topology.single_region ~size:region in
  let config = { Rrmp.Config.default with Rrmp.Config.expected_bufferers = c } in
  let group = Rrmp.Group.create ~seed ~config ~topology () in
  let rng = Engine.Rng.create ~seed:(seed lxor 0xC0FFEE) in
  let id = Rrmp.Group.multicast group () in
  Rrmp.Group.run ~until:300.0 group;
  let initial_bufferers = Rrmp.Group.count_buffered group id in
  let departed = ref 0 in
  while !departed < departures do
    let nodes = Topology.all_nodes (Rrmp.Group.topology group) in
    if Array.length nodes > 1 then begin
      let node = Engine.Rng.pick rng nodes in
      (if handoff then Rrmp.Group.leave group node else Rrmp.Group.crash group node);
      (* deliver the handoff before the next departure *)
      Rrmp.Group.run group;
      incr departed
    end
    else departed := departures
  done;
  Rrmp.Group.run group;
  (initial_bufferers > 0, Rrmp.Group.count_buffered group id > 0)

let survival ~handoff ~region ~departures ~c ~trials ~seed =
  let outcomes =
    Runner.par_map_trials ~trials ~base_seed:seed (fun ~seed ->
        one_trial ~handoff ~region ~departures ~c ~seed)
  in
  let survived = ref 0 and had_bufferer = ref 0 in
  Array.iter
    (fun (initial, final) ->
      if initial then incr had_bufferer;
      if initial && final then incr survived)
    outcomes;
  if !had_bufferer = 0 then 0.0 else float_of_int !survived /. float_of_int !had_bufferer

let run ?(region = 30) ?(departures = 25) ?(c = 4.0) ?(trials = 100) ?(seed = 1) () =
  let with_handoff = survival ~handoff:true ~region ~departures ~c ~trials ~seed in
  let without = survival ~handoff:false ~region ~departures ~c ~trials ~seed in
  Report.make ~id:"ext_churn"
    ~title:"Long-term buffer survival under churn: handoff vs crash"
    ~columns:[ "departure mode"; "message still buffered %" ]
    ~notes:
      [
        Printf.sprintf
          "region %d, C=%.0f; after the message idles, %d random members depart one by \
           one; %d trials (conditioned on >=1 initial bufferer)"
          region c departures trials;
        "expected: voluntary leave with handoff keeps the message buffered ~always; \
         crashes destroy the remaining copies with high probability";
      ]
    [
      [ "leave (handoff)"; Report.cell_pct with_handoff ];
      [ "crash (no handoff)"; Report.cell_pct without ];
    ]
