(* bench --net: the first real-traffic numbers.

   A group of RRMP members runs over Udp_loopback — every send is a
   real datagram through a real kernel socket, every receive passes
   through the binary codec — while timers stay on the deterministic
   sim clock. The harness alternates a socket drain with a 1 ms sim
   step, so protocol time is controlled and only the datagram path is
   "live". Loss is injected at the transport (seeded, send-side), and
   the members repair it with the paper's randomized recovery, over
   the wire.

   Reported per loss rate: wall-clock message throughput (member
   deliveries per second, which counts the multicast fan-out), the
   datagram/byte totals from the transport, and the recovery latency
   distribution in sim-ms (time from loss detection to repair, as
   emitted by Events.Recovered). Alongside: the codec's encode and
   validate costs in ns/op and minor words/op — the same paths the
   alloc/codec-* gates bound, measured here at bench op counts. *)

module Member = Rrmp.Member
module Config = Rrmp.Config
module Events = Rrmp.Events
module Wire = Rrmp.Wire
module Payload = Rrmp.Payload
module Codec = Rrmp.Codec
module Network = Netsim.Network
module Udp = Net.Udp_loopback
module Transport = Net.Transport

(* ------------------------------------------------------------------ *)
(* Codec micro-benchmarks                                              *)
(* ------------------------------------------------------------------ *)

let measure_codec ~name ~what ~ops f =
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  f ops;
  let w1 = Gc.minor_words () in
  let t1 = Unix.gettimeofday () in
  let total = float_of_int ops in
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String name);
      ("what", Tracing.Json.String what);
      ("ops", Tracing.Json.Int ops);
      ("ns_per_op", Tracing.Json.Float ((t1 -. t0) *. 1e9 /. total));
      ("minor_words_per_op", Tracing.Json.Float (Float.max 0.0 ((w1 -. w0) /. total)));
    ]

let codec_rows ~smoke =
  let ops = if smoke then 50_000 else 1_000_000 in
  let id = Protocol.Msg_id.make ~source:(Node_id.of_int 3) ~seq:17 in
  let msg = Wire.Data (Payload.make ~size:1024 id) in
  let size = Codec.encoded_size msg in
  let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout size in
  ignore (Codec.encode buf ~off:0 msg : int);
  let dec = Codec.create_decoder () in
  [
    measure_codec ~name:"net/codec-encode"
      ~what:"encode a 1 KiB Data frame into a preallocated buffer" ~ops (fun n ->
        for _ = 1 to n do
          ignore (Codec.encode buf ~off:0 msg : int)
        done);
    measure_codec ~name:"net/codec-decode"
      ~what:"validate a 1 KiB Data frame through a pooled decoder" ~ops (fun n ->
        for _ = 1 to n do
          match Codec.read dec buf ~off:0 ~len:size with
          | Codec.Ok_frame -> ()
          | Codec.Err _ -> assert false
        done);
    measure_codec ~name:"net/codec-decode-materialize"
      ~what:"validate + materialize the Wire.t with a copied body" ~ops:(ops / 10) (fun n ->
        for _ = 1 to n do
          match Codec.read dec buf ~off:0 ~len:size with
          | Codec.Ok_frame -> ignore (Codec.view dec ~copy:true : Wire.t)
          | Codec.Err _ -> assert false
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Loopback throughput + recovery latency                              *)
(* ------------------------------------------------------------------ *)

type recovery_stats = {
  mutable recoveries : int;
  mutable latency_sum : float;
  mutable latency_max : float;
  mutable delivered_events : int;
}

let run_loss_rate ~members:n ~messages ~max_steps ~loss =
  let topology = Topology.single_region ~size:n in
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let net =
    Network.create ~sim ~topology ~latency:Latency.paper_default
      ~loss:(Loss.create Loss.Lossless ~rng:(Engine.Rng.split rng))
      ~rng:(Engine.Rng.split rng) ()
  in
  let transport = Udp.create ~loss ~seed:0x6265 ~nodes:(Topology.all_nodes topology) () in
  let caps = Net.Caps.udp ~transport ~clock:(Net.Clock.of_sim sim) ~topology in
  let rs = { recoveries = 0; latency_sum = 0.0; latency_max = 0.0; delivered_events = 0 } in
  let observer ~time:_ ~self:_ = function
    | Events.Delivered _ -> rs.delivered_events <- rs.delivered_events + 1
    | Events.Recovered { latency; _ } ->
      rs.recoveries <- rs.recoveries + 1;
      rs.latency_sum <- rs.latency_sum +. latency;
      rs.latency_max <- Float.max rs.latency_max latency
    | _ -> ()
  in
  let group =
    Array.map
      (fun node ->
        Member.create ~net ~config:Config.default ~rng:(Engine.Rng.split rng) ~node ~caps
          ~observer ())
      (Topology.all_nodes topology)
  in
  let delivery =
    {
      Network.src = Node_id.of_int 0;
      Network.dst = Node_id.of_int 0;
      Network.msg = Wire.Session { max_seq = 0 };
      Network.sent_at = 0.0;
      Network.cls = "net";
    }
  in
  let dispatch ~src ~dst msg =
    delivery.Network.src <- src;
    delivery.Network.dst <- dst;
    delivery.Network.msg <- msg;
    delivery.Network.sent_at <- Engine.Sim.now sim;
    Member.inject_delivery group.(Node_id.to_int dst) delivery
  in
  let sender = group.(0) in
  let all_delivered () = Array.for_all (fun m -> Member.delivered_count m >= messages) group in
  let t0 = Unix.gettimeofday () in
  let steps = ref 0 in
  let step () =
    incr steps;
    ignore (Udp.drain transport ~handle:dispatch : int);
    Engine.Sim.run ~until:(Engine.Sim.now sim +. 1.0) sim
  in
  (* one multicast per sim-ms, then session ticks until the group
     converges (or the step cap fires at a pathological loss rate) *)
  for _ = 1 to messages do
    ignore (Member.multicast sender ~size:1024 () : Protocol.Msg_id.t);
    step ()
  done;
  while (not (all_delivered ())) && !steps < max_steps do
    if !steps mod 20 = 0 then Member.send_session sender;
    step ()
  done;
  ignore (Udp.drain transport ~handle:dispatch : int);
  let wall_s = Unix.gettimeofday () -. t0 in
  let st = Udp.stats transport in
  let complete = all_delivered () in
  Udp.close transport;
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String (Printf.sprintf "net/throughput loss=%.2f" loss));
      ( "what",
        Tracing.Json.String
          "RRMP members over UDP loopback: one 1 KiB multicast per sim-ms, recovery over \
           the wire" );
      ("members", Tracing.Json.Int n);
      ("messages", Tracing.Json.Int messages);
      ("loss", Tracing.Json.Float loss);
      ("wall_s", Tracing.Json.Float wall_s);
      ("sim_ms", Tracing.Json.Float (Engine.Sim.now sim));
      ("complete", Tracing.Json.Bool complete);
      ("deliveries", Tracing.Json.Int rs.delivered_events);
      ( "deliveries_per_sec",
        Tracing.Json.Float (float_of_int rs.delivered_events /. Float.max wall_s 1e-9) );
      ("datagrams_sent", Tracing.Json.Int st.Transport.datagrams_sent);
      ("datagrams_received", Tracing.Json.Int st.Transport.datagrams_received);
      ( "datagrams_per_sec",
        Tracing.Json.Float (float_of_int st.Transport.datagrams_sent /. Float.max wall_s 1e-9)
      );
      ("bytes_sent", Tracing.Json.Int st.Transport.bytes_sent);
      ("dropped_loss", Tracing.Json.Int st.Transport.dropped_loss);
      ("dropped_backpressure", Tracing.Json.Int st.Transport.dropped_backpressure);
      ("decode_errors", Tracing.Json.Int st.Transport.decode_errors);
      ("recoveries", Tracing.Json.Int rs.recoveries);
      ( "recovery_latency_mean_ms",
        Tracing.Json.Float
          (if rs.recoveries = 0 then 0.0
           else rs.latency_sum /. float_of_int rs.recoveries) );
      ("recovery_latency_max_ms", Tracing.Json.Float rs.latency_max);
    ]

let run ~smoke () =
  let members = if smoke then 6 else 16 in
  let messages = if smoke then 40 else 400 in
  let max_steps = if smoke then 5_000 else 60_000 in
  let rates = if smoke then [ 0.0; 0.05 ] else [ 0.0; 0.01; 0.05 ] in
  let throughput =
    List.map
      (fun loss ->
        let row = run_loss_rate ~members ~messages ~max_steps ~loss in
        Format.printf "  %s@." (Tracing.Json.to_string row);
        row)
      rates
  in
  throughput @ codec_rows ~smoke
