(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper (and every
   extension experiment) and prints the same rows/series the paper
   reports — this is the reproduction harness proper.

   Part 2 is a Bechamel microbenchmark suite: one Test.make per
   figure-generating workload (a reduced parameterization of the same
   code path) plus the hot simulator primitives, so performance
   regressions in the substrate are visible.

   Part 3 turns the measurements into machine-readable trajectory
   files — BENCH_engine.json (simulator primitives, ns/op and
   events/sec) and BENCH_protocol.json (macro protocol workloads,
   wall-clock and simulated-events throughput) — so successive commits
   can be compared without re-parsing console output.

   Part 4 measures the domain-parallel experiment runner: each
   workload runs once at -j 1 and once at -j N, the two reports are
   required to be byte-identical, and BENCH_parallel.json records the
   wall-clock pair plus the speedup.

   Usage:
     main.exe             full reproduction + benchmarks + JSON files
     main.exe --smoke     one reduced Bechamel iteration per test, then
                          emit the JSON files and re-parse them (used by
                          the [bench-smoke] dune alias as a CI check)
     main.exe -j N        worker domains for the parallel suite
                          (default 4, clamped to >= 2)
     main.exe --det-check run one experiment at -j 1 and -j 4 and exit
                          nonzero if the reports differ (CI guard) *)

let reproduce () =
  Format.printf "=====================================================================@.";
  Format.printf " Reproduction: Optimizing Buffer Management for Reliable Multicast@.";
  Format.printf " (Xiao, Birman, van Renesse - DSN 2002)@.";
  Format.printf "=====================================================================@.@.";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let report = e.Experiments.Registry.run ~quick:true in
      Format.printf "%a@." Experiments.Report.pp report;
      Format.printf "[%s | %s | %.1fs]@.@." e.Experiments.Registry.id
        e.Experiments.Registry.paper_ref
        (Unix.gettimeofday () -. t0))
    Experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* [ops] is how many interesting operations one run of the staged
   function performs; it converts ns/run into ops/sec in the JSON. *)
type bench = { test : Bechamel.Test.t; ops : int }

let bench_rng =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/rng.bits64 x1k"
        (Bechamel.Staged.stage (fun () ->
             let rng = Engine.Rng.create ~seed:1 in
             let acc = ref 0L in
             for _ = 1 to 1000 do
               acc := Int64.add !acc (Engine.Rng.bits64 rng)
             done;
             !acc));
  }

let bench_heap =
  {
    ops = 2000;
    test =
      Bechamel.Test.make ~name:"engine/heap push+pop 1k"
        (Bechamel.Staged.stage (fun () ->
             let h = Engine.Heap.create ~dummy:0 ~compare_priority:Int.compare () in
             for i = 0 to 999 do
               Engine.Heap.push h ((i * 7919) mod 1000)
             done;
             let acc = ref 0 in
             while not (Engine.Heap.is_empty h) do
               acc := !acc + Engine.Heap.top h;
               Engine.Heap.remove_top h
             done;
             !acc));
  }

let bench_heapify =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/heap push_list 1k (heapify)"
        (Bechamel.Staged.stage (fun () ->
             let h = Engine.Heap.create ~dummy:0 ~compare_priority:Int.compare () in
             Engine.Heap.push_list h (List.init 1000 (fun i -> (i * 7919) mod 1000));
             Engine.Heap.length h));
  }

let bench_wheel =
  {
    ops = 2000;
    test =
      Bechamel.Test.make ~name:"engine/wheel add+pop 1k"
        (Bechamel.Staged.stage (fun () ->
             let w =
               Engine.Wheel.create ~time_of:float_of_int ~compare:Int.compare ()
             in
             for i = 0 to 999 do
               ignore (Engine.Wheel.add w ((i * 7919) mod 1000))
             done;
             let acc = ref 0 in
             let rec drain () =
               match Engine.Wheel.pop w with
               | Some x ->
                 acc := !acc + x;
                 drain ()
               | None -> ()
             in
             drain ();
             !acc));
  }

let bench_sim =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/sim 1k timer cascade"
        (Bechamel.Staged.stage (fun () ->
             let sim = Engine.Sim.create () in
             let count = ref 0 in
             let rec tick () =
               incr count;
               if !count < 1000 then ignore (Engine.Sim.schedule sim ~delay:1.0 tick)
             in
             ignore (Engine.Sim.schedule sim ~delay:1.0 tick);
             Engine.Sim.run sim;
             !count));
  }

let bench_sim_cancel =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/sim schedule+cancel churn 1k"
        (Bechamel.Staged.stage (fun () ->
             let sim = Engine.Sim.create () in
             for i = 1 to 1000 do
               let h = Engine.Sim.schedule sim ~delay:(float_of_int (i mod 97)) ignore in
               Engine.Sim.cancel h
             done;
             Engine.Sim.run sim;
             Engine.Sim.pending sim));
  }

let bench_poisson =
  {
    ops = 21;
    test =
      Bechamel.Test.make ~name:"stats/poisson pmf k=0..20"
        (Bechamel.Staged.stage (fun () ->
             let acc = ref 0.0 in
             for k = 0 to 20 do
               acc := !acc +. Stats.Dist.poisson_pmf ~lambda:6.0 k
             done;
             !acc));
  }

(* one Test.make per figure: the same code path as the reproduction,
   at a parameterization small enough to iterate *)

let bench_fig3 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig3 (coin-flip MC, 200 trials)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig3.run ~mc_trials:200 ()));
  }

let bench_fig4 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig4 (MC + 5 protocol runs/C)"
        (Bechamel.Staged.stage (fun () ->
             Experiments.Fig4.run ~mc_trials:1_000 ~protocol_trials:5 ()));
  }

let bench_fig6 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig6 (1 trial/point)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig6.run ~trials:1 ()));
  }

let bench_fig7 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig7 (one sampled run)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig7.run ()));
  }

let bench_fig8 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig8 (3 trials/point)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig8.run ~trials:3 ()));
  }

let bench_fig9 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig9 (2 trials, 3 sizes)"
        (Bechamel.Staged.stage (fun () ->
             Experiments.Fig9.run ~trials:2 ~region_sizes:[ 100; 400; 1000 ] ()));
  }

let bench_delivery =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"rrmp/one lossless multicast, n=100"
        (Bechamel.Staged.stage (fun () ->
             let group =
               Rrmp.Group.create ~seed:1 ~topology:(Topology.single_region ~size:100) ()
             in
             let id = Rrmp.Group.multicast group () in
             Rrmp.Group.run group;
             Rrmp.Group.count_received group id));
  }

let bench_recovery =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"rrmp/regional loss recovery, 2x20"
        (Bechamel.Staged.stage (fun () ->
             let topology = Topology.chain ~sizes:[ 20; 20 ] in
             let group = Rrmp.Group.create ~seed:1 ~topology () in
             let id =
               Rrmp.Group.multicast_reaching group
                 ~reach:(fun n -> Node_id.to_int n < 20)
                 ()
             in
             List.iter
               (fun m -> Rrmp.Member.inject_loss m id)
               (Rrmp.Group.members_of_region group (Region_id.of_int 1));
             Rrmp.Group.run group;
             Rrmp.Group.count_received group id));
  }

let engine_benches =
  [ bench_rng; bench_heap; bench_heapify; bench_wheel; bench_sim; bench_sim_cancel;
    bench_poisson ]

let macro_benches =
  [ bench_fig3; bench_fig4; bench_fig6; bench_fig7; bench_fig8; bench_fig9;
    bench_delivery; bench_recovery ]

type bench_result = { name : string; ns_per_run : float; ops_per_run : int }

let run_benches ~smoke benches =
  let open Bechamel in
  let cfg =
    if smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.01) ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.concat_map
    (fun { test; ops } ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.fold
        (fun name raw acc ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          with
          | exception _ ->
            Format.printf "  %-40s (analysis failed)@." name;
            acc
          | result ->
            (match Analyze.OLS.estimates result with
             | Some [ est ] ->
               Format.printf "  %-40s %12.0f ns/run@." name est;
               { name; ns_per_run = est; ops_per_run = ops } :: acc
             | Some _ | None ->
               Format.printf "  %-40s (no estimate)@." name;
               acc))
        results [])
    benches

(* ------------------------------------------------------------------ *)
(* Macro protocol workloads: simulated-event throughput                *)
(* ------------------------------------------------------------------ *)

type macro_result = { m_name : string; wall_s : float; sim_events : int }

let measure_macro m_name build =
  let t0 = Unix.gettimeofday () in
  let group = build () in
  Rrmp.Group.run group;
  let wall_s = Unix.gettimeofday () -. t0 in
  { m_name; wall_s; sim_events = Engine.Sim.events_executed (Rrmp.Group.sim group) }

(* fig6-shaped: one region, every multicast reaches everyone, buffering
   and gossip dominate — measures the common no-loss fast path *)
let macro_single_region ~size ~msgs () =
  let group = Rrmp.Group.create ~seed:7 ~topology:(Topology.single_region ~size) () in
  for _ = 1 to msgs do
    ignore (Rrmp.Group.multicast group ())
  done;
  group

(* fig8-shaped: two regions, the second misses every initial multicast
   and recovers regionally — measures the error-recovery path *)
let macro_recovery ~size ~msgs () =
  let topology = Topology.chain ~sizes:[ size; size ] in
  let group = Rrmp.Group.create ~seed:7 ~topology () in
  for _ = 1 to msgs do
    let id =
      Rrmp.Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < size) ()
    in
    List.iter
      (fun m -> Rrmp.Member.inject_loss m id)
      (Rrmp.Group.members_of_region group (Region_id.of_int 1))
  done;
  group

let run_macros ~smoke () =
  let scale = if smoke then 1 else 4 in
  let workloads =
    [
      ("macro/single-region n=200", macro_single_region ~size:200 ~msgs:(5 * scale));
      ("macro/recovery 2x50", macro_recovery ~size:50 ~msgs:(5 * scale));
    ]
  in
  List.map
    (fun (name, build) ->
      let r = measure_macro name build in
      Format.printf "  %-40s %8.3f s  %9d sim events  %12.0f ev/s@." r.m_name r.wall_s
        r.sim_events
        (float_of_int r.sim_events /. Float.max r.wall_s 1e-9);
      r)
    workloads

(* ------------------------------------------------------------------ *)
(* JSON trajectory files                                               *)
(* ------------------------------------------------------------------ *)

let bench_result_json { name; ns_per_run; ops_per_run } =
  let ns_per_op = ns_per_run /. float_of_int ops_per_run in
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String name);
      ("ns_per_run", Tracing.Json.Float ns_per_run);
      ("ops_per_run", Tracing.Json.Int ops_per_run);
      ("ns_per_op", Tracing.Json.Float ns_per_op);
      ("ops_per_sec", Tracing.Json.Float (1e9 /. Float.max ns_per_op 1e-9));
    ]

let macro_result_json { m_name; wall_s; sim_events } =
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String m_name);
      ("wall_s", Tracing.Json.Float wall_s);
      ("sim_events", Tracing.Json.Int sim_events);
      ( "events_per_sec",
        Tracing.Json.Float (float_of_int sim_events /. Float.max wall_s 1e-9) );
    ]

let suite_json ~suite ~smoke results =
  Tracing.Json.Obj
    [
      ("schema", Tracing.Json.String "bench-trajectory/v1");
      ("suite", Tracing.Json.String suite);
      ("mode", Tracing.Json.String (if smoke then "smoke" else "full"));
      ("results", Tracing.Json.List results);
    ]

let write_json path v =
  let oc = open_out path in
  output_string oc (Tracing.Json.to_string v);
  close_out oc;
  Format.printf "wrote %s@." path

(* smoke check: the emitted files must round-trip through the parser
   and carry the expected schema/shape *)
let validate_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let v = Tracing.Json.of_string text in
  let schema = Option.bind (Tracing.Json.member "schema" v) Tracing.Json.to_string_opt in
  if schema <> Some "bench-trajectory/v1" then
    failwith (path ^ ": missing or wrong schema tag");
  match Option.bind (Tracing.Json.member "results" v) Tracing.Json.to_list_opt with
  | None -> failwith (path ^ ": missing results array")
  | Some results ->
    List.iter
      (fun r ->
        match Option.bind (Tracing.Json.member "name" r) Tracing.Json.to_string_opt with
        | None -> failwith (path ^ ": result entry without a name")
        | Some _ -> ())
      results;
    Format.printf "validated %s (%d results)@." path (List.length results)

(* ------------------------------------------------------------------ *)
(* Parallel runner: sequential vs multi-domain wall-clock              *)
(* ------------------------------------------------------------------ *)

let render_report report = Format.asprintf "%a" Experiments.Report.pp report

(* run [f] with the worker-count setting temporarily forced to [jobs] *)
let at_jobs jobs f =
  let saved = Engine.Pool.default_workers () in
  Engine.Pool.set_default_workers jobs;
  Fun.protect ~finally:(fun () -> Engine.Pool.set_default_workers saved) f

type parallel_result = {
  p_name : string;
  seq_wall_s : float;
  par_wall_s : float;
  p_jobs : int;
  speedup : float;
}

(* trial-heavy workloads: enough independent Monte-Carlo trials that
   the fan-out has real work to spread across domains *)
let parallel_workloads ~smoke =
  let scale = if smoke then 1 else 4 in
  [
    ("parallel/fig6", fun () -> ignore (Experiments.Fig6.run ~trials:(5 * scale) ()));
    ("parallel/fig8", fun () -> ignore (Experiments.Fig8.run ~trials:(5 * scale) ()));
    ( "parallel/ext_protocols",
      fun () -> ignore (Experiments.Ext_protocols.run ~trials:(2 * scale) ()) );
  ]

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run_parallel ~smoke ~jobs () =
  (* determinism is checked on a real report, not just the timings *)
  let check_identical () =
    let seq = at_jobs 1 (fun () -> render_report (Experiments.Fig6.run ~trials:3 ())) in
    let par = at_jobs jobs (fun () -> render_report (Experiments.Fig6.run ~trials:3 ())) in
    if seq <> par then failwith "parallel suite: fig6 report differs between -j 1 and -j N"
  in
  check_identical ();
  List.map
    (fun (p_name, work) ->
      let seq_wall_s = at_jobs 1 (fun () -> timed work) in
      let par_wall_s = at_jobs jobs (fun () -> timed work) in
      let speedup = seq_wall_s /. Float.max par_wall_s 1e-9 in
      Format.printf "  %-40s seq %7.3f s  par(-j %d) %7.3f s  speedup %5.2fx@." p_name
        seq_wall_s jobs par_wall_s speedup;
      { p_name; seq_wall_s; par_wall_s; p_jobs = jobs; speedup })
    (parallel_workloads ~smoke)

let parallel_result_json { p_name; seq_wall_s; par_wall_s; p_jobs; speedup } =
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String p_name);
      ("seq_wall_s", Tracing.Json.Float seq_wall_s);
      ("par_wall_s", Tracing.Json.Float par_wall_s);
      ("jobs", Tracing.Json.Int p_jobs);
      ("speedup", Tracing.Json.Float speedup);
    ]

(* --det-check: the CI guard behind the bench-smoke alias — one
   experiment at -j 1 vs -j 4, byte-compared *)
let det_check () =
  let id = "fig8" in
  let run () =
    match Experiments.Registry.find id with
    | Some e -> render_report (e.Experiments.Registry.run ~quick:true)
    | None -> failwith ("det-check: unknown experiment " ^ id)
  in
  let seq = at_jobs 1 run in
  let par = at_jobs 4 run in
  if seq = par then begin
    Format.printf "det-check: %s identical at -j 1 and -j 4 (%d bytes)@." id
      (String.length seq);
    0
  end
  else begin
    Format.printf "det-check: %s DIFFERS between -j 1 and -j 4@." id;
    Format.printf "--- -j 1 ---@.%s@." seq;
    Format.printf "--- -j 4 ---@.%s@." par;
    1
  end

let bench ~smoke ~jobs () =
  Format.printf "=====================================================================@.";
  Format.printf " Bechamel microbenchmarks (monotonic clock per run)@.";
  Format.printf "=====================================================================@.";
  let engine = run_benches ~smoke engine_benches in
  let micro = run_benches ~smoke macro_benches in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Macro protocol workloads@.";
  Format.printf "---------------------------------------------------------------------@.";
  let macros = run_macros ~smoke () in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Parallel experiment runner (deterministic; -j %d)@." jobs;
  Format.printf "---------------------------------------------------------------------@.";
  let parallels = run_parallel ~smoke ~jobs () in
  write_json "BENCH_engine.json"
    (suite_json ~suite:"engine" ~smoke (List.rev_map bench_result_json engine));
  write_json "BENCH_protocol.json"
    (suite_json ~suite:"protocol" ~smoke
       (List.rev_map bench_result_json micro @ List.map macro_result_json macros));
  write_json "BENCH_parallel.json"
    (suite_json ~suite:"parallel" ~smoke (List.map parallel_result_json parallels));
  if smoke then begin
    validate_json "BENCH_engine.json";
    validate_json "BENCH_protocol.json";
    validate_json "BENCH_parallel.json"
  end

let () =
  let argv = Sys.argv in
  let jobs = ref 4 in
  Array.iteri
    (fun i a ->
      if (a = "-j" || a = "--jobs") && i + 1 < Array.length argv then
        match int_of_string_opt argv.(i + 1) with
        | Some n when n >= 2 -> jobs := n
        | _ -> failwith ("bad -j value: " ^ argv.(i + 1)))
    argv;
  if Array.exists (String.equal "--det-check") argv then exit (det_check ())
  else begin
    let smoke = Array.exists (String.equal "--smoke") argv in
    if not smoke then reproduce ();
    bench ~smoke ~jobs:!jobs ()
  end
