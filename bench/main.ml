(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper (and every
   extension experiment) and prints the same rows/series the paper
   reports — this is the reproduction harness proper.

   Part 2 is a Bechamel microbenchmark suite: one Test.make per
   figure-generating workload (a reduced parameterization of the same
   code path) plus the hot simulator primitives, so performance
   regressions in the substrate are visible.

   Part 3 turns the measurements into machine-readable trajectory
   files — BENCH_engine.json (simulator primitives, ns/op and
   events/sec) and BENCH_protocol.json (macro protocol workloads,
   wall-clock and simulated-events throughput) — so successive commits
   can be compared without re-parsing console output.

   Part 4 measures the domain-parallel experiment runner: each
   workload runs once at -j 1 and once at -j N, the two reports are
   required to be byte-identical, and BENCH_parallel.json records the
   wall-clock pair plus the speedup.

   Part 5 (BENCH_scale.json) covers the two scale paths: the coalesced
   deadline rings vs per-message timers, and the region-sharded
   members x shards sweep (Rrmp.Sharded over Engine.Shard), whose rows
   re-assert the shard-count identity guarantee while timing it.

   Part 6 (BENCH_alloc.json) is the per-path allocation-gate report:
   minor-heap words per op for each named hot path (deliver, gap-note,
   local/remote repair, regional-repair fan-out, deadline touch)
   against the budgets in Experiments.Alloc_paths — the same table
   the rrmp.allocation_gates test suite asserts on every dune runtest.

   Usage:
     main.exe              full reproduction + benchmarks + JSON files
     main.exe --smoke      one reduced Bechamel iteration per test, then
                           emit the JSON files and re-parse them (used by
                           the [bench-smoke] dune alias as a CI check)
     main.exe -j N         worker domains for the parallel suite
                           (default 4, clamped to >= 2)
     main.exe -s N         max shard count for the sharded sweep
                           (default 4)
     main.exe --det-check  run one experiment at -j 1 and -j 4 and exit
                           nonzero if the reports differ (CI guard)
     main.exe --shard-check run the sharded scale experiments (10^5
                           sweep + quick ext_scale_1m spine cell) at
                           --shards 1 and 4 and exit nonzero if any
                           report differs (CI guard)
     main.exe --scale-only just the two scale sweeps + BENCH_scale.json
     main.exe --alloc-gates just the allocation gates + BENCH_alloc.json
                           (--smoke shrinks op counts; budgets are
                           identical either way) *)

let reproduce () =
  Format.printf "=====================================================================@.";
  Format.printf " Reproduction: Optimizing Buffer Management for Reliable Multicast@.";
  Format.printf " (Xiao, Birman, van Renesse - DSN 2002)@.";
  Format.printf "=====================================================================@.@.";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let report = e.Experiments.Registry.run ~quick:true in
      Format.printf "%a@." Experiments.Report.pp report;
      Format.printf "[%s | %s | %.1fs]@.@." e.Experiments.Registry.id
        e.Experiments.Registry.paper_ref
        (Unix.gettimeofday () -. t0))
    Experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

(* [ops] is how many interesting operations one run of the staged
   function performs; it converts ns/run into ops/sec in the JSON. *)
type bench = { test : Bechamel.Test.t; ops : int }

let bench_rng =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/rng.bits64 x1k"
        (Bechamel.Staged.stage (fun () ->
             let rng = Engine.Rng.create ~seed:1 in
             let acc = ref 0L in
             for _ = 1 to 1000 do
               acc := Int64.add !acc (Engine.Rng.bits64 rng)
             done;
             !acc));
  }

let bench_heap =
  {
    ops = 2000;
    test =
      Bechamel.Test.make ~name:"engine/heap push+pop 1k"
        (Bechamel.Staged.stage (fun () ->
             let h = Engine.Heap.create ~dummy:0 ~compare_priority:Int.compare () in
             for i = 0 to 999 do
               Engine.Heap.push h ((i * 7919) mod 1000)
             done;
             let acc = ref 0 in
             while not (Engine.Heap.is_empty h) do
               acc := !acc + Engine.Heap.top h;
               Engine.Heap.remove_top h
             done;
             !acc));
  }

let bench_heapify =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/heap push_list 1k (heapify)"
        (Bechamel.Staged.stage (fun () ->
             let h = Engine.Heap.create ~dummy:0 ~compare_priority:Int.compare () in
             Engine.Heap.push_list h (List.init 1000 (fun i -> (i * 7919) mod 1000));
             Engine.Heap.length h));
  }

let bench_wheel =
  {
    ops = 2000;
    test =
      Bechamel.Test.make ~name:"engine/wheel add+pop 1k"
        (Bechamel.Staged.stage (fun () ->
             let w =
               Engine.Wheel.create ~time_of:float_of_int ~compare:Int.compare ()
             in
             for i = 0 to 999 do
               ignore (Engine.Wheel.add w ((i * 7919) mod 1000))
             done;
             let acc = ref 0 in
             let rec drain () =
               match Engine.Wheel.pop w with
               | Some x ->
                 acc := !acc + x;
                 drain ()
               | None -> ()
             in
             drain ();
             !acc));
  }

let bench_sim =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/sim 1k timer cascade"
        (Bechamel.Staged.stage (fun () ->
             let sim = Engine.Sim.create () in
             let count = ref 0 in
             let rec tick () =
               incr count;
               if !count < 1000 then ignore (Engine.Sim.schedule sim ~delay:1.0 tick)
             in
             ignore (Engine.Sim.schedule sim ~delay:1.0 tick);
             Engine.Sim.run sim;
             !count));
  }

let bench_sim_cancel =
  {
    ops = 1000;
    test =
      Bechamel.Test.make ~name:"engine/sim schedule+cancel churn 1k"
        (Bechamel.Staged.stage (fun () ->
             let sim = Engine.Sim.create () in
             for i = 1 to 1000 do
               let h = Engine.Sim.schedule sim ~delay:(float_of_int (i mod 97)) ignore in
               Engine.Sim.cancel h
             done;
             Engine.Sim.run sim;
             Engine.Sim.pending sim));
  }

let bench_poisson =
  {
    ops = 21;
    test =
      Bechamel.Test.make ~name:"stats/poisson pmf k=0..20"
        (Bechamel.Staged.stage (fun () ->
             let acc = ref 0.0 in
             for k = 0 to 20 do
               acc := !acc +. Stats.Dist.poisson_pmf ~lambda:6.0 k
             done;
             !acc));
  }

(* one Test.make per figure: the same code path as the reproduction,
   at a parameterization small enough to iterate *)

let bench_fig3 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig3 (coin-flip MC, 200 trials)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig3.run ~mc_trials:200 ()));
  }

let bench_fig4 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig4 (MC + 5 protocol runs/C)"
        (Bechamel.Staged.stage (fun () ->
             Experiments.Fig4.run ~mc_trials:1_000 ~protocol_trials:5 ()));
  }

let bench_fig6 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig6 (1 trial/point)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig6.run ~trials:1 ()));
  }

let bench_fig7 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig7 (one sampled run)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig7.run ()));
  }

let bench_fig8 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig8 (3 trials/point)"
        (Bechamel.Staged.stage (fun () -> Experiments.Fig8.run ~trials:3 ()));
  }

let bench_fig9 =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"fig9 (2 trials, 3 sizes)"
        (Bechamel.Staged.stage (fun () ->
             Experiments.Fig9.run ~trials:2 ~region_sizes:[ 100; 400; 1000 ] ()));
  }

let bench_delivery =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"rrmp/one lossless multicast, n=100"
        (Bechamel.Staged.stage (fun () ->
             let group =
               Rrmp.Group.create ~seed:1 ~topology:(Topology.single_region ~size:100) ()
             in
             let id = Rrmp.Group.multicast group () in
             Rrmp.Group.run group;
             Rrmp.Group.count_received group id));
  }

let bench_recovery =
  {
    ops = 1;
    test =
      Bechamel.Test.make ~name:"rrmp/regional loss recovery, 2x20"
        (Bechamel.Staged.stage (fun () ->
             let topology = Topology.chain ~sizes:[ 20; 20 ] in
             let group = Rrmp.Group.create ~seed:1 ~topology () in
             let id =
               Rrmp.Group.multicast_reaching group
                 ~reach:(fun n -> Node_id.to_int n < 20)
                 ()
             in
             List.iter
               (fun m -> Rrmp.Member.inject_loss m id)
               (Rrmp.Group.members_of_region group (Region_id.of_int 1));
             Rrmp.Group.run group;
             Rrmp.Group.count_received group id));
  }

let engine_benches =
  [ bench_rng; bench_heap; bench_heapify; bench_wheel; bench_sim; bench_sim_cancel;
    bench_poisson ]

let macro_benches =
  [ bench_fig3; bench_fig4; bench_fig6; bench_fig7; bench_fig8; bench_fig9;
    bench_delivery; bench_recovery ]

type bench_result = { name : string; ns_per_run : float; ops_per_run : int }

let run_benches ~smoke benches =
  let open Bechamel in
  let cfg =
    if smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.01) ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.concat_map
    (fun { test; ops } ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.fold
        (fun name raw acc ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          with
          | exception _ ->
            Format.printf "  %-40s (analysis failed)@." name;
            acc
          | result ->
            (match Analyze.OLS.estimates result with
             | Some [ est ] ->
               Format.printf "  %-40s %12.0f ns/run@." name est;
               { name; ns_per_run = est; ops_per_run = ops } :: acc
             | Some _ | None ->
               Format.printf "  %-40s (no estimate)@." name;
               acc))
        results [])
    benches

(* ------------------------------------------------------------------ *)
(* Macro protocol workloads: simulated-event throughput                *)
(* ------------------------------------------------------------------ *)

type macro_result = { m_name : string; wall_s : float; sim_events : int }

let measure_macro m_name build =
  let t0 = Unix.gettimeofday () in
  let group = build () in
  Rrmp.Group.run group;
  let wall_s = Unix.gettimeofday () -. t0 in
  { m_name; wall_s; sim_events = Engine.Sim.events_executed (Rrmp.Group.sim group) }

(* fig6-shaped: one region, every multicast reaches everyone, buffering
   and gossip dominate — measures the common no-loss fast path *)
let macro_single_region ~size ~msgs () =
  let group = Rrmp.Group.create ~seed:7 ~topology:(Topology.single_region ~size) () in
  for _ = 1 to msgs do
    ignore (Rrmp.Group.multicast group ())
  done;
  group

(* fig8-shaped: two regions, the second misses every initial multicast
   and recovers regionally — measures the error-recovery path *)
let macro_recovery ~size ~msgs () =
  let topology = Topology.chain ~sizes:[ size; size ] in
  let group = Rrmp.Group.create ~seed:7 ~topology () in
  for _ = 1 to msgs do
    let id =
      Rrmp.Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < size) ()
    in
    List.iter
      (fun m -> Rrmp.Member.inject_loss m id)
      (Rrmp.Group.members_of_region group (Region_id.of_int 1))
  done;
  group

let run_macros ~smoke () =
  let scale = if smoke then 1 else 4 in
  let workloads =
    [
      ("macro/single-region n=200", macro_single_region ~size:200 ~msgs:(5 * scale));
      ("macro/recovery 2x50", macro_recovery ~size:50 ~msgs:(5 * scale));
    ]
  in
  List.map
    (fun (name, build) ->
      let r = measure_macro name build in
      Format.printf "  %-40s %8.3f s  %9d sim events  %12.0f ev/s@." r.m_name r.wall_s
        r.sim_events
        (float_of_int r.sim_events /. Float.max r.wall_s 1e-9);
      r)
    workloads

(* ------------------------------------------------------------------ *)
(* JSON trajectory files                                               *)
(* ------------------------------------------------------------------ *)

let bench_result_json { name; ns_per_run; ops_per_run } =
  let ns_per_op = ns_per_run /. float_of_int ops_per_run in
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String name);
      ("ns_per_run", Tracing.Json.Float ns_per_run);
      ("ops_per_run", Tracing.Json.Int ops_per_run);
      ("ns_per_op", Tracing.Json.Float ns_per_op);
      ("ops_per_sec", Tracing.Json.Float (1e9 /. Float.max ns_per_op 1e-9));
    ]

let macro_result_json { m_name; wall_s; sim_events } =
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String m_name);
      ("wall_s", Tracing.Json.Float wall_s);
      ("sim_events", Tracing.Json.Int sim_events);
      ( "events_per_sec",
        Tracing.Json.Float (float_of_int sim_events /. Float.max wall_s 1e-9) );
    ]

let suite_json ~suite ~smoke results =
  Tracing.Json.Obj
    [
      ("schema", Tracing.Json.String "bench-trajectory/v1");
      ("suite", Tracing.Json.String suite);
      ("mode", Tracing.Json.String (if smoke then "smoke" else "full"));
      ("results", Tracing.Json.List results);
    ]

let write_json path v =
  let oc = open_out path in
  output_string oc (Tracing.Json.to_string v);
  close_out oc;
  Format.printf "wrote %s@." path

(* smoke check: the emitted files must round-trip through the parser
   and carry the expected schema/shape *)
let validate_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let v = Tracing.Json.of_string text in
  let schema = Option.bind (Tracing.Json.member "schema" v) Tracing.Json.to_string_opt in
  if schema <> Some "bench-trajectory/v1" then
    failwith (path ^ ": missing or wrong schema tag");
  match Option.bind (Tracing.Json.member "results" v) Tracing.Json.to_list_opt with
  | None -> failwith (path ^ ": missing results array")
  | Some results ->
    List.iter
      (fun r ->
        match Option.bind (Tracing.Json.member "name" r) Tracing.Json.to_string_opt with
        | None -> failwith (path ^ ": result entry without a name")
        | Some _ -> ())
      results;
    Format.printf "validated %s (%d results)@." path (List.length results)

(* ------------------------------------------------------------------ *)
(* Shared GC sampling harness                                          *)
(* ------------------------------------------------------------------ *)

(* Every suite that charges wall-clock or minor-heap words to a
   workload funnels through this one window: minor words are read
   outermost (the counter is per-domain and monotonic, so enclosing
   the clock reads costs a constant few words, amortized over the
   suites' op counts), wall-clock innermost. *)
let gc_sampled f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let v = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  (v, wall_s, words)

(* ------------------------------------------------------------------ *)
(* Parallel runner: sequential vs multi-domain wall-clock              *)
(* ------------------------------------------------------------------ *)

let render_report report = Format.asprintf "%a" Experiments.Report.pp report

(* run [f] with the worker-count setting temporarily forced to [jobs] *)
let at_jobs jobs f =
  let saved = Engine.Pool.default_workers () in
  Engine.Pool.set_default_workers jobs;
  Fun.protect ~finally:(fun () -> Engine.Pool.set_default_workers saved) f

type parallel_result = {
  p_name : string;
  seq_wall_s : float;
  par_wall_s : float;
  p_jobs : int;
  speedup : float;
}

(* trial-heavy workloads: enough independent Monte-Carlo trials that
   the fan-out has real work to spread across domains *)
let parallel_workloads ~smoke =
  let scale = if smoke then 1 else 4 in
  [
    ("parallel/fig6", fun () -> ignore (Experiments.Fig6.run ~trials:(5 * scale) ()));
    ("parallel/fig8", fun () -> ignore (Experiments.Fig8.run ~trials:(5 * scale) ()));
    ( "parallel/ext_protocols",
      fun () -> ignore (Experiments.Ext_protocols.run ~trials:(2 * scale) ()) );
  ]

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let run_parallel ~smoke ~jobs () =
  (* determinism is checked on a real report, not just the timings *)
  let check_identical () =
    let seq = at_jobs 1 (fun () -> render_report (Experiments.Fig6.run ~trials:3 ())) in
    let par = at_jobs jobs (fun () -> render_report (Experiments.Fig6.run ~trials:3 ())) in
    if seq <> par then failwith "parallel suite: fig6 report differs between -j 1 and -j N"
  in
  check_identical ();
  List.map
    (fun (p_name, work) ->
      let seq_wall_s = at_jobs 1 (fun () -> timed work) in
      let par_wall_s = at_jobs jobs (fun () -> timed work) in
      let speedup = seq_wall_s /. Float.max par_wall_s 1e-9 in
      Format.printf "  %-40s seq %7.3f s  par(-j %d) %7.3f s  speedup %5.2fx@." p_name
        seq_wall_s jobs par_wall_s speedup;
      { p_name; seq_wall_s; par_wall_s; p_jobs = jobs; speedup })
    (parallel_workloads ~smoke)

let parallel_result_json { p_name; seq_wall_s; par_wall_s; p_jobs; speedup } =
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String p_name);
      ("seq_wall_s", Tracing.Json.Float seq_wall_s);
      ("par_wall_s", Tracing.Json.Float par_wall_s);
      ("jobs", Tracing.Json.Int p_jobs);
      ("speedup", Tracing.Json.Float speedup);
    ]

(* ------------------------------------------------------------------ *)
(* Protocol-state suite: before/after numbers for the per-member       *)
(* hot-path data structures (BENCH_state.json)                         *)
(* ------------------------------------------------------------------ *)

(* Each entry reports ns/op and minor-heap words/op. "Before" entries
   run the retained reference implementations (Gap_oracle, list-walking
   digest_has); "after" entries run the production structures and carry
   a [speedup_vs_oracle] column against their paired reference. *)

type state_result = {
  st_name : string;
  st_ns_per_op : float;
  st_minor_words_per_op : float;
  st_ops : int;
  st_runs : int;
  st_speedup : float option;
}

(* wall-clock + Gc.minor_words delta over [runs] repetitions, after one
   untimed warm-up run (first-call allocation of tables, etc.) *)
let measure_state ~runs ~ops st_name f =
  ignore (Sys.opaque_identity (f ()));
  let keep = ref 0 in
  let (), wall_s, words =
    gc_sampled (fun () ->
        for _ = 1 to runs do
          keep := !keep + f ()
        done)
  in
  ignore (Sys.opaque_identity !keep);
  let total = float_of_int (runs * ops) in
  {
    st_name;
    st_ns_per_op = wall_s *. 1e9 /. total;
    st_minor_words_per_op = words /. total;
    st_ops = ops;
    st_runs = runs;
    st_speedup = None;
  }

let with_speedup ~vs r =
  { r with st_speedup = Some (vs.st_ns_per_op /. Float.max r.st_ns_per_op 1e-9) }

module type GAP = sig
  type t

  val create : unit -> t
  val note_data : t -> int -> [ `Fresh of int list | `Duplicate ]
  val note_repaired : t -> int -> unit
  val received : t -> int -> bool
  val missing_count : t -> int
  val received_count : t -> int
end

(* long-session soak: [n] sequence numbers with every 100th dropped,
   batched repairs every 1000, a [received] probe per packet and
   counter samples every 100 — the shape of a member that stays
   subscribed for a long session *)
let gap_soak (type a) (module G : GAP with type t = a) ~n () =
  let g = G.create () in
  let acc = ref 0 in
  for seq = 0 to n - 1 do
    if seq mod 100 <> 99 then begin
      (match G.note_data g seq with
       | `Fresh gaps -> acc := !acc + List.length gaps
       | `Duplicate -> ());
      if G.received g (seq / 2) then incr acc;
      if seq mod 100 = 50 then acc := !acc + G.missing_count g + G.received_count g
    end;
    if seq mod 1000 = 999 then
      (* the repair batch for the block that just ended *)
      for k = 0 to 9 do
        G.note_repaired g (seq - 900 + (k * 100))
      done
  done;
  !acc

(* a History digest shaped like the stability baseline's: many sources,
   each with a long horizon and a sprinkling of missing seqs *)
let storm_digest ~sources ~horizon : Protocol.Recv_log.digest =
  List.init sources (fun s ->
      let missing = List.filter (fun i -> i mod 7 = 3) (List.init horizon Fun.id) in
      (Node_id.of_int s, (horizon, missing)))

let storm_probes ~sources ~horizon ~count =
  Array.init count (fun i ->
      Protocol.Msg_id.make
        ~source:(Node_id.of_int (i mod sources))
        ~seq:((i * 37) mod (horizon + 20)))

let run_state ~smoke () =
  let n = if smoke then 5_000 else 100_000 in
  let soak_runs = if smoke then 1 else 3 in
  let soak name m = measure_state ~runs:soak_runs ~ops:n name (gap_soak m ~n) in
  let soak_before = soak "state/gap-soak set-oracle (before)" (module Protocol.Gap_oracle) in
  let soak_after =
    with_speedup ~vs:soak_before
      (soak "state/gap-soak windowed (after)" (module Protocol.Gap_detect))
  in
  let sources = 16 and horizon = 400 in
  let digest = storm_digest ~sources ~horizon in
  let probes = storm_probes ~sources ~horizon ~count:1024 in
  let dig_runs = if smoke then 5 else 200 in
  let count_has has = Array.fold_left (fun c id -> if has id then c + 1 else c) 0 probes in
  let dig name f = measure_state ~runs:dig_runs ~ops:(Array.length probes) name f in
  let dig_before =
    dig "state/digest-storm list-walk (before)" (fun () ->
        count_has (Protocol.Recv_log.digest_has digest))
  in
  let dig_after =
    (* index built once per run — the handle_history amortization *)
    with_speedup ~vs:dig_before
      (dig "state/digest-storm indexed (after)" (fun () ->
           let idx = Protocol.Recv_log.index digest in
           count_has (Protocol.Recv_log.indexed_has idx)))
  in
  (* fig8/fig9 wall clock at the same reduced parameterization as the
     protocol-suite Bechamel entries, so the two files are comparable *)
  let fig_trials = if smoke then 1 else 3 in
  let fig8 =
    measure_state ~runs:1 ~ops:1 "state/fig8 reduced wall" (fun () ->
        ignore (Sys.opaque_identity (Experiments.Fig8.run ~trials:fig_trials ()));
        0)
  in
  let fig9 =
    measure_state ~runs:1 ~ops:1 "state/fig9 reduced wall" (fun () ->
        ignore
          (Sys.opaque_identity
             (Experiments.Fig9.run ~trials:(if smoke then 1 else 2)
                ~region_sizes:[ 100; 400; 1000 ] ()));
        0)
  in
  let results = [ soak_before; soak_after; dig_before; dig_after; fig8; fig9 ] in
  List.iter
    (fun r ->
      Format.printf "  %-42s %12.1f ns/op %10.2f words/op%s@." r.st_name r.st_ns_per_op
        r.st_minor_words_per_op
        (match r.st_speedup with
         | Some s -> Format.asprintf "  %5.2fx vs before" s
         | None -> ""))
    results;
  results

let state_result_json r =
  Tracing.Json.Obj
    ([
       ("name", Tracing.Json.String r.st_name);
       ("ns_per_op", Tracing.Json.Float r.st_ns_per_op);
       ("minor_words_per_op", Tracing.Json.Float r.st_minor_words_per_op);
       ("ops_per_run", Tracing.Json.Int r.st_ops);
       ("runs", Tracing.Json.Int r.st_runs);
     ]
    @
    match r.st_speedup with
    | Some s -> [ ("speedup_vs_oracle", Tracing.Json.Float s) ]
    | None -> [])

(* ------------------------------------------------------------------ *)
(* Scale suite: coalesced deadline rings vs per-message idle timers    *)
(* (BENCH_scale.json)                                                  *)
(* ------------------------------------------------------------------ *)

(* The ext_scale workload at [quantum = 0.0] runs the exact per-message
   Timer.Idle path (the "before" configuration); [quantum > 0] runs the
   coalesced deadline rings. Both are measured with the observer off so
   the emission-gating fast path is what's timed, and minor-heap words
   are charged per delivered message — the zero-allocation claim made
   precise. *)

type scale_result = {
  sc_name : string;
  sc_members : int;
  sc_quantum : float;
  sc_shards : int; (* 1 = the sequential single-Sim path *)
  sc_wall_s : float;
  sc_sim_events : int;
  sc_delivered : int;
  sc_minor_words_per_op : float;
  sc_peak_heap : int; (* Gc top_heap_words sampled after the run *)
  sc_extra : (string * float) option; (* JSON key + value vs the paired row *)
}

(* process-wide top-of-heap high-water mark (words). Monotone and
   shared by every row measured so far in this process, so it bounds a
   row's footprint from above; the 10^6-member rows dominate it, which
   is what the trajectory tracks. *)
let peak_heap_words () = (Gc.quick_stat ()).Gc.top_heap_words

let measure_scale ~n ~msgs ~burst ~quantum sc_name =
  let stats, sc_wall_s, words =
    gc_sampled (fun () ->
        Experiments.Ext_scale.run_once ~n ~msgs ~burst ~quantum ~seed:1 ~observe:false ())
  in
  {
    sc_name;
    sc_members = n;
    sc_quantum = quantum;
    sc_shards = 1;
    sc_wall_s;
    sc_sim_events = stats.Experiments.Ext_scale.sim_events;
    sc_delivered = stats.Experiments.Ext_scale.delivered;
    sc_minor_words_per_op = words /. float_of_int (max 1 stats.Experiments.Ext_scale.delivered);
    sc_peak_heap = peak_heap_words ();
    sc_extra = None;
  }

let print_scale r =
  Format.printf "  %-44s %8.3f s  %9d sim events  %8.2f words/op%s@." r.sc_name
    r.sc_wall_s r.sc_sim_events r.sc_minor_words_per_op
    (match r.sc_extra with
     | Some ("speedup_vs_timers", s) -> Format.asprintf "  %5.2fx vs timers" s
     | Some ("speedup_vs_1shard", s) -> Format.asprintf "  %5.2fx vs 1 shard" s
     | Some (key, s) -> Format.asprintf "  %5.2f %s" s key
     | None -> "")

(* The deadline-management component in isolation, at the sweep's
   deadline population: [members * msgs] concurrent deadlines, [rounds]
   full feedback passes (every deadline touched), then expiry. This is
   the op mix [touch_feedback]/[start_idle_timer] generate inside the
   sweep, with the per-delivery protocol work (which dominates the
   whole-run numbers above and is identical in both configurations)
   stripped away — the speedup the rings were built for. *)

let churn_timers ~members ~msgs ~rounds () =
  let sim = Engine.Sim.create () in
  let fired = ref 0 in
  let timers =
    Array.init (members * msgs) (fun _ ->
        Engine.Timer.Idle.create sim ~timeout:100.0 ~on_idle:(fun () -> incr fired))
  in
  for r = 1 to rounds do
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int r *. 20.0) (fun () ->
           Array.iter Engine.Timer.Idle.touch timers))
  done;
  Engine.Sim.run sim;
  (fired, sim)

module Int_ring = Engine.Dring.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Fun.id
end)

let churn_rings ~members ~msgs ~rounds () =
  let sim = Engine.Sim.create () in
  let fired = ref 0 in
  let rings =
    Array.init members (fun _ ->
        Int_ring.create sim ~quantum:10.0 ~on_expire:(fun _ -> incr fired))
  in
  Array.iter
    (fun ring ->
      for m = 0 to msgs - 1 do
        Int_ring.add ring m ~timeout:100.0
      done)
    rings;
  for r = 1 to rounds do
    ignore
      (Engine.Sim.schedule_at sim ~at:(float_of_int r *. 20.0) (fun () ->
           Array.iter
             (fun ring ->
               for m = 0 to msgs - 1 do
                 Int_ring.touch ring m
               done)
             rings))
  done;
  Engine.Sim.run sim;
  (fired, sim)

let measure_churn ~members ~msgs ~quantum sc_name f =
  let (fired, sim), sc_wall_s, words = gc_sampled f in
  if !fired <> members * msgs then
    failwith (sc_name ^ ": some deadlines never fired");
  {
    sc_name;
    sc_members = members;
    sc_quantum = quantum;
    sc_shards = 1;
    sc_wall_s;
    sc_sim_events = Engine.Sim.events_executed sim;
    sc_delivered = !fired;
    sc_minor_words_per_op = words /. float_of_int (max 1 !fired);
    sc_peak_heap = peak_heap_words ();
    sc_extra = None;
  }

let run_scale ~smoke () =
  let sizes = if smoke then [ 256 ] else [ 256; 1024; 2048; 5000 ] in
  let msgs = if smoke then 8 else 48 in
  let burst = if smoke then 4 else 8 in
  let quantum = 10.0 in
  let sweep =
    List.concat_map
      (fun n ->
        let before =
          measure_scale ~n ~msgs ~burst ~quantum:0.0
            (Printf.sprintf "scale/sweep n=%d per-msg timers (before)" n)
        in
        let after =
          measure_scale ~n ~msgs ~burst ~quantum
            (Printf.sprintf "scale/sweep n=%d deadline rings (after)" n)
        in
        (* below the ring/timer crossover (n ~ 1024) the rings' fixed
           sweep costs dominate the tiny timer population, so the ratio
           reads as a bogus "slowdown" — exactly what the smoke sweep's
           n=256 cell used to publish. Rows below the crossover carry
           no speedup column; the full sweep's large cells do. *)
        let after =
          if n < 1024 then after
          else
            { after with
              sc_extra =
                Some ("speedup_vs_timers", before.sc_wall_s /. Float.max after.sc_wall_s 1e-9) }
        in
        print_scale before;
        print_scale after;
        [ before; after ])
      sizes
  in
  let c_members = if smoke then 256 else 5000 in
  let c_msgs = if smoke then 8 else 48 in
  let rounds = if smoke then 2 else 4 in
  let churn_before =
    measure_churn ~members:c_members ~msgs:c_msgs ~quantum:0.0
      (Printf.sprintf "scale/deadline-churn %dx%d per-msg timers (before)" c_members c_msgs)
      (churn_timers ~members:c_members ~msgs:c_msgs ~rounds)
  in
  let churn_after =
    let r =
      measure_churn ~members:c_members ~msgs:c_msgs ~quantum
        (Printf.sprintf "scale/deadline-churn %dx%d deadline rings (after)" c_members c_msgs)
        (churn_rings ~members:c_members ~msgs:c_msgs ~rounds)
    in
    { r with
      sc_extra =
        Some ("speedup_vs_timers", churn_before.sc_wall_s /. Float.max r.sc_wall_s 1e-9) }
  in
  print_scale churn_before;
  print_scale churn_after;
  sweep @ [ churn_before; churn_after ]

(* ------------------------------------------------------------------ *)
(* Region-sharded sweep: members × shards over Rrmp.Sharded            *)
(* ------------------------------------------------------------------ *)

(* run [f] with the shard-count setting temporarily forced, mirroring
   [at_jobs] (the --shards / REPRO_SHARDS convention) *)
let at_shards shards f =
  let saved = Engine.Shard.default_shards () in
  Engine.Shard.set_default_shards shards;
  Fun.protect ~finally:(fun () -> Engine.Shard.set_default_shards saved) f

(* One (members, shards) row. The wall clock is measured at -j =
   shards, one worker domain per shard window; minor words come from a
   separate -j 1 pass where every window runs inline on this domain,
   because Gc.minor_words is a per-domain counter and the parallel
   pass would hide worker-domain allocation. The two passes (and every
   shard count) must agree on the simulation-domain statistics — the
   identity guarantee is re-asserted here on every row. *)
let measure_shard_row ~regions ~per_region ~msgs ~burst ~shards ~expect sc_name =
  let run () =
    Experiments.Ext_scale.run_once_sharded ~regions ~per_region ~msgs ~burst ~quantum:10.0
      ~seed:1 ~shards ~observe:false ()
  in
  let (alloc_stats, _, _), _, words = gc_sampled (fun () -> at_jobs 1 run) in
  let (stats, _, _), sc_wall_s, _ = gc_sampled (fun () -> at_jobs shards run) in
  let delivered = stats.Experiments.Ext_scale.delivered in
  let events = stats.Experiments.Ext_scale.sim_events in
  if
    delivered <> alloc_stats.Experiments.Ext_scale.delivered
    || events <> alloc_stats.Experiments.Ext_scale.sim_events
  then failwith (sc_name ^ ": -j 1 and -j N runs disagree");
  (match expect with
   | Some (d, e) when d <> delivered || e <> events ->
     failwith (sc_name ^ ": shard count changed the simulation result")
   | _ -> ());
  {
    sc_name;
    sc_members = regions * per_region;
    sc_quantum = 10.0;
    sc_shards = shards;
    sc_wall_s;
    sc_sim_events = events;
    sc_delivered = delivered;
    sc_minor_words_per_op = words /. float_of_int (max 1 delivered);
    sc_peak_heap = peak_heap_words ();
    sc_extra = None;
  }

(* The SoA hot op in isolation: feedback touches against a populated
   arena are bare int-array stores (the ring re-buckets lazily at sweep
   time), so the unobserved path must measure 0.00 minor words/op —
   the emission-gating claim made precise at the sweep's population. *)
let measure_soa_touch ~members ~msgs ~rounds sc_name =
  let sim = Engine.Sim.create () in
  let soa =
    Rrmp.Member_soa.create ~sim ~n:members ~cap:msgs ~quantum:10.0 ~idle_timeout:1e9
      ~lifetime:None
      ~on_idle:(fun ~member:_ ~seq:_ -> ())
      ~on_lifetime:(fun ~member:_ ~seq:_ -> ())
      ~on_gap:(fun ~member:_ ~seq:_ -> ())
      ()
  in
  for m = 0 to members - 1 do
    for s = 0 to msgs - 1 do
      ignore (Rrmp.Member_soa.insert_short soa m s ~now:0.0)
    done
  done;
  let ops = members * msgs * rounds in
  let (), sc_wall_s, words =
    gc_sampled (fun () ->
        for r = 1 to rounds do
          (* opaque_identity keeps [now] boxed: the classic compiler
             unboxes a let-bound float and re-boxes it at every call
             site, which would charge 2 words/op to the harness, not
             the touch path *)
          let now = Sys.opaque_identity (float_of_int (20 * r)) in
          for m = 0 to members - 1 do
            for s = 0 to msgs - 1 do
              Rrmp.Member_soa.touch soa m s ~now
            done
          done
        done)
  in
  {
    sc_name;
    sc_members = members;
    sc_quantum = 10.0;
    sc_shards = 1;
    sc_wall_s;
    sc_sim_events = 0;
    sc_delivered = ops;
    sc_minor_words_per_op = words /. float_of_int (max 1 ops);
    sc_peak_heap = peak_heap_words ();
    sc_extra = None;
  }

(* Per-region fixed overhead, gated: the spine acceptance metric. The
   per-region-scaffolding path paid 243.7 marginal heap words and 3.0
   Sim schedules per region (one Sim-scheduled ring sweep chain each);
   the per-shard spine's budget is a >= 4x reduction on words and ~1
   schedule (the injected data parcel). A regression past the budget
   fails the bench loudly, like the allocation gates. *)
let words_per_region_budget = 61.0

let schedules_per_region_budget = 1.5

let measure_region_overhead () =
  let (words_per_region, scheds_per_region), sc_wall_s, _ =
    gc_sampled (fun () -> Experiments.Ext_scale.region_overhead ())
  in
  if words_per_region > words_per_region_budget then
    failwith
      (Printf.sprintf "region overhead: %.1f marginal words/region exceeds the %.1f budget"
         words_per_region words_per_region_budget);
  if scheds_per_region > schedules_per_region_budget then
    failwith
      (Printf.sprintf "region overhead: %.2f Sim schedules/region exceeds the %.1f budget"
         scheds_per_region schedules_per_region_budget);
  {
    sc_name = "scale/region-overhead marginal words+schedules";
    sc_members = 272;
    sc_quantum = 10.0;
    sc_shards = 1;
    sc_wall_s;
    sc_sim_events = 0;
    sc_delivered = 256; (* differenced regions: per-op = per-region *)
    sc_minor_words_per_op = words_per_region;
    sc_peak_heap = peak_heap_words ();
    sc_extra = Some ("schedules_per_region", scheds_per_region);
  }

(* The million-member acceptance rows (ext_scale_1m's workload). Unlike
   the sweep rows these are measured in a single pass each — at this
   size a second identity pass would double the dominant cost of the
   whole bench — so minor words come from the -j 1 base row (the
   counter is per-domain) and are copied into the -j 4 row, whose
   simulation statistics are still asserted identical to the base.
   In smoke mode the cell scales down (same code path end to end). *)
let run_1m_rows ~smoke () =
  let regions, per_region = if smoke then (16, 64) else (1024, 1024) in
  let msgs = 8 and burst = 4 in
  let run ~shards () =
    Experiments.Ext_scale.run_once_sharded ~regions ~per_region ~msgs ~burst ~quantum:10.0
      ~seed:1 ~shards ~observe:false ()
  in
  let (stats, _, _), sc_wall_s, words = gc_sampled (fun () -> at_jobs 1 (run ~shards:1)) in
  let delivered = stats.Experiments.Ext_scale.delivered in
  let base =
    {
      sc_name = Printf.sprintf "scale/1m %dx%d shards=1" regions per_region;
      sc_members = regions * per_region;
      sc_quantum = 10.0;
      sc_shards = 1;
      sc_wall_s;
      sc_sim_events = stats.Experiments.Ext_scale.sim_events;
      sc_delivered = delivered;
      sc_minor_words_per_op = words /. float_of_int (max 1 delivered);
      sc_peak_heap = peak_heap_words ();
      sc_extra = None;
    }
  in
  print_scale base;
  let (stats4, _, _), wall4, _ = gc_sampled (fun () -> at_jobs 4 (run ~shards:4)) in
  if
    stats4.Experiments.Ext_scale.delivered <> delivered
    || stats4.Experiments.Ext_scale.sim_events <> base.sc_sim_events
  then failwith (base.sc_name ^ ": shard count changed the simulation result");
  let r4 =
    {
      base with
      sc_name = Printf.sprintf "scale/1m %dx%d shards=4" regions per_region;
      sc_shards = 4;
      sc_wall_s = wall4;
      sc_peak_heap = peak_heap_words ();
      sc_extra = Some ("speedup_vs_1shard", base.sc_wall_s /. Float.max wall4 1e-9);
    }
  in
  print_scale r4;
  [ base; r4 ]

(* Shard counts 1..max_shards (powers of two) per cell; the 1-shard row
   is the baseline the speedup_vs_1shard column divides against. On a
   single-core machine the column records the barrier overhead (~1x);
   the identity guarantee means the statistics are the same either
   way, so the rows are comparable across machines. *)
let run_shard_sweep ~smoke ~max_shards () =
  let cells = if smoke then [ (4, 64) ] else [ (16, 512); (32, 1024); (64, 1600) ] in
  let msgs = if smoke then 8 else 24 in
  let burst = if smoke then 4 else 8 in
  let counts =
    let rec up s = if s > max_shards then [] else s :: up (2 * s) in
    match up 1 with [] -> [ 1 ] | l -> l
  in
  let touch =
    let members = if smoke then 256 else 20_000 in
    let t_msgs = if smoke then 8 else 32 in
    let rounds = if smoke then 2 else 4 in
    measure_soa_touch ~members ~msgs:t_msgs ~rounds
      (Printf.sprintf "scale/soa-touch %dx%d unobserved" members t_msgs)
  in
  print_scale touch;
  let overhead = measure_region_overhead () in
  print_scale overhead;
  let sweep_rows =
    List.concat_map
    (fun (regions, per_region) ->
      let counts = List.filter (fun s -> s = 1 || s <= regions) counts in
      let row ~shards ~expect =
        measure_shard_row ~regions ~per_region ~msgs ~burst ~shards ~expect
          (Printf.sprintf "scale/sharded %dx%d shards=%d" regions per_region shards)
      in
      let base = row ~shards:1 ~expect:None in
      print_scale base;
      base
      :: List.map
           (fun shards ->
             let r =
               row ~shards ~expect:(Some (base.sc_delivered, base.sc_sim_events))
             in
             let r =
               { r with
                 sc_extra =
                   Some ("speedup_vs_1shard", base.sc_wall_s /. Float.max r.sc_wall_s 1e-9) }
             in
             print_scale r;
             r)
           (List.filter (fun s -> s > 1) counts))
      cells
  in
  (touch :: overhead :: sweep_rows) @ run_1m_rows ~smoke ()

let scale_result_json r =
  Tracing.Json.Obj
    ([
       ("name", Tracing.Json.String r.sc_name);
       ("members", Tracing.Json.Int r.sc_members);
       ("quantum_ms", Tracing.Json.Float r.sc_quantum);
       ("shards", Tracing.Json.Int r.sc_shards);
       ("wall_s", Tracing.Json.Float r.sc_wall_s);
       ("sim_events", Tracing.Json.Int r.sc_sim_events);
       ( "events_per_sec",
         Tracing.Json.Float (float_of_int r.sc_sim_events /. Float.max r.sc_wall_s 1e-9) );
       ("delivered", Tracing.Json.Int r.sc_delivered);
       ("minor_words_per_op", Tracing.Json.Float r.sc_minor_words_per_op);
       ("peak_heap_words", Tracing.Json.Int r.sc_peak_heap);
     ]
    @
    match r.sc_extra with
    | Some (key, s) -> [ (key, Tracing.Json.Float s) ]
    | None -> [])

(* ------------------------------------------------------------------ *)
(* Allocation gates (BENCH_alloc.json)                                 *)
(* ------------------------------------------------------------------ *)

(* The per-path budgets live in Experiments.Alloc_paths (the same table
   test/test_alloc_gates.ml asserts under dune runtest); this component
   reports the measured words/op into the trajectory JSON and fails
   loudly if a gate is violated, so a full bench run can never publish
   numbers that the test suite would reject. *)

let alloc_result_json (r : Experiments.Alloc_paths.result) =
  Tracing.Json.Obj
    [
      ("name", Tracing.Json.String r.Experiments.Alloc_paths.name);
      ("what", Tracing.Json.String r.Experiments.Alloc_paths.what);
      ("ops", Tracing.Json.Int r.Experiments.Alloc_paths.ops);
      ( "minor_words_per_op",
        Tracing.Json.Float r.Experiments.Alloc_paths.minor_words_per_op );
      ("ns_per_op", Tracing.Json.Float r.Experiments.Alloc_paths.ns_per_op);
      ("budget_words_per_op", Tracing.Json.Float r.Experiments.Alloc_paths.budget);
      ("exact", Tracing.Json.Bool r.Experiments.Alloc_paths.exact);
    ]

let run_alloc_gates ~smoke () =
  let results = Experiments.Alloc_paths.run ~quick:smoke () in
  List.iter (fun r -> Format.printf "  %a@." Experiments.Alloc_paths.pp_result r) results;
  write_json "BENCH_alloc.json"
    (suite_json ~suite:"alloc-gates" ~smoke (List.map alloc_result_json results));
  if smoke then validate_json "BENCH_alloc.json";
  match Experiments.Alloc_paths.failures results with
  | [] -> ()
  | fs ->
    List.iter print_endline fs;
    failwith "allocation gates violated"

(* --shard-check: the sharded analogue of --det-check — the quick
   sharded scale experiments (the 10^5 sweep and the scaled-down
   ext_scale_1m spine cell, same code path as the full 2^20 run) at
   --shards 1 vs --shards 4, byte-compared (also exercised
   registry-wide by test/test_shard.ml) *)
let shard_check_one id =
  let run () =
    match Experiments.Registry.find id with
    | Some e -> render_report (e.Experiments.Registry.run ~quick:true)
    | None -> failwith ("shard-check: unknown experiment " ^ id)
  in
  let one = at_shards 1 run in
  let four = at_shards 4 run in
  if one = four then begin
    Format.printf "shard-check: %s identical at --shards 1 and 4 (%d bytes)@." id
      (String.length one);
    0
  end
  else begin
    Format.printf "shard-check: %s DIFFERS between --shards 1 and 4@." id;
    Format.printf "--- --shards 1 ---@.%s@." one;
    Format.printf "--- --shards 4 ---@.%s@." four;
    1
  end

let shard_check () =
  List.fold_left
    (fun acc id -> max acc (shard_check_one id))
    0
    [ "ext_scale_sharded"; "ext_scale_1m" ]

(* --det-check: the CI guard behind the bench-smoke alias — one
   experiment at -j 1 vs -j 4, byte-compared *)
let det_check () =
  let id = "fig8" in
  let run () =
    match Experiments.Registry.find id with
    | Some e -> render_report (e.Experiments.Registry.run ~quick:true)
    | None -> failwith ("det-check: unknown experiment " ^ id)
  in
  let seq = at_jobs 1 run in
  let par = at_jobs 4 run in
  if seq = par then begin
    Format.printf "det-check: %s identical at -j 1 and -j 4 (%d bytes)@." id
      (String.length seq);
    0
  end
  else begin
    Format.printf "det-check: %s DIFFERS between -j 1 and -j 4@." id;
    Format.printf "--- -j 1 ---@.%s@." seq;
    Format.printf "--- -j 4 ---@.%s@." par;
    1
  end

let bench ~smoke ~jobs ~max_shards () =
  Format.printf "=====================================================================@.";
  Format.printf " Bechamel microbenchmarks (monotonic clock per run)@.";
  Format.printf "=====================================================================@.";
  let engine = run_benches ~smoke engine_benches in
  let micro = run_benches ~smoke macro_benches in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Macro protocol workloads@.";
  Format.printf "---------------------------------------------------------------------@.";
  let macros = run_macros ~smoke () in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Protocol-state data structures (before/after)@.";
  Format.printf "---------------------------------------------------------------------@.";
  let states = run_state ~smoke () in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Parallel experiment runner (deterministic; -j %d)@." jobs;
  Format.printf "---------------------------------------------------------------------@.";
  let parallels = run_parallel ~smoke ~jobs () in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Scale sweep: deadline rings vs per-message timers@.";
  Format.printf "---------------------------------------------------------------------@.";
  let scales = run_scale ~smoke () in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Region-sharded sweep (members x shards, max %d shards)@." max_shards;
  Format.printf "---------------------------------------------------------------------@.";
  let scales = scales @ run_shard_sweep ~smoke ~max_shards () in
  Format.printf "---------------------------------------------------------------------@.";
  Format.printf " Allocation gates (minor words per hot-path op)@.";
  Format.printf "---------------------------------------------------------------------@.";
  run_alloc_gates ~smoke ();
  write_json "BENCH_engine.json"
    (suite_json ~suite:"engine" ~smoke (List.rev_map bench_result_json engine));
  write_json "BENCH_protocol.json"
    (suite_json ~suite:"protocol" ~smoke
       (List.rev_map bench_result_json micro @ List.map macro_result_json macros));
  write_json "BENCH_state.json"
    (suite_json ~suite:"protocol-state" ~smoke (List.map state_result_json states));
  write_json "BENCH_parallel.json"
    (suite_json ~suite:"parallel" ~smoke (List.map parallel_result_json parallels));
  write_json "BENCH_scale.json"
    (suite_json ~suite:"scale" ~smoke (List.map scale_result_json scales));
  if smoke then begin
    validate_json "BENCH_engine.json";
    validate_json "BENCH_protocol.json";
    validate_json "BENCH_state.json";
    validate_json "BENCH_parallel.json";
    validate_json "BENCH_scale.json"
  end

let () =
  let argv = Sys.argv in
  let jobs = ref 4 in
  let max_shards = ref 4 in
  Array.iteri
    (fun i a ->
      if (a = "-j" || a = "--jobs") && i + 1 < Array.length argv then
        match int_of_string_opt argv.(i + 1) with
        | Some n when n >= 2 -> jobs := n
        | _ -> failwith ("bad -j value: " ^ argv.(i + 1))
      else if (a = "-s" || a = "--shards") && i + 1 < Array.length argv then
        match int_of_string_opt argv.(i + 1) with
        | Some n when n >= 1 -> max_shards := n
        | _ -> failwith ("bad --shards value: " ^ argv.(i + 1)))
    argv;
  if Array.exists (String.equal "--det-check") argv then exit (det_check ())
  else if Array.exists (String.equal "--shard-check") argv then exit (shard_check ())
  else if Array.exists (String.equal "--alloc-gates") argv then
    (* just the per-path allocation gates + BENCH_alloc.json; --smoke
       shrinks the op counts (budgets are identical) *)
    run_alloc_gates ~smoke:(Array.exists (String.equal "--smoke") argv) ()
  else if Array.exists (String.equal "--net") argv then begin
    (* real-traffic backend: RRMP over UDP loopback through the binary
       codec + the codec micro-benchmarks, into BENCH_net.json *)
    let smoke = Array.exists (String.equal "--smoke") argv in
    write_json "BENCH_net.json" (suite_json ~suite:"net" ~smoke (Net_bench.run ~smoke ()));
    if smoke then validate_json "BENCH_net.json"
  end
  else if Array.exists (String.equal "--scale-only") argv then begin
    (* just the ring-vs-timers + sharded sweeps + their JSON, for quick
       iteration *)
    let smoke = Array.exists (String.equal "--smoke") argv in
    let scales = run_scale ~smoke () @ run_shard_sweep ~smoke ~max_shards:!max_shards () in
    write_json "BENCH_scale.json"
      (suite_json ~suite:"scale" ~smoke (List.map scale_result_json scales))
  end
  else begin
    let smoke = Array.exists (String.equal "--smoke") argv in
    if not smoke then reproduce ();
    bench ~smoke ~jobs:!jobs ~max_shards:!max_shards ()
  end
