(* rrmp_lint typed layer: a whole-program pass over the compiler's
   .cmt output (Cmt_format + Tast_iterator, zero dependencies beyond
   compiler-libs). Where the Parsetree layer sees tokens, this layer
   sees types and crosses module boundaries: it builds an intra-repo
   call graph and enforces three rule families the textual pass cannot
   express.

   P  parallel/domain-safety — closures handed to the configured task
      spawners ([p] roots in lint.toml: [Pool.parallel_for],
      [Shard.run], [Runner.par_*], [Sim.schedule*], ...) may run on a
      pool worker domain. Everything reachable from those closures
      through the call graph is "task scope"; inside task scope, any
      read or write of *module-level* mutable state — a top-level
      [ref], a mutable record field of a top-level value, a
      module-scope [Hashtbl]/functor [Table] — is a potential data
      race the single-core container can never exercise, and is
      flagged unless the state is an [Atomic.t] (atomic ops never
      match the access patterns), per-domain-indexed, or audited with
      [@lint.allow "P ..."]. Aliased state (a ref passed as an
      argument) is out of scope: the rule guards the state a module
      *owns*, which is where unsynchronized sharing hides.

   E  exception-safety — a function marked [@lint.never_raise] must
      not *transitively* reach [raise]/[failwith]/[invalid_arg], a
      known [Not_found]-raising lookup ([Hashtbl.find], [List.find],
      functor-made [Table.find], any [Unix.] syscall), or a refutable
      match (the Typedtree records partiality), checked over the call
      graph. A raising site is cleared when it sits under a local
      catch — a [try] body or the scrutinee of a [match] with an
      [exception] arm (the repo's find-with-exception idiom) — or
      under an audited [@lint.allow "E ..."]. Bounds checks
      ([Array.get], [String.get]) and calls through function-typed
      parameters are out of scope by design: the first would flag
      every index, the second is the caller's contract.

   A  typed allocation — on the exactly-0.0-gated modules ([a] files
      in lint.toml) the typed layer supersedes the textual H2
      heuristics: a call to an intra-repo function whose result type
      is [float] boxes the return; a closure that captures locals
      inside a [for]/[while] loop allocates per iteration (closed
      closures are statically allocated and stay silent); a function
      parameter typed as a bigarray that is still polymorphic in kind
      or layout compiles every access to the generic dispatch
      primitive (the 8x monomorphization lesson); and [Some]/tuple
      construction or an option-boxing [find_opt]-family lookup
      allocates on the gated path. Constructor arguments are typed
      nodes here, so the Parsetree construct-of-tuple ambiguity does
      not exist.

   Suppressions use the same [@lint.allow "RULE why"] grammar as the
   textual layer and land in the same audit trail. *)

open Typedtree
module Config = Lint_config

type finding = Lint_core.finding

type suppression = Lint_core.suppression

type stats = {
  units : int;  (* cmt files analyzed *)
  defs : int;  (* structure-level value bindings in the graph *)
  edges : int;  (* resolved def-to-def references *)
  task_roots : int;  (* defs rooted as parallel-task entry points *)
  task_reachable : int;  (* defs reachable from any task root *)
  never_raise_defs : int;  (* defs carrying [@lint.never_raise] *)
}

type result = {
  findings : finding list;
  suppressed : finding list;
  suppressions : suppression list;
  graph_edges : (string * string) list;  (* caller key, callee key *)
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Rule tables                                                         *)
(* ------------------------------------------------------------------ *)

let raise_prims = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* last-two suffixes [Mod.fn] that raise on miss/empty *)
let raising_lookups =
  [
    ("Hashtbl", "find"); ("Table", "find"); ("Tbl", "find");
    ("List", "find"); ("List", "hd"); ("List", "tl"); ("List", "nth"); ("List", "assoc");
    ("Option", "get"); ("Stack", "pop"); ("Stack", "top");
    ("Queue", "pop"); ("Queue", "peek"); ("Queue", "take");
  ]

(* container modules whose ops on a module-level value are P accesses *)
let container_mods = [ "Hashtbl"; "Table"; "Tbl"; "Queue"; "Stack"; "Buffer" ]

let deref_ops = [ "!"; ":="; "incr"; "decr" ]

let array_writes = [ "Array.set"; "Array.unsafe_set"; "Bytes.set"; "Bytes.unsafe_set"; "Array.fill"; "Bytes.fill" ]

let opt_lookups = [ "find_opt"; "assoc_opt"; "nth_opt" ]

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* "Rrmp__Buffer" -> "Buffer"; "Rrmp__" -> ""; "Fx_glob" -> "Fx_glob" *)
let strip_wrapper c =
  let n = String.length c in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if c.[i] = '_' && c.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | None -> c
  | Some j -> String.sub c j (n - j)

let rec flat_path = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flat_path p @ [ s ]
  | Path.Papply (p, _) -> flat_path p
  | Path.Pextra_ty (p, _) -> flat_path p

let normalize_components comps =
  List.filter_map
    (fun c ->
      let c' = strip_wrapper c in
      if c' = "" then None else Some c')
    comps

let dotted = String.concat "."

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

(* findings carry the path as the compiler recorded it (relative to
   the build root for dune-built units) *)
let file_of (loc : Location.t) =
  let f = loc.loc_start.pos_fname in
  if String.starts_with ~prefix:"./" f then String.sub f 2 (String.length f - 2) else f

(* ------------------------------------------------------------------ *)
(* Graph model                                                         *)
(* ------------------------------------------------------------------ *)

type site =
  | Edge of { callee : string; caught : bool; loc : Location.t }
  | Raises of { what : string; caught : bool; loc : Location.t }

type access = {
  a_file : string;
  a_line : int;
  a_col : int;
  a_what : string;  (* rendered description *)
}

type def = {
  key : string;
  d_file : string;
  d_line : int;
  d_size : int;  (* body node count; proxy for ocamlopt inlinability *)
  never_raise : bool;
  mutable sites : site list;
  mutable accesses : access list;
  mutable may_raise : bool;
  mutable witness : site option;  (* first site that made may_raise true *)
}

type unit_info = {
  u_name : string;  (* normalized unit module name, e.g. "Buffer" *)
  u_file : string;  (* source path, e.g. "lib/rrmp/buffer.ml" *)
  u_str : structure;
  u_stamps : (string, string) Hashtbl.t;  (* Ident.unique_name -> def key *)
}

type graph = {
  cfg : Config.t;
  defs : (string, def) Hashtbl.t;  (* def key -> def *)
  by_loc : (string * int * int, def) Hashtbl.t;  (* vb_loc -> def *)
  roots : (string, unit) Hashtbl.t;  (* task-rooted def keys *)
  mutable task_accesses : access list;  (* accesses inside root closures *)
  mutable spans : suppression list;
  mutable raw_a : finding list;  (* A findings, suppression not yet applied *)
}

let add_span g ~file ~line ~rule ~just ~lo ~hi =
  g.spans <-
    { Lint_core.s_file = file; s_line = line; s_rule = rule; s_just = just; s_lo = lo; s_hi = hi }
    :: g.spans

(* [@lint.allow "RULE why"] / [@lint.never_raise] — malformed allow
   payloads are the textual layer's S1 business; here they are skipped *)
let scan_attrs g (attrs : Parsetree.attributes) ~(scope : Location.t) =
  let never = ref false in
  List.iter
    (fun (a : Parsetree.attribute) ->
      let aname = a.Parsetree.attr_name.Location.txt in
      if aname = "lint.never_raise" then never := true
      else if aname = "lint.allow" then
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Parsetree.Pstr_eval
                    ( { pexp_desc = Parsetree.Pexp_constant (Parsetree.Pconst_string (text, _, _)); _ },
                      _ );
                _;
              };
            ] -> (
          let text = String.trim text in
          match String.index_opt text ' ' with
          | None -> ()
          | Some i ->
            let rule = String.sub text 0 i in
            let just = String.trim (String.sub text i (String.length text - i)) in
            if List.mem rule Lint_core.known_rules && just <> "" then
              add_span g
                ~file:(file_of a.Parsetree.attr_loc)
                ~line:(line_of a.Parsetree.attr_loc)
                ~rule ~just ~lo:scope.loc_start.pos_lnum ~hi:scope.loc_end.pos_lnum)
        | _ -> ())
    attrs;
  !never

(* ------------------------------------------------------------------ *)
(* Pass 1: collect structure-level value bindings as graph nodes       *)
(* ------------------------------------------------------------------ *)

let loc_key (loc : Location.t) = (file_of loc, line_of loc, col_of loc)

(* tiny callees (accessors, one-expression wrappers) are inlined by
   ocamlopt even without flambda, which unboxes their float results —
   the measured exactly-0.0 gates prove it. A-float only fires for
   callees above this body-size estimate, where the call (and the
   boxed return) survives to the generated code. *)
let a1_inline_threshold = 16

let expr_size e =
  let n = ref 0 in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          incr n;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !n

let collect_defs g (u : unit_info) =
  let anon = ref 0 in
  let rec str_items prefix items =
    List.iter
      (fun it ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                match vb.vb_pat.pat_desc with
                | Tpat_var (_, n) -> n.txt
                | Tpat_alias (_, _, n) -> n.txt
                | _ ->
                  incr anon;
                  Printf.sprintf "<init:%d>" !anon
              in
              let key = dotted (prefix @ [ name ]) in
              (* pattern-attached allows ([let f [@lint.allow ...] =])
                 scope over the whole binding, as in the textual pass *)
              ignore (scan_attrs g vb.vb_pat.pat_attributes ~scope:vb.vb_loc : bool);
              let never = scan_attrs g vb.vb_attributes ~scope:vb.vb_loc in
              let d =
                {
                  key;
                  d_file = u.u_file;
                  d_line = line_of vb.vb_loc;
                  d_size = expr_size vb.vb_expr;
                  never_raise = never;
                  sites = [];
                  accesses = [];
                  may_raise = false;
                  witness = None;
                }
              in
              (* first definition of a key wins; duplicates (shadowed
                 bindings) keep their own node under a stamped key so
                 sites are never attributed to the wrong body *)
              let key =
                if Hashtbl.mem g.defs key then begin
                  let k' = Printf.sprintf "%s'%d" key (line_of vb.vb_loc) in
                  k'
                end
                else key
              in
              let d = { d with key } in
              Hashtbl.replace g.defs key d;
              Hashtbl.replace g.by_loc (loc_key vb.vb_loc) d;
              (match vb.vb_pat.pat_desc with
               | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
                 Hashtbl.replace u.u_stamps (Ident.unique_name id) key
               | _ -> ()))
            vbs
        | Tstr_module mb -> module_binding prefix mb
        | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
        | Tstr_attribute a ->
          ignore
            (scan_attrs g [ a ]
               ~scope:
                 {
                   it.str_loc with
                   loc_start = { it.str_loc.loc_start with pos_lnum = 1 };
                   loc_end = { it.str_loc.loc_end with pos_lnum = max_int };
                 })
        | _ -> ())
      items
  and module_binding prefix mb =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec mexpr prefix me =
      match me.mod_desc with
      | Tmod_structure s -> str_items prefix s.str_items
      | Tmod_constraint (me, _, _, _) -> mexpr prefix me
      | Tmod_functor (_, me) -> mexpr prefix me
      | _ -> ()
    in
    mexpr (prefix @ [ name ]) mb.mb_expr
  in
  str_items [ u.u_name ] u.u_str.str_items

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

type resolved =
  | Rdef of string  (* a structure-level binding somewhere in the repo *)
  | Rexternal of string  (* normalized dotted name outside the repo *)
  | Rlocal  (* a local binding of the current function *)

(* drop leading components until the remainder names a def; defs keys
   start with their unit name, so the longest suffix match is the
   definition the typer resolved to *)
let resolve_suffix g comps =
  let rec go = function
    | [] -> None
    | l -> (
      match Hashtbl.find_opt g.defs (dotted l) with
      | Some d -> Some d.key
      | None -> go (List.tl l))
  in
  go comps

let resolve g (u : unit_info) path =
  match path with
  | Path.Pident id -> (
    match Hashtbl.find_opt u.u_stamps (Ident.unique_name id) with
    | Some key -> Rdef key
    | None -> Rlocal)
  | _ -> (
    let comps = flat_path path in
    match comps with
    | "Stdlib" :: rest -> Rexternal (dotted rest)
    | _ -> (
      let comps = normalize_components comps in
      (* same-unit submodule references arrive without the unit name *)
      match resolve_suffix g comps with
      | Some key -> Rdef key
      | None -> (
        match resolve_suffix g (u.u_name :: comps) with
        | Some key -> Rdef key
        | None -> Rexternal (dotted comps))))

let resolved_name = function Rdef k -> k | Rexternal n -> n | Rlocal -> ""

let suffix_matches ~pat name = name = pat || ends_with ~suffix:("." ^ pat) name

let last_two name =
  match List.rev (String.split_on_char '.' name) with
  | f :: m :: _ -> Some (m, f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Type predicates                                                     *)
(* ------------------------------------------------------------------ *)

let rec is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | Types.Tpoly (t, _) -> is_float t
  | _ -> false

let rec is_option ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_option
  | Types.Tpoly (t, _) -> is_option t
  | _ -> false

let is_tyvar ty =
  match Types.get_desc ty with Types.Tvar _ | Types.Tunivar _ -> true | _ -> false

let bigarray_suffixes = [ "Array1.t"; "Array2.t"; "Array3.t"; "Genarray.t" ]

let rec generic_bigarray ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    let n = Path.name p in
    (List.exists (fun s -> ends_with ~suffix:s n) bigarray_suffixes
     && List.exists is_tyvar args)
    || List.exists generic_bigarray args
  | Types.Ttuple ts -> List.exists generic_bigarray ts
  | _ -> false

let rec arrow_params ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> a :: arrow_params b
  | Types.Tpoly (t, _) -> arrow_params t
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Pass 2: per-unit body walk                                          *)
(* ------------------------------------------------------------------ *)

type walk_state = {
  g : graph;
  u : unit_info;
  mutable cur : def option;  (* structure-level def whose body we are in *)
  mutable catch : int;  (* > 0 inside a local catch context *)
  mutable loops : int;  (* > 0 inside a for/while body *)
  mutable task : int;  (* > 0 inside an argument of a [p] root callsite *)
}

let in_a_file st = Lint_core.in_files st.u.u_file st.g.cfg.Config.a_files

let add_a st ~loc ~message ~hint =
  st.g.raw_a <-
    {
      Lint_core.file = st.u.u_file;
      line = line_of loc;
      col = col_of loc;
      rule = "A";
      message;
      hint;
    }
    :: st.g.raw_a

let record_site st s =
  (match st.cur with Some d -> d.sites <- s :: d.sites | None -> ());
  (* inside a task closure the callee is directly task-rooted *)
  if st.task > 0 then
    match s with
    | Edge { callee; _ } -> Hashtbl.replace st.g.roots callee ()
    | Raises _ -> ()

let record_access st ~loc what =
  let a = { a_file = st.u.u_file; a_line = line_of loc; a_col = col_of loc; a_what = what } in
  if st.task > 0 then st.g.task_accesses <- a :: st.g.task_accesses
  else match st.cur with Some d -> d.accesses <- a :: d.accesses | None -> ()

(* is [e] a reference to a structure-level (module-level) value? *)
let global_operand st e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match resolve st.g st.u p with
    | Rdef key -> Some key
    | Rexternal _ | Rlocal -> None)
  | _ -> None

let rec pat_bound_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (sub, id, _) -> id :: pat_bound_idents sub
  | Tpat_tuple ps -> List.concat_map pat_bound_idents ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_bound_idents ps
  | Tpat_variant (_, Some sub, _) -> pat_bound_idents sub
  | Tpat_record (fields, _) -> List.concat_map (fun (_, _, sub) -> pat_bound_idents sub) fields
  | Tpat_array ps -> List.concat_map pat_bound_idents ps
  | Tpat_lazy sub -> pat_bound_idents sub
  | Tpat_or (a, b, _) -> pat_bound_idents a @ pat_bound_idents b
  | Tpat_value v -> pat_bound_idents (v :> value general_pattern)
  | Tpat_exception sub -> pat_bound_idents sub
  | _ -> []

let rec comp_pat_has_exn : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_exception _ -> true
  | Tpat_or (a, b, _) -> comp_pat_has_exn a || comp_pat_has_exn b
  | _ -> false

(* free local idents of [e]: referenced stamps minus stamps bound
   within, minus structure-level bindings — a non-empty set means the
   closure captures and therefore allocates per evaluation *)
let captures_locals st e =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let free = ref false in
  let it =
    let open Tast_iterator in
    {
      default_iterator with
      pat =
        (fun (type k) it (p : k general_pattern) ->
          List.iter (fun id -> Hashtbl.replace bound (Ident.unique_name id) ()) (pat_bound_idents p);
          default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.exp_desc with
           | Texp_ident (Path.Pident id, _, _) ->
             let un = Ident.unique_name id in
             if
               (not (Hashtbl.mem bound un))
               && not (Hashtbl.mem st.u.u_stamps un)
             then free := true
           | Texp_function { param; _ } ->
             Hashtbl.replace bound (Ident.unique_name param) ()
           | Texp_for (id, _, _, _, _, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
           | _ -> ());
          default_iterator.expr it e);
    }
  in
  (match e.exp_desc with
   | Texp_function { param; _ } -> Hashtbl.replace bound (Ident.unique_name param) ()
   | _ -> ());
  it.expr it e;
  !free

let walk_unit g (u : unit_info) =
  let st = { g; u; cur = None; catch = 0; loops = 0; task = 0 } in
  let open Tast_iterator in
  let rec iterator =
    {
      default_iterator with
      value_binding =
        (fun it vb ->
          ignore (scan_attrs g vb.vb_attributes ~scope:vb.vb_loc : bool);
          ignore (scan_attrs g vb.vb_pat.pat_attributes ~scope:vb.vb_loc : bool);
          (* A3: a (possibly local) function whose bigarray parameter
             is still generic in kind/layout *)
          if in_a_file st then begin
            let params = arrow_params vb.vb_pat.pat_type in
            if params <> [] && List.exists generic_bigarray params then
              add_a st ~loc:vb.vb_loc
                ~message:
                  "bigarray parameter is polymorphic in kind or layout — every access \
                   compiles to the generic dispatch primitive"
                ~hint:
                  "annotate the parameter with the concrete bigarray type (the measured 8x \
                   of the codec monomorphization)"
          end;
          match Hashtbl.find_opt g.by_loc (loc_key vb.vb_loc) with
          | Some d ->
            let saved = st.cur in
            st.cur <- Some d;
            default_iterator.value_binding it vb;
            st.cur <- saved
          | None -> default_iterator.value_binding it vb);
      expr = (fun it e -> expr it e);
    }
  and expr it e =
    ignore (scan_attrs g e.exp_attributes ~scope:e.exp_loc : bool);
    match e.exp_desc with
    | Texp_ident (p, _, _) -> (
      match resolve g u p with
      | Rdef key -> record_site st (Edge { callee = key; caught = st.catch > 0; loc = e.exp_loc })
      | Rlocal ->
        (* a locally-bound function handed to a task spawner: its body
           was attributed to the enclosing def, so root that def —
           conservative, and exactly right for [Shard.run]'s local
           [step] closure *)
        if st.task > 0 && arrow_params e.exp_type <> [] then (
          match st.cur with
          | Some d -> Hashtbl.replace g.roots d.key ()
          | None -> ())
      | Rexternal _ -> ())
    | Texp_apply (fn, args) -> apply it e fn args
    | Texp_try (body, cases) ->
      st.catch <- st.catch + 1;
      it.expr it body;
      st.catch <- st.catch - 1;
      List.iter (case it) cases
    | Texp_match (scrut, cases, partial) ->
      let catches = List.exists (fun c -> comp_pat_has_exn c.c_lhs) cases in
      if catches then begin
        st.catch <- st.catch + 1;
        it.expr it scrut;
        st.catch <- st.catch - 1
      end
      else it.expr it scrut;
      if partial = Partial then
        record_site st (Raises { what = "refutable match (Match_failure)"; caught = st.catch > 0; loc = e.exp_loc });
      List.iter (case it) cases
    | Texp_function { cases; partial; _ } ->
      if partial = Partial then
        record_site st
          (Raises { what = "refutable function cases (Match_failure)"; caught = st.catch > 0; loc = e.exp_loc });
      if in_a_file st && st.loops > 0 && st.task = 0 && captures_locals st e then
        add_a st ~loc:e.exp_loc
          ~message:"closure capturing locals inside a hot loop allocates on every iteration"
          ~hint:"hoist the closure out of the loop or pass the loop state as arguments";
      List.iter (case it) cases
    | Texp_for (_, _, lo, hi, _, body) ->
      it.expr it lo;
      it.expr it hi;
      st.loops <- st.loops + 1;
      it.expr it body;
      st.loops <- st.loops - 1
    | Texp_while (cond, body) ->
      it.expr it cond;
      st.loops <- st.loops + 1;
      it.expr it body;
      st.loops <- st.loops - 1
    | Texp_field (r, _, lbl) ->
      (if lbl.Types.lbl_mut = Asttypes.Mutable then
         match global_operand st r with
         | Some key ->
           record_access st ~loc:e.exp_loc
             (Printf.sprintf "read of mutable field %s.%s" key lbl.Types.lbl_name)
         | None -> ());
      default_iterator.expr it e
    | Texp_setfield (r, _, lbl, v) ->
      (match global_operand st r with
       | Some key ->
         record_access st ~loc:e.exp_loc
           (Printf.sprintf "write to mutable field %s.%s" key lbl.Types.lbl_name)
       | None -> ());
      it.expr it r;
      it.expr it v
    | Texp_construct (_, ctor, args) ->
      if in_a_file st && ctor.Types.cstr_name = "Some" && args <> [] then
        add_a st ~loc:e.exp_loc
          ~message:"Some construction boxes the value on the gated path"
          ~hint:
            "restructure so the steady state carries the value unboxed (exception arm, \
             sentinel, or a dedicated field)";
      default_iterator.expr it e
    | Texp_tuple _ ->
      if in_a_file st then
        add_a st ~loc:e.exp_loc
          ~message:"tuple construction allocates a block on the gated path"
          ~hint:"pass the components separately or pack them into an existing record/int";
      default_iterator.expr it e
    | Texp_assert _ ->
      (* assert false and failing asserts raise Assert_failure *)
      record_site st (Raises { what = "assert (Assert_failure)"; caught = st.catch > 0; loc = e.exp_loc });
      default_iterator.expr it e
    | _ -> default_iterator.expr it e
  and case : 'k. Tast_iterator.iterator -> 'k case -> unit =
   fun it c ->
    iterator.pat it c.c_lhs;
    (match c.c_guard with Some gexp -> it.expr it gexp | None -> ());
    it.expr it c.c_rhs
  and apply it e fn args =
    let fname =
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> (
        match resolve g u p with
        | Rdef key ->
          record_site st (Edge { callee = key; caught = st.catch > 0; loc = fn.exp_loc });
          Some (Rdef key)
        | r -> Some r)
      | _ -> None
    in
    let name = match fname with Some r -> resolved_name r | None -> "" in
    (* E: raising primitives and known-raising externals *)
    (match fname with
     | Some (Rexternal n) ->
       if List.mem n raise_prims then
         record_site st (Raises { what = n; caught = st.catch > 0; loc = e.exp_loc })
       else if String.length n >= 5 && String.sub n 0 5 = "Unix." then
         record_site st
           (Raises { what = n ^ " (Unix_error)"; caught = st.catch > 0; loc = e.exp_loc })
       else (
         match last_two n with
         | Some (m, f) when List.mem (m, f) raising_lookups ->
           record_site st
             (Raises { what = n ^ " (raises on miss)"; caught = st.catch > 0; loc = e.exp_loc })
         | _ -> ())
     | _ -> ());
    (* P: deref/assign of a module-level ref *)
    (match fname with
     | Some (Rexternal op) when List.mem op deref_ops -> (
       match args with
       | (_, Some a0) :: _ -> (
         match global_operand st a0 with
         | Some key ->
           let verb = if op = "!" then "read" else "write" in
           record_access st ~loc:e.exp_loc
             (Printf.sprintf "%s of module-level ref %s via ( %s )" verb key op)
         | None -> ())
       | _ -> ())
     | _ -> ());
    (* P: container ops and array/bytes writes on module-level values *)
    (let container_hit =
       match last_two name with
       | Some (m, _) when List.mem m container_mods -> true
       | _ -> List.mem name array_writes
     in
     if container_hit then
       List.iter
         (fun (_, a) ->
           match a with
           | Some a -> (
             match global_operand st a with
             | Some key ->
               record_access st ~loc:e.exp_loc
                 (Printf.sprintf "%s on module-level container %s" name key)
             | None -> ())
           | None -> ())
         args);
    (* A: intra-repo call whose float result boxes on return (tiny
       callees are inlined and unboxed; see a1_inline_threshold) *)
    (match fname with
     | Some (Rdef callee) when in_a_file st && is_float e.exp_type -> (
       match Hashtbl.find_opt g.defs callee with
       | Some c when c.d_size > a1_inline_threshold ->
         add_a st ~loc:e.exp_loc
           ~message:
             (Printf.sprintf "float result of %s crosses a function boundary (boxed return)"
                callee)
           ~hint:"open-code the computation or return the float through a preallocated cell"
       | _ -> ())
     | _ -> ());
    (* A: option-boxing lookups *)
    (if in_a_file st && is_option e.exp_type then
       match last_two name with
       | Some (_, f) when List.mem f opt_lookups ->
         add_a st ~loc:e.exp_loc
           ~message:(Printf.sprintf "%s allocates a Some box on every hit" name)
           ~hint:"use find with an [exception Not_found ->] arm on the gated path"
       | _ -> ());
    (* P roots: arguments of a task spawner are task closures *)
    let rooted =
      List.exists (fun pat -> suffix_matches ~pat name) g.cfg.Config.p_roots && name <> ""
    in
    if rooted then begin
      st.task <- st.task + 1;
      List.iter (fun (_, a) -> match a with Some a -> it.expr it a | None -> ()) args;
      st.task <- st.task - 1
    end
    else List.iter (fun (_, a) -> match a with Some a -> it.expr it a | None -> ()) args;
    match fn.exp_desc with
    | Texp_ident _ -> ()  (* already recorded *)
    | _ -> it.expr it fn
  in
  iterator.structure iterator u.u_str

(* ------------------------------------------------------------------ *)
(* Fixpoints                                                           *)
(* ------------------------------------------------------------------ *)

let covering_span g ~rule ~file ~line =
  List.exists
    (fun (s : suppression) ->
      s.Lint_core.s_rule = rule && s.s_file = file && line >= s.s_lo && line <= s.s_hi)
    g.spans

(* mark E sites under an audited span as caught (both direct raises and
   calls into raising defs); marking rather than dropping keeps the
   edges visible to the P reachability walk. Returns the audit trail. *)
let prune_suppressed_sites g =
  let dropped = ref [] in
  let note what loc =
    dropped :=
      {
        Lint_core.file = file_of loc;
        line = line_of loc;
        col = col_of loc;
        rule = "E";
        message = "audited raising site: " ^ what;
        hint = "covered by [@lint.allow \"E ...\"]";
      }
      :: !dropped
  in
  Hashtbl.iter
    (fun _ d ->
      d.sites <-
        List.map
          (fun s ->
            match s with
            | Raises { what; caught = false; loc }
              when covering_span g ~rule:"E" ~file:(file_of loc) ~line:(line_of loc) ->
              note what loc;
              Raises { what; caught = true; loc }
            | Edge { callee; caught = false; loc }
              when covering_span g ~rule:"E" ~file:(file_of loc) ~line:(line_of loc) ->
              note ("call to " ^ callee) loc;
              Edge { callee; caught = true; loc }
            | s -> s)
          d.sites)
    g.defs;
  !dropped

let compute_may_raise g =
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ d ->
        if not d.may_raise then begin
          let hit =
            List.find_opt
              (fun s ->
                match s with
                | Raises { caught = false; _ } -> true
                | Edge { callee; caught = false; _ } -> (
                  match Hashtbl.find_opt g.defs callee with
                  | Some c -> c.may_raise
                  | None -> false)
                | _ -> false)
              (List.rev d.sites)
          in
          match hit with
          | Some s ->
            d.may_raise <- true;
            d.witness <- Some s;
            changed := true
          | None -> ()
        end)
      g.defs
  done

let compute_reachable g =
  let reach : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  Hashtbl.iter (fun k () -> Queue.add k queue) g.roots;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    if not (Hashtbl.mem reach k) then begin
      Hashtbl.replace reach k ();
      match Hashtbl.find_opt g.defs k with
      | Some d ->
        List.iter
          (fun s -> match s with Edge { callee; _ } -> Queue.add callee queue | Raises _ -> ())
          d.sites
      | None -> ()
    end
  done;
  reach

let rec witness_chain g d depth acc =
  if depth > 8 then List.rev ("..." :: acc)
  else
    match d.witness with
    | None -> List.rev acc
    | Some (Raises { what; loc; _ }) ->
      List.rev (Printf.sprintf "%s at %s:%d" what (file_of loc) (line_of loc) :: acc)
    | Some (Edge { callee; _ }) -> (
      match Hashtbl.find_opt g.defs callee with
      | Some c -> witness_chain g c (depth + 1) (callee :: acc)
      | None -> List.rev acc)

(* ------------------------------------------------------------------ *)
(* cmt discovery and loading                                           *)
(* ------------------------------------------------------------------ *)

let rec walk_dir root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  if not (Sys.file_exists abs) then acc
  else if Sys.is_directory abs then begin
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        let child = if rel = "" then name else rel ^ "/" ^ name in
        walk_dir root child acc)
      acc entries
  end
  else if Filename.check_suffix rel ".cmt" then rel :: acc
  else acc

(* Discovery order (documented in tools/lint/README): for each [typed]
   dir D in lint.toml order, first D itself (fresh when running inside
   the dune build context, whose cwd is _build/default), then
   _build/default/D (running from the workspace root). The first
   prefix that yields any .cmt wins for that dir; within a dir the
   walk is sorted so reports are stable. *)
let discover_cmts ?(root = ".") (cfg : Config.t) =
  List.concat_map
    (fun dir ->
      let direct = List.rev (walk_dir root dir []) in
      if direct <> [] then List.map (fun f -> Filename.concat root f) direct
      else
        let under = Filename.concat "_build/default" dir in
        List.rev_map (fun f -> Filename.concat root f) (walk_dir root under [])
        |> List.rev)
    cfg.Config.typed_dirs

let load_unit g path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | info -> (
    match info.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      let raw = info.Cmt_format.cmt_modname in
      let name =
        let n = strip_wrapper raw in
        if n = "" then raw else n
      in
      let file =
        match info.Cmt_format.cmt_sourcefile with
        | Some f ->
          if String.starts_with ~prefix:"./" f then String.sub f 2 (String.length f - 2)
          else f
        | None -> raw
      in
      if Lint_core.in_dirs file g.cfg.Config.exclude then None
      else Some { u_name = name; u_file = file; u_str = str; u_stamps = Hashtbl.create 64 }
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let compare_findings = Lint_core.compare_findings

let analyze ?(root = ".") (cfg : Config.t) ~cmts =
  ignore root;
  let g =
    {
      cfg;
      defs = Hashtbl.create 512;
      by_loc = Hashtbl.create 512;
      roots = Hashtbl.create 64;
      task_accesses = [];
      spans = [];
      raw_a = [];
    }
  in
  let units = List.filter_map (load_unit g) cmts in
  List.iter (fun u -> collect_defs g u) units;
  List.iter (fun u -> walk_unit g u) units;
  let suppressed_sites = prune_suppressed_sites g in
  compute_may_raise g;
  let reach = compute_reachable g in
  (* E findings: annotated defs that may raise *)
  let e_findings = ref [] in
  let annotated = ref 0 in
  Hashtbl.iter
    (fun _ d ->
      if d.never_raise then begin
        incr annotated;
        if d.may_raise then
          e_findings :=
            {
              Lint_core.file = d.d_file;
              line = d.d_line;
              col = 0;
              rule = "E";
              message =
                Printf.sprintf "[@lint.never_raise] %s can raise: %s" d.key
                  (String.concat " -> " (witness_chain g d 0 [ d.key ]));
              hint =
                "catch locally (try / match-with-exception arm), restructure, or audit the \
                 site with [@lint.allow \"E ...\"]";
            }
            :: !e_findings
      end)
    g.defs;
  (* P findings: module-state accesses in task-reachable defs *)
  let p_raw = ref [] in
  let add_p (a : access) ctx =
    if Lint_core.in_dirs a.a_file cfg.Config.p_dirs || cfg.Config.p_dirs = [ "" ] then
      p_raw :=
        {
          Lint_core.file = a.a_file;
          line = a.a_line;
          col = a.a_col;
          rule = "P";
          message = Printf.sprintf "%s%s" a.a_what ctx;
          hint =
            "make it Atomic.t, index it per worker domain, or audit the invariant with \
             [@lint.allow \"P ...\"]";
        }
        :: !p_raw
  in
  List.iter (fun a -> add_p a " inside a parallel task closure") g.task_accesses;
  Hashtbl.iter
    (fun key d ->
      if Hashtbl.mem reach key then
        List.iter (fun a -> add_p a (Printf.sprintf " on a task-reachable path (%s)" key)) d.accesses)
    g.defs;
  (* suppression spans apply uniformly over P/E/A findings *)
  let split rule raw =
    List.partition
      (fun (f : finding) -> not (covering_span g ~rule ~file:f.Lint_core.file ~line:f.line))
      raw
  in
  let p_keep, p_drop = split "P" !p_raw in
  let e_keep, e_drop = split "E" !e_findings in
  let a_keep, a_drop = split "A" g.raw_a in
  let dedupe fs =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (f : finding) ->
        let k = (f.Lint_core.file, f.line, f.col, f.rule, f.message) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      fs
  in
  let edges =
    Hashtbl.fold
      (fun key d acc ->
        List.fold_left
          (fun acc s -> match s with Edge { callee; _ } -> (key, callee) :: acc | Raises _ -> acc)
          acc d.sites)
      g.defs []
    |> List.sort_uniq compare
  in
  {
    findings = List.sort compare_findings (dedupe (p_keep @ e_keep @ a_keep));
    suppressed =
      List.sort compare_findings (dedupe (p_drop @ e_drop @ a_drop @ suppressed_sites));
    suppressions =
      (* pass 1 (def collection) and pass 2 (body walk) both see
         top-level binding attributes; keep one copy *)
      (let seen = Hashtbl.create 64 in
       List.filter
         (fun (s : suppression) ->
           let k = (s.Lint_core.s_file, s.s_line, s.s_rule) in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.replace seen k ();
             true
           end)
         g.spans)
      |> List.sort (fun (a : suppression) b ->
             let c = String.compare a.Lint_core.s_file b.Lint_core.s_file in
             if c <> 0 then c else Int.compare a.s_line b.s_line);
    graph_edges = edges;
    stats =
      {
        units = List.length units;
        defs = Hashtbl.length g.defs;
        edges = List.length edges;
        task_roots = Hashtbl.length g.roots;
        task_reachable = Hashtbl.length reach;
        never_raise_defs = !annotated;
      };
  }
