(* Minimal TOML-subset loader for rrmp_lint.

   Supported syntax — exactly what lint.toml needs, nothing more:
     [section]
     key = "string"
     key = ["a", "b", "c"]
     # comment
   Values must fit on one line. Unknown sections/keys are an error so a
   typo in lint.toml cannot silently disable a rule. *)

type t = {
  roots : string list;  (* directories scanned, relative to --root *)
  exclude : string list;  (* path prefixes skipped entirely (fixtures) *)
  d1_dirs : string list;
  d1_allow : string list;  (* files allowed to touch the ambient PRNG *)
  d2_dirs : string list;
  d3_dirs : string list;
  d3_id_idents : string list;  (* identifier names treated as protocol ids *)
  d4_dirs : string list;
  d4_allow : string list;  (* files allowed to read the environment *)
  h1_files : string list;  (* modules declared allocation-free *)
  h2_files : string list;  (* modules with an exactly-0.0 words/op gate *)
  m1_dirs : string list;
  m1_exempt : string list;
  (* typed (cmt) pass *)
  typed_dirs : string list;  (* directories searched for .cmt input *)
  p_roots : string list;
      (* callees whose function arguments become parallel-task roots:
         closures handed to these may run on a pool worker domain *)
  p_dirs : string list;  (* where P findings are reported ([""] = everywhere) *)
  a_files : string list;  (* modules under the typed allocation rules *)
}

let default =
  {
    roots = [ "lib" ];
    exclude = [];
    d1_dirs = [ "lib" ];
    d1_allow = [];
    d2_dirs = [ "lib" ];
    d3_dirs = [];
    d3_id_idents = [];
    d4_dirs = [ "lib" ];
    d4_allow = [];
    h1_files = [];
    h2_files = [];
    m1_dirs = [ "lib" ];
    m1_exempt = [];
    typed_dirs = [ "lib" ];
    p_roots = [];
    p_dirs = [ "lib" ];
    a_files = [];
  }

exception Bad_config of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad_config s)) fmt

let strip s = String.trim s

let parse_string_atom ~line s =
  let s = strip s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else fail "line %d: expected a double-quoted string, got %S" line s

let parse_value ~line s =
  let s = strip s in
  let n = String.length s in
  if n >= 2 && s.[0] = '[' && s.[n - 1] = ']' then begin
    let inner = strip (String.sub s 1 (n - 2)) in
    if inner = "" then []
    else
      String.split_on_char ',' inner
      |> List.filter (fun p -> strip p <> "")
      |> List.map (parse_string_atom ~line)
  end
  else [ parse_string_atom ~line s ]

let load path =
  let ic =
    try open_in path with Sys_error e -> fail "cannot open config %s: %s" path e
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let cfg = ref default in
  let section = ref "" in
  let lineno = ref 0 in
  (try
     while true do
       let raw = input_line ic in
       incr lineno;
       let line =
         match String.index_opt raw '#' with
         | Some i -> strip (String.sub raw 0 i)
         | None -> strip raw
       in
       if line = "" then ()
       else if line.[0] = '[' then begin
         let n = String.length line in
         if line.[n - 1] <> ']' then fail "line %d: unterminated section header" !lineno;
         section := String.sub line 1 (n - 2)
       end
       else
         match String.index_opt line '=' with
         | None -> fail "line %d: expected key = value" !lineno
         | Some i ->
           let key = strip (String.sub line 0 i) in
           let v =
             parse_value ~line:!lineno
               (String.sub line (i + 1) (String.length line - i - 1))
           in
           let c = !cfg in
           cfg :=
             (match (!section, key) with
              | "roots", "dirs" -> { c with roots = v }
              | "roots", "exclude" -> { c with exclude = v }
              | "d1", "dirs" -> { c with d1_dirs = v }
              | "d1", "allow_files" -> { c with d1_allow = v }
              | "d2", "dirs" -> { c with d2_dirs = v }
              | "d3", "dirs" -> { c with d3_dirs = v }
              | "d3", "id_idents" -> { c with d3_id_idents = v }
              | "d4", "dirs" -> { c with d4_dirs = v }
              | "d4", "allow_files" -> { c with d4_allow = v }
              | "h1", "files" -> { c with h1_files = v }
              | "h2", "files" -> { c with h2_files = v }
              | "m1", "dirs" -> { c with m1_dirs = v }
              | "m1", "exempt" -> { c with m1_exempt = v }
              | "typed", "dirs" -> { c with typed_dirs = v }
              | "p", "roots" -> { c with p_roots = v }
              | "p", "dirs" -> { c with p_dirs = v }
              | "a", "files" -> { c with a_files = v }
              | s, k -> fail "line %d: unknown setting [%s] %s" !lineno s k)
     done
   with End_of_file -> ());
  !cfg
