(* rrmp_lint — two-layer project lint over the repo's OCaml sources.

   Layer 1 (Lint_core) parses every source file and checks the textual
   rules (D1-D4, H1, H2, M1, S1). Layer 2 (Lint_typed) loads the
   compiler's .cmt output, builds the intra-repo call graph, and checks
   the typed rules (P, E, A). Both layers share the
   [@lint.allow "RULE why"] suppression grammar and land in one report.

   Usage:
     rrmp_lint [--root DIR] [--config FILE] [--json FILE] [--sarif FILE]
               [--no-typed] [--quiet]

   Exit status: 0 when the tree is clean, 1 on unsuppressed findings,
   2 on usage or configuration errors (including: typed pass requested
   but no .cmt input found). *)

let usage =
  "rrmp_lint [--root DIR] [--config FILE] [--json FILE] [--sarif FILE] [--no-typed] [--quiet]"

let json_v2 ~(textual : Lint_core.report) ~(typed : Lint_typed.result option) ~wall_ms =
  let esc = Lint_core.json_escape in
  let findings =
    textual.Lint_core.findings @ match typed with Some t -> t.Lint_typed.findings | None -> []
  in
  let suppressed =
    textual.Lint_core.suppressed @ match typed with Some t -> t.Lint_typed.suppressed | None -> []
  in
  let suppressions =
    textual.Lint_core.suppressions
    @ (match typed with Some t -> t.Lint_typed.suppressions | None -> [])
    |> List.sort_uniq (fun (a : Lint_core.suppression) b ->
           compare (a.Lint_core.s_file, a.s_line, a.s_rule) (b.Lint_core.s_file, b.s_line, b.s_rule))
  in
  let finding (f : Lint_core.finding) =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
      (esc f.Lint_core.file) f.line f.col f.rule (esc f.message) (esc f.hint)
  in
  let suppression (s : Lint_core.suppression) =
    Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"justification\":\"%s\"}"
      (esc s.Lint_core.s_file) s.s_line s.s_rule (esc s.s_just)
  in
  let count rule = List.length (List.filter (fun (f : Lint_core.finding) -> f.rule = rule) findings) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"version\": \"lint-report/v2\",\n";
  Printf.bprintf buf "  \"files_scanned\": %d,\n" textual.files_scanned;
  Printf.bprintf buf "  \"wall_ms\": %d,\n" wall_ms;
  Printf.bprintf buf "  \"rules\": [%s],\n"
    (String.concat ", " (List.map (fun r -> "\"" ^ r ^ "\"") Lint_core.known_rules));
  Printf.bprintf buf "  \"counts\": {%s},\n"
    (String.concat ", "
       (List.map (fun r -> Printf.sprintf "\"%s\": %d" r (count r)) Lint_core.known_rules));
  (match typed with
   | Some t ->
     let s = t.Lint_typed.stats in
     Printf.bprintf buf
       "  \"typed\": {\"cmt_units\": %d, \"defs\": %d, \"call_graph_edges\": %d, \
        \"task_roots\": %d, \"task_reachable\": %d, \"never_raise_defs\": %d},\n"
       s.Lint_typed.units s.defs s.edges s.task_roots s.task_reachable s.never_raise_defs
   | None -> Buffer.add_string buf "  \"typed\": null,\n");
  Printf.bprintf buf "  \"findings\": [%s],\n"
    (String.concat ",\n    " (List.map finding findings));
  Printf.bprintf buf "  \"suppressed\": [%s],\n"
    (String.concat ",\n    " (List.map finding suppressed));
  Printf.bprintf buf "  \"suppressions\": [%s]\n"
    (String.concat ",\n    " (List.map suppression suppressions));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let () =
  let t0 = Unix.gettimeofday () in
  let root = ref "." in
  let config = ref "lint.toml" in
  let json_out = ref None in
  let sarif_out = ref None in
  let no_typed = ref false in
  let quiet = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR scan relative to DIR (default .)");
      ("--config", Arg.Set_string config, "FILE lint configuration (default lint.toml)");
      ("--json", Arg.String (fun f -> json_out := Some f), "FILE write a lint-report/v2 JSON report");
      ("--sarif", Arg.String (fun f -> sarif_out := Some f), "FILE write a SARIF 2.1.0 report");
      ("--no-typed", Arg.Set no_typed, " skip the typed (cmt) pass");
      ("--quiet", Arg.Set quiet, " suppress per-finding output");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let cfg =
    try Lint_core.Config.load (Filename.concat !root !config) with
    | Lint_core.Config.Bad_config msg ->
      Printf.eprintf "rrmp_lint: %s: %s\n" !config msg;
      exit 2
  in
  let textual = Lint_core.scan_tree ~root:!root cfg in
  let typed =
    if !no_typed then None
    else begin
      let cmts = Lint_typed.discover_cmts ~root:!root cfg in
      if cmts = [] then begin
        Printf.eprintf
          "rrmp_lint: no .cmt input under %s (build first, or pass --no-typed)\n"
          (String.concat ", " cfg.Lint_core.Config.typed_dirs);
        exit 2
      end;
      Some (Lint_typed.analyze cfg ~cmts)
    end
  in
  let findings =
    List.sort Lint_core.compare_findings
      (textual.Lint_core.findings
       @ match typed with Some t -> t.Lint_typed.findings | None -> [])
  in
  (* bucketed so the promoted report does not churn on every rebuild *)
  let wall_ms =
    let ms = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) in
    (ms + 50) / 100 * 100
  in
  (match !json_out with
   | None -> ()
   | Some f ->
     let oc = open_out f in
     output_string oc (json_v2 ~textual ~typed ~wall_ms);
     close_out oc);
  (match !sarif_out with
   | None -> ()
   | Some f ->
     Lint_sarif.write ~path:f ~findings
       ~suppressed:
         (textual.Lint_core.suppressed
          @ match typed with Some t -> t.Lint_typed.suppressed | None -> []));
  if not !quiet then List.iter (Lint_core.pp_finding stdout) findings;
  let n = List.length findings in
  let n_suppr =
    List.length textual.Lint_core.suppressions
    + match typed with Some t -> List.length t.Lint_typed.suppressions | None -> 0
  in
  (match typed with
   | Some t ->
     let s = t.Lint_typed.stats in
     Printf.printf
       "rrmp_lint: %d file(s) scanned, %d cmt unit(s), %d def(s), %d call-graph edge(s), %d \
        finding(s), %d audited suppression(s), %d ms\n"
       textual.files_scanned s.Lint_typed.units s.defs s.edges n n_suppr wall_ms
   | None ->
     Printf.printf
       "rrmp_lint: %d file(s) scanned (typed pass skipped), %d finding(s), %d audited \
        suppression(s), %d ms\n"
       textual.files_scanned n n_suppr wall_ms);
  if n > 0 then exit 1
