(* rrmp_lint — project lint pass over the repo's OCaml sources.

   Usage:
     rrmp_lint [--root DIR] [--config FILE] [--json FILE] [--quiet]

   Exit status: 0 when the tree is clean, 1 on unsuppressed findings,
   2 on usage or configuration errors. *)

let usage = "rrmp_lint [--root DIR] [--config FILE] [--json FILE] [--quiet]"

let () =
  let root = ref "." in
  let config = ref "lint.toml" in
  let json_out = ref None in
  let quiet = ref false in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR scan relative to DIR (default .)");
      ("--config", Arg.Set_string config, "FILE lint configuration (default lint.toml)");
      ("--json", Arg.String (fun f -> json_out := Some f), "FILE write a lint-report/v1 JSON report");
      ("--quiet", Arg.Set quiet, " suppress per-finding output");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let cfg =
    try Lint_core.Config.load (Filename.concat !root !config) with
    | Lint_core.Config.Bad_config msg ->
      Printf.eprintf "rrmp_lint: %s: %s\n" !config msg;
      exit 2
  in
  let report = Lint_core.scan_tree ~root:!root cfg in
  (match !json_out with
   | None -> ()
   | Some f ->
     let oc = open_out f in
     output_string oc (Lint_core.json_of_report report);
     close_out oc);
  if not !quiet then
    List.iter (Lint_core.pp_finding stdout) report.findings;
  let n = List.length report.findings in
  Printf.printf
    "rrmp_lint: %d file(s) scanned, %d finding(s), %d audited suppression(s)\n"
    report.files_scanned n
    (List.length report.suppressions);
  if n > 0 then exit 1
