(* Minimal SARIF 2.1.0 emitter for CI upload. One run, one driver
   (rrmp_lint), one rule object per rule id that actually fired, one
   result per finding. Suppressed findings are emitted with a
   [suppressions] entry so the audit trail survives into CI. *)

type finding = Lint_core.finding

let esc = Lint_core.json_escape

let rule_help = function
  | "D1" -> "banned ambient nondeterminism source"
  | "D2" -> "unordered container iteration escapes unsorted"
  | "D3" -> "polymorphic structure on protocol types"
  | "D4" -> "hidden environment input"
  | "H1" -> "allocation hazard in a hot module"
  | "H2" -> "boxing hazard in an exact-zero module"
  | "M1" -> "missing .mli interface"
  | "S1" -> "malformed lint suppression"
  | "P" -> "module-level mutable state on a parallel-task path"
  | "E" -> "[@lint.never_raise] function can raise"
  | "A" -> "typed allocation on an exact-zero module"
  | r -> r

let result_json ~suppressed (f : finding) =
  let suppression =
    if suppressed then
      ",\"suppressions\":[{\"kind\":\"inSource\",\"justification\":\"see LINT_report.json\"}]"
    else ""
  in
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]%s}"
    (esc f.Lint_core.rule)
    (if suppressed then "note" else "error")
    (esc (f.message ^ " — " ^ f.hint))
    (esc f.file) f.line (max 1 (f.col + 1)) suppression

let to_string ~findings ~suppressed =
  let fired = Hashtbl.create 8 in
  List.iter (fun (f : finding) -> Hashtbl.replace fired f.Lint_core.rule ()) (findings @ suppressed);
  let rules =
    Lint_core.known_rules
    |> List.filter (Hashtbl.mem fired)
    |> List.map (fun r ->
           Printf.sprintf
             "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"}}" (esc r)
             (esc (rule_help r)))
  in
  let results =
    List.map (result_json ~suppressed:false) findings
    @ List.map (result_json ~suppressed:true) suppressed
  in
  String.concat ""
    [
      "{\"version\":\"2.1.0\",";
      "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",";
      "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"rrmp_lint\",\"rules\":[";
      String.concat "," rules;
      "]}},\"results\":[";
      String.concat "," results;
      "]}]}\n";
    ]

let write ~path ~findings ~suppressed =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ~findings ~suppressed))
