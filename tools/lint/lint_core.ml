(* rrmp_lint core: a compiler-libs AST pass over the tree.

   Each rule guards an invariant no compiler checks:

   D1  banned nondeterminism sources — ambient PRNG ([Random.int] &
       friends), wall clocks ([Sys.time], [Unix.gettimeofday]) and the
       polymorphic [Hashtbl.hash] in [lib/]. Seeded experiment reports
       must be byte-identical across runs and [-j] levels; one ambient
       draw breaks that silently.
   D2  unordered-container escape — [Hashtbl.iter]/[fold] (including
       [Hashtbl.Make] instances: [*.Table.iter], [Tbl.fold], ...) whose
       result is not immediately sorted. Auto-cleared when the call
       feeds straight into [List.sort]-style calls (directly or via
       [|>]); everything else needs a sort or an audited
       [@lint.allow "D2 ..."] justification.
   D3  polymorphic structure on protocol types — applied bare
       [compare]/[Stdlib.compare], [=]/[<>] with a structural operand
       ([Some _], tuples, records, non-empty list literals) or an
       id-named operand, and direct [Hashtbl.*] (default hash) use, in
       the protocol directories. Protocol ids must go through their
       module comparators ([Msg_id.compare], [Node_id.equal], ...).
   D4  hidden environment inputs — [Sys.getenv]/[getenv_opt] outside
       the audited entry points. "Measured" results must not depend on
       ambient environment state.
   H1  allocation hazards in modules declared hot by lint.toml —
       [( @ )], [List.concat]/[concat_map]/[append], [( ^ )],
       [Printf.sprintf]/[Format.asprintf]. These modules carry a
       0.0-minor-words/op contract measured by the allocation suites.
   H2  boxing hazards in the exact-zero modules listed by lint.toml —
       inline [fun]/[function] literals in argument position (a
       closure cell per call), option-boxing lookups
       ([find_opt]/[assoc_opt]/[nth_opt]: a [Some] box per hit), and
       [Some _]/tuple construction (constructor argument tuples are
       not flagged — they are the constructor's own block). These are
       the allocations small enough to hide from review but large
       enough to fail an exactly-0.0 words/op gate.
   M1  every [lib/**/*.ml] has a matching [.mli]; interfaces are how
       the invariants above stay local.
   S1  suppression hygiene — every [@lint.allow] carries a known rule
       id plus a non-empty justification; anything else is itself a
       finding.

   Suppressions: [@lint.allow "D2 why this is safe"] on an expression
   or a let-binding clears findings of that rule within the construct's
   span; [@@@lint.allow "..."] at the top of a file clears the whole
   file. The audit trail (file, rule, justification) lands in the JSON
   report. *)

open Parsetree

module Config = Lint_config

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  hint : string;
}

type suppression = {
  s_file : string;
  s_line : int;  (* line of the attribute itself *)
  s_rule : string;
  s_just : string;
  s_lo : int;  (* suppressed span, inclusive line range *)
  s_hi : int;
}

type report = {
  findings : finding list;  (* unsuppressed, sorted *)
  suppressed : finding list;  (* cleared by an audited allow *)
  suppressions : suppression list;
  files_scanned : int;
}

(* P/E/A belong to the typed (cmt) layer in Lint_typed; they are
   registered here so S1 accepts their suppressions and both layers
   share one audit grammar. *)
let known_rules = [ "D1"; "D2"; "D3"; "D4"; "H1"; "H2"; "M1"; "S1"; "P"; "E"; "A" ]

(* ------------------------------------------------------------------ *)
(* Path helpers (paths are root-relative, '/'-separated)               *)
(* ------------------------------------------------------------------ *)

let under_dir path dir =
  path = dir || String.starts_with ~prefix:(dir ^ "/") path

let in_dirs path dirs = List.exists (under_dir path) dirs

let in_files path files = List.mem path files

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let flat_ident lid =
  let s = String.concat "." (Longident.flatten lid) in
  if String.starts_with ~prefix:"Stdlib." s then
    String.sub s 7 (String.length s - 7)
  else s

let last_two s =
  match List.rev (String.split_on_char '.' s) with
  | f :: m :: _ -> Some (m, f)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Rule tables                                                         *)
(* ------------------------------------------------------------------ *)

let d1_banned =
  [
    ("Random.self_init", "seeds from the OS entropy pool");
    ("Random.init", "mutates the shared ambient PRNG");
    ("Random.full_init", "mutates the shared ambient PRNG");
    ("Random.int", "draws from the shared ambient PRNG");
    ("Random.full_int", "draws from the shared ambient PRNG");
    ("Random.int32", "draws from the shared ambient PRNG");
    ("Random.int64", "draws from the shared ambient PRNG");
    ("Random.float", "draws from the shared ambient PRNG");
    ("Random.bits", "draws from the shared ambient PRNG");
    ("Random.bits32", "draws from the shared ambient PRNG");
    ("Random.bits64", "draws from the shared ambient PRNG");
    ("Random.bool", "draws from the shared ambient PRNG");
    ("Sys.time", "reads the process clock");
    ("Unix.gettimeofday", "reads the wall clock");
    ("Unix.time", "reads the wall clock");
    ("Hashtbl.hash", "polymorphic hash couples layout to structure");
    ("Hashtbl.seeded_hash", "polymorphic hash couples layout to structure");
    ("Hashtbl.randomize", "randomizes every subsequent table layout");
  ]

let d4_banned = [ "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv"; "Unix.environment" ]

let h1_banned =
  [
    ("@", "list append allocates the whole left spine");
    ("List.append", "list append allocates the whole left spine");
    ("List.concat", "allocates every intermediate cons");
    ("List.concat_map", "allocates every intermediate cons");
    ("^", "string concat allocates a fresh string");
    ("Printf.sprintf", "allocates a format closure and a fresh string");
    ("Format.sprintf", "allocates a format closure and a fresh string");
    ("Format.asprintf", "allocates a formatter and a fresh string");
  ]

(* H2: lookups whose hit path allocates a [Some] box *)
let h2_opt_lookups = [ "find_opt"; "assoc_opt"; "nth_opt" ]

let sort_heads =
  [
    "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

(* Functor-made hashtables are fine under D3; only *default-hash*
   table construction/use is banned there. iter/fold belong to D2 and
   the hash functions themselves to D1 — don't double-flag. *)
let d3_hashtbl_exempt =
  [
    "Hashtbl.Make"; "Hashtbl.MakeSeeded"; "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.hash";
    "Hashtbl.seeded_hash"; "Hashtbl.randomize";
  ]

(* ------------------------------------------------------------------ *)
(* Per-file scan                                                       *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cfg : Config.t;
  path : string;  (* root-relative *)
  mutable raw : finding list;
  mutable spans : suppression list;
  mutable sorted_spans : (int * int) list;  (* D2 auto-clear regions *)
  mutable ctor_arg_tuples : Location.t list;
      (* tuples that are a constructor's argument list, not a value:
         [C (a, b)] parses as construct-of-tuple; H2 must not flag it *)
}

let add ctx ~loc ~rule ~message ~hint =
  let p = loc.Location.loc_start in
  ctx.raw <-
    { file = ctx.path; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; message; hint }
    :: ctx.raw

let span_of (loc : Location.t) = (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum)

(* [@lint.allow "RULE justification"] — returns the parsed suppression
   or an S1 finding for anything malformed. *)
let parse_allow ctx (attr : attribute) ~(scope : Location.t) =
  let s1 message =
    add ctx ~loc:attr.attr_loc ~rule:"S1" ~message
      ~hint:"write [@lint.allow \"<RULE> <why this site is safe>\"]"
  in
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (text, _, _)); _ }, _);
          _;
        };
      ] -> (
    let text = String.trim text in
    match String.index_opt text ' ' with
    | None ->
      if List.mem text known_rules then
        s1 (Printf.sprintf "suppression of %s has no justification" text)
      else s1 (Printf.sprintf "malformed suppression %S" text)
    | Some i ->
      let rule = String.sub text 0 i in
      let just = String.trim (String.sub text i (String.length text - i)) in
      if not (List.mem rule known_rules) then
        s1 (Printf.sprintf "unknown rule id %S in suppression" rule)
      else if just = "" then
        s1 (Printf.sprintf "suppression of %s has no justification" rule)
      else begin
        let lo, hi = span_of scope in
        ctx.spans <-
          {
            s_file = ctx.path;
            s_line = attr.attr_loc.loc_start.pos_lnum;
            s_rule = rule;
            s_just = just;
            s_lo = lo;
            s_hi = hi;
          }
          :: ctx.spans
      end)
  | _ -> s1 "suppression payload must be a literal string"

let collect_allows ctx attrs ~scope =
  List.iter
    (fun (a : attribute) -> if a.attr_name.txt = "lint.allow" then parse_allow ctx a ~scope)
    attrs

(* ------------------------------------------------------------------ *)
(* Expression checks                                                   *)
(* ------------------------------------------------------------------ *)

let head_ident expr =
  let rec go e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> Some (flat_ident txt)
    | Pexp_apply (f, _) -> go f
    | _ -> None
  in
  go expr

let check_ident ctx ~loc name =
  let cfg = ctx.cfg in
  let path = ctx.path in
  (* D1: ambient nondeterminism sources *)
  (if in_dirs path cfg.d1_dirs && not (in_files path cfg.d1_allow) then
     match List.assoc_opt name d1_banned with
     | Some why ->
       add ctx ~loc ~rule:"D1"
         ~message:(Printf.sprintf "%s — %s" name why)
         ~hint:
           "draw from Engine.Rng (explicit seeded state) / Sim.now (virtual time) / an \
            explicit hash instead"
     | None -> ());
  (* D4: hidden environment inputs *)
  if
    in_dirs path cfg.d4_dirs
    && (not (in_files path cfg.d4_allow))
    && List.mem name d4_banned
  then
    add ctx ~loc ~rule:"D4"
      ~message:(Printf.sprintf "%s reads ambient environment state" name)
      ~hint:"thread the setting through an explicit config value or an allow-listed entry point";
  (* D2: unordered-container iteration escaping *)
  (if in_dirs path cfg.d2_dirs then
     match last_two name with
     | Some (m, (("iter" | "fold") as f))
       when m = "Hashtbl" || m = "Table" || m = "Tbl" ->
       add ctx ~loc ~rule:"D2"
         ~message:
           (Printf.sprintf "%s visits entries in hash-layout order, which is not part of any \
                            contract" name)
         ~hint:
           (Printf.sprintf "sort the %s result immediately (List.sort after the fold), or \
                            justify order-insensitivity with [@lint.allow \"D2 ...\"]" f)
     | _ -> ());
  (* D3 (partial): direct default-hash Hashtbl use on protocol types *)
  if
    in_dirs path cfg.d3_dirs
    && String.starts_with ~prefix:"Hashtbl." name
    && (not (List.mem name d3_hashtbl_exempt))
    && not (List.mem_assoc name d1_banned)
  then
    add ctx ~loc ~rule:"D3"
      ~message:(Printf.sprintf "%s uses the polymorphic default hash on protocol data" name)
      ~hint:"use Msg_id.Table / Node_id.Table (Hashtbl.Make over the module comparators)";
  (* H1: allocation hazards in hot modules *)
  (if in_files path cfg.h1_files then
     match List.assoc_opt name h1_banned with
     | Some why ->
       add ctx ~loc ~rule:"H1"
         ~message:(Printf.sprintf "%s in a hot module — %s" name why)
         ~hint:
           "this module carries a 0-minor-words/op contract: preallocate, use rev_append off \
            the hot path, or move the formatting behind an observer gate"
     | None -> ());
  (* H2: option-boxing lookups in exact-zero modules *)
  if in_files path cfg.h2_files then
    match last_two name with
    | Some (_, f) when List.mem f h2_opt_lookups ->
      add ctx ~loc ~rule:"H2"
        ~message:(Printf.sprintf "%s allocates a Some box on every hit" name)
        ~hint:
          "use find with an [exception Not_found ->] arm so the hit path returns the value \
           unboxed"
    | _ -> ()

let structural_operand e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "::"; _ }, Some _) -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | Pexp_tuple _ -> true
  | Pexp_record _ -> true
  | _ -> false

let id_operand cfg e =
  let name_matches n = List.mem n cfg.Config.d3_id_idents in
  match e.pexp_desc with
  | Pexp_ident { txt = Lident n; _ } -> name_matches n
  | Pexp_field (_, { txt; _ }) -> (
    match List.rev (Longident.flatten txt) with
    | n :: _ -> name_matches n
    | [] -> false)
  | _ -> false

let check_apply ctx fn args ~loc =
  let cfg = ctx.cfg in
  (* H2: an inline [fun] literal handed to a higher-order callee
     allocates a closure cell (plus its captures) on every call *)
  if in_files ctx.path cfg.h2_files then
    List.iter
      (fun ((_, a) : Asttypes.arg_label * expression) ->
        match a.pexp_desc with
        | Pexp_fun _ | Pexp_function _ ->
          add ctx ~loc:a.pexp_loc ~rule:"H2"
            ~message:"inline closure in argument position allocates on every call"
            ~hint:
              "hoist the function to a toplevel binding, or store the thunk once in a \
               mutable field at creation time"
        | _ -> ())
      args;
  (* D2 auto-clear: a fold piped straight into a sort is fine *)
  (match head_ident fn with
   | Some "|>" -> (
     match args with
     | [ (_, lhs); (_, rhs) ] -> (
       match head_ident rhs with
       | Some h when List.mem h sort_heads ->
         ctx.sorted_spans <- span_of lhs.pexp_loc :: ctx.sorted_spans
       | _ -> ())
     | _ -> ())
   | Some h when List.mem h sort_heads -> ctx.sorted_spans <- span_of loc :: ctx.sorted_spans
   | _ -> ());
  if in_dirs ctx.path cfg.d3_dirs then begin
    (* D3: applied polymorphic compare *)
    (match fn.pexp_desc with
     | Pexp_ident { txt; _ } when flat_ident txt = "compare" && List.length args >= 2 ->
       add ctx ~loc ~rule:"D3"
         ~message:"applied polymorphic compare on protocol data"
         ~hint:"use the module comparator (Msg_id.compare, Node_id.compare, Int.compare, ...)"
     | _ -> ());
    (* D3: polymorphic =/<> with a structural or id-named operand *)
    match fn.pexp_desc with
    | Pexp_ident { txt = Lident (("=" | "<>") as op); _ } -> (
      match args with
      | [ (_, a); (_, b) ] ->
        if structural_operand a || structural_operand b then
          add ctx ~loc ~rule:"D3"
            ~message:
              (Printf.sprintf "polymorphic ( %s ) compares structural values on a protocol \
                               path" op)
            ~hint:
              "match on the shape instead, or compare through the type's equal (Msg_id.equal, \
               Option.equal, ...)"
        else if id_operand cfg a || id_operand cfg b then
          add ctx ~loc ~rule:"D3"
            ~message:
              (Printf.sprintf "polymorphic ( %s ) on an identifier-typed value" op)
            ~hint:"use the id module's equal (Msg_id.equal, Node_id.equal, ...)"
      | _ -> ())
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Iterator                                                            *)
(* ------------------------------------------------------------------ *)

let make_iterator ctx =
  let open Ast_iterator in
  let expr it e =
    collect_allows ctx e.pexp_attributes ~scope:e.pexp_loc;
    (match e.pexp_desc with
     | Pexp_ident { txt; loc } -> check_ident ctx ~loc (flat_ident txt)
     | Pexp_apply (fn, args) -> check_apply ctx fn args ~loc:e.pexp_loc
     | _ -> ());
    (* H2: Some/tuple boxing in exact-zero modules. The iterator visits
       parents first, so a constructor's argument tuple is registered
       before the tuple node itself is reached. *)
    (match e.pexp_desc with
     | Pexp_construct ({ txt = Lident "Some"; _ }, Some _)
       when in_files ctx.path ctx.cfg.h2_files ->
       add ctx ~loc:e.pexp_loc ~rule:"H2"
         ~message:"Some construction boxes the value on the hot path"
         ~hint:
           "restructure so the steady state carries the value unboxed (exception arm, \
            sentinel, or a dedicated field)"
     | Pexp_construct (_, Some { pexp_desc = Pexp_tuple _; pexp_loc = arg_loc; _ }) ->
       ctx.ctor_arg_tuples <- arg_loc :: ctx.ctor_arg_tuples
     | Pexp_tuple _
       when in_files ctx.path ctx.cfg.h2_files
            && not (List.mem e.pexp_loc ctx.ctor_arg_tuples) ->
       add ctx ~loc:e.pexp_loc ~rule:"H2"
         ~message:"tuple construction allocates a block on the hot path"
         ~hint:"pass the components separately or pack them into an existing record/int"
     | _ -> ());
    default_iterator.expr it e
  in
  let value_binding it vb =
    collect_allows ctx vb.pvb_attributes ~scope:vb.pvb_loc;
    (* [let msg [@lint.allow "..."] = e]: written on the enclosing let,
       but the parser attaches the attribute to the binding *pattern* —
       honor that placement with the same whole-binding scope, else the
       suppression silently fails and the site is re-reported *)
    collect_allows ctx vb.pvb_pat.ppat_attributes ~scope:vb.pvb_loc;
    default_iterator.value_binding it vb
  in
  let structure_item it si =
    (match si.pstr_desc with
     | Pstr_attribute a when a.attr_name.txt = "lint.allow" ->
       (* floating [@@@lint.allow]: suppress for the whole file *)
       parse_allow ctx a
         ~scope:
           {
             si.pstr_loc with
             loc_start = { si.pstr_loc.loc_start with pos_lnum = 1 };
             loc_end = { si.pstr_loc.loc_end with pos_lnum = max_int };
           }
     | _ -> ());
    default_iterator.structure_item it si
  in
  { default_iterator with expr; value_binding; structure_item }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let parse_error_finding ~path exn =
  let line, message =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
      ( report.Location.main.loc.loc_start.pos_lnum,
        Format.asprintf "%t" report.Location.main.txt )
    | _ -> (1, Printexc.to_string exn)
  in
  { file = path; line; col = 0; rule = "S1"; message = "parse error: " ^ message;
    hint = "rrmp_lint parses with the project compiler; this file cannot build" }

(* Scan one file; returns raw findings (suppression not yet applied),
   suppression spans, and sorted-context spans. *)
let scan_source cfg ~path ~source =
  let ctx = { cfg; path; raw = []; spans = []; sorted_spans = []; ctor_arg_tuples = [] } in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  (try
     if Filename.check_suffix path ".mli" then
       ignore (Parse.interface lexbuf : signature)
     else begin
       let str = Parse.implementation lexbuf in
       let it = make_iterator ctx in
       it.structure it str
     end
   with exn -> ctx.raw <- parse_error_finding ~path exn :: ctx.raw);
  ctx

let apply_spans ctx =
  let in_sorted f = List.exists (fun (lo, hi) -> f.line >= lo && f.line <= hi) ctx.sorted_spans in
  let covering f =
    List.find_opt
      (fun s -> s.s_rule = f.rule && f.line >= s.s_lo && f.line <= s.s_hi)
      ctx.spans
  in
  List.fold_left
    (fun (keep, dropped) f ->
      if f.rule = "D2" && in_sorted f then (keep, dropped)  (* sorted: not a finding at all *)
      else
        match covering f with
        | Some _ -> (keep, f :: dropped)
        | None -> (f :: keep, dropped))
    ([], []) ctx.raw

(* ------------------------------------------------------------------ *)
(* Tree walk                                                           *)
(* ------------------------------------------------------------------ *)

let rec walk ~root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  if Sys.is_directory abs then
    Array.fold_left
      (fun acc name ->
        let child = if rel = "" then name else rel ^ "/" ^ name in
        walk ~root child acc)
      acc
      (let entries = Sys.readdir abs in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli" then
    rel :: acc
  else acc

let m1_findings cfg files =
  let files_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace files_set f ()) files;
  List.filter_map
    (fun f ->
      if
        Filename.check_suffix f ".ml"
        && in_dirs f cfg.Config.m1_dirs
        && (not (List.mem f cfg.m1_exempt))
        && not (Hashtbl.mem files_set (f ^ "i"))
      then
        Some
          {
            file = f;
            line = 1;
            col = 0;
            rule = "M1";
            message = "module has no .mli interface";
            hint = "add a sibling .mli so the module's contract is explicit";
          }
      else None)
    files

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let scan_tree ?(root = ".") (cfg : Config.t) =
  let files =
    List.concat_map
      (fun dir -> List.rev (walk ~root dir []))
      cfg.roots
    |> List.filter (fun f -> not (in_dirs f cfg.exclude))
    |> List.sort String.compare
  in
  let keep = ref [] and dropped = ref [] and spans = ref [] in
  List.iter
    (fun rel ->
      let source = read_file (Filename.concat root rel) in
      let ctx = scan_source cfg ~path:rel ~source in
      let k, d = apply_spans ctx in
      keep := k @ !keep;
      dropped := d @ !dropped;
      spans := ctx.spans @ !spans)
    files;
  let m1 = m1_findings cfg files in
  {
    findings = List.sort compare_findings (m1 @ !keep);
    suppressed = List.sort compare_findings !dropped;
    suppressions =
      List.sort
        (fun a b ->
          let c = String.compare a.s_file b.s_file in
          if c <> 0 then c else Int.compare a.s_line b.s_line)
        !spans;
    files_scanned = List.length files;
  }

(* Convenience for fixture tests: scan a single file with suppression
   and sorted-context post-processing applied. *)
let scan_file ?(root = ".") (cfg : Config.t) rel =
  let source = read_file (Filename.concat root rel) in
  let ctx = scan_source cfg ~path:rel ~source in
  let keep, dropped = apply_spans ctx in
  (List.sort compare_findings keep, List.sort compare_findings dropped, ctx.spans)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_finding oc f =
  Printf.fprintf oc "%s:%d:%d: [%s] %s\n    hint: %s\n" f.file f.line f.col f.rule f.message
    f.hint

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_report r =
  let buf = Buffer.create 4096 in
  let finding f =
    Printf.sprintf
      "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
      (json_escape f.file) f.line f.col f.rule (json_escape f.message) (json_escape f.hint)
  in
  let suppression s =
    Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"justification\":\"%s\"}"
      (json_escape s.s_file) s.s_line s.s_rule (json_escape s.s_just)
  in
  Buffer.add_string buf "{\n  \"version\": \"lint-report/v1\",\n";
  Printf.bprintf buf "  \"files_scanned\": %d,\n" r.files_scanned;
  Printf.bprintf buf "  \"rules\": [%s],\n"
    (String.concat ", " (List.map (fun r -> "\"" ^ r ^ "\"") known_rules));
  Printf.bprintf buf "  \"findings\": [%s],\n"
    (String.concat ",\n    " (List.map finding r.findings));
  Printf.bprintf buf "  \"suppressions\": [%s]\n"
    (String.concat ",\n    " (List.map suppression r.suppressions));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
