(* Shared helpers for simulation-driven tests. *)

let at sim time f = Engine.Sim.schedule_at sim ~at:time f
