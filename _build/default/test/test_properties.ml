(* Cross-stack property tests: whole-protocol invariants checked over
   randomized scenarios (region shapes, loss rates, message counts,
   seeds). *)

module Config = Rrmp.Config
module Member = Rrmp.Member
module Group = Rrmp.Group
module Network = Netsim.Network

(* a random small scenario: 1-3 regions, light churn of messages, loss *)
let scenario_gen =
  QCheck.Gen.(
    let* regions = int_range 1 3 in
    let* sizes = list_repeat regions (int_range 3 15) in
    let* messages = int_range 1 6 in
    let* loss_pct = int_range 0 30 in
    let* seed = int_range 1 10_000 in
    return (sizes, messages, loss_pct, seed))

let scenario =
  QCheck.make
    ~print:(fun (sizes, messages, loss, seed) ->
      Printf.sprintf "regions=%s msgs=%d loss=%d%% seed=%d"
        (String.concat "," (List.map string_of_int sizes))
        messages loss seed)
    scenario_gen

let run_scenario ?(observer : Rrmp.Events.observer option) (sizes, messages, loss_pct, seed) =
  let topology = Topology.chain ~sizes in
  let config = { Config.default with Config.session_interval = Some 25.0 } in
  let group =
    Group.create ~seed ~config
      ~loss:(Loss.Bernoulli (float_of_int loss_pct /. 100.0))
      ?observer ~topology ()
  in
  let ids = List.init messages (fun _ -> Group.multicast group ()) in
  Group.run ~until:20_000.0 group;
  (group, ids)

let prop_reliability =
  QCheck.Test.make ~name:"all messages eventually delivered everywhere" ~count:30
    scenario
    (fun ((sizes, _, _, _) as s) ->
      let group, ids = run_scenario s in
      let n = List.fold_left ( + ) 0 sizes in
      List.for_all (fun id -> Group.count_received group id = n) ids)

let prop_buffered_subset_received =
  QCheck.Test.make ~name:"a buffered message was always received" ~count:30 scenario
    (fun s ->
      let group, ids = run_scenario s in
      List.for_all
        (fun m ->
          List.for_all
            (fun id -> (not (Member.buffers m id)) || Member.has_received m id)
            ids)
        (Group.members group))

let prop_traffic_conservation =
  QCheck.Test.make ~name:"sent = delivered + lost + dead, per class" ~count:30 scenario
    (fun (sizes, messages, loss_pct, seed) ->
      (* no session ticker: the run reaches quiescence, so nothing is
         left in flight and conservation is exact *)
      let topology = Topology.chain ~sizes in
      let config = { Config.default with Config.max_recovery_tries = Some 50 } in
      let group =
        Group.create ~seed ~config
          ~loss:(Loss.Bernoulli (float_of_int loss_pct /. 100.0))
          ~topology ()
      in
      ignore (List.init messages (fun _ -> Group.multicast group ()));
      Group.run group;
      let net = Group.net group in
      List.for_all
        (fun cls ->
          let c = Network.stats net ~cls in
          c.Network.sent
          = c.Network.delivered + c.Network.dropped_loss + c.Network.dropped_dead)
        (Network.classes net))

let prop_idle_respects_threshold =
  QCheck.Test.make ~name:"feedback only extends: idle time >= T" ~count:20 scenario
    (fun s ->
      let ok = ref true in
      let observer ~time:_ ~self:_ event =
        match event with
        | Rrmp.Events.Became_idle { buffered_for; _ } ->
          if buffered_for < Config.default.Config.idle_threshold -. 1e-6 then ok := false
        | _ -> ()
      in
      let _group, _ids = run_scenario ~observer s in
      !ok)

let prop_recovered_latency_nonnegative =
  QCheck.Test.make ~name:"recovery latency is non-negative and finite" ~count:20 scenario
    (fun s ->
      let ok = ref true in
      let observer ~time:_ ~self:_ event =
        match event with
        | Rrmp.Events.Recovered { latency; _ } ->
          if latency < 0.0 || not (Float.is_finite latency) then ok := false
        | _ -> ()
      in
      let _group, _ids = run_scenario ~observer s in
      !ok)

let prop_determinism =
  QCheck.Test.make ~name:"identical seeds give identical runs" ~count:15 scenario
    (fun s ->
      let digest () =
        let group, ids = run_scenario s in
        ( List.map (fun id -> Group.count_received group id) ids,
          List.map (fun id -> Group.count_buffered group id) ids,
          Network.total_sent (Group.net group),
          Group.now group )
      in
      digest () = digest ())

let prop_occupancy_sane =
  QCheck.Test.make ~name:"buffer occupancy integrals are consistent" ~count:20 scenario
    (fun s ->
      let group, _ = run_scenario s in
      List.for_all
        (fun m ->
          let b = Member.buffer m in
          Rrmp.Buffer.occupancy_msg_ms b >= 0.0
          && Rrmp.Buffer.peak_size b >= Rrmp.Buffer.size b
          && Rrmp.Buffer.peak_bytes b >= Rrmp.Buffer.bytes b)
        (Group.members group))

(* churn: random interleaving of joins and leaves keeps the group
   consistent and the sender alive *)
let churn_gen =
  QCheck.Gen.(
    let* ops = list_size (int_range 1 30) (int_range 0 99) in
    let* seed = int_range 1 10_000 in
    return (ops, seed))

let churn_case =
  QCheck.make
    ~print:(fun (ops, seed) ->
      Printf.sprintf "ops=%d seed=%d" (List.length ops) seed)
    churn_gen

let prop_churn_consistency =
  QCheck.Test.make ~name:"random join/leave keeps group consistent" ~count:30 churn_case
    (fun (ops, seed) ->
      let topology = Topology.single_region ~size:5 in
      let group = Group.create ~seed ~topology () in
      let rng = Engine.Rng.create ~seed:(seed lxor 77) in
      let sender = Member.node (Group.sender group) in
      List.iter
        (fun op ->
          if op mod 2 = 0 then ignore (Group.join group (Region_id.of_int 0))
          else begin
            let nodes = Topology.all_nodes (Group.topology group) in
            let candidates =
              Array.of_seq
                (Seq.filter (fun n -> not (Node_id.equal n sender)) (Array.to_seq nodes))
            in
            if Array.length candidates > 0 then
              Group.leave group (Engine.Rng.pick rng candidates)
          end;
          Group.run group)
        ops;
      let members = Group.members group in
      (* the member list and the topology agree, and the sender survives *)
      List.length members = Topology.node_count (Group.topology group)
      && List.exists (fun m -> Node_id.equal (Member.node m) sender) members)

let suites =
  [
    ( "properties.protocol",
      [
        QCheck_alcotest.to_alcotest ~long:true prop_reliability;
        QCheck_alcotest.to_alcotest prop_buffered_subset_received;
        QCheck_alcotest.to_alcotest prop_traffic_conservation;
        QCheck_alcotest.to_alcotest prop_idle_respects_threshold;
        QCheck_alcotest.to_alcotest prop_recovered_latency_nonnegative;
        QCheck_alcotest.to_alcotest prop_determinism;
        QCheck_alcotest.to_alcotest prop_occupancy_sane;
        QCheck_alcotest.to_alcotest prop_churn_consistency;
      ] );
  ]
