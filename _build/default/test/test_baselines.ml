(* Tests for the baseline protocols: the tree-based repair-server
   protocol and the multicast-query/backoff bufferer location. *)

module Tree = Baselines.Tree_rmtp
module Query_flood = Baselines.Query_flood

let test_tree_lossless_delivery () =
  let topology = Topology.single_region ~size:20 in
  let tree = Tree.create ~seed:1 ~topology () in
  let id = Tree.multicast tree () in
  Tree.run tree;
  Alcotest.(check bool) "all received" true (Tree.received_by_all tree id)

let test_tree_server_identity () =
  let topology = Topology.chain ~sizes:[ 5; 5 ] in
  let tree = Tree.create ~seed:1 ~topology () in
  Alcotest.(check int) "region 0 server" 0
    (Node_id.to_int (Tree.repair_server tree (Region_id.of_int 0)));
  Alcotest.(check int) "region 1 server" 5
    (Node_id.to_int (Tree.repair_server tree (Region_id.of_int 1)));
  Alcotest.(check bool) "is_server" true (Tree.is_server tree (Node_id.of_int 5));
  Alcotest.(check bool) "plain member" false (Tree.is_server tree (Node_id.of_int 6))

let test_tree_server_buffers_everything () =
  let topology = Topology.single_region ~size:10 in
  let tree = Tree.create ~seed:2 ~topology () in
  let ids = List.init 5 (fun _ -> Tree.multicast tree ()) in
  Tree.run tree;
  let server = Tree.repair_server tree (Region_id.of_int 0) in
  Alcotest.(check int) "server holds the whole stream" 5
    (Rrmp.Buffer.size (Tree.buffer_of tree server));
  (* a plain member buffers nothing *)
  Alcotest.(check int) "plain member buffers nothing" 0
    (Rrmp.Buffer.size (Tree.buffer_of tree (Node_id.of_int 3)));
  ignore ids

let test_tree_nack_recovery () =
  let topology = Topology.single_region ~size:10 in
  let tree = Tree.create ~seed:3 ~topology () in
  let victim = Node_id.of_int 7 in
  let id0 =
    Tree.multicast_reaching tree ~reach:(fun n -> not (Node_id.equal n victim)) ()
  in
  (* a later packet reveals the gap *)
  let _id1 = Tree.multicast tree () in
  Tree.run tree;
  Alcotest.(check bool) "victim repaired by the server" true
    (Tree.count_received tree id0 = 10)

let test_tree_cross_region_recovery () =
  let topology = Topology.chain ~sizes:[ 5; 5 ] in
  let tree = Tree.create ~seed:4 ~topology () in
  (* region 1 entirely missed the first message *)
  let id0 = Tree.multicast_reaching tree ~reach:(fun n -> Node_id.to_int n < 5) () in
  let _id1 = Tree.multicast tree () in
  Tree.run tree;
  Alcotest.(check bool) "region 1 recovered through its server" true
    (Tree.received_by_all tree id0)

let test_tree_session_tail_loss () =
  let topology = Topology.single_region ~size:8 in
  let tree = Tree.create ~seed:5 ~session_interval:20.0 ~topology () in
  let victim = Node_id.of_int 3 in
  let id = Tree.multicast_reaching tree ~reach:(fun n -> not (Node_id.equal n victim)) () in
  Tree.run ~until:2_000.0 tree;
  Alcotest.(check int) "tail loss repaired via session" 8 (Tree.count_received tree id)

let test_query_flood_single_bufferer () =
  let outcome = Query_flood.run_once ~region:50 ~bufferers:1 ~backoff_window:30.0 ~seed:1 () in
  Alcotest.(check int) "exactly one reply" 1 outcome.Query_flood.replies;
  Alcotest.(check bool) "reply within window + propagation" true
    (outcome.Query_flood.first_reply_at < 40.0)

let test_query_flood_storm_with_many_bufferers () =
  (* far more bufferers than the window was sized for: duplicates fire
     before the first reply propagates *)
  let totals = ref 0 in
  for seed = 1 to 20 do
    let outcome =
      Query_flood.run_once ~region:100 ~bufferers:50 ~backoff_window:30.0 ~seed ()
    in
    totals := !totals + outcome.Query_flood.replies
  done;
  let mean = float_of_int !totals /. 20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "storm: mean replies %.1f > 3" mean)
    true (mean > 3.0)

let test_query_flood_validation () =
  Alcotest.check_raises "zero bufferers rejected"
    (Invalid_argument "Query_flood.run_once: bufferers out of range") (fun () ->
      ignore (Query_flood.run_once ~region:10 ~bufferers:0 ~backoff_window:10.0 ~seed:1 ()))

let suites =
  [
    ( "baselines.tree_rmtp",
      [
        Alcotest.test_case "lossless delivery" `Quick test_tree_lossless_delivery;
        Alcotest.test_case "server identity" `Quick test_tree_server_identity;
        Alcotest.test_case "server buffers everything" `Quick test_tree_server_buffers_everything;
        Alcotest.test_case "nack recovery" `Quick test_tree_nack_recovery;
        Alcotest.test_case "cross-region recovery" `Quick test_tree_cross_region_recovery;
        Alcotest.test_case "session tail loss" `Quick test_tree_session_tail_loss;
      ] );
    ( "baselines.query_flood",
      [
        Alcotest.test_case "single bufferer" `Quick test_query_flood_single_bufferer;
        Alcotest.test_case "storm with many bufferers" `Quick test_query_flood_storm_with_many_bufferers;
        Alcotest.test_case "validation" `Quick test_query_flood_validation;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* SRM                                                                 *)
(* ------------------------------------------------------------------ *)

module Srm = Baselines.Srm

let test_srm_lossless_delivery () =
  let topology = Topology.single_region ~size:15 in
  let srm = Srm.create ~seed:1 ~topology () in
  let id = Srm.multicast srm () in
  Srm.run srm;
  Alcotest.(check bool) "all received" true (Srm.received_by_all srm id)

let test_srm_nack_recovery () =
  let topology = Topology.single_region ~size:12 in
  let srm = Srm.create ~seed:2 ~topology () in
  let victim = Node_id.of_int 7 in
  let id0 = Srm.multicast_reaching srm ~reach:(fun n -> not (Node_id.equal n victim)) () in
  let _id1 = Srm.multicast srm () in
  Srm.run srm;
  Alcotest.(check int) "victim repaired" 12 (Srm.count_received srm id0);
  Alcotest.(check bool) "requests were multicast" true (Srm.request_multicasts srm > 0);
  Alcotest.(check bool) "repairs were multicast" true (Srm.repair_multicasts srm > 0);
  Alcotest.(check bool) "latency recorded" true (Srm.mean_recovery_latency srm > 0.0)

let test_srm_suppression_bounds_repairs () =
  (* a region-wide loss: every member misses the message; without
     suppression every one of the 29 holders... there are no holders
     except the sender; repairs should be far fewer than receivers *)
  let topology = Topology.single_region ~size:30 in
  let srm = Srm.create ~seed:3 ~topology () in
  let id0 = Srm.multicast_reaching srm ~reach:(fun _ -> false) () in
  let _id1 = Srm.multicast srm () in
  Srm.run srm;
  Alcotest.(check int) "everyone recovered" 30 (Srm.count_received srm id0);
  (* each repair is a session-wide multicast of 29 packets; suppression
     should keep the number of repair multicasts well under one per
     receiver (29 x 29 packets would be a storm) *)
  let repair_ops = Srm.repair_multicasts srm / 29 in
  Alcotest.(check bool)
    (Printf.sprintf "repair multicasts %d < 15" repair_ops)
    true (repair_ops < 15)

let test_srm_buffers_everything () =
  let topology = Topology.single_region ~size:8 in
  let srm = Srm.create ~seed:4 ~topology () in
  let _ids = List.init 5 (fun _ -> Srm.multicast srm ()) in
  Srm.run srm;
  List.iter
    (fun node ->
      Alcotest.(check int) "ALF: everything stays available" 5
        (Rrmp.Buffer.size (Srm.buffer_of srm node)))
    (Srm.members srm)

let test_srm_session_tail_loss () =
  let topology = Topology.single_region ~size:10 in
  let srm = Srm.create ~seed:5 ~session_interval:20.0 ~topology () in
  let victim = Node_id.of_int 4 in
  let id = Srm.multicast_reaching srm ~reach:(fun n -> not (Node_id.equal n victim)) () in
  Srm.run ~until:2_000.0 srm;
  Alcotest.(check int) "tail loss repaired" 10 (Srm.count_received srm id)

(* ------------------------------------------------------------------ *)
(* Pbcast                                                              *)
(* ------------------------------------------------------------------ *)

module Pbcast = Baselines.Pbcast

let test_pbcast_gossip_repairs_total_loss () =
  (* the initial multicast reaches nobody: anti-entropy alone must
     spread the message from the sender's buffer *)
  let topology = Topology.single_region ~size:20 in
  let pb = Pbcast.create ~seed:1 ~buffer_for:5_000.0 ~topology () in
  let id = Pbcast.multicast_reaching pb ~reach:(fun _ -> false) () in
  Pbcast.run ~until:2_000.0 pb;
  Alcotest.(check int) "gossip spread it to everyone" 20 (Pbcast.count_received pb id);
  Alcotest.(check bool) "digest traffic flowed" true (Pbcast.control_packets pb > 0)

let test_pbcast_fixed_buffering_expires () =
  let topology = Topology.single_region ~size:10 in
  let pb = Pbcast.create ~seed:2 ~buffer_for:100.0 ~topology () in
  let id = Pbcast.multicast pb () in
  Pbcast.run ~until:50.0 pb;
  Alcotest.(check bool) "buffered within the window" true
    (Rrmp.Buffer.mem (Pbcast.buffer_of pb (Node_id.of_int 0)) id);
  Pbcast.run ~until:500.0 pb;
  List.iter
    (fun node ->
      Alcotest.(check int) "expired everywhere" 0
        (Rrmp.Buffer.size (Pbcast.buffer_of pb node)))
    (Pbcast.members pb)

let test_pbcast_stop_gossip_quiesces () =
  let topology = Topology.single_region ~size:5 in
  let pb = Pbcast.create ~seed:3 ~topology () in
  ignore (Pbcast.multicast pb ());
  Pbcast.run ~until:500.0 pb;
  Pbcast.stop_gossip pb;
  Pbcast.run pb;
  Alcotest.(check int) "no pending events after stop" 0
    (Engine.Sim.pending (Pbcast.sim pb))

let test_pbcast_bimodal_latency_grows_with_loss () =
  (* with anti-entropy, worse initial delivery means more gossip rounds
     to converge *)
  let converge_time ~reach_prob =
    let topology = Topology.single_region ~size:20 in
    let pb = Pbcast.create ~seed:4 ~buffer_for:10_000.0 ~topology () in
    let rng = Engine.Rng.create ~seed:9 in
    let id =
      Pbcast.multicast_reaching pb ~reach:(fun _ -> Engine.Rng.bernoulli rng ~p:reach_prob) ()
    in
    let sim = Pbcast.sim pb in
    let done_at = ref infinity in
    let rec sample t =
      if t < 3_000.0 then
        ignore
          (Engine.Sim.schedule_at sim ~at:t (fun () ->
               if !done_at = infinity && Pbcast.count_received pb id = 20 then done_at := t;
               sample (t +. 5.0)))
    in
    sample 0.0;
    Pbcast.run ~until:3_000.0 pb;
    !done_at
  in
  let fast = converge_time ~reach_prob:0.9 in
  let slow = converge_time ~reach_prob:0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "more loss converges later (%.0f vs %.0f)" slow fast)
    true (slow > fast)

let srm_suite =
  ( "baselines.srm",
    [
      Alcotest.test_case "lossless delivery" `Quick test_srm_lossless_delivery;
      Alcotest.test_case "nack recovery" `Quick test_srm_nack_recovery;
      Alcotest.test_case "suppression bounds repairs" `Quick test_srm_suppression_bounds_repairs;
      Alcotest.test_case "buffers everything" `Quick test_srm_buffers_everything;
      Alcotest.test_case "session tail loss" `Quick test_srm_session_tail_loss;
    ] )

let pbcast_suite =
  ( "baselines.pbcast",
    [
      Alcotest.test_case "gossip repairs total loss" `Quick test_pbcast_gossip_repairs_total_loss;
      Alcotest.test_case "fixed buffering expires" `Quick test_pbcast_fixed_buffering_expires;
      Alcotest.test_case "stop_gossip quiesces" `Quick test_pbcast_stop_gossip_quiesces;
      Alcotest.test_case "latency grows with loss" `Quick test_pbcast_bimodal_latency_grows_with_loss;
    ] )

let suites = suites @ [ srm_suite; pbcast_suite ]
