test/astring_like.ml: String
