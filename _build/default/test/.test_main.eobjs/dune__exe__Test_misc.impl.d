test/test_misc.ml: Alcotest Astring_like Engine Format List Node_id Protocol Rrmp String
