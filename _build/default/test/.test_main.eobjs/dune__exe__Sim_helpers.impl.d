test/sim_helpers.ml: Engine
