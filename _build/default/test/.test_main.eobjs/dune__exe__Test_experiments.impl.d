test/test_experiments.ml: Alcotest Array Engine Experiments List Node_id Printf Stats Topology
