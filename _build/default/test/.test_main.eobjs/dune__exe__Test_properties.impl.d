test/test_properties.ml: Array Engine Float List Loss Netsim Node_id Printf QCheck QCheck_alcotest Region_id Rrmp Seq String Topology
