test/test_engine.ml: Alcotest Array Engine Fun Gc Hashtbl Heap Int List Option QCheck QCheck_alcotest Rng Sim Stdlib Sys Timer Weak Wheel
