test/test_engine.ml: Alcotest Array Engine Fun Hashtbl Heap Int List Option QCheck QCheck_alcotest Rng Sim Timer
