test/test_rrmp.ml: Alcotest Array Engine Experiments Float List Loss Netsim Node_id Printf Protocol QCheck QCheck_alcotest Region_id Result Rrmp Sim_helpers Stats String Topology Tracing
