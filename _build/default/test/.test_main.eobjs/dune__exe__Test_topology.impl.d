test/test_topology.ml: Alcotest Array Engine Latency List Loss Node_id Option QCheck QCheck_alcotest Region_id Topology
