test/test_tracing.ml: Alcotest Filename Fun Sys Tracing
