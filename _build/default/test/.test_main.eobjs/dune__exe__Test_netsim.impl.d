test/test_netsim.ml: Alcotest Array Engine Latency List Loss Netsim Node_id Region_id Topology
