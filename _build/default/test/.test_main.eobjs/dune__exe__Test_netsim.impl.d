test/test_netsim.ml: Alcotest Engine Latency List Loss Netsim Node_id Region_id Topology
