test/test_edge_cases.ml: Alcotest List Loss Netsim Node_id Printf Protocol Region_id Rrmp Topology
