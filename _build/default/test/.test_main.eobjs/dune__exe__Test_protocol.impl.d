test/test_protocol.ml: Alcotest Gen List Node_id Protocol QCheck QCheck_alcotest
