test/test_baselines.ml: Alcotest Baselines Engine List Node_id Printf Region_id Rrmp Topology
