test/test_membership.ml: Alcotest Array Engine List Membership Node_id Option Printf Region_id Topology
