test/test_policies.ml: Alcotest Array Latency List Netsim Node_id Option Printf Protocol Region_id Result Rrmp Seq Topology
