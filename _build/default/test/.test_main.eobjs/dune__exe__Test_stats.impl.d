test/test_stats.ml: Alcotest Array Dist Float Gen Hist List Printf QCheck QCheck_alcotest Series Stats Summary
