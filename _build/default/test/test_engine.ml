(* Tests for the discrete-event engine: RNG determinism and statistical
   sanity, heap ordering, simulator scheduling semantics, timers. *)

open Engine

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_rng_copy () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 500 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_rng_uniform_range () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create ~seed:6 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.uniform rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_bernoulli_rate () =
  let rng = Rng.create ~seed:8 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:8 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:10 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.0) < 0.2)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng ~mu:2.0 ~sigma:3.0 in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 2" true (abs_float (mean -. 2.0) < 0.1);
  Alcotest.(check bool) "var near 9" true (abs_float (var -. 9.0) < 0.5)

let test_rng_geometric_mean () =
  let rng = Rng.create ~seed:12 in
  let n = 20_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.geometric rng ~p:0.25
  done;
  (* mean of failures-before-success is (1-p)/p = 3 *)
  let mean = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.15)

let test_rng_pick_uniformity () =
  let rng = Rng.create ~seed:13 in
  let arr = [| 0; 1; 2; 3 |] in
  let counts = Array.make 4 0 in
  let n = 8_000 in
  for _ = 1 to n do
    let v = Rng.pick rng arr in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let rate = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "near 1/4" true (abs_float (rate -. 0.25) < 0.03))
    counts

let test_rng_pick_other () =
  let rng = Rng.create ~seed:14 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    match Rng.pick_other rng arr ~not_equal:2 with
    | Some v -> Alcotest.(check bool) "never the excluded" true (v <> 2)
    | None -> Alcotest.fail "expected a candidate"
  done;
  Alcotest.(check (option int)) "singleton exhausted" None
    (Rng.pick_other rng [| 5 |] ~not_equal:5)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:15 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create ~seed:16 in
  let arr = Array.init 10 Fun.id in
  let s = Rng.sample_without_replacement rng 4 arr in
  Alcotest.(check int) "size" 4 (Array.length s);
  let seen = Hashtbl.create 4 in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen x);
      Hashtbl.add seen x ())
    s

let qcheck_rng_int_in_range =
  QCheck.Test.make ~name:"rng int always in range" ~count:200
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let int_heap () = Heap.create ~dummy:0 ~compare_priority:Int.compare ()

let test_heap_order () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  let popped = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "ascending" [ 1; 1; 3; 4; 5 ] popped;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  (* equal priorities must pop in insertion order *)
  let h =
    Heap.create ~dummy:(0, "") ~compare_priority:(fun (a, _) (b, _) -> Int.compare a b) ()
  in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let popped = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "fifo among ties" [ "z"; "a"; "b"; "c" ] popped

let test_heap_peek () =
  let h = int_heap () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 2;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

let test_heap_push_list () =
  (* bulk load into an empty heap goes through Floyd heapify; bulk load
     into a non-empty heap falls back to per-element sift *)
  let h = int_heap () in
  Heap.push_list h [ 9; 2; 7; 2; 5 ];
  Heap.push_list h [ 1; 8 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "merged sorted" [ 1; 2; 2; 5; 7; 8; 9 ] (drain [])

let test_heap_top_remove_top () =
  let h = int_heap () in
  Alcotest.(check int) "top of empty is dummy" 0 (Heap.top h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check int) "top is min" 1 (Heap.top h);
  Heap.remove_top h;
  Alcotest.(check int) "next top" 3 (Heap.top h);
  Heap.remove_top h;
  Heap.remove_top h (* removing from empty is a no-op *);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_no_space_retention () =
  (* popped slots must be overwritten with the dummy so the GC can
     reclaim popped values even while the heap object stays alive *)
  let dummy = ref (-1) in
  let h = Heap.create ~dummy ~compare_priority:(fun a b -> Int.compare !a !b) () in
  let n = 16 in
  let weak = Weak.create n in
  let fill () =
    for i = 0 to n - 1 do
      let v = ref i in
      Weak.set weak i (Some v);
      Heap.push h v
    done
  in
  fill ();
  let rec drain () = if Heap.pop h <> None then drain () in
  drain ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr live
  done;
  Alcotest.(check int) "popped values collectable" 0 !live;
  ignore (Sys.opaque_identity h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap pops any int list sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let qcheck_heap_push_list_sorts =
  QCheck.Test.make ~name:"heap push_list equals sequential pushes" ~count:300
    QCheck.(pair (list int) (list int))
    (fun (xs, ys) ->
      let h = int_heap () in
      Heap.push_list h xs;
      Heap.push_list h ys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare (xs @ ys))

(* ------------------------------------------------------------------ *)
(* Wheel                                                               *)
(* ------------------------------------------------------------------ *)

let timed_wheel () = Wheel.create ~time_of:fst ~compare:Stdlib.compare ()

let drain_wheel w =
  let rec go acc = match Wheel.pop w with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let test_wheel_sorted_across_levels () =
  let w = timed_wheel () in
  (* ticks spanning all three levels, plus an exact tie broken by seq *)
  let xs =
    [ (5.2, 1); (0.1, 2); (5.2, 3); (900_000.0, 4); (300.7, 5); (70_000.3, 6); (5.2, 7) ]
  in
  List.iter (fun x -> Alcotest.(check bool) "accepted" true (Wheel.add w x)) xs;
  Alcotest.(check int) "length" (List.length xs) (Wheel.length w);
  Alcotest.(check (list (pair (float 1e-9) int))) "drained in order"
    (List.sort compare xs) (drain_wheel w)

let test_wheel_horizon_rejects () =
  let w = timed_wheel () in
  Alcotest.(check bool) "anchor" true (Wheel.add w (0.0, 0));
  Alcotest.(check bool) "beyond horizon rejected" false (Wheel.add w (2e6, 1));
  Alcotest.(check int) "rejected entry not stored" 1 (Wheel.length w)

let test_wheel_add_behind_cursor () =
  let w = timed_wheel () in
  ignore (Wheel.add w (10.0, 1));
  Alcotest.(check (option (pair (float 1e-9) int))) "first" (Some (10.0, 1)) (Wheel.pop w);
  (* the cursor has moved past tick 3; late adds must still come out,
     and in order *)
  ignore (Wheel.add w (5.0, 3));
  ignore (Wheel.add w (3.0, 2));
  Alcotest.(check (list (pair (float 1e-9) int))) "late adds ordered"
    [ (3.0, 2); (5.0, 3) ] (drain_wheel w)

let test_wheel_filter_in_place () =
  let w = timed_wheel () in
  List.iter (fun x -> ignore (Wheel.add w x))
    [ (1.0, 1); (2.0, 2); (300.0, 3); (70_000.0, 4) ];
  Wheel.filter_in_place w (fun (_, i) -> i mod 2 = 0);
  Alcotest.(check (list (pair (float 1e-9) int))) "survivors in order"
    [ (2.0, 2); (70_000.0, 4) ] (drain_wheel w)

let qcheck_wheel_sorts =
  QCheck.Test.make ~name:"wheel pops accepted entries in order" ~count:300
    QCheck.(list (int_bound 3_000_000))
    (fun ticks ->
      let w = timed_wheel () in
      let kept = ref [] in
      List.iteri
        (fun i v ->
          let entry = (float_of_int v /. 3.0, i) in
          if Wheel.add w entry then kept := entry :: !kept)
        ticks;
      drain_wheel w = List.sort compare (List.rev !kept))

(* ------------------------------------------------------------------ *)
(* Sim                                                                 *)
(* ------------------------------------------------------------------ *)

let test_sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  let mark label () = log := (label, Sim.now sim) :: !log in
  ignore (Sim.schedule sim ~delay:30.0 (mark "c"));
  ignore (Sim.schedule sim ~delay:10.0 (mark "a"));
  ignore (Sim.schedule sim ~delay:20.0 (mark "b"));
  Sim.run sim;
  Alcotest.(check (list (pair string (float 1e-9))))
    "ordered by time"
    [ ("a", 10.0); ("b", 20.0); ("c", 30.0) ]
    (List.rev !log)

let test_sim_same_instant_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Sim.schedule sim ~delay:5.0 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo at one instant" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Sim.schedule sim ~delay:2.0 (fun () -> fired := "inner" :: !fired))));
  Sim.run sim;
  check_float "clock at last event" 3.0 (Sim.now sim);
  Alcotest.(check (list string)) "both fired" [ "outer"; "inner" ] (List.rev !fired)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check bool) "cancelled never fires" false !fired;
  Alcotest.(check bool) "reports cancelled" true (Sim.cancelled h)

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  List.iter
    (fun d -> ignore (Sim.schedule sim ~delay:d (fun () -> incr count)))
    [ 1.0; 2.0; 3.0; 4.0 ];
  Sim.run ~until:2.5 sim;
  Alcotest.(check int) "only events <= until" 2 !count;
  check_float "clock advanced to until" 2.5 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "rest run later" 4 !count

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let at = ref (-1.0) in
  ignore
    (Sim.schedule sim ~delay:5.0 (fun () ->
         ignore (Sim.schedule sim ~delay:(-3.0) (fun () -> at := Sim.now sim))));
  Sim.run sim;
  check_float "clamped to now" 5.0 !at

let test_sim_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  (* self-perpetuating event chain would never terminate without cap *)
  let rec tick () =
    incr count;
    ignore (Sim.schedule sim ~delay:1.0 tick)
  in
  ignore (Sim.schedule sim ~delay:1.0 tick);
  Sim.run ~max_events:50 sim;
  Alcotest.(check int) "stopped at cap" 50 !count

let test_sim_events_executed_excludes_cancelled () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1.0 ignore);
  let h = Sim.schedule sim ~delay:2.0 ignore in
  Sim.cancel h;
  Sim.run sim;
  Alcotest.(check int) "one executed" 1 (Sim.events_executed sim)

let test_sim_compaction () =
  let sim = Sim.create () in
  let hs = Array.init 100 (fun i -> Sim.schedule sim ~delay:(float_of_int i +. 1.0) ignore) in
  Array.iteri (fun i h -> if i < 70 then Sim.cancel h) hs;
  Alcotest.(check int) "cancelled tracked" 70 (Sim.cancelled_pending sim);
  Alcotest.(check int) "still queued" 100 (Sim.pending sim);
  (* cancelled > half of pending: the next schedule triggers compaction *)
  ignore (Sim.schedule sim ~delay:500.0 ignore);
  Alcotest.(check int) "compacted away" 0 (Sim.cancelled_pending sim);
  Alcotest.(check int) "survivors only" 31 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "survivors all fire" 31 (Sim.events_executed sim)

let test_sim_far_future_heap_fallback () =
  (* events beyond the wheel horizon (2^20 ms) take the heap path and
     must still interleave correctly with near events *)
  let sim = Sim.create () in
  let log = ref [] in
  let mark label () = log := label :: !log in
  ignore (Sim.schedule sim ~delay:2_000_000.0 (mark "far"));
  ignore (Sim.schedule sim ~delay:1.0 (mark "near"));
  ignore (Sim.schedule sim ~delay:3_000_000.0 (mark "farther"));
  Sim.run sim;
  Alcotest.(check (list string)) "near first" [ "near"; "far"; "farther" ] (List.rev !log);
  check_float "clock at last" 3_000_000.0 (Sim.now sim)

(* Wheel/heap scheduler equivalence: any randomized mix of schedules
   (near, tie-prone, beyond-horizon), cancels, reschedules-on-fire (the
   RRMP idle-reset shape) and partial runs must produce the same firing
   log, clock and event count whether or not the wheel is enabled. *)
let sim_trace ~wheel ops =
  let sim = Sim.create ~wheel () in
  let log = ref [] in
  let handles = ref [] in
  let n_handles = ref 0 in
  let next_label = ref 0 in
  let rec sched delay =
    let label = !next_label in
    incr next_label;
    let h =
      Sim.schedule sim ~delay (fun () ->
          log := (label, Sim.now sim) :: !log;
          (* every third event reschedules itself once, like an idle
             timer being touched by traffic *)
          if label mod 3 = 0 && label < 2000 then
            sched (float_of_int (label mod 7) /. 2.0))
    in
    handles := h :: !handles;
    incr n_handles
  in
  List.iter
    (fun (tag, v) ->
      match tag mod 6 with
      | 0 | 1 -> sched (float_of_int (v mod 2000) *. 0.75)
      | 2 -> sched (float_of_int (v mod 13) /. 4.0) (* tie-prone *)
      | 3 -> sched (1_000_000.0 +. float_of_int v) (* near/beyond horizon *)
      | 4 ->
        if !n_handles > 0 then Sim.cancel (List.nth !handles (v mod !n_handles))
      | _ -> Sim.run ~until:(Sim.now sim +. float_of_int (v mod 300)) sim)
    ops;
  Sim.run sim;
  (List.rev !log, Sim.now sim, Sim.events_executed sim)

let qcheck_sim_wheel_equivalence =
  QCheck.Test.make ~name:"wheel and heap schedulers are equivalent" ~count:1000
    QCheck.(list (pair small_nat (int_bound 10_000)))
    (fun ops -> sim_trace ~wheel:true ops = sim_trace ~wheel:false ops)

(* ------------------------------------------------------------------ *)
(* Timer                                                               *)
(* ------------------------------------------------------------------ *)

let test_idle_fires_without_touch () =
  let sim = Sim.create () in
  let fired_at = ref (-1.0) in
  let _ = Timer.Idle.create sim ~timeout:40.0 ~on_idle:(fun () -> fired_at := Sim.now sim) in
  Sim.run sim;
  check_float "fires after timeout" 40.0 !fired_at

let test_idle_touch_postpones () =
  let sim = Sim.create () in
  let fired_at = ref (-1.0) in
  let idle = Timer.Idle.create sim ~timeout:40.0 ~on_idle:(fun () -> fired_at := Sim.now sim) in
  ignore (Sim.schedule sim ~delay:30.0 (fun () -> Timer.Idle.touch idle));
  ignore (Sim.schedule sim ~delay:60.0 (fun () -> Timer.Idle.touch idle));
  Sim.run sim;
  check_float "fires 40ms after last touch" 100.0 !fired_at

let test_idle_stop () =
  let sim = Sim.create () in
  let fired = ref false in
  let idle = Timer.Idle.create sim ~timeout:10.0 ~on_idle:(fun () -> fired := true) in
  Timer.Idle.stop idle;
  Sim.run sim;
  Alcotest.(check bool) "stopped never fires" false !fired;
  Alcotest.(check bool) "inactive" false (Timer.Idle.active idle)

let test_idle_restart () =
  let sim = Sim.create () in
  let fires = ref [] in
  let idle =
    Timer.Idle.create sim ~timeout:10.0 ~on_idle:(fun () -> ())
  in
  (* replace on_idle behaviour by observing via restart pattern *)
  Timer.Idle.stop idle;
  let idle2 =
    Timer.Idle.create sim ~timeout:10.0 ~on_idle:(fun () -> fires := Sim.now sim :: !fires)
  in
  ignore
    (Sim.schedule sim ~delay:25.0 (fun () -> Timer.Idle.restart idle2));
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "fired twice" [ 10.0; 35.0 ] (List.rev !fires)

let test_periodic_ticks () =
  let sim = Sim.create () in
  let ticks = ref [] in
  let p = Timer.Periodic.create sim ~interval:10.0 (fun () -> ticks := Sim.now sim :: !ticks) in
  ignore (Sim.schedule sim ~delay:35.0 (fun () -> Timer.Periodic.stop p));
  Sim.run ~until:100.0 sim;
  Alcotest.(check (list (float 1e-9))) "three ticks then stop" [ 10.0; 20.0; 30.0 ] (List.rev !ticks)

let test_periodic_stop_inside_tick () =
  let sim = Sim.create () in
  let count = ref 0 in
  let p = ref None in
  p :=
    Some
      (Timer.Periodic.create sim ~interval:1.0 (fun () ->
           incr count;
           if !count = 3 then Timer.Periodic.stop (Option.get !p)));
  Sim.run ~until:50.0 sim;
  Alcotest.(check int) "self-stop" 3 !count

let suites =
  [
    ( "engine.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
        Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        Alcotest.test_case "pick uniformity" `Quick test_rng_pick_uniformity;
        Alcotest.test_case "pick_other" `Quick test_rng_pick_other;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "sample without replacement" `Quick test_rng_sample_without_replacement;
        QCheck_alcotest.to_alcotest qcheck_rng_int_in_range;
      ] );
    ( "engine.heap",
      [
        Alcotest.test_case "orders" `Quick test_heap_order;
        Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
        Alcotest.test_case "peek" `Quick test_heap_peek;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        Alcotest.test_case "push_list" `Quick test_heap_push_list;
        Alcotest.test_case "top/remove_top" `Quick test_heap_top_remove_top;
        Alcotest.test_case "no space retention" `Quick test_heap_no_space_retention;
        QCheck_alcotest.to_alcotest qcheck_heap_sorts;
        QCheck_alcotest.to_alcotest qcheck_heap_push_list_sorts;
      ] );
    ( "engine.wheel",
      [
        Alcotest.test_case "sorted across levels" `Quick test_wheel_sorted_across_levels;
        Alcotest.test_case "horizon rejects" `Quick test_wheel_horizon_rejects;
        Alcotest.test_case "add behind cursor" `Quick test_wheel_add_behind_cursor;
        Alcotest.test_case "filter in place" `Quick test_wheel_filter_in_place;
        QCheck_alcotest.to_alcotest qcheck_wheel_sorts;
      ] );
    ( "engine.sim",
      [
        Alcotest.test_case "time order" `Quick test_sim_runs_in_time_order;
        Alcotest.test_case "same-instant fifo" `Quick test_sim_same_instant_fifo;
        Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
        Alcotest.test_case "cancel" `Quick test_sim_cancel;
        Alcotest.test_case "run until" `Quick test_sim_run_until;
        Alcotest.test_case "negative delay clamped" `Quick test_sim_negative_delay_clamped;
        Alcotest.test_case "max events" `Quick test_sim_max_events;
        Alcotest.test_case "executed excludes cancelled" `Quick test_sim_events_executed_excludes_cancelled;
        Alcotest.test_case "compaction reaps cancelled" `Quick test_sim_compaction;
        Alcotest.test_case "far-future heap fallback" `Quick test_sim_far_future_heap_fallback;
        QCheck_alcotest.to_alcotest qcheck_sim_wheel_equivalence;
      ] );
    ( "engine.timer",
      [
        Alcotest.test_case "idle fires" `Quick test_idle_fires_without_touch;
        Alcotest.test_case "idle touch postpones" `Quick test_idle_touch_postpones;
        Alcotest.test_case "idle stop" `Quick test_idle_stop;
        Alcotest.test_case "idle restart" `Quick test_idle_restart;
        Alcotest.test_case "periodic ticks" `Quick test_periodic_ticks;
        Alcotest.test_case "periodic self-stop" `Quick test_periodic_stop_inside_tick;
      ] );
  ]
