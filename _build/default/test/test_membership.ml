(* Tests for membership views, the gossip failure detector, and the
   churn generator. *)

let test_view_basic () =
  let topology = Topology.chain ~sizes:[ 3; 2 ] in
  let owner = Node_id.of_int 3 in
  let view = Membership.View.create topology ~owner in
  Alcotest.(check int) "region" 1 (Region_id.to_int (Membership.View.region view));
  Alcotest.(check (list int)) "local sans owner" [ 4 ]
    (Array.to_list (Array.map Node_id.to_int (Membership.View.local_members view)));
  Alcotest.(check (list int)) "parent members" [ 0; 1; 2 ]
    (Array.to_list (Array.map Node_id.to_int (Membership.View.parent_members view)));
  Alcotest.(check int) "local size includes owner" 2 (Membership.View.local_size view)

let test_view_root_region_has_no_parent () =
  let topology = Topology.chain ~sizes:[ 3; 2 ] in
  let view = Membership.View.create topology ~owner:(Node_id.of_int 0) in
  Alcotest.(check bool) "no parent" true (Membership.View.parent_region view = None);
  Alcotest.(check int) "no parent members" 0
    (Array.length (Membership.View.parent_members view))

let test_view_staleness_until_refresh () =
  let topology = Topology.single_region ~size:3 in
  let view = Membership.View.create topology ~owner:(Node_id.of_int 0) in
  let fresh = Topology.add_node topology (Region_id.of_int 0) in
  Alcotest.(check bool) "stale: unseen" false (Membership.View.knows view fresh);
  Membership.View.refresh view;
  Alcotest.(check bool) "refreshed: seen" true (Membership.View.knows view fresh)

let test_view_random_local_never_owner () =
  let topology = Topology.single_region ~size:4 in
  let owner = Node_id.of_int 2 in
  let view = Membership.View.create topology ~owner in
  let rng = Engine.Rng.create ~seed:5 in
  for _ = 1 to 200 do
    match Membership.View.random_local view rng with
    | Some n -> Alcotest.(check bool) "not owner" false (Node_id.equal n owner)
    | None -> Alcotest.fail "expected a neighbour"
  done

let test_view_random_local_other () =
  let topology = Topology.single_region ~size:3 in
  let view = Membership.View.create topology ~owner:(Node_id.of_int 0) in
  let rng = Engine.Rng.create ~seed:6 in
  for _ = 1 to 100 do
    match Membership.View.random_local_other view rng ~not_equal:(Node_id.of_int 1) with
    | Some n -> Alcotest.(check int) "only candidate" 2 (Node_id.to_int n)
    | None -> Alcotest.fail "expected node 2"
  done

let test_view_singleton_region () =
  let topology = Topology.single_region ~size:1 in
  let view = Membership.View.create topology ~owner:(Node_id.of_int 0) in
  let rng = Engine.Rng.create ~seed:7 in
  Alcotest.(check bool) "no neighbours" true (Membership.View.random_local view rng = None)

(* gossip failure detector wired over an in-memory "network" with
   direct synchronous delivery *)
let make_fd_cluster ~sim ~rng ~n ~gossip_interval ~fail_timeout =
  let fds = Array.make n None in
  let nodes = Array.init n Node_id.of_int in
  let send_to self ~dst digest =
    ignore self;
    match fds.(Node_id.to_int dst) with
    | Some fd -> Membership.Gossip_fd.on_gossip fd digest
    | None -> ()
  in
  Array.iteri
    (fun i node ->
      let peers = Array.of_list (List.filter (fun m -> m <> node) (Array.to_list nodes)) in
      let fd =
        Membership.Gossip_fd.create ~sim ~rng:(Engine.Rng.split rng) ~self:node ~peers
          ~gossip_interval ~fail_timeout ~send:(send_to node) ()
      in
      fds.(i) <- Some fd)
    nodes;
  Array.map Option.get fds

let test_gossip_no_false_suspicion () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:8 in
  let fds = make_fd_cluster ~sim ~rng ~n:5 ~gossip_interval:10.0 ~fail_timeout:100.0 in
  Engine.Sim.run ~until:1000.0 sim;
  Array.iter
    (fun fd ->
      Alcotest.(check (list int)) "no suspects in a healthy group" []
        (List.map Node_id.to_int (Membership.Gossip_fd.suspects fd)))
    fds

let test_gossip_detects_stopped_member () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:9 in
  let fds = make_fd_cluster ~sim ~rng ~n:5 ~gossip_interval:10.0 ~fail_timeout:100.0 in
  (* node 4 fails at t=200 *)
  ignore
    (Engine.Sim.schedule sim ~delay:200.0 (fun () -> Membership.Gossip_fd.stop fds.(4)));
  Engine.Sim.run ~until:1000.0 sim;
  Array.iteri
    (fun i fd ->
      if i <> 4 then
        Alcotest.(check bool)
          (Printf.sprintf "member %d suspects node 4" i)
          true
          (Membership.Gossip_fd.is_suspected fd (Node_id.of_int 4)))
    fds

let test_gossip_heartbeats_propagate () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:10 in
  let fds = make_fd_cluster ~sim ~rng ~n:4 ~gossip_interval:10.0 ~fail_timeout:500.0 in
  Engine.Sim.run ~until:300.0 sim;
  (* everyone should have learned a positive heartbeat for everyone *)
  Array.iteri
    (fun i fd ->
      Array.iteri
        (fun j _ ->
          match Membership.Gossip_fd.heartbeat_of fd (Node_id.of_int j) with
          | Some hb -> Alcotest.(check bool) (Printf.sprintf "%d knows %d" i j) true (hb > 0)
          | None -> Alcotest.fail (Printf.sprintf "%d never heard of %d" i j))
        fds)
    fds

let test_gossip_self_never_suspected () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:11 in
  let fds = make_fd_cluster ~sim ~rng ~n:2 ~gossip_interval:10.0 ~fail_timeout:50.0 in
  Engine.Sim.run ~until:500.0 sim;
  Alcotest.(check bool) "self not suspected" false
    (Membership.Gossip_fd.is_suspected fds.(0) (Node_id.of_int 0))

let test_churn_joins_and_leaves () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:12 in
  let topology = Topology.single_region ~size:5 in
  let sender = Node_id.of_int 0 in
  let events = ref [] in
  let churn =
    Membership.Churn.start ~sim ~rng ~topology ~join_rate:0.01 ~leave_rate:0.01
      ~protect:[ sender ] ~min_region_size:2
      ~on_event:(fun e -> events := e :: !events)
      ()
  in
  Engine.Sim.run ~until:2000.0 sim;
  Membership.Churn.stop churn;
  Alcotest.(check bool) "some joins happened" true (Membership.Churn.joins churn > 0);
  Alcotest.(check bool) "some leaves happened" true (Membership.Churn.leaves churn > 0);
  Alcotest.(check bool) "sender survives" true (Topology.is_member topology sender);
  Alcotest.(check bool) "region never emptied" true
    (Topology.region_size topology (Region_id.of_int 0) >= 2);
  (* every leave event references a node that was live at the time *)
  let leave_count =
    List.length (List.filter (function Membership.Churn.Leave _ -> true | _ -> false) !events)
  in
  Alcotest.(check int) "event per leave" (Membership.Churn.leaves churn) leave_count

let test_churn_zero_rates () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:13 in
  let topology = Topology.single_region ~size:3 in
  let churn =
    Membership.Churn.start ~sim ~rng ~topology ~join_rate:0.0 ~leave_rate:0.0
      ~on_event:(fun _ -> Alcotest.fail "no events expected")
      ()
  in
  Engine.Sim.run ~until:1000.0 sim;
  Alcotest.(check int) "no joins" 0 (Membership.Churn.joins churn);
  Alcotest.(check int) "unchanged" 3 (Topology.node_count topology)

let suites =
  [
    ( "membership.view",
      [
        Alcotest.test_case "basic" `Quick test_view_basic;
        Alcotest.test_case "root has no parent" `Quick test_view_root_region_has_no_parent;
        Alcotest.test_case "staleness until refresh" `Quick test_view_staleness_until_refresh;
        Alcotest.test_case "random_local never owner" `Quick test_view_random_local_never_owner;
        Alcotest.test_case "random_local_other" `Quick test_view_random_local_other;
        Alcotest.test_case "singleton region" `Quick test_view_singleton_region;
      ] );
    ( "membership.gossip_fd",
      [
        Alcotest.test_case "no false suspicion" `Quick test_gossip_no_false_suspicion;
        Alcotest.test_case "detects stopped member" `Quick test_gossip_detects_stopped_member;
        Alcotest.test_case "heartbeats propagate" `Quick test_gossip_heartbeats_propagate;
        Alcotest.test_case "self never suspected" `Quick test_gossip_self_never_suspected;
      ] );
    ( "membership.churn",
      [
        Alcotest.test_case "joins and leaves" `Quick test_churn_joins_and_leaves;
        Alcotest.test_case "zero rates" `Quick test_churn_zero_rates;
      ] );
  ]
