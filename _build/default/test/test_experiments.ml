(* Tests for the experiment harness: report rendering, the registry,
   and shape checks on cheap versions of the reproduced figures. *)

module Report = Experiments.Report

let float_cell row i = float_of_string (List.nth row i)

let test_report_make_validates () =
  Alcotest.check_raises "ragged rows rejected"
    (Invalid_argument "Report.make(x): row 0 has 1 cells, expected 2") (fun () ->
      ignore (Report.make ~id:"x" ~title:"t" ~columns:[ "a"; "b" ] [ [ "1" ] ]))

let test_report_cells () =
  Alcotest.(check string) "float" "1.500" (Report.cell_f 1.5);
  Alcotest.(check string) "pct" "25.000" (Report.cell_pct 0.25);
  Alcotest.(check string) "int" "7" (Report.cell_i 7)

let test_report_csv () =
  let r = Report.make ~id:"t" ~title:"T" ~columns:[ "a"; "b" ] [ [ "1"; "2" ] ] in
  Alcotest.(check string) "csv" "a,b\n1,2\n" (Report.to_csv r)

let test_registry_complete () =
  let ids = Experiments.Registry.ids in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required ids))
    [ "fig3"; "fig4"; "fig6"; "fig7"; "fig8"; "fig9" ];
  Alcotest.(check bool) "has extensions" true (List.length ids >= 14);
  Alcotest.(check bool) "find works" true (Experiments.Registry.find "fig6" <> None);
  Alcotest.(check bool) "unknown rejected" true (Experiments.Registry.find "nope" = None)

(* --- figure shape checks (cheap parameterizations) ------------------ *)

let test_fig3_poisson_columns () =
  let r = Experiments.Fig3.run ~cs:[ 6.0 ] ~max_k:12 ~mc_trials:4_000 () in
  (* analytic column must match Dist.poisson_pmf; MC column must be close *)
  List.iteri
    (fun k row ->
      let analytic = float_cell row 1 /. 100.0 in
      let mc = float_cell row 2 /. 100.0 in
      (* cells are rendered with 3 decimals in percent: ~5e-6 absolute *)
      Alcotest.(check (float 1e-5))
        (Printf.sprintf "analytic k=%d" k)
        (Stats.Dist.poisson_pmf ~lambda:6.0 k)
        analytic;
      Alcotest.(check bool) "mc close to analytic" true (abs_float (mc -. analytic) < 0.05))
    r.Report.rows;
  (* the mode of Poisson(6) sits at k = 5/6 *)
  let p5 = float_cell (List.nth r.Report.rows 5) 1 in
  let p0 = float_cell (List.nth r.Report.rows 0) 1 in
  Alcotest.(check bool) "mode >> tail" true (p5 > 10.0 *. p0)

let test_fig4_decreasing () =
  let r = Experiments.Fig4.run ~cs:[ 1.0; 3.0; 6.0 ] ~mc_trials:20_000 ~protocol_trials:20 () in
  let analytic = List.map (fun row -> float_cell row 1) r.Report.rows in
  (match analytic with
   | [ a; b; c ] ->
     Alcotest.(check bool) "strictly decreasing" true (a > b && b > c);
     Alcotest.(check bool) "0.25% at C=6" true (abs_float (c -. 0.248) < 0.01)
   | _ -> Alcotest.fail "three rows expected");
  (* MC tracks analytic *)
  List.iter
    (fun row ->
      let a = float_cell row 1 and mc = float_cell row 3 in
      Alcotest.(check bool) "mc tracks" true (abs_float (a -. mc) < 3.0))
    r.Report.rows

let test_fig6_shape () =
  let r = Experiments.Fig6.run ~holder_counts:[ 1; 16; 64 ] ~trials:5 () in
  let mean i = float_cell (List.nth r.Report.rows i) 1 in
  Alcotest.(check bool) "1 holder buffers > T" true (mean 0 > 40.0);
  Alcotest.(check bool) "decreasing" true (mean 0 > mean 2);
  Alcotest.(check bool) "64 holders close to T" true (mean 2 < 70.0)

let test_fig7_shape () =
  let r = Experiments.Fig7.run ~region:100 ~trials:1 ~seed:4 () in
  let last = List.nth r.Report.rows (List.length r.Report.rows - 1) in
  let received_end = float_cell last 1 and buffered_end = float_cell last 2 in
  Alcotest.(check bool) "everyone received by 140ms" true (received_end = 100.0);
  Alcotest.(check bool)
    (Printf.sprintf "buffered collapsed to ~C (%.0f)" buffered_end)
    true
    (buffered_end < 25.0);
  (* mid-recovery the two curves track each other *)
  let mid = List.nth r.Report.rows 6 (* t = 30ms *) in
  let received_mid = float_cell mid 1 and buffered_mid = float_cell mid 2 in
  Alcotest.(check bool) "buffered tracks received during recovery" true
    (buffered_mid >= received_mid *. 0.8)

let test_fig8_shape () =
  let r = Experiments.Fig8.run ~bufferer_counts:[ 1; 10 ] ~trials:30 () in
  let search_time i = float_cell (List.nth r.Report.rows i) 1 in
  Alcotest.(check bool) "1 bufferer slower than 10" true (search_time 0 > search_time 1);
  Alcotest.(check bool) "10 bufferers ~2 RTT" true (search_time 1 < 35.0)

let test_fig9_sublinear () =
  let r = Experiments.Fig9.run ~region_sizes:[ 100; 1000 ] ~trials:30 () in
  let t100 = float_cell (List.nth r.Report.rows 0) 1 in
  let t1000 = float_cell (List.nth r.Report.rows 1) 1 in
  let factor = t1000 /. t100 in
  Alcotest.(check bool)
    (Printf.sprintf "10x size -> %.1fx time (sublinear)" factor)
    true
    (factor > 1.0 && factor < 5.0)

let test_gini () =
  Alcotest.(check (float 1e-9)) "even distribution" 0.0
    (Experiments.Ext_load_balance.gini [ 1.0; 1.0; 1.0; 1.0 ]);
  let concentrated = Experiments.Ext_load_balance.gini [ 0.0; 0.0; 0.0; 10.0 ] in
  Alcotest.(check bool) "concentrated near (n-1)/n" true (abs_float (concentrated -. 0.75) < 1e-9);
  Alcotest.(check (float 1e-9)) "all zero" 0.0 (Experiments.Ext_load_balance.gini [ 0.0; 0.0 ])

let test_runner_replication () =
  let s = Experiments.Runner.mean_over_seeds ~trials:10 ~base_seed:5 (fun ~seed -> float_of_int seed) in
  Alcotest.(check (float 1e-9)) "mean of seeds 5..14" 9.5 (Stats.Summary.mean s);
  Alcotest.(check int) "count" 10 (Stats.Summary.count s)

let suites =
  [
    ( "experiments.report",
      [
        Alcotest.test_case "make validates" `Quick test_report_make_validates;
        Alcotest.test_case "cells" `Quick test_report_cells;
        Alcotest.test_case "csv" `Quick test_report_csv;
      ] );
    ( "experiments.registry",
      [ Alcotest.test_case "complete" `Quick test_registry_complete ] );
    ( "experiments.shapes",
      [
        Alcotest.test_case "fig3 poisson" `Quick test_fig3_poisson_columns;
        Alcotest.test_case "fig4 decreasing" `Quick test_fig4_decreasing;
        Alcotest.test_case "fig6 decreasing from >T" `Slow test_fig6_shape;
        Alcotest.test_case "fig7 collapse" `Quick test_fig7_shape;
        Alcotest.test_case "fig8 decreasing" `Slow test_fig8_shape;
        Alcotest.test_case "fig9 sublinear" `Slow test_fig9_sublinear;
      ] );
    ( "experiments.helpers",
      [
        Alcotest.test_case "gini" `Quick test_gini;
        Alcotest.test_case "runner replication" `Quick test_runner_replication;
      ] );
  ]

(* --- workload generators --------------------------------------------- *)

let test_workload_independent_rate () =
  let rng = Engine.Rng.create ~seed:1 in
  let reach = Experiments.Workload.independent ~rng ~p_reach:0.7 in
  let hits = ref 0 in
  let n = 10_000 in
  for i = 0 to n - 1 do
    if reach (Node_id.of_int i) then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "near 0.7" true (abs_float (rate -. 0.7) < 0.02)

let test_workload_regional_correlation () =
  (* with p_region_reach = 0.5 and perfect member delivery, each region
     is all-or-nothing *)
  let topology = Topology.chain ~sizes:[ 10; 10; 10; 10 ] in
  let all_or_nothing = ref true in
  let saw_full = ref false and saw_empty = ref false in
  for seed = 1 to 30 do
    let rng = Engine.Rng.create ~seed in
    let reach =
      Experiments.Workload.regional ~rng ~topology ~p_region_reach:0.5 ~p_member_reach:1.0 ()
    in
    List.iter
      (fun region ->
        let members = Topology.members topology region in
        let got = Array.to_list members |> List.filter reach |> List.length in
        if got = Array.length members then saw_full := true
        else if got = 0 then saw_empty := true
        else all_or_nothing := false)
      (Topology.regions topology)
  done;
  Alcotest.(check bool) "regions are all-or-nothing" true !all_or_nothing;
  Alcotest.(check bool) "some regions reached" true !saw_full;
  Alcotest.(check bool) "some regions missed" true !saw_empty

let test_workload_holders () =
  let set = [| Node_id.of_int 1; Node_id.of_int 3 |] in
  Alcotest.(check bool) "in set" true (Experiments.Workload.holders set (Node_id.of_int 3));
  Alcotest.(check bool) "out of set" false (Experiments.Workload.holders set (Node_id.of_int 2))

let test_workload_sample_holders () =
  let topology = Topology.single_region ~size:10 in
  let rng = Engine.Rng.create ~seed:2 in
  let set = Experiments.Workload.sample_holders ~rng ~topology ~count:4 in
  Alcotest.(check int) "size" 4 (Array.length set);
  Alcotest.check_raises "too many rejected"
    (Invalid_argument "Workload.sample_holders: count too large") (fun () ->
      ignore (Experiments.Workload.sample_holders ~rng ~topology ~count:11))

let workload_suite =
  ( "experiments.workload",
    [
      Alcotest.test_case "independent rate" `Quick test_workload_independent_rate;
      Alcotest.test_case "regional correlation" `Quick test_workload_regional_correlation;
      Alcotest.test_case "holders" `Quick test_workload_holders;
      Alcotest.test_case "sample holders" `Quick test_workload_sample_holders;
    ] )

let suites = suites @ [ workload_suite ]
