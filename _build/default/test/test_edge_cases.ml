(* Corner cases of the RRMP member machinery: duplicate handling,
   degenerate regions, multi-sender sessions, handoff races, and
   suppression details. *)

module Msg_id = Protocol.Msg_id
module Config = Rrmp.Config
module Member = Rrmp.Member
module Group = Rrmp.Group
module Buffer = Rrmp.Buffer
module Network = Netsim.Network

let mid ?(source = 0) seq = Msg_id.make ~source:(Node_id.of_int source) ~seq

(* --- degenerate shapes ---------------------------------------------- *)

let test_single_member_group () =
  let topology = Topology.single_region ~size:1 in
  let group = Group.create ~seed:1 ~topology () in
  let id = Group.multicast group () in
  Group.run group;
  Alcotest.(check bool) "own message received" true
    (Member.has_received (Group.sender group) id);
  Alcotest.(check bool) "terminates" true (Group.quiescent group)

let test_two_member_region_recovery () =
  let topology = Topology.single_region ~size:2 in
  let group = Group.create ~seed:2 ~topology () in
  let victim = Node_id.of_int 1 in
  let id = Group.multicast_reaching group ~reach:(fun _ -> false) () in
  Member.inject_loss (Group.member group victim) id;
  Group.run group;
  Alcotest.(check bool) "recovered from the only neighbour" true
    (Member.has_received (Group.member group victim) id)

let test_lonely_region_relies_on_remote () =
  (* a downstream region with a single member: local recovery has no
     neighbours; only the remote phase can help *)
  let topology = Topology.chain ~sizes:[ 5; 1 ] in
  let group = Group.create ~seed:3 ~topology () in
  let loner = Node_id.of_int 5 in
  let id = Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < 5) () in
  Member.inject_loss (Group.member group loner) id;
  Group.run group;
  Alcotest.(check bool) "recovered via parent region" true
    (Member.has_received (Group.member group loner) id)

(* --- duplicates and relays ------------------------------------------ *)

let test_duplicate_repairs_are_harmless () =
  let topology = Topology.single_region ~size:10 in
  let group = Group.create ~seed:4 ~topology () in
  let id = Group.multicast group () in
  Group.run group;
  (* fire several redundant repairs at a member that already has it *)
  let target = Node_id.of_int 3 in
  let payload = Rrmp.Payload.make id in
  for i = 4 to 6 do
    Network.unicast (Group.net group) ~cls:"repair" ~src:(Node_id.of_int i) ~dst:target
      (Rrmp.Wire.Repair payload)
  done;
  Group.run group;
  Alcotest.(check bool) "still consistent" true (Member.has_received (Group.member group target) id);
  Alcotest.(check bool) "terminates" true (Group.quiescent group)

let test_pending_remote_served_once () =
  (* two remote requests from the same origin for a message the target
     lacks: the origin must be recorded once and served once *)
  let topology = Topology.chain ~sizes:[ 3; 3 ] in
  let group = Group.create ~seed:5 ~topology () in
  let id = Group.multicast_reaching group ~reach:(fun _ -> false) () in
  let target = Node_id.of_int 0 in
  let origin = Node_id.of_int 4 in
  (* the sender (node 0) holds it; aim at node 1 which misses it *)
  let relay = Node_id.of_int 1 in
  ignore target;
  Network.unicast (Group.net group) ~cls:"remote-req" ~src:origin ~dst:relay
    (Rrmp.Wire.Remote_request { id; origin });
  Network.unicast (Group.net group) ~cls:"remote-req" ~src:origin ~dst:relay
    (Rrmp.Wire.Remote_request { id; origin });
  Group.run group;
  Alcotest.(check bool) "origin served" true
    (Member.has_received (Group.member group origin) id)

let test_remote_request_reveals_existence () =
  (* node 1 neither received the message nor knows it exists; a remote
     request for it must start node 1's own recovery *)
  let topology = Topology.chain ~sizes:[ 3; 2 ] in
  let group = Group.create ~seed:6 ~topology () in
  let id = Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n = 1) () in
  (* only node 1 got it... wait, make node 2 the one lacking it *)
  ignore id;
  let id2 = Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n = 1) () in
  let origin = Node_id.of_int 3 in
  Network.unicast (Group.net group) ~cls:"remote-req" ~src:origin ~dst:(Node_id.of_int 2)
    (Rrmp.Wire.Remote_request { id = id2; origin });
  Group.run group;
  Alcotest.(check bool) "node 2 recovered (request revealed the loss)" true
    (Member.has_received (Group.member group (Node_id.of_int 2)) id2);
  Alcotest.(check bool) "origin relayed to" true
    (Member.has_received (Group.member group origin) id2)

(* --- handoff corners ------------------------------------------------- *)

let test_leave_with_empty_buffer_sends_nothing () =
  let topology = Topology.single_region ~size:5 in
  let group = Group.create ~seed:7 ~topology () in
  Group.leave group (Node_id.of_int 2);
  Group.run group;
  Alcotest.(check int) "no handoff traffic" 0
    (Network.stats (Group.net group) ~cls:"handoff").Network.sent

let test_leave_batches_handoff_per_target () =
  (* a member long-term-buffering several messages leaves: each target
     receives at most one handoff packet *)
  let topology = Topology.single_region ~size:3 in
  let group = Group.create ~seed:8 ~topology () in
  let leaver = Group.member group (Node_id.of_int 1) in
  for seq = 0 to 9 do
    Member.force_buffer leaver ~phase:Buffer.Long_term (Rrmp.Payload.make (mid seq))
  done;
  Group.leave group (Node_id.of_int 1);
  Group.run group;
  let sent = (Network.stats (Group.net group) ~cls:"handoff").Network.sent in
  Alcotest.(check bool) (Printf.sprintf "batched: %d packets <= 2 targets" sent) true (sent <= 2);
  (* every message survived somewhere *)
  for seq = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "msg %d survives" seq)
      true
      (Group.count_buffered group (mid seq) > 0)
  done

let test_handoff_to_short_term_holder_promotes () =
  let topology = Topology.single_region ~size:2 in
  let group = Group.create ~seed:9 ~topology () in
  let id = mid 0 in
  let payload = Rrmp.Payload.make id in
  (* node 1 holds it short-term; node 0 long-term and leaves *)
  Member.force_buffer (Group.member group (Node_id.of_int 1)) ~phase:Buffer.Short_term payload;
  Member.force_buffer (Group.member group (Node_id.of_int 0)) ~phase:Buffer.Long_term payload;
  Group.leave group (Node_id.of_int 0);
  Group.run group;
  Alcotest.(check bool) "short-term holder took the long-term role" true
    (Member.buffer_phase (Group.member group (Node_id.of_int 1)) id = Some Buffer.Long_term)

(* --- multi-sender sessions ------------------------------------------ *)

let test_two_senders () =
  (* any member may multicast: ids are (source, seq) so streams do not
     collide and recovery works per source *)
  let topology = Topology.chain ~sizes:[ 10; 10 ] in
  let config = { Config.default with Config.session_interval = Some 25.0 } in
  let group = Group.create ~seed:10 ~config ~loss:(Loss.Bernoulli 0.2) ~topology () in
  let a = Member.multicast (Group.member group (Node_id.of_int 0)) () in
  let b = Member.multicast (Group.member group (Node_id.of_int 15)) () in
  Alcotest.(check bool) "distinct ids" false (Msg_id.equal a b);
  Group.run ~until:10_000.0 group;
  Alcotest.(check int) "stream A delivered" 20 (Group.count_received group a);
  Alcotest.(check int) "stream B delivered" 20 (Group.count_received group b)

(* --- regional backoff suppression details ---------------------------- *)

let test_backoff_cancelled_by_peer_multicast () =
  (* force two members of a region to obtain the same remote repair at
     slightly different times: with back-off, the later regional
     multicast is suppressed by the earlier one *)
  let topology = Topology.chain ~sizes:[ 2; 6 ] in
  let config =
    { Config.default with
      Config.regional_send = Config.Backoff { max_delay = 50.0 };
      Config.lambda = 20.0 (* both downstream members ask remotely *);
    }
  in
  let group = Group.create ~seed:11 ~config ~topology () in
  let id = Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < 2) () in
  List.iter
    (fun m -> Member.inject_loss m id)
    (Group.members_of_region group (Region_id.of_int 1));
  Group.run group;
  Alcotest.(check bool) "all recovered" true (Group.received_by_all group id);
  (* at most a couple of regional multicasts despite many remote repairs *)
  let regional = (Network.stats (Group.net group) ~cls:"regional-repair").Network.sent in
  Alcotest.(check bool)
    (Printf.sprintf "suppressed: %d regional packets <= 3 multicasts x 5" regional)
    true
    (regional <= 15)

(* --- search without candidates --------------------------------------- *)

let test_search_alone_in_region () =
  (* the only member of a region gets a remote request for a message it
     discarded: there is nobody to search; the run must terminate *)
  let topology = Topology.chain ~sizes:[ 1; 1 ] in
  let config = { Config.default with Config.max_recovery_tries = Some 10 } in
  let group = Group.create ~seed:12 ~config ~topology () in
  let id = mid 0 in
  Member.force_received (Group.member group (Node_id.of_int 0)) id;
  let origin = Node_id.of_int 1 in
  Network.unicast (Group.net group) ~cls:"remote-req" ~src:origin ~dst:(Node_id.of_int 0)
    (Rrmp.Wire.Remote_request { id; origin });
  Group.run ~max_events:50_000 group;
  Alcotest.(check bool) "terminates" true (Group.quiescent group);
  Alcotest.(check bool) "origin not served (nobody has it)" false
    (Member.has_received (Group.member group origin) id)

let suites =
  [
    ( "rrmp.edge.shapes",
      [
        Alcotest.test_case "single member" `Quick test_single_member_group;
        Alcotest.test_case "two members" `Quick test_two_member_region_recovery;
        Alcotest.test_case "lonely region" `Quick test_lonely_region_relies_on_remote;
      ] );
    ( "rrmp.edge.duplicates",
      [
        Alcotest.test_case "duplicate repairs harmless" `Quick test_duplicate_repairs_are_harmless;
        Alcotest.test_case "pending remote served once" `Quick test_pending_remote_served_once;
        Alcotest.test_case "request reveals existence" `Quick test_remote_request_reveals_existence;
      ] );
    ( "rrmp.edge.handoff",
      [
        Alcotest.test_case "empty buffer" `Quick test_leave_with_empty_buffer_sends_nothing;
        Alcotest.test_case "batched per target" `Quick test_leave_batches_handoff_per_target;
        Alcotest.test_case "promotes short-term holder" `Quick test_handoff_to_short_term_holder_promotes;
      ] );
    ( "rrmp.edge.multi_sender",
      [ Alcotest.test_case "two senders" `Quick test_two_senders ] );
    ( "rrmp.edge.suppression",
      [ Alcotest.test_case "backoff cancelled by peer" `Quick test_backoff_cancelled_by_peer_multicast ] );
    ( "rrmp.edge.search",
      [ Alcotest.test_case "alone in region" `Quick test_search_alone_in_region ] );
  ]
