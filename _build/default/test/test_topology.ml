(* Tests for ids, latency/loss models, and the region hierarchy. *)

let check_float = Alcotest.(check (float 1e-9))

let node = Alcotest.testable Node_id.pp Node_id.equal

(* ------------------------------------------------------------------ *)
(* Ids                                                                 *)
(* ------------------------------------------------------------------ *)

let test_node_id_roundtrip () =
  let n = Node_id.of_int 42 in
  Alcotest.(check int) "roundtrip" 42 (Node_id.to_int n);
  Alcotest.(check string) "pp" "n42" (Node_id.to_string n);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Node_id.of_int: negative id")
    (fun () -> ignore (Node_id.of_int (-1)))

let test_node_id_order () =
  let a = Node_id.of_int 1 and b = Node_id.of_int 2 in
  Alcotest.(check bool) "compare" true (Node_id.compare a b < 0);
  Alcotest.(check bool) "equal" false (Node_id.equal a b);
  let set = Node_id.Set.of_list [ b; a; a ] in
  Alcotest.(check int) "set dedup" 2 (Node_id.Set.cardinal set)

let test_region_id () =
  let r = Region_id.of_int 3 in
  Alcotest.(check int) "roundtrip" 3 (Region_id.to_int r);
  Alcotest.(check string) "pp" "r3" (Region_id.to_string r)

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_constant () =
  let rng = Engine.Rng.create ~seed:1 in
  let l = Latency.create ~intra:(Latency.Constant 5.0) ~inter:(Latency.Constant 50.0) in
  check_float "intra" 5.0 (Latency.intra l rng);
  check_float "inter 1 hop = intra leg + hop" 55.0 (Latency.inter l ~hops:1 rng);
  check_float "inter 3 hops" 155.0 (Latency.inter l ~hops:3 rng)

let test_latency_paper_default_rtt () =
  (* the paper's setting: 10 ms round trip within a region *)
  check_float "intra rtt" 10.0 (Latency.intra_rtt Latency.paper_default);
  check_float "inter rtt 1 hop" 110.0 (Latency.inter_rtt Latency.paper_default ~hops:1)

let test_latency_uniform_bounds () =
  let rng = Engine.Rng.create ~seed:2 in
  let l = Latency.create ~intra:(Latency.Uniform { lo = 2.0; hi = 8.0 }) ~inter:(Latency.Constant 0.0) in
  for _ = 1 to 500 do
    let d = Latency.intra l rng in
    Alcotest.(check bool) "in range" true (d >= 2.0 && d < 8.0)
  done;
  check_float "mean model" 5.0 (Latency.mean_model (Latency.Uniform { lo = 2.0; hi = 8.0 }))

let test_latency_lognormal_positive () =
  let rng = Engine.Rng.create ~seed:3 in
  let model = Latency.Lognormal { median = 20.0; sigma = 0.5 } in
  for _ = 1 to 500 do
    Alcotest.(check bool) "positive" true (Latency.sample_model model rng > 0.0)
  done;
  (* analytic mean = median * exp(sigma^2/2) *)
  check_float "mean model" (20.0 *. exp 0.125) (Latency.mean_model model)

let test_latency_validation () =
  Alcotest.check_raises "negative constant" (Invalid_argument "Latency: negative constant delay")
    (fun () -> ignore (Latency.create ~intra:(Latency.Constant (-1.0)) ~inter:(Latency.Constant 0.0)));
  Alcotest.check_raises "hops < 1" (Invalid_argument "Latency.inter: hops must be >= 1")
    (fun () ->
      let rng = Engine.Rng.create ~seed:1 in
      ignore (Latency.inter Latency.paper_default ~hops:0 rng))

(* ------------------------------------------------------------------ *)
(* Loss                                                                *)
(* ------------------------------------------------------------------ *)

let test_loss_lossless () =
  let t = Loss.create Loss.Lossless ~rng:(Engine.Rng.create ~seed:1) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "never drops" false
      (Loss.drop t ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1))
  done

let test_loss_bernoulli_rate () =
  let t = Loss.create (Loss.Bernoulli 0.2) ~rng:(Engine.Rng.create ~seed:2) in
  let drops = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Loss.drop t ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "near 0.2" true (abs_float (rate -. 0.2) < 0.02)

let test_loss_gilbert_elliott_stationary () =
  let model =
    Loss.Gilbert_elliott
      { p_good_to_bad = 0.1; p_bad_to_good = 0.3; loss_good = 0.01; loss_bad = 0.5 }
  in
  (* stationary: pi_bad = 0.1/0.4 = 0.25; loss = 0.25*0.5 + 0.75*0.01 *)
  check_float "expected rate" 0.1325 (Loss.expected_loss_rate model);
  let t = Loss.create model ~rng:(Engine.Rng.create ~seed:3) in
  let drops = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Loss.drop t ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) then incr drops
  done;
  let rate = float_of_int !drops /. float_of_int n in
  Alcotest.(check bool) "empirical near stationary" true (abs_float (rate -. 0.1325) < 0.02)

let test_loss_gilbert_burstiness () =
  (* with sticky states, consecutive losses should be far more likely
     than under an independent model of the same rate *)
  let model =
    Loss.Gilbert_elliott
      { p_good_to_bad = 0.01; p_bad_to_good = 0.05; loss_good = 0.0; loss_bad = 0.6 }
  in
  let t = Loss.create model ~rng:(Engine.Rng.create ~seed:4) in
  let src = Node_id.of_int 0 and dst = Node_id.of_int 1 in
  let n = 50_000 in
  let losses = ref 0 and pairs = ref 0 and prev = ref false in
  for _ = 1 to n do
    let d = Loss.drop t ~src ~dst in
    if d then incr losses;
    if d && !prev then incr pairs;
    prev := d
  done;
  let rate = float_of_int !losses /. float_of_int n in
  let pair_rate = float_of_int !pairs /. float_of_int (max 1 !losses) in
  Alcotest.(check bool) "bursty: P(loss|loss) >> P(loss)" true (pair_rate > 2.0 *. rate)

let test_loss_validation () =
  Alcotest.check_raises "bad probability" (Invalid_argument "Loss: loss probability out of [0,1]")
    (fun () -> ignore (Loss.create (Loss.Bernoulli 1.5) ~rng:(Engine.Rng.create ~seed:1)))

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_single_region () =
  let t = Topology.single_region ~size:10 in
  Alcotest.(check int) "regions" 1 (Topology.region_count t);
  Alcotest.(check int) "nodes" 10 (Topology.node_count t);
  let r0 = Region_id.of_int 0 in
  Alcotest.(check int) "region size" 10 (Topology.region_size t r0);
  Alcotest.(check (option reject)) "no parent" None
    (Option.map (fun _ -> ()) (Topology.parent t r0))

let test_chain_structure () =
  let t = Topology.chain ~sizes:[ 3; 4; 5 ] in
  let r = Region_id.of_int in
  Alcotest.(check int) "regions" 3 (Topology.region_count t);
  Alcotest.(check int) "total nodes" 12 (Topology.node_count t);
  Alcotest.(check bool) "r1 parent is r0" true
    (match Topology.parent t (r 1) with Some p -> Region_id.equal p (r 0) | None -> false);
  Alcotest.(check int) "depth r2" 2 (Topology.depth t (r 2));
  Alcotest.(check int) "hops r0-r2" 2 (Topology.hops t (r 0) (r 2));
  Alcotest.(check int) "hops same" 0 (Topology.hops t (r 1) (r 1))

let test_star_structure () =
  let t = Topology.star ~hub:2 ~leaves:[ 3; 3; 3 ] in
  let r = Region_id.of_int in
  Alcotest.(check int) "regions" 4 (Topology.region_count t);
  Alcotest.(check int) "hops leaf-leaf via hub" 2 (Topology.hops t (r 1) (r 3));
  Alcotest.(check (list int)) "children of hub" [ 1; 2; 3 ]
    (List.map Region_id.to_int (Topology.children t (r 0)))

let test_balanced_tree () =
  let t = Topology.balanced_tree ~fanout:2 ~levels:3 ~region_size:4 in
  Alcotest.(check int) "regions 1+2+4" 7 (Topology.region_count t);
  Alcotest.(check int) "nodes" 28 (Topology.node_count t);
  let r = Region_id.of_int in
  Alcotest.(check int) "leaf depth" 2 (Topology.depth t (r 6));
  Alcotest.(check int) "cousin hops" 4 (Topology.hops t (r 3) (r 6))

let test_membership_mutation () =
  let t = Topology.single_region ~size:3 in
  let r0 = Region_id.of_int 0 in
  let fresh = Topology.add_node t r0 in
  Alcotest.(check int) "grew" 4 (Topology.node_count t);
  Alcotest.(check bool) "is member" true (Topology.is_member t fresh);
  Topology.remove_node t fresh;
  Alcotest.(check int) "shrank" 3 (Topology.node_count t);
  Alcotest.(check bool) "gone" false (Topology.is_member t fresh);
  Alcotest.(check int) "ids not reused" 4 (Topology.created_count t);
  Alcotest.check_raises "double remove" (Invalid_argument "Topology.remove_node: not a member")
    (fun () -> Topology.remove_node t fresh)

let test_members_sorted_and_except () =
  let t = Topology.single_region ~size:5 in
  let r0 = Region_id.of_int 0 in
  let ms = Topology.members t r0 in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4 ]
    (Array.to_list (Array.map Node_id.to_int ms));
  let without = Topology.members_except t r0 (Node_id.of_int 2) in
  Alcotest.(check (list int)) "except" [ 0; 1; 3; 4 ]
    (Array.to_list (Array.map Node_id.to_int without))

let test_same_region () =
  let t = Topology.chain ~sizes:[ 2; 2 ] in
  let n = Node_id.of_int in
  Alcotest.(check bool) "same" true (Topology.same_region t (n 0) (n 1));
  Alcotest.(check bool) "different" false (Topology.same_region t (n 0) (n 2));
  Topology.remove_node t (n 1);
  Alcotest.(check bool) "removed node in no region" false (Topology.same_region t (n 0) (n 1))

let test_region_of () =
  let t = Topology.chain ~sizes:[ 2; 3 ] in
  (match Topology.region_of t (Node_id.of_int 3) with
   | Some r -> Alcotest.(check int) "node 3 in region 1" 1 (Region_id.to_int r)
   | None -> Alcotest.fail "expected a region");
  Alcotest.(check bool) "unknown node" true (Topology.region_of t (Node_id.of_int 99) = None)

let test_create_validation () =
  Alcotest.check_raises "self parent" (Invalid_argument "Topology.create: region cannot be its own parent")
    (fun () -> ignore (Topology.create ~parents:[| Some (Region_id.of_int 0) |]));
  Alcotest.check_raises "cycle"
    (Invalid_argument "Topology.create: parent relation has a cycle")
    (fun () ->
      ignore
        (Topology.create
           ~parents:[| Some (Region_id.of_int 1); Some (Region_id.of_int 0) |]))

let qcheck_hops_symmetric =
  QCheck.Test.make ~name:"hops is symmetric on a random chain" ~count:100
    QCheck.(pair (int_range 2 8) (pair (int_bound 7) (int_bound 7)))
    (fun (len, (a, b)) ->
      let t = Topology.chain ~sizes:(List.init len (fun _ -> 1)) in
      let a = Region_id.of_int (a mod len) and b = Region_id.of_int (b mod len) in
      Topology.hops t a b = Topology.hops t b a
      && Topology.hops t a b = abs (Region_id.to_int a - Region_id.to_int b))

let suites =
  [
    ( "topology.ids",
      [
        Alcotest.test_case "node id roundtrip" `Quick test_node_id_roundtrip;
        Alcotest.test_case "node id order" `Quick test_node_id_order;
        Alcotest.test_case "region id" `Quick test_region_id;
      ] );
    ( "topology.latency",
      [
        Alcotest.test_case "constant" `Quick test_latency_constant;
        Alcotest.test_case "paper default rtt" `Quick test_latency_paper_default_rtt;
        Alcotest.test_case "uniform bounds" `Quick test_latency_uniform_bounds;
        Alcotest.test_case "lognormal" `Quick test_latency_lognormal_positive;
        Alcotest.test_case "validation" `Quick test_latency_validation;
      ] );
    ( "topology.loss",
      [
        Alcotest.test_case "lossless" `Quick test_loss_lossless;
        Alcotest.test_case "bernoulli rate" `Quick test_loss_bernoulli_rate;
        Alcotest.test_case "gilbert stationary" `Quick test_loss_gilbert_elliott_stationary;
        Alcotest.test_case "gilbert burstiness" `Quick test_loss_gilbert_burstiness;
        Alcotest.test_case "validation" `Quick test_loss_validation;
      ] );
    ( "topology.hierarchy",
      [
        Alcotest.test_case "single region" `Quick test_single_region;
        Alcotest.test_case "chain" `Quick test_chain_structure;
        Alcotest.test_case "star" `Quick test_star_structure;
        Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
        Alcotest.test_case "mutation" `Quick test_membership_mutation;
        Alcotest.test_case "members sorted/except" `Quick test_members_sorted_and_except;
        Alcotest.test_case "same region" `Quick test_same_region;
        Alcotest.test_case "region_of" `Quick test_region_of;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        QCheck_alcotest.to_alcotest qcheck_hops_symmetric;
      ] );
  ]

let _ = node
