(* Tests for the simulated network: delivery, latency, multicast
   primitives, loss and liveness accounting. *)

module Network = Netsim.Network

let check_float = Alcotest.(check (float 1e-9))

type msg = Ping of int

let make_net ?(loss = Loss.Lossless) ?(latency = Latency.paper_default) ~topology () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let net =
    Network.create ~sim ~topology ~latency
      ~loss:(Loss.create loss ~rng:(Engine.Rng.split rng))
      ~rng ()
  in
  (sim, net)

let collect net node log =
  Network.register net node (fun d ->
      let (Ping payload) = d.Network.msg in
      log := (Node_id.to_int d.Network.src, payload) :: !log)

let test_unicast_delivery_and_delay () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~topology () in
  let log = ref [] in
  let arrived_at = ref (-1.0) in
  Network.register net (Node_id.of_int 1) (fun d ->
      arrived_at := Engine.Sim.now sim;
      let (Ping p) = d.Network.msg in
      log := (Node_id.to_int d.Network.src, p) :: !log);
  Network.unicast net ~cls:"test" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 9);
  Engine.Sim.run sim;
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 9) ] !log;
  check_float "intra delay 5ms" 5.0 !arrived_at

let test_inter_region_delay () =
  let topology = Topology.chain ~sizes:[ 1; 1 ] in
  let sim, net = make_net ~topology () in
  let arrived_at = ref (-1.0) in
  Network.register net (Node_id.of_int 1) (fun _ -> arrived_at := Engine.Sim.now sim);
  Network.unicast net ~cls:"test" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 0);
  Engine.Sim.run sim;
  check_float "one hop = 50 + 5" 55.0 !arrived_at

let test_unregistered_dropped_dead () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~topology () in
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 0);
  Engine.Sim.run sim;
  let stats = Network.stats net ~cls:"c" in
  Alcotest.(check int) "sent" 1 stats.Network.sent;
  Alcotest.(check int) "dead" 1 stats.Network.dropped_dead;
  Alcotest.(check int) "delivered" 0 stats.Network.delivered

let test_left_mid_flight_dropped () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~topology () in
  let log = ref [] in
  collect net (Node_id.of_int 1) log;
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 1);
  (* node 1 leaves before the packet lands (delay is 5ms) *)
  ignore
    (Engine.Sim.schedule sim ~delay:1.0 (fun () ->
         Topology.remove_node topology (Node_id.of_int 1)));
  Engine.Sim.run sim;
  Alcotest.(check (list (pair int int))) "nothing delivered" [] !log;
  Alcotest.(check int) "dead" 1 (Network.stats net ~cls:"c").Network.dropped_dead

let test_bernoulli_loss_accounting () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~loss:(Loss.Bernoulli 0.5) ~topology () in
  let log = ref [] in
  collect net (Node_id.of_int 1) log;
  for i = 1 to 1000 do
    Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping i)
  done;
  Engine.Sim.run sim;
  let stats = Network.stats net ~cls:"c" in
  Alcotest.(check int) "sent" 1000 stats.Network.sent;
  Alcotest.(check int) "conservation" 1000 (stats.Network.delivered + stats.Network.dropped_loss);
  Alcotest.(check bool) "roughly half lost" true
    (stats.Network.dropped_loss > 400 && stats.Network.dropped_loss < 600)

let test_regional_multicast_scope () =
  let topology = Topology.chain ~sizes:[ 3; 3 ] in
  let sim, net = make_net ~topology () in
  let received = ref [] in
  List.iter
    (fun i ->
      Network.register net (Node_id.of_int i) (fun d ->
          ignore d.Network.msg;
          received := i :: !received))
    [ 0; 1; 2; 3; 4; 5 ];
  Network.regional_multicast net ~cls:"mc" ~src:(Node_id.of_int 0)
    ~region:(Region_id.of_int 0) (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "only own region, sans source" [ 1; 2 ]
    (List.sort compare !received)

let test_regional_multicast_include_src () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~topology () in
  let received = ref [] in
  List.iter
    (fun i ->
      Network.register net (Node_id.of_int i) (fun _ -> received := i :: !received))
    [ 0; 1 ];
  Network.regional_multicast net ~cls:"mc" ~src:(Node_id.of_int 0)
    ~region:(Region_id.of_int 0) ~include_src:true (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "source included" [ 0; 1 ] (List.sort compare !received)

let test_ip_multicast_reach () =
  let topology = Topology.single_region ~size:5 in
  let sim, net = make_net ~topology () in
  let received = ref [] in
  List.iter
    (fun i ->
      Network.register net (Node_id.of_int i) (fun _ -> received := i :: !received))
    [ 0; 1; 2; 3; 4 ];
  (* only even nodes are reached *)
  Network.ip_multicast net ~cls:"data" ~src:(Node_id.of_int 0)
    ~reach:(fun n -> Node_id.to_int n mod 2 = 0)
    (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "exact outcome" [ 2; 4 ] (List.sort compare !received);
  let stats = Network.stats net ~cls:"data" in
  Alcotest.(check int) "sent to all but src" 4 stats.Network.sent;
  Alcotest.(check int) "unreached count as loss" 2 stats.Network.dropped_loss

let test_ip_multicast_spans_regions () =
  let topology = Topology.chain ~sizes:[ 2; 2 ] in
  let sim, net = make_net ~topology () in
  let received = ref [] in
  List.iter
    (fun i ->
      Network.register net (Node_id.of_int i) (fun _ -> received := i :: !received))
    [ 0; 1; 2; 3 ];
  Network.ip_multicast_lossy net ~cls:"data" ~src:(Node_id.of_int 0) (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "both regions" [ 1; 2; 3 ] (List.sort compare !received)

let test_delivery_hook () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~topology () in
  let hook_count = ref 0 in
  Network.register net (Node_id.of_int 1) (fun _ -> ());
  Network.set_delivery_hook net (Some (fun _ -> incr hook_count));
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check int) "hook saw delivery" 1 !hook_count;
  Network.set_delivery_hook net None;
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check int) "hook removed" 1 !hook_count

let test_classes_and_reset () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_net ~topology () in
  Network.register net (Node_id.of_int 1) (fun _ -> ());
  Network.unicast net ~cls:"a" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 0);
  Network.unicast net ~cls:"b" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "classes" [ "a"; "b" ] (Network.classes net);
  Alcotest.(check int) "total sent" 2 (Network.total_sent net);
  Alcotest.(check int) "total delivered" 2 (Network.total_delivered net);
  Network.reset_stats net;
  Alcotest.(check int) "reset" 0 (Network.total_sent net)

let test_self_send () =
  let topology = Topology.single_region ~size:1 in
  let sim, net = make_net ~topology () in
  let got = ref false in
  Network.register net (Node_id.of_int 0) (fun _ -> got := true);
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 0) (Ping 0);
  Engine.Sim.run sim;
  Alcotest.(check bool) "self-delivery after a delay" true !got

let suites =
  [
    ( "netsim.network",
      [
        Alcotest.test_case "unicast delivery+delay" `Quick test_unicast_delivery_and_delay;
        Alcotest.test_case "inter-region delay" `Quick test_inter_region_delay;
        Alcotest.test_case "unregistered dropped" `Quick test_unregistered_dropped_dead;
        Alcotest.test_case "left mid-flight" `Quick test_left_mid_flight_dropped;
        Alcotest.test_case "bernoulli accounting" `Quick test_bernoulli_loss_accounting;
        Alcotest.test_case "regional multicast scope" `Quick test_regional_multicast_scope;
        Alcotest.test_case "regional include_src" `Quick test_regional_multicast_include_src;
        Alcotest.test_case "ip multicast reach" `Quick test_ip_multicast_reach;
        Alcotest.test_case "ip multicast spans regions" `Quick test_ip_multicast_spans_regions;
        Alcotest.test_case "delivery hook" `Quick test_delivery_hook;
        Alcotest.test_case "classes and reset" `Quick test_classes_and_reset;
        Alcotest.test_case "self send" `Quick test_self_send;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Bandwidth / egress queueing                                         *)
(* ------------------------------------------------------------------ *)

let make_bw_net ~bytes_per_ms ~topology () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let bandwidth = { Network.bytes_per_ms; Network.packet_bytes = (fun (Ping _) -> 100) } in
  let net =
    Network.create ~sim ~topology ~latency:Latency.paper_default
      ~loss:(Loss.create Loss.Lossless ~rng:(Engine.Rng.split rng))
      ~rng ~bandwidth ()
  in
  (sim, net)

let test_bandwidth_serializes_unicasts () =
  let topology = Topology.single_region ~size:3 in
  (* 100-byte packets at 10 bytes/ms: 10 ms serialization each *)
  let sim, net = make_bw_net ~bytes_per_ms:10.0 ~topology () in
  let arrivals = ref [] in
  List.iter
    (fun i ->
      Network.register net (Node_id.of_int i) (fun _ ->
          arrivals := Engine.Sim.now sim :: !arrivals))
    [ 1; 2 ];
  (* two back-to-back unicasts from node 0: the second queues behind
     the first (10 + 10 serialization), both then fly for 5 ms *)
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping 1);
  Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 2) (Ping 2);
  Engine.Sim.run sim;
  Alcotest.(check (list (float 1e-6))) "staggered by serialization" [ 15.0; 25.0 ]
    (List.sort compare !arrivals)

let test_bandwidth_multicast_charged_once () =
  let topology = Topology.single_region ~size:5 in
  let sim, net = make_bw_net ~bytes_per_ms:10.0 ~topology () in
  let arrivals = ref [] in
  List.iter
    (fun i ->
      Network.register net (Node_id.of_int i) (fun _ ->
          arrivals := Engine.Sim.now sim :: !arrivals))
    [ 1; 2; 3; 4 ];
  Network.regional_multicast net ~cls:"mc" ~src:(Node_id.of_int 0)
    ~region:(Region_id.of_int 0) (Ping 0);
  Engine.Sim.run sim;
  (* one 10 ms transmission + 5 ms propagation for everyone *)
  List.iter (fun at -> Alcotest.(check (float 1e-6)) "single charge" 15.0 at) !arrivals;
  Alcotest.(check int) "all four got it" 4 (List.length !arrivals)

let test_bandwidth_backlog_reported () =
  let topology = Topology.single_region ~size:2 in
  let sim, net = make_bw_net ~bytes_per_ms:10.0 ~topology () in
  Network.register net (Node_id.of_int 1) (fun _ -> ());
  for i = 1 to 5 do
    Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping i)
  done;
  (* 5 x 10 ms queued at t = 0 *)
  Alcotest.(check (float 1e-6)) "50 ms backlog" 50.0
    (Network.egress_backlog net (Node_id.of_int 0));
  Engine.Sim.run sim;
  Alcotest.(check (float 1e-6)) "drained" 0.0
    (Network.egress_backlog net (Node_id.of_int 0))

let test_bandwidth_absent_means_unlimited () =
  let topology = Topology.single_region ~size:2 in
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  let net =
    Network.create ~sim ~topology ~latency:Latency.paper_default
      ~loss:(Loss.create Loss.Lossless ~rng:(Engine.Rng.split rng))
      ~rng ()
  in
  let arrivals = ref [] in
  Network.register net (Node_id.of_int 1) (fun _ -> arrivals := Engine.Sim.now sim :: !arrivals);
  for i = 1 to 3 do
    Network.unicast net ~cls:"c" ~src:(Node_id.of_int 0) ~dst:(Node_id.of_int 1) (Ping i)
  done;
  Engine.Sim.run sim;
  List.iter (fun at -> Alcotest.(check (float 1e-6)) "no queueing" 5.0 at) !arrivals;
  Alcotest.(check (float 1e-6)) "no backlog tracking" 0.0
    (Network.egress_backlog net (Node_id.of_int 0))

let bandwidth_suite =
  ( "netsim.bandwidth",
    [
      Alcotest.test_case "serializes unicasts" `Quick test_bandwidth_serializes_unicasts;
      Alcotest.test_case "multicast charged once" `Quick test_bandwidth_multicast_charged_once;
      Alcotest.test_case "backlog reported" `Quick test_bandwidth_backlog_reported;
      Alcotest.test_case "absent means unlimited" `Quick test_bandwidth_absent_means_unlimited;
    ] )

(* ------------------------------------------------------------------ *)
(* Batched vs per-receiver fan-out equivalence                         *)
(* ------------------------------------------------------------------ *)

(* The batched fan-out must be observationally identical to the
   per-receiver reference path on a seeded run: same delivery log
   (order, times, payloads), same counters — including under loss and a
   non-constant latency model. *)
let fanout_run ~batched () =
  let topology = Topology.chain ~sizes:[ 6; 5 ] in
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:42 in
  let latency =
    Latency.create
      ~intra:(Latency.Uniform { lo = 1.0; hi = 9.0 })
      ~inter:(Latency.Constant 50.0)
  in
  let net =
    Network.create ~sim ~topology ~latency
      ~loss:(Loss.create (Loss.Bernoulli 0.3) ~rng:(Engine.Rng.split rng))
      ~rng ~batched ()
  in
  let log = ref [] in
  List.iter
    (fun node ->
      Network.register net node (fun d ->
          let (Ping p) = d.Network.msg in
          log :=
            ( (Engine.Sim.now sim, Node_id.to_int d.Network.src),
              (Node_id.to_int d.Network.dst, p) )
            :: !log))
    (Array.to_list (Topology.all_nodes topology));
  for round = 1 to 5 do
    ignore
      (Engine.Sim.schedule sim ~delay:(float_of_int round *. 3.0) (fun () ->
           Network.regional_multicast net ~cls:"regional" ~src:(Node_id.of_int 0)
             ~region:(Region_id.of_int 0) (Ping round);
           Network.ip_multicast_lossy net ~cls:"session" ~src:(Node_id.of_int 1)
             (Ping (100 + round));
           Network.ip_multicast net ~cls:"reach" ~src:(Node_id.of_int 2)
             ~reach:(fun n -> Node_id.to_int n mod 2 = 0)
             (Ping (200 + round))))
  done;
  Engine.Sim.run sim;
  let stats cls =
    let c = Network.stats net ~cls in
    ((c.Network.sent, c.Network.delivered), (c.Network.dropped_loss, c.Network.dropped_dead))
  in
  (List.rev !log, List.map stats [ "regional"; "session"; "reach" ])

let test_batched_fanout_equivalence () =
  let log_b, stats_b = fanout_run ~batched:true () in
  let log_r, stats_r = fanout_run ~batched:false () in
  Alcotest.(check bool) "some deliveries happened" true (List.length log_b > 50);
  Alcotest.(check (list (pair (pair (float 1e-9) int) (pair int int))))
    "delivery logs identical" log_r log_b;
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "counters identical" stats_r stats_b

let batching_suite =
  ( "netsim.batching",
    [ Alcotest.test_case "batched = per-receiver" `Quick test_batched_fanout_equivalence ] )

let suites = suites @ [ bandwidth_suite; batching_suite ]
