(* tiny substring helper (no astring dependency) *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0
