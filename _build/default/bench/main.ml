(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper (and every
   extension experiment) and prints the same rows/series the paper
   reports — this is the reproduction harness proper.

   Part 2 is a Bechamel microbenchmark suite: one Test.make per
   figure-generating workload (a reduced parameterization of the same
   code path) plus the hot simulator primitives, so performance
   regressions in the substrate are visible. *)

let reproduce () =
  Format.printf "=====================================================================@.";
  Format.printf " Reproduction: Optimizing Buffer Management for Reliable Multicast@.";
  Format.printf " (Xiao, Birman, van Renesse - DSN 2002)@.";
  Format.printf "=====================================================================@.@.";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let report = e.Experiments.Registry.run ~quick:true in
      Format.printf "%a@." Experiments.Report.pp report;
      Format.printf "[%s | %s | %.1fs]@.@." e.Experiments.Registry.id
        e.Experiments.Registry.paper_ref
        (Unix.gettimeofday () -. t0))
    Experiments.Registry.all

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let bench_rng =
  Bechamel.Test.make ~name:"engine/rng.bits64 x1k"
    (Bechamel.Staged.stage (fun () ->
         let rng = Engine.Rng.create ~seed:1 in
         let acc = ref 0L in
         for _ = 1 to 1000 do
           acc := Int64.add !acc (Engine.Rng.bits64 rng)
         done;
         !acc))

let bench_heap =
  Bechamel.Test.make ~name:"engine/heap push+pop 1k"
    (Bechamel.Staged.stage (fun () ->
         let h = Engine.Heap.create ~compare_priority:Int.compare () in
         for i = 0 to 999 do
           Engine.Heap.push h ((i * 7919) mod 1000)
         done;
         let acc = ref 0 in
         let rec drain () =
           match Engine.Heap.pop h with
           | Some x ->
             acc := !acc + x;
             drain ()
           | None -> ()
         in
         drain ();
         !acc))

let bench_sim =
  Bechamel.Test.make ~name:"engine/sim 1k timer cascade"
    (Bechamel.Staged.stage (fun () ->
         let sim = Engine.Sim.create () in
         let count = ref 0 in
         let rec tick () =
           incr count;
           if !count < 1000 then ignore (Engine.Sim.schedule sim ~delay:1.0 tick)
         in
         ignore (Engine.Sim.schedule sim ~delay:1.0 tick);
         Engine.Sim.run sim;
         !count))

let bench_poisson =
  Bechamel.Test.make ~name:"stats/poisson pmf k=0..20"
    (Bechamel.Staged.stage (fun () ->
         let acc = ref 0.0 in
         for k = 0 to 20 do
           acc := !acc +. Stats.Dist.poisson_pmf ~lambda:6.0 k
         done;
         !acc))

(* one Test.make per figure: the same code path as the reproduction,
   at a parameterization small enough to iterate *)

let bench_fig3 =
  Bechamel.Test.make ~name:"fig3 (coin-flip MC, 200 trials)"
    (Bechamel.Staged.stage (fun () -> Experiments.Fig3.run ~mc_trials:200 ()))

let bench_fig4 =
  Bechamel.Test.make ~name:"fig4 (MC + 5 protocol runs/C)"
    (Bechamel.Staged.stage (fun () ->
         Experiments.Fig4.run ~mc_trials:1_000 ~protocol_trials:5 ()))

let bench_fig6 =
  Bechamel.Test.make ~name:"fig6 (1 trial/point)"
    (Bechamel.Staged.stage (fun () -> Experiments.Fig6.run ~trials:1 ()))

let bench_fig7 =
  Bechamel.Test.make ~name:"fig7 (one sampled run)"
    (Bechamel.Staged.stage (fun () -> Experiments.Fig7.run ()))

let bench_fig8 =
  Bechamel.Test.make ~name:"fig8 (3 trials/point)"
    (Bechamel.Staged.stage (fun () -> Experiments.Fig8.run ~trials:3 ()))

let bench_fig9 =
  Bechamel.Test.make ~name:"fig9 (2 trials, 3 sizes)"
    (Bechamel.Staged.stage (fun () ->
         Experiments.Fig9.run ~trials:2 ~region_sizes:[ 100; 400; 1000 ] ()))

let bench_delivery =
  Bechamel.Test.make ~name:"rrmp/one lossless multicast, n=100"
    (Bechamel.Staged.stage (fun () ->
         let group =
           Rrmp.Group.create ~seed:1 ~topology:(Topology.single_region ~size:100) ()
         in
         let id = Rrmp.Group.multicast group () in
         Rrmp.Group.run group;
         Rrmp.Group.count_received group id))

let bench_recovery =
  Bechamel.Test.make ~name:"rrmp/regional loss recovery, 2x20"
    (Bechamel.Staged.stage (fun () ->
         let topology = Topology.chain ~sizes:[ 20; 20 ] in
         let group = Rrmp.Group.create ~seed:1 ~topology () in
         let id =
           Rrmp.Group.multicast_reaching group ~reach:(fun n -> Node_id.to_int n < 20) ()
         in
         List.iter
           (fun m -> Rrmp.Member.inject_loss m id)
           (Rrmp.Group.members_of_region group (Region_id.of_int 1));
         Rrmp.Group.run group;
         Rrmp.Group.count_received group id))

let microbench () =
  let open Bechamel in
  let tests =
    [
      bench_rng;
      bench_heap;
      bench_sim;
      bench_poisson;
      bench_fig3;
      bench_fig4;
      bench_fig6;
      bench_fig7;
      bench_fig8;
      bench_fig9;
      bench_delivery;
      bench_recovery;
    ]
  in
  Format.printf "=====================================================================@.";
  Format.printf " Bechamel microbenchmarks (monotonic clock per run)@.";
  Format.printf "=====================================================================@.";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          with
          | exception _ -> Format.printf "  %-40s (analysis failed)@." name
          | result ->
            (match Analyze.OLS.estimates result with
             | Some [ est ] -> Format.printf "  %-40s %12.0f ns/run@." name est
             | Some _ | None -> Format.printf "  %-40s (no estimate)@." name))
        results)
    tests

let () =
  reproduce ();
  microbench ()
