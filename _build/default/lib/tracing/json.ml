(* Minimal JSON support for benchmark artifacts (BENCH_*.json).

   The toolchain has no JSON library baked in, so this implements just
   what the bench harness needs: a value type, a serializer with string
   escaping and float normalization, and a recursive-descent parser
   good enough to round-trip our own output (the smoke test parses what
   it emits). *)

type t =
  | Null
  | Bool of bool
  | Float of float
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf indent v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.abs f = infinity then
      Buffer.add_string buf "null" (* JSON has no NaN/inf *)
    else Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    let inner = indent ^ "  " in
    Buffer.add_string buf "[";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n';
        Buffer.add_string buf inner;
        write buf inner item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf indent;
    Buffer.add_string buf "]"
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let inner = indent ^ "  " in
    Buffer.add_string buf "{";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '\n';
        Buffer.add_string buf inner;
        escape_string buf k;
        Buffer.add_string buf ": ";
        write buf inner item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf indent;
    Buffer.add_string buf "}"

let to_string v =
  let buf = Buffer.create 1024 in
  write buf "" v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { input : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))

let peek_char st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek_char st with
  | Some got when got = c -> advance st
  | Some got -> fail st (Printf.sprintf "expected %c, got %c" c got)
  | None -> fail st (Printf.sprintf "expected %c, got end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek_char st with
       | Some '"' -> Buffer.add_char buf '"'; advance st
       | Some '\\' -> Buffer.add_char buf '\\'; advance st
       | Some '/' -> Buffer.add_char buf '/'; advance st
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some 'u' ->
         advance st;
         if st.pos + 4 > String.length st.input then fail st "truncated \\u escape";
         let hex = String.sub st.input st.pos 4 in
         let code =
           try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
         in
         st.pos <- st.pos + 4;
         (* we only emit \u for control characters; anything else is
            preserved as a literal codepoint below 256 or replaced *)
         if code < 256 then Buffer.add_char buf (Char.chr code)
         else Buffer.add_char buf '?'
       | Some c -> fail st (Printf.sprintf "bad escape \\%c" c)
       | None -> fail st "unterminated escape");
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec eat () =
    match peek_char st with
    | Some c when is_num_char c ->
      advance st;
      eat ()
    | Some _ | None -> ()
  in
  eat ();
  let text = String.sub st.input start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt text with
     | Some f -> Float f
     | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek_char st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek_char st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          advance st;
          members ()
        | Some '}' -> advance st
        | _ -> fail st "expected , or } in object"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek_char st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          advance st;
          elements ()
        | Some ']' -> advance st
        | _ -> fail st "expected , or ] in array"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing content after value";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt v =
  match v with Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_list_opt v = match v with List items -> Some items | _ -> None

let to_string_opt v = match v with String s -> Some s | _ -> None
