let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else s

let row_to_string fields = String.concat "," (List.map escape_field fields)

let write_rows ~header rows oc =
  output_string oc (row_to_string header);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (row_to_string row);
      output_char oc '\n')
    rows

let to_string ~header rows =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (row_to_string header);
  Buffer.add_char buffer '\n';
  List.iter
    (fun row ->
      Buffer.add_string buffer (row_to_string row);
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let save ~path ~header rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_rows ~header rows oc)
