type entry = { time : float; subject : string; event : string; detail : string }

type t = {
  capacity : int option;
  filter : entry -> bool;
  buffer : entry Queue.t;
  mutable dropped : int;
}

let create ?capacity ?(filter = fun _ -> true) () =
  (match capacity with
   | Some c when c <= 0 -> invalid_arg "Tracer.create: capacity must be positive"
   | Some _ | None -> ());
  { capacity; filter; buffer = Queue.create (); dropped = 0 }

let record t ~time ~subject ~event detail =
  let entry = { time; subject; event; detail } in
  if t.filter entry then begin
    Queue.push entry t.buffer;
    match t.capacity with
    | Some c when Queue.length t.buffer > c ->
      ignore (Queue.pop t.buffer);
      t.dropped <- t.dropped + 1
    | Some _ | None -> ()
  end

let entries t = List.of_seq (Queue.to_seq t.buffer)

let length t = Queue.length t.buffer

let dropped t = t.dropped

let clear t =
  Queue.clear t.buffer;
  t.dropped <- 0

let pp_entry fmt e =
  Format.fprintf fmt "%10.3f  %-8s %-24s %s" e.time e.subject e.event e.detail

let dump fmt t =
  Format.fprintf fmt "@[<v>";
  Queue.iter (fun e -> Format.fprintf fmt "%a@," pp_entry e) t.buffer;
  Format.fprintf fmt "@]"
