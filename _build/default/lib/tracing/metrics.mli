(** Lightweight named counters and gauges for experiment bookkeeping.

    A registry is cheap to create per simulation run; experiment
    harnesses read it out at the end of the run. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter, creating it at zero first if needed. *)

val counter : t -> string -> int
(** 0 for unknown names. *)

val set_gauge : t -> string -> float -> unit

val gauge : t -> string -> float option

val max_gauge : t -> string -> float -> unit
(** Keep the running maximum of the observed values. *)

val add_gauge : t -> string -> float -> unit
(** Accumulate into a gauge starting from 0. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list

val reset : t -> unit

val pp : Format.formatter -> t -> unit
