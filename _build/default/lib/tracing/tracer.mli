(** In-memory event trace for debugging protocol runs.

    Records (time, subject, event, detail) tuples with an optional
    capacity bound (oldest entries dropped) and an optional filter. *)

type entry = { time : float; subject : string; event : string; detail : string }

type t

val create : ?capacity:int -> ?filter:(entry -> bool) -> unit -> t
(** [capacity] bounds retained entries (unbounded by default). *)

val record : t -> time:float -> subject:string -> event:string -> string -> unit

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val dropped : t -> int
(** Entries discarded due to the capacity bound (filtered-out entries
    are not counted). *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
