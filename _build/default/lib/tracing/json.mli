(** Minimal JSON values for benchmark artifacts.

    Just enough to emit and re-read the [BENCH_*.json] trajectory
    files: a value type, {!to_string} with proper string escaping and
    NaN/infinity mapped to [null], and {!of_string}, a strict
    recursive-descent parser that round-trips this module's own
    output. *)

type t =
  | Null
  | Bool of bool
  | Float of float
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), newline-terminated. *)

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing content. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_float_opt : t -> float option
(** [Int] values widen to float. *)

val to_list_opt : t -> t list option

val to_string_opt : t -> string option
