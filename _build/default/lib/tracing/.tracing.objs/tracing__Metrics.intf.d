lib/tracing/metrics.mli: Format
