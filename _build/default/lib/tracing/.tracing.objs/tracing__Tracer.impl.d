lib/tracing/tracer.ml: Format List Queue
