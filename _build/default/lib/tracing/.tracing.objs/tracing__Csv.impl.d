lib/tracing/csv.ml: Buffer Fun List String
