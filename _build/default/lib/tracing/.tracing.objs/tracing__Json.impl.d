lib/tracing/json.ml: Buffer Char Float List Printf String
