lib/tracing/json.mli:
