lib/tracing/csv.mli:
