lib/tracing/metrics.ml: Format Hashtbl List Option String
