lib/tracing/tracer.mli: Format
