(** Minimal CSV writing (RFC-4180-style quoting) for experiment
    output. *)

val escape_field : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row_to_string : string list -> string

val write_rows : header:string list -> string list list -> out_channel -> unit

val to_string : header:string list -> string list list -> string

val save : path:string -> header:string list -> string list list -> unit
(** Create/truncate [path] and write header + rows. *)
