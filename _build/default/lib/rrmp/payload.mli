(** A multicast data message as buffered and retransmitted: its
    identifier plus an abstract size used for buffer accounting. *)

type t = { id : Protocol.Msg_id.t; size : int }

val make : ?size:int -> Protocol.Msg_id.t -> t
(** Default size 1024 bytes. @raise Invalid_argument on negative
    size. *)

val id : t -> Protocol.Msg_id.t

val size : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
