(** Analytical models of the randomized mechanisms, used to sanity-check
    the simulation (and vice versa).

    The search process of Section 3.3 forms a growing set of searchers:
    every probe that lands on a member that has discarded the message
    recruits it. With [s] searchers each probing one uniform member per
    round, the probability that some probe hits one of the [k] bufferers
    is [1 - (1 - k/(n-1))^s]; conditioned on missing, the searcher set
    roughly doubles (capped by the region). These recurrences give the
    expected search time without running the simulator. *)

val search_hit_probability : n:int -> k:int -> searchers:int -> float
(** Probability that at least one of [searchers] uniform probes (into
    an [n]-member region, excluding the prober itself) finds one of the
    [k] bufferers this round. *)

val expected_search_steps : n:int -> k:int -> float
(** Expected number of half-round (one-way-delay) steps until a
    bufferer receives a probe, starting from the remote request (which
    finds a bufferer directly with probability k/n at cost 0).
    @raise Invalid_argument if [k < 1] or [k >= n]. *)

val expected_search_rounds : n:int -> k:int -> float
(** [expected_search_steps / 2]: in RTT-sized rounds. *)

val expected_search_time : n:int -> k:int -> rtt:float -> float
(** Expected search time in ms: each round costs one RTT-sized timer
    (the probe that succeeds costs half an RTT, folded in). *)

val expected_requests_per_round : n:int -> missing:int -> float
(** Section 3.1: with [missing] members each probing one uniform
    neighbour per round, the expected number of requests one particular
    holder receives per round. *)

val prob_idle_fires_while_missing : n:int -> missing:int -> rounds:float -> float
(** Probability a holder sees {e no} request for [rounds] consecutive
    request rounds while [missing] members are still probing — i.e. the
    chance the idle threshold fires prematurely. With [T = 4 RTT] and a
    request round per RTT, [rounds = 4]. *)
