lib/rrmp/long_term.mli: Engine Node_id Protocol
