lib/rrmp/events.ml: Buffer Node_id Printf Protocol Tracing
