lib/rrmp/model.mli:
