lib/rrmp/group.mli: Config Engine Events Latency Loss Member Netsim Node_id Protocol Region_id Topology Wire
