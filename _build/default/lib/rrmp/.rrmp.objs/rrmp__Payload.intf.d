lib/rrmp/payload.mli: Format Protocol
