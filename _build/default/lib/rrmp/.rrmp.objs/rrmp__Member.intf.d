lib/rrmp/member.mli: Buffer Config Engine Events Membership Netsim Node_id Payload Protocol Wire
