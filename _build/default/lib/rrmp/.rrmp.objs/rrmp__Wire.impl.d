lib/rrmp/wire.ml: Format List Node_id Payload Protocol
