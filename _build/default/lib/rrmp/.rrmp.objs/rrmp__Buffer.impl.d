lib/rrmp/buffer.ml: Engine List Option Payload Protocol
