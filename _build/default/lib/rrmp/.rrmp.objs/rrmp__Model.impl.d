lib/rrmp/model.ml:
