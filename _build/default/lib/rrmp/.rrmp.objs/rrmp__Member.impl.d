lib/rrmp/member.ml: Array Buffer Config Engine Events Float Latency List Long_term Membership Netsim Node_id Option Payload Protocol Topology Wire
