lib/rrmp/events.mli: Buffer Node_id Protocol Tracing
