lib/rrmp/wire.mli: Format Node_id Payload Protocol
