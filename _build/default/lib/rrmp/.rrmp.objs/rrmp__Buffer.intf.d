lib/rrmp/buffer.mli: Engine Payload Protocol
