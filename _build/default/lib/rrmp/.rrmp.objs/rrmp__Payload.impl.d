lib/rrmp/payload.ml: Format Int Protocol
