lib/rrmp/rrmp.ml: Buffer Config Events Group Long_term Member Model Payload Wire
