lib/rrmp/config.mli: Format
