lib/rrmp/config.ml: Format Printf
