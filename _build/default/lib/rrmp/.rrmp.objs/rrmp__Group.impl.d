lib/rrmp/group.ml: Array Config Engine Events Latency List Loss Member Netsim Node_id Option Topology Wire
