lib/rrmp/long_term.ml: Array Engine Float Int64 Node_id Protocol Seq
