let probability ~c ~n =
  if n <= 0 then invalid_arg "Long_term.probability: region size must be positive";
  if c < 0.0 then invalid_arg "Long_term.probability: C must be non-negative";
  Float.min 1.0 (c /. float_of_int n)

let decide rng ~c ~n = Engine.Rng.bernoulli rng ~p:(probability ~c ~n)

let expected_bufferers ~c ~n = float_of_int n *. probability ~c ~n

(* splitmix64 finalizer over (node, id): a cheap uniform hash every
   member computes identically *)
let hash_unit ~node ~id =
  let z = Int64.of_int ((Node_id.to_int node * 0x9E3779B9) lxor (Protocol.Msg_id.hash id * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

let hashed_decide ~node ~id ~c ~n = hash_unit ~node ~id < probability ~c ~n

let hashed_candidates ~members ~id ~c ~n =
  Array.of_seq
    (Seq.filter (fun node -> hashed_decide ~node ~id ~c ~n) (Array.to_seq members))
