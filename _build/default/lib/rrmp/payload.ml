type t = { id : Protocol.Msg_id.t; size : int }

let make ?(size = 1024) id =
  if size < 0 then invalid_arg "Payload.make: negative size";
  { id; size }

let id t = t.id

let size t = t.size

let equal a b = Protocol.Msg_id.equal a.id b.id && Int.equal a.size b.size

let pp fmt t = Format.fprintf fmt "%a(%dB)" Protocol.Msg_id.pp t.id t.size
