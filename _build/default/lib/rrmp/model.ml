let search_hit_probability ~n ~k ~searchers =
  if n < 2 then invalid_arg "Model.search_hit_probability: n must be >= 2";
  let miss_one = 1.0 -. (float_of_int k /. float_of_int (n - 1)) in
  1.0 -. (miss_one ** float_of_int searchers)

(* The probe stream grows per HALF-round (one one-way delay): a probe
   sent at step i recruits its target, which probes at step i+1, while
   the prober itself retries at step i+2 (its RTT timer). So the probe
   count follows the Fibonacci recurrence f(i) = f(i-1) + f(i-2),
   capped by the non-bufferer population. A probe sent at step i that
   hits a bufferer completes the search one one-way delay later. *)
let expected_search_steps ~n ~k =
  if k < 1 || k >= n then invalid_arg "Model.expected_search_steps: k out of range";
  (* step "-1" is the remote request itself: it hits a bufferer with
     probability k/n and costs no search time at all *)
  let p_direct = float_of_int k /. float_of_int n in
  let cap = n - k in
  let rec go ~probes_prev ~probes ~p_alive ~expected ~step =
    if p_alive < 1e-12 || step > 10_000 then expected
    else begin
      let p_hit = search_hit_probability ~n ~k ~searchers:probes in
      (* the probe sent at [step] lands at [step + 1] *)
      let expected = expected +. (p_alive *. p_hit *. float_of_int (step + 1)) in
      let p_alive = p_alive *. (1.0 -. p_hit) in
      let next = min (probes + probes_prev) cap in
      go ~probes_prev:probes ~probes:next ~p_alive ~expected ~step:(step + 1)
    end
  in
  (1.0 -. p_direct) *. go ~probes_prev:0 ~probes:1 ~p_alive:1.0 ~expected:0.0 ~step:0

let expected_search_rounds ~n ~k = expected_search_steps ~n ~k /. 2.0

let expected_search_time ~n ~k ~rtt = expected_search_steps ~n ~k *. (rtt /. 2.0)

let expected_requests_per_round ~n ~missing =
  if n < 2 then 0.0 else float_of_int missing /. float_of_int (n - 1)

let prob_idle_fires_while_missing ~n ~missing ~rounds =
  if n < 2 then 1.0
  else begin
    let p_silent_one_round =
      (1.0 -. (1.0 /. float_of_int (n - 1))) ** float_of_int missing
    in
    p_silent_one_round ** rounds
  end
