(** The randomized long-term buffering decision of Section 3.2.

    When a message becomes idle at a member of an [n]-member region,
    the member keeps it with probability [P = C/n] (clamped to 1 for
    tiny regions), so the expected number of long-term bufferers is
    [C] and, for large [n], their count is Poisson(C)-distributed. *)

val probability : c:float -> n:int -> float
(** [P = C/n], clamped to [\[0, 1\]]. [n] is the region size including
    the deciding member. @raise Invalid_argument if [n <= 0] or
    [c < 0]. *)

val decide : Engine.Rng.t -> c:float -> n:int -> bool
(** One member's independent coin flip. *)

val expected_bufferers : c:float -> n:int -> float
(** [n * P]: equals [c] once [n >= c]. *)

val hashed_decide : node:Node_id.t -> id:Protocol.Msg_id.t -> c:float -> n:int -> bool
(** The deterministic alternative of Section 3.4 (Ozkasap et al.):
    hash (member address, message id) to [\[0, 1)] and buffer when the
    value falls below [C/n]. Every member computes the same answer for
    every (node, id) pair, so requesters can locate bufferers without
    searching. *)

val hashed_candidates :
  members:Node_id.t array -> id:Protocol.Msg_id.t -> c:float -> n:int -> Node_id.t array
(** The members of [members] that [hashed_decide] selects for [id]. *)
